package datacell

// Ablation equivalence suite for the fused vectorized tail executor
// (internal/kernel): every workload in the matrix runs twice — once on
// the default fused executor and once with NoFuse (operator-at-a-time
// with a materialized chunk per step, no predicate pushdown, default
// hash-table sizing) — and must produce byte-identical result streams.
// Together with the kernel unit tests and the fabric differential
// harness this is the proof surface of the fusion contract.

import (
	"fmt"
	"testing"
)

// fuseCase is one workload of the ablation matrix.
type fuseCase struct {
	name string
	ddl  []string
	// queries registered on both engines; the ablated engine appends
	// NoFuse() to each query's options.
	queries map[string][]RegisterOption
	// feed appends identical data to both engines.
	feed func(t *testing.T, e *Engine)
}

// feedSensorRows appends n (ts, k, v) rows to stream in batches of batch.
func feedSensorRows(stream string, n, batch, nkeys int) func(*testing.T, *Engine) {
	return func(t *testing.T, e *Engine) {
		t.Helper()
		for pos := 0; pos < n; pos += batch {
			var rows [][]any
			for i := pos; i < pos+batch && i < n; i++ {
				k := (i * 2654435761) % nkeys
				if k < 0 {
					k += nkeys
				}
				rows = append(rows, []any{int64(i) * 1000, k, float64(i%17) * 0.5})
			}
			if err := e.Append(stream, rows); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func runFuseCase(t *testing.T, fc fuseCase, ablate bool) map[string][]string {
	t.Helper()
	e, _ := newTestEngine(t)
	for _, ddl := range fc.ddl {
		mustExec(t, e, ddl)
	}
	qs := map[string]*Query{}
	for name, opts := range fc.queries {
		if ablate {
			opts = append(append([]RegisterOption{}, opts...), NoFuse())
		}
		q, err := e.RegisterQuery(name, fuseSQL[name], opts...)
		if err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
		qs[name] = q
	}
	fc.feed(t, e)
	out := map[string][]string{}
	for name, q := range qs {
		out[name] = rowsOf(collect(e, q))
	}
	return out
}

// fuseSQL maps query names to their SQL so fused and ablated runs are
// guaranteed to register the identical text.
var fuseSQL = map[string]string{
	"agg":      "SELECT k, sum(v) AS s, count(*) AS n FROM s [SIZE 40 SLIDE 10] WHERE v >= 1.0 GROUP BY k",
	"agg2":     "SELECT k, sum(v) AS s, count(*) AS n FROM s [SIZE 40 SLIDE 10] WHERE v >= 2.0 GROUP BY k",
	"proj":     "SELECT k, v FROM s [SIZE 40 SLIDE 10] WHERE v < 6.0",
	"noagg":    "SELECT k, v FROM s [SIZE 64 SLIDE 16] WHERE k = 1",
	"having":   "SELECT k, count(*) AS n FROM s [SIZE 40 SLIDE 10] GROUP BY k HAVING count(*) > 2",
	"minmax":   "SELECT k, min(v) AS lo, max(v) AS hi FROM s [SIZE 40 SLIDE 10] WHERE v > 0.5 GROUP BY k",
	"timeagg":  "SELECT k, sum(v) AS s FROM s [RANGE 4 SECONDS SLIDE 1 SECONDS ON ts] WHERE v >= 1.0 GROUP BY k",
	"join":     "SELECT s.k, count(*) AS n FROM s [SIZE 32 SLIDE 8], r [SIZE 32 SLIDE 8] WHERE s.k = r.k GROUP BY s.k",
	"joinrows": "SELECT s.v, r.v FROM s [SIZE 32 SLIDE 8] , r [SIZE 32 SLIDE 8] WHERE s.k = r.k",
}

// TestNoFuseAblationEquivalence runs the matrix: fused and unfused
// executors must be indistinguishable on every workload shape the
// executor specializes — filtered grouped aggregates (isolated and
// shared, one and four shards), pure projection tails, HAVING tails,
// time- and tuple-based windows, and incremental stream⋈stream joins.
func TestNoFuseAblationEquivalence(t *testing.T) {
	sensorDDL := "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)"
	cases := []fuseCase{
		{
			name: "isolated_agg_1shard",
			ddl:  []string{sensorDDL},
			queries: map[string][]RegisterOption{
				"agg": {WithMode(ModeIncremental), Isolated()},
			},
			feed: feedSensorRows("s", 400, 7, 5),
		},
		{
			name: "isolated_agg_4shards",
			ddl:  []string{"CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k"},
			queries: map[string][]RegisterOption{
				"agg":    {WithMode(ModeIncremental), Isolated()},
				"minmax": {WithMode(ModeIncremental), Isolated()},
			},
			feed: feedSensorRows("s", 400, 11, 5),
		},
		{
			name: "shared_group_mixed_tails",
			ddl:  []string{sensorDDL},
			queries: map[string][]RegisterOption{
				"agg":    {WithMode(ModeIncremental)},
				"agg2":   {WithMode(ModeIncremental)},
				"proj":   {WithMode(ModeIncremental)},
				"having": {WithMode(ModeIncremental)},
			},
			feed: feedSensorRows("s", 400, 13, 5),
		},
		{
			name: "shared_nomemo_members",
			ddl:  []string{sensorDDL},
			queries: map[string][]RegisterOption{
				"agg":    {WithMode(ModeIncremental), NoMemo()},
				"minmax": {WithMode(ModeIncremental), NoMemo()},
			},
			feed: feedSensorRows("s", 300, 9, 5),
		},
		{
			name: "noagg_projection_tail",
			ddl:  []string{sensorDDL},
			queries: map[string][]RegisterOption{
				"noagg": {WithMode(ModeIncremental), Isolated()},
			},
			feed: feedSensorRows("s", 320, 10, 3),
		},
		{
			name: "time_window",
			ddl:  []string{sensorDDL},
			queries: map[string][]RegisterOption{
				"timeagg": {WithMode(ModeIncremental), Isolated()},
			},
			// 100ms event-time steps: 300 rows span 30s, so the 4s/1s
			// range window seals dozens of times mid-feed.
			feed: func(t *testing.T, e *Engine) {
				for i := 0; i < 300; i += 6 {
					var rows [][]any
					for j := i; j < i+6 && j < 300; j++ {
						rows = append(rows, []any{int64(j) * 100_000, j % 5, float64(j%17) * 0.5})
					}
					if err := e.Append("s", rows); err != nil {
						t.Fatal(err)
					}
				}
			},
		},
		{
			name: "join_tails",
			ddl: []string{sensorDDL,
				"CREATE STREAM r (ts TIMESTAMP, k INT, v FLOAT)"},
			queries: map[string][]RegisterOption{
				"join":     {WithMode(ModeIncremental)},
				"joinrows": {WithMode(ModeIncremental)},
			},
			feed: func(t *testing.T, e *Engine) {
				feedSensorRows("s", 200, 7, 4)(t, e)
				feedSensorRows("r", 200, 9, 4)(t, e)
			},
		},
		{
			name: "reeval_mode",
			ddl:  []string{sensorDDL},
			queries: map[string][]RegisterOption{
				"agg": {WithMode(ModeReeval), Isolated()},
			},
			feed: feedSensorRows("s", 200, 7, 5),
		},
	}
	for _, fc := range cases {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			fused := runFuseCase(t, fc, false)
			unfused := runFuseCase(t, fc, true)
			for name := range fc.queries {
				f, u := fused[name], unfused[name]
				if len(f) != len(u) {
					t.Fatalf("%s: fused %d rows, unfused %d rows", name, len(f), len(u))
				}
				for i := range f {
					if f[i] != u[i] {
						t.Fatalf("%s row %d: fused %q != unfused %q", name, i, f[i], u[i])
					}
				}
				if len(f) == 0 {
					t.Errorf("%s: produced no rows — workload exercises nothing", name)
				}
			}
		})
	}
}

// TestPlanCache exercises the registration plan cache: identical SQL
// text hits, distinct text misses, Exec-path registrations bypass, and
// DDL invalidates by bumping the catalog generation.
func TestPlanCache(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
	sql := "SELECT k, count(*) AS n FROM s [SIZE 10 SLIDE 5] GROUP BY k"

	h0, m0, _ := e.PlanCacheStats()
	q1, err := e.RegisterQuery("c1", sql, WithMode(ModeIncremental))
	if err != nil {
		t.Fatal(err)
	}
	if h, m, _ := e.PlanCacheStats(); h != h0 || m != m0+1 {
		t.Fatalf("first registration: hits=%d misses=%d (want %d/%d)", h, m, h0, m0+1)
	}
	q2, err := e.RegisterQuery("c2", sql, WithMode(ModeIncremental))
	if err != nil {
		t.Fatal(err)
	}
	if h, m, _ := e.PlanCacheStats(); h != h0+1 || m != m0+1 {
		t.Fatalf("second registration not a hit: hits=%d misses=%d", h, m)
	}
	// Different requested mode = different key.
	q3, err := e.RegisterQuery("c3", sql, WithMode(ModeReeval))
	if err != nil {
		t.Fatal(err)
	}
	if h, m, _ := e.PlanCacheStats(); h != h0+1 || m != m0+2 {
		t.Fatalf("mode change should miss: hits=%d misses=%d", h, m)
	}

	// Cached plans still execute: all three see the same data.
	for i := 0; i < 40; i++ {
		if err := e.Append("s", []any{int64(i) * 1000, i % 3, float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	r1, r2 := rowsOf(collect(e, q1)), rowsOf(collect(e, q2))
	if len(r1) == 0 || fmt.Sprint(r1) != fmt.Sprint(r2) {
		t.Fatalf("cache-hit query diverged: %v vs %v", r1, r2)
	}
	_ = q3

	// DDL bumps the catalog generation: the same text recompiles.
	mustExec(t, e, "CREATE STREAM other (ts TIMESTAMP, x INT)")
	if _, err := e.RegisterQuery("c4", sql, WithMode(ModeIncremental)); err != nil {
		t.Fatal(err)
	}
	if h, m, _ := e.PlanCacheStats(); h != h0+1 || m != m0+3 {
		t.Fatalf("post-DDL registration should miss: hits=%d misses=%d", h, m)
	}

	// The Exec registration path has no SQL text to key on — it bypasses.
	mustExec(t, e, "REGISTER QUERY viaexec AS "+sql)
	if h, m, _ := e.PlanCacheStats(); h != h0+1 || m != m0+3 {
		t.Fatalf("Exec path must bypass the cache: hits=%d misses=%d", h, m)
	}
}
