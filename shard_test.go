package datacell

// Tests for sharded basket ingestion and parallel factory execution: the
// shard-merge invariant says an N-shard engine must produce exactly the
// results of the single-basket engine, per window, up to row order within
// a result set.

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"datacell/internal/bat"
)

// collectSorted drains a query's results, rendering each result set as a
// sorted list of row strings (order-insensitive comparison unit).
func collectSorted(q *Query) [][]string {
	var out [][]string
	for {
		select {
		case r := <-q.Out():
			rows := make([]string, r.Chunk.Rows())
			for i := range rows {
				vals := r.Chunk.Row(i)
				parts := make([]string, len(vals))
				for j, v := range vals {
					parts[j] = v.String()
				}
				rows[i] = fmt.Sprint(parts)
			}
			sort.Strings(rows)
			out = append(out, rows)
		default:
			return out
		}
	}
}

// runSharded feeds the given chunks through one registered query on an
// engine whose stream has the given DDL, returning per-eval sorted rows.
func runSharded(t *testing.T, ddl, sql string, mode Mode, chunks []*bat.Chunk) [][]string {
	t.Helper()
	eng := New(&Options{Workers: 4})
	defer eng.Close()
	if _, err := eng.Exec(ddl); err != nil {
		t.Fatal(err)
	}
	q, err := eng.Register("q", sql, &RegisterOptions{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range chunks {
		if err := eng.AppendChunk("s", c); err != nil {
			t.Fatal(err)
		}
	}
	eng.Drain()
	return collectSorted(q)
}

func shardTestChunks(n, batch, nkeys int) []*bat.Chunk {
	sch := bat.NewSchema([]string{"ts", "k", "v"}, []bat.Kind{bat.Time, bat.Int, bat.Float})
	var out []*bat.Chunk
	for pos := 0; pos < n; {
		take := batch
		if pos+take > n {
			take = n - pos
		}
		ts := make(bat.Times, take)
		ks := make(bat.Ints, take)
		vs := make(bat.Floats, take)
		for i := 0; i < take; i++ {
			g := pos + i
			ts[i] = int64(g) * 1000
			ks[i] = int64(g*7) % int64(nkeys)
			vs[i] = float64(g % 100)
		}
		out = append(out, &bat.Chunk{Schema: sch, Cols: []bat.Vector{ts, ks, vs}})
		pos += take
	}
	return out
}

// TestShardedMatchesSingleBasket is the acceptance invariant: identical
// input through 1-shard and 4-shard engines yields identical per-window
// results (order-insensitive), for both execution modes, hash and
// round-robin routing, grouped aggregates and row-level filters.
func TestShardedMatchesSingleBasket(t *testing.T) {
	queries := []string{
		"SELECT k, sum(v) AS s, count(*) AS n FROM s [SIZE 64 SLIDE 16] GROUP BY k",
		"SELECT k, min(v) AS lo, max(v) AS hi FROM s [SIZE 32 SLIDE 32] GROUP BY k",
		"SELECT k, v FROM s [SIZE 48 SLIDE 12] WHERE v >= 50.0",
		"SELECT count(*) AS n FROM s [SIZE 20 SLIDE 5] GROUP BY k HAVING count(*) > 2",
	}
	ddls := map[string]string{
		"hash":       "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k",
		"roundrobin": "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4",
	}
	single := "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)"
	chunks := shardTestChunks(400, 17, 5)
	for _, mode := range []Mode{ModeIncremental, ModeReeval} {
		for _, sql := range queries {
			want := runSharded(t, single, sql, mode, chunks)
			if len(want) == 0 {
				t.Fatalf("single-basket produced no results for %q", sql)
			}
			for route, ddl := range ddls {
				got := runSharded(t, ddl, sql, mode, chunks)
				if len(got) != len(want) {
					t.Fatalf("%s mode=%v %q: evals=%d, single-basket=%d",
						route, mode, sql, len(got), len(want))
				}
				for i := range want {
					if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
						t.Fatalf("%s mode=%v %q window %d:\nsharded %v\nsingle  %v",
							route, mode, sql, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestShardedTimeWindow checks the time-window path: absolute slide
// buckets sealed by the shared event-time watermark, plus AdvanceTime
// forcing idle buckets shut, match the single-basket engine.
func TestShardedTimeWindow(t *testing.T) {
	sql := "SELECT k, count(*) AS n FROM s [RANGE 2 SECONDS SLIDE 1 SECOND ON ts] GROUP BY k"
	run := func(ddl string) [][]string {
		eng := New(&Options{Workers: 4})
		defer eng.Close()
		if _, err := eng.Exec(ddl); err != nil {
			t.Fatal(err)
		}
		q, err := eng.Register("q", sql, nil)
		if err != nil {
			t.Fatal(err)
		}
		sec := int64(1_000_000)
		// 3 rows in bucket 0, 2 in bucket 1, gap, 1 in bucket 3.
		for i, ts := range []int64{100, 200, 300, sec + 100, sec + 200, 3*sec + 100} {
			if err := eng.Append("s", []any{ts, int64(i % 2), 1.0}); err != nil {
				t.Fatal(err)
			}
		}
		eng.Drain()
		eng.AdvanceTime(5 * sec)
		eng.Drain()
		return collectSorted(q)
	}
	want := run("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
	got := run("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k")
	if len(want) == 0 {
		t.Fatal("single-basket time windows produced no results")
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("time windows diverge:\nsharded %v\nsingle  %v", got, want)
	}
}

// TestShardedConcurrentProducers hammers a 4-shard stream from parallel
// producers and checks the tumbling-window invariant: every eval sees
// exactly window-size tuples regardless of append interleaving, and no
// tuple is lost or duplicated.
func TestShardedConcurrentProducers(t *testing.T) {
	const producers = 4
	const perProducer = 2000
	const win = 500
	eng := New(&Options{Workers: 4})
	defer eng.Close()
	if _, err := eng.Exec("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k"); err != nil {
		t.Fatal(err)
	}
	q, err := eng.Register("q",
		fmt.Sprintf("SELECT count(*) AS n FROM s [SIZE %d SLIDE %d]", win, win), nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sch := bat.NewSchema([]string{"ts", "k", "v"}, []bat.Kind{bat.Time, bat.Int, bat.Float})
			for i := 0; i < perProducer; i += 50 {
				c := bat.NewChunk(sch)
				for j := 0; j < 50; j++ {
					_ = c.AppendRow(bat.TimeValue(int64(i+j)), bat.IntValue(int64(p*1000+i+j)), bat.FloatValue(1))
				}
				if err := eng.AppendChunk("s", c); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	eng.Drain()
	res := collectSorted(q)
	wantEvals := producers * perProducer / win
	if len(res) != wantEvals {
		t.Fatalf("evals = %d, want %d", len(res), wantEvals)
	}
	for i, rows := range res {
		if len(rows) != 1 || rows[0] != fmt.Sprintf("[%d]", win) {
			t.Fatalf("eval %d = %v, want [[%d]]", i, rows, win)
		}
	}
	if st := q.Stats(); st.TuplesIn != producers*perProducer {
		t.Errorf("TuplesIn = %d, want %d", st.TuplesIn, producers*perProducer)
	}
}

// TestShardedSnapshotOrder checks that one-time queries over a sharded
// stream see rows in global arrival order (k-way merge by sequence).
func TestShardedSnapshotOrder(t *testing.T) {
	eng := New(&Options{Workers: 2})
	defer eng.Close()
	if _, err := eng.Exec("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := eng.Append("s", []any{int64(i), int64(i), float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c, err := eng.Query1("SELECT k FROM s")
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows() != 20 {
		t.Fatalf("rows = %d", c.Rows())
	}
	for i := 0; i < 20; i++ {
		if got := c.Cols[0].Get(i).I; got != int64(i) {
			t.Fatalf("row %d = %d, want %d (arrival order lost)", i, got, i)
		}
	}
}

// TestShardedPauseResume checks container-level pause: appends while
// paused are neither sequenced nor visible, and Resume replays them
// through the partitioned path.
func TestShardedPauseResume(t *testing.T) {
	eng := New(&Options{Workers: 2})
	defer eng.Close()
	if _, err := eng.Exec("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k"); err != nil {
		t.Fatal(err)
	}
	q, err := eng.Register("q", "SELECT count(*) AS n FROM s [SIZE 4 SLIDE 4]", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.PauseStream("s"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		_ = eng.Append("s", []any{int64(i), int64(i), 1.0})
	}
	eng.Drain()
	if got := collectSorted(q); len(got) != 0 {
		t.Fatalf("results while paused: %v", got)
	}
	bk, _ := eng.Basket("s")
	if !bk.Paused() {
		t.Fatal("container not paused")
	}
	if err := eng.ResumeStream("s"); err != nil {
		t.Fatal(err)
	}
	eng.Drain()
	if got := collectSorted(q); len(got) != 2 {
		t.Fatalf("results after resume = %v, want 2 evals", got)
	}
}

// TestShardDDL exercises the SHARD clause surface.
func TestShardDDL(t *testing.T) {
	eng := New(nil)
	defer eng.Close()
	res, err := eng.Exec("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k")
	if err != nil {
		t.Fatal(err)
	}
	if res.Msg != "stream s created (4 shards)" {
		t.Errorf("msg = %q", res.Msg)
	}
	bk, _ := eng.Basket("s")
	if bk.NumShards() != 4 || bk.KeyIndex() != 1 {
		t.Errorf("shards=%d keyIdx=%d", bk.NumShards(), bk.KeyIndex())
	}
	if _, err := eng.Exec("CREATE STREAM bad (k INT) SHARD 2 KEY nope"); err == nil {
		t.Error("unknown shard key accepted")
	}
	if _, err := eng.Exec("CREATE STREAM bad2 (k INT) SHARD 0"); err == nil {
		t.Error("zero shard count accepted")
	}
	// Columns named shard/key stay legal (contextual parsing).
	if _, err := eng.Exec("CREATE STREAM meta (shard INT, key STRING)"); err != nil {
		t.Errorf("contextual SHARD/KEY broke column names: %v", err)
	}
}

// TestShardedTimeWindowDrainLiveness is the regression test for sealed
// buckets being withheld until the next append: when the watermark-raising
// row lands on a different shard than earlier buckets' rows, the raising
// firing must re-notify its sibling shards so Drain() observes every
// sealed window without an AdvanceTime heartbeat.
func TestShardedTimeWindowDrainLiveness(t *testing.T) {
	sec := int64(1_000_000)
	for iter := 0; iter < 20; iter++ {
		eng := New(&Options{Workers: 4})
		// Round-robin: consecutive appends land on different shards.
		if _, err := eng.Exec("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4"); err != nil {
			t.Fatal(err)
		}
		q, err := eng.Register("q",
			"SELECT count(*) AS n FROM s [RANGE 2 SECONDS SLIDE 1 SECOND ON ts]", nil)
		if err != nil {
			t.Fatal(err)
		}
		// Bucket-0 rows on shard 0, then the bucket-3 row on shard 1.
		if err := eng.Append("s", []any{int64(100), int64(1), 1.0}, []any{int64(200), int64(2), 1.0}); err != nil {
			t.Fatal(err)
		}
		if err := eng.Append("s", []any{3*sec + 100, int64(3), 1.0}); err != nil {
			t.Fatal(err)
		}
		eng.Drain()
		// Buckets 0..2 are sealed by the bucket-3 row; ring size 2 →
		// windows {0,1} (count 2) and {1,2} (empty: zero-row aggregate)
		// must be out after Drain alone.
		res := collectSorted(q)
		if len(res) != 2 || len(res[0]) != 1 || res[0][0] != "[2]" || len(res[1]) != 0 {
			t.Fatalf("iter %d: results after Drain = %v, want [[[2]] []]", iter, res)
		}
		eng.Close()
	}
}

// TestShardedFloatKeyRouting pins that fractional float keys spread across
// shards (hashing the bit pattern, not the truncated integer part).
func TestShardedFloatKeyRouting(t *testing.T) {
	eng := New(&Options{Workers: 2})
	defer eng.Close()
	if _, err := eng.Exec("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY v"); err != nil {
		t.Fatal(err)
	}
	sch := bat.NewSchema([]string{"ts", "k", "v"}, []bat.Kind{bat.Time, bat.Int, bat.Float})
	c := bat.NewChunk(sch)
	for i := 0; i < 64; i++ {
		// All keys in [0, 1): truncation would route every row to one shard.
		_ = c.AppendRow(bat.TimeValue(int64(i)), bat.IntValue(int64(i)), bat.FloatValue(float64(i)/64))
	}
	if err := eng.AppendChunk("s", c); err != nil {
		t.Fatal(err)
	}
	bk, _ := eng.Basket("s")
	nonEmpty := 0
	for _, st := range bk.ShardStats() {
		if st.Len > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Fatalf("64 distinct fractional keys landed on %d shard(s)", nonEmpty)
	}
}
