package datacell

import (
	"strconv"

	"datacell/internal/metrics"
	"datacell/internal/monitor"
)

// EngineMetricDescs declares every metric family the engine collector
// exports: basket occupancy and throughput, per-query evaluation
// counters and latencies (including a p99 over the newest evaluations),
// shared-group memo/merge/post effectiveness, scheduler depths, and
// per-tenant accounting. docs/METRICS.md is the rendered reference; a
// unit test keeps the two in sync.
var EngineMetricDescs = []metrics.Desc{
	// Baskets.
	{Name: "datacell_basket_occupancy_tuples", Type: metrics.Gauge,
		Help: "Tuples currently buffered in the stream's basket.", Labels: []string{"stream"}},
	{Name: "datacell_basket_appended_tuples_total", Type: metrics.Counter,
		Help: "Tuples ever appended to the stream's basket.", Labels: []string{"stream"}},
	{Name: "datacell_basket_dropped_tuples_total", Type: metrics.Counter,
		Help: "Tuples dropped from the basket after full consumption.", Labels: []string{"stream"}},
	{Name: "datacell_basket_consumers", Type: metrics.Gauge,
		Help: "Registered basket consumers (query cursors).", Labels: []string{"stream"}},
	{Name: "datacell_basket_shards", Type: metrics.Gauge,
		Help: "Shard count of the stream's basket container.", Labels: []string{"stream"}},

	// Continuous queries.
	{Name: "datacell_query_evals_total", Type: metrics.Counter,
		Help: "Window/batch evaluations (results emitted).", Labels: []string{"query"}},
	{Name: "datacell_query_tuples_in_total", Type: metrics.Counter,
		Help: "Tuples consumed by the query.", Labels: []string{"query"}},
	{Name: "datacell_query_rows_out_total", Type: metrics.Counter,
		Help: "Result rows emitted by the query.", Labels: []string{"query"}},
	{Name: "datacell_query_busy_usec_total", Type: metrics.Counter,
		Help: "Total time spent inside the query's shard firings (microseconds).", Labels: []string{"query"}},
	{Name: "datacell_query_last_latency_usec", Type: metrics.Gauge,
		Help: "Response time of the newest result (microseconds).", Labels: []string{"query"}},
	{Name: "datacell_query_max_latency_usec", Type: metrics.Gauge,
		Help: "Worst response time observed (microseconds).", Labels: []string{"query"}},
	{Name: "datacell_query_p99_latency_usec", Type: metrics.Gauge,
		Help: "99th-percentile response time over the newest evaluations (microseconds).", Labels: []string{"query"}},
	{Name: "datacell_query_results_pending", Type: metrics.Gauge,
		Help: "Results sitting unconsumed in the query's Out channel.", Labels: []string{"query"}},
	{Name: "datacell_query_results_dropped_total", Type: metrics.Counter,
		Help: "Results discarded because the Out channel was full.", Labels: []string{"query"}},

	// Shared execution groups.
	{Name: "datacell_group_members", Type: metrics.Gauge,
		Help: "Member queries sharing the group's slice.", Labels: []string{"group"}},
	{Name: "datacell_group_shards", Type: metrics.Gauge,
		Help: "Shared firing units of the group (both sides for joins).", Labels: []string{"group"}},
	{Name: "datacell_group_windows_out_total", Type: metrics.Counter,
		Help: "Basic windows fanned out to members.", Labels: []string{"group"}},
	{Name: "datacell_group_live_buffers", Type: metrics.Gauge,
		Help: "Sealed window buffers still referenced by a member.", Labels: []string{"group"}},
	{Name: "datacell_group_dag_nodes", Type: metrics.Gauge,
		Help: "Distinct operator nodes in the group's shared operator DAG.", Labels: []string{"group"}},
	{Name: "datacell_group_memo_hits_total", Type: metrics.Counter,
		Help: "Operator evaluations served from a sibling's memoized output.", Labels: []string{"group"}},
	{Name: "datacell_group_memo_misses_total", Type: metrics.Counter,
		Help: "Operator evaluations actually computed in the shared DAG.", Labels: []string{"group"}},
	{Name: "datacell_group_memo_hit_ratio", Type: metrics.Gauge,
		Help: "DAG memo hit rate in [0,1].", Labels: []string{"group"}},
	{Name: "datacell_group_merge_classes", Type: metrics.Gauge,
		Help: "Merge classes: member sets whose full-window merges are byte-identical.", Labels: []string{"group"}},
	{Name: "datacell_group_merge_hits_total", Type: metrics.Counter,
		Help: "Full-window merges served from a class sibling's evaluation.", Labels: []string{"group"}},
	{Name: "datacell_group_merge_misses_total", Type: metrics.Counter,
		Help: "Full-window merges actually computed.", Labels: []string{"group"}},
	{Name: "datacell_group_merge_hit_ratio", Type: metrics.Gauge,
		Help: "Shared-merge hit rate in [0,1].", Labels: []string{"group"}},
	{Name: "datacell_group_post_nodes", Type: metrics.Gauge,
		Help: "Distinct post-merge fragment operators in the group's trie.", Labels: []string{"group"}},
	{Name: "datacell_group_post_hits_total", Type: metrics.Counter,
		Help: "Post-merge fragments served from the trie's memo.", Labels: []string{"group"}},
	{Name: "datacell_group_post_misses_total", Type: metrics.Counter,
		Help: "Post-merge fragments actually computed.", Labels: []string{"group"}},
	{Name: "datacell_group_post_hit_ratio", Type: metrics.Gauge,
		Help: "Post-merge trie memo hit rate in [0,1].", Labels: []string{"group"}},
	{Name: "datacell_group_pair_caches", Type: metrics.Gauge,
		Help: "Shared join-pair caches (one per distinct join fingerprint).", Labels: []string{"group"}},
	{Name: "datacell_group_cached_pairs", Type: metrics.Gauge,
		Help: "Live basic-window join-pair cache entries.", Labels: []string{"group"}},
	{Name: "datacell_group_pairs_computed_total", Type: metrics.Counter,
		Help: "Basic-window join pairs ever computed (misses of the pair cache).", Labels: []string{"group"}},

	// Scheduler.
	{Name: "datacell_scheduler_workers", Type: metrics.Gauge,
		Help: "Worker-pool size."},
	{Name: "datacell_scheduler_transitions", Type: metrics.Gauge,
		Help: "Registered Petri-net transitions."},
	{Name: "datacell_scheduler_transition_groups", Type: metrics.Gauge,
		Help: "Registered transition groups (queries and shared groups)."},
	{Name: "datacell_scheduler_queued", Type: metrics.Gauge,
		Help: "Transitions sitting in ready queues."},
	{Name: "datacell_scheduler_running", Type: metrics.Gauge,
		Help: "Transitions currently inside Fire."},
	{Name: "datacell_scheduler_fired_total", Type: metrics.Counter,
		Help: "Cumulative transition firings since start."},
	{Name: "datacell_scheduler_queue_depth", Type: metrics.Gauge,
		Help: "Per-worker ready-queue length.", Labels: []string{"worker"}},

	// Tenants.
	{Name: "datacell_tenant_queries", Type: metrics.Gauge,
		Help: "Registered queries (plus in-flight reservations) of the tenant.", Labels: []string{"tenant"}},
	{Name: "datacell_tenant_lag_windows", Type: metrics.Gauge,
		Help: "Unconsumed results of the tenant's slowest consumer.", Labels: []string{"tenant"}},
	{Name: "datacell_tenant_rejected_queries_total", Type: metrics.Counter,
		Help: "Registrations refused by admission control.", Labels: []string{"tenant"}},
	{Name: "datacell_tenant_appended_rows_total", Type: metrics.Counter,
		Help: "Rows ingested through the tenant append path.", Labels: []string{"tenant"}},
	{Name: "datacell_tenant_throttled_appends_total", Type: metrics.Counter,
		Help: "Appends that blocked on the rate limiter or lag backpressure.", Labels: []string{"tenant"}},
	{Name: "datacell_tenant_throttle_wait_usec_total", Type: metrics.Counter,
		Help: "Total time throttled appends waited (microseconds).", Labels: []string{"tenant"}},
}

// MetricsCollector adapts the engine's live counters into a metrics
// source for a Registry. Collection is a read-only snapshot — safe to
// scrape while the network fires.
func (e *Engine) MetricsCollector() metrics.Collector {
	return metrics.CollectorFunc{Descs: EngineMetricDescs, Fn: e.collectMetrics}
}

func (e *Engine) collectMetrics(emit func(metrics.Metric)) {
	g1 := func(name, label string, v float64) {
		emit(metrics.Metric{Name: name, LabelValues: []string{label}, Value: v})
	}

	st := e.Stats()
	for _, b := range st.Baskets {
		g1("datacell_basket_occupancy_tuples", b.Name, float64(b.Len))
		g1("datacell_basket_appended_tuples_total", b.Name, float64(b.TotalIn))
		g1("datacell_basket_dropped_tuples_total", b.Name, float64(b.TotalDrop))
		g1("datacell_basket_consumers", b.Name, float64(b.Consumers))
		g1("datacell_basket_shards", b.Name, float64(b.Shards))
	}

	e.mu.Lock()
	qs := make([]*Query, 0, len(e.queries))
	for _, q := range e.queries {
		qs = append(qs, q)
	}
	e.mu.Unlock()
	for _, q := range qs {
		s := q.Stats()
		g1("datacell_query_evals_total", s.Name, float64(s.Evals))
		g1("datacell_query_tuples_in_total", s.Name, float64(s.TuplesIn))
		g1("datacell_query_rows_out_total", s.Name, float64(s.RowsOut))
		g1("datacell_query_busy_usec_total", s.Name, float64(s.BusyUsec))
		g1("datacell_query_last_latency_usec", s.Name, float64(s.LastLatency))
		g1("datacell_query_max_latency_usec", s.Name, float64(s.MaxLatency))
		g1("datacell_query_p99_latency_usec", s.Name,
			float64(monitor.Percentile(q.fac.RecentLatencies(), 99)))
		if q.out != nil {
			g1("datacell_query_results_pending", s.Name, float64(q.out.Pending()))
			g1("datacell_query_results_dropped_total", s.Name, float64(q.out.Dropped()))
		}
	}

	for _, gi := range e.Groups() {
		g1("datacell_group_members", gi.Key, float64(gi.Members))
		g1("datacell_group_shards", gi.Key, float64(gi.Shards))
		g1("datacell_group_windows_out_total", gi.Key, float64(gi.WindowsOut))
		g1("datacell_group_live_buffers", gi.Key, float64(gi.LiveBufs))
		g1("datacell_group_dag_nodes", gi.Key, float64(gi.DagNodes))
		g1("datacell_group_memo_hits_total", gi.Key, float64(gi.MemoHits))
		g1("datacell_group_memo_misses_total", gi.Key, float64(gi.MemoMisses))
		g1("datacell_group_memo_hit_ratio", gi.Key, gi.MemoHitRate())
		g1("datacell_group_merge_classes", gi.Key, float64(gi.MergeClasses))
		g1("datacell_group_merge_hits_total", gi.Key, float64(gi.MergeHits))
		g1("datacell_group_merge_misses_total", gi.Key, float64(gi.MergeMisses))
		g1("datacell_group_merge_hit_ratio", gi.Key, gi.MergeHitRate())
		g1("datacell_group_post_nodes", gi.Key, float64(gi.PostNodes))
		g1("datacell_group_post_hits_total", gi.Key, float64(gi.PostHits))
		g1("datacell_group_post_misses_total", gi.Key, float64(gi.PostMisses))
		g1("datacell_group_post_hit_ratio", gi.Key, gi.PostHitRate())
		g1("datacell_group_pair_caches", gi.Key, float64(gi.PairCaches))
		g1("datacell_group_cached_pairs", gi.Key, float64(gi.CachedPairs))
		g1("datacell_group_pairs_computed_total", gi.Key, float64(gi.PairsComputed))
	}

	ss := e.sched.Stats()
	g0 := func(name string, v float64) { emit(metrics.Metric{Name: name, Value: v}) }
	g0("datacell_scheduler_workers", float64(ss.Workers))
	g0("datacell_scheduler_transitions", float64(ss.Transitions))
	g0("datacell_scheduler_transition_groups", float64(ss.Groups))
	g0("datacell_scheduler_queued", float64(ss.Queued))
	g0("datacell_scheduler_running", float64(ss.Running))
	g0("datacell_scheduler_fired_total", float64(ss.Fired))
	for i, d := range ss.QueueDepths {
		g1("datacell_scheduler_queue_depth", strconv.Itoa(i), float64(d))
	}

	for _, t := range e.TenantStats() {
		g1("datacell_tenant_queries", t.Name, float64(t.Queries))
		g1("datacell_tenant_lag_windows", t.Name, float64(t.LagWindows))
		g1("datacell_tenant_rejected_queries_total", t.Name, float64(t.RejectedQueries))
		g1("datacell_tenant_appended_rows_total", t.Name, float64(t.AppendedRows))
		g1("datacell_tenant_throttled_appends_total", t.Name, float64(t.ThrottledAppends))
		g1("datacell_tenant_throttle_wait_usec_total", t.Name, float64(t.ThrottleWaitUsec))
	}
}
