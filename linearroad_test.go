package datacell

import (
	"sync/atomic"
	"testing"

	"datacell/internal/emitter"
	"datacell/internal/linearroad"
)

// TestLinearRoadEndToEnd drives the full Linear Road query set over the
// engine: segment statistics, vehicle counts and accident detection over
// generated traffic, checking the response-time constraint with a logical
// clock (arrival → evaluation in engine ticks).
func TestLinearRoadEndToEnd(t *testing.T) {
	var clock atomic.Int64
	e := New(&Options{Workers: 4, Now: func() int64 { return clock.Add(1) }})
	defer e.Close()

	if _, err := e.Exec(linearroad.CreateStreamSQL); err != nil {
		t.Fatal(err)
	}
	segStats, err := e.Register("seg_stats", linearroad.SegmentStatsSQL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	vcount, err := e.Register("veh_count", linearroad.VehicleCountSQL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	accidents, err := e.Register("accidents", linearroad.AccidentSQL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []*Query{segStats, vcount, accidents} {
		if q.Mode() != "incremental" {
			t.Errorf("query %s mode = %s, want incremental", q.Name(), q.Mode())
		}
	}

	cfg := linearroad.Config{
		Xways: 1, CarsPerXway: 300, DurationSec: 600,
		ReportEverySec: 30, AccidentProb: 0.05, Seed: 11,
	}
	var pushed int64
	for _, c := range linearroad.Generate(cfg) {
		if err := e.AppendChunk("lr_pos", c); err != nil {
			t.Fatal(err)
		}
		pushed += int64(c.Rows())
	}
	e.Drain()
	// Close the trailing time buckets.
	e.AdvanceTime(int64(cfg.DurationSec+300) * 1_000_000)
	e.Drain()

	// Segment statistics: 5-min windows sliding per minute over 10
	// minutes → several evaluations with many segment groups.
	segRes := drainAll(segStats)
	if len(segRes) < 5 {
		t.Fatalf("segment stats evaluations = %d, want >= 5", len(segRes))
	}
	groups := 0
	for _, r := range segRes {
		groups += r.Chunk.Rows()
		for i := 0; i < r.Chunk.Rows(); i++ {
			row := r.Chunk.Row(i)
			if row[3].F < 0 || row[3].F > 100 {
				t.Errorf("avg speed out of range: %v", row[3])
			}
			// Toll formula consumes these outputs.
			_ = linearroad.Toll(row[3].F, row[4].I)
		}
	}
	if groups == 0 {
		t.Error("no segment groups reported")
	}

	if got := len(drainAll(vcount)); got < 5 {
		t.Errorf("vehicle count evaluations = %d", got)
	}

	// With a 5% accident probability some segment must trip the detector.
	accRes := drainAll(accidents)
	accRows := 0
	for _, r := range accRes {
		accRows += r.Chunk.Rows()
		for i := 0; i < r.Chunk.Rows(); i++ {
			if r.Chunk.Row(i)[3].I < 4 {
				t.Errorf("accident row below HAVING threshold: %v", r.Chunk.Row(i))
			}
		}
	}
	if accRows == 0 {
		t.Error("no accidents detected despite forced accident probability")
	}

	st := e.Stats()
	if st.Baskets[0].TotalIn != pushed {
		t.Errorf("basket in = %d, want %d", st.Baskets[0].TotalIn, pushed)
	}
}

func drainAll(q *Query) []emitter.Result {
	var out []emitter.Result
	for {
		select {
		case r, ok := <-q.Out():
			if !ok {
				return out
			}
			out = append(out, r)
		default:
			return out
		}
	}
}
