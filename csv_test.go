package datacell

import (
	"os"
	"strings"
	"testing"
	"time"
)

func TestLoadStreamCSV(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
	q, _ := e.Register("q", "SELECT sum(v) AS t FROM s [SIZE 2 SLIDE 2]", nil)
	src := "# header comment\n1,1,0.5\n2,2,1.5\n\n3,3,2.5\n4,4,3.5\n"
	n, err := e.LoadStreamCSV("s", strings.NewReader(src), 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("loaded %d tuples", n)
	}
	res := collect(e, q)
	if len(res) != 2 || res[0].Chunk.Row(0)[0].F != 2.0 || res[1].Chunk.Row(0)[0].F != 6.0 {
		t.Errorf("windows = %v", res)
	}
	if _, err := e.LoadStreamCSV("ghost", strings.NewReader("1"), 1); err == nil {
		t.Error("unknown stream should fail")
	}
	if _, err := e.LoadStreamCSV("s", strings.NewReader("bad,line,x"), 1); err == nil {
		t.Error("malformed line should fail")
	}
}

func TestLoadStreamCSVFile(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE STREAM s (ts TIMESTAMP, v INT)")
	path := t.TempDir() + "/data.csv"
	if err := writeFile(path, "1,10\n2,20\n"); err != nil {
		t.Fatal(err)
	}
	n, err := e.LoadStreamCSVFile("s", path, 10)
	if err != nil || n != 2 {
		t.Fatalf("loaded %d, err %v", n, err)
	}
	if _, err := e.LoadStreamCSVFile("s", path+".missing", 10); err == nil {
		t.Error("missing file should fail")
	}
}

func TestLoadTableCSVAndSave(t *testing.T) {
	e, _ := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE dim (k INT, name VARCHAR)")
	n, err := e.LoadTableCSV("dim", strings.NewReader("1,one\n2,two\n# skip\n3,three\n"))
	if err != nil || n != 3 {
		t.Fatalf("loaded %d, err %v", n, err)
	}
	res := mustExec(t, e, "SELECT name FROM dim WHERE k >= 2 ORDER BY name")
	var sb strings.Builder
	if err := SaveCSV(&sb, res.Chunk); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "three\ntwo\n" {
		t.Errorf("SaveCSV = %q", sb.String())
	}
	if _, err := e.LoadTableCSV("ghost", strings.NewReader("1")); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := e.LoadTableCSV("dim", strings.NewReader("oops")); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := e.LoadTableCSV("dim", strings.NewReader("x,one")); err == nil {
		t.Error("bad int should fail")
	}
}

func TestHeartbeatClosesTimeWindows(t *testing.T) {
	// Wall-clock engine with a fast heartbeat: a time-windowed query over
	// an idle stream still emits once the watermark passes the bucket.
	e := New(&Options{Workers: 2, Heartbeat: 5 * time.Millisecond})
	defer e.Close()
	if _, err := e.Exec("CREATE STREAM s (ts TIMESTAMP, v INT)"); err != nil {
		t.Fatal(err)
	}
	q, err := e.Register("q",
		"SELECT count(*) AS n FROM s [RANGE 20 MILLISECONDS SLIDE 10 MILLISECONDS ON ts]", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Append("s", []any{time.Now(), 1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case r := <-q.Out():
			if r.Chunk.Rows() == 0 {
				t.Fatal("empty result")
			}
			return
		default:
			time.Sleep(time.Millisecond)
		}
	}
	t.Fatal("heartbeat never closed the window")
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
