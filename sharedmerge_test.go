package datacell

// Tests for sharing past the merge boundary: members of one execution
// group whose incremental decompositions agree on a plan.MergeKey share a
// group-owned merge ring (the full-window merge evaluates once per sealed
// window for the whole class), and identical post-merge fragments —
// HAVING filters, final sorts, LIMITs — evaluate once per merged view
// through the group's post-merge trie. The equivalence invariant is
// unchanged: a class member produces byte-identical output to the same
// query registered alone or ISOLATED.

import (
	"fmt"
	"testing"
)

// postMemberSQL is the i-th member of the post-merge sharing tests: one
// shared pipeline + partial-aggregate prefix (one merge class), with
// HAVING / ORDER BY / LIMIT post fragments that repeat every four
// members, so identical post chains share trie nodes while distinct ones
// split.
func postMemberSQL(i, size, slide int) string {
	switch i % 4 {
	case 0:
		return fmt.Sprintf(
			"SELECT k, sum(v) AS s, count(*) AS n FROM s [SIZE %d SLIDE %d] GROUP BY k HAVING count(*) > 2", size, slide)
	case 1:
		return fmt.Sprintf(
			"SELECT k, sum(v) AS s, count(*) AS n FROM s [SIZE %d SLIDE %d] GROUP BY k ORDER BY s DESC", size, slide)
	case 2:
		return fmt.Sprintf(
			"SELECT k, sum(v) AS s, count(*) AS n FROM s [SIZE %d SLIDE %d] GROUP BY k ORDER BY s DESC LIMIT 3", size, slide)
	default:
		return fmt.Sprintf(
			"SELECT k, sum(v) AS s, count(*) AS n FROM s [SIZE %d SLIDE %d] GROUP BY k HAVING sum(v) > 100.0 ORDER BY k", size, slide)
	}
}

// TestPostMergeShareEquivalence is the post-merge sharing acceptance
// invariant: HAVING/sort/LIMIT members produce byte-identical results to
// the same queries registered ISOLATED, on 1-shard and 4-shard streams,
// while identical post fragments share trie nodes (visible as a post-
// merge memo hit-rate floor: every chain appears twice among 8 members,
// so at least half of all post evaluations must be memo hits).
func TestPostMergeShareEquivalence(t *testing.T) {
	chunks := shardTestChunks(400, 17, 6)
	const members = 8
	const size, slide = 40, 10
	ddls := []string{
		"CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)",
		"CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k",
	}
	for _, ddl := range ddls {
		// Isolated: the same queries with their own cursors and rings.
		iso := New(&Options{Workers: 1})
		mustExecG(t, iso, ddl)
		isoQs := make([]*Query, members)
		for i := 0; i < members; i++ {
			q, err := iso.Register(fmt.Sprintf("q%02d", i), postMemberSQL(i, size, slide),
				&RegisterOptions{Mode: ModeIncremental, Isolated: true})
			if err != nil {
				t.Fatal(err)
			}
			isoQs[i] = q
		}
		for _, c := range chunks {
			if err := iso.AppendChunk("s", c); err != nil {
				t.Fatal(err)
			}
		}
		iso.Drain()
		want := make([][]string, members)
		for i, q := range isoQs {
			want[i] = collectRendered(q)
			if len(want[i]) == 0 {
				t.Fatalf("ddl=%q isolated member %d emitted nothing", ddl, i)
			}
		}
		iso.Close()

		// Grouped: one execution group, one merge class, shared post trie.
		eng := New(&Options{Workers: 1})
		mustExecG(t, eng, ddl)
		qs := make([]*Query, members)
		for i := 0; i < members; i++ {
			q, err := eng.Register(fmt.Sprintf("q%02d", i), postMemberSQL(i, size, slide),
				&RegisterOptions{Mode: ModeIncremental})
			if err != nil {
				t.Fatal(err)
			}
			qs[i] = q
		}
		for _, c := range chunks {
			if err := eng.AppendChunk("s", c); err != nil {
				t.Fatal(err)
			}
		}
		eng.Drain()
		for i, q := range qs {
			got := collectRendered(q)
			if len(got) != len(want[i]) {
				t.Fatalf("ddl=%q member %d: evals=%d, isolated=%d", ddl, i, len(got), len(want[i]))
			}
			for j := range got {
				if got[j] != want[i][j] {
					t.Fatalf("ddl=%q member %d eval %d diverges:\ngrouped:\n%s\nisolated:\n%s",
						ddl, i, j, got[j], want[i][j])
				}
			}
		}
		g := eng.Groups()
		if len(g) != 1 {
			t.Fatalf("groups = %+v", g)
		}
		if g[0].MergeClasses != 1 {
			t.Errorf("ddl=%q merge classes = %d, want 1 (one shared extent+fingerprint)", ddl, g[0].MergeClasses)
		}
		if g[0].MergeMisses == 0 || g[0].MergeHits == 0 {
			t.Fatalf("ddl=%q merge counters: hits=%d misses=%d", ddl, g[0].MergeHits, g[0].MergeMisses)
		}
		// 8 members, one class: 7 of 8 merge requests per window are hits.
		if rate := g[0].MergeHitRate(); rate < 0.85 {
			t.Errorf("ddl=%q merge hit rate = %.2f, want ≥ 0.85", ddl, rate)
		}
		if g[0].PostNodes == 0 {
			t.Error("no post-merge trie nodes registered")
		}
		// Every post chain appears exactly twice among the 8 members: one
		// member evaluates it (misses count per NODE computed), its twin is
		// served whole from the memo (hits count per chain request), so the
		// rate floor is modest but must be clearly nonzero.
		if g[0].PostHits == 0 {
			t.Error("duplicated post chains produced no post-merge memo hits")
		}
		if rate := g[0].PostHitRate(); rate < 0.2 {
			t.Errorf("ddl=%q post-merge memo hit rate = %.2f, want ≥ 0.2", ddl, rate)
		}
		eng.Close()
	}
}

// TestSharedMergeOncePerWindow pins the acceptance criterion directly: 16
// identical sliding-window members perform exactly ONE merge and ONE
// post-merge fragment evaluation per sealed full window — the other 15
// requests are memo hits — while every member's output stays byte-
// identical to the same query registered alone.
func TestSharedMergeOncePerWindow(t *testing.T) {
	const (
		members = 16
		n       = 400
		size    = 40
		slide   = 10
	)
	chunks := shardTestChunks(n, 13, 5)
	sql := fmt.Sprintf(
		"SELECT k, sum(v) AS s, count(*) AS c FROM s [SIZE %d SLIDE %d] GROUP BY k HAVING count(*) > 1 ORDER BY k",
		size, slide)

	// Alone.
	one := New(&Options{Workers: 1})
	mustExecG(t, one, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
	qa, err := one.Register("q", sql, &RegisterOptions{Mode: ModeIncremental})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range chunks {
		if err := one.AppendChunk("s", c); err != nil {
			t.Fatal(err)
		}
	}
	one.Drain()
	want := collectRendered(qa)
	one.Close()
	if len(want) == 0 {
		t.Fatal("alone run emitted nothing")
	}

	// Grouped 16.
	eng := New(&Options{Workers: 1})
	defer eng.Close()
	mustExecG(t, eng, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
	qs := make([]*Query, members)
	for i := 0; i < members; i++ {
		q, err := eng.Register(fmt.Sprintf("q%02d", i), sql, &RegisterOptions{Mode: ModeIncremental})
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = q
	}
	for _, c := range chunks {
		if err := eng.AppendChunk("s", c); err != nil {
			t.Fatal(err)
		}
	}
	eng.Drain()
	for i, q := range qs {
		got := collectRendered(q)
		if len(got) != len(want) {
			t.Fatalf("member %d: evals=%d, alone=%d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("member %d eval %d diverges:\ngrouped:\n%s\nalone:\n%s", i, j, got[j], want[j])
			}
		}
	}

	g := eng.Groups()
	if len(g) != 1 || g[0].MergeClasses != 1 {
		t.Fatalf("groups = %+v, want one group with one merge class", g)
	}
	// Full windows: one per sealed basic window once the ring warmed up.
	fullWindows := int64(n/slide - (size/slide - 1))
	if int64(len(want)) != fullWindows {
		t.Fatalf("eval count = %d, want %d full windows", len(want), fullWindows)
	}
	if g[0].MergeMisses != fullWindows {
		t.Errorf("merge evaluations = %d, want exactly %d (one per sealed window)",
			g[0].MergeMisses, fullWindows)
	}
	if g[0].MergeHits != fullWindows*(members-1) {
		t.Errorf("merge memo hits = %d, want %d (the other %d members per window)",
			g[0].MergeHits, fullWindows*(members-1), members-1)
	}
	if g[0].PostNodes == 0 {
		t.Fatal("no post-merge trie nodes for a HAVING+ORDER BY fragment")
	}
	wantPostMisses := fullWindows * int64(g[0].PostNodes)
	if g[0].PostMisses != wantPostMisses {
		t.Errorf("post-merge evaluations = %d, want exactly %d (%d nodes × %d windows)",
			g[0].PostMisses, wantPostMisses, g[0].PostNodes, fullWindows)
	}
	if g[0].PostHits != fullWindows*int64(members-1) {
		t.Errorf("post-merge memo hits = %d, want %d", g[0].PostHits, fullWindows*int64(members-1))
	}
}

// TestSharedMergePauseResume: pausing one merge-class member must not
// stall its class; the merged-view memo cells ride the paused member's
// queue, so it catches up on Resume with byte-identical results.
func TestSharedMergePauseResume(t *testing.T) {
	sql := "SELECT k, sum(v) AS s FROM s [SIZE 20 SLIDE 10] GROUP BY k HAVING sum(v) > 10.0"
	eng := New(&Options{Workers: 2})
	defer eng.Close()
	mustExecG(t, eng, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
	var qs []*Query
	for i := 0; i < 3; i++ {
		q, err := eng.Register(fmt.Sprintf("q%d", i), sql, &RegisterOptions{Mode: ModeIncremental})
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q)
	}
	qs[2].Pause()
	for _, c := range shardTestChunks(120, 10, 4) {
		if err := eng.AppendChunk("s", c); err != nil {
			t.Fatal(err)
		}
	}
	eng.Drain()
	live := collectRendered(qs[0])
	if len(live) == 0 {
		t.Fatal("live class member emitted nothing while sibling paused")
	}
	if got := collectRendered(qs[2]); len(got) != 0 {
		t.Fatalf("paused member emitted %d evals", len(got))
	}
	qs[2].Resume()
	eng.Drain()
	caught := collectRendered(qs[2])
	if len(caught) != len(live) {
		t.Fatalf("resumed member evals = %d, live sibling = %d", len(caught), len(live))
	}
	for i := range caught {
		if caught[i] != live[i] {
			t.Fatalf("resumed member eval %d diverges:\nresumed:\n%s\nlive:\n%s", i, caught[i], live[i])
		}
	}
}

// TestSharedMergeAblation pins the NoSharedMerge escape hatch: members
// opting out still share the front end and the pipeline DAG, produce
// identical results, and generate zero merge-class and post-merge trie
// traffic — the benchmark baseline for what sharing past the merge
// boundary buys.
func TestSharedMergeAblation(t *testing.T) {
	chunks := shardTestChunks(200, 10, 4)
	sql := "SELECT k, sum(v) AS s, count(*) AS n FROM s [SIZE 20 SLIDE 10] GROUP BY k HAVING count(*) > 1"
	run := func(noSharedMerge bool) ([][]string, GroupInfo) {
		eng := New(&Options{Workers: 1})
		defer eng.Close()
		mustExecG(t, eng, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
		var qs []*Query
		for i := 0; i < 4; i++ {
			q, err := eng.Register(fmt.Sprintf("q%d", i), sql,
				&RegisterOptions{Mode: ModeIncremental, NoSharedMerge: noSharedMerge})
			if err != nil {
				t.Fatal(err)
			}
			qs = append(qs, q)
		}
		for _, c := range chunks {
			_ = eng.AppendChunk("s", c)
		}
		eng.Drain()
		var all [][]string
		for _, q := range qs {
			all = append(all, collectRendered(q))
		}
		return all, eng.Groups()[0]
	}
	shared, gs := run(false)
	plain, gp := run(true)
	if fmt.Sprint(shared) != fmt.Sprint(plain) {
		t.Fatal("NoSharedMerge changed results")
	}
	if gs.MergeMisses == 0 || gs.MergeHits == 0 || gs.PostMisses == 0 {
		t.Errorf("shared run recorded no merge/post sharing: %+v", gs)
	}
	if gp.MergeClasses != 0 || gp.MergeHits != 0 || gp.MergeMisses != 0 ||
		gp.PostNodes != 0 || gp.PostHits != 0 || gp.PostMisses != 0 {
		t.Errorf("NoSharedMerge run touched the merge class / post trie: %+v", gp)
	}
	if gp.MemoHits == 0 {
		t.Error("NoSharedMerge must keep the pipeline DAG memo")
	}
}

// TestSharedMergeDeactivateOnLeave: when merge-class membership drops
// back to one, the class releases its ring — a lone survivor must not
// keep pinning raw window buffers it never needs (its private ring
// still merges every window) — and a rejoining second member reactivates
// the class with a fresh ring. Results stay correct throughout.
func TestSharedMergeDeactivateOnLeave(t *testing.T) {
	sql := "SELECT k, sum(v) AS s FROM s [SIZE 20 SLIDE 10] GROUP BY k HAVING sum(v) > 0.0"
	eng := New(&Options{Workers: 1})
	defer eng.Close()
	mustExecG(t, eng, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
	qa, err := eng.Register("a", sql, &RegisterOptions{Mode: ModeIncremental})
	if err != nil {
		t.Fatal(err)
	}
	qb, err := eng.Register("b", sql, &RegisterOptions{Mode: ModeIncremental, NoChannel: true})
	if err != nil {
		t.Fatal(err)
	}
	chunks := shardTestChunks(100, 10, 4)
	feed := func(lo, hi int) {
		for _, c := range chunks[lo:hi] {
			if err := eng.AppendChunk("s", c); err != nil {
				t.Fatal(err)
			}
		}
		eng.Drain()
	}
	feed(0, 5)
	g := eng.Groups()[0]
	if g.MergeClasses != 1 || g.LiveBufs == 0 {
		t.Fatalf("active class expected: %+v", g)
	}
	qb.Stop()
	g = eng.Groups()[0]
	if g.MergeClasses != 0 {
		t.Fatalf("class still active with one member: %+v", g)
	}
	if g.LiveBufs != 0 {
		t.Fatalf("lone survivor pins %d buffers (ring not released)", g.LiveBufs)
	}
	feed(5, 8) // survivor keeps producing off its private ring
	if got := collectRendered(qa); len(got) != 7 {
		t.Fatalf("survivor evals = %d, want 7 (one per sealed window after warm-up)", len(got))
	}
	// A rejoining sibling reactivates the class with a fresh ring.
	if _, err := eng.Register("c", sql, &RegisterOptions{Mode: ModeIncremental, NoChannel: true}); err != nil {
		t.Fatal(err)
	}
	mergesBefore := eng.Groups()[0].MergeMisses
	feed(8, 10)
	g = eng.Groups()[0]
	if g.MergeClasses != 1 {
		t.Fatalf("class did not reactivate: %+v", g)
	}
	if g.MergeMisses == mergesBefore {
		t.Fatal("reactivated class performed no shared merges")
	}
	if got := collectRendered(qa); len(got) != 2 {
		t.Fatalf("survivor evals after rejoin = %d, want 2", len(got))
	}
}

// TestSharedMergeLateJoiner: a member joining an active merge class mid-
// stream must not see merged views covering windows from before its
// join — its first full window covers exactly the windows it received,
// as it would alone.
func TestSharedMergeLateJoiner(t *testing.T) {
	sql := "SELECT count(*) AS n FROM s [SIZE 20 SLIDE 10]"
	eng := New(&Options{Workers: 2})
	defer eng.Close()
	mustExecG(t, eng, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)")
	for i := 0; i < 2; i++ {
		if _, err := eng.Register(fmt.Sprintf("early%d", i), sql,
			&RegisterOptions{Mode: ModeIncremental, NoChannel: true}); err != nil {
			t.Fatal(err)
		}
	}
	feed := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if err := eng.Append("s", []any{int64(i), int64(i), 1.0}); err != nil {
				t.Fatal(err)
			}
		}
		eng.Drain()
	}
	feed(0, 30)
	late, err := eng.Register("late", sql, &RegisterOptions{Mode: ModeIncremental})
	if err != nil {
		t.Fatal(err)
	}
	feed(30, 60)
	got := collectSorted(late)
	// The late joiner saw 3 basic windows (gens 30-40, 40-50, 50-60): its
	// ring fills at the second, so it emits 2 full windows of 20 tuples.
	if len(got) != 2 {
		t.Fatalf("late joiner evals = %d, want 2", len(got))
	}
	for i, rows := range got {
		if len(rows) != 1 || rows[0] != "[20]" {
			t.Fatalf("late joiner eval %d = %v, want [[20]]", i, rows)
		}
	}
}
