package plan

import (
	"fmt"

	"datacell/internal/algebra"
	"datacell/internal/bat"
	"datacell/internal/catalog"
	"datacell/internal/expr"
	"datacell/internal/sql"
)

// Bind resolves a parsed SELECT against the catalog and returns the naive
// bound plan: scans, left-deep joins with predicates still as filters,
// aggregation, projection, ordering. The optimizer then rewrites it; plan
// printing of both stages reproduces the demo's "how the shape of a normal
// query plan changes" inspection.
func Bind(cat *catalog.Catalog, sel *sql.SelectStmt) (Node, error) {
	b := &binder{cat: cat}
	return b.bindSelect(sel)
}

type binder struct {
	cat *catalog.Catalog
}

// scopeCol is one visible column during binding.
type scopeCol struct {
	qual string // source alias
	name string
	kind bat.Kind
}

type scope struct {
	cols []scopeCol
}

func (s *scope) add(qual string, sch bat.Schema) {
	for i, n := range sch.Names {
		s.cols = append(s.cols, scopeCol{qual: qual, name: n, kind: sch.Kinds[i]})
	}
}

// resolve finds a column by (optional) qualifier and name, rejecting
// ambiguity.
func (s *scope) resolve(qual, name string) (int, bat.Kind, error) {
	found := -1
	for i, c := range s.cols {
		if c.name != name {
			continue
		}
		if qual != "" && c.qual != qual {
			continue
		}
		if found >= 0 {
			return 0, 0, fmt.Errorf("plan: ambiguous column %q", ident(qual, name))
		}
		found = i
	}
	if found < 0 {
		return 0, 0, fmt.Errorf("plan: unknown column %q", ident(qual, name))
	}
	return found, s.cols[found].kind, nil
}

func ident(qual, name string) string {
	if qual != "" {
		return qual + "." + name
	}
	return name
}

func (b *binder) bindSelect(sel *sql.SelectStmt) (Node, error) {
	// FROM clause: scans plus explicit JOINs, combined left-deep.
	items := append([]sql.FromItem(nil), sel.From...)
	var onConds []sql.Expr
	for _, j := range sel.Joins {
		items = append(items, j.Right)
		onConds = append(onConds, j.On)
	}
	sc := &scope{}
	seen := map[string]bool{}
	var root Node
	for _, fi := range items {
		n, alias, err := b.bindFrom(fi)
		if err != nil {
			return nil, err
		}
		if seen[alias] {
			return nil, fmt.Errorf("plan: duplicate relation alias %q", alias)
		}
		seen[alias] = true
		sc.add(alias, n.Schema())
		if root == nil {
			root = n
		} else {
			root = &Join{L: root, R: n, Out: concatSchemas(root.Schema(), n.Schema())}
		}
	}

	// Predicates: JOIN ... ON conditions and WHERE all start as filters on
	// top of the join tree; the optimizer pushes them down and extracts
	// equi-join keys.
	var preds []sql.Expr
	preds = append(preds, onConds...)
	if sel.Where != nil {
		preds = append(preds, sel.Where)
	}
	for _, p := range preds {
		e, err := b.bindScalar(p, sc)
		if err != nil {
			return nil, err
		}
		if e.Kind() != bat.Bool {
			return nil, fmt.Errorf("plan: predicate %s is %s, not BOOL", p, e.Kind())
		}
		root = &Filter{Child: root, Pred: e}
	}

	hasAgg := len(sel.GroupBy) > 0 || sel.Having != nil
	for _, item := range sel.Items {
		if !item.Star && containsAggregate(item.Expr) {
			hasAgg = true
		}
	}

	var projExprs []expr.Expr
	var projNames []string
	if hasAgg {
		var err error
		root, projExprs, projNames, err = b.bindAggQuery(sel, sc, root)
		if err != nil {
			return nil, err
		}
	} else {
		var err error
		projExprs, projNames, err = b.bindPlainItems(sel, sc)
		if err != nil {
			return nil, err
		}
	}

	kinds := make([]bat.Kind, len(projExprs))
	for i, e := range projExprs {
		kinds[i] = e.Kind()
	}
	proj := &Project{Child: root, Exprs: projExprs, Out: bat.NewSchema(projNames, kinds)}
	root = proj

	if sel.Distinct {
		root = &Distinct{Child: root}
	}

	if len(sel.OrderBy) > 0 {
		keys, err := b.bindOrderBy(sel, proj)
		if err != nil {
			return nil, err
		}
		root = &Sort{Child: root, Keys: keys}
	}

	if sel.Limit >= 0 {
		root = &Limit{Child: root, N: sel.Limit}
	}
	return root, nil
}

// bindFrom resolves one FROM item to a scan node.
func (b *binder) bindFrom(fi sql.FromItem) (Node, string, error) {
	alias := fi.Alias
	if alias == "" {
		alias = fi.Name
	}
	if t, ok := b.cat.Table(fi.Name); ok {
		if fi.Window != nil {
			return nil, "", fmt.Errorf("plan: window on table %q (windows apply to streams)", fi.Name)
		}
		return &ScanTable{Table: t, Alias: alias, Out: t.Schema()}, alias, nil
	}
	if s, ok := b.cat.Stream(fi.Name); ok {
		scan := &ScanStream{Stream: s, Alias: alias, Out: s.Schema()}
		if fi.Window != nil {
			w, err := bindWindow(fi.Window, s)
			if err != nil {
				return nil, "", err
			}
			scan.Window = w
		}
		return scan, alias, nil
	}
	return nil, "", fmt.Errorf("plan: unknown table or stream %q", fi.Name)
}

func bindWindow(w *sql.WindowSpec, s *catalog.Stream) (*Window, error) {
	out := &Window{
		Tuples: w.Tuples, Size: w.Size, Slide: w.Slide,
		Range: w.Range, SlideDur: w.SlideDur,
	}
	if !w.Tuples {
		col := w.TimeCol
		if col == "" {
			col = s.DefaultTimeCol()
			if col == "" {
				return nil, fmt.Errorf("plan: time window on stream %q needs a TIMESTAMP column", s.Name)
			}
		}
		idx := s.Schema().Index(col)
		if idx < 0 {
			return nil, fmt.Errorf("plan: window attribute %q not in stream %q", col, s.Name)
		}
		if s.Schema().Kinds[idx] != bat.Time {
			return nil, fmt.Errorf("plan: window attribute %q is %s, want TIMESTAMP",
				col, s.Schema().Kinds[idx])
		}
		out.TimeIdx = idx
	}
	return out, nil
}

func concatSchemas(a, b bat.Schema) bat.Schema {
	names := append(append([]string(nil), a.Names...), b.Names...)
	kinds := append(append([]bat.Kind(nil), a.Kinds...), b.Kinds...)
	return bat.Schema{Names: names, Kinds: kinds}
}

// bindPlainItems binds a non-aggregating select list.
func (b *binder) bindPlainItems(sel *sql.SelectStmt, sc *scope) ([]expr.Expr, []string, error) {
	var exprs []expr.Expr
	var names []string
	for _, item := range sel.Items {
		if item.Star {
			for i, c := range sc.cols {
				exprs = append(exprs, &expr.Col{Idx: i, K: c.kind, Name: c.name})
				names = append(names, c.name)
			}
			continue
		}
		e, err := b.bindScalar(item.Expr, sc)
		if err != nil {
			return nil, nil, err
		}
		exprs = append(exprs, e)
		names = append(names, itemName(item, e))
	}
	return exprs, names, nil
}

func itemName(item sql.SelectItem, e expr.Expr) string {
	if item.Alias != "" {
		return item.Alias
	}
	if id, ok := item.Expr.(*sql.Ident); ok {
		return id.Name
	}
	return e.String()
}

// bindOrderBy binds ORDER BY keys to output columns of the projection: by
// output name first, then by matching the rendering of the projected
// expressions.
func (b *binder) bindOrderBy(sel *sql.SelectStmt, proj *Project) ([]SortSpec, error) {
	var keys []SortSpec
	for _, oi := range sel.OrderBy {
		idx := -1
		if id, ok := oi.Expr.(*sql.Ident); ok {
			// Both n and t.n match an output column named n.
			idx = proj.Out.Index(id.Name)
		}
		if idx < 0 {
			want := oi.Expr.String()
			for i, e := range proj.Exprs {
				if e.String() == want || proj.Out.Names[i] == want {
					idx = i
					break
				}
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("plan: ORDER BY %s does not name an output column", oi.Expr)
		}
		keys = append(keys, SortSpec{Col: idx, Desc: oi.Desc})
	}
	return keys, nil
}

// aggNames is the set of aggregate function names.
var aggNames = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

func containsAggregate(e sql.Expr) bool {
	switch n := e.(type) {
	case *sql.CallExpr:
		if aggNames[n.Name] {
			return true
		}
		for _, a := range n.Args {
			if containsAggregate(a) {
				return true
			}
		}
	case *sql.BinExpr:
		return containsAggregate(n.L) || containsAggregate(n.R)
	case *sql.NotExpr:
		return containsAggregate(n.E)
	case *sql.CastExpr:
		return containsAggregate(n.E)
	}
	return false
}

// aggCtx accumulates the aggregate node contents while binding an
// aggregating query.
type aggCtx struct {
	b       *binder
	child   *scope // scope of the aggregate's input
	keySrc  []sql.Expr
	keys    []expr.Expr
	keyName []string
	aggs    []AggSpec
}

// bindAggQuery plans GROUP BY / aggregate queries: it builds the Aggregate
// node (rewriting avg into sum/count so all aggregates merge across basic
// windows) and binds the select list, HAVING and ORDER BY over the
// aggregate's output.
func (b *binder) bindAggQuery(sel *sql.SelectStmt, sc *scope, child Node) (Node, []expr.Expr, []string, error) {
	ac := &aggCtx{b: b, child: sc, keySrc: sel.GroupBy}
	for _, g := range sel.GroupBy {
		e, err := b.bindScalar(g, sc)
		if err != nil {
			return nil, nil, nil, err
		}
		ac.keys = append(ac.keys, e)
		name := g.String()
		if id, ok := g.(*sql.Ident); ok {
			name = id.Name
		}
		ac.keyName = append(ac.keyName, name)
	}

	// Bind the select list over the (virtual) aggregate output.
	var projExprs []expr.Expr
	var projNames []string
	for _, item := range sel.Items {
		if item.Star {
			return nil, nil, nil, fmt.Errorf("plan: SELECT * cannot be combined with GROUP BY")
		}
		e, err := ac.bind(item.Expr)
		if err != nil {
			return nil, nil, nil, err
		}
		projExprs = append(projExprs, e)
		projNames = append(projNames, itemName(item, e))
	}

	var havingExpr expr.Expr
	if sel.Having != nil {
		e, err := ac.bind(sel.Having)
		if err != nil {
			return nil, nil, nil, err
		}
		if e.Kind() != bat.Bool {
			return nil, nil, nil, fmt.Errorf("plan: HAVING is %s, not BOOL", e.Kind())
		}
		havingExpr = e
	}

	agg := NewAggregate(child, ac.keys, ac.keyName, ac.aggs)
	var root Node = agg
	if havingExpr != nil {
		root = &Filter{Child: root, Pred: havingExpr}
	}
	return root, projExprs, projNames, nil
}

// bind binds an expression over the aggregate output: group-key
// subexpressions become key column references, aggregate calls become
// aggregate column references, anything else must be built from those.
func (ac *aggCtx) bind(e sql.Expr) (expr.Expr, error) {
	// A subexpression identical to a GROUP BY key binds to the key column.
	for i, src := range ac.keySrc {
		if src.String() == e.String() {
			return &expr.Col{Idx: i, K: ac.keys[i].Kind(), Name: ac.keyName[i]}, nil
		}
	}
	switch n := e.(type) {
	case *sql.Lit:
		return ac.b.bindScalar(n, ac.child)
	case *sql.Ident:
		return nil, fmt.Errorf("plan: column %s must appear in GROUP BY or inside an aggregate", n)
	case *sql.CallExpr:
		if aggNames[n.Name] {
			return ac.bindAggCall(n)
		}
		args := make([]expr.Expr, len(n.Args))
		for i, a := range n.Args {
			bound, err := ac.bind(a)
			if err != nil {
				return nil, err
			}
			args[i] = bound
		}
		return expr.ResolveFunc(n.Name, args)
	case *sql.BinExpr:
		l, err := ac.bind(n.L)
		if err != nil {
			return nil, err
		}
		r, err := ac.bind(n.R)
		if err != nil {
			return nil, err
		}
		return combineBin(n.Op, l, r)
	case *sql.NotExpr:
		inner, err := ac.bind(n.E)
		if err != nil {
			return nil, err
		}
		if inner.Kind() != bat.Bool {
			return nil, fmt.Errorf("plan: NOT of %s", inner.Kind())
		}
		return &expr.Logic{Op: expr.Not, L: inner}, nil
	case *sql.CastExpr:
		inner, err := ac.bind(n.E)
		if err != nil {
			return nil, err
		}
		return bindCast(inner, n.Type)
	}
	return nil, fmt.Errorf("plan: cannot bind %s in aggregate context", e)
}

// bindAggCall registers an aggregate (deduplicated) and returns a
// reference to its output column. avg(x) is rewritten to
// sum(x)/count(*) in FLOAT, making every aggregate mergeable.
func (ac *aggCtx) bindAggCall(n *sql.CallExpr) (expr.Expr, error) {
	if n.Name == "avg" {
		if n.Star || len(n.Args) != 1 {
			return nil, fmt.Errorf("plan: avg takes one argument")
		}
		arg, err := ac.b.bindScalar(n.Args[0], ac.child)
		if err != nil {
			return nil, err
		}
		if !arg.Kind().Numeric() {
			return nil, fmt.Errorf("plan: avg of %s", arg.Kind())
		}
		sumCol, err := ac.register(algebra.AggSum, arg, "sum("+n.Args[0].String()+")")
		if err != nil {
			return nil, err
		}
		cntCol, err := ac.register(algebra.AggCount, nil, "count(*)")
		if err != nil {
			return nil, err
		}
		return &expr.Arith{
			Op: expr.Div,
			L:  &expr.Cast{To: bat.Float, E: sumCol},
			R:  &expr.Cast{To: bat.Float, E: cntCol},
		}, nil
	}

	var op algebra.AggOp
	switch n.Name {
	case "count":
		op = algebra.AggCount
	case "sum":
		op = algebra.AggSum
	case "min":
		op = algebra.AggMin
	case "max":
		op = algebra.AggMax
	}
	if op == algebra.AggCount {
		// With no NULLs, count(x) ≡ count(*).
		return ac.register(algebra.AggCount, nil, "count(*)")
	}
	if n.Star || len(n.Args) != 1 {
		return nil, fmt.Errorf("plan: %s takes one argument", n.Name)
	}
	arg, err := ac.b.bindScalar(n.Args[0], ac.child)
	if err != nil {
		return nil, err
	}
	if op == algebra.AggSum && !arg.Kind().Numeric() {
		return nil, fmt.Errorf("plan: sum of %s", arg.Kind())
	}
	if (op == algebra.AggMin || op == algebra.AggMax) && arg.Kind() == bat.Bool {
		return nil, fmt.Errorf("plan: %s of BOOL", n.Name)
	}
	return ac.register(op, arg, fmt.Sprintf("%s(%s)", n.Name, n.Args[0]))
}

func (ac *aggCtx) register(op algebra.AggOp, arg expr.Expr, name string) (expr.Expr, error) {
	sig := name
	for i, a := range ac.aggs {
		if a.Name == sig && a.Op == op {
			return ac.aggCol(i), nil
		}
	}
	ac.aggs = append(ac.aggs, AggSpec{Op: op, Arg: arg, Name: sig})
	return ac.aggCol(len(ac.aggs) - 1), nil
}

func (ac *aggCtx) aggCol(i int) expr.Expr {
	spec := ac.aggs[i]
	return &expr.Col{Idx: len(ac.keys) + i, K: spec.Kind(), Name: spec.Name}
}

// bindScalar binds an expression over a plain row scope.
func (b *binder) bindScalar(e sql.Expr, sc *scope) (expr.Expr, error) {
	switch n := e.(type) {
	case *sql.Ident:
		idx, kind, err := sc.resolve(n.Qual, n.Name)
		if err != nil {
			return nil, err
		}
		return &expr.Col{Idx: idx, K: kind, Name: ident(n.Qual, n.Name)}, nil
	case *sql.Lit:
		switch n.Kind {
		case 'i':
			return &expr.Const{V: bat.IntValue(n.I)}, nil
		case 'f':
			return &expr.Const{V: bat.FloatValue(n.F)}, nil
		case 's':
			return &expr.Const{V: bat.StrValue(n.S)}, nil
		case 'b':
			return &expr.Const{V: bat.BoolValue(n.B)}, nil
		}
		return nil, fmt.Errorf("plan: bad literal %s", n)
	case *sql.BinExpr:
		l, err := b.bindScalar(n.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := b.bindScalar(n.R, sc)
		if err != nil {
			return nil, err
		}
		return combineBin(n.Op, l, r)
	case *sql.NotExpr:
		inner, err := b.bindScalar(n.E, sc)
		if err != nil {
			return nil, err
		}
		if inner.Kind() != bat.Bool {
			return nil, fmt.Errorf("plan: NOT of %s", inner.Kind())
		}
		return &expr.Logic{Op: expr.Not, L: inner}, nil
	case *sql.CallExpr:
		if aggNames[n.Name] {
			return nil, fmt.Errorf("plan: aggregate %s not allowed here", n.Name)
		}
		args := make([]expr.Expr, len(n.Args))
		for i, a := range n.Args {
			bound, err := b.bindScalar(a, sc)
			if err != nil {
				return nil, err
			}
			args[i] = bound
		}
		return expr.ResolveFunc(n.Name, args)
	case *sql.CastExpr:
		inner, err := b.bindScalar(n.E, sc)
		if err != nil {
			return nil, err
		}
		return bindCast(inner, n.Type)
	}
	return nil, fmt.Errorf("plan: cannot bind expression %s", e)
}

func bindCast(inner expr.Expr, typeName string) (expr.Expr, error) {
	k, err := bat.ParseKind(typeName)
	if err != nil {
		return nil, err
	}
	if k == inner.Kind() {
		return inner, nil
	}
	if !k.Numeric() || !inner.Kind().Numeric() {
		return nil, fmt.Errorf("plan: cannot cast %s to %s", inner.Kind(), k)
	}
	return &expr.Cast{To: k, E: inner}, nil
}

func combineBin(op string, l, r expr.Expr) (expr.Expr, error) {
	switch op {
	case "+", "-", "*", "/", "%":
		if !l.Kind().Numeric() || !r.Kind().Numeric() {
			return nil, fmt.Errorf("plan: arithmetic on %s and %s", l.Kind(), r.Kind())
		}
		var aop expr.ArithOp
		switch op {
		case "+":
			aop = expr.Add
		case "-":
			aop = expr.Sub
		case "*":
			aop = expr.Mul
		case "/":
			aop = expr.Div
		case "%":
			aop = expr.Mod
		}
		return &expr.Arith{Op: aop, L: l, R: r}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		lk, rk := l.Kind(), r.Kind()
		if lk != rk && !(lk.Numeric() && rk.Numeric()) {
			return nil, fmt.Errorf("plan: comparing %s with %s", lk, rk)
		}
		var cop algebra.CmpOp
		switch op {
		case "=":
			cop = algebra.EQ
		case "<>":
			cop = algebra.NE
		case "<":
			cop = algebra.LT
		case "<=":
			cop = algebra.LE
		case ">":
			cop = algebra.GT
		case ">=":
			cop = algebra.GE
		}
		return &expr.Cmp{Op: cop, L: l, R: r}, nil
	case "AND", "OR":
		if l.Kind() != bat.Bool || r.Kind() != bat.Bool {
			return nil, fmt.Errorf("plan: %s of %s and %s", op, l.Kind(), r.Kind())
		}
		lop := expr.And
		if op == "OR" {
			lop = expr.Or
		}
		return &expr.Logic{Op: lop, L: l, R: r}, nil
	}
	return nil, fmt.Errorf("plan: unknown operator %q", op)
}
