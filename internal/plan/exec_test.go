package plan

import (
	"testing"

	"datacell/internal/bat"
	"datacell/internal/catalog"
)

// sensorChunk builds rows (ts, room, temp).
func sensorChunk(t *testing.T, cat *catalog.Catalog, rows ...[3]float64) *bat.Chunk {
	t.Helper()
	s, _ := cat.Stream("sensors")
	c := bat.NewChunk(s.Schema())
	for _, r := range rows {
		if err := c.AppendRow(
			bat.TimeValue(int64(r[0])), bat.IntValue(int64(r[1])), bat.FloatValue(r[2]),
		); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func runOn(t *testing.T, cat *catalog.Catalog, src string, input *bat.Chunk) *bat.Chunk {
	t.Helper()
	n := Optimize(mustBind(t, cat, src))
	ex := &Exec{StreamInputs: map[*ScanStream]*bat.Chunk{}}
	for _, s := range Streams(n) {
		ex.StreamInputs[s] = input
	}
	out, err := ex.Run(n)
	if err != nil {
		t.Fatalf("run %q: %v", src, err)
	}
	return out
}

func TestExecFilterProject(t *testing.T) {
	cat := testCatalog(t)
	in := sensorChunk(t, cat,
		[3]float64{1, 1, 18}, [3]float64{2, 2, 25}, [3]float64{3, 1, 30})
	out := runOn(t, cat, "SELECT room, temp * 2.0 AS dbl FROM sensors WHERE temp > 20.0", in)
	if out.Rows() != 2 {
		t.Fatalf("rows = %d:\n%s", out.Rows(), out)
	}
	if out.Row(0)[0].I != 2 || out.Row(0)[1].F != 50 {
		t.Errorf("row 0 = %v", out.Row(0))
	}
	if out.Row(1)[1].F != 60 {
		t.Errorf("row 1 = %v", out.Row(1))
	}
}

func TestExecAggregate(t *testing.T) {
	cat := testCatalog(t)
	in := sensorChunk(t, cat,
		[3]float64{1, 1, 10}, [3]float64{2, 1, 20}, [3]float64{3, 2, 30})
	out := runOn(t, cat, `
		SELECT room, count(*) AS n, sum(temp) AS s, min(temp) AS lo,
		       max(temp) AS hi, avg(temp) AS m
		FROM sensors GROUP BY room ORDER BY room`, in)
	if out.Rows() != 2 {
		t.Fatalf("rows = %d:\n%s", out.Rows(), out)
	}
	r0 := out.Row(0)
	if r0[0].I != 1 || r0[1].I != 2 || r0[2].F != 30 || r0[3].F != 10 || r0[4].F != 20 || r0[5].F != 15 {
		t.Errorf("group 1 = %v", r0)
	}
	r1 := out.Row(1)
	if r1[0].I != 2 || r1[1].I != 1 || r1[5].F != 30 {
		t.Errorf("group 2 = %v", r1)
	}
}

func TestExecAggregateNoKeysEmptyInput(t *testing.T) {
	cat := testCatalog(t)
	in := sensorChunk(t, cat)
	out := runOn(t, cat, "SELECT count(*) FROM sensors", in)
	if out.Rows() != 0 {
		t.Errorf("empty-window aggregate rows = %d, want 0", out.Rows())
	}
	in2 := sensorChunk(t, cat, [3]float64{1, 1, 10})
	out2 := runOn(t, cat, "SELECT count(*) AS n FROM sensors", in2)
	if out2.Rows() != 1 || out2.Row(0)[0].I != 1 {
		t.Errorf("single-row count = %v", out2)
	}
}

func TestExecHaving(t *testing.T) {
	cat := testCatalog(t)
	in := sensorChunk(t, cat,
		[3]float64{1, 1, 10}, [3]float64{2, 1, 20}, [3]float64{3, 2, 30})
	out := runOn(t, cat,
		"SELECT room FROM sensors GROUP BY room HAVING count(*) > 1", in)
	if out.Rows() != 1 || out.Row(0)[0].I != 1 {
		t.Errorf("having = %v", out)
	}
}

func TestExecStreamTableJoin(t *testing.T) {
	cat := testCatalog(t)
	in := sensorChunk(t, cat,
		[3]float64{1, 1, 10}, [3]float64{2, 2, 20}, [3]float64{3, 9, 30})
	out := runOn(t, cat, `
		SELECT r.name, s.temp FROM sensors s JOIN rooms r ON s.room = r.room
		ORDER BY s.temp`, in)
	if out.Rows() != 2 { // room 9 has no dimension row
		t.Fatalf("rows = %d:\n%s", out.Rows(), out)
	}
	if out.Row(0)[0].S != "lab" || out.Row(1)[0].S != "office" {
		t.Errorf("join result:\n%s", out)
	}
}

func TestExecStreamStreamJoin(t *testing.T) {
	cat := testCatalog(t)
	sens := sensorChunk(t, cat, [3]float64{1, 1, 10}, [3]float64{2, 2, 20})
	ev, _ := cat.Stream("events")
	evc := bat.NewChunk(ev.Schema())
	_ = evc.AppendRow(bat.TimeValue(5), bat.IntValue(1), bat.IntValue(7))
	_ = evc.AppendRow(bat.TimeValue(6), bat.IntValue(1), bat.IntValue(8))

	n := Optimize(mustBind(t, cat, `
		SELECT s.temp, e.code FROM sensors s, events e
		WHERE s.room = e.room`))
	streams := Streams(n)
	ex := &Exec{StreamInputs: map[*ScanStream]*bat.Chunk{}}
	for _, sc := range streams {
		if sc.Alias == "s" {
			ex.StreamInputs[sc] = sens
		} else {
			ex.StreamInputs[sc] = evc
		}
	}
	out, err := ex.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 2 {
		t.Fatalf("rows = %d:\n%s", out.Rows(), out)
	}
}

func TestExecCrossJoinWithResidual(t *testing.T) {
	cat := testCatalog(t)
	in := sensorChunk(t, cat, [3]float64{1, 1, 10}, [3]float64{2, 2, 30})
	out := runOn(t, cat, `
		SELECT s.temp, r.name FROM sensors s, rooms r
		WHERE s.temp > CAST(r.floor AS FLOAT) * 20.0`, in)
	// temp=10: only floor 0 (lab) qualifies. temp=30: floor 0 (lab) plus
	// both floor-1 rooms (office, server) — 4 pairs in total.
	if out.Rows() != 4 {
		t.Fatalf("rows = %d:\n%s", out.Rows(), out)
	}
}

func TestExecDistinctSortLimit(t *testing.T) {
	cat := testCatalog(t)
	in := sensorChunk(t, cat,
		[3]float64{1, 2, 10}, [3]float64{2, 1, 20},
		[3]float64{3, 2, 30}, [3]float64{4, 3, 40})
	out := runOn(t, cat, "SELECT DISTINCT room FROM sensors ORDER BY room LIMIT 2", in)
	if out.Rows() != 2 || out.Row(0)[0].I != 1 || out.Row(1)[0].I != 2 {
		t.Errorf("distinct+sort+limit = %v", out)
	}
}

func TestExecLimitLargerThanInput(t *testing.T) {
	cat := testCatalog(t)
	in := sensorChunk(t, cat, [3]float64{1, 1, 10})
	out := runOn(t, cat, "SELECT room FROM sensors LIMIT 100", in)
	if out.Rows() != 1 {
		t.Errorf("rows = %d", out.Rows())
	}
}

func TestExecMissingStreamInputYieldsEmpty(t *testing.T) {
	cat := testCatalog(t)
	n := Optimize(mustBind(t, cat, "SELECT room FROM sensors"))
	ex := &Exec{}
	out, err := ex.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 0 {
		t.Errorf("rows = %d", out.Rows())
	}
}

func TestExecScalarFunctions(t *testing.T) {
	cat := testCatalog(t)
	in := sensorChunk(t, cat, [3]float64{1, 1, -12.5})
	out := runOn(t, cat, "SELECT abs(temp) AS a, floor(temp) AS f FROM sensors", in)
	if out.Row(0)[0].F != 12.5 || out.Row(0)[1].F != -13 {
		t.Errorf("funcs = %v", out.Row(0))
	}
}

func TestMergeAggregate(t *testing.T) {
	cat := testCatalog(t)
	n := mustBind(t, cat,
		"SELECT room, count(*) AS n, sum(temp) AS s, min(temp) AS lo FROM sensors GROUP BY room")
	agg := n.(*Project).Child.(*Aggregate)

	// Two partials, overlapping groups.
	partials := bat.NewChunk(agg.Out)
	// room, count, sum, min — layout keys-then-aggs. Order of aggs follows
	// registration: count(*), sum(temp), min(temp).
	_ = partials.AppendRow(bat.IntValue(1), bat.IntValue(2), bat.FloatValue(30), bat.FloatValue(10))
	_ = partials.AppendRow(bat.IntValue(2), bat.IntValue(1), bat.FloatValue(5), bat.FloatValue(5))
	_ = partials.AppendRow(bat.IntValue(1), bat.IntValue(3), bat.FloatValue(60), bat.FloatValue(8))

	merged := MergeAggregate(agg, partials)
	if merged.Rows() != 2 {
		t.Fatalf("merged rows = %d", merged.Rows())
	}
	r0 := merged.Row(0)
	if r0[0].I != 1 || r0[1].I != 5 || r0[2].F != 90 || r0[3].F != 8 {
		t.Errorf("merged group 1 = %v", r0)
	}
	r1 := merged.Row(1)
	if r1[0].I != 2 || r1[1].I != 1 || r1[2].F != 5 {
		t.Errorf("merged group 2 = %v", r1)
	}
}

func TestExecOneTimeTableQuery(t *testing.T) {
	cat := testCatalog(t)
	out := runOn(t, cat, "SELECT name FROM rooms WHERE floor = 1 ORDER BY name", nil)
	if out.Rows() != 2 || out.Row(0)[0].S != "office" {
		t.Errorf("table query:\n%s", out)
	}
}
