package plan

import (
	"testing"
	"time"
)

func TestWindowCodecRoundTrip(t *testing.T) {
	wins := []*Window{
		{Tuples: true, Size: 64, Slide: 16},
		{Tuples: true, Size: 1, Slide: 1},
		{Range: 2 * time.Second, SlideDur: time.Second, TimeIdx: 0},
		{Range: 90 * time.Minute, SlideDur: 15 * time.Minute, TimeIdx: 3},
	}
	for _, want := range wins {
		enc := AppendWindow(nil, want)
		got, rest, err := ReadWindow(enc)
		if err != nil {
			t.Fatalf("%v: %v", want, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%v: %d bytes left over", want, len(rest))
		}
		if *got != *want {
			t.Fatalf("round trip diverged: got %+v want %+v", got, want)
		}
	}
	// Truncations error rather than panic.
	enc := AppendWindow(nil, wins[2])
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := ReadWindow(enc[:cut]); err == nil {
			t.Fatalf("decoded truncation at %d", cut)
		}
	}
}
