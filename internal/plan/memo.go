// Registration-path memoization over a shared Decomposition. The engine's
// plan cache hands the same immutable *Decomposition to every registration
// of a repeated source, but the factory re-derives the plan's canonical
// identity — linearized pipeline steps, merge-class keys, the join and
// partial-aggregate fingerprints — per member, and those renders (schema
// and constant formatting, mostly) dominate the cost of a cache-hit
// registration. Each derivation below is a pure function of the
// decomposition, so it is computed once under a sync.Once and replayed on
// every later registration of the same plan.
//
// Staleness note: stream-scan fingerprints fold in the stream's fabric
// partition tag (plan.GroupKey), which can change without a catalog
// generation bump. A memoized render therefore may carry a tag from an
// earlier partitioning epoch — but a memo can only replay a string the
// same plan already produced, never coin one that collides with a
// different computation, so the worst case is a missed share across a
// re-partitioning (members fall into separate merge classes), not a
// cross-wiring. Group membership itself is keyed on the live GroupKey at
// registration time and is unaffected.

package plan

import "sync"

type stepsMemo struct {
	once  sync.Once
	steps []PipelineStep
	ok    bool
}

type keyMemo struct {
	once sync.Once
	s    string
	ok   bool
}

type postMemo struct {
	once   sync.Once
	rootFp string
	steps  []PipelineStep
	ok     bool
}

// decompMemo holds the lazily-computed linearizations and canonical keys
// of one Decomposition. Zero value ready; unexported so plan construction
// and the codec never see it.
type decompMemo struct {
	steps  [2]stepsMemo
	merge  keyMemo
	aggFp  keyMemo
	joinFp keyMemo
	jmerge keyMemo
	post   postMemo
}

// StepsMemo is PipelineSteps over Pipelines[side], computed once per
// decomposition. Callers must treat the returned slice as read-only — it
// is shared across every registration of a cached plan.
func (d *Decomposition) StepsMemo(side int) ([]PipelineStep, bool) {
	m := &d.memo.steps[side]
	m.once.Do(func() {
		p := d.Pipelines[side]
		m.steps, m.ok = PipelineSteps(p.Root, p.Scan)
	})
	return m.steps, m.ok
}

// MergeKeyMemo is MergeKey over the memoized Pipelines[0] chain, computed
// once per decomposition.
func (d *Decomposition) MergeKeyMemo() (string, bool) {
	m := &d.memo.merge
	m.once.Do(func() {
		steps, ok := d.StepsMemo(0)
		if !ok {
			return
		}
		m.s, m.ok = MergeKey(d, steps)
	})
	return m.s, m.ok
}

// AggFingerprintMemo renders the partial-aggregate stage's fingerprint
// over the memoized pipeline chain — exactly the identity the group DAG
// derives when it registers the aggregate node ("raw" child for an empty
// chain). Empty when the decomposition has no aggregate stage.
func (d *Decomposition) AggFingerprintMemo() string {
	if d.Agg == nil {
		return ""
	}
	m := &d.memo.aggFp
	m.once.Do(func() {
		childFp := "raw"
		if steps, ok := d.StepsMemo(0); ok && len(steps) > 0 {
			childFp = steps[len(steps)-1].Fp
		}
		m.s = FingerprintAggregate(d.Agg, childFp)
	})
	return m.s
}

// JoinFingerprintMemo is Fingerprint(d.Join), computed once per
// decomposition; empty for single-stream plans.
func (d *Decomposition) JoinFingerprintMemo() string {
	if d.Join == nil {
		return ""
	}
	m := &d.memo.joinFp
	m.once.Do(func() { m.s = Fingerprint(d.Join) })
	return m.s
}

// JoinMergeKeyMemo is JoinMergeKey, computed once per decomposition.
func (d *Decomposition) JoinMergeKeyMemo() (string, bool) {
	m := &d.memo.jmerge
	m.once.Do(func() { m.s, m.ok = JoinMergeKey(d) })
	return m.s, m.ok
}

// PostStepsMemo is PostSteps rooted at rootFp, computed once per
// decomposition. rootFp is itself a memoized key (MergeKeyMemo or
// JoinMergeKeyMemo) and so constant per plan; if a caller ever passes a
// different root, the memo is bypassed rather than replayed wrong.
func (d *Decomposition) PostStepsMemo(rootFp string) ([]PipelineStep, bool) {
	m := &d.memo.post
	m.once.Do(func() {
		m.rootFp = rootFp
		m.steps, m.ok = PostSteps(d.Post, d.MergedLeaf, rootFp)
	})
	if m.rootFp != rootFp {
		return PostSteps(d.Post, d.MergedLeaf, rootFp)
	}
	return m.steps, m.ok
}
