package plan

import (
	"strings"
	"testing"

	"datacell/internal/bat"
	"datacell/internal/catalog"
	"datacell/internal/sql"
)

// testCatalog: stream sensors(ts TIMESTAMP, room INT, temp FLOAT),
// stream events(ts TIMESTAMP, room INT, code INT),
// table rooms(room INT, name STRING, floor INT) with 3 rows.
func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	_, err := cat.CreateStream("sensors", bat.NewSchema(
		[]string{"ts", "room", "temp"},
		[]bat.Kind{bat.Time, bat.Int, bat.Float},
	))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateStream("events", bat.NewSchema(
		[]string{"ts", "room", "code"},
		[]bat.Kind{bat.Time, bat.Int, bat.Int},
	)); err != nil {
		t.Fatal(err)
	}
	rooms, err := cat.CreateTable("rooms", bat.NewSchema(
		[]string{"room", "name", "floor"},
		[]bat.Kind{bat.Int, bat.Str, bat.Int},
	))
	if err != nil {
		t.Fatal(err)
	}
	c := bat.NewChunk(rooms.Schema())
	_ = c.AppendRow(bat.IntValue(1), bat.StrValue("lab"), bat.IntValue(0))
	_ = c.AppendRow(bat.IntValue(2), bat.StrValue("office"), bat.IntValue(1))
	_ = c.AppendRow(bat.IntValue(3), bat.StrValue("server"), bat.IntValue(1))
	if err := rooms.Append(c); err != nil {
		t.Fatal(err)
	}
	return cat
}

func mustBind(t *testing.T, cat *catalog.Catalog, src string) Node {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	n, err := Bind(cat, stmt.(*sql.SelectStmt))
	if err != nil {
		t.Fatalf("bind %q: %v", src, err)
	}
	return n
}

func bindErr(t *testing.T, cat *catalog.Catalog, src string) error {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	_, err = Bind(cat, stmt.(*sql.SelectStmt))
	if err == nil {
		t.Fatalf("bind %q should fail", src)
	}
	return err
}

func TestBindSimpleProject(t *testing.T) {
	cat := testCatalog(t)
	n := mustBind(t, cat, "SELECT room, temp FROM sensors WHERE temp > 20.0")
	p, ok := n.(*Project)
	if !ok {
		t.Fatalf("root = %T, want Project", n)
	}
	if p.Out.Names[0] != "room" || p.Out.Kinds[1] != bat.Float {
		t.Errorf("schema = %v", p.Out)
	}
	if _, ok := p.Child.(*Filter); !ok {
		t.Errorf("child = %T, want Filter", p.Child)
	}
}

func TestBindStar(t *testing.T) {
	cat := testCatalog(t)
	n := mustBind(t, cat, "SELECT * FROM sensors")
	if got := n.Schema().Width(); got != 3 {
		t.Errorf("star width = %d", got)
	}
}

func TestBindWindow(t *testing.T) {
	cat := testCatalog(t)
	n := mustBind(t, cat, "SELECT temp FROM sensors [SIZE 100 SLIDE 25]")
	scans := Streams(n)
	if len(scans) != 1 || scans[0].Window == nil {
		t.Fatalf("scans = %v", scans)
	}
	w := scans[0].Window
	if !w.Tuples || w.Size != 100 || w.Slide != 25 || w.Parts() != 4 {
		t.Errorf("window = %+v", w)
	}
}

func TestBindTimeWindowDefaultsToFirstTimestamp(t *testing.T) {
	cat := testCatalog(t)
	n := mustBind(t, cat, "SELECT temp FROM sensors [RANGE 10 SECONDS SLIDE 5 SECONDS]")
	w := Streams(n)[0].Window
	if w.Tuples || w.TimeIdx != 0 || w.Parts() != 2 {
		t.Errorf("time window = %+v", w)
	}
}

func TestBindWindowErrors(t *testing.T) {
	cat := testCatalog(t)
	bindErr(t, cat, "SELECT name FROM rooms [SIZE 10]")                   // window on table
	bindErr(t, cat, "SELECT temp FROM sensors [RANGE 5 SECONDS ON room]") // not a timestamp
	bindErr(t, cat, "SELECT temp FROM sensors [RANGE 5 SECONDS ON nope]") // unknown col
}

func TestBindNameResolution(t *testing.T) {
	cat := testCatalog(t)
	bindErr(t, cat, "SELECT nosuch FROM sensors")
	bindErr(t, cat, "SELECT room FROM sensors, events") // ambiguous
	mustBind(t, cat, "SELECT sensors.room FROM sensors, events")
	bindErr(t, cat, "SELECT x.room FROM sensors")             // unknown qualifier
	bindErr(t, cat, "SELECT room FROM nosuch")                // unknown relation
	bindErr(t, cat, "SELECT a.room FROM sensors a, events a") // dup alias
}

func TestBindTypeErrors(t *testing.T) {
	cat := testCatalog(t)
	bindErr(t, cat, "SELECT temp + name FROM sensors, rooms WHERE sensors.room = rooms.room")
	bindErr(t, cat, "SELECT room FROM sensors WHERE temp")          // non-bool where
	bindErr(t, cat, "SELECT room FROM sensors WHERE name AND true") // unknown + non-bool
	bindErr(t, cat, "SELECT NOT temp FROM sensors")
	bindErr(t, cat, "SELECT temp FROM sensors WHERE temp > 'hot'")
	bindErr(t, cat, "SELECT CAST(temp AS VARCHAR) FROM sensors")
	bindErr(t, cat, "SELECT sum(temp) FROM sensors WHERE sum(temp) > 1") // agg in where
}

func TestBindAggregates(t *testing.T) {
	cat := testCatalog(t)
	n := mustBind(t, cat,
		"SELECT room, count(*) AS n, avg(temp) AS mean FROM sensors GROUP BY room")
	p := n.(*Project)
	agg, ok := p.Child.(*Aggregate)
	if !ok {
		t.Fatalf("child = %T, want Aggregate", p.Child)
	}
	if len(agg.Keys) != 1 || len(agg.Aggs) != 2 {
		t.Fatalf("agg = keys %d aggs %d", len(agg.Keys), len(agg.Aggs))
	}
	// avg rewrites to sum + count; count deduplicates with the explicit
	// count(*).
	names := []string{agg.Aggs[0].Name, agg.Aggs[1].Name}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "count(*)") || !strings.Contains(joined, "sum(temp)") {
		t.Errorf("agg specs = %v", names)
	}
	if p.Out.Names[1] != "n" || p.Out.Names[2] != "mean" {
		t.Errorf("out names = %v", p.Out.Names)
	}
	if p.Out.Kinds[2] != bat.Float {
		t.Errorf("avg kind = %s", p.Out.Kinds[2])
	}
}

func TestBindAggregateErrors(t *testing.T) {
	cat := testCatalog(t)
	bindErr(t, cat, "SELECT temp FROM sensors GROUP BY room")                 // non-grouped col
	bindErr(t, cat, "SELECT * FROM sensors GROUP BY room")                    // star with group
	bindErr(t, cat, "SELECT sum(name) FROM rooms")                            // sum of string
	bindErr(t, cat, "SELECT avg(name) FROM rooms")                            // avg of string
	bindErr(t, cat, "SELECT avg(temp, room) FROM sensors")                    // arity
	bindErr(t, cat, "SELECT min(temp > 1.0) FROM sensors")                    // min of bool
	bindErr(t, cat, "SELECT room FROM sensors GROUP BY room HAVING temp > 1") // having non-grouped
	bindErr(t, cat, "SELECT room FROM sensors GROUP BY room HAVING room + 1") // having non-bool
}

func TestBindHavingAndOrder(t *testing.T) {
	cat := testCatalog(t)
	n := mustBind(t, cat, `
		SELECT room, max(temp) AS hi FROM sensors
		GROUP BY room HAVING count(*) > 3 ORDER BY hi DESC LIMIT 2`)
	lim, ok := n.(*Limit)
	if !ok {
		t.Fatalf("root = %T", n)
	}
	srt := lim.Child.(*Sort)
	if len(srt.Keys) != 1 || !srt.Keys[0].Desc || srt.Keys[0].Col != 1 {
		t.Errorf("sort keys = %+v", srt.Keys)
	}
	proj := srt.Child.(*Project)
	if _, ok := proj.Child.(*Filter); !ok {
		t.Errorf("having filter missing, got %T", proj.Child)
	}
}

func TestBindOrderByProjectedExpr(t *testing.T) {
	cat := testCatalog(t)
	// ORDER BY names the underlying column of a projected item.
	n := mustBind(t, cat, "SELECT temp FROM sensors ORDER BY temp")
	if _, ok := n.(*Sort); !ok {
		t.Fatalf("root = %T", n)
	}
	bindErr(t, cat, "SELECT temp FROM sensors ORDER BY room") // not projected
}

func TestBindDistinct(t *testing.T) {
	cat := testCatalog(t)
	n := mustBind(t, cat, "SELECT DISTINCT room FROM sensors")
	if _, ok := n.(*Distinct); !ok {
		t.Fatalf("root = %T, want Distinct", n)
	}
}

func TestOptimizePushdownAndEquiJoin(t *testing.T) {
	cat := testCatalog(t)
	n := mustBind(t, cat, `
		SELECT s.temp, r.name FROM sensors s, rooms r
		WHERE s.room = r.room AND s.temp > 25.0 AND r.floor = 1`)
	opt := Optimize(n)
	s := String(opt)
	if !strings.Contains(s, "join (hash) on") {
		t.Errorf("no hash join in:\n%s", s)
	}
	// The temp filter must sit below the join, directly over the stream
	// scan.
	join := findJoin(opt)
	if join == nil {
		t.Fatalf("no join node in optimized plan:\n%s", s)
	}
	lf, ok := join.L.(*Filter)
	if !ok || !strings.Contains(lf.Pred.String(), "temp") {
		t.Errorf("left side of join = %T (%s), want temp filter", join.L, s)
	}
	rf, ok := join.R.(*Filter)
	if !ok || !strings.Contains(rf.Pred.String(), "floor") {
		t.Errorf("right side of join = %T (%s), want floor filter", join.R, s)
	}
	if join.Residual != nil {
		t.Errorf("residual should be empty, got %s", join.Residual)
	}
}

func findJoin(n Node) *Join {
	if j, ok := n.(*Join); ok {
		return j
	}
	for _, c := range n.Children() {
		if j := findJoin(c); j != nil {
			return j
		}
	}
	return nil
}

func TestOptimizeJoinOnClause(t *testing.T) {
	cat := testCatalog(t)
	n := mustBind(t, cat,
		"SELECT s.temp FROM sensors s JOIN rooms r ON s.room = r.room")
	opt := Optimize(n)
	j := findJoin(opt)
	if j == nil || len(j.LKeys) != 1 {
		t.Fatalf("equi keys not extracted:\n%s", String(opt))
	}
}

func TestOptimizeConstantFolding(t *testing.T) {
	cat := testCatalog(t)
	n := mustBind(t, cat, "SELECT temp FROM sensors WHERE temp > 10.0 + 15.0")
	opt := Optimize(n)
	s := String(opt)
	if !strings.Contains(s, "25") || strings.Contains(s, "10 + 15") {
		t.Errorf("constant not folded:\n%s", s)
	}
}

func TestOptimizeKeepsCrossKindEqualityResidual(t *testing.T) {
	cat := testCatalog(t)
	// temp (FLOAT) = code (INT): equality across kinds must not become a
	// hash-join key.
	n := mustBind(t, cat,
		"SELECT s.temp FROM sensors s, events e WHERE s.temp = e.code")
	opt := Optimize(n)
	j := findJoin(opt)
	if j == nil {
		t.Fatal("no join")
	}
	if len(j.LKeys) != 0 || j.Residual == nil {
		t.Errorf("cross-kind equality should stay residual: keys=%v residual=%v",
			j.LKeys, j.Residual)
	}
}

func TestPlanString(t *testing.T) {
	cat := testCatalog(t)
	n := mustBind(t, cat, `
		SELECT room, count(*) AS n FROM sensors [SIZE 100 SLIDE 10]
		WHERE temp > 20.0 GROUP BY room ORDER BY n DESC LIMIT 3`)
	opt := Optimize(n)
	s := String(opt)
	for _, want := range []string{"limit 3", "order by n desc", "project", "group by room", "select", "scan stream sensors [SIZE 100 SLIDE 10]"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan string missing %q:\n%s", want, s)
		}
	}
}

func TestStreamsAndTables(t *testing.T) {
	cat := testCatalog(t)
	n := mustBind(t, cat,
		"SELECT s.temp FROM sensors s JOIN rooms r ON s.room = r.room")
	if len(Streams(n)) != 1 || len(Tables(n)) != 1 {
		t.Errorf("streams/tables = %d/%d", len(Streams(n)), len(Tables(n)))
	}
}
