package plan

import (
	"fmt"
)

// Decomposition is a continuous plan split for incremental evaluation
// (paper §3, Sliding Window Processing): per-basic-window pipeline
// fragments whose intermediates are cached, an optional blocking boundary
// (aggregate or stream-stream join) where partials are merged, and a
// post-merge fragment.
//
// Layouts produced:
//
//	single stream, aggregate:   PerBW → [Agg partials per basic window] → merge → Post
//	single stream, no aggregate: PerBW cached per basic window → concat → Post
//	two streams (join):         PerBW_L, PerBW_R cached; join evaluated per
//	                            basic-window pair and cached; concat → Post
type Decomposition struct {
	// Pipelines holds one per-basic-window fragment per stream, in
	// Streams() order. Each fragment's only stream leaf is its Scan; it
	// may include filters, projections and joins against static tables.
	Pipelines []*Pipeline
	// Join is the stream⋈stream node (nil for single-stream plans). Its
	// inputs correspond to the two pipeline outputs.
	Join *Join
	// Agg is the aggregate at the blocking boundary for single-stream
	// plans (nil if none, or if the plan is a join plan — aggregates above
	// a stream join are recomputed over the merged join output inside
	// Post).
	Agg *Aggregate
	// MergedLeaf is the synthetic leaf feeding Post.
	MergedLeaf *Merged
	// Post is the fragment above the merge; nil means the merged chunk is
	// the query result.
	Post Node

	// memo caches the linearizations and canonical fingerprints derived
	// from this (immutable) decomposition, so plan-cache-shared plans pay
	// the renders once across registrations. See memo.go.
	memo decompMemo
}

// Pipeline is one per-basic-window fragment.
type Pipeline struct {
	Scan *ScanStream
	Root Node
}

// Decompose splits an optimized continuous plan for incremental
// evaluation. It returns an error describing why the plan must fall back
// to full re-evaluation when the shape is unsupported; the engine then
// runs mode 1 (the paper's re-evaluation mode) instead.
func Decompose(root Node) (*Decomposition, error) {
	streams := Streams(root)
	switch len(streams) {
	case 0:
		return nil, fmt.Errorf("plan: not a continuous query (no stream scan)")
	case 1, 2:
	default:
		return nil, fmt.Errorf("plan: incremental mode supports at most 2 streams, got %d", len(streams))
	}
	for _, s := range streams {
		if s.Window == nil {
			return nil, fmt.Errorf("plan: incremental mode requires a window on stream %q", s.Alias)
		}
	}

	parents := parentMap(root)

	if len(streams) == 1 {
		return decomposeSingle(root, streams[0], parents)
	}
	return decomposeJoin(root, streams, parents)
}

func decomposeSingle(root Node, scan *ScanStream, parents map[Node]Node) (*Decomposition, error) {
	p := pipelineRoot(scan, parents)
	d := &Decomposition{Pipelines: []*Pipeline{{Scan: scan, Root: p}}}

	boundary := p
	if agg, ok := parents[p].(*Aggregate); ok {
		d.Agg = agg
		boundary = agg
	}
	d.MergedLeaf = &Merged{Out: boundary.Schema()}
	if boundary != root {
		post, err := clonePath(root, boundary, d.MergedLeaf)
		if err != nil {
			return nil, err
		}
		d.Post = post
	}
	return d, nil
}

func decomposeJoin(root Node, streams []*ScanStream, parents map[Node]Node) (*Decomposition, error) {
	if err := windowsCompatible(streams[0].Window, streams[1].Window); err != nil {
		return nil, err
	}
	pl := pipelineRoot(streams[0], parents)
	pr := pipelineRoot(streams[1], parents)
	jl, okL := parents[pl].(*Join)
	jr, okR := parents[pr].(*Join)
	if !okL || !okR || jl != jr {
		return nil, fmt.Errorf("plan: stream pipelines do not meet at a single join")
	}
	if jl.L != pl || jl.R != pr {
		return nil, fmt.Errorf("plan: join sides do not align with stream pipelines")
	}
	d := &Decomposition{
		Pipelines: []*Pipeline{{Scan: streams[0], Root: pl}, {Scan: streams[1], Root: pr}},
		Join:      jl,
	}
	d.MergedLeaf = &Merged{Out: jl.Schema()}
	if jl != root {
		post, err := clonePath(root, jl, d.MergedLeaf)
		if err != nil {
			return nil, err
		}
		d.Post = post
	}
	return d, nil
}

// windowsCompatible requires the two stream windows of a join to slide in
// lockstep, so basic windows pair one-to-one.
func windowsCompatible(a, b *Window) error {
	if a.Tuples != b.Tuples {
		return fmt.Errorf("plan: join mixes tuple and time windows")
	}
	if a.Tuples {
		if a.Size != b.Size || a.Slide != b.Slide {
			return fmt.Errorf("plan: join windows differ (SIZE %d SLIDE %d vs SIZE %d SLIDE %d)",
				a.Size, a.Slide, b.Size, b.Slide)
		}
		return nil
	}
	if a.Range != b.Range || a.SlideDur != b.SlideDur {
		return fmt.Errorf("plan: join windows differ (RANGE %v SLIDE %v vs RANGE %v SLIDE %v)",
			a.Range, a.SlideDur, b.Range, b.SlideDur)
	}
	return nil
}

// pipelineRoot ascends from a stream scan through the operators that can
// run independently per basic window: filters, projections, and joins
// whose other side is static (tables only). It returns the top of that
// chain.
func pipelineRoot(scan *ScanStream, parents map[Node]Node) Node {
	var cur Node = scan
	for {
		p := parents[cur]
		switch t := p.(type) {
		case *Filter, *Project:
			cur = p.(Node)
			_ = t
		case *Join:
			// A join is pipeline-able only if the other side carries no
			// stream data (a static dimension table).
			other := t.L
			if t.L == cur {
				other = t.R
			}
			if len(Streams(other)) == 0 {
				cur = p
			} else {
				return cur
			}
		default:
			return cur
		}
	}
}

// parentMap records each node's parent.
func parentMap(root Node) map[Node]Node {
	m := make(map[Node]Node)
	var walk func(Node)
	walk = func(n Node) {
		for _, k := range n.Children() {
			m[k] = n
			walk(k)
		}
	}
	walk(root)
	return m
}

// clonePath copies the operators from root down to (and excluding)
// boundary, substituting leaf for boundary. Every node on the path must
// have a single child on the path; anything else (e.g. a join above the
// blocking boundary) is unsupported.
func clonePath(root, boundary Node, leaf Node) (Node, error) {
	if root == boundary {
		return leaf, nil
	}
	switch t := root.(type) {
	case *Filter:
		c, err := clonePath(t.Child, boundary, leaf)
		if err != nil {
			return nil, err
		}
		return &Filter{Child: c, Pred: t.Pred}, nil
	case *Project:
		c, err := clonePath(t.Child, boundary, leaf)
		if err != nil {
			return nil, err
		}
		return &Project{Child: c, Exprs: t.Exprs, Out: t.Out}, nil
	case *Sort:
		c, err := clonePath(t.Child, boundary, leaf)
		if err != nil {
			return nil, err
		}
		return &Sort{Child: c, Keys: t.Keys}, nil
	case *Limit:
		c, err := clonePath(t.Child, boundary, leaf)
		if err != nil {
			return nil, err
		}
		return &Limit{Child: c, N: t.N}, nil
	case *Distinct:
		c, err := clonePath(t.Child, boundary, leaf)
		if err != nil {
			return nil, err
		}
		return &Distinct{Child: c}, nil
	case *Aggregate:
		c, err := clonePath(t.Child, boundary, leaf)
		if err != nil {
			return nil, err
		}
		return &Aggregate{Child: c, Keys: t.Keys, KeyNames: t.KeyNames, Aggs: t.Aggs, Out: t.Out}, nil
	default:
		return nil, fmt.Errorf("plan: operator %T above the blocking boundary is not supported incrementally", root)
	}
}

// ContinuousString renders the incremental decomposition the way the demo
// GUI shows continuous plans: the per-basic-window fragments, the blocking
// boundary where partials merge, and the post-merge fragment.
func (d *Decomposition) ContinuousString() string {
	out := ""
	for i, p := range d.Pipelines {
		out += fmt.Sprintf("-- per basic window of %s --\n%s", p.Scan.Alias, String(p.Root))
		if i < len(d.Pipelines)-1 {
			out += "\n"
		}
	}
	switch {
	case d.Join != nil:
		out += "\n-- per basic-window pair (cached) --\n" + d.Join.Describe() + "\n"
	case d.Agg != nil:
		out += "\n-- partial per basic window, merged per slide --\n" + d.Agg.Describe() + "\n"
	default:
		out += "\n-- concatenate cached basic windows per slide --\n"
	}
	if d.Post != nil {
		out += "\n-- per slide --\n" + String(d.Post)
	}
	return out
}
