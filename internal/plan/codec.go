package plan

import (
	"encoding/binary"
	"fmt"
	"time"

	"datacell/internal/bat"
)

// Wire encoding of a bound window: the fabric ships slicing specs to
// worker processes and persists them inside worker snapshots, and both
// must reconstruct the exact window a front end slices at. The format is
// a flat varint tuple — tuples flag, size, slide (tuples), range and
// slide duration (microseconds), and the ordering-column index.

// AppendWindow appends the wire encoding of w to dst.
func AppendWindow(dst []byte, w *Window) []byte {
	if w.Tuples {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendVarint(dst, w.Size)
	dst = binary.AppendVarint(dst, w.Slide)
	dst = binary.AppendVarint(dst, w.Range.Microseconds())
	dst = binary.AppendVarint(dst, w.SlideDur.Microseconds())
	return binary.AppendVarint(dst, int64(w.TimeIdx))
}

// ReadWindow decodes a window from src, returning the remainder.
func ReadWindow(src []byte) (*Window, []byte, error) {
	if len(src) == 0 {
		return nil, nil, fmt.Errorf("plan: window kind: short buffer")
	}
	w := &Window{Tuples: src[0] != 0}
	src = src[1:]
	vals := make([]int64, 5)
	var err error
	for i := range vals {
		if vals[i], src, err = bat.ReadVarint(src); err != nil {
			return nil, nil, fmt.Errorf("plan: window field %d: %w", i, err)
		}
	}
	w.Size, w.Slide = vals[0], vals[1]
	w.Range = time.Duration(vals[2]) * time.Microsecond
	w.SlideDur = time.Duration(vals[3]) * time.Microsecond
	w.TimeIdx = int(vals[4])
	return w, src, nil
}
