package plan

import (
	"strings"
	"testing"
)

// The demo lets the audience watch "how query plans transform from
// typical DBMS query plans to online query plans". These golden tests pin
// the three plan stages for a representative query so that the
// transformation story stays visible and stable.

const goldenSQL = `
	SELECT r.name, count(*) AS n, avg(s.temp) AS m
	FROM sensors [SIZE 100 SLIDE 25] s
	JOIN rooms r ON s.room = r.room
	WHERE s.temp > 20.0
	GROUP BY r.name
	HAVING count(*) > 1
	ORDER BY n DESC
	LIMIT 3`

func TestGoldenNaivePlan(t *testing.T) {
	cat := testCatalog(t)
	bound := mustBind(t, cat, goldenSQL)
	got := String(bound)
	// The naive plan keeps predicates as filters above a keyless join.
	want := []string{
		"limit 3",
		"order by n desc",
		"project",
		"select (count(*) > 1)",
		"group by r.name aggregate count(*), sum(s.temp)",
		"select (s.temp > 20)",
		"select (s.room = r.room)",
		"cross join",
		"scan stream s [SIZE 100 SLIDE 25]",
		"scan table r",
	}
	checkOrder(t, got, want)
}

func TestGoldenOptimizedPlan(t *testing.T) {
	cat := testCatalog(t)
	opt := Optimize(mustBind(t, cat, goldenSQL))
	got := String(opt)
	// The optimizer extracts the hash-join key and pushes the temp filter
	// onto the stream side.
	want := []string{
		"limit 3",
		"group by r.name",
		"join (hash) on room=room",
		"select (s.temp > 20)",
		"scan stream s [SIZE 100 SLIDE 25]",
		"scan table r",
	}
	checkOrder(t, got, want)
	if strings.Contains(got, "cross join") {
		t.Errorf("cross join survived optimization:\n%s", got)
	}
}

func TestGoldenContinuousPlan(t *testing.T) {
	cat := testCatalog(t)
	opt := Optimize(mustBind(t, cat, goldenSQL))
	d, err := Decompose(opt)
	if err != nil {
		t.Fatal(err)
	}
	got := d.ContinuousString()
	// The continuous plan runs filter+table-join per basic window, keeps
	// mergeable aggregate partials, and evaluates having/sort/limit per
	// slide over the merged intermediate.
	want := []string{
		"per basic window of s",
		"join (hash) on room=room",
		"partial per basic window, merged per slide",
		"group by r.name",
		"per slide",
		"limit 3",
		"merge basic windows",
	}
	checkOrder(t, got, want)
}

// checkOrder asserts that the wanted substrings appear in order.
func checkOrder(t *testing.T, got string, want []string) {
	t.Helper()
	pos := 0
	for _, w := range want {
		idx := strings.Index(got[pos:], w)
		if idx < 0 {
			t.Fatalf("missing (or out of order) %q in:\n%s", w, got)
		}
		pos += idx + len(w)
	}
}
