// This file holds the canonical operator fingerprints for shared
// multi-query execution. Two member queries of an execution group whose
// operator chains render to the same fingerprint chain perform identical
// work on identical input, so the group's shared tries evaluate the
// chain once per sealed basic window (pipeline DAG) or per merged
// full-window view (post-merge trie) and share the memoized output.
// Fingerprints are canonical strings, not hashes: collisions would
// silently cross-wire two queries' results, so equality must be exact.

package plan

import (
	"fmt"
	"strings"

	"datacell/internal/algebra"
	"datacell/internal/bat"
	"datacell/internal/expr"
)

// Fingerprint renders a plan operator's canonical identity: the
// operator's parameters plus, recursively, its children's fingerprints.
// Column references render positionally ($idx), never by name, so alias
// choices ("FROM s" vs "FROM s x") cannot split identical computations —
// and conversely two same-named columns of different positions cannot
// merge. Stream scans fingerprint at slide granularity (the group key),
// deliberately ignoring the window SIZE: basic windows are cut per slide,
// so members with different extents still consume identical raw chunks.
// Table scans fingerprint by catalog name — the snapshot both members
// would read. Sort, Limit and Distinct render canonically too — they
// cannot appear inside a per-basic-window pipeline, but post-merge
// fragments (HAVING filters, final sorts, LIMIT) share through the
// group's post-merge trie, whose node identities are built from these
// forms. Merged leaves fingerprint by pointer identity: a merged view's
// identity is its merge class (plan.MergeKey), which the caller supplies
// as the explicit root fingerprint of a post-merge chain (PostSteps).
func Fingerprint(n Node) string {
	switch t := n.(type) {
	case *ScanStream:
		return "scan{" + GroupKey(t) + "}"
	case *ScanTable:
		return fmt.Sprintf("table{%s|%s}", t.Table.Name, t.Out)
	case *Filter:
		return fmt.Sprintf("filter{%s}(%s)", canonExpr(t.Pred), Fingerprint(t.Child))
	case *Project:
		exprs := make([]string, len(t.Exprs))
		for i, e := range t.Exprs {
			exprs[i] = canonExpr(e)
		}
		return fmt.Sprintf("project{%s|%s}(%s)",
			strings.Join(exprs, ","), t.Out, Fingerprint(t.Child))
	case *Join:
		return fmt.Sprintf("join{l=%v,r=%v,res=%s|%s}(%s,%s)",
			t.LKeys, t.RKeys, canonExpr(t.Residual), t.Out,
			Fingerprint(t.L), Fingerprint(t.R))
	case *Aggregate:
		return FingerprintAggregate(t, Fingerprint(t.Child))
	case *Sort:
		return fingerprintSort(t, Fingerprint(t.Child))
	case *Limit:
		return fmt.Sprintf("limit{%d}(%s)", t.N, Fingerprint(t.Child))
	case *Distinct:
		return fmt.Sprintf("distinct(%s)", Fingerprint(t.Child))
	default:
		return fmt.Sprintf("opaque{%p}", n)
	}
}

// fingerprintSort renders a Sort's canonical identity over an explicit
// child fingerprint. Sort keys are already positional (bound output
// column indexes), so the render is canonical by construction.
func fingerprintSort(t *Sort, childFp string) string {
	keys := make([]string, len(t.Keys))
	for i, k := range t.Keys {
		keys[i] = fmt.Sprintf("$%d", k.Col)
		if k.Desc {
			keys[i] += " desc"
		}
	}
	return fmt.Sprintf("sort{%s}(%s)", strings.Join(keys, ","), childFp)
}

// FingerprintAggregate renders the partial-aggregate stage's canonical
// identity over an explicit child fingerprint. The group DAG uses it to
// memoize per-basic-window partials: members sharing keys and aggregate
// specs over the same pipeline share one partial per basic window, even
// when their merge stages (HAVING, projections over the merged aggregate)
// diverge.
func FingerprintAggregate(a *Aggregate, childFp string) string {
	keys := make([]string, len(a.Keys))
	for i, k := range a.Keys {
		keys[i] = canonExpr(k)
	}
	aggs := make([]string, len(a.Aggs))
	for i, sp := range a.Aggs {
		arg := "*"
		if sp.Arg != nil {
			arg = canonExpr(sp.Arg)
		}
		aggs[i] = fmt.Sprintf("%s(%s)", sp.Op, arg)
	}
	return fmt.Sprintf("agg{k=%s|a=%s|%s}(%s)",
		strings.Join(keys, ","), strings.Join(aggs, ","), a.Out, childFp)
}

// canonExpr renders an expression with positional column references —
// expr.Expr.String() prints original column names, which vary with stream
// aliases while the computation does not.
func canonExpr(e expr.Expr) string {
	switch t := e.(type) {
	case nil:
		return "-"
	case *expr.Col:
		return fmt.Sprintf("$%d:%s", t.Idx, t.K)
	case *expr.Const:
		if t.V.Kind == bat.Str {
			// Quoted: a raw render is not injective ("a:str,b" would
			// collide with two separate arguments) and a collision here
			// cross-wires two queries' memoized results.
			return fmt.Sprintf("%q:%s", t.V.S, t.V.Kind)
		}
		return fmt.Sprintf("%s:%s", t.V, t.V.Kind)
	case *expr.Arith:
		return fmt.Sprintf("(%s%s%s)", canonExpr(t.L), t.Op, canonExpr(t.R))
	case *expr.Cast:
		return fmt.Sprintf("cast(%s,%s)", canonExpr(t.E), t.To)
	case *expr.Cmp:
		return fmt.Sprintf("(%s cmp%d %s)", canonExpr(t.L), t.Op, canonExpr(t.R))
	case *expr.Logic:
		if t.R == nil {
			return fmt.Sprintf("(not %s)", canonExpr(t.L))
		}
		return fmt.Sprintf("(%s log%d %s)", canonExpr(t.L), t.Op, canonExpr(t.R))
	case *expr.Func:
		args := make([]string, len(t.Args))
		for i, a := range t.Args {
			args[i] = canonExpr(a)
		}
		return fmt.Sprintf("%s(%s)", t.Name, strings.Join(args, ","))
	default:
		return fmt.Sprintf("opaque{%p}", e)
	}
}

// PipelineStep is one operator of a linearized plan chain — the unit a
// group's shared operator tries register as trie nodes. Two chains exist:
// per-basic-window pipelines (PipelineSteps, rooted at the stream scan)
// and post-merge fragments (PostSteps, rooted at a merged full-window
// view). StreamLeft marks, for joins against static tables, which side
// carries the stream data.
type PipelineStep struct {
	// Op is the operator: Filter, Project, or static-table Join in a
	// per-basic-window pipeline; additionally Sort, Limit, Distinct, or
	// Aggregate in a post-merge fragment.
	Op Node
	// StreamLeft is meaningful for Join steps only: the stream side.
	StreamLeft bool
	// Fp is the canonical fingerprint of the chain up to this step.
	Fp string
}

// PipelineSteps walks root down its stream-side spine to the scan and
// returns the steps scan-upward. ok is false if the spine contains an
// unsupported operator (the caller then skips DAG registration and the
// member evaluates its pipeline privately, as before).
func PipelineSteps(root Node, scan *ScanStream) (steps []PipelineStep, ok bool) {
	var chain []PipelineStep
	cur := root
	for cur != scan {
		switch t := cur.(type) {
		case *Filter:
			chain = append(chain, PipelineStep{Op: t})
			cur = t.Child
		case *Project:
			chain = append(chain, PipelineStep{Op: t})
			cur = t.Child
		case *Join:
			// Pipeline joins have a static side (tables only) — see
			// pipelineRoot; descend the stream side.
			if len(Streams(t.L)) > 0 {
				chain = append(chain, PipelineStep{Op: t, StreamLeft: true})
				cur = t.L
			} else {
				chain = append(chain, PipelineStep{Op: t})
				cur = t.R
			}
		default:
			return nil, false
		}
	}
	// Reverse to scan-upward order and compute cumulative fingerprints.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	fp := Fingerprint(scan)
	for i := range chain {
		fp = stepFingerprint(chain[i], fp)
		chain[i].Fp = fp
	}
	return chain, true
}

// PostSteps linearizes a post-merge fragment from its Merged leaf up to
// (and including) root: the operator chain a group's post-merge trie
// registers so identical HAVING filters, projections, final aggregates,
// sorts and LIMITs evaluate once per merged full-window view. rootFp
// seeds the cumulative fingerprints — callers pass the merge class key
// (plan.MergeKey), so chains over distinct merged views can never
// collide in one trie. ok is false when the fragment contains an
// operator the trie cannot apply stepwise (the member then evaluates its
// post fragment privately, as before).
func PostSteps(root Node, leaf *Merged, rootFp string) (steps []PipelineStep, ok bool) {
	var chain []PipelineStep
	cur := root
	for cur != Node(leaf) {
		switch t := cur.(type) {
		case *Filter:
			chain = append(chain, PipelineStep{Op: t})
			cur = t.Child
		case *Project:
			chain = append(chain, PipelineStep{Op: t})
			cur = t.Child
		case *Sort:
			chain = append(chain, PipelineStep{Op: t})
			cur = t.Child
		case *Limit:
			chain = append(chain, PipelineStep{Op: t})
			cur = t.Child
		case *Distinct:
			chain = append(chain, PipelineStep{Op: t})
			cur = t.Child
		case *Aggregate:
			chain = append(chain, PipelineStep{Op: t})
			cur = t.Child
		default:
			return nil, false
		}
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	fp := rootFp
	for i := range chain {
		fp = stepFingerprint(chain[i], fp)
		chain[i].Fp = fp
	}
	return chain, true
}

// ApplyStep runs one chain operator over an explicit input chunk — the
// evaluation unit of a group's shared operator tries (the stream-side
// input of a per-basic-window pipeline step, or the merged view of a
// post-merge step). Static join sides (tables only) are snapshotted per
// call, exactly as a private per-member pipeline evaluation would. Each
// case mirrors Exec.Run's evaluation of the same operator, which is what
// makes a shared chain byte-identical to a private one. An evaluation
// error degrades to an empty chunk of the operator's schema, mirroring
// the factory's per-basic-window error handling.
func ApplyStep(s PipelineStep, in *bat.Chunk) *bat.Chunk {
	switch t := s.Op.(type) {
	case *Filter:
		sel := expr.EvalPred(t.Pred, in, nil)
		return algebra.FetchChunk(in, sel)
	case *Project:
		cols := make([]bat.Vector, len(t.Exprs))
		for i, e := range t.Exprs {
			cols[i] = e.Eval(in, nil)
		}
		return &bat.Chunk{Schema: t.Out, Cols: cols}
	case *Sort:
		return RunSort(t, in)
	case *Limit:
		if int64(in.Rows()) <= t.N {
			return in
		}
		return in.Slice(0, int(t.N))
	case *Distinct:
		g := algebra.Group(in.Cols, nil, in.Rows())
		return algebra.FetchChunk(in, g.Repr)
	case *Aggregate:
		return RunAggregate(t, in)
	case *Join:
		ex := &Exec{}
		l, r := in, in
		var other Node
		if s.StreamLeft {
			other = t.R
		} else {
			other = t.L
		}
		o, err := ex.Run(other)
		if err != nil {
			return bat.NewChunk(t.Out)
		}
		if s.StreamLeft {
			r = o
		} else {
			l = o
		}
		return JoinChunks(t, l, r)
	}
	return bat.NewChunk(s.Op.Schema())
}

// stepFingerprint is Fingerprint with the chain-side child replaced by an
// explicit prefix fingerprint, so chains over distinct (but equivalent)
// roots — scan nodes, merged views — compose identically.
func stepFingerprint(s PipelineStep, childFp string) string {
	switch t := s.Op.(type) {
	case *Filter:
		return fmt.Sprintf("filter{%s}(%s)", canonExpr(t.Pred), childFp)
	case *Project:
		exprs := make([]string, len(t.Exprs))
		for i, e := range t.Exprs {
			exprs[i] = canonExpr(e)
		}
		return fmt.Sprintf("project{%s|%s}(%s)", strings.Join(exprs, ","), t.Out, childFp)
	case *Sort:
		return fingerprintSort(t, childFp)
	case *Limit:
		return fmt.Sprintf("limit{%d}(%s)", t.N, childFp)
	case *Distinct:
		return fmt.Sprintf("distinct(%s)", childFp)
	case *Aggregate:
		return FingerprintAggregate(t, childFp)
	case *Join:
		l, r := Fingerprint(t.L), Fingerprint(t.R)
		if s.StreamLeft {
			l = childFp
		} else {
			r = childFp
		}
		return fmt.Sprintf("join{l=%v,r=%v,res=%s|%s}(%s,%s)",
			t.LKeys, t.RKeys, canonExpr(t.Residual), t.Out, l, r)
	default:
		return fmt.Sprintf("opaque{%p}", s.Op)
	}
}
