package plan

import (
	"fmt"
)

// SharedScan reports whether a continuous plan is eligible for shared
// multi-query execution: exactly one windowed stream scan. Such plans can
// join a query group that drains, sequences and slices the stream once and
// fans each sealed basic window out to the member queries' private
// operator tails (selections, projections, aggregations, joins against
// static tables). Plans over two streams group through SharedJoin instead:
// their basic windows pair across inputs, which a join group models with
// two paired front ends.
func SharedScan(root Node) (*ScanStream, bool) {
	streams := Streams(root)
	if len(streams) != 1 || streams[0].Window == nil {
		return nil, false
	}
	return streams[0], true
}

// SharedJoin reports whether an incremental decomposition is eligible for
// a shared stream⋈stream join group: exactly two windowed stream scans
// meeting at a single join (the shape Decompose already certified when it
// produced a non-nil Join). Members of a join group share two stream front
// ends — each stream drained, sequenced and sliced once — and one pair
// cache per distinct join fingerprint.
func SharedJoin(d *Decomposition) (left, right *ScanStream, ok bool) {
	if d == nil || d.Join == nil || len(d.Pipelines) != 2 {
		return nil, nil, false
	}
	return d.Pipelines[0].Scan, d.Pipelines[1].Scan, true
}

// GroupKey is the shared-execution group key of a windowed stream scan:
// queries whose scans agree on it consume identical basic windows and can
// share one slice of the stream. The key is the slicing granularity —
// stream, window kind, and slide (tuple count or time bucket plus ordering
// attribute) — together with the scan schema. The window SIZE is
// deliberately absent: basic windows are cut at slide granularity, so
// members may keep rings of different extents over the same shared
// basic-window sequence.
func GroupKey(sc *ScanStream) string {
	w := sc.Window
	if w == nil {
		return ""
	}
	if w.Tuples {
		return fmt.Sprintf("%s|tuple|slide=%d|%s", sc.Stream.Name, w.Slide, sc.Out)
	}
	return fmt.Sprintf("%s|time|slide=%dus|ts=%d|%s",
		sc.Stream.Name, w.SlideDur.Microseconds(), w.TimeIdx, sc.Out)
}

// JoinGroupKey is the shared-execution group key of a stream⋈stream join:
// queries whose two windowed scans agree on it consume identical pairs of
// basic-window sequences, so one join group can drain and slice both
// streams once for all of them. Like GroupKey it is the slicing
// granularity of each side — window SIZE stays per-member (rings of
// different extents over the same shared pair sequence). The two sides
// are ordered as they appear in the plan: s⋈r and r⋈s slice the same
// streams but deliver sides in mirrored roles, so they form distinct
// groups rather than sharing one with swapped semantics.
func JoinGroupKey(left, right *ScanStream) string {
	return GroupKey(left) + " ⋈ " + GroupKey(right)
}
