package plan

import (
	"fmt"
)

// SharedScan reports whether a continuous plan is eligible for shared
// multi-query execution: exactly one windowed stream scan. Such plans can
// join a query group that drains, sequences and slices the stream once and
// fans each sealed basic window out to the member queries' private
// operator tails (selections, projections, aggregations, joins against
// static tables). Plans over two streams keep their own factory: their
// basic windows pair across inputs, which the shared slice layer does not
// model.
func SharedScan(root Node) (*ScanStream, bool) {
	streams := Streams(root)
	if len(streams) != 1 || streams[0].Window == nil {
		return nil, false
	}
	return streams[0], true
}

// GroupKey is the shared-execution group key of a windowed stream scan:
// queries whose scans agree on it consume identical basic windows and can
// share one slice of the stream. The key is the slicing granularity —
// stream, window kind, and slide (tuple count or time bucket plus ordering
// attribute) — together with the scan schema. The window SIZE is
// deliberately absent: basic windows are cut at slide granularity, so
// members may keep rings of different extents over the same shared
// basic-window sequence.
func GroupKey(sc *ScanStream) string {
	w := sc.Window
	if w == nil {
		return ""
	}
	if w.Tuples {
		return fmt.Sprintf("%s|tuple|slide=%d|%s", sc.Stream.Name, w.Slide, sc.Out)
	}
	return fmt.Sprintf("%s|time|slide=%dus|ts=%d|%s",
		sc.Stream.Name, w.SlideDur.Microseconds(), w.TimeIdx, sc.Out)
}
