package plan

import (
	"fmt"
)

// SharedScan reports whether a continuous plan is eligible for shared
// multi-query execution: exactly one windowed stream scan. Such plans can
// join a query group that drains, sequences and slices the stream once and
// fans each sealed basic window out to the member queries' private
// operator tails (selections, projections, aggregations, joins against
// static tables). Plans over two streams group through SharedJoin instead:
// their basic windows pair across inputs, which a join group models with
// two paired front ends.
func SharedScan(root Node) (*ScanStream, bool) {
	streams := Streams(root)
	if len(streams) != 1 || streams[0].Window == nil {
		return nil, false
	}
	return streams[0], true
}

// SharedJoin reports whether an incremental decomposition is eligible for
// a shared stream⋈stream join group: exactly two windowed stream scans
// meeting at a single join (the shape Decompose already certified when it
// produced a non-nil Join). Members of a join group share two stream front
// ends — each stream drained, sequenced and sliced once — and one pair
// cache per distinct join fingerprint.
func SharedJoin(d *Decomposition) (left, right *ScanStream, ok bool) {
	if d == nil || d.Join == nil || len(d.Pipelines) != 2 {
		return nil, nil, false
	}
	return d.Pipelines[0].Scan, d.Pipelines[1].Scan, true
}

// GroupKey is the shared-execution group key of a windowed stream scan:
// queries whose scans agree on it consume identical basic windows and can
// share one slice of the stream. The key is the slicing granularity —
// stream, window kind, and slide (tuple count or time bucket plus ordering
// attribute) — together with the scan schema. The window SIZE is
// deliberately absent: basic windows are cut at slide granularity, so
// members may keep rings of different extents over the same shared
// basic-window sequence.
// Streams exported to a distributed shard fabric append their partition
// tag (worker count and shard-range assignment): the fabric's layout is
// part of the grouping identity, so a group never outlives or straddles a
// re-partitioning of its stream.
func GroupKey(sc *ScanStream) string {
	w := sc.Window
	if w == nil {
		return ""
	}
	var key string
	if w.Tuples {
		key = fmt.Sprintf("%s|tuple|slide=%d|%s", sc.Stream.Name, w.Slide, sc.Out)
	} else {
		key = fmt.Sprintf("%s|time|slide=%dus|ts=%d|%s",
			sc.Stream.Name, w.SlideDur.Microseconds(), w.TimeIdx, sc.Out)
	}
	if tag := sc.Stream.RemoteTag(); tag != "" {
		key += "|" + tag
	}
	return key
}

// MergeKey is the merge-class key of an incremental single-stream
// decomposition: members of one execution group whose decompositions
// agree on it hold byte-identical full-window merged views, so the group
// can own one merge ring per class and evaluate the merge — partial-
// aggregate merging, or concatenation of cached pipeline outputs — once
// per sealed full window for all of them. The key is the window extent
// in basic windows plus the canonical fingerprint of the merged view's
// content: the pipeline chain's fingerprint, wrapped in the partial-
// aggregate fingerprint when the plan aggregates. Post-merge fragments
// (HAVING, final sort/limit) are deliberately absent — they diverge per
// member and share separately through the group's post-merge trie,
// rooted at this key. ok is false for plans the shared merge cannot
// serve: join decompositions (they merge through pair caches) and
// pipelines that do not linearize. steps must be the decomposition's
// already-linearized pipeline chain (PipelineSteps over Pipelines[0]) —
// the key is derived from the same chain the caller registers in the
// group DAG, so the two can never drift apart.
func MergeKey(d *Decomposition, steps []PipelineStep) (string, bool) {
	if d == nil || d.Join != nil || len(d.Pipelines) != 1 {
		return "", false
	}
	scan := d.Pipelines[0].Scan
	if scan.Window == nil {
		return "", false
	}
	fp := Fingerprint(scan)
	if len(steps) > 0 {
		fp = steps[len(steps)-1].Fp
	}
	if d.Agg != nil {
		fp = FingerprintAggregate(d.Agg, fp)
	}
	return fmt.Sprintf("merge{parts=%d}(%s)", scan.Window.Parts(), fp), true
}

// JoinMergeKey is the merge-class key of a join decomposition: members of
// one join group whose decompositions agree on it hold byte-identical
// merged join views — the concatenation, in (leftGen, rightGen) order, of
// the live basic-window pair results — so the group can own one pair of
// merge rings per class and evaluate the merged view once per fanned-out
// window for all of them. The key is the window extent in basic windows
// plus the join node's canonical fingerprint, which recursively includes
// both side pipelines' fingerprints: two members share a class exactly
// when their per-window pipelines AND their join agree, which is also
// when they share a pair cache. Post-merge fragments (HAVING, final
// aggregates, sort/limit) are deliberately absent — they diverge per
// member and share separately through the join group's post-merge trie,
// rooted at this key. ok is false for non-join decompositions.
func JoinMergeKey(d *Decomposition) (string, bool) {
	if d == nil || d.Join == nil || len(d.Pipelines) != 2 {
		return "", false
	}
	l, r := d.Pipelines[0].Scan, d.Pipelines[1].Scan
	if l.Window == nil || r.Window == nil {
		return "", false
	}
	parts := l.Window.Parts()
	if p := r.Window.Parts(); p > parts {
		parts = p
	}
	return fmt.Sprintf("jmerge{parts=%d}(%s)", parts, Fingerprint(d.Join)), true
}

// JoinGroupKey is the shared-execution group key of a stream⋈stream join:
// queries whose two windowed scans agree on it consume identical pairs of
// basic-window sequences, so one join group can drain and slice both
// streams once for all of them. Like GroupKey it is the slicing
// granularity of each side — window SIZE stays per-member (rings of
// different extents over the same shared pair sequence). The two sides
// are ordered as they appear in the plan: s⋈r and r⋈s slice the same
// streams but deliver sides in mirrored roles, so they form distinct
// groups rather than sharing one with swapped semantics.
func JoinGroupKey(left, right *ScanStream) string {
	return GroupKey(left) + " ⋈ " + GroupKey(right)
}
