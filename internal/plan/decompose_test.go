package plan

import (
	"strings"
	"testing"
)

func decompose(t *testing.T, src string) (*Decomposition, error) {
	t.Helper()
	cat := testCatalog(t)
	return Decompose(Optimize(mustBind(t, cat, src)))
}

func TestDecomposeSingleStreamAggregate(t *testing.T) {
	d, err := decompose(t, `
		SELECT room, avg(temp) AS m FROM sensors [SIZE 100 SLIDE 10]
		WHERE temp > 0.0 GROUP BY room ORDER BY m DESC LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Pipelines) != 1 || d.Agg == nil || d.Join != nil {
		t.Fatalf("decomposition = %+v", d)
	}
	// Pipeline holds the filter; post holds project/sort/limit.
	if !strings.Contains(String(d.Pipelines[0].Root), "select") {
		t.Errorf("pipeline missing filter:\n%s", String(d.Pipelines[0].Root))
	}
	post := String(d.Post)
	for _, want := range []string{"limit 5", "order by", "project", "merge basic windows"} {
		if !strings.Contains(post, want) {
			t.Errorf("post missing %q:\n%s", want, post)
		}
	}
	if cs := d.ContinuousString(); !strings.Contains(cs, "partial per basic window") {
		t.Errorf("ContinuousString:\n%s", cs)
	}
}

func TestDecomposeSingleStreamNoAggregate(t *testing.T) {
	d, err := decompose(t,
		"SELECT room, temp FROM sensors [SIZE 40 SLIDE 20] WHERE temp > 21.5")
	if err != nil {
		t.Fatal(err)
	}
	if d.Agg != nil || d.Join != nil {
		t.Fatalf("decomposition = %+v", d)
	}
	// The whole plan is the pipeline: post is nil.
	if d.Post != nil {
		t.Errorf("post should be nil, got:\n%s", String(d.Post))
	}
	if cs := d.ContinuousString(); !strings.Contains(cs, "concatenate cached basic windows") {
		t.Errorf("ContinuousString:\n%s", cs)
	}
}

func TestDecomposeHavingGoesToPost(t *testing.T) {
	d, err := decompose(t, `
		SELECT room FROM sensors [SIZE 100 SLIDE 50]
		GROUP BY room HAVING count(*) > 2`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Agg == nil {
		t.Fatal("no aggregate boundary")
	}
	if d.Post == nil || !strings.Contains(String(d.Post), "select") {
		t.Errorf("having filter not in post:\n%v", d.Post)
	}
}

func TestDecomposeStreamTableJoinStaysInPipeline(t *testing.T) {
	d, err := decompose(t, `
		SELECT r.name, count(*) AS n FROM sensors [SIZE 100 SLIDE 10] s
		JOIN rooms r ON s.room = r.room GROUP BY r.name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Pipelines) != 1 || d.Join != nil {
		t.Fatalf("want single pipeline with table join inside, got %+v", d)
	}
	pipe := String(d.Pipelines[0].Root)
	if !strings.Contains(pipe, "join (hash)") || !strings.Contains(pipe, "scan table") {
		t.Errorf("pipeline should contain table join:\n%s", pipe)
	}
	if d.Agg == nil {
		t.Error("aggregate boundary missing")
	}
}

func TestDecomposeStreamStreamJoin(t *testing.T) {
	d, err := decompose(t, `
		SELECT s.temp, e.code FROM sensors [SIZE 60 SLIDE 20] s, events [SIZE 60 SLIDE 20] e
		WHERE s.room = e.room`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Join == nil || len(d.Pipelines) != 2 {
		t.Fatalf("decomposition = %+v", d)
	}
	// Project above the join lands in post.
	if d.Post == nil || !strings.Contains(String(d.Post), "project") {
		t.Errorf("post = %v", d.Post)
	}
	if cs := d.ContinuousString(); !strings.Contains(cs, "per basic-window pair") {
		t.Errorf("ContinuousString:\n%s", cs)
	}
}

func TestDecomposeJoinWithAggregateAbove(t *testing.T) {
	d, err := decompose(t, `
		SELECT s.room, count(*) AS n
		FROM sensors [SIZE 60 SLIDE 20] s, events [SIZE 60 SLIDE 20] e
		WHERE s.room = e.room GROUP BY s.room`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Join == nil || d.Agg != nil {
		t.Fatalf("join plan should put aggregate in post, got %+v", d)
	}
	if !strings.Contains(String(d.Post), "group by") {
		t.Errorf("post missing aggregate:\n%s", String(d.Post))
	}
}

func TestDecomposeUnsupportedShapes(t *testing.T) {
	cases := []string{
		// No window.
		"SELECT temp FROM sensors WHERE temp > 1.0",
		// Incompatible join windows.
		`SELECT s.temp FROM sensors [SIZE 60 SLIDE 20] s, events [SIZE 60 SLIDE 30] e
		 WHERE s.room = e.room`,
		// Tuple vs time windows.
		`SELECT s.temp FROM sensors [SIZE 60 SLIDE 20] s, events [RANGE 5 SECONDS] e
		 WHERE s.room = e.room`,
		// No stream at all.
		"SELECT name FROM rooms",
	}
	for _, src := range cases {
		if _, err := decompose(t, src); err == nil {
			t.Errorf("Decompose(%q) should fail", src)
		}
	}
}

func TestDecomposeThreeStreamsUnsupported(t *testing.T) {
	cat := testCatalog(t)
	n := Optimize(mustBind(t, cat, `
		SELECT a.temp FROM sensors [SIZE 10] a, events [SIZE 10] b, sensors [SIZE 10] c
		WHERE a.room = b.room AND b.room = c.room`))
	if _, err := Decompose(n); err == nil {
		t.Error("three-stream plan should be rejected")
	}
}

func TestDecomposeTimeWindows(t *testing.T) {
	d, err := decompose(t, `
		SELECT room, count(*) AS n FROM sensors [RANGE 10 SECONDS SLIDE 2 SECONDS]
		GROUP BY room`)
	if err != nil {
		t.Fatal(err)
	}
	w := d.Pipelines[0].Scan.Window
	if w.Tuples || w.Parts() != 5 {
		t.Errorf("window = %+v", w)
	}
}
