package plan

import (
	"fmt"

	"datacell/internal/algebra"
	"datacell/internal/bat"
	"datacell/internal/expr"
)

// Exec evaluates plans bottom-up, one materialized chunk per operator —
// the bulk processing model ("an efficient bulk processing model instead
// of the typical tuple-at-a-time volcano approach", paper §3). Stream and
// merged-intermediate leaves read from the injected input maps, which is
// how the factory layer feeds window contents and cached basic-window
// merges into plan fragments.
type Exec struct {
	// StreamInputs supplies the current batch/window contents per stream
	// scan. A missing entry yields an empty chunk.
	StreamInputs map[*ScanStream]*bat.Chunk
	// MergedInputs supplies the merged intermediate per Merged leaf.
	MergedInputs map[*Merged]*bat.Chunk
}

// Run evaluates the plan and returns the result chunk.
func (ex *Exec) Run(n Node) (*bat.Chunk, error) {
	switch t := n.(type) {
	case *ScanTable:
		return t.Table.Snapshot(), nil

	case *ScanStream:
		if c, ok := ex.StreamInputs[t]; ok && c != nil {
			return c, nil
		}
		return bat.NewChunk(t.Out), nil

	case *Merged:
		if c, ok := ex.MergedInputs[t]; ok && c != nil {
			return c, nil
		}
		return bat.NewChunk(t.Out), nil

	case *Filter:
		in, err := ex.Run(t.Child)
		if err != nil {
			return nil, err
		}
		sel := expr.EvalPred(t.Pred, in, nil)
		return algebra.FetchChunk(in, sel), nil

	case *Project:
		in, err := ex.Run(t.Child)
		if err != nil {
			return nil, err
		}
		cols := make([]bat.Vector, len(t.Exprs))
		for i, e := range t.Exprs {
			cols[i] = e.Eval(in, nil)
		}
		return &bat.Chunk{Schema: t.Out, Cols: cols}, nil

	case *Join:
		return ex.runJoin(t)

	case *Aggregate:
		in, err := ex.Run(t.Child)
		if err != nil {
			return nil, err
		}
		return RunAggregate(t, in), nil

	case *Distinct:
		in, err := ex.Run(t.Child)
		if err != nil {
			return nil, err
		}
		g := algebra.Group(in.Cols, nil, in.Rows())
		return algebra.FetchChunk(in, g.Repr), nil

	case *Sort:
		in, err := ex.Run(t.Child)
		if err != nil {
			return nil, err
		}
		return RunSort(t, in), nil

	case *Limit:
		in, err := ex.Run(t.Child)
		if err != nil {
			return nil, err
		}
		if int64(in.Rows()) <= t.N {
			return in, nil
		}
		return in.Slice(0, int(t.N)), nil
	}
	return nil, fmt.Errorf("plan: cannot execute %T", n)
}

func (ex *Exec) runJoin(t *Join) (*bat.Chunk, error) {
	l, err := ex.Run(t.L)
	if err != nil {
		return nil, err
	}
	r, err := ex.Run(t.R)
	if err != nil {
		return nil, err
	}
	out := JoinChunks(t, l, r)
	return out, nil
}

// JoinChunks evaluates a join node against explicit input chunks. The
// window layer reuses it to join cached basic-window intermediates.
func JoinChunks(t *Join, l, r *bat.Chunk) *bat.Chunk {
	var lout, rout []int32
	if len(t.LKeys) > 0 {
		lkeys := make([]bat.Vector, len(t.LKeys))
		rkeys := make([]bat.Vector, len(t.RKeys))
		for i := range t.LKeys {
			lkeys[i] = l.Cols[t.LKeys[i]]
			rkeys[i] = r.Cols[t.RKeys[i]]
		}
		lout, rout = algebra.HashJoin(lkeys, rkeys, nil, nil)
	} else {
		lout, rout = algebra.NestedLoopJoin(l.Rows(), r.Rows(), nil, nil,
			func(_, _ int32) bool { return true })
	}
	cols := make([]bat.Vector, 0, len(l.Cols)+len(r.Cols))
	for _, c := range l.Cols {
		cols = append(cols, algebra.Gather(c, lout))
	}
	for _, c := range r.Cols {
		cols = append(cols, algebra.Gather(c, rout))
	}
	out := &bat.Chunk{Schema: t.Out, Cols: cols}
	if t.Residual != nil {
		sel := expr.EvalPred(t.Residual, out, nil)
		out = algebra.FetchChunk(out, sel)
	}
	return out
}

// RunAggregate evaluates an Aggregate node over an input chunk. An empty
// input produces zero output rows (DataCell's windows emit nothing rather
// than NULL aggregates when no tuples qualify).
func RunAggregate(t *Aggregate, in *bat.Chunk) *bat.Chunk {
	keyVecs := make([]bat.Vector, len(t.Keys))
	for i, k := range t.Keys {
		keyVecs[i] = k.Eval(in, nil)
	}
	rows := in.Rows()
	g := algebra.Group(keyVecs, nil, rows)
	cols := make([]bat.Vector, 0, len(t.Keys)+len(t.Aggs))
	for _, kv := range keyVecs {
		cols = append(cols, algebra.Fetch(kv, g.Repr))
	}
	for _, spec := range t.Aggs {
		var arg bat.Vector
		if spec.Arg != nil {
			arg = spec.Arg.Eval(in, nil)
		}
		cols = append(cols, algebra.Aggregate(spec.Op, arg, nil, g))
	}
	return &bat.Chunk{Schema: t.Out, Cols: cols}
}

// MergeAggregate re-aggregates already-aggregated partial results: counts
// and sums add up, mins and maxes take extremes. The input layout must be
// the Aggregate node's output layout (keys, then aggregates). This is the
// merge stage of the paper's incremental sliding-window processing: each
// basic window contributes one partial, and a slide merges the cached
// partials instead of recomputing the full window.
func MergeAggregate(t *Aggregate, partials *bat.Chunk) *bat.Chunk {
	nk := len(t.Keys)
	keyVecs := partials.Cols[:nk]
	g := algebra.Group(keyVecs, nil, partials.Rows())
	cols := make([]bat.Vector, 0, partials.Schema.Width())
	for _, kv := range keyVecs {
		cols = append(cols, algebra.Fetch(kv, g.Repr))
	}
	for i, spec := range t.Aggs {
		v := partials.Cols[nk+i]
		mergeOp := spec.Op
		if mergeOp == algebra.AggCount {
			mergeOp = algebra.AggSum // counts merge by summation
		}
		cols = append(cols, algebra.Aggregate(mergeOp, v, nil, g))
	}
	return &bat.Chunk{Schema: t.Out, Cols: cols}
}

// RunSort evaluates a Sort node over an input chunk.
func RunSort(t *Sort, in *bat.Chunk) *bat.Chunk {
	keys := make([]algebra.SortKey, len(t.Keys))
	for i, k := range t.Keys {
		keys[i] = algebra.SortKey{Col: in.Cols[k.Col], Desc: k.Desc}
	}
	idx := algebra.Order(keys, nil, in.Rows())
	cols := make([]bat.Vector, len(in.Cols))
	for i, c := range in.Cols {
		cols[i] = algebra.Gather(c, idx)
	}
	return &bat.Chunk{Schema: in.Schema, Cols: cols}
}
