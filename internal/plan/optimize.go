package plan

import (
	"datacell/internal/algebra"
	"datacell/internal/bat"
	"datacell/internal/expr"
)

// Optimize rewrites a bound plan with the rule set the demo inspects:
// constant folding, filter chains collapsed and pushed below joins, and
// equi-join keys extracted so joins run as hash joins rather than filtered
// cross products. The input tree is not mutated; shared leaves are reused.
func Optimize(n Node) Node {
	switch t := n.(type) {
	case *Filter:
		// Collapse the filter chain, optimize below it, then push the
		// conjuncts as deep as they can go.
		var conjuncts []expr.Expr
		child := n
		for {
			f, ok := child.(*Filter)
			if !ok {
				break
			}
			conjuncts = append(conjuncts, expr.SplitConjuncts(foldExpr(f.Pred))...)
			child = f.Child
		}
		return pushInto(Optimize(child.(Node)), conjuncts)
	case *Project:
		exprs := make([]expr.Expr, len(t.Exprs))
		for i, e := range t.Exprs {
			exprs[i] = foldExpr(e)
		}
		return &Project{Child: Optimize(t.Child), Exprs: exprs, Out: t.Out}
	case *Join:
		j := *t
		j.L, j.R = Optimize(t.L), Optimize(t.R)
		if t.Residual != nil {
			return pushInto(&j, expr.SplitConjuncts(foldExpr(t.Residual)))
		}
		return &j
	case *Aggregate:
		a := *t
		a.Child = Optimize(t.Child)
		return &a
	case *Sort:
		s := *t
		s.Child = Optimize(t.Child)
		return &s
	case *Limit:
		l := *t
		l.Child = Optimize(t.Child)
		return &l
	case *Distinct:
		d := *t
		d.Child = Optimize(t.Child)
		return &d
	default:
		return n
	}
}

// pushInto places conjuncts as low as possible above/below child.
func pushInto(child Node, conjuncts []expr.Expr) Node {
	if len(conjuncts) == 0 {
		return child
	}
	switch t := child.(type) {
	case *Filter:
		merged := append(expr.SplitConjuncts(t.Pred), conjuncts...)
		return pushInto(t.Child, merged)
	case *Join:
		lw := t.L.Schema().Width()
		rw := t.R.Schema().Width()
		j := *t
		var toLeft, toRight, residual []expr.Expr
		for _, c := range conjuncts {
			refs := map[int]bool{}
			expr.Cols(c, refs)
			side := sideOf(refs, lw, lw+rw)
			switch side {
			case -1: // left only
				toLeft = append(toLeft, c)
			case 1: // right only (remap into right's schema)
				m := make(map[int]int, len(refs))
				for idx := range refs {
					m[idx] = idx - lw
				}
				toRight = append(toRight, expr.Remap(c, m))
			default:
				if lk, rk, ok := equiKey(c, lw); ok {
					j.LKeys = append(j.LKeys, lk)
					j.RKeys = append(j.RKeys, rk)
				} else {
					residual = append(residual, c)
				}
			}
		}
		j.L = pushInto(j.L, toLeft)
		j.R = pushInto(j.R, toRight)
		res := expr.JoinConjuncts(residual)
		if j.Residual != nil {
			if res != nil {
				res = &expr.Logic{Op: expr.And, L: j.Residual, R: res}
			} else {
				res = j.Residual
			}
		}
		j.Residual = res
		return &j
	default:
		return &Filter{Child: child, Pred: expr.JoinConjuncts(conjuncts)}
	}
}

// sideOf classifies a referenced-column set against a join's column split:
// -1 left only, 1 right only, 0 both (or none).
func sideOf(refs map[int]bool, lw, total int) int {
	left, right := false, false
	for idx := range refs {
		if idx < lw {
			left = true
		} else if idx < total {
			right = true
		}
	}
	switch {
	case left && !right:
		return -1
	case right && !left:
		return 1
	default:
		return 0
	}
}

// equiKey recognizes col = col conjuncts spanning the two join sides.
func equiKey(c expr.Expr, lw int) (lk, rk int, ok bool) {
	cmp, isCmp := c.(*expr.Cmp)
	if !isCmp || cmp.Op != algebra.EQ {
		return 0, 0, false
	}
	lcol, lok := cmp.L.(*expr.Col)
	rcol, rok := cmp.R.(*expr.Col)
	if !lok || !rok {
		return 0, 0, false
	}
	// Hash joins need identical key representations; cross-kind numeric
	// equality stays residual.
	if lcol.K != rcol.K {
		return 0, 0, false
	}
	switch {
	case lcol.Idx < lw && rcol.Idx >= lw:
		return lcol.Idx, rcol.Idx - lw, true
	case rcol.Idx < lw && lcol.Idx >= lw:
		return rcol.Idx, lcol.Idx - lw, true
	}
	return 0, 0, false
}

// foldExpr evaluates constant subtrees at plan time.
func foldExpr(e expr.Expr) expr.Expr {
	switch n := e.(type) {
	case *expr.Arith:
		l, r := foldExpr(n.L), foldExpr(n.R)
		out := &expr.Arith{Op: n.Op, L: l, R: r}
		if isConst(l) && isConst(r) {
			return &expr.Const{V: evalConst(out)}
		}
		return out
	case *expr.Cmp:
		l, r := foldExpr(n.L), foldExpr(n.R)
		out := &expr.Cmp{Op: n.Op, L: l, R: r}
		if isConst(l) && isConst(r) {
			return &expr.Const{V: evalConst(out)}
		}
		return out
	case *expr.Logic:
		l := foldExpr(n.L)
		var r expr.Expr
		if n.R != nil {
			r = foldExpr(n.R)
		}
		out := &expr.Logic{Op: n.Op, L: l, R: r}
		if isConst(l) && (r == nil || isConst(r)) {
			return &expr.Const{V: evalConst(out)}
		}
		return out
	case *expr.Cast:
		inner := foldExpr(n.E)
		out := &expr.Cast{To: n.To, E: inner}
		if isConst(inner) {
			return &expr.Const{V: evalConst(out)}
		}
		return out
	case *expr.Func:
		args := make([]expr.Expr, len(n.Args))
		all := true
		for i, a := range n.Args {
			args[i] = foldExpr(a)
			all = all && isConst(args[i])
		}
		out := &expr.Func{Name: n.Name, Args: args, K: n.K}
		if all {
			return &expr.Const{V: evalConst(out)}
		}
		return out
	default:
		return e
	}
}

func isConst(e expr.Expr) bool {
	_, ok := e.(*expr.Const)
	return ok
}

// evalConst evaluates a column-free expression on a one-row dummy chunk.
func evalConst(e expr.Expr) bat.Value {
	dummy := &bat.Chunk{
		Schema: bat.NewSchema([]string{"_"}, []bat.Kind{bat.Int}),
		Cols:   []bat.Vector{bat.Ints{0}},
	}
	return e.Eval(dummy, nil).Get(0)
}
