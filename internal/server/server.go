// Package server implements the interactive surface of the demo: a
// session that dispatches SQL statements and backslash control commands
// (the textual equivalent of the demo GUI's panes), and a TCP server
// exposing the same protocol so cmd/dcmon can inspect a running instance
// remotely.
//
// Protocol: one request per line. Lines starting with '\' are control
// commands; anything else is SQL (a trailing ';' is optional). Responses
// are text blocks terminated by a line containing a single '.'.
package server

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"

	"datacell"
)

// Session wraps an engine with the demo's command set. Sessions are safe
// for concurrent use by multiple connections sharing one engine.
type Session struct {
	eng *datacell.Engine
}

// NewSession creates a session over an engine.
func NewSession(eng *datacell.Engine) *Session { return &Session{eng: eng} }

// Help is the command reference printed by \help.
const Help = `commands:
  <sql>;                 execute SQL (DDL, INSERT, SELECT, REGISTER QUERY)
  \help                  this text
  \catalog               list tables and streams
  \network               query network: baskets and queries (Figure 3)
  \queries               list registered continuous queries
  \groups                shared execution groups (members, live buffers)
  \tenants               per-tenant quotas, usage and throttle counters
  \fabric                distributed shard fabric (workers, streams, specs)
  \plan <query>          optimized one-time plan shape
  \cplan <query>         continuous (split/merge) plan shape
  \stats <query>         one query's counters
  \results <query> [n]   drain up to n pending results (default 1)
  \pause <query>         suspend a query          \resume <query>  reactivate
  \pause-stream <s>      hold a stream's arrivals \resume-stream <s> release
  \shards <s>            per-shard occupancy of a sharded stream
  \advance <usec>        close time windows up to a watermark
  \quit                  close the connection`

// Dispatch executes one input line (SQL or control command) and returns
// the textual response. The boolean reports whether the session should
// terminate.
func (s *Session) Dispatch(line string) (string, bool) {
	line = strings.TrimSpace(line)
	if line == "" {
		return "", false
	}
	if !strings.HasPrefix(line, `\`) {
		res, err := s.eng.ExecScript(line)
		if err != nil {
			return "error: " + err.Error(), false
		}
		switch {
		case res == nil:
			return "ok", false
		case res.Chunk != nil:
			return strings.TrimRight(res.Chunk.String(), "\n"), false
		default:
			return res.Msg, false
		}
	}

	fields := strings.Fields(line)
	cmd := fields[0]
	arg := func(i int) string {
		if len(fields) > i {
			return fields[i]
		}
		return ""
	}
	switch cmd {
	case `\help`:
		return Help, false
	case `\quit`:
		return "bye", true
	case `\catalog`:
		return strings.TrimRight(s.eng.Catalog(), "\n"), false
	case `\network`:
		return strings.TrimRight(s.eng.NetworkString(), "\n"), false
	case `\queries`:
		names := s.eng.QueryNames()
		if len(names) == 0 {
			return "(none)", false
		}
		return strings.Join(names, "\n"), false
	case `\groups`:
		groups := s.eng.Groups()
		if len(groups) == 0 {
			return "(none)", false
		}
		var b strings.Builder
		for _, g := range groups {
			fmt.Fprintf(&b, "%s kind=%s members=%d shards=%d windows=%d livebufs=%d dag_nodes=%d memo_hits=%d memo_misses=%d hit_rate=%.1f%%",
				g.Key, g.Kind, g.Members, g.Shards, g.WindowsOut, g.LiveBufs,
				g.DagNodes, g.MemoHits, g.MemoMisses, 100*g.MemoHitRate())
			if g.MergeClasses > 0 || g.PostNodes > 0 {
				fmt.Fprintf(&b, " merge_classes=%d merge_hits=%d merge_misses=%d merge_rate=%.1f%% post_nodes=%d post_hits=%d post_misses=%d post_rate=%.1f%%",
					g.MergeClasses, g.MergeHits, g.MergeMisses, 100*g.MergeHitRate(),
					g.PostNodes, g.PostHits, g.PostMisses, 100*g.PostHitRate())
			}
			if g.Kind == "join" {
				fmt.Fprintf(&b, " pair_caches=%d cached_pairs=%d pairs_computed=%d",
					g.PairCaches, g.CachedPairs, g.PairsComputed)
			}
			b.WriteByte('\n')
		}
		return strings.TrimRight(b.String(), "\n"), false
	case `\tenants`:
		tenants := s.eng.TenantStats()
		if len(tenants) == 0 {
			return "(none)", false
		}
		var b strings.Builder
		for _, t := range tenants {
			fmt.Fprintf(&b, "%s queries=%d", t.Name, t.Queries)
			if t.Quota.MaxQueries > 0 {
				fmt.Fprintf(&b, "/%d", t.Quota.MaxQueries)
			}
			if t.Quota.MaxAppendRowsPerSec > 0 {
				fmt.Fprintf(&b, " rate_limit=%.0frows/s", t.Quota.MaxAppendRowsPerSec)
			}
			if t.Quota.MaxLagWindows > 0 {
				fmt.Fprintf(&b, " lag=%d/%d", t.LagWindows, t.Quota.MaxLagWindows)
			}
			fmt.Fprintf(&b, " rejected=%d appended=%d throttled=%d throttle_wait=%dµs\n",
				t.RejectedQueries, t.AppendedRows, t.ThrottledAppends, t.ThrottleWaitUsec)
		}
		return strings.TrimRight(b.String(), "\n"), false
	case `\fabric`:
		return s.eng.FabricStatus(), false
	case `\plan`, `\cplan`, `\stats`, `\pause`, `\resume`, `\results`:
		q, ok := s.eng.Query(arg(1))
		if !ok {
			return fmt.Sprintf("error: no query %q", arg(1)), false
		}
		switch cmd {
		case `\plan`:
			return strings.TrimRight(q.PlanString(), "\n"), false
		case `\cplan`:
			return strings.TrimRight(q.ContinuousPlanString(), "\n"), false
		case `\stats`:
			st := q.Stats()
			return fmt.Sprintf(
				"query %s mode=%s firings=%d evals=%d in=%d out=%d last_lat=%dµs max_lat=%dµs",
				st.Name, st.Mode, st.Firings, st.Evals, st.TuplesIn, st.RowsOut,
				st.LastLatency, st.MaxLatency), false
		case `\pause`:
			q.Pause()
			return "paused", false
		case `\resume`:
			q.Resume()
			return "resumed", false
		case `\results`:
			n := 1
			if v, err := strconv.Atoi(arg(2)); err == nil && v > 0 {
				n = v
			}
			return s.drainResults(q, n), false
		}
	case `\pause-stream`:
		if err := s.eng.PauseStream(arg(1)); err != nil {
			return "error: " + err.Error(), false
		}
		return "stream paused", false
	case `\resume-stream`:
		if err := s.eng.ResumeStream(arg(1)); err != nil {
			return "error: " + err.Error(), false
		}
		return "stream resumed", false
	case `\shards`:
		bk, err := s.eng.Basket(arg(1))
		if err != nil {
			return "error: " + err.Error(), false
		}
		var b strings.Builder
		route := "round-robin"
		if bk.KeyIndex() >= 0 {
			route = fmt.Sprintf("hash(%s)", bk.Schema().Names[bk.KeyIndex()])
		}
		fmt.Fprintf(&b, "stream %s shards=%d route=%s settled=%d\n",
			bk.Name(), bk.NumShards(), route, bk.Settled())
		for _, st := range bk.ShardStats() {
			fmt.Fprintf(&b, "  %-16s len=%-8d in=%-10d dropped=%d\n",
				st.Name, st.Len, st.TotalIn, st.TotalDrop)
		}
		return strings.TrimRight(b.String(), "\n"), false
	case `\advance`:
		v, err := strconv.ParseInt(arg(1), 10, 64)
		if err != nil {
			return "error: \\advance needs a microsecond timestamp", false
		}
		s.eng.AdvanceTime(v)
		s.eng.Drain()
		return "advanced", false
	}
	return fmt.Sprintf("error: unknown command %s (try \\help)", cmd), false
}

func (s *Session) drainResults(q *datacell.Query, n int) string {
	out := q.Out()
	if out == nil {
		return "(query registered without a result channel)"
	}
	var b strings.Builder
	got := 0
	for got < n {
		select {
		case r, ok := <-out:
			if !ok {
				goto done
			}
			fmt.Fprintf(&b, "-- seq=%d rows=%d latency=%dµs --\n%s",
				r.Meta.Seq, r.Chunk.Rows(), r.Meta.LatencyUsec, r.Chunk)
			got++
		default:
			goto done
		}
	}
done:
	if got == 0 {
		return "(no pending results)"
	}
	return strings.TrimRight(b.String(), "\n")
}

// Server exposes sessions over TCP.
type Server struct {
	eng *datacell.Engine
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

// Listen starts serving the session protocol on addr.
func Listen(eng *datacell.Engine, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{eng: eng, ln: ln, conns: make(map[net.Conn]bool)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr reports the listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and its connections.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	_ = s.ln.Close()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	sess := NewSession(s.eng)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		resp, quit := sess.Dispatch(sc.Text())
		if resp != "" {
			fmt.Fprintln(w, resp)
		}
		fmt.Fprintln(w, ".")
		if err := w.Flush(); err != nil {
			return
		}
		if quit {
			return
		}
	}
}

// Client is the protocol's client side, used by cmd/dcmon and tests. It
// keeps a persistent buffered reader so response framing survives across
// calls.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Call sends one request line and reads the '.'-terminated response.
func (c *Client) Call(request string) (string, error) {
	if _, err := fmt.Fprintln(c.conn, request); err != nil {
		return "", err
	}
	var lines []string
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return "", err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "." {
			return strings.Join(lines, "\n"), nil
		}
		lines = append(lines, line)
	}
}

// Close terminates the connection.
func (c *Client) Close() { _ = c.conn.Close() }

// SortedCommands lists the control commands (for cmd completion/docs).
func SortedCommands() []string {
	cmds := []string{
		`\help`, `\catalog`, `\network`, `\queries`, `\groups`, `\tenants`, `\fabric`,
		`\plan`, `\cplan`, `\stats`, `\results`, `\pause`, `\resume`,
		`\pause-stream`, `\resume-stream`, `\shards`, `\advance`, `\quit`,
	}
	sort.Strings(cmds)
	return cmds
}
