package server

import (
	"fmt"
	"strings"
	"testing"

	"datacell"
)

func newEngine(t *testing.T) *datacell.Engine {
	t.Helper()
	e := datacell.New(&datacell.Options{Workers: 2})
	t.Cleanup(e.Close)
	return e
}

func TestSessionSQLAndErrors(t *testing.T) {
	s := NewSession(newEngine(t))
	out, quit := s.Dispatch("CREATE STREAM s (ts TIMESTAMP, v INT);")
	if quit || !strings.Contains(out, "stream s created") {
		t.Fatalf("create: %q", out)
	}
	out, _ = s.Dispatch("INSERT INTO s VALUES (1, 5)")
	if !strings.Contains(out, "1 row(s)") {
		t.Errorf("insert: %q", out)
	}
	out, _ = s.Dispatch("SELECT v FROM s")
	if !strings.Contains(out, "5") {
		t.Errorf("select: %q", out)
	}
	out, _ = s.Dispatch("SELEC nonsense")
	if !strings.Contains(out, "error:") {
		t.Errorf("bad sql: %q", out)
	}
	if out, _ := s.Dispatch(""); out != "" {
		t.Errorf("empty input: %q", out)
	}
}

func TestSessionQueryLifecycle(t *testing.T) {
	s := NewSession(newEngine(t))
	s.Dispatch("CREATE STREAM s (ts TIMESTAMP, v INT)")
	out, _ := s.Dispatch("REGISTER QUERY q AS SELECT sum(v) AS t FROM s [SIZE 2 SLIDE 2]")
	if !strings.Contains(out, "registered (incremental)") {
		t.Fatalf("register: %q", out)
	}
	if out, _ := s.Dispatch(`\queries`); out != "q" {
		t.Errorf("queries: %q", out)
	}
	if out, _ := s.Dispatch(`\plan q`); !strings.Contains(out, "scan stream") {
		t.Errorf("plan: %q", out)
	}
	if out, _ := s.Dispatch(`\cplan q`); !strings.Contains(out, "basic window") {
		t.Errorf("cplan: %q", out)
	}
	s.Dispatch("INSERT INTO s VALUES (1, 3), (2, 4)")
	s.eng.Drain()
	out, _ = s.Dispatch(`\results q 5`)
	if !strings.Contains(out, "7") {
		t.Errorf("results: %q", out)
	}
	if out, _ := s.Dispatch(`\results q`); !strings.Contains(out, "no pending") {
		t.Errorf("drained results: %q", out)
	}
	if out, _ := s.Dispatch(`\stats q`); !strings.Contains(out, "evals=1") {
		t.Errorf("stats: %q", out)
	}
	if out, _ := s.Dispatch(`\pause q`); out != "paused" {
		t.Errorf("pause: %q", out)
	}
	if out, _ := s.Dispatch(`\resume q`); out != "resumed" {
		t.Errorf("resume: %q", out)
	}
	if out, _ := s.Dispatch(`\plan ghost`); !strings.Contains(out, "error") {
		t.Errorf("ghost plan: %q", out)
	}
}

func TestSessionControlCommands(t *testing.T) {
	s := NewSession(newEngine(t))
	s.Dispatch("CREATE STREAM s (ts TIMESTAMP, v INT)")
	if out, _ := s.Dispatch(`\catalog`); !strings.Contains(out, "stream s") {
		t.Errorf("catalog: %q", out)
	}
	if out, _ := s.Dispatch(`\network`); !strings.Contains(out, "baskets:") {
		t.Errorf("network: %q", out)
	}
	if out, _ := s.Dispatch(`\queries`); out != "(none)" {
		t.Errorf("queries: %q", out)
	}
	if out, _ := s.Dispatch(`\pause-stream s`); out != "stream paused" {
		t.Errorf("pause-stream: %q", out)
	}
	if out, _ := s.Dispatch(`\resume-stream s`); out != "stream resumed" {
		t.Errorf("resume-stream: %q", out)
	}
	if out, _ := s.Dispatch(`\pause-stream ghost`); !strings.Contains(out, "error") {
		t.Errorf("ghost stream: %q", out)
	}
	if out, _ := s.Dispatch(`\advance 1000000`); out != "advanced" {
		t.Errorf("advance: %q", out)
	}
	if out, _ := s.Dispatch(`\advance nope`); !strings.Contains(out, "error") {
		t.Errorf("bad advance: %q", out)
	}
	if out, _ := s.Dispatch(`\bogus`); !strings.Contains(out, "unknown command") {
		t.Errorf("bogus: %q", out)
	}
	if out, _ := s.Dispatch(`\help`); !strings.Contains(out, "commands:") {
		t.Errorf("help: %q", out)
	}
	out, quit := s.Dispatch(`\quit`)
	if !quit || out != "bye" {
		t.Errorf("quit: %q %v", out, quit)
	}
	if got := SortedCommands(); len(got) != 18 {
		t.Errorf("commands = %d", len(got))
	}
}

// TestSessionTenantsCommand: \tenants renders per-tenant accounting once
// a quota or tagged registration exists.
func TestSessionTenantsCommand(t *testing.T) {
	eng := newEngine(t)
	s := NewSession(eng)
	if out, _ := s.Dispatch(`\tenants`); out != "(none)" {
		t.Errorf("empty tenants: %q", out)
	}
	s.Dispatch("CREATE STREAM s (ts TIMESTAMP, v FLOAT);")
	eng.SetTenantQuota("acme", datacell.TenantQuota{MaxQueries: 3})
	if out, _ := s.Dispatch("REGISTER QUERY q TENANT acme AS SELECT avg(v) FROM s [SIZE 4 SLIDE 4]"); !strings.Contains(out, "registered") {
		t.Fatalf("register: %q", out)
	}
	out, _ := s.Dispatch(`\tenants`)
	if !strings.Contains(out, "acme") || !strings.Contains(out, "queries=1/3") {
		t.Errorf("tenants: %q", out)
	}
}

// TestSessionFabricCommand: \fabric reports the no-fabric placeholder on a
// plain engine (the attached case is covered by the fabric tests).
func TestSessionFabricCommand(t *testing.T) {
	s := NewSession(newEngine(t))
	if out, _ := s.Dispatch(`\fabric`); !strings.Contains(out, "no fabric attached") {
		t.Errorf("fabric: %q", out)
	}
}

// TestGroupsJoinPostShared: a 16-member shared-join workload — identical
// side pipelines and join, per-member post fragments above the join —
// reports real JoinGroup.PostStats through \groups: post-merge trie nodes
// exist, the merged join view and the shared HAVING fragments hit for 15
// of every 16 member requests, and nothing renders as n/a anymore.
func TestGroupsJoinPostShared(t *testing.T) {
	eng := newEngine(t)
	s := NewSession(eng)
	for _, sql := range []string{
		"CREATE STREAM l (ts TIMESTAMP, k INT, v FLOAT);",
		"CREATE STREAM r (ts TIMESTAMP, k INT, v FLOAT);",
	} {
		if out, _ := s.Dispatch(sql); strings.Contains(out, "error") {
			t.Fatalf("%s: %q", sql, out)
		}
	}
	for j := 0; j < 16; j++ {
		sql := fmt.Sprintf(
			"REGISTER QUERY j%02d AS SELECT l.k, count(*) AS n FROM l [SIZE 4 SLIDE 2], r [SIZE 4 SLIDE 2] WHERE l.k = r.k GROUP BY l.k HAVING count(*) > %d", j, j%3)
		if out, _ := s.Dispatch(sql); strings.Contains(out, "error") {
			t.Fatalf("%s: %q", sql, out)
		}
	}
	for i := 0; i < 16; i++ {
		s.Dispatch(fmt.Sprintf("INSERT INTO l VALUES (%d, %d, 1.0), (%d, %d, 2.0)", i, i%3, i, (i+1)%3))
		s.Dispatch(fmt.Sprintf("INSERT INTO r VALUES (%d, %d, 3.0), (%d, %d, 4.0)", i, i%3, i, (i+2)%3))
	}
	eng.Drain()

	out, _ := s.Dispatch(`\groups`)
	if !strings.Contains(out, "kind=join") {
		t.Fatalf("no join group in %q", out)
	}
	if strings.Contains(out, "n/a") {
		t.Errorf("join group still renders an n/a stat: %q", out)
	}
	var g datacell.GroupInfo
	found := false
	for _, gi := range eng.Groups() {
		if gi.Kind == "join" {
			g, found = gi, true
		}
	}
	if !found {
		t.Fatal("no join group snapshot")
	}
	if g.MergeClasses == 0 || g.PostNodes == 0 {
		t.Fatalf("join sharing not engaged: classes=%d post_nodes=%d (%q)",
			g.MergeClasses, g.PostNodes, out)
	}
	if g.MergeHits == 0 || g.MergeHitRate() < 0.5 {
		t.Errorf("merged-view hit rate = %.2f (hits=%d misses=%d), want most requests served shared",
			g.MergeHitRate(), g.MergeHits, g.MergeMisses)
	}
	if g.PostHits == 0 || g.PostHitRate() < 0.5 {
		t.Errorf("post-merge hit rate = %.2f (hits=%d misses=%d), want most fragments served shared",
			g.PostHitRate(), g.PostHits, g.PostMisses)
	}
}

func TestServerOverTCP(t *testing.T) {
	e := newEngine(t)
	srv, err := Listen(e, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	out, err := c.Call("CREATE STREAM s (ts TIMESTAMP, v INT)")
	if err != nil || !strings.Contains(out, "created") {
		t.Fatalf("create over tcp: %q %v", out, err)
	}
	out, err = c.Call("REGISTER QUERY q AS SELECT v FROM s")
	if err != nil || !strings.Contains(out, "registered") {
		t.Fatalf("register: %q %v", out, err)
	}
	if out, _ = c.Call("INSERT INTO s VALUES (1, 9)"); !strings.Contains(out, "1 row") {
		t.Fatalf("insert: %q", out)
	}
	e.Drain()
	out, err = c.Call(`\results q`)
	if err != nil || !strings.Contains(out, "9") {
		t.Fatalf("results: %q %v", out, err)
	}
	// Second client shares the engine.
	c2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	out, err = c2.Call(`\network`)
	if err != nil || !strings.Contains(out, "q") {
		t.Fatalf("second client network: %q %v", out, err)
	}
	// \quit closes the session.
	if out, err := c.Call(`\quit`); err != nil || out != "bye" {
		t.Fatalf("quit: %q %v", out, err)
	}
	srv.Close()
	srv.Close() // idempotent
}

func TestShardsCommand(t *testing.T) {
	eng := datacell.New(nil)
	defer eng.Close()
	s := NewSession(eng)
	s.Dispatch("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k")
	s.Dispatch("INSERT INTO s VALUES (1, 1, 1.0), (2, 2, 2.0), (3, 3, 3.0)")
	out, _ := s.Dispatch(`\shards s`)
	if !strings.Contains(out, "shards=4") || !strings.Contains(out, "route=hash(k)") ||
		!strings.Contains(out, "settled=3") || !strings.Contains(out, "s/0") {
		t.Errorf("\\shards output:\n%s", out)
	}
	if out, _ := s.Dispatch(`\shards ghost`); !strings.HasPrefix(out, "error:") {
		t.Errorf("unknown stream: %q", out)
	}
}
