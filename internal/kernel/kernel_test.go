package kernel

import (
	"reflect"
	"testing"

	"datacell/internal/algebra"
	"datacell/internal/bat"
	"datacell/internal/expr"
	"datacell/internal/plan"
)

// testChunk builds a 4-column chunk (ts TIME, k INT, v FLOAT, tag STR)
// with deterministic contents.
func testChunk(n int) *bat.Chunk {
	sch := bat.Schema{
		Names: []string{"ts", "k", "v", "tag"},
		Kinds: []bat.Kind{bat.Time, bat.Int, bat.Float, bat.Str},
	}
	ts := make(bat.Times, n)
	ks := make(bat.Ints, n)
	vs := make(bat.Floats, n)
	ss := make(bat.Strs, n)
	for i := 0; i < n; i++ {
		ts[i] = int64(i)
		ks[i] = int64(i % 7)
		vs[i] = float64(i%13) * 0.25
		ss[i] = string(rune('a' + i%3))
	}
	return &bat.Chunk{Schema: sch, Cols: []bat.Vector{ts, ks, vs, ss}}
}

func col(idx int, k bat.Kind) *expr.Col              { return &expr.Col{Idx: idx, K: k} }
func intConst(v int64) *expr.Const                   { return &expr.Const{V: bat.IntValue(v)} }
func floatConst(v float64) *expr.Const               { return &expr.Const{V: bat.FloatValue(v)} }
func cmp(op algebra.CmpOp, l, r expr.Expr) *expr.Cmp { return &expr.Cmp{Op: op, L: l, R: r} }

func mustEqualChunks(t *testing.T, got, want *bat.Chunk, what string) {
	t.Helper()
	if got.Rows() != want.Rows() {
		t.Fatalf("%s: rows %d != %d", what, got.Rows(), want.Rows())
	}
	if !reflect.DeepEqual(got.Cols, want.Cols) {
		t.Fatalf("%s: columns differ\ngot  %v\nwant %v", what, got.Cols, want.Cols)
	}
}

func TestViewMaterializeLatches(t *testing.T) {
	c := testChunk(32)
	pred := cmp(algebra.LT, col(1, bat.Int), intConst(3))
	v := Filter(pred, NewView(c))

	want := algebra.FetchChunk(c, expr.EvalPred(pred, c, nil))
	got := v.Materialize()
	mustEqualChunks(t, got, want, "filter view")
	if v.Materialize() != got {
		t.Fatal("Materialize not latched: second call returned a new chunk")
	}
	if v.Rows() != want.Rows() {
		t.Fatalf("Rows() = %d, want %d", v.Rows(), want.Rows())
	}
}

func TestNilSelMaterializeIsIdentity(t *testing.T) {
	c := testChunk(8)
	if NewView(c).Materialize() != c {
		t.Fatal("nil-sel view must materialize to the base chunk itself")
	}
}

// TestFilterComposition proves the fusion identity: threading the
// selection through consecutive filters equals materializing after each.
func TestFilterComposition(t *testing.T) {
	c := testChunk(128)
	p1 := cmp(algebra.GE, col(2, bat.Float), floatConst(0.5))
	p2 := cmp(algebra.NE, col(1, bat.Int), intConst(4))

	fused := Filter(p2, Filter(p1, NewView(c))).Materialize()

	step1 := plan.ApplyStep(plan.PipelineStep{Op: &plan.Filter{Pred: p1}}, c)
	unfused := plan.ApplyStep(plan.PipelineStep{Op: &plan.Filter{Pred: p2}}, step1)
	mustEqualChunks(t, fused, unfused, "composed filters")
}

func TestProjectUnderSelection(t *testing.T) {
	c := testChunk(64)
	pred := cmp(algebra.GT, col(1, bat.Int), intConst(2))
	proj := &plan.Project{
		Exprs: []expr.Expr{col(1, bat.Int), col(2, bat.Float)},
		Out:   bat.Schema{Names: []string{"k", "v"}, Kinds: []bat.Kind{bat.Int, bat.Float}},
	}

	fused := Project(proj.Exprs, proj.Out, Filter(pred, NewView(c))).Materialize()

	filtered := plan.ApplyStep(plan.PipelineStep{Op: &plan.Filter{Pred: pred}}, c)
	unfused := plan.ApplyStep(plan.PipelineStep{Op: proj}, filtered)
	mustEqualChunks(t, fused, unfused, "project under sel")
}

// TestApplyStepFallback routes an operator the fused executor does not
// specialize (Limit) through the materialize-and-fall-back path.
func TestApplyStepFallback(t *testing.T) {
	c := testChunk(16)
	pred := cmp(algebra.LT, col(0, bat.Time), intConst(10))
	lim := plan.PipelineStep{Op: &plan.Limit{N: 3}}

	fused := ApplyStep(lim, Filter(pred, NewView(c))).Materialize()

	filtered := plan.ApplyStep(plan.PipelineStep{Op: &plan.Filter{Pred: pred}}, c)
	unfused := plan.ApplyStep(lim, filtered)
	mustEqualChunks(t, fused, unfused, "fallback step")
}

// TestAggregateMatchesRunAggregate is the pre-sizing correctness proof:
// for every hint, Aggregate over a (filtered) view equals RunAggregate
// over the materialized input — group order, representatives, sums.
func TestAggregateMatchesRunAggregate(t *testing.T) {
	aggSchema := bat.Schema{
		Names: []string{"k", "n", "s", "mx"},
		Kinds: []bat.Kind{bat.Int, bat.Int, bat.Float, bat.Float},
	}
	agg := &plan.Aggregate{
		Keys:     []expr.Expr{col(1, bat.Int)},
		KeyNames: []string{"k"},
		Aggs: []plan.AggSpec{
			{Op: algebra.AggCount, Name: "n"},
			{Op: algebra.AggSum, Arg: col(2, bat.Float), Name: "s"},
			{Op: algebra.AggMax, Arg: col(2, bat.Float), Name: "mx"},
		},
		Out: aggSchema,
	}
	pred := cmp(algebra.GE, col(2, bat.Float), floatConst(0.75))

	for _, rows := range []int{0, 1, 5, 333} {
		c := testChunk(rows)
		v := Filter(pred, NewView(c))
		want := plan.RunAggregate(agg, v.Materialize())
		for _, hint := range []int{0, -3, 1, 7, 4096} {
			// A fresh view per hint: the latched materialization must not
			// leak state between runs.
			got := Aggregate(agg, Filter(pred, NewView(c)), hint)
			mustEqualChunks(t, got, want, "aggregate")
		}
	}
}

// TestAggregateKeyShapes covers the grouping specializations: no keys
// (scalar aggregate), string key, and a composite key.
func TestAggregateKeyShapes(t *testing.T) {
	c := testChunk(100)
	cases := []struct {
		name string
		agg  *plan.Aggregate
	}{
		{"no_keys", &plan.Aggregate{
			Aggs: []plan.AggSpec{{Op: algebra.AggCount, Name: "n"},
				{Op: algebra.AggMin, Arg: col(2, bat.Float), Name: "mn"}},
			Out: bat.Schema{Names: []string{"n", "mn"}, Kinds: []bat.Kind{bat.Int, bat.Float}},
		}},
		{"str_key", &plan.Aggregate{
			Keys: []expr.Expr{col(3, bat.Str)}, KeyNames: []string{"tag"},
			Aggs: []plan.AggSpec{{Op: algebra.AggSum, Arg: col(2, bat.Float), Name: "s"}},
			Out:  bat.Schema{Names: []string{"tag", "s"}, Kinds: []bat.Kind{bat.Str, bat.Float}},
		}},
		{"composite_key", &plan.Aggregate{
			Keys: []expr.Expr{col(1, bat.Int), col(3, bat.Str)}, KeyNames: []string{"k", "tag"},
			Aggs: []plan.AggSpec{{Op: algebra.AggCount, Name: "n"}},
			Out:  bat.Schema{Names: []string{"k", "tag", "n"}, Kinds: []bat.Kind{bat.Int, bat.Str, bat.Int}},
		}},
	}
	for _, tc := range cases {
		want := plan.RunAggregate(tc.agg, c)
		got := Aggregate(tc.agg, NewView(c), 2)
		mustEqualChunks(t, got, want, tc.name)
	}
}

func TestEmptyWindow(t *testing.T) {
	c := testChunk(0)
	pred := cmp(algebra.GT, col(1, bat.Int), intConst(0))
	v := Filter(pred, NewView(c))
	if v.Rows() != 0 {
		t.Fatalf("empty window filtered to %d rows", v.Rows())
	}
	m := v.Materialize()
	if m.Rows() != 0 {
		t.Fatalf("empty window materialized to %d rows", m.Rows())
	}
	proj := Project([]expr.Expr{col(1, bat.Int)},
		bat.Schema{Names: []string{"k"}, Kinds: []bat.Kind{bat.Int}}, v)
	if proj.Rows() != 0 {
		t.Fatal("projection of empty window not empty")
	}
}

// TestPrefilterEquivalence: pushing a filter prefix to slice time then
// running the chain with the prefix skipped equals running the full
// chain over raw data — the pushdown identity.
func TestPrefilterEquivalence(t *testing.T) {
	c := testChunk(256)
	p1 := cmp(algebra.LT, col(1, bat.Int), intConst(5))
	p2 := cmp(algebra.GE, col(2, bat.Float), floatConst(0.25))
	steps := []plan.PipelineStep{
		{Op: &plan.Filter{Pred: p1}},
		{Op: &plan.Filter{Pred: p2}},
	}
	agg := &plan.Aggregate{
		Keys: []expr.Expr{col(1, bat.Int)}, KeyNames: []string{"k"},
		Aggs: []plan.AggSpec{{Op: algebra.AggSum, Arg: col(2, bat.Float), Name: "s"}},
		Out:  bat.Schema{Names: []string{"k", "s"}, Kinds: []bat.Kind{bat.Int, bat.Float}},
	}

	full := &Pipeline{steps: steps, agg: agg, needOut: true}
	outFull, partFull := full.Run(c)

	pushed := &Pipeline{steps: steps, agg: agg, needOut: true}
	preds := pushed.LeadingFilters()
	if len(preds) != 2 {
		t.Fatalf("LeadingFilters = %d preds, want 2", len(preds))
	}
	pushed.SetSkip(len(preds))
	pre := Prefilter(preds)
	outPushed, partPushed := pushed.Run(pre(c))

	mustEqualChunks(t, outPushed, outFull, "pushed out")
	mustEqualChunks(t, partPushed, partFull, "pushed partial")
}

// TestLeadingFiltersStopAtNonFilter: only the filter prefix is eligible
// for pushdown; a projection ends it.
func TestLeadingFiltersStopAtNonFilter(t *testing.T) {
	p := &Pipeline{steps: []plan.PipelineStep{
		{Op: &plan.Filter{Pred: cmp(algebra.GT, col(1, bat.Int), intConst(1))}},
		{Op: &plan.Project{Exprs: []expr.Expr{col(1, bat.Int)},
			Out: bat.Schema{Names: []string{"k"}, Kinds: []bat.Kind{bat.Int}}}},
		{Op: &plan.Filter{Pred: cmp(algebra.LT, col(0, bat.Int), intConst(5))}},
	}}
	if got := len(p.LeadingFilters()); got != 1 {
		t.Fatalf("LeadingFilters = %d, want 1 (projection ends the prefix)", got)
	}
}

// TestRunNoOutForAggChains: with needOut unset, an aggregate chain skips
// materializing the pipeline output entirely.
func TestRunNoOutForAggChains(t *testing.T) {
	c := testChunk(64)
	agg := &plan.Aggregate{
		Keys: []expr.Expr{col(1, bat.Int)}, KeyNames: []string{"k"},
		Aggs: []plan.AggSpec{{Op: algebra.AggCount, Name: "n"}},
		Out:  bat.Schema{Names: []string{"k", "n"}, Kinds: []bat.Kind{bat.Int, bat.Int}},
	}
	kp := &Pipeline{steps: []plan.PipelineStep{
		{Op: &plan.Filter{Pred: cmp(algebra.LT, col(1, bat.Int), intConst(3))}},
	}, agg: agg}
	out, partial := kp.Run(c)
	if out != nil {
		t.Fatal("needOut=false aggregate chain materialized its output")
	}
	want := plan.RunAggregate(agg,
		plan.ApplyStep(plan.PipelineStep{Op: kp.steps[0].Op}, c))
	mustEqualChunks(t, partial, want, "partial without out")
}
