// Package kernel is the fused vectorized tail executor: lazy chunked
// views composed by per-operator kernels, so a per-basic-window pipeline
// (filter → project → partial aggregate) runs as one pass over the bat
// vectors instead of materializing an intermediate chunk per operator.
//
// The fusion mechanism is the candidate list (algebra.Sel). Every expr
// evaluator is dense-over-sel — e.Eval(c, sel) equals
// e.Eval(algebra.FetchChunk(c, sel), nil) by construction (a column
// reference IS a Fetch; compound expressions recurse and combine densely)
// — and expr.EvalPred returns absolute positions within sel, so
// consecutive filters compose by threading the selection instead of
// copying the survivors' columns. A chain therefore carries a View
// (base chunk + selection) and materializes at most once, at whichever
// point actually needs dense columns:
//
//   - Filter   composes the selection; nothing is copied.
//   - Project  evaluates its expressions under the selection, producing a
//     dense chunk (the natural materialization point).
//   - Aggregate evaluates group keys and aggregate arguments under the
//     selection and groups the dense key vectors — byte-identical to
//     plan.RunAggregate over the materialized input, without building it.
//   - Anything else (static-table joins, post-merge sorts) materializes
//     the view and falls back to plan.ApplyStep, so fused chains evaluate
//     exactly what the unfused executor would.
//
// Byte identity with the unfused path (plan.Exec / plan.ApplyStep) is the
// package's contract — the NoFuse ablation and the fabric differential
// harness are its proof surface.
package kernel

import (
	"sync"
	"sync/atomic"

	"datacell/internal/algebra"
	"datacell/internal/bat"
	"datacell/internal/expr"
	"datacell/internal/plan"
)

// View is a lazy chunk: a base chunk plus a candidate list restricting it
// (nil = all rows). Materialization is latched, so shared consumers (DAG
// memo cells) reconstruct the dense chunk at most once no matter how many
// member tails read it.
type View struct {
	Base *bat.Chunk
	Sel  algebra.Sel // nil selects every row of Base

	once sync.Once
	mat  *bat.Chunk
}

// NewView wraps an already-dense chunk.
func NewView(c *bat.Chunk) *View { return &View{Base: c} }

// Rows reports the view's logical row count without materializing.
func (v *View) Rows() int { return algebra.SelLen(v.Sel, v.Base.Rows()) }

// Materialize reconstructs the dense chunk (late tuple reconstruction:
// one Fetch per column), caching the result. A nil selection returns the
// base chunk itself — exactly what the unfused executor's FetchChunk
// would have returned.
func (v *View) Materialize() *bat.Chunk {
	v.once.Do(func() {
		v.mat = algebra.FetchChunk(v.Base, v.Sel)
	})
	return v.mat
}

// Filter composes a predicate into the view's selection. No column data
// moves: the returned view shares the input's base chunk.
func Filter(pred expr.Expr, v *View) *View {
	return &View{Base: v.Base, Sel: expr.EvalPred(pred, v.Base, v.Sel)}
}

// Project evaluates projection expressions under the view's selection,
// producing a dense output view. This is where a fused
// filter→…→project chain touches column data for the first time — and
// only the columns the projection actually reads.
func Project(exprs []expr.Expr, out bat.Schema, v *View) *View {
	cols := make([]bat.Vector, len(exprs))
	for i, e := range exprs {
		cols[i] = e.Eval(v.Base, v.Sel)
	}
	return NewView(&bat.Chunk{Schema: out, Cols: cols})
}

// Aggregate runs a partial (or full) grouped aggregation directly over
// the view: keys and aggregate arguments evaluate under the selection,
// and the grouping hash table pre-sizes from hint (observed per-window
// cardinality; ≤ 0 falls back to the default). Output bytes equal
// plan.RunAggregate over the materialized view for every hint.
func Aggregate(t *plan.Aggregate, v *View, hint int) *bat.Chunk {
	keyVecs := make([]bat.Vector, len(t.Keys))
	for i, k := range t.Keys {
		keyVecs[i] = k.Eval(v.Base, v.Sel)
	}
	g := algebra.GroupHint(keyVecs, nil, v.Rows(), hint)
	cols := make([]bat.Vector, 0, len(t.Keys)+len(t.Aggs))
	for _, kv := range keyVecs {
		cols = append(cols, algebra.Fetch(kv, g.Repr))
	}
	for _, spec := range t.Aggs {
		var arg bat.Vector
		if spec.Arg != nil {
			arg = spec.Arg.Eval(v.Base, v.Sel)
		}
		cols = append(cols, algebra.Aggregate(spec.Op, arg, nil, g))
	}
	return &bat.Chunk{Schema: t.Out, Cols: cols}
}

// ApplyStep runs one linearized pipeline operator over a view, fusing
// where the operator admits it and falling back to the unfused
// plan.ApplyStep over the materialized view otherwise.
func ApplyStep(s plan.PipelineStep, v *View) *View {
	switch t := s.Op.(type) {
	case *plan.Filter:
		return Filter(t.Pred, v)
	case *plan.Project:
		return Project(t.Exprs, t.Out, v)
	case *plan.Aggregate:
		return NewView(Aggregate(t, v, 0))
	default:
		return NewView(plan.ApplyStep(s, v.Materialize()))
	}
}

// Pipeline is one compiled fused per-basic-window chain: the linearized
// operator steps of a decomposition pipeline plus its optional terminal
// partial-aggregate stage.
type Pipeline struct {
	steps []plan.PipelineStep
	agg   *plan.Aggregate
	// needOut materializes the pipeline output chunk even when a terminal
	// aggregate consumes the view directly. Single-stream aggregate plans
	// clear it: downstream only merges the partials, so the filtered
	// intermediate never needs reconstructing.
	needOut bool
	// skip counts leading Filter steps already applied at slice time
	// (predicate pushdown): the slicer dropped non-qualifying rows before
	// they entered the window, so the fused chain must not re-filter.
	skip int
	// hint remembers the newest observed aggregate output cardinality,
	// pre-sizing the next window's grouping hash table.
	hint atomic.Int64
}

// Compile linearizes a decomposition pipeline into a fused chain. side
// selects the pipeline (0, or 1 for a join's right side); the steps come
// from the decomposition's memoized linearization, so plan-cache-shared
// plans fingerprint once across registrations. agg is the plan's
// partial-aggregate stage (nil when the decomposition has none); needOut
// asks Run to materialize the pipeline output chunk even for aggregate
// chains. ok is false when the pipeline contains a shape PipelineSteps
// cannot linearize — the caller then keeps the unfused executor for this
// pipeline.
func Compile(d *plan.Decomposition, side int, agg *plan.Aggregate, needOut bool) (*Pipeline, bool) {
	steps, ok := d.StepsMemo(side)
	if !ok {
		return nil, false
	}
	return &Pipeline{steps: steps, agg: agg, needOut: needOut}, true
}

// LeadingFilters reports the predicates of the chain's leading Filter
// steps — the prefix eligible for slice-time predicate pushdown (they
// read only raw stream columns, by position in the chain).
func (kp *Pipeline) LeadingFilters() []expr.Expr {
	var preds []expr.Expr
	for _, s := range kp.steps {
		f, ok := s.Op.(*plan.Filter)
		if !ok {
			break
		}
		preds = append(preds, f.Pred)
	}
	return preds
}

// SetSkip marks the first n steps as already applied upstream (predicate
// pushdown into the slicer).
func (kp *Pipeline) SetSkip(n int) { kp.skip = n }

// Run evaluates the fused chain over one basic-window fragment. out is
// the pipeline output chunk (nil when the chain terminates in an
// aggregate and needOut is false); partial is the partial-aggregate chunk
// (nil when the chain has no aggregate stage). Both are byte-identical to
// the unfused executor's results over the same fragment.
func (kp *Pipeline) Run(raw *bat.Chunk) (out, partial *bat.Chunk) {
	v := NewView(raw)
	for _, s := range kp.steps[kp.skip:] {
		v = ApplyStep(s, v)
	}
	if kp.agg == nil {
		return v.Materialize(), nil
	}
	partial = Aggregate(kp.agg, v, int(kp.hint.Load()))
	kp.hint.Store(int64(partial.Rows()))
	if kp.needOut {
		out = v.Materialize()
	}
	return out, partial
}

// Prefilter builds the slice-time pushdown hook for a pushed filter
// prefix: it drops non-qualifying rows from a chunk slice before the
// slicer buffers it. Filtering commutes with the slicer's run-length
// concatenation (predicates are row-wise), so the sealed window equals
// the unfused window filtered — the pushdown equivalence.
func Prefilter(preds []expr.Expr) func(*bat.Chunk) *bat.Chunk {
	return func(c *bat.Chunk) *bat.Chunk {
		var sel algebra.Sel
		for _, p := range preds {
			sel = expr.EvalPred(p, c, sel)
		}
		return algebra.FetchChunk(c, sel)
	}
}
