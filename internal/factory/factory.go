// Package factory implements DataCell's factories: the co-routine-like
// executors of continuous query plans (paper §3). "Each factory encloses a
// (partial) query plan and produces a partial result at each call. For
// this, a factory continuously reads data from the input baskets,
// evaluates its query plan and creates a result set, which it then places
// in its output baskets. The factory remains active as long as the
// continuous query remains in the system."
//
// A factory runs in one of the paper's two execution modes:
//
//   - Re-evaluation (mode 1): every firing materializes the full current
//     window (or the new batch, for non-windowed queries) and runs the
//     complete plan.
//   - Incremental (mode 2): per-basic-window intermediates are computed
//     once, cached in columnar form, and merged per slide according to the
//     plan decomposition.
package factory

import (
	"fmt"
	"sync"
	"time"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/emitter"
	"datacell/internal/plan"
	"datacell/internal/window"
)

// Mode selects the execution strategy.
type Mode uint8

// The two execution modes of the demo (§4, Simple Re-evaluation Scenarios
// and Sliding Window Processing).
const (
	Reeval Mode = iota
	Incremental
)

// String renders the mode name.
func (m Mode) String() string {
	if m == Incremental {
		return "incremental"
	}
	return "reeval"
}

// Config assembles a factory.
type Config struct {
	// Name is the continuous query name.
	Name string
	// Full is the optimized full plan (always required; re-evaluation runs
	// it directly, incremental mode keeps it for inspection).
	Full plan.Node
	// Decomp is the incremental decomposition; required iff Mode is
	// Incremental.
	Decomp *plan.Decomposition
	// Mode selects the execution strategy.
	Mode Mode
	// Emit receives every evaluation's result set.
	Emit emitter.Emitter
	// Now supplies the wall clock in microseconds; defaults to the system
	// clock. Benchmarks inject logical clocks.
	Now func() int64
}

// input wires one stream scan to its basket.
type input struct {
	scan   *plan.ScanStream
	bk     *basket.Basket
	cid    int
	slicer *window.Slicer
	ring   *window.Ring
}

// Stats is a snapshot of a factory's counters, feeding the demo's analysis
// pane.
type Stats struct {
	Name        string
	Mode        string
	Firings     int64 // scheduler activations
	Evals       int64 // window/batch evaluations (results emitted)
	TuplesIn    int64
	RowsOut     int64
	BusyUsec    int64 // total time spent inside Step
	LastLatency int64 // response time of the newest result (µs)
	MaxLatency  int64
	SumLatency  int64 // across evals, for averaging
	CachedPairs int   // live join-pair cache entries (join plans)
}

// Factory executes one continuous query. Step is not reentrant: the
// scheduler guarantees a single in-flight firing per factory.
type Factory struct {
	cfg    Config
	inputs []*input
	jc     *window.JoinCache
	seq    int64

	// stepMu serializes Step (scheduler-driven) with Advance
	// (engine-driven watermarks); both mutate window state.
	stepMu sync.Mutex

	mu    sync.Mutex
	stats Stats
}

// New builds a factory and registers it as a consumer on every input
// basket. bind maps each stream scan of the plan to its basket.
func New(cfg Config, bind map[*plan.ScanStream]*basket.Basket) (*Factory, error) {
	if cfg.Now == nil {
		cfg.Now = func() int64 { return time.Now().UnixMicro() }
	}
	if cfg.Mode == Incremental && cfg.Decomp == nil {
		return nil, fmt.Errorf("factory %s: incremental mode without decomposition", cfg.Name)
	}
	f := &Factory{cfg: cfg}
	f.stats.Name = cfg.Name
	f.stats.Mode = cfg.Mode.String()

	scans := plan.Streams(cfg.Full)
	if cfg.Mode == Incremental {
		// Incremental execution reads through the decomposition's scans.
		scans = nil
		for _, p := range cfg.Decomp.Pipelines {
			scans = append(scans, p.Scan)
		}
		if cfg.Decomp.Join != nil {
			f.jc = window.NewJoinCache(cfg.Decomp.Join)
		}
	}
	if len(scans) == 0 {
		return nil, fmt.Errorf("factory %s: plan reads no stream", cfg.Name)
	}
	for _, s := range scans {
		bk, ok := bind[s]
		if !ok {
			return nil, fmt.Errorf("factory %s: no basket bound for stream %q", cfg.Name, s.Alias)
		}
		in := &input{scan: s, bk: bk, cid: bk.Register()}
		if s.Window != nil {
			in.slicer = window.NewSlicer(s.Window, s.Out)
			in.ring = window.NewRing(s.Window.Parts())
		}
		f.inputs = append(f.inputs, in)
	}
	return f, nil
}

// Name reports the query name.
func (f *Factory) Name() string { return f.cfg.Name }

// Mode reports the execution mode.
func (f *Factory) Mode() Mode { return f.cfg.Mode }

// Ready reports whether any input basket has pending tuples — the
// factory's Petri-net firing condition.
func (f *Factory) Ready() bool {
	for _, in := range f.inputs {
		if in.bk.Available(in.cid) > 0 {
			return true
		}
	}
	return false
}

// Baskets lists the names of the factory's input baskets (for the query
// network view).
func (f *Factory) Baskets() []string {
	out := make([]string, len(f.inputs))
	for i, in := range f.inputs {
		out[i] = in.bk.Name()
	}
	return out
}

// PlanString renders the full (optimized) plan.
func (f *Factory) PlanString() string { return plan.String(f.cfg.Full) }

// ContinuousPlanString renders the continuous form: the incremental
// decomposition when available, otherwise the full plan annotated with the
// re-evaluation mode.
func (f *Factory) ContinuousPlanString() string {
	if f.cfg.Mode == Incremental {
		return f.cfg.Decomp.ContinuousString()
	}
	return "-- re-evaluate per firing --\n" + plan.String(f.cfg.Full)
}

// Stop unregisters the factory from its baskets and closes its emitter.
func (f *Factory) Stop() {
	for _, in := range f.inputs {
		in.bk.Unregister(in.cid)
	}
	f.cfg.Emit.Close()
}

// Stats returns a snapshot of the factory's counters.
func (f *Factory) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.stats
	if f.jc != nil {
		s.CachedPairs = f.jc.Pairs()
	}
	return s
}

// Step is one Petri-net transition firing: drain the input baskets,
// advance window state, and evaluate whatever became complete. It returns
// the number of result sets emitted.
func (f *Factory) Step() int {
	f.stepMu.Lock()
	defer f.stepMu.Unlock()
	start := f.cfg.Now()
	emitted := 0
	f.mu.Lock()
	f.stats.Firings++
	f.mu.Unlock()

	windowed := f.inputs[0].slicer != nil
	for idx, in := range f.inputs {
		c, arrivals := in.bk.Peek(in.cid, int(in.bk.Available(in.cid)))
		if c == nil {
			continue
		}
		rows := c.Rows()
		in.bk.Consume(in.cid, int64(rows))
		f.mu.Lock()
		f.stats.TuplesIn += int64(rows)
		f.mu.Unlock()

		if !windowed {
			emitted += f.evalBatch(in.scan, c, arrivals)
			continue
		}
		for _, bw := range in.slicer.Push(c, arrivals) {
			emitted += f.onBasicWindow(idx, bw)
		}
	}

	f.mu.Lock()
	f.stats.BusyUsec += f.cfg.Now() - start
	f.mu.Unlock()
	return emitted
}

// Advance closes time-window buckets up to the watermark (microsecond
// timestamp) on every time-windowed input — the scheduler's time
// constraint / heartbeat path for idle streams.
func (f *Factory) Advance(watermark int64) int {
	f.stepMu.Lock()
	defer f.stepMu.Unlock()
	emitted := 0
	for idx, in := range f.inputs {
		if in.slicer == nil {
			continue
		}
		for _, bw := range in.slicer.AdvanceTime(watermark) {
			emitted += f.onBasicWindow(idx, bw)
		}
	}
	return emitted
}

// evalBatch handles non-windowed continuous queries: the paper's mode 1
// applied to each arriving batch. The batch feeds its own scan; any other
// stream scans in the plan see empty input this firing and are evaluated
// in their own firings as their data arrives.
func (f *Factory) evalBatch(scan *plan.ScanStream, c *bat.Chunk, arrivals bat.Ints) int {
	var maxArr int64
	for _, a := range arrivals {
		if a > maxArr {
			maxArr = a
		}
	}
	ex := &plan.Exec{StreamInputs: map[*plan.ScanStream]*bat.Chunk{scan: c}}
	out, err := ex.Run(f.cfg.Full)
	if err != nil {
		return 0
	}
	f.emit(out, maxArr, f.seq)
	return 1
}

// onBasicWindow advances the window state of input idx with a completed
// basic window and evaluates if a slide completed.
func (f *Factory) onBasicWindow(idx int, bw *window.BW) int {
	in := f.inputs[idx]
	if f.cfg.Mode == Reeval {
		in.ring.Push(bw)
		if !f.ringsFull() {
			return 0
		}
		ex := &plan.Exec{StreamInputs: map[*plan.ScanStream]*bat.Chunk{}}
		for _, i2 := range f.inputs {
			ex.StreamInputs[i2.scan] = i2.ring.ConcatData(i2.scan.Out)
		}
		out, err := ex.Run(f.cfg.Full)
		if err != nil {
			return 0
		}
		f.emit(out, f.triggerArrival(bw), bw.Gen)
		return 1
	}
	return f.incrementalStep(idx, bw)
}

func (f *Factory) ringsFull() bool {
	for _, in := range f.inputs {
		if !in.ring.Full() {
			return false
		}
	}
	return true
}

// triggerArrival picks the arrival stamp representing the data that
// triggered this evaluation: the new basic window's newest tuple, falling
// back to the window's newest tuple when the basic window was empty.
func (f *Factory) triggerArrival(bw *window.BW) int64 {
	if bw.MaxArrival > 0 {
		return bw.MaxArrival
	}
	var m int64
	for _, in := range f.inputs {
		if in.ring != nil {
			if a := in.ring.MaxArrival(); a > m {
				m = a
			}
		}
	}
	return m
}

// incrementalStep is the paper's mode 2: evaluate the per-basic-window
// pipeline once, cache the intermediate, and merge cached intermediates
// when a slide completes.
func (f *Factory) incrementalStep(idx int, bw *window.BW) int {
	d := f.cfg.Decomp
	in := f.inputs[idx]
	pipe := d.Pipelines[idx]

	// Run the per-basic-window fragment.
	ex := &plan.Exec{StreamInputs: map[*plan.ScanStream]*bat.Chunk{pipe.Scan: bw.Data}}
	out, err := ex.Run(pipe.Root)
	if err != nil {
		return 0
	}
	bw.Out = out
	if d.Agg != nil {
		bw.Partial = plan.RunAggregate(d.Agg, out)
	}

	evicted := in.ring.Push(bw)
	if f.jc != nil {
		if evicted != nil {
			if idx == 0 {
				f.jc.EvictLeft(evicted.Gen)
			} else {
				f.jc.EvictRight(evicted.Gen)
			}
		}
		other := f.inputs[1-idx]
		if idx == 0 {
			f.jc.AddLeft(bw, other.ring.Live())
		} else {
			f.jc.AddRight(bw, other.ring.Live())
		}
	}

	if !f.ringsFull() {
		return 0
	}

	// Merge stage.
	var merged *bat.Chunk
	switch {
	case f.jc != nil:
		merged = f.jc.Merged(f.inputs[0].ring.Live(), f.inputs[1].ring.Live())
	case d.Agg != nil:
		merged = plan.MergeAggregate(d.Agg, in.ring.ConcatPartials(d.Agg.Out))
	default:
		merged = in.ring.ConcatOuts(d.MergedLeaf.Out)
	}

	result := merged
	if d.Post != nil {
		ex := &plan.Exec{MergedInputs: map[*plan.Merged]*bat.Chunk{d.MergedLeaf: merged}}
		out, err := ex.Run(d.Post)
		if err != nil {
			return 0
		}
		result = out
	}
	f.emit(result, f.triggerArrival(bw), bw.Gen)
	return 1
}

func (f *Factory) emit(c *bat.Chunk, maxArrival, gen int64) {
	now := f.cfg.Now()
	lat := int64(0)
	if maxArrival > 0 && now > maxArrival {
		lat = now - maxArrival
	}
	m := emitter.Meta{
		Query:       f.cfg.Name,
		Seq:         f.seq,
		FiredAt:     now,
		LatencyUsec: lat,
		TriggerGen:  gen,
	}
	f.seq++
	f.mu.Lock()
	f.stats.Evals++
	f.stats.RowsOut += int64(c.Rows())
	f.stats.LastLatency = lat
	f.stats.SumLatency += lat
	if lat > f.stats.MaxLatency {
		f.stats.MaxLatency = lat
	}
	f.mu.Unlock()
	f.cfg.Emit.Emit(c, m)
}
