// Package factory implements DataCell's factories: the co-routine-like
// executors of continuous query plans (paper §3). "Each factory encloses a
// (partial) query plan and produces a partial result at each call. For
// this, a factory continuously reads data from the input baskets,
// evaluates its query plan and creates a result set, which it then places
// in its output baskets. The factory remains active as long as the
// continuous query remains in the system."
//
// A factory runs in one of the paper's two execution modes:
//
//   - Re-evaluation (mode 1): every firing materializes the full current
//     window (or the new batch, for non-windowed queries) and runs the
//     complete plan.
//   - Incremental (mode 2): per-basic-window intermediates are computed
//     once, cached in columnar form, and merged per slide according to the
//     plan decomposition.
//
// Sharded execution: every input stream is a basket.Sharded container, and
// the factory exposes one independently schedulable firing per (input,
// shard) — FireShard. A shard firing drains only its shard, cuts the rows
// into globally consistent epochs (window.ShardSlicer), runs the
// incremental per-basic-window pipeline on its fragments in parallel with
// the other shards, and hands the fragments to a per-input merger
// (window.ShardMerge). When an epoch is sealed across all shards, the
// firing that completed it assembles the merged basic window and runs the
// blocking tail — ring maintenance, partial-aggregate merging, join
// caching, post-merge fragment — exactly as the single-basket engine
// would, so results are identical (up to row order within a window).
//
// Shared multi-query execution: continuous queries over the same stream
// and slide granularity run as members of a shared execution group
// (Group; stream⋈stream joins pair two front ends in a JoinGroup; the
// engine-facing contract is SharedGroup). The group drains, sequences
// and slices the stream once for all members and fans sealed basic
// windows out as refcounted immutable views. On top of the shared
// slice, common member work deduplicates stage by stage: identical
// pipeline prefixes and partial aggregates evaluate once per window
// through a memoizing operator DAG (dag.go), identical full-window
// merges evaluate once per class through group-owned merge rings
// (mergeclass.go), identical post-merge fragments evaluate once through
// a second trie rooted at each merged view, and join groups share one
// basic-window pair cache per join fingerprint. See DESIGN-SHARING.md
// at the repository root for the end-to-end narrative and invariants.
package factory

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/emitter"
	"datacell/internal/kernel"
	"datacell/internal/plan"
	"datacell/internal/window"
)

// Mode selects the execution strategy.
type Mode uint8

// The two execution modes of the demo (§4, Simple Re-evaluation Scenarios
// and Sliding Window Processing).
const (
	Reeval Mode = iota
	Incremental
)

// String renders the mode name.
func (m Mode) String() string {
	if m == Incremental {
		return "incremental"
	}
	return "reeval"
}

// Config assembles a factory.
type Config struct {
	// Name is the continuous query name.
	Name string
	// Full is the optimized full plan (always required; re-evaluation runs
	// it directly, incremental mode keeps it for inspection).
	Full plan.Node
	// Decomp is the incremental decomposition; required iff Mode is
	// Incremental.
	Decomp *plan.Decomposition
	// Mode selects the execution strategy.
	Mode Mode
	// Shared marks a query-group member: the factory's windowed stream
	// input(s) are fed externally with merged basic windows (SharedFire)
	// by the group that drains and slices the stream(s) once for all
	// members. The factory then runs only the private tail — per-basic-
	// window pipeline, ring, merge, emit — and registers no basket
	// consumers of its own. A single windowed scan joins a Group; an
	// incremental stream⋈stream join joins a JoinGroup.
	Shared bool
	// NoMemo opts a shared member out of the group's operator DAG: its
	// per-basic-window pipeline always evaluates privately, as if no
	// sibling shared a prefix. Benchmarks use it to measure what the memo
	// buys; it never changes results. It implies NoSharedMerge (merge
	// classes build on the DAG's cached intermediates).
	NoMemo bool
	// NoSharedMerge opts a shared member out of its group's merge classes
	// and post-merge trie: the member keeps resolving its per-basic-window
	// pipeline through the DAG but merges full windows — and runs its
	// post-merge fragment — privately, as before PR 4. Benchmarks use it
	// to measure what sharing past the merge boundary buys; it never
	// changes results.
	NoSharedMerge bool
	// NoFuse disables the fused vectorized tail executor for this
	// factory's private evaluation paths: per-basic-window pipelines run
	// the classic one-materialized-chunk-per-operator executor
	// (plan.Exec), no predicates push into the slice step, and grouping
	// hash tables keep their fixed default capacity. A group's shared
	// operator DAG is structural and stays fused either way. Results are
	// byte-identical with or without; benchmarks and the ablation
	// equivalence suite use it to measure (and prove) what fusion buys.
	NoFuse bool
	// Emit receives every evaluation's result set.
	Emit emitter.Emitter
	// Now supplies the wall clock in microseconds; defaults to the system
	// clock. Benchmarks inject logical clocks.
	Now func() int64
	// OnWatermark, when set, is invoked after a shard firing raises an
	// input's event-time watermark. The engine wires it to re-notify the
	// query's shard transitions: sibling shards that fired before the
	// watermark-raising row was drained hold sealed-but-unflushed buckets
	// and would otherwise wait for the next append or heartbeat.
	OnWatermark func()
}

// shardIn is the factory's cursor into one shard of an input basket. Its
// mutex guards the slicer; the scheduler never fires the same shard
// concurrently with itself, but Advance (the engine's time-watermark path)
// may race a firing.
type shardIn struct {
	idx int // shard index within the input
	bk  *basket.Basket
	cid int
	mu  sync.Mutex
	sl  *window.ShardSlicer // nil for non-windowed scans
	// wm mirrors sl.Watermark() so ShardReady — called by scheduler
	// workers holding the global scheduler mutex — never waits on a
	// shard mutex held across a firing or an Advance.
	wm atomic.Int64
}

// input wires one stream scan to its sharded basket.
type input struct {
	scan   *plan.ScanStream
	shb    *basket.Sharded
	shards []*shardIn

	// Windowed state. ring holds merged basic windows; merge assembles
	// them from per-shard fragments at epoch boundaries; maxTs is the
	// shared event-time watermark across shards (math.MinInt64 until the
	// first row).
	ring    *window.Ring
	merge   *window.ShardMerge
	mergeMu sync.Mutex
	maxTs   atomic.Int64
}

// Stats is a snapshot of a factory's counters, feeding the demo's analysis
// pane.
type Stats struct {
	Name        string
	Mode        string
	Firings     int64 // scheduler activations (per shard under sharding)
	Evals       int64 // window/batch evaluations (results emitted)
	TuplesIn    int64
	RowsOut     int64
	BusyUsec    int64 // total time spent inside shard firings
	LastLatency int64 // response time of the newest result (µs)
	MaxLatency  int64
	SumLatency  int64 // across evals, for averaging
	CachedPairs int   // live join-pair cache entries (join plans)
}

// Factory executes one continuous query. FireShard is not reentrant per
// shard: the scheduler guarantees a single in-flight firing per (input,
// shard) transition.
type Factory struct {
	cfg    Config
	inputs []*input
	jc     window.PairCache
	// pipes holds one compiled fused pipeline per decomposition pipeline
	// (nil entries fall back to the unfused plan.Exec executor): the
	// kernel-fused per-basic-window chains used by deliver and the
	// incremental fallback. Empty when NoFuse or when the factory has no
	// decomposition.
	pipes []*kernel.Pipeline
	// reevalJoin marks a re-evaluation-mode join whose plan decomposes:
	// the full-window recompute is expressed as the merge of cached
	// basic-window pairs through the pair cache (group-shared for
	// members, private otherwise) instead of re-running the whole plan
	// over the concatenated rings. Shared, isolated and fabric-routed
	// registrations of the same join thus order joined rows identically.
	reevalJoin bool

	// stepMu serializes the blocking tail — ring pushes, join cache and
	// window evaluation — across shard firings and Advance, keeping
	// merged basic windows in generation order.
	stepMu sync.Mutex

	mu    sync.Mutex
	seq   int64
	stats Stats
	// recentLat is a bounded ring of the newest evaluations' response
	// times (µs) — the sample behind per-query latency percentiles in the
	// /metrics exporter and the multi-tenant harness. recentN is the count
	// of valid entries while the ring is still filling.
	recentLat [recentLatSize]int64
	recentN   int
	recentPos int
}

// recentLatSize bounds the per-factory latency sample. 512 evaluations
// cover several seconds at realistic seal rates — enough for a stable
// p99 without per-eval allocation.
const recentLatSize = 512

// New builds a factory and registers it as a consumer on every shard of
// every input basket. bind maps each stream scan of the plan to its
// sharded basket.
func New(cfg Config, bind map[*plan.ScanStream]*basket.Sharded) (*Factory, error) {
	if cfg.Now == nil {
		cfg.Now = func() int64 { return time.Now().UnixMicro() }
	}
	if cfg.Mode == Incremental && cfg.Decomp == nil {
		return nil, fmt.Errorf("factory %s: incremental mode without decomposition", cfg.Name)
	}
	f := &Factory{cfg: cfg}
	f.stats.Name = cfg.Name
	f.stats.Mode = cfg.Mode.String()

	scans := plan.Streams(cfg.Full)
	f.reevalJoin = cfg.Mode == Reeval &&
		cfg.Decomp != nil && cfg.Decomp.Join != nil
	if cfg.Mode == Incremental || f.reevalJoin {
		// Incremental execution — and the re-evaluation join-group tail,
		// which recomputes full windows through the same pair-cache
		// machinery — reads through the decomposition's scans.
		scans = nil
		for _, p := range cfg.Decomp.Pipelines {
			scans = append(scans, p.Scan)
		}
		if cfg.Decomp.Join != nil {
			// Private by default; a join group replaces it with its shared
			// fingerprint-keyed cache (SetPairCache) at member join.
			f.jc = window.NewJoinCache(cfg.Decomp.Join)
		}
	}
	if len(scans) == 0 {
		return nil, fmt.Errorf("factory %s: plan reads no stream", cfg.Name)
	}
	if cfg.Decomp != nil && (cfg.Mode == Incremental || f.reevalJoin) && !cfg.NoFuse {
		// Compile the fused per-basic-window chains. Single-stream
		// aggregate plans skip materializing the pipeline output: only the
		// per-window partials merge downstream, so the filtered
		// intermediate chunk is never reconstructed.
		needOut := cfg.Decomp.Agg == nil
		f.pipes = make([]*kernel.Pipeline, len(cfg.Decomp.Pipelines))
		for i := range cfg.Decomp.Pipelines {
			if kp, ok := kernel.Compile(cfg.Decomp, i, cfg.Decomp.Agg, needOut); ok {
				f.pipes[i] = kp
			}
		}
	}
	if cfg.Shared {
		joined := cfg.Decomp != nil && cfg.Decomp.Join != nil
		if len(scans) != 1 && !(joined && len(scans) == 2) {
			return nil, fmt.Errorf("factory %s: shared execution requires one stream input (or an incremental stream join), got %d", cfg.Name, len(scans))
		}
		for _, s := range scans {
			if s.Window == nil {
				return nil, fmt.Errorf("factory %s: shared execution requires windowed stream scans", cfg.Name)
			}
		}
	}
	for idx, s := range scans {
		shb, ok := bind[s]
		if !ok {
			return nil, fmt.Errorf("factory %s: no basket bound for stream %q", cfg.Name, s.Alias)
		}
		in := &input{scan: s, shb: shb}
		in.maxTs.Store(math.MinInt64)
		if cfg.Shared {
			// The group owns the basket cursors, slicers and merger; the
			// member keeps only its private window ring.
			in.ring = window.NewRing(s.Window.Parts())
			f.inputs = append(f.inputs, in)
			continue
		}
		// Slice-time predicate pushdown: a private incremental factory owns
		// its slicers, so the fused chain's leading filters move into the
		// slice step — non-qualifying rows are dropped before they are
		// buffered into a window, and the chain skips the already-applied
		// prefix. Shared factories (group-owned slicers), re-evaluation
		// plans (raw windows) and fabric-fed front ends never qualify.
		var pre func(*bat.Chunk) *bat.Chunk
		if cfg.Mode == Incremental && idx < len(f.pipes) && f.pipes[idx] != nil {
			if preds := f.pipes[idx].LeadingFilters(); len(preds) > 0 {
				pre = kernel.Prefilter(preds)
				f.pipes[idx].SetSkip(len(preds))
			}
		}
		for i := 0; i < shb.NumShards(); i++ {
			b := shb.Shard(i)
			si := &shardIn{idx: i, bk: b, cid: b.Register()}
			if s.Window != nil {
				si.sl = window.NewShardSlicer(s.Window, s.Out)
				si.wm.Store(si.sl.Watermark())
				if pre != nil {
					si.sl.SetPrefilter(pre)
				}
			}
			in.shards = append(in.shards, si)
		}
		if s.Window != nil {
			in.ring = window.NewRing(s.Window.Parts())
			mc := window.MergeConfig{
				Shards:   shb.NumShards(),
				Data:     s.Out,
				KeepData: cfg.Mode == Reeval,
			}
			if cfg.Mode == Incremental {
				outSch := cfg.Decomp.Pipelines[idx].Root.Schema()
				mc.Out = &outSch
				if cfg.Decomp.Agg != nil {
					pSch := cfg.Decomp.Agg.Out
					mc.Partial = &pSch
				}
			}
			in.merge = window.NewShardMerge(mc)
		}
		f.inputs = append(f.inputs, in)
	}
	return f, nil
}

// Name reports the query name.
func (f *Factory) Name() string { return f.cfg.Name }

// Mode reports the execution mode.
func (f *Factory) Mode() Mode { return f.cfg.Mode }

// Inputs reports the number of input streams.
func (f *Factory) Inputs() int { return len(f.inputs) }

// Shards reports the shard count of input idx — the engine registers one
// scheduler transition per (input, shard).
func (f *Factory) Shards(idx int) int { return len(f.inputs[idx].shards) }

// Ready reports whether any shard of any input has work — the factory's
// Petri-net firing condition.
func (f *Factory) Ready() bool {
	for idx, in := range f.inputs {
		for sh := range in.shards {
			if f.ShardReady(idx, sh) {
				return true
			}
		}
	}
	return false
}

// ShardReady reports whether shard sh of input idx has pending tuples or
// sealed epochs awaiting flush — the per-shard firing condition.
func (f *Factory) ShardReady(idx, sh int) bool {
	in := f.inputs[idx]
	si := in.shards[sh]
	if si.bk.Available(si.cid) > 0 {
		return true
	}
	if si.sl == nil {
		return false
	}
	wmGen, ok := f.watermarkGen(in, si)
	if !ok {
		return false
	}
	return si.wm.Load() < wmGen
}

// watermarkGen computes the current epoch-sealing watermark for an input:
// tuple windows seal by the sharded basket's settled sequence, time
// windows by the shared event-time high mark. ok is false while no
// watermark exists yet (time window before the first row).
func (f *Factory) watermarkGen(in *input, si *shardIn) (int64, bool) {
	w := in.scan.Window
	if w.Tuples {
		return in.shb.Settled() / w.Slide, true
	}
	mts := in.maxTs.Load()
	if mts == math.MinInt64 {
		return 0, false
	}
	return si.sl.TimeGen(mts), true
}

// Baskets lists the names of the factory's input baskets (for the query
// network view).
func (f *Factory) Baskets() []string {
	out := make([]string, len(f.inputs))
	for i, in := range f.inputs {
		out[i] = in.shb.Name()
	}
	return out
}

// PlanString renders the full (optimized) plan.
func (f *Factory) PlanString() string { return plan.String(f.cfg.Full) }

// ContinuousPlanString renders the continuous form: the incremental
// decomposition when available, otherwise the full plan annotated with the
// re-evaluation mode.
func (f *Factory) ContinuousPlanString() string {
	if f.cfg.Mode == Incremental {
		return f.cfg.Decomp.ContinuousString()
	}
	return "-- re-evaluate per firing --\n" + plan.String(f.cfg.Full)
}

// Stop unregisters the factory from its basket shards, releases any
// shared basic-window buffers its rings still hold, and closes its
// emitter. The caller must ensure no firing is in flight (the engine uses
// scheduler.RemoveWait).
func (f *Factory) Stop() {
	for _, in := range f.inputs {
		for _, si := range in.shards {
			si.bk.Unregister(si.cid)
		}
		if in.ring != nil {
			for _, bw := range in.ring.Live() {
				bw.ReleaseData()
			}
		}
	}
	f.cfg.Emit.Close()
}

// SharedBW is one merged basic window handed to a shared member's tail:
// the window plus the factory input (join side) it belongs to. Single-
// stream groups always deliver input 0; join groups interleave inputs 0
// and 1 in the group's global pairing order.
type SharedBW struct {
	Input int
	BW    *window.BW
}

// SharedFire runs the member tail over a batch of merged basic windows
// handed over by the factory's execution group, in delivery order. It is
// the grouped counterpart of FireShard: one scheduler activation of the
// member's tail transition. Windows whose Out was already resolved
// through the group's operator DAG skip the private pipeline. It returns
// the number of result sets emitted.
func (f *Factory) SharedFire(evs []SharedBW) int {
	if len(evs) == 0 {
		return 0
	}
	start := f.cfg.Now()
	var tuples int64
	for _, ev := range evs {
		if ev.BW.Data != nil {
			tuples += int64(ev.BW.Data.Rows())
		} else if ev.BW.Out != nil {
			tuples += int64(ev.BW.Out.Rows())
		}
	}
	f.mu.Lock()
	f.stats.Firings++
	f.stats.TuplesIn += tuples
	f.mu.Unlock()

	emitted := 0
	f.stepMu.Lock()
	for _, ev := range evs {
		emitted += f.onBasicWindow(ev.Input, ev.BW)
	}
	f.stepMu.Unlock()

	f.mu.Lock()
	f.stats.BusyUsec += f.cfg.Now() - start
	f.mu.Unlock()
	return emitted
}

// SetPairCache replaces the factory's join-pair cache with a group-shared
// one. Call before the member's tail transition is registered (no firing
// may be in flight).
func (f *Factory) SetPairCache(pc window.PairCache) { f.jc = pc }

// Stats returns a snapshot of the factory's counters.
func (f *Factory) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.stats
	if f.jc != nil {
		s.CachedPairs = f.jc.Pairs()
	}
	return s
}

// RecentLatencies copies the bounded sample of the newest evaluations'
// response times (µs), oldest first. Percentile consumers (the /metrics
// p99 gauge, the multi-tenant harness) sort their own copy.
func (f *Factory) RecentLatencies() []int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]int64, 0, f.recentN)
	start := f.recentPos - f.recentN
	for i := 0; i < f.recentN; i++ {
		out = append(out, f.recentLat[(start+i+recentLatSize)%recentLatSize])
	}
	return out
}

// Step fires every shard of every input once, in order — the synchronous
// whole-factory firing used by tests and the single-threaded paths. When
// a firing raises an input's event-time watermark, the input's shards get
// a second flush pass so earlier-fired shards release their sealed
// buckets (the scheduler path handles this via OnWatermark). It returns
// the number of result sets emitted.
func (f *Factory) Step() int {
	emitted := 0
	for idx, in := range f.inputs {
		raisedAny := false
		for sh := range in.shards {
			e, raised := f.fireShard(idx, sh)
			emitted += e
			raisedAny = raisedAny || raised
		}
		if raisedAny {
			for sh := range in.shards {
				e, _ := f.fireShard(idx, sh)
				emitted += e
			}
		}
	}
	return emitted
}

// FireShard is one Petri-net transition firing for shard sh of input idx:
// drain the shard, cut sealed epochs, evaluate per-fragment pipelines, and
// merge-complete any basic windows this shard sealed last. It returns the
// number of result sets emitted.
func (f *Factory) FireShard(idx, sh int) int {
	emitted, raised := f.fireShard(idx, sh)
	if raised && f.cfg.OnWatermark != nil {
		f.cfg.OnWatermark()
	}
	return emitted
}

// fireShard reports, besides the emitted count, whether the firing raised
// the input's event-time watermark (other shards may now hold sealed
// buckets).
func (f *Factory) fireShard(idx, sh int) (int, bool) {
	in := f.inputs[idx]
	si := in.shards[sh]
	start := f.cfg.Now()
	f.mu.Lock()
	f.stats.Firings++
	f.mu.Unlock()

	si.mu.Lock()
	emitted, raised := f.fireShardLocked(idx, in, si)
	si.mu.Unlock()

	f.mu.Lock()
	f.stats.BusyUsec += f.cfg.Now() - start
	f.mu.Unlock()
	return emitted, raised
}

func (f *Factory) fireShardLocked(idx int, in *input, si *shardIn) (int, bool) {
	// For tuple windows the sealing watermark must be read BEFORE the
	// drain: every row of an epoch sealed by this watermark was appended
	// to its shard before the watermark advanced, so the drain below is
	// guaranteed to include it. Reading after the drain could seal an
	// epoch whose rows arrived between the two steps.
	var wmSeq int64
	tuples := si.sl != nil && in.scan.Window.Tuples
	if tuples {
		wmSeq = in.shb.Settled()
	}

	c, arrivals, seqs := si.bk.PeekSeqs(si.cid, int(si.bk.Available(si.cid)))
	if c != nil {
		rows := c.Rows()
		si.bk.Consume(si.cid, int64(rows))
		f.mu.Lock()
		f.stats.TuplesIn += int64(rows)
		f.mu.Unlock()
	}

	if si.sl == nil {
		// Non-windowed continuous query: the paper's mode 1 applied per
		// arriving batch, independently per shard.
		if c == nil {
			return 0, false
		}
		return f.evalBatch(in.scan, c, arrivals), false
	}

	frags, raised := sliceFlush(si.sl, in.scan.Window, c, arrivals, seqs, wmSeq, &in.maxTs)
	si.wm.Store(si.sl.Watermark())
	return f.deliver(idx, in, si, frags), raised
}

// sliceFlush is the drain step shared by isolated factories and query
// groups: push freshly drained rows into a shard slicer, raise the
// input's shared event-time watermark (time windows), and flush every
// epoch the current watermark seals. For tuple windows the caller must
// have captured wmSeq (the container's settled sequence) BEFORE the
// drain — see fireShardLocked for why the order is load-bearing. raised
// reports whether the event-time watermark advanced (sibling shards may
// now hold sealed buckets and need a re-notify).
func sliceFlush(sl *window.ShardSlicer, w *plan.Window, c *bat.Chunk, arrivals, seqs bat.Ints, wmSeq int64, maxTs *atomic.Int64) ([]*window.Frag, bool) {
	raised := false
	if c != nil {
		sl.Push(c, arrivals, seqs)
		if !w.Tuples {
			ts := bat.AsInts(c.Cols[w.TimeIdx])
			mx := int64(math.MinInt64)
			for _, t := range ts {
				if t > mx {
					mx = t
				}
			}
			raised = atomicMax(maxTs, mx)
		}
	}
	var frags []*window.Frag
	if w.Tuples {
		frags = sl.Flush(wmSeq / w.Slide)
	} else if mts := maxTs.Load(); mts != math.MinInt64 {
		frags = sl.Flush(sl.TimeGen(mts))
	}
	return frags, raised
}

// deliver runs the per-fragment pipeline (the parallel half of incremental
// mode), then offers the fragments and this shard's watermark to the
// input's merger; any basic windows completed by this delivery run the
// blocking tail under stepMu, in generation order.
func (f *Factory) deliver(idx int, in *input, si *shardIn, frags []*window.Frag) int {
	if f.cfg.Mode == Incremental {
		d := f.cfg.Decomp
		pipe := d.Pipelines[idx]
		if kp := f.pipe(idx); kp != nil {
			// Fused path: filter → project → partial aggregate run as one
			// pass over the fragment, materializing at most once. For
			// aggregate plans fr.Out stays nil (the merged window's Out is
			// an empty chunk nothing downstream reads — MergeAggregate
			// consumes the concatenated partials).
			for _, fr := range frags {
				fr.Out, fr.Partial = kp.Run(fr.Data)
			}
		} else {
			for _, fr := range frags {
				ex := &plan.Exec{StreamInputs: map[*plan.ScanStream]*bat.Chunk{pipe.Scan: fr.Data}}
				out, err := ex.Run(pipe.Root)
				if err != nil {
					out = bat.NewChunk(pipe.Root.Schema())
				}
				fr.Out = out
				if d.Agg != nil {
					fr.Partial = plan.RunAggregate(d.Agg, out)
				}
			}
		}
	}
	in.mergeMu.Lock()
	ready := in.merge.Offer(si.idx, frags, si.sl.Watermark())
	emitted := 0
	if len(ready) > 0 {
		f.stepMu.Lock()
		for _, bw := range ready {
			emitted += f.onBasicWindow(idx, bw)
		}
		f.stepMu.Unlock()
	}
	in.mergeMu.Unlock()
	return emitted
}

// pipe returns the compiled fused pipeline for input idx, or nil when the
// factory runs unfused (NoFuse, no decomposition, or a chain the
// linearizer rejected).
func (f *Factory) pipe(idx int) *kernel.Pipeline {
	if idx >= len(f.pipes) {
		return nil
	}
	return f.pipes[idx]
}

// atomicMax raises a to v and reports whether it advanced.
func atomicMax(a *atomic.Int64, v int64) bool {
	for {
		cur := a.Load()
		if v <= cur {
			return false
		}
		if a.CompareAndSwap(cur, v) {
			return true
		}
	}
}

// Advance closes time-window buckets up to the watermark (microsecond
// timestamp) on every time-windowed input — the scheduler's time
// constraint / heartbeat path for idle streams.
func (f *Factory) Advance(watermark int64) int {
	emitted := 0
	for idx, in := range f.inputs {
		if in.scan.Window == nil || in.scan.Window.Tuples || len(in.shards) == 0 {
			// Tuple windows never time out; shared inputs are advanced by
			// their query group, which owns the slicers.
			continue
		}
		if in.maxTs.Load() == math.MinInt64 {
			continue // no rows yet: nothing to force shut
		}
		atomicMax(&in.maxTs, watermark)
		mts := in.maxTs.Load()
		for _, si := range in.shards {
			si.mu.Lock()
			frags := si.sl.Flush(si.sl.TimeGen(mts))
			si.wm.Store(si.sl.Watermark())
			emitted += f.deliver(idx, in, si, frags)
			si.mu.Unlock()
		}
	}
	return emitted
}

// evalBatch handles non-windowed continuous queries: the paper's mode 1
// applied to each arriving batch. The batch feeds its own scan; any other
// stream scans in the plan see empty input this firing and are evaluated
// in their own firings as their data arrives.
func (f *Factory) evalBatch(scan *plan.ScanStream, c *bat.Chunk, arrivals bat.Ints) int {
	var maxArr int64
	for _, a := range arrivals {
		if a > maxArr {
			maxArr = a
		}
	}
	ex := &plan.Exec{StreamInputs: map[*plan.ScanStream]*bat.Chunk{scan: c}}
	out, err := ex.Run(f.cfg.Full)
	if err != nil {
		return 0
	}
	f.emit(out, maxArr, genIsSeq)
	return 1
}

// genIsSeq asks emit to use the emission sequence number as TriggerGen —
// the batch generation of non-windowed queries (emitter.Meta documents
// TriggerGen as "the basic window (or batch) sequence number").
const genIsSeq = int64(-1)

// onBasicWindow advances the window state of input idx with a merged,
// completed basic window and evaluates if a slide completed. Callers hold
// stepMu. Re-evaluation join-group members run the incremental tail: the
// decomposition certified their full-window recompute equals the merge of
// cached basic-window pairs, which the shared pair cache serves.
func (f *Factory) onBasicWindow(idx int, bw *window.BW) int {
	in := f.inputs[idx]
	if f.cfg.Mode == Reeval && !f.reevalJoin {
		if evicted := in.ring.Push(bw); evicted != nil {
			evicted.ReleaseData()
		}
		if !f.ringsFull() {
			return 0
		}
		ex := &plan.Exec{StreamInputs: map[*plan.ScanStream]*bat.Chunk{}}
		for _, i2 := range f.inputs {
			ex.StreamInputs[i2.scan] = i2.ring.ConcatData(i2.scan.Out)
		}
		out, err := ex.Run(f.cfg.Full)
		if err != nil {
			return 0
		}
		f.emit(out, f.triggerArrival(bw), bw.Gen)
		return 1
	}
	return f.incrementalStep(idx, bw)
}

func (f *Factory) ringsFull() bool {
	for _, in := range f.inputs {
		if in.ring != nil && !in.ring.Full() {
			return false
		}
	}
	return true
}

// triggerArrival picks the arrival stamp representing the data that
// triggered this evaluation: the new basic window's newest tuple, falling
// back to the window's newest tuple when the basic window was empty.
func (f *Factory) triggerArrival(bw *window.BW) int64 {
	if bw.MaxArrival > 0 {
		return bw.MaxArrival
	}
	var m int64
	for _, in := range f.inputs {
		if in.ring != nil {
			if a := in.ring.MaxArrival(); a > m {
				m = a
			}
		}
	}
	return m
}

// incrementalStep is the paper's mode 2: the per-basic-window intermediates
// were already computed per fragment by the firing shards; here the merged
// basic window enters the ring and cached intermediates merge when a slide
// completes.
func (f *Factory) incrementalStep(idx int, bw *window.BW) int {
	d := f.cfg.Decomp
	in := f.inputs[idx]

	if bw.Out == nil {
		// Per-basic-window pipeline over the raw tuples: the path for
		// query-group members whose pipeline is not in the shared DAG (the
		// DAG resolves Out/Partial before the tail runs), and the fallback
		// for basic windows that bypassed the fragment path. A pipeline
		// error substitutes an empty intermediate — like the fragment path
		// — so the ring stays window-aligned and the shared buffer is
		// still released below.
		if kp := f.pipe(idx); kp != nil {
			// Fused fallback. The fallback only sees raw windows (group
			// fanout, re-evaluation joins), so the chain runs in full —
			// pushdown skips are installed only on factories whose own
			// slicers pre-filter, and those always arrive via the fragment
			// path above.
			bw.Out, bw.Partial = kp.Run(bw.Data)
		} else {
			pipe := d.Pipelines[idx]
			ex := &plan.Exec{StreamInputs: map[*plan.ScanStream]*bat.Chunk{pipe.Scan: bw.Data}}
			out, err := ex.Run(pipe.Root)
			if err != nil {
				out = bat.NewChunk(pipe.Root.Schema())
			}
			bw.Out = out
			if d.Agg != nil {
				bw.Partial = plan.RunAggregate(d.Agg, out)
			}
		}
	}
	if bw.Free != nil {
		// Group member: the cached intermediates replace the raw tuples,
		// so the shared buffer can be released now rather than at ring
		// eviction.
		bw.ReleaseData()
	}

	evicted := in.ring.Push(bw)
	if evicted != nil {
		evicted.ReleaseData()
	}
	if bw.Final != nil || bw.Merged != nil {
		// Shared merge: the member's merge class resolved the full-window
		// merged view (and, for Final, the post-merge fragment) once for
		// every class member; the ring above only tracks window alignment
		// for the private fallback path.
		result := bw.Final
		if result == nil {
			ex := &plan.Exec{MergedInputs: map[*plan.Merged]*bat.Chunk{d.MergedLeaf: bw.Merged}}
			out, err := ex.Run(d.Post)
			if err != nil {
				return 0
			}
			result = out
		}
		f.emit(result, f.triggerArrival(bw), bw.Gen)
		return 1
	}
	if f.jc != nil {
		if evicted != nil {
			if idx == 0 {
				f.jc.EvictLeft(evicted.Gen)
			} else {
				f.jc.EvictRight(evicted.Gen)
			}
		}
		other := f.inputs[1-idx]
		if idx == 0 {
			f.jc.AddLeft(bw, other.ring.Live())
		} else {
			f.jc.AddRight(bw, other.ring.Live())
		}
	}

	if !f.ringsFull() {
		return 0
	}

	// Merge stage.
	var merged *bat.Chunk
	switch {
	case f.jc != nil:
		merged = f.jc.Merged(f.inputs[0].ring.Live(), f.inputs[1].ring.Live())
	case d.Agg != nil:
		merged = plan.MergeAggregate(d.Agg, in.ring.ConcatPartials(d.Agg.Out))
	default:
		merged = in.ring.ConcatOuts(d.MergedLeaf.Out)
	}

	result := merged
	if d.Post != nil {
		ex := &plan.Exec{MergedInputs: map[*plan.Merged]*bat.Chunk{d.MergedLeaf: merged}}
		out, err := ex.Run(d.Post)
		if err != nil {
			return 0
		}
		result = out
	}
	f.emit(result, f.triggerArrival(bw), bw.Gen)
	return 1
}

func (f *Factory) emit(c *bat.Chunk, maxArrival, gen int64) {
	now := f.cfg.Now()
	lat := int64(0)
	if maxArrival > 0 && now > maxArrival {
		lat = now - maxArrival
	}
	f.mu.Lock()
	seq := f.seq
	f.seq++
	if gen == genIsSeq {
		gen = seq
	}
	f.stats.Evals++
	f.stats.RowsOut += int64(c.Rows())
	f.stats.LastLatency = lat
	f.stats.SumLatency += lat
	if lat > f.stats.MaxLatency {
		f.stats.MaxLatency = lat
	}
	f.recentLat[f.recentPos] = lat
	f.recentPos = (f.recentPos + 1) % recentLatSize
	if f.recentN < recentLatSize {
		f.recentN++
	}
	f.mu.Unlock()
	f.cfg.Emit.Emit(c, emitter.Meta{
		Query:       f.cfg.Name,
		Seq:         seq,
		FiredAt:     now,
		LatencyUsec: lat,
		TriggerGen:  gen,
	})
}
