package factory

import (
	"sync"
	"sync/atomic"
)

// memberQueue is the lock-sensitive heart of a group member: sealed
// basic windows queue here between the group's fan-out and the member's
// tail firing. enqueue refuses items after close (the fan-out then
// releases the item's buffers itself), drain empties in order, and
// ready mirrors the length in an atomic so scheduler Ready callbacks
// never wait on the mutex. Single-stream members (memberBW items) and
// join members (joinEvent items) share it, so the closed/pending
// bookkeeping exists exactly once.
type memberQueue[T any] struct {
	mu       sync.Mutex
	pending  []T
	closed   bool
	pendingN atomic.Int64 // mirrors len(pending) for lock-free ready
}

// enqueue appends an item; false means the member already left and the
// caller must release the item's resources.
func (q *memberQueue[T]) enqueue(item T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.pending = append(q.pending, item)
	q.pendingN.Add(1)
	return true
}

// drain removes and returns everything queued, in order.
func (q *memberQueue[T]) drain() []T {
	q.mu.Lock()
	defer q.mu.Unlock()
	items := q.pending
	q.pending = nil
	q.pendingN.Store(0)
	return items
}

// closeDrain marks the queue closed and returns anything still queued
// for the caller to release.
func (q *memberQueue[T]) closeDrain() []T {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	items := q.pending
	q.pending = nil
	q.pendingN.Store(0)
	return items
}

// ready reports whether items await the member's tail (atomic read
// only; the scheduler calls it under its own lock).
func (q *memberQueue[T]) ready() bool { return q.pendingN.Load() > 0 }
