package factory

import (
	"sync"
	"sync/atomic"

	"datacell/internal/bat"
	"datacell/internal/plan"
)

// mergeClass is a group-owned merge ring: the shared-execution extension
// of the per-member window ring past the merge boundary. Members of one
// Group whose incremental decompositions agree on a plan.MergeKey —
// window extent plus the canonical fingerprint of the merged view's
// content — hold byte-identical full-window merges, so the group keeps
// ONE ring of the last `parts` sealed basic windows per class and
// evaluates the merge (partial-aggregate merging, or concatenation of
// cached pipeline outputs) once per sealed full window for all of them.
//
// A class activates at its second member and deactivates — releasing
// its ring — when membership drops back to one: a singleton extent
// always merges through its private ring, so the class never pins raw
// window buffers without at least two members sharing the result. Each
// ring slot holds one reference on the window's shared buffer
// (window.SharedBuf), released on eviction, so the group's live-buffer
// gauge accounts for the class rings exactly like it does for
// re-evaluation member rings.
//
// The merged views themselves are memoized per window in mergeCells that
// ride the fan-out items (like the pipeline DAG's dagWin memo tables):
// a cell lives exactly as long as some member still has its window
// queued or in flight, so paused members find their merged views on
// resume without the class tracking per-member progress.
type mergeClass struct {
	key       string
	parts     int
	agg       *plan.Aggregate // nil: merged view is the concat of outs
	leaf      *dagNode        // pipeline leaf in the group DAG (nil: raw)
	aggLeaf   *dagNode        // partial-aggregate node (nil iff agg == nil)
	outSchema bat.Schema      // merged view schema (MergedLeaf.Out)

	// refs counts members registered under the class key; active latches
	// at the second member. Both are guarded by the owning Group's mu.
	refs   int
	active bool

	mu     sync.Mutex
	closed bool
	ring   []mergeIn // last `parts` sealed windows, oldest first
}

// mergeIn is one sealed basic window as the merge ring sees it: the
// window's shared memo table, its raw tuples, and the release hook for
// the class's reference on the shared buffer.
type mergeIn struct {
	dw   *dagWin
	data *bat.Chunk
	free func()
}

// push appends a sealed window to the class ring (taking ownership of
// one shared-buffer reference via free), evicting the oldest slot when
// the ring exceeds the window extent. Once the ring holds a full window
// it returns the window's merge cell — the memo the fan-out attaches to
// every class member's queue item; nil during warm-up. Callers are the
// group fan-out only, which delivers windows in seal order.
func (mc *mergeClass) push(dw *dagWin, data *bat.Chunk, free func()) *mergeCell {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.closed {
		free()
		return nil
	}
	mc.ring = append(mc.ring, mergeIn{dw: dw, data: data, free: free})
	if len(mc.ring) > mc.parts {
		old := mc.ring[0]
		copy(mc.ring, mc.ring[1:])
		mc.ring = mc.ring[:mc.parts]
		old.free()
	}
	if len(mc.ring) < mc.parts {
		return nil
	}
	// The cell snapshots the ring: its input pointers stay valid after
	// eviction (the chunks are immutable and GC-kept), so a lagging member
	// can still resolve an old window's merged view from its queued cell.
	return &mergeCell{mc: mc, ins: append([]mergeIn(nil), mc.ring...)}
}

// close releases the ring's shared-buffer references and refuses further
// pushes — the class deactivated (membership dropped to one) or its last
// member left. A fan-out that snapshotted the class concurrently
// releases through push's closed check.
func (mc *mergeClass) close() {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	mc.closed = true
	for _, in := range mc.ring {
		in.free()
	}
	mc.ring = nil
}

// reopen accepts pushes again after a deactivation — a second member
// rejoined. The ring restarts empty and re-warms over the next window.
func (mc *mergeClass) reopen() {
	mc.mu.Lock()
	mc.closed = false
	mc.mu.Unlock()
}

// mergeCell memoizes one sealed full window's merged view for every
// member of a merge class. The first member tail to need it evaluates
// the merge under the once latch — resolving each basic window's
// pipeline output (or partial aggregate) through the group DAG's
// per-window memo, then merging — and siblings reuse the result. pdw is
// the post-merge memo table rooted at this merged view: the group's
// post-merge trie latches HAVING/sort/limit fragments in it exactly like
// the pipeline DAG latches operators in a dagWin.
type mergeCell struct {
	mc   *mergeClass
	once sync.Once
	ins  []mergeIn // captured ring; dropped after compute
	out  *bat.Chunk
	pdw  *dagWin
}

// eval resolves the cell's merged view, computing it at most once per
// window across all class members. computed reports whether THIS call
// performed the merge — the group's merge hit/miss counters are an
// honest cross-query sharing rate, like the DAG memo's. The ring
// lookups below resolve through the pipeline DAG's per-window memos but
// count into discard counters: they are re-lookups of work the member
// tails already accounted for, and crediting them to the group's DAG
// gauges would inflate the documented cross-query hit rate.
func (c *mergeCell) eval(g *Group) (out *bat.Chunk, pdw *dagWin, computed bool) {
	c.once.Do(func() {
		mc := c.mc
		var discardHits, discardMisses atomic.Int64
		if mc.agg != nil {
			partials := bat.NewChunk(mc.agg.Out)
			for _, in := range c.ins {
				partials.AppendChunk(g.dag.eval(in.dw, mc.aggLeaf, in.data, &discardHits, &discardMisses))
			}
			c.out = plan.MergeAggregate(mc.agg, partials)
		} else {
			res := bat.NewChunk(mc.outSchema)
			for _, in := range c.ins {
				res.AppendChunk(g.dag.eval(in.dw, mc.leaf, in.data, &discardHits, &discardMisses))
			}
			c.out = res
		}
		c.pdw = newDagWin()
		c.ins = nil // release the input pointers: only the view survives
		computed = true
	})
	return c.out, c.pdw, computed
}
