package factory

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/plan"
	"datacell/internal/window"
)

// SharedGroup is the engine-facing contract of a shared execution group —
// the single-stream Group and the two-stream JoinGroup. Both drain,
// sequence and slice their stream(s) once for all member queries, fan
// sealed basic windows out as refcounted immutable views, and evaluate
// common member sub-tails once per window through a shared operator DAG.
type SharedGroup interface {
	// Key is the group key (plan.GroupKey / plan.JoinGroupKey).
	Key() string
	// Kind is "scan" for single-stream groups, "join" for stream pairs.
	Kind() string
	// SchedGroup is the instance-unique scheduler group of the shared
	// shard transitions.
	SchedGroup() string
	// Members reports the current member count.
	Members() int
	// Shards reports the total shared shard transitions (across sides).
	Shards() int
	// WindowsOut counts basic windows fanned out (across sides).
	WindowsOut() int64
	// LiveBufs counts sealed window buffers still referenced by a member.
	LiveBufs() int64
	// DagNodes reports distinct operator nodes in the shared DAG(s).
	DagNodes() int
	// MemoHits / MemoMisses are the DAG memo counters: hits are operator
	// evaluations served from a sibling's memoized output.
	MemoHits() int64
	MemoMisses() int64
	// MergeStats reports the group-owned merge rings: active merge
	// classes (two or more members holding byte-identical full-window
	// merged views — plan.MergeKey for single-stream groups,
	// plan.JoinMergeKey for join groups), merged-view requests served
	// from a sibling's evaluation (hits), and actual merge evaluations
	// (misses).
	MergeStats() (classes int, hits, misses int64)
	// PostStats reports the post-merge trie: distinct post-merge fragment
	// nodes (HAVING filters, final aggregates, sorts, limits) registered
	// across members, and the trie's memo hit/miss counters. Both group
	// kinds share post fragments — join groups root theirs at the merged
	// join view.
	PostStats() (nodes int, hits, misses int64)
	// PairStats reports the group-level join pair caches: distinct caches
	// (one per join fingerprint), live cached pairs, and pair evaluations
	// ever computed. Zero for single-stream groups.
	PairStats() (caches, pairs int, computed int64)
	// Advance closes time-window buckets up to the watermark (µs) on every
	// shard of every side.
	Advance(watermark int64)
}

// frontEnd is the shared per-stream half of an execution group: basket
// cursors on every shard, per-shard slicers, and the merger that seals
// globally consistent basic windows — the machinery that, without
// grouping, every query would duplicate. A Group owns one; a JoinGroup
// owns two (one per join side).
//
// Locking mirrors Factory: each shard's slicer is guarded by its own
// mutex, the merger by mergeMu. The owner's sink runs under mergeMu,
// which is what keeps the fanned-out basic-window sequence in generation
// order; the returned wake-up set is delivered after mergeMu is released
// so scheduler Ready callbacks never contend with a fan-out in progress.
type frontEnd struct {
	basket *basket.Sharded
	win    *plan.Window
	schema bat.Schema
	shards []*groupShard

	merge   *window.ShardMerge
	mergeMu sync.Mutex
	maxTs   atomic.Int64 // shared event-time watermark (time windows)

	// sink consumes sealed basic windows under mergeMu and returns the
	// queries whose tail transitions need a wake-up.
	sink func(ready []*window.BW) map[string]bool
}

// groupShard is a front end's cursor into one shard of the stream basket —
// the shared counterpart of the factory's shardIn.
type groupShard struct {
	idx int
	bk  *basket.Basket
	cid int
	mu  sync.Mutex
	sl  *window.ShardSlicer
	wm  atomic.Int64 // mirrors sl.Watermark() for lock-free shardReady
}

// newFrontEnd registers consumers on every shard of the stream basket and
// builds the shared slicing pipeline. Members run divergent tails
// (re-evaluation needs raw windows, incremental pipelines and the shared
// DAG read raw basic windows), so the merger always keeps the raw tuples.
func newFrontEnd(bk *basket.Sharded, win *plan.Window, schema bat.Schema) *frontEnd {
	fe := &frontEnd{basket: bk, win: win, schema: schema}
	fe.maxTs.Store(math.MinInt64)
	for i := 0; i < bk.NumShards(); i++ {
		b := bk.Shard(i)
		gs := &groupShard{idx: i, bk: b, cid: b.Register(),
			sl: window.NewShardSlicer(win, schema)}
		gs.wm.Store(gs.sl.Watermark())
		fe.shards = append(fe.shards, gs)
	}
	fe.merge = window.NewShardMerge(window.MergeConfig{
		Shards:   bk.NumShards(),
		Data:     schema,
		KeepData: true,
	})
	return fe
}

// newRemoteFrontEnd builds the fabric-fed variant: no basket cursors or
// local slicers — per-shard epoch fragments arrive pre-sliced from worker
// processes and only the min-watermark merger runs here.
func newRemoteFrontEnd(shards int, win *plan.Window, schema bat.Schema) *frontEnd {
	fe := &frontEnd{win: win, schema: schema}
	fe.maxTs.Store(math.MinInt64)
	fe.merge = window.NewShardMerge(window.MergeConfig{
		Shards:   shards,
		Data:     schema,
		KeepData: true,
	})
	return fe
}

// close releases the basket cursors. The owner must have removed the
// shard transitions first (RemoveWait) so no firing is in flight.
func (fe *frontEnd) close() {
	for _, gs := range fe.shards {
		gs.mu.Lock()
		gs.bk.Unregister(gs.cid)
		gs.mu.Unlock()
	}
}

// shardReady reports whether shard sh has pending tuples or sealed epochs
// awaiting flush — the shared per-shard firing condition. It reads only
// atomics and basket counters (the scheduler calls it under its own lock).
func (fe *frontEnd) shardReady(sh int) bool {
	gs := fe.shards[sh]
	if gs.bk.Available(gs.cid) > 0 {
		return true
	}
	wmGen, ok := fe.watermarkGen(gs)
	if !ok {
		return false
	}
	return gs.wm.Load() < wmGen
}

func (fe *frontEnd) watermarkGen(gs *groupShard) (int64, bool) {
	if fe.win.Tuples {
		return fe.basket.Settled() / fe.win.Slide, true
	}
	mts := fe.maxTs.Load()
	if mts == math.MinInt64 {
		return 0, false
	}
	return gs.sl.TimeGen(mts), true
}

// fireShard is one firing of shard sh: drain, slice, and merge-complete
// any basic windows this shard sealed last, feeding them to the owner's
// sink. raised reports whether the event-time watermark advanced (sibling
// shards may now hold sealed buckets and need a re-notify); notify is the
// sink's wake-up set.
func (fe *frontEnd) fireShard(sh int) (notify map[string]bool, raised bool) {
	gs := fe.shards[sh]
	gs.mu.Lock()
	defer gs.mu.Unlock()
	// Tuple windows: read the sealing watermark BEFORE the drain (see
	// Factory.fireShardLocked for why the order matters).
	var wmSeq int64
	if fe.win.Tuples {
		wmSeq = fe.basket.Settled()
	}
	c, arrivals, seqs := gs.bk.PeekSeqs(gs.cid, int(gs.bk.Available(gs.cid)))
	if c != nil {
		gs.bk.Consume(gs.cid, int64(c.Rows()))
	}
	frags, raised := sliceFlush(gs.sl, fe.win, c, arrivals, seqs, wmSeq, &fe.maxTs)
	gs.wm.Store(gs.sl.Watermark())
	return fe.deliver(gs, frags), raised
}

// deliver offers a shard's flushed fragments to the merger and sinks any
// completed basic windows. Callers hold gs.mu.
func (fe *frontEnd) deliver(gs *groupShard, frags []*window.Frag) map[string]bool {
	fe.mergeMu.Lock()
	defer fe.mergeMu.Unlock()
	ready := fe.merge.Offer(gs.idx, frags, gs.sl.Watermark())
	if len(ready) == 0 {
		return nil
	}
	return fe.sink(ready)
}

// advance closes time-window buckets up to the watermark (µs) on every
// shard. Tuple-window front ends are unaffected.
func (fe *frontEnd) advance(watermark int64) map[string]bool {
	if fe.win.Tuples || fe.maxTs.Load() == math.MinInt64 {
		return nil // tuple windows never time out; no rows yet: nothing to shut
	}
	atomicMax(&fe.maxTs, watermark)
	mts := fe.maxTs.Load()
	notify := map[string]bool{}
	for _, gs := range fe.shards {
		gs.mu.Lock()
		frags := gs.sl.Flush(gs.sl.TimeGen(mts))
		gs.wm.Store(gs.sl.Watermark())
		for q := range fe.deliver(gs, frags) {
			notify[q] = true
		}
		gs.mu.Unlock()
	}
	return notify
}

// Group is a shared execution group over one stream: the front half of the
// dataflow — basket cursors, epoch slicing, shard merging — runs once per
// stream and slide granularity, no matter how many continuous queries
// consume it. Queries whose windowed scans agree on a plan.GroupKey join
// as members; each sealed basic window is fanned out to every member as a
// refcounted immutable columnar view, and the members' private tails run
// as independent scheduler transitions. On top of the shared slice, the
// group's operator DAG memoizes common member sub-tails: identical
// filter/project/partial-aggregate prefixes (by plan.Fingerprint) are
// evaluated once per basic window and the member tails diverge only where
// their plans do.
type Group struct {
	cfg     GroupConfig
	fe      *frontEnd
	dag     *dag // per-basic-window pipeline trie (rooted at the raw scan)
	postDag *dag // post-merge trie (rooted at each class's merged view)

	liveBufs    atomic.Int64 // sealed shared buffers not yet released by all members
	windowsOut  atomic.Int64 // basic windows fanned out
	memoHits    atomic.Int64
	memoMisses  atomic.Int64
	mergeHits   atomic.Int64 // merged views served from a sibling's evaluation
	mergeMisses atomic.Int64 // actual merge evaluations
	postHits    atomic.Int64 // post-merge fragments served from the trie memo
	postMisses  atomic.Int64 // actual post-merge fragment evaluations

	cancelAppend func()

	mu      sync.Mutex
	members []*Member
	classes map[string]*mergeClass // merge classes by plan.MergeKey
}

// GroupConfig assembles a shared execution group.
type GroupConfig struct {
	// Key is the plan.GroupKey the members agreed on.
	Key string
	// SchedGroup is the scheduler group name of the shard transitions.
	// It must be unique per group INSTANCE (the engine appends a nonce to
	// the key): a torn-down group's RemoveWait must never sweep up the
	// same-keyed successor's freshly added transitions.
	SchedGroup string
	// Basket is the stream's sharded container.
	Basket *basket.Sharded
	// Window carries the slicing granularity (slide / time bucket +
	// ordering attribute). The SIZE of any particular member is irrelevant
	// here: basic windows are cut at slide granularity and each member
	// keeps its own ring extent.
	Window *plan.Window
	// Schema is the scan output layout (the stream schema).
	Schema bat.Schema
	// Now supplies the clock in microseconds (defaults to the system
	// clock).
	Now func() int64
	// NotifyMember re-enables a member query's tail transition; the engine
	// wires it to the scheduler.
	NotifyMember func(query string)
	// NotifyShards re-enables the group's shard transitions (wired to
	// basket appends and event-time watermark raises).
	NotifyShards func()
	// Remote marks a fabric-fed group: the stream's shard front ends —
	// basket cursors, slicers, per-shard firings — run in worker processes,
	// and sealed epoch fragments arrive over the wire via OfferRemote
	// instead of local FireShard transitions. The group keeps only the
	// merger (min-watermark sealing across processes) and everything above
	// it — fan-out, operator DAG, merge classes, post-merge trie — works
	// unchanged on remote windows.
	Remote *RemoteSource
}

// RemoteSource describes the remote side of a fabric-fed group.
type RemoteSource struct {
	// Shards is the stream's total shard count across all workers — the
	// width of the group's merger.
	Shards int
	// Advance forwards time-watermark raises (Engine.AdvanceTime, the
	// heartbeat) to the worker processes, whose slicers own the open
	// buckets.
	Advance func(watermark int64)
	// Close tears the fabric spec down when the group closes (broadcast to
	// workers so they drop their slicers and cursors).
	Close func()
}

// Member is one continuous query's membership in a group: a queue of
// sealed basic windows awaiting the query's private tail, drained by the
// member's scheduler transition. Members whose incremental pipeline
// registered in the group DAG carry their leaf nodes; their tails resolve
// Out/Partial through the shared memo before the merge stage. Members in
// a merge class additionally resolve the merge itself — and, through
// postLeaf, their post-merge fragment — from the group's shared
// machinery, so their private tail only emits.
type Member struct {
	g     *Group
	query string
	fac   *Factory

	leaf    *dagNode // pipeline leaf (nil: evaluate privately)
	aggLeaf *dagNode // partial-aggregate node (nil: no shared partial)

	// Shared-merge state. classKey is the member's plan.MergeKey ("" when
	// the member merges privately: re-evaluation mode, joins, NoMemo, or
	// NoSharedMerge). postLeaf is the member's post-merge chain in the
	// group's post-merge trie (nil when the plan has no post fragment, or
	// when it did not linearize — hasPost distinguishes the two).
	classKey string
	postLeaf *dagNode
	hasPost  bool

	// nextGen is touched only by fanout, which the front end's mergeMu
	// serializes.
	nextGen int64
	q       memberQueue[memberBW]
}

// memberBW is one queued basic window plus the window's shared memo
// table and — for merge-class members whose window completed a full
// window — the class's merged-view memo cell.
type memberBW struct {
	bw    *window.BW
	dw    *dagWin
	mcell *mergeCell
}

// NewGroup builds a group over a stream basket. It registers consumers on
// every shard but does not yet subscribe to append notifications — the
// engine first joins the creating member and registers the shard
// transitions, then calls SubscribeAppend, so no basic window can seal
// while the group has no members.
func NewGroup(cfg GroupConfig) *Group {
	if cfg.Now == nil {
		cfg.Now = func() int64 { return time.Now().UnixMicro() }
	}
	g := &Group{cfg: cfg, dag: newDAG(), postDag: newDAG(),
		classes: make(map[string]*mergeClass)}
	if cfg.Remote != nil {
		g.fe = newRemoteFrontEnd(cfg.Remote.Shards, cfg.Window, cfg.Schema)
	} else {
		g.fe = newFrontEnd(cfg.Basket, cfg.Window, cfg.Schema)
	}
	g.fe.sink = g.fanout
	return g
}

// SubscribeAppend wires the group's shard transitions to the basket's
// append notifications. Call after the first member joined and the shard
// transitions are registered. Remote groups have no shard transitions to
// wake — their windows arrive over the wire — so it is a no-op for them.
func (g *Group) SubscribeAppend() {
	if g.cfg.Remote != nil {
		return
	}
	if g.cfg.NotifyShards != nil {
		g.cancelAppend = g.cfg.Basket.OnAppend(g.cfg.NotifyShards)
	}
}

// Key reports the group key.
func (g *Group) Key() string { return g.cfg.Key }

// Kind reports the group kind ("scan").
func (g *Group) Kind() string { return "scan" }

// SchedGroup reports the instance-unique scheduler group name of the
// shard transitions.
func (g *Group) SchedGroup() string { return g.cfg.SchedGroup }

// NumShards reports the stream's shard count (one group transition each).
func (g *Group) NumShards() int { return len(g.fe.shards) }

// Shards implements SharedGroup: the stream's total shard count — local
// shard transitions, or, for a fabric-fed group, the remote shards whose
// fragments the merger assembles.
func (g *Group) Shards() int {
	if g.cfg.Remote != nil {
		return g.cfg.Remote.Shards
	}
	return g.NumShards()
}

// Members reports the current member count.
func (g *Group) Members() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.members)
}

// LiveBufs reports how many sealed basic-window buffers are still
// referenced by at least one member — the refcount gauge tests pin to
// prove buffers are released when the last member finishes with them.
func (g *Group) LiveBufs() int64 { return g.liveBufs.Load() }

// WindowsOut reports how many basic windows the group has fanned out.
func (g *Group) WindowsOut() int64 { return g.windowsOut.Load() }

// DagNodes reports the distinct operator nodes in the shared DAG.
func (g *Group) DagNodes() int { return g.dag.Nodes() }

// MemoHits reports operator evaluations served from the shared memo.
func (g *Group) MemoHits() int64 { return g.memoHits.Load() }

// MemoMisses reports actual operator evaluations (memo fills).
func (g *Group) MemoMisses() int64 { return g.memoMisses.Load() }

// MergeStats reports the active merge classes (group-owned merge rings
// serving two or more members) and the merged-view memo counters: hits
// are full-window merges served from a sibling's evaluation, misses
// actual merge evaluations — for N class members, one miss and N-1 hits
// per sealed full window.
func (g *Group) MergeStats() (classes int, hits, misses int64) {
	g.mu.Lock()
	for _, mc := range g.classes {
		if mc.active {
			classes++
		}
	}
	g.mu.Unlock()
	return classes, g.mergeHits.Load(), g.mergeMisses.Load()
}

// PostStats reports the post-merge trie: distinct post-merge fragment
// nodes registered across members and the trie's memo counters.
func (g *Group) PostStats() (nodes int, hits, misses int64) {
	return g.postDag.Nodes(), g.postHits.Load(), g.postMisses.Load()
}

// PairStats implements SharedGroup; single-stream groups hold no join
// pair caches.
func (g *Group) PairStats() (int, int, int64) { return 0, 0, 0 }

// Join adds a query as a member. The member starts at the next sealed
// basic window; tuples already buffered in the group's open epochs are
// included in it. An incremental member whose per-basic-window pipeline
// linearizes (plan.PipelineSteps) registers it — and its partial-aggregate
// stage — in the shared DAG, unless the factory opted out (NoMemo). A
// DAG-registered member additionally joins the merge class of its
// plan.MergeKey (unless NoSharedMerge) and registers its post-merge
// fragment in the post-merge trie, so once a second member with the same
// key arrives, merge and identical post fragments evaluate once per
// sealed full window for the whole class.
func (g *Group) Join(query string, fac *Factory) *Member {
	m := &Member{g: g, query: query, fac: fac}
	d := fac.cfg.Decomp
	if d != nil && !fac.cfg.NoMemo && fac.cfg.Mode == Incremental && d.Join == nil {
		if steps, ok := d.StepsMemo(0); ok {
			m.leaf, m.aggLeaf = g.dag.register(steps, d.Agg, d.AggFingerprintMemo())
			if !fac.cfg.NoSharedMerge {
				if key, ok := d.MergeKeyMemo(); ok {
					m.classKey = key
					m.hasPost = d.Post != nil
					if d.Post != nil {
						if psteps, ok := d.PostStepsMemo(key); ok {
							m.postLeaf, _ = g.postDag.register(psteps, nil, "")
						}
					}
				}
			}
		}
	}
	g.mu.Lock()
	g.members = append(g.members, m)
	if m.classKey != "" {
		mc := g.classes[m.classKey]
		if mc == nil {
			mc = &mergeClass{
				key:       m.classKey,
				parts:     d.Pipelines[0].Scan.Window.Parts(),
				agg:       d.Agg,
				leaf:      m.leaf,
				aggLeaf:   m.aggLeaf,
				outSchema: d.MergedLeaf.Out,
			}
			g.classes[m.classKey] = mc
		}
		mc.refs++
		if mc.refs >= 2 && !mc.active {
			// The ring starts (or, after a drop back to one member,
			// restarts) filling from the next sealed window.
			mc.active = true
			mc.reopen()
		}
	}
	g.mu.Unlock()
	return m
}

// Leave removes a member, releasing any sealed basic windows still queued
// for it, its DAG and post-merge trie path references, and its merge-
// class membership — the class's ring (and its shared-buffer references)
// is released when the last member with its key leaves. The caller must
// have removed the member's scheduler transition first (RemoveWait) so no
// tail firing is in flight.
func (g *Group) Leave(m *Member) {
	var closeClass *mergeClass
	g.mu.Lock()
	for i, x := range g.members {
		if x == m {
			g.members = append(g.members[:i], g.members[i+1:]...)
			break
		}
	}
	if m.classKey != "" {
		if mc := g.classes[m.classKey]; mc != nil {
			mc.refs--
			switch {
			case mc.refs <= 0:
				delete(g.classes, m.classKey)
				closeClass = mc
			case mc.refs == 1 && mc.active:
				// Sharing is over: release the ring so a lone survivor
				// stops pinning raw window buffers it would otherwise
				// never need (its private ring still merges every
				// window). A later second member reactivates the class
				// and re-warms the ring.
				mc.active = false
				closeClass = mc
			}
		}
	}
	g.mu.Unlock()
	if closeClass != nil {
		closeClass.close()
	}
	if m.postLeaf != nil {
		g.postDag.unregister(m.postLeaf)
	}
	if m.aggLeaf != nil {
		g.dag.unregister(m.aggLeaf)
	}
	if m.leaf != nil {
		g.dag.unregister(m.leaf)
	}
	for _, it := range m.q.closeDrain() {
		it.bw.ReleaseData()
	}
}

// Close tears the group down after the last member left: cancels the
// append subscription and releases the basket cursors. The caller must
// have removed the group's shard transitions first (RemoveWait).
func (g *Group) Close() {
	if g.cancelAppend != nil {
		g.cancelAppend()
		g.cancelAppend = nil
	}
	g.fe.close()
	if g.cfg.Remote != nil && g.cfg.Remote.Close != nil {
		g.cfg.Remote.Close()
	}
}

// OfferRemote feeds one remote shard's freshly flushed epoch fragments and
// watermark into the group's merger — the fabric-fed counterpart of a
// FireShard delivery. Basic windows sealed by the delivery (every shard's
// watermark passed their epoch) fan out to the members exactly as local
// ones do. Safe for concurrent calls from different worker connections;
// out-of-range shard indices are dropped (a confused or stale peer must
// not panic the engine).
func (g *Group) OfferRemote(shard int, frags []*window.Frag, wm int64) {
	if g.cfg.Remote == nil || shard < 0 || shard >= g.cfg.Remote.Shards {
		return
	}
	g.fe.mergeMu.Lock()
	ready := g.fe.merge.Offer(shard, frags, wm)
	var notify map[string]bool
	if len(ready) > 0 {
		notify = g.fe.sink(ready)
	}
	g.fe.mergeMu.Unlock()
	for q := range notify {
		g.cfg.NotifyMember(q)
	}
}

// ShardReady reports whether shard sh has pending tuples or sealed epochs
// awaiting flush — the group's per-shard firing condition (the shared
// analogue of Factory.ShardReady).
func (g *Group) ShardReady(sh int) bool { return g.fe.shardReady(sh) }

// FireShard is one firing of the group's shard sh: drain, slice, and
// merge-complete any basic windows this shard sealed last, fanning them
// out to every member's queue. Sealed windows wake the members' tail
// transitions; a raised event-time watermark re-notifies the sibling
// shards (they may now hold sealed buckets).
func (g *Group) FireShard(sh int) {
	notify, raised := g.fe.fireShard(sh)
	for q := range notify {
		g.cfg.NotifyMember(q)
	}
	if raised && g.cfg.NotifyShards != nil {
		g.cfg.NotifyShards()
	}
}

// fanout hands each sealed basic window to every member as a refcounted
// shared view, together with the window's DAG memo table, and feeds the
// active merge-class rings — each ring slot holds its own reference on
// the shared buffer, and once a class ring covers a full window the
// window's merged-view memo cell rides the class members' queue items.
// Callers hold the front end's mergeMu, which keeps per-member
// generations in order. It returns the queries whose tail transitions
// need a wake-up.
func (g *Group) fanout(ready []*window.BW) map[string]bool {
	g.mu.Lock()
	members := make([]*Member, len(g.members))
	copy(members, g.members)
	var classes []*mergeClass
	for _, mc := range g.classes {
		if mc.active {
			classes = append(classes, mc)
		}
	}
	g.mu.Unlock()

	needDag := g.dag.Nodes() > 0
	notify := make(map[string]bool, len(members))
	for _, bw := range ready {
		g.windowsOut.Add(1)
		if len(members) == 0 {
			continue
		}
		g.liveBufs.Add(1)
		buf := window.NewSharedBuf(bw.Data, len(members)+len(classes), func() { g.liveBufs.Add(-1) })
		var dw *dagWin
		if needDag {
			dw = newDagWin()
		}
		var cells map[string]*mergeCell
		if len(classes) > 0 {
			cells = make(map[string]*mergeCell, len(classes))
			for _, mc := range classes {
				if cell := mc.push(dw, buf.Data(), buf.Release); cell != nil {
					cells[mc.key] = cell
				}
			}
		}
		for _, m := range members {
			mbw := &window.BW{Gen: m.nextGen, Data: buf.Data(), MaxArrival: bw.MaxArrival, Free: buf.Release}
			item := memberBW{bw: mbw, dw: dw}
			if m.classKey != "" {
				item.mcell = cells[m.classKey]
			}
			if !m.q.enqueue(item) {
				mbw.ReleaseData() // member left between snapshot and enqueue
				continue
			}
			m.nextGen++
			notify[m.query] = true
		}
	}
	return notify
}

// Advance closes time-window buckets up to the watermark (microsecond
// timestamp) on every shard — the group-level counterpart of
// Factory.Advance for the scheduler's time constraints. Tuple-window
// groups are unaffected. Fabric-fed groups forward the watermark to the
// worker processes, whose slicers own the open buckets; the flushed
// fragments come back through OfferRemote.
func (g *Group) Advance(watermark int64) {
	if g.cfg.Remote != nil {
		if g.cfg.Remote.Advance != nil {
			g.cfg.Remote.Advance(watermark)
		}
		return
	}
	for q := range g.fe.advance(watermark) {
		g.cfg.NotifyMember(q)
	}
}

// Query reports the member's query name.
func (m *Member) Query() string { return m.query }

// Ready reports whether sealed basic windows await the member's tail —
// the firing condition of the member's scheduler transition. It reads an
// atomic mirror only (the scheduler calls it under its own lock).
func (m *Member) Ready() bool { return m.q.ready() }

// Fire drains the member's queue and runs its private tail over the
// batch, in generation order. Members registered in the shared DAG
// resolve their pipeline output (and partial aggregate) through the
// window's memo first — evaluating each distinct operator once across all
// members — and release their raw-data reference immediately. Merge-class
// members then resolve the full-window merged view through the window's
// merge cell (one merge evaluation per sealed window across the class)
// and their post-merge fragment through the post-merge trie, so the
// factory tail only emits; everyone else merges privately in the tail.
// The scheduler guarantees a single in-flight Fire per member. It returns
// the number of result sets emitted.
func (m *Member) Fire() int {
	items := m.q.drain()
	evs := make([]SharedBW, 0, len(items))
	for _, it := range items {
		bw := it.bw
		if it.dw != nil && (m.leaf != nil || m.aggLeaf != nil) {
			bw.Out = m.g.dag.eval(it.dw, m.leaf, bw.Data, &m.g.memoHits, &m.g.memoMisses)
			if m.aggLeaf != nil {
				bw.Partial = m.g.dag.eval(it.dw, m.aggLeaf, bw.Data, &m.g.memoHits, &m.g.memoMisses)
			}
			// The raw-data reference is released by the factory tail after
			// tuple accounting (incrementalStep).
		}
		// The merge cell serves this member only once its own ring is warm
		// (Gen counts windows since the member joined): a late joiner's
		// first full window must cover exactly the windows it received, as
		// it would alone.
		if it.mcell != nil && bw.Gen >= int64(it.mcell.mc.parts-1) {
			merged, pdw, computed := it.mcell.eval(m.g)
			if computed {
				m.g.mergeMisses.Add(1)
			} else {
				m.g.mergeHits.Add(1)
			}
			switch {
			case m.postLeaf != nil:
				bw.Final = m.g.postDag.eval(pdw, m.postLeaf, merged, &m.g.postHits, &m.g.postMisses)
			case m.hasPost:
				// Post fragment exists but did not linearize: the tail runs
				// it privately over the shared merged view.
				bw.Merged = merged
			default:
				bw.Final = merged
			}
		}
		evs = append(evs, SharedBW{Input: 0, BW: bw})
	}
	return m.fac.SharedFire(evs)
}
