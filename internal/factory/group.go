package factory

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/plan"
	"datacell/internal/window"
)

// Group is a shared execution group: the front half of the dataflow —
// basket cursors, epoch slicing, shard merging — run once per stream and
// slide granularity, no matter how many continuous queries consume it.
// Queries whose windowed scans agree on a plan.GroupKey join as members;
// each sealed basic window is fanned out to every member as a refcounted
// immutable columnar view, and the members' private tails (per-basic-window
// pipelines, rings, partial merges, emitters) run as independent scheduler
// transitions — in parallel with each other and with the group's shard
// firings. Without grouping, Q queries over one stream drain, sequence and
// slice every tuple Q times; with it, that cost is paid once and only the
// per-query tail scales with Q.
//
// Locking mirrors Factory: each shard's slicer is guarded by its own
// mutex, the merger by mergeMu, and the member list by mu. Fan-out runs
// under mergeMu, which is what keeps every member's basic-window sequence
// in generation order. Scheduler Ready callbacks (ShardReady, Member.Ready)
// read only atomics and basket counters — never a mutex held across a
// firing — because the scheduler invokes them under its own lock.
type Group struct {
	cfg    GroupConfig
	shards []*groupShard

	merge   *window.ShardMerge
	mergeMu sync.Mutex
	maxTs   atomic.Int64 // shared event-time watermark (time windows)

	liveBufs     atomic.Int64 // sealed shared buffers not yet released by all members
	windowsOut   atomic.Int64 // basic windows fanned out
	cancelAppend func()

	mu      sync.Mutex
	members []*Member
}

// GroupConfig assembles a shared execution group.
type GroupConfig struct {
	// Key is the plan.GroupKey the members agreed on.
	Key string
	// SchedGroup is the scheduler group name of the shard transitions.
	// It must be unique per group INSTANCE (the engine appends a nonce to
	// the key): a torn-down group's RemoveWait must never sweep up the
	// same-keyed successor's freshly added transitions.
	SchedGroup string
	// Basket is the stream's sharded container.
	Basket *basket.Sharded
	// Window carries the slicing granularity (slide / time bucket +
	// ordering attribute). The SIZE of any particular member is irrelevant
	// here: basic windows are cut at slide granularity and each member
	// keeps its own ring extent.
	Window *plan.Window
	// Schema is the scan output layout (the stream schema).
	Schema bat.Schema
	// Now supplies the clock in microseconds (defaults to the system
	// clock).
	Now func() int64
	// NotifyMember re-enables a member query's tail transition; the engine
	// wires it to the scheduler.
	NotifyMember func(query string)
	// NotifyShards re-enables the group's shard transitions (wired to
	// basket appends and event-time watermark raises).
	NotifyShards func()
}

// groupShard is the group's cursor into one shard of the stream basket —
// the shared counterpart of the factory's shardIn.
type groupShard struct {
	idx int
	bk  *basket.Basket
	cid int
	mu  sync.Mutex
	sl  *window.ShardSlicer
	wm  atomic.Int64 // mirrors sl.Watermark() for lock-free ShardReady
}

// Member is one continuous query's membership in a group: a queue of
// sealed basic windows awaiting the query's private tail, drained by the
// member's scheduler transition.
type Member struct {
	g     *Group
	query string
	fac   *Factory

	mu       sync.Mutex
	pending  []*window.BW
	closed   bool
	nextGen  int64
	pendingN atomic.Int64 // mirrors len(pending) for lock-free Ready
}

// NewGroup builds a group over a stream basket. It registers consumers on
// every shard but does not yet subscribe to append notifications — the
// engine first joins the creating member and registers the shard
// transitions, then calls SubscribeAppend, so no basic window can seal
// while the group has no members.
func NewGroup(cfg GroupConfig) *Group {
	if cfg.Now == nil {
		cfg.Now = func() int64 { return time.Now().UnixMicro() }
	}
	g := &Group{cfg: cfg}
	g.maxTs.Store(math.MinInt64)
	for i := 0; i < cfg.Basket.NumShards(); i++ {
		b := cfg.Basket.Shard(i)
		gs := &groupShard{idx: i, bk: b, cid: b.Register(),
			sl: window.NewShardSlicer(cfg.Window, cfg.Schema)}
		gs.wm.Store(gs.sl.Watermark())
		g.shards = append(g.shards, gs)
	}
	g.merge = window.NewShardMerge(window.MergeConfig{
		Shards: cfg.Basket.NumShards(),
		Data:   cfg.Schema,
		// Members run divergent tails (re-evaluation needs raw windows,
		// incremental pipelines read raw basic windows), so the shared
		// level always keeps the raw tuples; per-query intermediates are
		// private to each member.
		KeepData: true,
	})
	return g
}

// SubscribeAppend wires the group's shard transitions to the basket's
// append notifications. Call after the first member joined and the shard
// transitions are registered.
func (g *Group) SubscribeAppend() {
	if g.cfg.NotifyShards != nil {
		g.cancelAppend = g.cfg.Basket.OnAppend(g.cfg.NotifyShards)
	}
}

// Key reports the group key.
func (g *Group) Key() string { return g.cfg.Key }

// SchedGroup reports the instance-unique scheduler group name of the
// shard transitions.
func (g *Group) SchedGroup() string { return g.cfg.SchedGroup }

// NumShards reports the stream's shard count (one group transition each).
func (g *Group) NumShards() int { return len(g.shards) }

// Members reports the current member count.
func (g *Group) Members() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.members)
}

// LiveBufs reports how many sealed basic-window buffers are still
// referenced by at least one member — the refcount gauge tests pin to
// prove buffers are released when the last member finishes with them.
func (g *Group) LiveBufs() int64 { return g.liveBufs.Load() }

// WindowsOut reports how many basic windows the group has fanned out.
func (g *Group) WindowsOut() int64 { return g.windowsOut.Load() }

// Join adds a query as a member. The member starts at the next sealed
// basic window; tuples already buffered in the group's open epochs are
// included in it.
func (g *Group) Join(query string, fac *Factory) *Member {
	m := &Member{g: g, query: query, fac: fac}
	g.mu.Lock()
	g.members = append(g.members, m)
	g.mu.Unlock()
	return m
}

// Leave removes a member, releasing any sealed basic windows still queued
// for it. The caller must have removed the member's scheduler transition
// first (RemoveWait) so no tail firing is in flight.
func (g *Group) Leave(m *Member) {
	g.mu.Lock()
	for i, x := range g.members {
		if x == m {
			g.members = append(g.members[:i], g.members[i+1:]...)
			break
		}
	}
	g.mu.Unlock()
	m.mu.Lock()
	m.closed = true
	pend := m.pending
	m.pending = nil
	m.pendingN.Store(0)
	m.mu.Unlock()
	for _, bw := range pend {
		bw.ReleaseData()
	}
}

// Close tears the group down after the last member left: cancels the
// append subscription and releases the basket cursors. The caller must
// have removed the group's shard transitions first (RemoveWait).
func (g *Group) Close() {
	if g.cancelAppend != nil {
		g.cancelAppend()
		g.cancelAppend = nil
	}
	for _, gs := range g.shards {
		gs.mu.Lock()
		gs.bk.Unregister(gs.cid)
		gs.mu.Unlock()
	}
}

// ShardReady reports whether shard sh has pending tuples or sealed epochs
// awaiting flush — the group's per-shard firing condition (the shared
// analogue of Factory.ShardReady).
func (g *Group) ShardReady(sh int) bool {
	gs := g.shards[sh]
	if gs.bk.Available(gs.cid) > 0 {
		return true
	}
	wmGen, ok := g.watermarkGen(gs)
	if !ok {
		return false
	}
	return gs.wm.Load() < wmGen
}

func (g *Group) watermarkGen(gs *groupShard) (int64, bool) {
	w := g.cfg.Window
	if w.Tuples {
		return g.cfg.Basket.Settled() / w.Slide, true
	}
	mts := g.maxTs.Load()
	if mts == math.MinInt64 {
		return 0, false
	}
	return gs.sl.TimeGen(mts), true
}

// FireShard is one firing of the group's shard sh: drain, slice, and
// merge-complete any basic windows this shard sealed last, fanning them
// out to every member's queue. Sealed windows wake the members' tail
// transitions; a raised event-time watermark re-notifies the sibling
// shards (they may now hold sealed buckets).
func (g *Group) FireShard(sh int) {
	gs := g.shards[sh]
	gs.mu.Lock()
	raised := g.fireShardLocked(gs)
	gs.mu.Unlock()
	if raised && g.cfg.NotifyShards != nil {
		g.cfg.NotifyShards()
	}
}

func (g *Group) fireShardLocked(gs *groupShard) bool {
	w := g.cfg.Window
	// Tuple windows: read the sealing watermark BEFORE the drain (see
	// Factory.fireShardLocked for why the order matters).
	var wmSeq int64
	if w.Tuples {
		wmSeq = g.cfg.Basket.Settled()
	}
	c, arrivals, seqs := gs.bk.PeekSeqs(gs.cid, int(gs.bk.Available(gs.cid)))
	if c != nil {
		gs.bk.Consume(gs.cid, int64(c.Rows()))
	}
	frags, raised := sliceFlush(gs.sl, w, c, arrivals, seqs, wmSeq, &g.maxTs)
	gs.wm.Store(gs.sl.Watermark())
	g.deliver(gs, frags)
	return raised
}

// deliver offers a shard's flushed fragments to the merger and fans any
// completed basic windows out to the members. Callers hold gs.mu. Member
// notifications run after the merge lock is released so scheduler Ready
// callbacks never contend with a fan-out in progress.
func (g *Group) deliver(gs *groupShard, frags []*window.Frag) {
	g.mergeMu.Lock()
	ready := g.merge.Offer(gs.idx, frags, gs.sl.Watermark())
	var notify map[string]bool
	if len(ready) > 0 {
		notify = g.fanout(ready)
	}
	g.mergeMu.Unlock()
	for q := range notify {
		g.cfg.NotifyMember(q)
	}
}

// fanout hands each sealed basic window to every member as a refcounted
// shared view. Callers hold mergeMu, which keeps per-member generations in
// order. It returns the queries whose tail transitions need a wake-up.
func (g *Group) fanout(ready []*window.BW) map[string]bool {
	g.mu.Lock()
	members := make([]*Member, len(g.members))
	copy(members, g.members)
	g.mu.Unlock()

	notify := make(map[string]bool, len(members))
	for _, bw := range ready {
		g.windowsOut.Add(1)
		if len(members) == 0 {
			continue
		}
		g.liveBufs.Add(1)
		buf := window.NewSharedBuf(bw.Data, len(members), func() { g.liveBufs.Add(-1) })
		for _, m := range members {
			mbw := &window.BW{Data: buf.Data(), MaxArrival: bw.MaxArrival, Free: buf.Release}
			m.mu.Lock()
			if m.closed {
				m.mu.Unlock()
				mbw.ReleaseData()
				continue
			}
			mbw.Gen = m.nextGen
			m.nextGen++
			m.pending = append(m.pending, mbw)
			m.pendingN.Add(1)
			m.mu.Unlock()
			notify[m.query] = true
		}
	}
	return notify
}

// Advance closes time-window buckets up to the watermark (microsecond
// timestamp) on every shard — the group-level counterpart of
// Factory.Advance for the scheduler's time constraints. Tuple-window
// groups are unaffected.
func (g *Group) Advance(watermark int64) {
	if g.cfg.Window.Tuples {
		return
	}
	if g.maxTs.Load() == math.MinInt64 {
		return // no rows yet: nothing to force shut
	}
	atomicMax(&g.maxTs, watermark)
	mts := g.maxTs.Load()
	for _, gs := range g.shards {
		gs.mu.Lock()
		frags := gs.sl.Flush(gs.sl.TimeGen(mts))
		gs.wm.Store(gs.sl.Watermark())
		g.deliver(gs, frags)
		gs.mu.Unlock()
	}
}

// Query reports the member's query name.
func (m *Member) Query() string { return m.query }

// Ready reports whether sealed basic windows await the member's tail —
// the firing condition of the member's scheduler transition. It reads an
// atomic mirror only (the scheduler calls it under its own lock).
func (m *Member) Ready() bool { return m.pendingN.Load() > 0 }

// Fire drains the member's queue and runs its private tail over the
// batch, in generation order. The scheduler guarantees a single in-flight
// Fire per member. It returns the number of result sets emitted.
func (m *Member) Fire() int {
	m.mu.Lock()
	bws := m.pending
	m.pending = nil
	m.pendingN.Store(0)
	m.mu.Unlock()
	return m.fac.SharedFire(bws)
}
