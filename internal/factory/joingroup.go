package factory

import (
	"sync"
	"sync/atomic"
	"time"

	"datacell/internal/plan"
	"datacell/internal/window"
)

// JoinGroup is a shared execution group over a stream pair: the extension
// of Group to stream⋈stream joins (paper §Complex Queries). Two front
// ends — one per join side — drain, sequence and slice their streams
// once, no matter how many join queries consume the pair; sealed basic
// windows are fanned out to every member in one global interleaving (so
// all members pair left and right windows identically), each side's
// member pipelines share an operator DAG, and queries with the same join
// fingerprint share one pair cache: each (left, right) basic-window pair
// is joined once for the whole group and survives slides under the
// watermark eviction protocol of window.SharedPairCache.
type JoinGroup struct {
	cfg  JoinGroupConfig
	fes  [2]*frontEnd
	dags [2]*dag

	liveBufs   atomic.Int64
	windowsOut atomic.Int64
	memoHits   atomic.Int64
	memoMisses atomic.Int64

	cancels []func()

	// seqMu orders fan-outs across the two sides: every member observes
	// the same left/right interleaving, which is what makes the shared
	// pair cache and the members' emission sequences line up.
	seqMu  sync.Mutex
	genCtr [2]int64 // per-side group-global basic-window generations

	mu      sync.Mutex
	members []*JoinMember
	caches  map[string]*jcEntry
	// retiredComputed accumulates Computed() of pair caches whose last
	// member left, so the group's PairsComputed stays cumulative instead
	// of regressing when a fingerprint retires mid-session.
	retiredComputed int64
}

// Both group kinds satisfy the engine-facing contract.
var (
	_ SharedGroup = (*Group)(nil)
	_ SharedGroup = (*JoinGroup)(nil)
)

// jcEntry refcounts one shared pair cache (one per distinct join
// fingerprint among the members).
type jcEntry struct {
	pc   *window.SharedPairCache
	refs int
}

// JoinGroupConfig assembles a join group.
type JoinGroupConfig struct {
	// Key is the plan.JoinGroupKey the members agreed on.
	Key string
	// SchedGroup is the instance-unique scheduler group of the shard
	// transitions (both sides share it).
	SchedGroup string
	// Left and Right are the two windowed stream scans, in plan order.
	Left, Right *plan.ScanStream
	// Now supplies the clock in microseconds.
	Now func() int64
	// NotifyMember re-enables a member query's tail transition.
	NotifyMember func(query string)
	// NotifyShards re-enables the group's shard transitions.
	NotifyShards func()
}

// JoinMember is one join query's membership: a queue of (side, basic
// window) events in the group's global pairing order, drained by the
// query's tail transition. Incremental members and re-evaluation members
// run through the same machinery — the decomposition certifies that a
// re-evaluation join's full-window recompute equals the merge of cached
// basic-window pairs, so both modes share the fingerprint-keyed pair
// cache.
type JoinMember struct {
	g     *JoinGroup
	query string
	fac   *Factory

	leaf  [2]*dagNode // per-side pipeline leaves (nil: evaluate privately)
	pcKey string
	pc    *window.SharedPairCache
	parts int // the member's window extent, released from pc on Leave

	q memberQueue[joinEvent]
}

// joinEvent is one fanned-out basic window: its join side, the member's
// refcounted view, and the side's shared memo table.
type joinEvent struct {
	side int
	bw   *window.BW
	dw   *dagWin
}

// NewJoinGroup builds a join group over the two stream baskets. Like
// NewGroup it registers basket consumers immediately but subscribes to
// append notifications only after the first member joined.
func NewJoinGroup(cfg JoinGroupConfig) *JoinGroup {
	if cfg.Now == nil {
		cfg.Now = func() int64 { return time.Now().UnixMicro() }
	}
	g := &JoinGroup{cfg: cfg, caches: make(map[string]*jcEntry)}
	scans := [2]*plan.ScanStream{cfg.Left, cfg.Right}
	for side, sc := range scans {
		side := side
		g.fes[side] = newFrontEnd(sc.Stream.Basket, sc.Window, sc.Out)
		g.fes[side].sink = func(ready []*window.BW) map[string]bool {
			return g.fanout(side, ready)
		}
		g.dags[side] = newDAG()
	}
	return g
}

// SubscribeAppend wires the shard transitions to both baskets' append
// notifications.
func (g *JoinGroup) SubscribeAppend() {
	if g.cfg.NotifyShards == nil {
		return
	}
	g.cancels = append(g.cancels,
		g.cfg.Left.Stream.Basket.OnAppend(g.cfg.NotifyShards),
		g.cfg.Right.Stream.Basket.OnAppend(g.cfg.NotifyShards))
}

// Key reports the group key.
func (g *JoinGroup) Key() string { return g.cfg.Key }

// Kind reports the group kind ("join").
func (g *JoinGroup) Kind() string { return "join" }

// SchedGroup reports the instance-unique scheduler group name.
func (g *JoinGroup) SchedGroup() string { return g.cfg.SchedGroup }

// NumShards reports one side's shard count (one transition per (side,
// shard)).
func (g *JoinGroup) NumShards(side int) int { return len(g.fes[side].shards) }

// Shards implements SharedGroup: total shard transitions across sides.
func (g *JoinGroup) Shards() int { return len(g.fes[0].shards) + len(g.fes[1].shards) }

// Members reports the current member count.
func (g *JoinGroup) Members() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.members)
}

// LiveBufs reports sealed window buffers still referenced by a member.
func (g *JoinGroup) LiveBufs() int64 { return g.liveBufs.Load() }

// WindowsOut reports basic windows fanned out across both sides.
func (g *JoinGroup) WindowsOut() int64 { return g.windowsOut.Load() }

// DagNodes reports distinct operator nodes across both side DAGs.
func (g *JoinGroup) DagNodes() int { return g.dags[0].Nodes() + g.dags[1].Nodes() }

// MemoHits reports operator evaluations served from the shared memos.
func (g *JoinGroup) MemoHits() int64 { return g.memoHits.Load() }

// MemoMisses reports actual operator evaluations (memo fills).
func (g *JoinGroup) MemoMisses() int64 { return g.memoMisses.Load() }

// MergeStats implements SharedGroup; join groups merge through their
// shared pair caches (see PairStats), not group-owned merge rings.
func (g *JoinGroup) MergeStats() (int, int64, int64) { return 0, 0, 0 }

// PostStats implements SharedGroup; join groups do not share post-merge
// fragments yet (each member recomputes aggregates above the join over
// its merged pair set).
func (g *JoinGroup) PostStats() (int, int64, int64) { return 0, 0, 0 }

// PairStats reports the shared pair caches: distinct live caches, live
// cached pairs, and pair evaluations ever computed (cumulative across
// retired caches, so the counter never regresses mid-session).
func (g *JoinGroup) PairStats() (caches, pairs int, computed int64) {
	g.mu.Lock()
	entries := make([]*jcEntry, 0, len(g.caches))
	for _, e := range g.caches {
		entries = append(entries, e)
	}
	computed = g.retiredComputed
	g.mu.Unlock()
	for _, e := range entries {
		caches++
		pairs += e.pc.Pairs()
		computed += e.pc.Computed()
	}
	return caches, pairs, computed
}

// Join adds a join query as a member: its side pipelines register in the
// side DAGs (unless NoMemo), and it acquires the shared pair cache of its
// join fingerprint — created on first use — which replaces the factory's
// private cache. The member starts at the next sealed basic window of
// each side.
func (g *JoinGroup) Join(query string, fac *Factory) *JoinMember {
	m := &JoinMember{g: g, query: query, fac: fac}
	d := fac.cfg.Decomp
	if !fac.cfg.NoMemo {
		for side := 0; side < 2; side++ {
			p := d.Pipelines[side]
			if steps, ok := plan.PipelineSteps(p.Root, p.Scan); ok {
				m.leaf[side], _ = g.dags[side].register(steps, nil)
			}
		}
	}
	m.pcKey = plan.Fingerprint(d.Join)
	g.mu.Lock()
	e := g.caches[m.pcKey]
	if e == nil {
		e = &jcEntry{pc: window.NewSharedPairCache(d.Join)}
		g.caches[m.pcKey] = e
	}
	e.refs++
	m.pc = e.pc
	// Decompose requires the two sides' windows to slide in lockstep, so
	// their extents agree today — take the max anyway so the retention
	// horizon stays correct if that invariant ever loosens.
	m.parts = d.Pipelines[0].Scan.Window.Parts()
	if p := d.Pipelines[1].Scan.Window.Parts(); p > m.parts {
		m.parts = p
	}
	m.pc.Retain(m.parts)
	g.members = append(g.members, m)
	g.mu.Unlock()
	fac.SetPairCache(m.pc)
	return m
}

// Leave removes a member, releasing queued windows, DAG references and
// its pair-cache reference. A surviving cache recomputes its retention
// horizon from the remaining members' extents, so a departing wide
// member no longer pins pairs beyond the widest surviving ring. The
// caller must have removed the member's tail transition first
// (RemoveWait).
func (g *JoinGroup) Leave(m *JoinMember) {
	g.mu.Lock()
	for i, x := range g.members {
		if x == m {
			g.members = append(g.members[:i], g.members[i+1:]...)
			break
		}
	}
	if e := g.caches[m.pcKey]; e != nil {
		e.refs--
		if e.refs <= 0 {
			g.retiredComputed += e.pc.Computed()
			delete(g.caches, m.pcKey)
		} else {
			e.pc.Release(m.parts)
		}
	}
	g.mu.Unlock()
	for side := 0; side < 2; side++ {
		if m.leaf[side] != nil {
			g.dags[side].unregister(m.leaf[side])
		}
	}
	for _, ev := range m.q.closeDrain() {
		ev.bw.ReleaseData()
	}
}

// Close tears the group down after the last member left: cancels the
// append subscriptions and releases both sides' basket cursors. The
// caller must have removed the shard transitions first (RemoveWait).
func (g *JoinGroup) Close() {
	for _, cancel := range g.cancels {
		cancel()
	}
	g.cancels = nil
	g.fes[0].close()
	g.fes[1].close()
}

// ShardReady reports whether shard sh of side has work — the per-(side,
// shard) firing condition.
func (g *JoinGroup) ShardReady(side, sh int) bool { return g.fes[side].shardReady(sh) }

// FireShard is one firing of side's shard sh. Sealed windows wake the
// member tails; a raised event-time watermark re-notifies the group's
// shard transitions.
func (g *JoinGroup) FireShard(side, sh int) {
	notify, raised := g.fes[side].fireShard(sh)
	for q := range notify {
		g.cfg.NotifyMember(q)
	}
	if raised && g.cfg.NotifyShards != nil {
		g.cfg.NotifyShards()
	}
}

// fanout hands one side's sealed basic windows to every member. Callers
// hold that side's mergeMu; seqMu additionally serializes the two sides
// so every member's queue carries the same left/right interleaving, and
// basic-window generations are group-global per side — the shared pair
// cache keys pairs by them, so all members must agree.
func (g *JoinGroup) fanout(side int, ready []*window.BW) map[string]bool {
	g.mu.Lock()
	members := make([]*JoinMember, len(g.members))
	copy(members, g.members)
	g.mu.Unlock()

	needDag := g.dags[side].Nodes() > 0
	notify := make(map[string]bool, len(members))
	g.seqMu.Lock()
	defer g.seqMu.Unlock()
	for _, bw := range ready {
		g.windowsOut.Add(1)
		gen := g.genCtr[side]
		g.genCtr[side]++
		if len(members) == 0 {
			continue
		}
		g.liveBufs.Add(1)
		buf := window.NewSharedBuf(bw.Data, len(members), func() { g.liveBufs.Add(-1) })
		var dw *dagWin
		if needDag {
			dw = newDagWin()
		}
		for _, m := range members {
			mbw := &window.BW{Gen: gen, Data: buf.Data(), MaxArrival: bw.MaxArrival, Free: buf.Release}
			if !m.q.enqueue(joinEvent{side: side, bw: mbw, dw: dw}) {
				mbw.ReleaseData() // member left between snapshot and enqueue
				continue
			}
			notify[m.query] = true
		}
	}
	return notify
}

// Advance closes time-window buckets up to the watermark on both sides.
func (g *JoinGroup) Advance(watermark int64) {
	for _, fe := range g.fes {
		for q := range fe.advance(watermark) {
			g.cfg.NotifyMember(q)
		}
	}
}

// Query reports the member's query name.
func (m *JoinMember) Query() string { return m.query }

// Ready reports whether fanned-out basic windows await the member's tail.
func (m *JoinMember) Ready() bool { return m.q.ready() }

// Fire drains the member's queue in the group's pairing order: each
// window's side pipeline resolves through the shared DAG memo (one
// evaluation per distinct operator across all members), then the
// factory's join tail pushes it into the side ring and merges the live
// pair set through the shared pair cache. It returns the number of result
// sets emitted.
func (m *JoinMember) Fire() int {
	items := m.q.drain()
	evs := make([]SharedBW, 0, len(items))
	for _, ev := range items {
		if ev.dw != nil && m.leaf[ev.side] != nil {
			ev.bw.Out = m.g.dags[ev.side].eval(ev.dw, m.leaf[ev.side], ev.bw.Data,
				&m.g.memoHits, &m.g.memoMisses)
		}
		evs = append(evs, SharedBW{Input: ev.side, BW: ev.bw})
	}
	return m.fac.SharedFire(evs)
}
