package factory

import (
	"sync"
	"sync/atomic"
	"time"

	"datacell/internal/plan"
	"datacell/internal/window"
)

// JoinGroup is a shared execution group over a stream pair: the extension
// of Group to stream⋈stream joins (paper §Complex Queries). Two front
// ends — one per join side — drain, sequence and slice their streams
// once, no matter how many join queries consume the pair; sealed basic
// windows are fanned out to every member in one global interleaving (so
// all members pair left and right windows identically), each side's
// member pipelines share an operator DAG, and queries with the same join
// fingerprint share one pair cache: each (left, right) basic-window pair
// is joined once for the whole group and survives slides under the
// watermark eviction protocol of window.SharedPairCache.
type JoinGroup struct {
	cfg     JoinGroupConfig
	fes     [2]*frontEnd
	dags    [2]*dag
	postDag *dag // post-merge trie, rooted at each class's merged join view

	liveBufs    atomic.Int64
	windowsOut  atomic.Int64
	memoHits    atomic.Int64
	memoMisses  atomic.Int64
	mergeHits   atomic.Int64 // merged join views served from a sibling's evaluation
	mergeMisses atomic.Int64 // actual merged-view evaluations
	postHits    atomic.Int64 // post-merge fragments served from the trie memo
	postMisses  atomic.Int64 // actual post-merge fragment evaluations

	cancels []func()

	// seqMu orders fan-outs across the two sides: every member observes
	// the same left/right interleaving, which is what makes the shared
	// pair cache and the members' emission sequences line up.
	seqMu  sync.Mutex
	genCtr [2]int64 // per-side group-global basic-window generations

	mu      sync.Mutex
	members []*JoinMember
	caches  map[string]*jcEntry
	classes map[string]*jmergeClass // join merge classes by plan.JoinMergeKey
	// retiredComputed accumulates Computed() of pair caches whose last
	// member left, so the group's PairsComputed stays cumulative instead
	// of regressing when a fingerprint retires mid-session.
	retiredComputed int64
}

// Both group kinds satisfy the engine-facing contract.
var (
	_ SharedGroup = (*Group)(nil)
	_ SharedGroup = (*JoinGroup)(nil)
)

// jcEntry refcounts one shared pair cache (one per distinct join
// fingerprint among the members).
type jcEntry struct {
	pc   *window.SharedPairCache
	refs int
}

// JoinGroupConfig assembles a join group.
type JoinGroupConfig struct {
	// Key is the plan.JoinGroupKey the members agreed on.
	Key string
	// SchedGroup is the instance-unique scheduler group of the shard
	// transitions (both sides share it).
	SchedGroup string
	// Left and Right are the two windowed stream scans, in plan order.
	Left, Right *plan.ScanStream
	// Now supplies the clock in microseconds.
	Now func() int64
	// NotifyMember re-enables a member query's tail transition.
	NotifyMember func(query string)
	// NotifyShards re-enables the group's shard transitions.
	NotifyShards func()
	// Remote marks fabric-fed sides, indexed like the scans (0 = Left).
	// A remote side's shard front ends — basket cursors, slicers, per-shard
	// firings — run in worker processes, and its sealed epoch fragments
	// arrive via OfferRemote; only the min-watermark merger runs here. The
	// two sides are independent: a join may pair a remote stream with a
	// local one, and the group's pairing, DAGs, merge classes and pair
	// caches work unchanged on remote windows.
	Remote [2]*RemoteSource
}

// JoinMember is one join query's membership: a queue of (side, basic
// window) events in the group's global pairing order, drained by the
// query's tail transition. Incremental members and re-evaluation members
// run through the same machinery — the decomposition certifies that a
// re-evaluation join's full-window recompute equals the merge of cached
// basic-window pairs, so both modes share the fingerprint-keyed pair
// cache.
type JoinMember struct {
	g     *JoinGroup
	query string
	fac   *Factory

	leaf  [2]*dagNode // per-side pipeline leaves (nil: evaluate privately)
	pcKey string
	pc    *window.SharedPairCache
	parts int // the member's window extent, released from pc on Leave

	// Shared-merge state. classKey is the member's plan.JoinMergeKey (""
	// when the member merges privately: non-linearizing pipelines, NoMemo,
	// or NoSharedMerge). postLeaf is the member's post-merge chain in the
	// group's post-merge trie (nil when the plan has no post fragment, or
	// when it did not linearize — hasPost distinguishes the two). seen
	// counts windows fanned to this member per side — touched only under
	// the group's seqMu — so a late joiner is served by merge cells only
	// once its own rings are warm: its first full window must cover
	// exactly the windows it received, as it would alone.
	classKey string
	postLeaf *dagNode
	hasPost  bool
	seen     [2]int64

	q memberQueue[joinEvent]
}

// joinEvent is one fanned-out basic window: its join side, the member's
// refcounted view, the side's shared memo table, and — for warm merge-
// class members — the window's merged-join-view memo cell.
type joinEvent struct {
	side int
	bw   *window.BW
	dw   *dagWin
	cell *jmergeCell
}

// NewJoinGroup builds a join group over the two stream baskets. Like
// NewGroup it registers basket consumers immediately but subscribes to
// append notifications only after the first member joined.
func NewJoinGroup(cfg JoinGroupConfig) *JoinGroup {
	if cfg.Now == nil {
		cfg.Now = func() int64 { return time.Now().UnixMicro() }
	}
	g := &JoinGroup{cfg: cfg, postDag: newDAG(),
		caches:  make(map[string]*jcEntry),
		classes: make(map[string]*jmergeClass)}
	scans := [2]*plan.ScanStream{cfg.Left, cfg.Right}
	for side, sc := range scans {
		side := side
		if r := cfg.Remote[side]; r != nil {
			g.fes[side] = newRemoteFrontEnd(r.Shards, sc.Window, sc.Out)
		} else {
			g.fes[side] = newFrontEnd(sc.Stream.Basket, sc.Window, sc.Out)
		}
		g.fes[side].sink = func(ready []*window.BW) map[string]bool {
			return g.fanout(side, ready)
		}
		g.dags[side] = newDAG()
	}
	return g
}

// SubscribeAppend wires the shard transitions to the local sides' basket
// append notifications. Remote sides have no shard transitions to wake —
// their windows arrive over the wire.
func (g *JoinGroup) SubscribeAppend() {
	if g.cfg.NotifyShards == nil {
		return
	}
	scans := [2]*plan.ScanStream{g.cfg.Left, g.cfg.Right}
	for side, sc := range scans {
		if g.cfg.Remote[side] != nil {
			continue
		}
		g.cancels = append(g.cancels, sc.Stream.Basket.OnAppend(g.cfg.NotifyShards))
	}
}

// Key reports the group key.
func (g *JoinGroup) Key() string { return g.cfg.Key }

// Kind reports the group kind ("join").
func (g *JoinGroup) Kind() string { return "join" }

// SchedGroup reports the instance-unique scheduler group name.
func (g *JoinGroup) SchedGroup() string { return g.cfg.SchedGroup }

// NumShards reports one side's shard count (one transition per (side,
// shard)).
func (g *JoinGroup) NumShards(side int) int { return len(g.fes[side].shards) }

// Shards implements SharedGroup: the total shard count across both sides
// — local shard transitions, or, for a fabric-fed side, the remote shards
// whose fragments its merger assembles.
func (g *JoinGroup) Shards() int {
	total := 0
	for side := range g.fes {
		if r := g.cfg.Remote[side]; r != nil {
			total += r.Shards
		} else {
			total += len(g.fes[side].shards)
		}
	}
	return total
}

// Members reports the current member count.
func (g *JoinGroup) Members() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.members)
}

// LiveBufs reports sealed window buffers still referenced by a member.
func (g *JoinGroup) LiveBufs() int64 { return g.liveBufs.Load() }

// WindowsOut reports basic windows fanned out across both sides.
func (g *JoinGroup) WindowsOut() int64 { return g.windowsOut.Load() }

// DagNodes reports distinct operator nodes across both side DAGs.
func (g *JoinGroup) DagNodes() int { return g.dags[0].Nodes() + g.dags[1].Nodes() }

// MemoHits reports operator evaluations served from the shared memos.
func (g *JoinGroup) MemoHits() int64 { return g.memoHits.Load() }

// MemoMisses reports actual operator evaluations (memo fills).
func (g *JoinGroup) MemoMisses() int64 { return g.memoMisses.Load() }

// MergeStats reports the active join merge classes (group-owned ring
// pairs serving two or more members) and the merged-view memo counters:
// hits are merged join views served from a sibling's evaluation, misses
// actual merged-view evaluations — for N class members, one miss and N-1
// hits per fanned-out window once everyone is warm.
func (g *JoinGroup) MergeStats() (classes int, hits, misses int64) {
	g.mu.Lock()
	for _, mc := range g.classes {
		if mc.active {
			classes++
		}
	}
	g.mu.Unlock()
	return classes, g.mergeHits.Load(), g.mergeMisses.Load()
}

// PostStats reports the post-merge trie: distinct post-merge fragment
// nodes (HAVING filters, final aggregates, sorts, limits above the join)
// registered across members and the trie's memo counters.
func (g *JoinGroup) PostStats() (nodes int, hits, misses int64) {
	return g.postDag.Nodes(), g.postHits.Load(), g.postMisses.Load()
}

// PairStats reports the shared pair caches: distinct live caches, live
// cached pairs, and pair evaluations ever computed (cumulative across
// retired caches, so the counter never regresses mid-session).
func (g *JoinGroup) PairStats() (caches, pairs int, computed int64) {
	g.mu.Lock()
	entries := make([]*jcEntry, 0, len(g.caches))
	for _, e := range g.caches {
		entries = append(entries, e)
	}
	computed = g.retiredComputed
	g.mu.Unlock()
	for _, e := range entries {
		caches++
		pairs += e.pc.Pairs()
		computed += e.pc.Computed()
	}
	return caches, pairs, computed
}

// Join adds a join query as a member: its side pipelines register in the
// side DAGs (unless NoMemo), and it acquires the shared pair cache of its
// join fingerprint — created on first use — which replaces the factory's
// private cache. The member starts at the next sealed basic window of
// each side.
func (g *JoinGroup) Join(query string, fac *Factory) *JoinMember {
	m := &JoinMember{g: g, query: query, fac: fac}
	d := fac.cfg.Decomp
	piped := !fac.cfg.NoMemo
	if !fac.cfg.NoMemo {
		for side := 0; side < 2; side++ {
			if steps, ok := d.StepsMemo(side); ok {
				m.leaf[side], _ = g.dags[side].register(steps, nil, "")
			} else {
				piped = false
			}
		}
	}
	m.pcKey = d.JoinFingerprintMemo()
	var classKey string
	if piped && !fac.cfg.NoSharedMerge {
		// Both side pipelines linearized into the side DAGs, so the merged
		// join view is a deterministic function of the class rings — the
		// member can resolve it from the class's shared merge cells. The
		// class key embeds the join fingerprint, which covers both side
		// pipelines: class siblings necessarily share this pair cache too.
		classKey, _ = d.JoinMergeKeyMemo()
	}
	if classKey != "" && d.Post != nil {
		m.hasPost = true
		if psteps, ok := d.PostStepsMemo(classKey); ok {
			m.postLeaf, _ = g.postDag.register(psteps, nil, "")
		}
	}
	g.mu.Lock()
	e := g.caches[m.pcKey]
	if e == nil {
		e = &jcEntry{pc: window.NewSharedPairCache(d.Join)}
		g.caches[m.pcKey] = e
	}
	e.refs++
	m.pc = e.pc
	// Decompose requires the two sides' windows to slide in lockstep, so
	// their extents agree today — take the max anyway so the retention
	// horizon stays correct if that invariant ever loosens.
	m.parts = d.Pipelines[0].Scan.Window.Parts()
	if p := d.Pipelines[1].Scan.Window.Parts(); p > m.parts {
		m.parts = p
	}
	m.pc.Retain(m.parts)
	if classKey != "" {
		m.classKey = classKey
		mc := g.classes[classKey]
		if mc == nil {
			mc = &jmergeClass{key: classKey, parts: m.parts, pc: e.pc, leaf: m.leaf}
			g.classes[classKey] = mc
		}
		mc.refs++
		if mc.refs >= 2 && !mc.active {
			// The rings start (or, after a drop back to one member,
			// restart) filling from the next fanned-out window.
			mc.active = true
			mc.reopen()
		}
	}
	g.members = append(g.members, m)
	g.mu.Unlock()
	fac.SetPairCache(m.pc)
	return m
}

// Leave removes a member, releasing queued windows, DAG references and
// its pair-cache reference. A surviving cache recomputes its retention
// horizon from the remaining members' extents, so a departing wide
// member no longer pins pairs beyond the widest surviving ring. The
// caller must have removed the member's tail transition first
// (RemoveWait).
func (g *JoinGroup) Leave(m *JoinMember) {
	var closeClass *jmergeClass
	g.mu.Lock()
	for i, x := range g.members {
		if x == m {
			g.members = append(g.members[:i], g.members[i+1:]...)
			break
		}
	}
	if m.classKey != "" {
		if mc := g.classes[m.classKey]; mc != nil {
			mc.refs--
			switch {
			case mc.refs <= 0:
				delete(g.classes, m.classKey)
				closeClass = mc
			case mc.refs == 1 && mc.active:
				// Sharing is over: release the ring pair so a lone survivor
				// stops pinning raw window buffers (its private ring still
				// merges every window). A later second member reactivates
				// the class and re-warms the rings.
				mc.active = false
				closeClass = mc
			}
		}
	}
	if e := g.caches[m.pcKey]; e != nil {
		e.refs--
		if e.refs <= 0 {
			g.retiredComputed += e.pc.Computed()
			delete(g.caches, m.pcKey)
		} else {
			e.pc.Release(m.parts)
		}
	}
	g.mu.Unlock()
	if closeClass != nil {
		closeClass.close()
	}
	if m.postLeaf != nil {
		g.postDag.unregister(m.postLeaf)
	}
	for side := 0; side < 2; side++ {
		if m.leaf[side] != nil {
			g.dags[side].unregister(m.leaf[side])
		}
	}
	for _, ev := range m.q.closeDrain() {
		ev.bw.ReleaseData()
	}
}

// Close tears the group down after the last member left: cancels the
// append subscriptions, releases the local sides' basket cursors, and
// retires the remote sides' fabric specs. The caller must have removed
// the shard transitions first (RemoveWait).
func (g *JoinGroup) Close() {
	for _, cancel := range g.cancels {
		cancel()
	}
	g.cancels = nil
	for side := range g.fes {
		g.fes[side].close()
		if r := g.cfg.Remote[side]; r != nil && r.Close != nil {
			r.Close()
		}
	}
}

// ShardReady reports whether shard sh of side has work — the per-(side,
// shard) firing condition.
func (g *JoinGroup) ShardReady(side, sh int) bool { return g.fes[side].shardReady(sh) }

// FireShard is one firing of side's shard sh. Sealed windows wake the
// member tails; a raised event-time watermark re-notifies the group's
// shard transitions.
func (g *JoinGroup) FireShard(side, sh int) {
	notify, raised := g.fes[side].fireShard(sh)
	for q := range notify {
		g.cfg.NotifyMember(q)
	}
	if raised && g.cfg.NotifyShards != nil {
		g.cfg.NotifyShards()
	}
}

// fanout hands one side's sealed basic windows to every member. Callers
// hold that side's mergeMu; seqMu additionally serializes the two sides
// so every member's queue carries the same left/right interleaving, and
// basic-window generations are group-global per side — the shared pair
// cache keys pairs by them, so all members must agree.
func (g *JoinGroup) fanout(side int, ready []*window.BW) map[string]bool {
	g.mu.Lock()
	members := make([]*JoinMember, len(g.members))
	copy(members, g.members)
	var classes []*jmergeClass
	for _, mc := range g.classes {
		if mc.active {
			classes = append(classes, mc)
		}
	}
	g.mu.Unlock()

	needDag := g.dags[side].Nodes() > 0
	notify := make(map[string]bool, len(members))
	g.seqMu.Lock()
	defer g.seqMu.Unlock()
	for _, bw := range ready {
		g.windowsOut.Add(1)
		gen := g.genCtr[side]
		g.genCtr[side]++
		if len(members) == 0 {
			continue
		}
		g.liveBufs.Add(1)
		buf := window.NewSharedBuf(bw.Data, len(members)+len(classes), func() { g.liveBufs.Add(-1) })
		var dw *dagWin
		if needDag {
			dw = newDagWin()
		}
		var cells map[string]*jmergeCell
		if len(classes) > 0 {
			cells = make(map[string]*jmergeCell, len(classes))
			for _, mc := range classes {
				if cell := mc.push(side, gen, dw, buf.Data(), buf.Release); cell != nil {
					cells[mc.key] = cell
				}
			}
		}
		for _, m := range members {
			mbw := &window.BW{Gen: gen, Data: buf.Data(), MaxArrival: bw.MaxArrival, Free: buf.Release}
			ev := joinEvent{side: side, bw: mbw, dw: dw}
			if m.classKey != "" {
				// The cell serves this member only once its own rings are
				// warm: a late joiner's first full window must cover exactly
				// the windows it received, as it would alone.
				m.seen[side]++
				if cell := cells[m.classKey]; cell != nil &&
					m.seen[0] >= int64(cell.mc.parts) && m.seen[1] >= int64(cell.mc.parts) {
					ev.cell = cell
				}
			}
			if !m.q.enqueue(ev) {
				mbw.ReleaseData() // member left between snapshot and enqueue
				continue
			}
			notify[m.query] = true
		}
	}
	return notify
}

// OfferRemote feeds one remote shard's freshly flushed epoch fragments
// and watermark into side's merger — the fabric-fed counterpart of a
// (side, shard) FireShard delivery. Basic windows sealed by the delivery
// fan out into the group's global pairing order exactly as local ones do
// (fanout takes seqMu, so remote and local sides interleave
// consistently). Safe for concurrent calls from different worker
// connections; out-of-range sides or shards are dropped.
func (g *JoinGroup) OfferRemote(side, shard int, frags []*window.Frag, wm int64) {
	if side < 0 || side > 1 {
		return
	}
	r := g.cfg.Remote[side]
	if r == nil || shard < 0 || shard >= r.Shards {
		return
	}
	fe := g.fes[side]
	fe.mergeMu.Lock()
	ready := fe.merge.Offer(shard, frags, wm)
	var notify map[string]bool
	if len(ready) > 0 {
		notify = fe.sink(ready)
	}
	fe.mergeMu.Unlock()
	for q := range notify {
		g.cfg.NotifyMember(q)
	}
}

// Advance closes time-window buckets up to the watermark on both sides.
// Fabric-fed sides forward the watermark to the worker processes, whose
// slicers own the open buckets; the flushed fragments come back through
// OfferRemote.
func (g *JoinGroup) Advance(watermark int64) {
	for side, fe := range g.fes {
		if r := g.cfg.Remote[side]; r != nil {
			if r.Advance != nil {
				r.Advance(watermark)
			}
			continue
		}
		for q := range fe.advance(watermark) {
			g.cfg.NotifyMember(q)
		}
	}
}

// Query reports the member's query name.
func (m *JoinMember) Query() string { return m.query }

// Ready reports whether fanned-out basic windows await the member's tail.
func (m *JoinMember) Ready() bool { return m.q.ready() }

// Fire drains the member's queue in the group's pairing order: each
// window's side pipeline resolves through the shared DAG memo (one
// evaluation per distinct operator across all members). Merge-class
// members then resolve the merged join view through the window's merge
// cell (one pair-cache maintenance + merge evaluation per fanned-out
// window across the class) and their post-merge fragment through the
// post-merge trie, so the factory tail only emits; everyone else pushes
// into the side ring and merges the live pair set through the shared pair
// cache privately. It returns the number of result sets emitted.
func (m *JoinMember) Fire() int {
	items := m.q.drain()
	evs := make([]SharedBW, 0, len(items))
	for _, ev := range items {
		if ev.dw != nil && m.leaf[ev.side] != nil {
			ev.bw.Out = m.g.dags[ev.side].eval(ev.dw, m.leaf[ev.side], ev.bw.Data,
				&m.g.memoHits, &m.g.memoMisses)
		}
		if ev.cell != nil {
			merged, pdw, computed := ev.cell.eval(m.g)
			if computed {
				m.g.mergeMisses.Add(1)
			} else {
				m.g.mergeHits.Add(1)
			}
			switch {
			case m.postLeaf != nil:
				ev.bw.Final = m.g.postDag.eval(pdw, m.postLeaf, merged, &m.g.postHits, &m.g.postMisses)
			case m.hasPost:
				// Post fragment exists but did not linearize: the tail runs
				// it privately over the shared merged view.
				ev.bw.Merged = merged
			default:
				ev.bw.Final = merged
			}
		}
		evs = append(evs, SharedBW{Input: ev.side, BW: ev.bw})
	}
	return m.fac.SharedFire(evs)
}
