package factory

import (
	"sync"
	"sync/atomic"

	"datacell/internal/bat"
	"datacell/internal/kernel"
	"datacell/internal/plan"
)

// dag is an execution group's shared operator DAG: a trie of pipeline
// operators keyed by canonical fingerprint (plan.Fingerprint). Every
// member's per-basic-window chain — filters, projections, static-table
// joins, and the optional partial-aggregate stage — registers as a path;
// members with identical prefixes share the path's nodes, so per sealed
// basic window each distinct operator evaluates exactly once and the
// member tails fan out only where their plans diverge. The nodes are not
// separately scheduled: whichever member tail transition reaches a node
// first evaluates it (under the window's memo latch) and siblings reuse
// the memoized result, which keeps member-granular pause/drop intact — a
// paused member never blocks a sibling, it just finds more memo hits when
// it catches up.
//
// Evaluation is fused (internal/kernel): memo cells hold lazy views —
// a filter node's cell is just a candidate list over its parent's view,
// and an aggregate node consumes its parent's view directly, evaluating
// keys and arguments under the selection. A view materializes (latched,
// once across all members) only when some member's chain actually ends
// at that node and needs the dense chunk for its tail. Bytes are
// identical to the former chunk-per-node memo: materializing a filter
// view IS the FetchChunk the unfused step performed eagerly.
type dag struct {
	mu    sync.Mutex
	nodes map[string]*dagNode
}

// dagNode is one distinct operator in the DAG. parent == nil means the
// node consumes the raw basic window (the shared scan front end).
type dagNode struct {
	fp     string
	parent *dagNode
	step   plan.PipelineStep // the operator; unset for aggregate nodes
	agg    *plan.Aggregate   // partial-aggregate nodes
	refs   int               // registered paths through this node
	// hint is the newest observed output cardinality of an aggregate
	// node, pre-sizing the next window's grouping hash table. Capacity
	// never affects the grouping, so the hint is best-effort racy.
	hint atomic.Int64
}

func newDAG() *dag { return &dag{nodes: make(map[string]*dagNode)} }

// register adds a member's pipeline chain (and optional partial-aggregate
// stage) to the DAG, reusing nodes whose cumulative fingerprints match.
// It returns the member's pipeline leaf and aggregate node (either may be
// nil: an empty chain means the member consumes raw basic windows).
// Each registered path holds one reference on every node it traverses;
// unregister releases them.
func (d *dag) register(steps []plan.PipelineStep, agg *plan.Aggregate, aggFp string) (leaf, aggNode *dagNode) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, s := range steps {
		n := d.nodes[s.Fp]
		if n == nil {
			n = &dagNode{fp: s.Fp, parent: leaf, step: s}
			d.nodes[s.Fp] = n
		}
		leaf = n
	}
	d.retain(leaf)
	if agg != nil {
		// aggFp is the caller's memoized render (plan-cache-shared plans
		// pay it once); fall back to rendering here when absent.
		fp := aggFp
		if fp == "" {
			childFp := "raw"
			if leaf != nil {
				childFp = leaf.fp
			}
			fp = plan.FingerprintAggregate(agg, childFp)
		}
		n := d.nodes[fp]
		if n == nil {
			n = &dagNode{fp: fp, parent: leaf, agg: agg}
			d.nodes[fp] = n
		}
		aggNode = n
		d.retain(aggNode)
	}
	return leaf, aggNode
}

// retain adds one reference along the path from n to the root.
func (d *dag) retain(n *dagNode) {
	for ; n != nil; n = n.parent {
		n.refs++
	}
}

// unregister releases one path reference from n upward, pruning nodes no
// member reaches anymore.
func (d *dag) unregister(n *dagNode) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for ; n != nil; n = n.parent {
		n.refs--
		if n.refs <= 0 {
			delete(d.nodes, n.fp)
		}
	}
}

// Nodes reports the number of distinct operator nodes registered.
func (d *dag) Nodes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.nodes)
}

// dagWin is one sealed basic window's memo table, shared by every member
// the window was fanned out to. Cells latch with sync.Once: concurrent
// member tails needing the same node compute it once and the rest wait
// for (then reuse) the memoized view. Memoized views reference the raw
// window's shared buffer only until the batch of member firings that
// carries this dagWin completes; whatever a member keeps longer (ring
// contents) is a materialized immutable chunk, so buffer lifetime stays
// governed by the refcounted fanout exactly as before.
type dagWin struct {
	mu   sync.Mutex
	memo map[*dagNode]*memoCell
}

type memoCell struct {
	once sync.Once
	out  *kernel.View
}

func newDagWin() *dagWin { return &dagWin{memo: make(map[*dagNode]*memoCell)} }

func (w *dagWin) cell(n *dagNode) *memoCell {
	w.mu.Lock()
	c := w.memo[n]
	if c == nil {
		c = &memoCell{}
		w.memo[n] = c
	}
	w.mu.Unlock()
	return c
}

// eval returns node n's output for the basic window, computing it at most
// once per window. raw is the caller's view of the window's raw tuples
// (still referenced by the calling member, so it is valid for the whole
// evaluation). misses counts actual operator evaluations; hits counts
// member requests served entirely from the memo — i.e. work a sibling
// already did. A member's own recursive parent lookups are deliberately
// not hits (a lone member resolving filter then aggregate must report
// zero sharing), which is what makes hits/(hits+misses) an honest
// cross-query sharing rate. The leaf's view materializes here (latched in
// the view, so siblings ending at the same node share one
// reconstruction); interior filter nodes that only feed aggregates never
// materialize at all.
func (d *dag) eval(w *dagWin, n *dagNode, raw *bat.Chunk, hits, misses *atomic.Int64) *bat.Chunk {
	if n == nil {
		return raw
	}
	out, computed := d.evalNode(w, n, raw, misses)
	if !computed {
		hits.Add(1)
	}
	return out.Materialize()
}

// evalNode resolves n through the window memo, recursing parent-first.
// computed reports whether THIS call performed n's evaluation (as opposed
// to finding it latched).
func (d *dag) evalNode(w *dagWin, n *dagNode, raw *bat.Chunk, misses *atomic.Int64) (out *kernel.View, computed bool) {
	if n == nil {
		return kernel.NewView(raw), false
	}
	c := w.cell(n)
	c.once.Do(func() {
		in, _ := d.evalNode(w, n.parent, raw, misses)
		if n.agg != nil {
			part := kernel.Aggregate(n.agg, in, int(n.hint.Load()))
			n.hint.Store(int64(part.Rows()))
			c.out = kernel.NewView(part)
		} else {
			c.out = kernel.ApplyStep(n.step, in)
		}
		misses.Add(1)
		computed = true
	})
	return c.out, computed
}
