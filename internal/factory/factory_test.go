package factory

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/catalog"
	"datacell/internal/emitter"
	"datacell/internal/plan"
	"datacell/internal/sql"
)

// harness wires one factory to a fresh catalog with streams
// s(ts TIMESTAMP, k INT, v FLOAT) and r(ts TIMESTAMP, k INT, w INT) and a
// dimension table dim(k INT, name STRING).
type harness struct {
	cat  *catalog.Catalog
	fac  *Factory
	out  *emitter.Channel
	sb   *basket.Sharded
	rb   *basket.Sharded
	now  int64
	dimN int
}

func newHarness(t *testing.T, src string, mode Mode) *harness {
	t.Helper()
	h := &harness{cat: catalog.New(), now: 1}
	s, err := h.cat.CreateStream("s", bat.NewSchema(
		[]string{"ts", "k", "v"}, []bat.Kind{bat.Time, bat.Int, bat.Float}))
	if err != nil {
		t.Fatal(err)
	}
	r, err := h.cat.CreateStream("r", bat.NewSchema(
		[]string{"ts", "k", "w"}, []bat.Kind{bat.Time, bat.Int, bat.Int}))
	if err != nil {
		t.Fatal(err)
	}
	dim, err := h.cat.CreateTable("dim", bat.NewSchema(
		[]string{"k", "name"}, []bat.Kind{bat.Int, bat.Str}))
	if err != nil {
		t.Fatal(err)
	}
	dc := bat.NewChunk(dim.Schema())
	for i := 0; i < 4; i++ {
		_ = dc.AppendRow(bat.IntValue(int64(i)), bat.StrValue(fmt.Sprintf("k%d", i)))
	}
	_ = dim.Append(dc)
	h.dimN = 4
	h.sb, h.rb = s.Basket, r.Basket

	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	bound, err := plan.Bind(h.cat, stmt.(*sql.SelectStmt))
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	opt := plan.Optimize(bound)
	cfg := Config{
		Name: "q",
		Full: opt,
		Mode: mode,
		Now:  func() int64 { h.now++; return h.now },
	}
	if mode == Incremental {
		d, err := plan.Decompose(opt)
		if err != nil {
			t.Fatalf("decompose: %v", err)
		}
		cfg.Decomp = d
	}
	h.out = emitter.NewChannel(4096)
	cfg.Emit = h.out

	bind := map[*plan.ScanStream]*basket.Sharded{}
	for _, sc := range plan.Streams(opt) {
		switch sc.Stream.Name {
		case "s":
			bind[sc] = h.sb
		case "r":
			bind[sc] = h.rb
		}
	}
	fac, err := New(cfg, bind)
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	h.fac = fac
	return h
}

// pushS appends rows (ts, k, v) to stream s and steps the factory.
func (h *harness) pushS(t *testing.T, rows ...[3]int64) {
	t.Helper()
	s, _ := h.cat.Stream("s")
	c := bat.NewChunk(s.Schema())
	for _, r := range rows {
		_ = c.AppendRow(bat.TimeValue(r[0]), bat.IntValue(r[1]), bat.FloatValue(float64(r[2])))
	}
	if err := h.sb.Append(c, h.now); err != nil {
		t.Fatal(err)
	}
	h.fac.Step()
}

func (h *harness) pushR(t *testing.T, rows ...[3]int64) {
	t.Helper()
	r, _ := h.cat.Stream("r")
	c := bat.NewChunk(r.Schema())
	for _, row := range rows {
		_ = c.AppendRow(bat.TimeValue(row[0]), bat.IntValue(row[1]), bat.IntValue(row[2]))
	}
	if err := h.rb.Append(c, h.now); err != nil {
		t.Fatal(err)
	}
	h.fac.Step()
}

// results drains the emitter, returning each result as sorted row strings.
func (h *harness) results() [][]string {
	h.out.Close()
	var out [][]string
	for r := range h.out.Out() {
		rows := make([]string, r.Chunk.Rows())
		for i := range rows {
			vals := r.Chunk.Row(i)
			parts := make([]string, len(vals))
			for j, v := range vals {
				parts[j] = v.String()
			}
			rows[i] = fmt.Sprint(parts)
		}
		sort.Strings(rows)
		out = append(out, rows)
	}
	return out
}

func TestNonWindowedBatchQuery(t *testing.T) {
	h := newHarness(t, "SELECT k, v FROM s WHERE v > 10.0", Reeval)
	h.pushS(t, [3]int64{1, 1, 5}, [3]int64{2, 2, 20})
	h.pushS(t, [3]int64{3, 3, 30})
	res := h.results()
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2", len(res))
	}
	if len(res[0]) != 1 || len(res[1]) != 1 {
		t.Errorf("rows = %v", res)
	}
}

func TestWindowedReeval(t *testing.T) {
	h := newHarness(t, "SELECT sum(v) AS s FROM s [SIZE 4 SLIDE 2]", Reeval)
	h.pushS(t, [3]int64{1, 1, 1}, [3]int64{2, 1, 2}, [3]int64{3, 1, 3})
	// Only 1 complete bw (2 tuples); window not full yet.
	h.pushS(t, [3]int64{4, 1, 4}) // second bw complete → window [1,2,3,4]
	h.pushS(t, [3]int64{5, 1, 5}, [3]int64{6, 1, 6})
	// third bw → window [3,4,5,6]
	res := h.results()
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2: %v", len(res), res)
	}
	if res[0][0] != "[10]" || res[1][0] != "[18]" {
		t.Errorf("sums = %v", res)
	}
}

func TestWindowedIncrementalAggregate(t *testing.T) {
	h := newHarness(t,
		"SELECT k, sum(v) AS s, count(*) AS n FROM s [SIZE 4 SLIDE 2] GROUP BY k", Incremental)
	h.pushS(t, [3]int64{1, 1, 1}, [3]int64{2, 2, 2})
	h.pushS(t, [3]int64{3, 1, 3}, [3]int64{4, 2, 4})
	h.pushS(t, [3]int64{5, 1, 5}, [3]int64{6, 1, 6})
	res := h.results()
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2: %v", len(res), res)
	}
	want0 := []string{"[1 4 2]", "[2 6 2]"}
	sort.Strings(want0)
	if fmt.Sprint(res[0]) != fmt.Sprint(want0) {
		t.Errorf("window 1 = %v, want %v", res[0], want0)
	}
	// Window 2 = tuples 3..6: k=1 → 3+5+6=14 (n=3), k=2 → 4 (n=1).
	want1 := []string{"[1 14 3]", "[2 4 1]"}
	sort.Strings(want1)
	if fmt.Sprint(res[1]) != fmt.Sprint(want1) {
		t.Errorf("window 2 = %v, want %v", res[1], want1)
	}
}

func TestIncrementalNoAggregate(t *testing.T) {
	h := newHarness(t, "SELECT k FROM s [SIZE 2 SLIDE 1] WHERE v >= 2.0", Incremental)
	h.pushS(t, [3]int64{1, 1, 1})
	h.pushS(t, [3]int64{2, 2, 2}) // window [t1,t2] → k=2
	h.pushS(t, [3]int64{3, 3, 3}) // window [t2,t3] → k=2,3
	res := h.results()
	if len(res) != 2 {
		t.Fatalf("results = %d: %v", len(res), res)
	}
	if len(res[0]) != 1 || len(res[1]) != 2 {
		t.Errorf("res = %v", res)
	}
}

func TestIncrementalStreamTableJoin(t *testing.T) {
	h := newHarness(t, `
		SELECT d.name, count(*) AS n FROM s [SIZE 2 SLIDE 1]
		JOIN dim d ON s.k = d.k GROUP BY d.name`, Incremental)
	h.pushS(t, [3]int64{1, 1, 1})
	h.pushS(t, [3]int64{2, 1, 2})
	res := h.results()
	if len(res) != 1 {
		t.Fatalf("results = %d: %v", len(res), res)
	}
	if res[0][0] != "[k1 2]" {
		t.Errorf("res = %v", res)
	}
}

func TestIncrementalStreamStreamJoin(t *testing.T) {
	h := newHarness(t, `
		SELECT s.v, r.w FROM s [SIZE 2 SLIDE 1], r [SIZE 2 SLIDE 1]
		WHERE s.k = r.k`, Incremental)
	h.pushS(t, [3]int64{1, 1, 10}, [3]int64{2, 2, 20})
	h.pushR(t, [3]int64{1, 1, 100}, [3]int64{2, 9, 900})
	// Both rings full now: result = join of 2x2 windows → (k1: 10,100).
	res := h.results()
	if len(res) != 1 {
		t.Fatalf("results = %d: %v", len(res), res)
	}
	if len(res[0]) != 1 || res[0][0] != "[10 100]" {
		t.Errorf("join res = %v", res)
	}
	st := h.fac.Stats()
	if st.CachedPairs == 0 {
		t.Error("no cached join pairs")
	}
}

func TestFactoryStats(t *testing.T) {
	h := newHarness(t, "SELECT sum(v) AS s FROM s [SIZE 2 SLIDE 1]", Incremental)
	h.pushS(t, [3]int64{1, 1, 1}, [3]int64{2, 1, 2}, [3]int64{3, 1, 3})
	st := h.fac.Stats()
	if st.TuplesIn != 3 || st.Evals != 2 || st.Firings == 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Name != "q" || st.Mode != "incremental" {
		t.Errorf("identity = %+v", st)
	}
	if st.RowsOut != 2 {
		t.Errorf("RowsOut = %d", st.RowsOut)
	}
	if st.LastLatency <= 0 || st.MaxLatency < st.LastLatency {
		t.Errorf("latency stats = %+v", st)
	}
}

func TestFactoryReadyAndBaskets(t *testing.T) {
	h := newHarness(t, "SELECT k FROM s", Reeval)
	if h.fac.Ready() {
		t.Error("ready with empty basket")
	}
	s, _ := h.cat.Stream("s")
	c := bat.NewChunk(s.Schema())
	_ = c.AppendRow(bat.TimeValue(1), bat.IntValue(1), bat.FloatValue(1))
	_ = h.sb.Append(c, 1)
	if !h.fac.Ready() {
		t.Error("not ready with pending tuples")
	}
	if got := h.fac.Baskets(); len(got) != 1 || got[0] != "s" {
		t.Errorf("baskets = %v", got)
	}
	h.fac.Step()
	if h.fac.Ready() {
		t.Error("ready after drain")
	}
}

func TestFactoryStopUnregisters(t *testing.T) {
	h := newHarness(t, "SELECT k FROM s", Reeval)
	if h.sb.Consumers() != 1 {
		t.Fatalf("consumers = %d", h.sb.Consumers())
	}
	h.fac.Stop()
	if h.sb.Consumers() != 0 {
		t.Errorf("consumers after stop = %d", h.sb.Consumers())
	}
}

func TestFactoryPlanStrings(t *testing.T) {
	h := newHarness(t, "SELECT k, sum(v) AS s FROM s [SIZE 4 SLIDE 2] GROUP BY k", Incremental)
	if h.fac.PlanString() == "" || h.fac.ContinuousPlanString() == "" {
		t.Error("empty plan strings")
	}
	h2 := newHarness(t, "SELECT k FROM s", Reeval)
	if h2.fac.ContinuousPlanString() == "" {
		t.Error("empty reeval continuous plan")
	}
}

func TestFactoryErrors(t *testing.T) {
	h := newHarness(t, "SELECT k FROM s", Reeval)
	// Incremental without decomposition.
	_, err := New(Config{Name: "x", Full: h.fac.cfg.Full, Mode: Incremental, Emit: emitter.Null{}}, nil)
	if err == nil {
		t.Error("incremental without decomp should fail")
	}
	// Missing basket binding.
	_, err = New(Config{Name: "x", Full: h.fac.cfg.Full, Mode: Reeval, Emit: emitter.Null{}},
		map[*plan.ScanStream]*basket.Sharded{})
	if err == nil {
		t.Error("missing binding should fail")
	}
}

func TestTimeWindowFactoryWithAdvance(t *testing.T) {
	h := newHarness(t, `
		SELECT count(*) AS n FROM s [RANGE 2 SECONDS SLIDE 1 SECOND ON ts]`, Incremental)
	sec := int64(1_000_000)
	h.pushS(t, [3]int64{sec / 2, 1, 1}, [3]int64{sec + sec/2, 1, 1})
	// Buckets: 0 (1 tuple, closed by arrival of bucket-1 tuple), 1 open.
	if got := h.fac.Advance(3 * sec); got != 2 {
		t.Fatalf("Advance emitted %d results, want 2", got)
	}
	res := h.results()
	// First full window after buckets {0,1}: count=2; after {1,2}: count=1.
	if len(res) != 2 || res[0][0] != "[2]" || res[1][0] != "[1]" {
		t.Errorf("time window results = %v", res)
	}
}

// The paper's central equivalence: incremental mode must produce exactly
// the results of full re-evaluation. Random streams, random filters,
// grouped aggregation over sliding windows of random geometry.
func TestQuickIncrementalEquivalentToReeval(t *testing.T) {
	queries := []string{
		"SELECT k, sum(v) AS s, min(v) AS lo, max(v) AS hi, count(*) AS n FROM s [SIZE %d SLIDE %d] GROUP BY k",
		"SELECT k, avg(v) AS m FROM s [SIZE %d SLIDE %d] WHERE v >= 8.0 GROUP BY k",
		"SELECT k, v FROM s [SIZE %d SLIDE %d] WHERE v < 10.0",
		"SELECT count(*) AS n FROM s [SIZE %d SLIDE %d] GROUP BY k HAVING count(*) > 1",
		"SELECT d.name, max(v) AS hi FROM s [SIZE %d SLIDE %d] JOIN dim d ON s.k = d.k GROUP BY d.name",
	}
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 40; iter++ {
		q := queries[iter%len(queries)]
		slide := 1 + rng.Intn(4)
		parts := 1 + rng.Intn(4)
		size := slide * parts
		src := fmt.Sprintf(q, size, slide)

		n := 5 + rng.Intn(60)
		rows := make([][3]int64, n)
		for i := range rows {
			rows[i] = [3]int64{int64(i + 1), int64(rng.Intn(4)), int64(rng.Intn(16))}
		}

		hr := newHarness(t, src, Reeval)
		hi := newHarness(t, src, Incremental)
		// Feed in random batch sizes to exercise slicing.
		for pos := 0; pos < n; {
			take := 1 + rng.Intn(5)
			if pos+take > n {
				take = n - pos
			}
			hr.pushS(t, rows[pos:pos+take]...)
			hi.pushS(t, rows[pos:pos+take]...)
			pos += take
		}
		rres, ires := hr.results(), hi.results()
		if len(rres) != len(ires) {
			t.Fatalf("iter %d %q: reeval %d results, incremental %d",
				iter, src, len(rres), len(ires))
		}
		for i := range rres {
			if fmt.Sprint(rres[i]) != fmt.Sprint(ires[i]) {
				t.Fatalf("iter %d %q result %d:\nreeval      %v\nincremental %v",
					iter, src, i, rres[i], ires[i])
			}
		}
	}
}

// Same equivalence for stream-stream joins with lockstep windows.
func TestQuickJoinIncrementalEquivalentToReeval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 15; iter++ {
		slide := 1 + rng.Intn(3)
		parts := 1 + rng.Intn(3)
		size := slide * parts
		src := fmt.Sprintf(
			"SELECT s.v, r.w FROM s [SIZE %d SLIDE %d], r [SIZE %d SLIDE %d] WHERE s.k = r.k",
			size, slide, size, slide)
		hr := newHarness(t, src, Reeval)
		hi := newHarness(t, src, Incremental)
		n := 4 + rng.Intn(30)
		for i := 0; i < n; i++ {
			row := [3]int64{int64(i + 1), int64(rng.Intn(3)), int64(rng.Intn(100))}
			if rng.Intn(2) == 0 {
				hr.pushS(t, row)
				hi.pushS(t, row)
			} else {
				hr.pushR(t, row)
				hi.pushR(t, row)
			}
		}
		rres, ires := hr.results(), hi.results()
		if len(rres) != len(ires) {
			t.Fatalf("iter %d: reeval %d results, incremental %d", iter, len(rres), len(ires))
		}
		for i := range rres {
			if fmt.Sprint(rres[i]) != fmt.Sprint(ires[i]) {
				t.Fatalf("iter %d result %d:\nreeval      %v\nincremental %v",
					iter, i, rres[i], ires[i])
			}
		}
	}
}
