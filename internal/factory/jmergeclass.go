package factory

import (
	"sync"
	"sync/atomic"

	"datacell/internal/bat"
	"datacell/internal/window"
)

// jmergeClass is a join group's merge ring pair: the extension of
// mergeClass past the join boundary. Members of one JoinGroup whose
// decompositions agree on a plan.JoinMergeKey — window extent plus the
// join fingerprint, which covers both side pipelines — hold byte-identical
// merged join views, so the group keeps ONE pair of rings of the last
// `parts` sealed basic windows per class and evaluates the merged view —
// pair-cache maintenance plus the (leftGen, rightGen)-ordered concat of
// the live pair set — once per fanned-out window for all of them.
//
// Activation mirrors mergeClass: a class activates at its second member
// and deactivates (releasing both rings) when membership drops back to
// one; each ring slot holds one reference on the window's shared buffer,
// released on eviction, so the group's live-buffer gauge accounts for the
// class rings exactly like member queues.
type jmergeClass struct {
	key   string
	parts int
	pc    *window.SharedPairCache // the class members' shared pair cache
	leaf  [2]*dagNode             // side pipeline leaves (nil: raw windows)

	// refs counts members registered under the class key; active latches
	// at the second member. Both are guarded by the owning JoinGroup's mu.
	refs   int
	active bool

	mu     sync.Mutex
	closed bool
	rings  [2][]jmergeIn // last `parts` sealed windows per side, oldest first
}

// jmergeIn is one sealed basic window as a class ring sees it: the side's
// group-global generation (the pair cache keys pairs by it), the window's
// shared memo table, its raw tuples, and the release hook for the class's
// reference on the shared buffer.
type jmergeIn struct {
	gen  int64
	dw   *dagWin
	data *bat.Chunk
	free func()
}

// push appends a sealed window to the side's class ring (taking ownership
// of one shared-buffer reference via free), evicting the oldest slot when
// the ring exceeds the window extent. Once BOTH rings hold a full window
// it returns the window's merge cell — the memo the fan-out attaches to
// every warm class member's queue item; nil during warm-up. Callers are
// the group fan-out only, which delivers windows in the group's global
// side interleaving under seqMu.
func (mc *jmergeClass) push(side int, gen int64, dw *dagWin, data *bat.Chunk, free func()) *jmergeCell {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.closed {
		free()
		return nil
	}
	mc.rings[side] = append(mc.rings[side], jmergeIn{gen: gen, dw: dw, data: data, free: free})
	if len(mc.rings[side]) > mc.parts {
		old := mc.rings[side][0]
		copy(mc.rings[side], mc.rings[side][1:])
		mc.rings[side] = mc.rings[side][:mc.parts]
		old.free()
	}
	if len(mc.rings[0]) < mc.parts || len(mc.rings[1]) < mc.parts {
		return nil
	}
	// The cell snapshots both rings: its input pointers stay valid after
	// eviction (the chunks are immutable and GC-kept), so a lagging member
	// can still resolve an old window's merged view from its queued cell.
	return &jmergeCell{mc: mc, side: side, ins: [2][]jmergeIn{
		append([]jmergeIn(nil), mc.rings[0]...),
		append([]jmergeIn(nil), mc.rings[1]...),
	}}
}

// close releases both rings' shared-buffer references and refuses further
// pushes — the class deactivated (membership dropped to one) or its last
// member left.
func (mc *jmergeClass) close() {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	mc.closed = true
	for side := range mc.rings {
		for _, in := range mc.rings[side] {
			in.free()
		}
		mc.rings[side] = nil
	}
}

// reopen accepts pushes again after a deactivation — a second member
// rejoined. Both rings restart empty and re-warm over the next window.
func (mc *jmergeClass) reopen() {
	mc.mu.Lock()
	mc.closed = false
	mc.mu.Unlock()
}

// jmergeCell memoizes one fanned-out window's merged join view for every
// member of a join merge class. The first member tail to need it evaluates
// the view under the once latch and siblings reuse the result. pdw is the
// post-merge memo table rooted at this merged view, exactly like
// mergeCell's.
type jmergeCell struct {
	mc   *jmergeClass
	side int // the side whose window triggered this cell
	once sync.Once
	ins  [2][]jmergeIn // captured rings; dropped after compute
	out  *bat.Chunk
	pdw  *dagWin
}

// eval resolves the cell's merged join view, computing it at most once per
// window across all class members. computed reports whether THIS call
// performed the merge. The evaluation replays exactly what each warm
// member's private tail would do with the same windows: resolve both
// rings' pipeline outputs through the side DAGs' per-window memos (into
// discard counters — they are re-lookups of work the member tails already
// accounted for), drive the shared pair cache with the triggering side's
// newest window against the other side's live ring, then concatenate the
// live pair set in (leftGen, rightGen) order. Every step is a
// deterministic function of the same generation-stamped inputs, which is
// what keeps a shared merged view byte-identical to a private one.
func (c *jmergeCell) eval(g *JoinGroup) (out *bat.Chunk, pdw *dagWin, computed bool) {
	c.once.Do(func() {
		mc := c.mc
		var discardHits, discardMisses atomic.Int64
		var bws [2][]*window.BW
		for side := 0; side < 2; side++ {
			bws[side] = make([]*window.BW, len(c.ins[side]))
			for i, in := range c.ins[side] {
				bws[side][i] = &window.BW{
					Gen: in.gen,
					Out: g.dags[side].eval(in.dw, mc.leaf[side], in.data, &discardHits, &discardMisses),
				}
			}
		}
		// The member tails short-circuit before their own pair-cache adds
		// once a cell serves them, so the cell performs the add for the
		// whole class (duplicate adds from warming members dedupe inside
		// the cache; eviction is watermark-driven by the adds themselves).
		newest := bws[c.side][len(bws[c.side])-1]
		if c.side == 0 {
			mc.pc.AddLeft(newest, bws[1])
		} else {
			mc.pc.AddRight(newest, bws[0])
		}
		c.out = mc.pc.Merged(bws[0], bws[1])
		c.pdw = newDagWin()
		c.ins = [2][]jmergeIn{} // release the input pointers
		computed = true
	})
	return c.out, c.pdw, computed
}
