package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Family is one parsed metric family of an exposition.
type Family struct {
	Name    string
	Type    Type
	Help    string
	Samples []Sample
}

// Sample is one parsed sample line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseText parses a Prometheus text-format (0.0.4) exposition and
// returns its families in order of first appearance. It validates the
// grammar strictly enough for round-trip tests and the CI smoke check:
// metric and label names must match the name grammar, label values must
// be correctly quoted and escaped, sample values must parse as floats
// (including +Inf/-Inf/NaN), TYPE lines must declare counter or gauge,
// and a sample must not precede its family's TYPE line under a different
// type. Timestamps (an optional trailing integer) are accepted and
// discarded.
func ParseText(r io.Reader) ([]Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	byName := map[string]*Family{}
	var order []*Family
	family := func(name string) *Family {
		f, ok := byName[name]
		if !ok {
			f = &Family{Name: name}
			byName[name] = f
			order = append(order, f)
		}
		return f
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !validName(name) {
				return nil, fmt.Errorf("metrics: line %d: invalid metric name %q", lineNo, name)
			}
			f := family(name)
			rest := ""
			if len(fields) == 4 {
				rest = fields[3]
			}
			if fields[1] == "HELP" {
				f.Help = unescapeHelp(rest)
				continue
			}
			t := Type(strings.TrimSpace(rest))
			if t != Counter && t != Gauge && t != "histogram" && t != "summary" && t != "untyped" {
				return nil, fmt.Errorf("metrics: line %d: invalid TYPE %q for %s", lineNo, rest, name)
			}
			if f.Type != "" && f.Type != t {
				return nil, fmt.Errorf("metrics: line %d: %s re-typed %s -> %s", lineNo, name, f.Type, t)
			}
			f.Type = t
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		f := family(s.Name)
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return flatten(order), nil
}

func flatten(order []*Family) []Family {
	out := make([]Family, len(order))
	for i, f := range order {
		out[i] = *f
	}
	return out
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && isNameChar(line[i], i) {
		i++
	}
	s.Name = line[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	if i < len(line) && line[i] == '{' {
		i++
		if i < len(line) && line[i] == '}' {
			i++ // empty label set: "dc_x{} 1" is legal
		} else {
			for {
				// label name
				j := i
				for j < len(line) && isNameChar(line[j], j-i) {
					j++
				}
				lname := line[i:j]
				if !validName(lname) {
					return s, fmt.Errorf("invalid label name %q", lname)
				}
				if j >= len(line) || line[j] != '=' {
					return s, fmt.Errorf("expected '=' after label %q", lname)
				}
				val, rest, err := parseQuoted(line[j+1:])
				if err != nil {
					return s, fmt.Errorf("label %s: %w", lname, err)
				}
				if _, dup := s.Labels[lname]; dup {
					return s, fmt.Errorf("duplicate label %q", lname)
				}
				s.Labels[lname] = val
				i = len(line) - len(rest)
				if i < len(line) && line[i] == ',' {
					i++
					continue
				}
				if i < len(line) && line[i] == '}' {
					i++
					break
				}
				return s, fmt.Errorf("expected ',' or '}' in label set")
			}
		}
	}
	fields := strings.Fields(line[i:])
	if len(fields) == 0 || len(fields) > 2 {
		return s, fmt.Errorf("expected value (and optional timestamp), got %q", line[i:])
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, err
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("invalid timestamp %q", fields[1])
		}
	}
	return s, nil
}

func isNameChar(c byte, pos int) bool {
	switch {
	case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
		return true
	case c >= '0' && c <= '9':
		return pos > 0
	}
	return false
}

// parseQuoted consumes a quoted, escaped label value and returns it with
// the unconsumed remainder of the line.
func parseQuoted(s string) (val, rest string, err error) {
	if len(s) == 0 || s[0] != '"' {
		return "", s, fmt.Errorf("expected '\"'")
	}
	var b strings.Builder
	i := 1
	for i < len(s) {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			if i+1 >= len(s) {
				return "", s, fmt.Errorf("dangling escape")
			}
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", s, fmt.Errorf("invalid escape \\%c", s[i+1])
			}
			i += 2
		default:
			b.WriteByte(s[i])
			i++
		}
	}
	return "", s, fmt.Errorf("unterminated label value")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN", "nan":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid sample value %q", s)
	}
	return v, nil
}

func unescapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\n`, "\n")
	return strings.ReplaceAll(s, `\\`, `\`)
}
