package metrics

import (
	"net"
	"net/http"
	"sync"
)

// contentType is the Prometheus text-format content type (version 0.0.4,
// the format WriteTo renders).
const contentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the registry's exposition — mount it at /metrics.
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", contentType)
		_, _ = reg.WriteTo(w)
	})
}

// Server is a minimal scrape endpoint: an HTTP listener serving the
// registry at /metrics (and a one-line pointer at /).
type Server struct {
	ln  net.Listener
	srv *http.Server

	closeOnce sync.Once
}

// Serve starts a scrape endpoint on addr (e.g. ":9137" or
// "127.0.0.1:0"). The listener is bound synchronously, so Addr is valid
// on return; serving runs in a background goroutine.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		_, _ = w.Write([]byte("datacell metrics endpoint — scrape /metrics\n"))
	})
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr reports the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the endpoint.
func (s *Server) Close() {
	s.closeOnce.Do(func() { _ = s.srv.Close() })
}
