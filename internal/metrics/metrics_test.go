package metrics

import (
	"math"
	"net/http"
	"strings"
	"testing"
)

func testCollector() CollectorFunc {
	return CollectorFunc{
		Descs: []Desc{
			{Name: "dc_test_buffered", Type: Gauge, Help: "Tuples buffered.", Labels: []string{"stream"}},
			{Name: "dc_test_total", Type: Counter, Help: `Escapes: back\slash and "quotes".`, Labels: []string{"stream", "shard"}},
			{Name: "dc_test_scalar", Type: Gauge, Help: "No labels."},
		},
		Fn: func(emit func(Metric)) {
			emit(Metric{Name: "dc_test_buffered", LabelValues: []string{"trades"}, Value: 42})
			emit(Metric{Name: "dc_test_buffered", LabelValues: []string{`we"ird\name`}, Value: 0.5})
			emit(Metric{Name: "dc_test_total", LabelValues: []string{"trades", "0"}, Value: 1e6})
			emit(Metric{Name: "dc_test_total", LabelValues: []string{"trades", "1"}, Value: 7})
			emit(Metric{Name: "dc_test_scalar", Value: -3.25})
		},
	}
}

func TestRenderAndParseRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(testCollector())
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	families, err := ParseText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("rendered exposition does not parse: %v\n%s", err, out)
	}
	byName := map[string]Family{}
	for _, f := range families {
		byName[f.Name] = f
	}
	if len(byName) != 3 {
		t.Fatalf("got %d families, want 3:\n%s", len(byName), out)
	}
	buf := byName["dc_test_buffered"]
	if buf.Type != Gauge || len(buf.Samples) != 2 {
		t.Fatalf("dc_test_buffered = %+v", buf)
	}
	found := false
	for _, s := range buf.Samples {
		if s.Labels["stream"] == `we"ird\name` {
			found = true
			if s.Value != 0.5 {
				t.Fatalf("escaped-label sample value = %v", s.Value)
			}
		}
	}
	if !found {
		t.Fatalf("escaped label value did not round-trip:\n%s", out)
	}
	if got := byName["dc_test_total"].Help; got != `Escapes: back\slash and "quotes".` {
		t.Fatalf("help round-trip = %q", got)
	}
	if v := byName["dc_test_scalar"].Samples[0].Value; v != -3.25 {
		t.Fatalf("scalar value = %v", v)
	}
	// Counters render integral values without an exponent.
	if !strings.Contains(out, `dc_test_total{stream="trades",shard="0"} 1000000`) {
		t.Fatalf("integral counter rendering:\n%s", out)
	}
}

func TestRegistryRejectsBadShapes(t *testing.T) {
	reg := NewRegistry()
	mustPanic := func(name string, c Collector) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		reg.MustRegister(c)
	}
	mustPanic("bad name", CollectorFunc{Descs: []Desc{{Name: "0bad", Type: Gauge}}})
	mustPanic("bad type", CollectorFunc{Descs: []Desc{{Name: "ok_name", Type: "hologram"}}})
	mustPanic("bad label", CollectorFunc{Descs: []Desc{{Name: "ok_name", Type: Gauge, Labels: []string{"bad-label"}}}})
	reg.MustRegister(CollectorFunc{Descs: []Desc{{Name: "dc_dup", Type: Gauge, Help: "h"}}})
	mustPanic("reshape", CollectorFunc{Descs: []Desc{{Name: "dc_dup", Type: Counter, Help: "h"}}})
	// Same shape from a second collector is fine.
	reg.MustRegister(CollectorFunc{Descs: []Desc{{Name: "dc_dup", Type: Gauge, Help: "h"}}})
}

func TestUndeclaredSamplesDropped(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(CollectorFunc{
		Descs: []Desc{{Name: "dc_declared", Type: Gauge, Labels: []string{"l"}}},
		Fn: func(emit func(Metric)) {
			emit(Metric{Name: "dc_rogue", Value: 1})
			emit(Metric{Name: "dc_declared", Value: 1}) // label count mismatch
			emit(Metric{Name: "dc_declared", LabelValues: []string{"ok"}, Value: 2})
		},
	})
	var b strings.Builder
	_, _ = reg.WriteTo(&b)
	out := b.String()
	if strings.Contains(out, "dc_rogue") {
		t.Fatalf("undeclared sample rendered:\n%s", out)
	}
	if strings.Count(out, "dc_declared{") != 1 {
		t.Fatalf("mismatched-label sample rendered:\n%s", out)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		`dc_x{l="unterminated} 1`,
		`dc_x{l="v"} notanumber`,
		`0bad_name 1`,
		`dc_x{l="bad\escape"} 1`,
		`dc_x{l="v" 1`,
		"# TYPE dc_x hologram\ndc_x 1",
		`dc_x{l="a",l="b"} 1`,
	}
	for _, src := range bad {
		if _, err := ParseText(strings.NewReader(src)); err == nil {
			t.Errorf("ParseText(%q) succeeded, want error", src)
		}
	}
	good := []string{
		"dc_x 1 1712345678901\n",   // timestamp accepted
		"dc_x +Inf\ndc_y NaN\n",    // specials
		"# just a comment\ndc_x 1", // free-form comment
		"\n\ndc_x{} 1\n",           // empty label set
	}
	for _, src := range good {
		if _, err := ParseText(strings.NewReader(src)); err != nil {
			t.Errorf("ParseText(%q) = %v, want ok", src, err)
		}
	}
	fams, err := ParseText(strings.NewReader("dc_x +Inf"))
	if err != nil || !math.IsInf(fams[0].Samples[0].Value, 1) {
		t.Fatalf("parse +Inf: %v %+v", err, fams)
	}
}

func TestServeScrape(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(testCollector())
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	families, err := ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(families) != 3 {
		t.Fatalf("scraped %d families, want 3", len(families))
	}
}
