// Command metricscheck validates a Prometheus text exposition on stdin:
// it must parse under the 0.0.4 grammar, and every family named as an
// argument must be present with at least one sample. The CI
// metrics-smoke step pipes a live /metrics scrape through it — parsing
// rather than grepping, so a malformed exposition fails even when the
// expected names appear.
//
// Usage:
//
//	curl -fs localhost:9090/metrics | metricscheck datacell_scheduler_workers ...
package main

import (
	"fmt"
	"os"

	"datacell/internal/metrics"
)

func main() {
	fams, err := metrics.ParseText(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricscheck: exposition does not parse: %v\n", err)
		os.Exit(1)
	}
	have := map[string]int{}
	for _, f := range fams {
		have[f.Name] = len(f.Samples)
	}
	bad := false
	for _, want := range os.Args[1:] {
		if n := have[want]; n == 0 {
			fmt.Fprintf(os.Stderr, "metricscheck: family %s missing from scrape\n", want)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
	fmt.Printf("metricscheck: %d families parsed, %d asserted present\n",
		len(fams), len(os.Args)-1)
}
