// Package metrics is a zero-dependency Prometheus-text-format exporter
// for the engine's internal counters — the observability layer that turns
// the demo's interactive panes (\network, \groups, \fabric) into a
// machine-scrapable /metrics endpoint.
//
// The design is pull-based and snapshot-cheap: a Registry holds
// Collectors, each of which declares its metric families up front
// (Describe) and emits current samples on demand (Collect). Nothing is
// accumulated inside the registry itself — every scrape reads the live
// engine counters, exactly as the \network pane does. The up-front
// descriptors serve two purposes: they carry the HELP/TYPE metadata of
// the text format, and they make the registry's full metric surface
// enumerable without collecting, which is what keeps docs/METRICS.md
// honest (TestMetricsDocMatchesRegistry diffs the doc's tables against
// the declared descriptor lists).
//
// The exposition format is the Prometheus text format, version 0.0.4:
//
//	# HELP datacell_basket_buffered_tuples Tuples currently buffered.
//	# TYPE datacell_basket_buffered_tuples gauge
//	datacell_basket_buffered_tuples{stream="trades"} 42
//
// ParseText implements enough of the grammar to validate an exposition
// end to end; the CI metrics-smoke step and the unit tests both scrape
// and re-parse rather than string-match.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Type classifies a metric family for the TYPE line of the text format.
type Type string

// The metric types the exporter emits. Counters are cumulative and only
// ever rise (frames sent, tuples appended); gauges snapshot a level that
// moves both ways (basket occupancy, queue depth).
const (
	Counter Type = "counter"
	Gauge   Type = "gauge"
)

// Desc declares one metric family: its name, type, help line, and the
// ordered label names its samples carry. Descriptors are static — a
// collector's Describe must return the same set on every call.
type Desc struct {
	Name   string
	Type   Type
	Help   string
	Labels []string
}

// Metric is one sample of a family at collection time.
type Metric struct {
	// Name must match one of the collector's declared descriptors.
	Name string
	// LabelValues align positionally with the descriptor's Labels.
	LabelValues []string
	Value       float64
}

// Collector is a source of metrics. Describe declares the families once;
// Collect emits the current samples. Collect must be safe for concurrent
// use: scrapes can overlap with engine activity and with each other.
type Collector interface {
	Describe() []Desc
	Collect(emit func(Metric))
}

// CollectorFunc adapts a static descriptor list and a collect closure
// into a Collector.
type CollectorFunc struct {
	Descs []Desc
	Fn    func(emit func(Metric))
}

// Describe implements Collector.
func (c CollectorFunc) Describe() []Desc { return c.Descs }

// Collect implements Collector.
func (c CollectorFunc) Collect(emit func(Metric)) {
	if c.Fn != nil {
		c.Fn(emit)
	}
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{descs: map[string]Desc{}}
}

// Registry aggregates collectors and renders one exposition per scrape.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
	descs      map[string]Desc
}

// MustRegister adds collectors to the registry. It panics when a
// collector redeclares an existing family with a different type, label
// set or help text — two sources exporting one family must agree on its
// shape (they may both emit samples; the family renders once).
func (r *Registry) MustRegister(cs ...Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range cs {
		for _, d := range c.Describe() {
			if err := validDesc(d); err != nil {
				panic(fmt.Sprintf("metrics: bad descriptor %q: %v", d.Name, err))
			}
			if prev, ok := r.descs[d.Name]; ok {
				if prev.Type != d.Type || prev.Help != d.Help ||
					strings.Join(prev.Labels, ",") != strings.Join(d.Labels, ",") {
					panic(fmt.Sprintf("metrics: descriptor %q re-registered with a different shape", d.Name))
				}
				continue
			}
			r.descs[d.Name] = d
		}
		r.collectors = append(r.collectors, c)
	}
}

// Descs lists every registered metric family, sorted by name — the
// enumerable surface docs/METRICS.md is checked against.
func (r *Registry) Descs() []Desc {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Desc, 0, len(r.descs))
	for _, d := range r.descs {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func validDesc(d Desc) error {
	if !validName(d.Name) {
		return fmt.Errorf("invalid metric name")
	}
	if d.Type != Counter && d.Type != Gauge {
		return fmt.Errorf("invalid type %q", d.Type)
	}
	for _, l := range d.Labels {
		if !validName(l) {
			return fmt.Errorf("invalid label name %q", l)
		}
	}
	return nil
}

// validName checks the Prometheus metric/label name grammar:
// [a-zA-Z_][a-zA-Z0-9_]* (colons are reserved for recording rules and
// never exported by this engine).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// WriteTo renders one exposition: every family sorted by name, each with
// its HELP and TYPE lines followed by its samples sorted by label values.
// Samples whose name was never declared, or whose label count disagrees
// with the declaration, are dropped — a misbehaving collector must not
// corrupt the exposition for every other source on the page.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	collectors := append([]Collector(nil), r.collectors...)
	descs := make(map[string]Desc, len(r.descs))
	for k, v := range r.descs {
		descs[k] = v
	}
	r.mu.Unlock()

	byFamily := map[string][]Metric{}
	for _, c := range collectors {
		c.Collect(func(m Metric) {
			d, ok := descs[m.Name]
			if !ok || len(m.LabelValues) != len(d.Labels) {
				return
			}
			byFamily[m.Name] = append(byFamily[m.Name], m)
		})
	}

	names := make([]string, 0, len(descs))
	for n := range descs {
		names = append(names, n)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		d := descs[name]
		samples := byFamily[name]
		if len(samples) == 0 {
			continue
		}
		sort.Slice(samples, func(i, j int) bool {
			return strings.Join(samples[i].LabelValues, "\x00") <
				strings.Join(samples[j].LabelValues, "\x00")
		})
		fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(d.Help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, d.Type)
		for _, m := range samples {
			b.WriteString(name)
			if len(d.Labels) > 0 {
				b.WriteByte('{')
				for i, l := range d.Labels {
					if i > 0 {
						b.WriteByte(',')
					}
					b.WriteString(l)
					b.WriteByte('=')
					writeLabelValue(&b, m.LabelValues[i])
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(formatValue(m.Value))
			b.WriteByte('\n')
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// escapeHelp escapes a HELP line per the text format: backslash and
// newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// writeLabelValue renders a quoted label value with exactly the escapes
// the text format defines: backslash, double quote, newline. Go's %q
// would escape more (tabs, non-printables) in sequences the format does
// not define.
func writeLabelValue(b *strings.Builder, s string) {
	b.WriteByte('"')
	for _, c := range []byte(s) {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
}

// formatValue renders a sample value: integral floats render without an
// exponent or trailing zeros (the common case: counters), specials per
// the format.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}
