// Package linearroad implements a self-contained Linear Road workload: the
// stream benchmark the paper cites as evidence that DataCell "easily
// meet[s] the requirements of the Linear Road Benchmark in [16]". The
// original benchmark ships a closed traffic simulator and validator; this
// package generates the same *shape* of input — position reports from cars
// on L expressways with lane changes, speed variation and accidents — and
// defines the continuous-query set (segment statistics, toll basis,
// accident detection) in DataCell SQL, plus the ≤5 s response-time check.
//
// Substitution note (DESIGN.md): the authors used the official MIT data
// generator; we synthesize statistically similar traffic with a seeded
// RNG, which exercises the identical engine code paths (time windows,
// grouped aggregation, HAVING-based detection) and allows the same
// response-time constraint to be evaluated.
package linearroad

import (
	"fmt"
	"math/rand"
	"time"

	"datacell/internal/bat"
)

// Config sizes a Linear Road run. The L-rating of the original benchmark
// corresponds to Xways here: higher L means proportionally more input.
type Config struct {
	// Xways is the number of expressways (the benchmark's L factor).
	Xways int
	// CarsPerXway is the number of concurrently active vehicles per
	// expressway.
	CarsPerXway int
	// DurationSec is the simulated duration in seconds.
	DurationSec int
	// ReportEverySec is the per-car reporting period (the benchmark uses
	// 30 s).
	ReportEverySec int
	// AccidentProb is the per-car-per-report probability of becoming
	// stopped (speed 0) for a few minutes.
	AccidentProb float64
	// Seed makes runs reproducible.
	Seed int64
}

// DefaultConfig matches a small but representative run: 1 expressway, 500
// cars, 5 simulated minutes.
func DefaultConfig() Config {
	return Config{
		Xways:          1,
		CarsPerXway:    500,
		DurationSec:    300,
		ReportEverySec: 30,
		AccidentProb:   0.002,
		Seed:           42,
	}
}

// Segments per expressway and direction, from the benchmark definition.
const Segments = 100

// Schema is the position-report stream layout:
// (ts, vid, speed, xway, lane, dir, seg, pos).
func Schema() bat.Schema {
	return bat.NewSchema(
		[]string{"ts", "vid", "speed", "xway", "lane", "dir", "seg", "pos"},
		[]bat.Kind{bat.Time, bat.Int, bat.Float, bat.Int, bat.Int, bat.Int, bat.Int, bat.Int},
	)
}

// car is one simulated vehicle.
type car struct {
	vid        int64
	xway       int
	dir        int
	lane       int
	pos        float64 // meters from segment 0 start
	speed      float64 // mph
	stoppedFor int     // remaining stopped reports (accident)
	nextReport int     // second of next report
}

// Generate produces the position-report stream as one chunk per simulated
// second (empty seconds are skipped). Timestamps are microseconds of
// simulated time from zero.
func Generate(cfg Config) []*bat.Chunk {
	rng := rand.New(rand.NewSource(cfg.Seed))
	sch := Schema()
	var cars []*car
	vid := int64(0)
	for x := 0; x < cfg.Xways; x++ {
		for i := 0; i < cfg.CarsPerXway; i++ {
			vid++
			cars = append(cars, &car{
				vid:        vid,
				xway:       x,
				dir:        rng.Intn(2),
				lane:       1 + rng.Intn(3),
				pos:        rng.Float64() * Segments * 1760, // ~1 mile per segment, in yards
				speed:      40 + rng.Float64()*40,
				nextReport: rng.Intn(cfg.ReportEverySec),
			})
		}
	}

	var out []*bat.Chunk
	for sec := 0; sec < cfg.DurationSec; sec++ {
		chunk := bat.NewChunk(sch)
		for _, c := range cars {
			// Movement happens every simulated second.
			if c.stoppedFor > 0 {
				c.speed = 0
			} else {
				// Smooth speed variation within [20, 100].
				c.speed += (rng.Float64() - 0.5) * 4
				if c.speed < 20 {
					c.speed = 20
				}
				if c.speed > 100 {
					c.speed = 100
				}
			}
			c.pos += c.speed * 1760 / 3600 // yards per second at mph
			if c.pos >= Segments*1760 {
				c.pos -= Segments * 1760 // wrap around (car re-enters)
			}
			if sec < c.nextReport {
				continue
			}
			c.nextReport = sec + cfg.ReportEverySec
			// Accident lottery at report time.
			if c.stoppedFor == 0 && rng.Float64() < cfg.AccidentProb {
				c.stoppedFor = 4 + rng.Intn(4) // stopped for 4-7 reports
			} else if c.stoppedFor > 0 {
				c.stoppedFor--
			}
			if rng.Float64() < 0.1 {
				c.lane = 1 + rng.Intn(3)
			}
			seg := int64(c.pos / 1760)
			_ = chunk.AppendRow(
				bat.TimeValue(int64(sec)*1_000_000),
				bat.IntValue(c.vid),
				bat.FloatValue(c.speed),
				bat.IntValue(int64(c.xway)),
				bat.IntValue(int64(c.lane)),
				bat.IntValue(int64(c.dir)),
				bat.IntValue(seg),
				bat.IntValue(int64(c.pos)),
			)
		}
		if chunk.Rows() > 0 {
			out = append(out, chunk)
		}
	}
	return out
}

// CreateStreamSQL is the DDL for the position-report stream.
const CreateStreamSQL = `CREATE STREAM lr_pos (
	ts TIMESTAMP, vid INT, speed FLOAT, xway INT, lane INT, dir INT, seg INT, pos INT
)`

// SegmentStatsSQL is the benchmark's segment-statistics query: average
// speed per (xway, dir, seg) over a 5-minute window sliding every minute.
func SegmentStatsSQL() string {
	return `SELECT xway, dir, seg, avg(speed) AS avgspeed, count(*) AS reports
		FROM lr_pos [RANGE 300 SECONDS SLIDE 60 SECONDS ON ts]
		GROUP BY xway, dir, seg`
}

// VehicleCountSQL is the toll-basis query: report volume per segment over
// the last minute.
func VehicleCountSQL() string {
	return `SELECT xway, dir, seg, count(*) AS cars
		FROM lr_pos [RANGE 60 SECONDS SLIDE 60 SECONDS ON ts]
		GROUP BY xway, dir, seg`
}

// AccidentSQL detects accident segments: several zero-speed reports in the
// same segment within a 2-minute window sliding every 30 seconds.
func AccidentSQL() string {
	return `SELECT xway, dir, seg, count(*) AS stopped
		FROM lr_pos [RANGE 120 SECONDS SLIDE 30 SECONDS ON ts]
		WHERE speed = 0.0
		GROUP BY xway, dir, seg
		HAVING count(*) >= 4`
}

// Toll computes the benchmark's toll formula from segment statistics: no
// toll when the average speed is at least 40 mph or the segment is nearly
// empty; otherwise baseToll * (cars - 150)^2 with the benchmark's base of
// 0.02.
func Toll(avgSpeed float64, cars int64) float64 {
	if avgSpeed >= 40 || cars <= 50 {
		return 0
	}
	d := float64(cars - 150)
	return 0.02 * d * d
}

// ResponseConstraint is the benchmark's end-to-end deadline.
const ResponseConstraint = 5 * time.Second

// CheckResponse reports whether a set of response latencies (µs) meets
// the benchmark's constraint, together with the worst observed latency.
func CheckResponse(latencies []int64) (ok bool, worst int64) {
	for _, l := range latencies {
		if l > worst {
			worst = l
		}
	}
	return worst <= ResponseConstraint.Microseconds(), worst
}

// Summary renders a one-line description of a config, used by the bench
// harness tables.
func (c Config) Summary() string {
	return fmt.Sprintf("L=%d cars=%d dur=%ds report=%ds",
		c.Xways, c.Xways*c.CarsPerXway, c.DurationSec, c.ReportEverySec)
}
