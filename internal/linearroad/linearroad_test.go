package linearroad

import (
	"testing"

	"datacell/internal/bat"
)

func TestGenerateShape(t *testing.T) {
	cfg := Config{
		Xways: 2, CarsPerXway: 50, DurationSec: 90,
		ReportEverySec: 30, AccidentProb: 0.05, Seed: 1,
	}
	chunks := Generate(cfg)
	if len(chunks) == 0 {
		t.Fatal("no chunks")
	}
	sch := Schema()
	var total int
	var lastTS int64 = -1
	sawXway := map[int64]bool{}
	for _, c := range chunks {
		if c.Schema.Width() != sch.Width() {
			t.Fatalf("schema width = %d", c.Schema.Width())
		}
		rows := c.Rows()
		total += rows
		for i := 0; i < rows; i++ {
			row := c.Row(i)
			ts := row[0].I
			if ts < lastTS {
				t.Fatalf("timestamps out of order: %d after %d", ts, lastTS)
			}
			speed := row[2].F
			if speed < 0 || speed > 100 {
				t.Errorf("speed out of range: %f", speed)
			}
			sawXway[row[3].I] = true
			seg := row[6].I
			if seg < 0 || seg >= Segments {
				t.Errorf("segment out of range: %d", seg)
			}
		}
		if rows > 0 {
			lastTS = c.Row(rows - 1)[0].I
		}
	}
	// Each car reports roughly every 30s over 90s → ~3 reports each.
	want := 2 * 50 * 3
	if total < want/2 || total > want*2 {
		t.Errorf("total reports = %d, want ≈%d", total, want)
	}
	if !sawXway[0] || !sawXway[1] {
		t.Errorf("xways seen = %v", sawXway)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DurationSec = 60
	cfg.CarsPerXway = 20
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Rows() != b[i].Rows() {
			t.Fatalf("chunk %d rows differ", i)
		}
		for r := 0; r < a[i].Rows(); r++ {
			ra, rb := a[i].Row(r), b[i].Row(r)
			for j := range ra {
				if !ra[j].Equal(rb[j]) {
					t.Fatalf("chunk %d row %d col %d: %v vs %v", i, r, j, ra[j], rb[j])
				}
			}
		}
	}
}

func TestAccidentsProduceZeroSpeeds(t *testing.T) {
	cfg := Config{
		Xways: 1, CarsPerXway: 200, DurationSec: 300,
		ReportEverySec: 30, AccidentProb: 0.05, Seed: 3,
	}
	zero := 0
	for _, c := range Generate(cfg) {
		speeds := c.Cols[2].(bat.Floats)
		for _, s := range speeds {
			if s == 0 {
				zero++
			}
		}
	}
	if zero == 0 {
		t.Error("accident model produced no stopped reports")
	}
}

func TestToll(t *testing.T) {
	if got := Toll(50, 200); got != 0 {
		t.Errorf("fast segment toll = %f", got)
	}
	if got := Toll(30, 40); got != 0 {
		t.Errorf("empty segment toll = %f", got)
	}
	want := 0.02 * 50 * 50
	if got := Toll(30, 200); got != want {
		t.Errorf("toll = %f, want %f", got, want)
	}
}

func TestCheckResponse(t *testing.T) {
	ok, worst := CheckResponse([]int64{1000, 2000, 4_999_999})
	if !ok || worst != 4_999_999 {
		t.Errorf("CheckResponse = %v, %d", ok, worst)
	}
	ok, worst = CheckResponse([]int64{1000, 6_000_000})
	if ok || worst != 6_000_000 {
		t.Errorf("CheckResponse = %v, %d", ok, worst)
	}
	if ok, _ := CheckResponse(nil); !ok {
		t.Error("empty latencies should pass")
	}
}

func TestQuerySQLTexts(t *testing.T) {
	for _, q := range []string{SegmentStatsSQL(), VehicleCountSQL(), AccidentSQL(), CreateStreamSQL} {
		if q == "" {
			t.Error("empty SQL")
		}
	}
	if DefaultConfig().Summary() == "" {
		t.Error("empty summary")
	}
}
