// Package sql implements the SQL front-end of DataCell-Go: a lexer, an
// AST, and a recursive-descent parser for the SQL subset the DataCell demo
// exercises, extended with the paper's "few orthogonal language constructs"
// for continuous queries: CREATE STREAM, REGISTER QUERY, and window
// specifications on stream references.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies lexical tokens.
type TokKind uint8

// The token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokInt
	TokFloat
	TokString
	TokSymbol // punctuation and operators
)

// Token is one lexical token with its source position (byte offset).
type Token struct {
	Kind TokKind
	Text string // keywords are upper-cased, identifiers lower-cased
	Pos  int
}

// keywords is the reserved-word set. Window-spec words (SIZE, RANGE,
// SLIDE, ON) are contextual but reserving them keeps the grammar simple.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"AS": true, "AND": true, "OR": true, "NOT": true, "TRUE": true,
	"FALSE": true, "CREATE": true, "TABLE": true, "STREAM": true,
	"INSERT": true, "INTO": true, "VALUES": true, "DROP": true,
	"REGISTER": true, "QUERY": true, "INCREMENTAL": true, "REEVAL": true,
	"SIZE": true, "RANGE": true, "SLIDE": true, "ON": true, "JOIN": true,
	"INNER": true, "DISTINCT": true, "COPY": true, "DELETE": true,
	"MICROSECONDS": true, "MILLISECONDS": true, "SECONDS": true,
	"MINUTES": true, "HOURS": true,
	"SECOND": true, "MINUTE": true, "HOUR": true, "MILLISECOND": true,
	"MICROSECOND": true, "CAST": true,
}

// Lex tokenizes a SQL string. It returns a descriptive error with the
// byte offset of the first bad character.
func Lex(src string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-': // line comment
			for i < n && src[i] != '\n' {
				i++
			}
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(src[i])) {
				i++
			}
			word := src[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{TokKeyword, up, start})
			} else {
				toks = append(toks, Token{TokIdent, strings.ToLower(word), start})
			}
		case c >= '0' && c <= '9':
			start := i
			isFloat := false
			for i < n && (src[i] >= '0' && src[i] <= '9') {
				i++
			}
			if i < n && src[i] == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9' {
				isFloat = true
				i++
				for i < n && (src[i] >= '0' && src[i] <= '9') {
					i++
				}
			}
			if i < n && (src[i] == 'e' || src[i] == 'E') {
				isFloat = true
				i++
				if i < n && (src[i] == '+' || src[i] == '-') {
					i++
				}
				for i < n && (src[i] >= '0' && src[i] <= '9') {
					i++
				}
			}
			k := TokInt
			if isFloat {
				k = TokFloat
			}
			toks = append(toks, Token{k, src[start:i], start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if src[i] == '\'' {
					if i+1 < n && src[i+1] == '\'' { // '' escape
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			toks = append(toks, Token{TokString, sb.String(), start})
		default:
			// Two-char operators first.
			if i+1 < n {
				two := src[i : i+2]
				switch two {
				case "<>", "<=", ">=", "!=":
					toks = append(toks, Token{TokSymbol, two, i})
					i += 2
					continue
				}
			}
			switch c {
			case '(', ')', ',', '.', ';', '*', '+', '-', '/', '%', '=', '<', '>', '[', ']':
				toks = append(toks, Token{TokSymbol, string(c), i})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, Token{TokEOF, "", n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
