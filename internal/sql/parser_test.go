package sql

import (
	"strings"
	"testing"
	"time"
)

func mustParse(t *testing.T, src string) Stmt {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, t.b FROM s WHERE a >= 1.5 AND name = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{}
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	if toks[0].Text != "SELECT" || toks[0].Kind != TokKeyword {
		t.Errorf("tok0 = %+v", toks[0])
	}
	var sawStr bool
	for _, tok := range toks {
		if tok.Kind == TokString {
			sawStr = true
			if tok.Text != "it's" {
				t.Errorf("string literal = %q", tok.Text)
			}
		}
	}
	if !sawStr {
		t.Error("no string token")
	}
	_ = kinds
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("SELECT a -- comment here\nFROM s")
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks {
		if strings.Contains(tok.Text, "comment") {
			t.Error("comment leaked into tokens")
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("SELECT 'oops"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := Lex("SELECT @"); err == nil {
		t.Error("bad char should fail")
	}
}

func TestLexNumbers(t *testing.T) {
	toks, _ := Lex("1 2.5 3e4 6E-2")
	if toks[0].Kind != TokInt || toks[1].Kind != TokFloat ||
		toks[2].Kind != TokFloat || toks[3].Kind != TokFloat {
		t.Errorf("number kinds wrong: %+v", toks[:4])
	}
}

func TestParseCreateTable(t *testing.T) {
	s := mustParse(t, "CREATE TABLE tab (id INT, name VARCHAR, score DOUBLE)").(*CreateTable)
	if s.Name != "tab" || len(s.Cols) != 3 {
		t.Fatalf("create = %+v", s)
	}
	if s.Cols[1].Type != "VARCHAR" {
		t.Errorf("col type = %q", s.Cols[1].Type)
	}
}

func TestParseCreateStream(t *testing.T) {
	s := mustParse(t, "CREATE STREAM sens (ts TIMESTAMP, v FLOAT)").(*CreateStream)
	if s.Name != "sens" || len(s.Cols) != 2 || s.Cols[0].Type != "TIMESTAMP" {
		t.Fatalf("create stream = %+v", s)
	}
}

func TestParseDrop(t *testing.T) {
	for _, w := range []string{"TABLE", "STREAM", "QUERY"} {
		s := mustParse(t, "DROP "+w+" x").(*DropStmt)
		if s.What != w || s.Name != "x" {
			t.Errorf("drop %s = %+v", w, s)
		}
	}
}

func TestParseInsert(t *testing.T) {
	s := mustParse(t, "INSERT INTO t VALUES (1, 'a', 2.5), (2, 'b', -3.5)").(*Insert)
	if s.Table != "t" || len(s.Rows) != 2 || len(s.Rows[0]) != 3 {
		t.Fatalf("insert = %+v", s)
	}
	if lit := s.Rows[1][2].(*Lit); lit.F != -3.5 {
		t.Errorf("negative literal = %+v", lit)
	}
}

func TestParseSimpleSelect(t *testing.T) {
	s := mustParse(t, "SELECT a, b AS bee FROM t WHERE a > 3 LIMIT 10").(*SelectStmt)
	if len(s.Items) != 2 || s.Items[1].Alias != "bee" {
		t.Fatalf("items = %+v", s.Items)
	}
	if s.From[0].Name != "t" || s.Limit != 10 {
		t.Errorf("from/limit = %+v %d", s.From, s.Limit)
	}
	if s.Where.String() != "(a > 3)" {
		t.Errorf("where = %s", s.Where)
	}
}

func TestParseStarAndDistinct(t *testing.T) {
	s := mustParse(t, "SELECT DISTINCT * FROM t").(*SelectStmt)
	if !s.Distinct || !s.Items[0].Star {
		t.Errorf("distinct/star = %+v", s)
	}
}

func TestParseGroupHavingOrder(t *testing.T) {
	s := mustParse(t,
		`SELECT k, count(*) AS n, avg(v) FROM s GROUP BY k HAVING count(*) > 2 ORDER BY n DESC, k LIMIT 5`,
	).(*SelectStmt)
	if len(s.GroupBy) != 1 || s.Having == nil || len(s.OrderBy) != 2 {
		t.Fatalf("select = %+v", s)
	}
	if !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Errorf("order dirs = %+v", s.OrderBy)
	}
	call := s.Items[1].Expr.(*CallExpr)
	if call.Name != "count" || !call.Star {
		t.Errorf("count(*) = %+v", call)
	}
}

func TestParseTupleWindow(t *testing.T) {
	s := mustParse(t, "SELECT sum(v) FROM s [SIZE 100 SLIDE 20]").(*SelectStmt)
	w := s.From[0].Window
	if w == nil || !w.Tuples || w.Size != 100 || w.Slide != 20 {
		t.Fatalf("window = %+v", w)
	}
	// Tumbling default.
	s = mustParse(t, "SELECT sum(v) FROM s [SIZE 50]").(*SelectStmt)
	if s.From[0].Window.Slide != 50 {
		t.Errorf("tumbling slide = %d", s.From[0].Window.Slide)
	}
}

func TestParseTimeWindow(t *testing.T) {
	s := mustParse(t, "SELECT count(*) FROM s [RANGE 5 MINUTES SLIDE 30 SECONDS ON ts]").(*SelectStmt)
	w := s.From[0].Window
	if w.Tuples || w.Range != 5*time.Minute || w.SlideDur != 30*time.Second || w.TimeCol != "ts" {
		t.Fatalf("time window = %+v", w)
	}
	if got := w.String(); !strings.Contains(got, "RANGE") {
		t.Errorf("window String = %q", got)
	}
}

func TestParseWindowValidation(t *testing.T) {
	if _, err := Parse("SELECT 1 FROM s [SIZE 10 SLIDE 3]"); err == nil {
		t.Error("slide not dividing size should fail")
	}
	if _, err := Parse("SELECT 1 FROM s [SIZE 10 SLIDE 20]"); err == nil {
		t.Error("slide > size should fail")
	}
	if _, err := Parse("SELECT 1 FROM s [RANGE 10 SECONDS SLIDE 3 SECONDS]"); err == nil {
		t.Error("time slide not dividing range should fail")
	}
	if _, err := Parse("SELECT 1 FROM s [FOO 1]"); err == nil {
		t.Error("bad window keyword should fail")
	}
	if _, err := Parse("SELECT 1 FROM s [RANGE 5 bananas]"); err == nil {
		t.Error("bad unit should fail")
	}
}

func TestParseJoins(t *testing.T) {
	s := mustParse(t,
		"SELECT a.x, b.y FROM a [SIZE 10], b [SIZE 10] WHERE a.k = b.k",
	).(*SelectStmt)
	if len(s.From) != 2 {
		t.Fatalf("from = %+v", s.From)
	}
	s = mustParse(t,
		"SELECT s.v, d.name FROM s [SIZE 10] JOIN d ON s.k = d.k WHERE d.region = 'eu'",
	).(*SelectStmt)
	if len(s.Joins) != 1 || s.Joins[0].Right.Name != "d" {
		t.Fatalf("joins = %+v", s.Joins)
	}
	if s.Joins[0].On.String() != "(s.k = d.k)" {
		t.Errorf("on = %s", s.Joins[0].On)
	}
}

func TestParseAliases(t *testing.T) {
	s := mustParse(t, "SELECT x.v FROM verylongname AS x").(*SelectStmt)
	if s.From[0].Alias != "x" {
		t.Errorf("alias = %+v", s.From[0])
	}
	s = mustParse(t, "SELECT x.v FROM verylongname x").(*SelectStmt)
	if s.From[0].Alias != "x" {
		t.Errorf("implicit alias = %+v", s.From[0])
	}
	s = mustParse(t, "SELECT v n FROM t").(*SelectStmt)
	if s.Items[0].Alias != "n" {
		t.Errorf("implicit item alias = %+v", s.Items[0])
	}
}

func TestParseRegisterQuery(t *testing.T) {
	s := mustParse(t,
		"REGISTER INCREMENTAL QUERY q1 AS SELECT sum(v) FROM s [SIZE 100 SLIDE 10]",
	).(*RegisterQuery)
	if s.Name != "q1" || s.Mode != "INCREMENTAL" || s.Select == nil {
		t.Fatalf("register = %+v", s)
	}
	s = mustParse(t, "REGISTER QUERY q2 AS SELECT v FROM s").(*RegisterQuery)
	if s.Mode != "" {
		t.Errorf("default mode = %q", s.Mode)
	}
	s = mustParse(t, "REGISTER REEVAL QUERY q3 AS SELECT v FROM s").(*RegisterQuery)
	if s.Mode != "REEVAL" {
		t.Errorf("reeval mode = %q", s.Mode)
	}
	s = mustParse(t, "REGISTER QUERY q4 NOFUSE AS SELECT v FROM s").(*RegisterQuery)
	if !s.NoFuse {
		t.Errorf("NOFUSE not parsed: %+v", s)
	}
	s = mustParse(t, "REGISTER INCREMENTAL QUERY q5 TENANT acme NOFUSE AS SELECT v FROM s").(*RegisterQuery)
	if !s.NoFuse || s.Tenant != "acme" {
		t.Errorf("TENANT+NOFUSE = %+v", s)
	}
	// Contextual: "nofuse" stays a legal column name.
	sel := mustParse(t, "SELECT nofuse FROM s").(*SelectStmt)
	if sel.Items[0].Expr.String() != "nofuse" {
		t.Errorf("nofuse as column = %+v", sel.Items[0])
	}
}

func TestParseExprPrecedence(t *testing.T) {
	s := mustParse(t, "SELECT a + b * 2 FROM t").(*SelectStmt)
	if got := s.Items[0].Expr.String(); got != "(a + (b * 2))" {
		t.Errorf("precedence = %s", got)
	}
	s = mustParse(t, "SELECT (a + b) * 2 FROM t").(*SelectStmt)
	if got := s.Items[0].Expr.String(); got != "((a + b) * 2)" {
		t.Errorf("parens = %s", got)
	}
	s = mustParse(t, "SELECT a FROM t WHERE a > 1 AND b < 2 OR NOT c = 3").(*SelectStmt)
	if got := s.Where.String(); got != "(((a > 1) AND (b < 2)) OR (NOT (c = 3)))" {
		t.Errorf("logic precedence = %s", got)
	}
}

func TestParseCast(t *testing.T) {
	s := mustParse(t, "SELECT CAST(a AS FLOAT) FROM t").(*SelectStmt)
	c := s.Items[0].Expr.(*CastExpr)
	if c.Type != "FLOAT" {
		t.Errorf("cast = %+v", c)
	}
}

func TestParseUnaryMinus(t *testing.T) {
	s := mustParse(t, "SELECT -a FROM t WHERE v > -5").(*SelectStmt)
	if got := s.Items[0].Expr.String(); got != "(0 - a)" {
		t.Errorf("unary minus on ident = %s", got)
	}
	if got := s.Where.String(); got != "(v > -5)" {
		t.Errorf("negative literal = %s", got)
	}
}

func TestParseModulo(t *testing.T) {
	s := mustParse(t, "SELECT a % 3 FROM t").(*SelectStmt)
	if got := s.Items[0].Expr.String(); got != "(a % 3)" {
		t.Errorf("modulo = %s", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC a FROM t",
		"SELECT FROM t",
		"SELECT a",
		"SELECT a FROM",
		"CREATE VIEW v",
		"CREATE TABLE t",
		"CREATE TABLE t (",
		"INSERT t VALUES (1)",
		"INSERT INTO t (1)",
		"DROP INDEX i",
		"REGISTER QUERY AS SELECT 1 FROM t",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t ORDER a",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t extra garbage here",
		"SELECT count( FROM t",
		"SELECT a FROM t JOIN",
		"SELECT a FROM t [SIZE 0]",
		"SELECT CAST(a AS) FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript(`
		CREATE STREAM s (ts TIMESTAMP, v FLOAT);
		REGISTER QUERY q AS SELECT sum(v) FROM s [SIZE 10];
		;
		SELECT 1 FROM t
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("script stmts = %d", len(stmts))
	}
	if _, err := ParseScript("SELECT 1 FROM t SELECT 2 FROM t"); err == nil {
		t.Error("missing semicolon should fail")
	}
	if _, err := ParseScript("SELECT '"); err == nil {
		t.Error("lex error should propagate")
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	mustParse(t, "SELECT a FROM t;")
}

func TestLitString(t *testing.T) {
	cases := map[string]Expr{
		"7":      &Lit{Kind: 'i', I: 7},
		"'a''b'": &Lit{Kind: 's', S: "a'b"},
		"true":   &Lit{Kind: 'b', B: true},
		"false":  &Lit{Kind: 'b', B: false},
	}
	for want, e := range cases {
		if got := e.String(); got != want {
			t.Errorf("Lit.String() = %q, want %q", got, want)
		}
	}
}

func TestCallExprString(t *testing.T) {
	c := &CallExpr{Name: "sum", Args: []Expr{&Ident{Name: "v"}}}
	if c.String() != "sum(v)" {
		t.Errorf("call String = %q", c.String())
	}
	star := &CallExpr{Name: "count", Star: true}
	if star.String() != "count(*)" {
		t.Errorf("star String = %q", star.String())
	}
}

func TestParseSetTenantQuota(t *testing.T) {
	s := mustParse(t, "SET TENANT QUOTA acme MAX_QUERIES 4 APPEND_ROWS_PER_SEC 1500.5 LAG_WINDOWS 8").(*SetTenantQuota)
	if s.Tenant != "acme" || s.MaxQueries != 4 || s.AppendRowsPerSec != 1500.5 || s.LagWindows != 8 {
		t.Fatalf("set tenant quota = %+v", s)
	}
	// Clauses in any order, integer rate, lower-case keywords.
	s = mustParse(t, "set tenant quota beta lag_windows 2 append_rows_per_sec 1000 max_queries 1").(*SetTenantQuota)
	if s.Tenant != "beta" || s.MaxQueries != 1 || s.AppendRowsPerSec != 1000 || s.LagWindows != 2 {
		t.Fatalf("set tenant quota = %+v", s)
	}
	// The bare form clears every limit (zero value = unlimited).
	s = mustParse(t, "SET TENANT QUOTA acme").(*SetTenantQuota)
	if s.Tenant != "acme" || s.MaxQueries != 0 || s.AppendRowsPerSec != 0 || s.LagWindows != 0 {
		t.Fatalf("bare set tenant quota = %+v", s)
	}

	bad := []string{
		"SET",
		"SET TENANT acme",
		"SET TENANT QUOTA",
		"SET TENANT QUOTA acme BOGUS 3",
		"SET TENANT QUOTA acme MAX_QUERIES",
		"SET TENANT QUOTA acme MAX_QUERIES -1",
		"SET TENANT QUOTA acme APPEND_ROWS_PER_SEC x",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}

	// SET stays contextual: columns and streams named "set"/"quota" are legal.
	if _, err := Parse("SELECT set, quota FROM tenant"); err != nil {
		t.Errorf("contextual SET broke identifier use: %v", err)
	}
}
