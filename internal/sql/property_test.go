package sql

import (
	"fmt"
	"math/rand"
	"testing"
)

// renderSelect turns a parsed SelectStmt back into SQL text. It is used
// only by the round-trip property test, so it emits the grammar's
// canonical spelling.
func renderSelect(s *SelectStmt) string {
	out := "SELECT "
	if s.Distinct {
		out += "DISTINCT "
	}
	for i, it := range s.Items {
		if i > 0 {
			out += ", "
		}
		if it.Star {
			out += "*"
			continue
		}
		out += it.Expr.String()
		if it.Alias != "" {
			out += " AS " + it.Alias
		}
	}
	out += " FROM "
	for i, f := range s.From {
		if i > 0 {
			out += ", "
		}
		out += renderFrom(f)
	}
	for _, j := range s.Joins {
		out += " JOIN " + renderFrom(j.Right) + " ON " + j.On.String()
	}
	if s.Where != nil {
		out += " WHERE " + s.Where.String()
	}
	if len(s.GroupBy) > 0 {
		out += " GROUP BY "
		for i, g := range s.GroupBy {
			if i > 0 {
				out += ", "
			}
			out += g.String()
		}
	}
	if s.Having != nil {
		out += " HAVING " + s.Having.String()
	}
	if len(s.OrderBy) > 0 {
		out += " ORDER BY "
		for i, o := range s.OrderBy {
			if i > 0 {
				out += ", "
			}
			out += o.Expr.String()
			if o.Desc {
				out += " DESC"
			}
		}
	}
	if s.Limit >= 0 {
		out += fmt.Sprintf(" LIMIT %d", s.Limit)
	}
	return out
}

func renderFrom(f FromItem) string {
	out := f.Name
	if f.Window != nil {
		out += " " + f.Window.String()
	}
	if f.Alias != "" {
		out += " AS " + f.Alias
	}
	return out
}

// randExpr builds a random expression tree of bounded depth.
func randExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(4) {
		case 0:
			return &Ident{Name: fmt.Sprintf("c%d", rng.Intn(4))}
		case 1:
			return &Lit{Kind: 'i', I: int64(rng.Intn(100))}
		case 2:
			return &Lit{Kind: 'f', F: float64(rng.Intn(100)) + 0.5}
		default:
			return &Lit{Kind: 's', S: fmt.Sprintf("v%d", rng.Intn(10))}
		}
	}
	ops := []string{"+", "-", "*", "/", "%", "=", "<>", "<", "<=", ">", ">=", "AND", "OR"}
	return &BinExpr{
		Op: ops[rng.Intn(len(ops))],
		L:  randExpr(rng, depth-1),
		R:  randExpr(rng, depth-1),
	}
}

// Property: parsing a rendered statement reproduces the same rendering —
// parse∘render is a fixpoint (rendering is canonical, so one round trip
// must be stable).
func TestQuickParseRenderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 300; iter++ {
		s := &SelectStmt{Limit: -1}
		s.Distinct = rng.Intn(4) == 0
		nItems := 1 + rng.Intn(3)
		for i := 0; i < nItems; i++ {
			it := SelectItem{Expr: randExpr(rng, 2)}
			if rng.Intn(2) == 0 {
				it.Alias = fmt.Sprintf("a%d", i)
			}
			s.Items = append(s.Items, it)
		}
		fi := FromItem{Name: "t0"}
		if rng.Intn(2) == 0 {
			fi.Window = &WindowSpec{Tuples: true, Size: 8, Slide: 4}
		}
		if rng.Intn(2) == 0 {
			fi.Alias = "x"
		}
		s.From = []FromItem{fi}
		if rng.Intn(2) == 0 {
			s.Where = randExpr(rng, 2)
		}
		if rng.Intn(3) == 0 {
			s.GroupBy = []Expr{&Ident{Name: "c0"}}
			s.Having = &BinExpr{Op: ">", L: &CallExpr{Name: "count", Star: true}, R: &Lit{Kind: 'i', I: 1}}
		}
		if rng.Intn(3) == 0 {
			s.OrderBy = []OrderItem{{Expr: &Ident{Name: "c1"}, Desc: rng.Intn(2) == 0}}
		}
		if rng.Intn(3) == 0 {
			s.Limit = int64(rng.Intn(50))
		}

		text := renderSelect(s)
		parsed, err := Parse(text)
		if err != nil {
			t.Fatalf("iter %d: parse(%q): %v", iter, text, err)
		}
		again := renderSelect(parsed.(*SelectStmt))
		if again != text {
			t.Fatalf("iter %d: round trip unstable:\n1: %s\n2: %s", iter, text, again)
		}
	}
}

// Property: the lexer never loses or invents token content for valid
// statements — re-lexing the rendered form yields identical token streams.
func TestQuickLexStability(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 200; iter++ {
		e := randExpr(rng, 3)
		src := "SELECT " + e.String() + " FROM t"
		t1, err := Lex(src)
		if err != nil {
			t.Fatalf("lex(%q): %v", src, err)
		}
		t2, err := Lex(src)
		if err != nil || len(t1) != len(t2) {
			t.Fatalf("lex unstable for %q", src)
		}
		for i := range t1 {
			if t1[i].Kind != t2[i].Kind || t1[i].Text != t2[i].Text {
				t.Fatalf("token %d differs for %q", i, src)
			}
		}
	}
}
