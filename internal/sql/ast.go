package sql

import (
	"fmt"
	"strings"
	"time"
)

// Stmt is any parsed SQL statement.
type Stmt interface{ stmt() }

// ColumnDef is one column of a CREATE TABLE/STREAM definition.
type ColumnDef struct {
	Name string
	Type string // SQL type name, resolved to a bat.Kind by the catalog
}

// CreateTable is CREATE TABLE name (cols).
type CreateTable struct {
	Name string
	Cols []ColumnDef
}

func (*CreateTable) stmt() {}

// CreateStream is CREATE STREAM name (cols) [SHARD n [KEY col]] — the
// DataCell DDL extension that declares a stream and its input basket.
// SHARD partitions the basket into n shards for parallel ingestion and
// factory execution; KEY names the hash-partitioning column (round-robin
// without it).
type CreateStream struct {
	Name   string
	Cols   []ColumnDef
	Shards int    // 0 = engine default
	Key    string // partitioning column; "" = round-robin
}

func (*CreateStream) stmt() {}

// DropStmt is DROP TABLE/STREAM/QUERY name.
type DropStmt struct {
	What string // "TABLE", "STREAM" or "QUERY"
	Name string
}

func (*DropStmt) stmt() {}

// Insert is INSERT INTO name VALUES (...), (...).
type Insert struct {
	Table string
	Rows  [][]Expr // literal expressions only
}

func (*Insert) stmt() {}

// SetTenantQuota is the DataCell admission-control DDL:
//
//	SET TENANT QUOTA name [MAX_QUERIES n] [APPEND_ROWS_PER_SEC r] [LAG_WINDOWS n]
//
// Every word after SET is contextual (they lex as identifiers), so
// columns named "tenant" or "quota" stay legal elsewhere. The three
// limit clauses mirror the engine's TenantQuota fields, may appear in
// any order, and default to 0 — unlimited — when omitted, so a bare
// SET TENANT QUOTA t clears every limit. Putting quotas in DDL means an
// -init script can restore them on restart alongside the schema.
type SetTenantQuota struct {
	Tenant           string
	MaxQueries       int64
	AppendRowsPerSec float64
	LagWindows       int64
}

func (*SetTenantQuota) stmt() {}

// RegisterQuery is the DataCell continuous-query registration:
//
//	REGISTER [INCREMENTAL|REEVAL] [ISOLATED] QUERY name [TENANT t] AS SELECT ...
//
// Mode selects between the paper's two execution modes; empty means let
// the optimizer choose (incremental when the plan supports it). ISOLATED
// (contextual, like SHARD/KEY in CREATE STREAM) opts the query out of
// shared multi-query execution: it keeps its own basket cursors and
// slicers instead of joining the stream's query group — the knob behind
// the grouped-vs-isolated fan-out benchmarks. TENANT (also contextual)
// attributes the query to a named tenant for quota accounting and
// admission control. NOFUSE (contextual, between the name/TENANT clause
// and AS) disables the fused vectorized tail executor — results are
// byte-identical, only the evaluation strategy changes; it is the SQL
// form of the RegisterOptions.NoFuse ablation knob.
type RegisterQuery struct {
	Name     string
	Mode     string // "", "INCREMENTAL" or "REEVAL"
	Isolated bool
	Tenant   string // "" when untenanted
	NoFuse   bool
	Select   *SelectStmt
}

func (*RegisterQuery) stmt() {}

// SelectStmt is a (possibly continuous) SELECT.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []FromItem
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int64 // -1 when absent
}

func (*SelectStmt) stmt() {}

// SelectItem is one projection; Star marks "*".
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
}

// FromItem is a table or stream reference, optionally windowed. A window
// spec on a table is rejected at bind time.
type FromItem struct {
	Name   string
	Alias  string
	Window *WindowSpec
}

// JoinClause is an explicit JOIN ... ON appended to the first FromItem.
type JoinClause struct {
	Right FromItem
	On    Expr
}

// WindowSpec is the bracketed stream window clause:
//
//	[SIZE n [SLIDE m]]                  — tuple-based window
//	[RANGE n UNIT [SLIDE m UNIT] [ON col]] — time-based window
//
// SLIDE defaults to the window size (a tumbling window). ON names the
// timestamp attribute for time windows and defaults to the stream's first
// TIMESTAMP column.
type WindowSpec struct {
	Tuples   bool
	Size     int64         // tuple count when Tuples
	Slide    int64         // tuple count when Tuples
	Range    time.Duration // when !Tuples
	SlideDur time.Duration // when !Tuples
	TimeCol  string        // optional, for time windows
}

// String renders the window spec back to SQL for plan printing.
func (w *WindowSpec) String() string {
	if w == nil {
		return ""
	}
	if w.Tuples {
		return fmt.Sprintf("[SIZE %d SLIDE %d]", w.Size, w.Slide)
	}
	on := ""
	if w.TimeCol != "" {
		on = " ON " + w.TimeCol
	}
	return fmt.Sprintf("[RANGE %v SLIDE %v%s]", w.Range, w.SlideDur, on)
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Expr is an unbound (name-based) SQL expression.
type Expr interface {
	fmt.Stringer
	expr()
}

// Ident is a possibly-qualified column reference (t.c or c).
type Ident struct {
	Qual string
	Name string
}

func (*Ident) expr() {}

// String implements fmt.Stringer.
func (e *Ident) String() string {
	if e.Qual != "" {
		return e.Qual + "." + e.Name
	}
	return e.Name
}

// Lit is a literal: integer, float, string or boolean.
type Lit struct {
	Kind byte // 'i', 'f', 's', 'b'
	I    int64
	F    float64
	S    string
	B    bool
}

func (*Lit) expr() {}

// String implements fmt.Stringer.
func (e *Lit) String() string {
	switch e.Kind {
	case 'i':
		return fmt.Sprintf("%d", e.I)
	case 'f':
		return fmt.Sprintf("%g", e.F)
	case 's':
		return "'" + strings.ReplaceAll(e.S, "'", "''") + "'"
	case 'b':
		if e.B {
			return "true"
		}
		return "false"
	}
	return "?"
}

// BinExpr is a binary operation: arithmetic (+ - * / %), comparison
// (= <> < <= > >=) or logical (AND OR).
type BinExpr struct {
	Op   string
	L, R Expr
}

func (*BinExpr) expr() {}

// String implements fmt.Stringer.
func (e *BinExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

// NotExpr is NOT e.
type NotExpr struct{ E Expr }

func (*NotExpr) expr() {}

// String implements fmt.Stringer.
func (e *NotExpr) String() string { return fmt.Sprintf("(NOT %s)", e.E) }

// CallExpr is a function or aggregate call; Star marks count(*).
type CallExpr struct {
	Name string
	Args []Expr
	Star bool
}

func (*CallExpr) expr() {}

// String implements fmt.Stringer.
func (e *CallExpr) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}

// CastExpr is CAST(e AS type).
type CastExpr struct {
	E    Expr
	Type string
}

func (*CastExpr) expr() {}

// String implements fmt.Stringer.
func (e *CastExpr) String() string {
	return fmt.Sprintf("CAST(%s AS %s)", e.E, e.Type)
}
