package sql

import (
	"fmt"
	"strconv"
	"time"
)

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Stmt, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	p.accept(TokSymbol, ";")
	if !p.at(TokEOF, "") {
		return nil, p.errf("trailing input starting at %q", p.cur().Text)
	}
	return stmt, nil
}

// ParseScript parses a semicolon-separated sequence of statements,
// ignoring empty statements.
func ParseScript(src string) ([]Stmt, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	var out []Stmt
	for !p.at(TokEOF, "") {
		if p.accept(TokSymbol, ";") {
			continue
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if !p.accept(TokSymbol, ";") && !p.at(TokEOF, "") {
			return nil, p.errf("expected ';' between statements, got %q", p.cur().Text)
		}
	}
	return out, nil
}

type parser struct {
	toks []Token
	pos  int
	src  string
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k TokKind, text string) bool {
	t := p.cur()
	return t.Kind == k && (text == "" || t.Text == text)
}

func (p *parser) accept(k TokKind, text string) bool {
	if p.at(k, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k TokKind, text string) (Token, error) {
	if p.at(k, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = [...]string{"EOF", "identifier", "keyword", "integer", "float", "string", "symbol"}[k]
	}
	return Token{}, p.errf("expected %s, got %q", want, p.cur().Text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: at offset %d: %s", p.cur().Pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.at(TokKeyword, "CREATE"):
		return p.parseCreate()
	case p.at(TokKeyword, "DROP"):
		return p.parseDrop()
	case p.at(TokKeyword, "INSERT"):
		return p.parseInsert()
	case p.at(TokKeyword, "SELECT"):
		return p.parseSelect()
	case p.at(TokKeyword, "REGISTER"):
		return p.parseRegister()
	case p.at(TokIdent, "set"):
		// SET is contextual: it only means anything at statement start, so
		// columns named "set" stay legal everywhere else.
		return p.parseSet()
	default:
		return nil, p.errf("unexpected %q at start of statement", p.cur().Text)
	}
}

func (p *parser) parseCreate() (Stmt, error) {
	p.next() // CREATE
	isStream := false
	switch {
	case p.accept(TokKeyword, "TABLE"):
	case p.accept(TokKeyword, "STREAM"):
		isStream = true
	default:
		return nil, p.errf("expected TABLE or STREAM after CREATE")
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSymbol, "("); err != nil {
		return nil, err
	}
	var cols []ColumnDef
	for {
		cn, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		// Type names lex as identifiers (INT, FLOAT, ...) or keywords
		// in no case here; accept an identifier.
		tt := p.cur()
		if tt.Kind != TokIdent && tt.Kind != TokKeyword {
			return nil, p.errf("expected type name, got %q", tt.Text)
		}
		p.next()
		cols = append(cols, ColumnDef{Name: cn.Text, Type: upper(tt.Text)})
		if p.accept(TokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(TokSymbol, ")"); err != nil {
		return nil, err
	}
	if isStream {
		st := &CreateStream{Name: name.Text, Cols: cols}
		// Optional SHARD n [KEY col]. SHARD and KEY are contextual (they
		// lex as identifiers), so columns of those names stay legal.
		if p.accept(TokIdent, "shard") {
			t, err := p.expect(TokInt, "")
			if err != nil {
				return nil, err
			}
			v, err := strconv.ParseInt(t.Text, 10, 32)
			if err != nil || v < 1 {
				return nil, p.errf("SHARD count must be a positive integer, got %q", t.Text)
			}
			st.Shards = int(v)
			if p.accept(TokIdent, "key") {
				kc, err := p.expect(TokIdent, "")
				if err != nil {
					return nil, err
				}
				st.Key = kc.Text
			}
		}
		return st, nil
	}
	return &CreateTable{Name: name.Text, Cols: cols}, nil
}

func (p *parser) parseDrop() (Stmt, error) {
	p.next() // DROP
	var what string
	switch {
	case p.accept(TokKeyword, "TABLE"):
		what = "TABLE"
	case p.accept(TokKeyword, "STREAM"):
		what = "STREAM"
	case p.accept(TokKeyword, "QUERY"):
		what = "QUERY"
	default:
		return nil, p.errf("expected TABLE, STREAM or QUERY after DROP")
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	return &DropStmt{What: what, Name: name.Text}, nil
}

func (p *parser) parseInsert() (Stmt, error) {
	p.next() // INSERT
	if _, err := p.expect(TokKeyword, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	ins := &Insert{Table: name.Text}
	for {
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(TokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if p.accept(TokSymbol, ",") {
			continue
		}
		break
	}
	return ins, nil
}

func (p *parser) parseRegister() (Stmt, error) {
	p.next() // REGISTER
	mode := ""
	switch {
	case p.accept(TokKeyword, "INCREMENTAL"):
		mode = "INCREMENTAL"
	case p.accept(TokKeyword, "REEVAL"):
		mode = "REEVAL"
	}
	// ISOLATED is contextual (not reserved), so columns named "isolated"
	// stay legal elsewhere.
	isolated := p.accept(TokIdent, "isolated")
	if _, err := p.expect(TokKeyword, "QUERY"); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	// TENANT is contextual too: it only has meaning between the query name
	// and AS, so columns named "tenant" stay legal elsewhere.
	tenant := ""
	if p.accept(TokIdent, "tenant") {
		t, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		tenant = t.Text
	}
	// NOFUSE is contextual as well: the fused-executor ablation knob,
	// legal only between the name/TENANT clause and AS.
	noFuse := p.accept(TokIdent, "nofuse")
	if _, err := p.expect(TokKeyword, "AS"); err != nil {
		return nil, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &RegisterQuery{Name: name.Text, Mode: mode, Isolated: isolated, Tenant: tenant, NoFuse: noFuse, Select: sel.(*SelectStmt)}, nil
}

// parseSet parses SET TENANT QUOTA name with its optional limit clauses
// (any order, each at most meaningful once — last occurrence wins, like
// repeated flags). The limit keywords are contextual identifiers.
func (p *parser) parseSet() (Stmt, error) {
	p.next() // set
	if !p.accept(TokIdent, "tenant") {
		return nil, p.errf("expected TENANT after SET")
	}
	if !p.accept(TokIdent, "quota") {
		return nil, p.errf("expected QUOTA after SET TENANT")
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	st := &SetTenantQuota{Tenant: name.Text}
	for {
		switch {
		case p.accept(TokIdent, "max_queries"):
			n, err := p.parseNonNegInt()
			if err != nil {
				return nil, err
			}
			st.MaxQueries = n
		case p.accept(TokIdent, "append_rows_per_sec"):
			r, err := p.parseNonNegNumber()
			if err != nil {
				return nil, err
			}
			st.AppendRowsPerSec = r
		case p.accept(TokIdent, "lag_windows"):
			n, err := p.parseNonNegInt()
			if err != nil {
				return nil, err
			}
			st.LagWindows = n
		default:
			if p.at(TokIdent, "") {
				return nil, p.errf("unknown quota clause %q (want MAX_QUERIES, APPEND_ROWS_PER_SEC or LAG_WINDOWS)", p.cur().Text)
			}
			return st, nil
		}
	}
}

func (p *parser) parseNonNegInt() (int64, error) {
	t, err := p.expect(TokInt, "")
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil || v < 0 {
		return 0, p.errf("expected non-negative integer, got %q", t.Text)
	}
	return v, nil
}

// parseNonNegNumber accepts an integer or float literal (rates read
// naturally either way: APPEND_ROWS_PER_SEC 1000 or 0.5).
func (p *parser) parseNonNegNumber() (float64, error) {
	t := p.cur()
	if t.Kind != TokInt && t.Kind != TokFloat {
		return 0, p.errf("expected number, got %q", t.Text)
	}
	p.next()
	v, err := strconv.ParseFloat(t.Text, 64)
	if err != nil || v < 0 {
		return 0, p.errf("expected non-negative number, got %q", t.Text)
	}
	return v, nil
}

func (p *parser) parseSelect() (Stmt, error) {
	if _, err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{Limit: -1}
	s.Distinct = p.accept(TokKeyword, "DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if p.accept(TokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		fi, err := p.parseFromItem()
		if err != nil {
			return nil, err
		}
		s.From = append(s.From, fi)
		if p.accept(TokSymbol, ",") {
			continue
		}
		break
	}
	for p.at(TokKeyword, "JOIN") || p.at(TokKeyword, "INNER") {
		p.accept(TokKeyword, "INNER")
		if _, err := p.expect(TokKeyword, "JOIN"); err != nil {
			return nil, err
		}
		right, err := p.parseFromItem()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Joins = append(s.Joins, JoinClause{Right: right, On: on})
	}
	if p.accept(TokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.accept(TokKeyword, "GROUP") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if p.accept(TokSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.accept(TokKeyword, "HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	if p.accept(TokKeyword, "ORDER") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(TokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(TokKeyword, "ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if p.accept(TokSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.accept(TokKeyword, "LIMIT") {
		t, err := p.expect(TokInt, "")
		if err != nil {
			return nil, err
		}
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil || v < 0 {
			return nil, p.errf("bad LIMIT %q", t.Text)
		}
		s.Limit = v
	}
	return s, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(TokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(TokKeyword, "AS") {
		a, err := p.expect(TokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a.Text
	} else if p.at(TokIdent, "") {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *parser) parseFromItem() (FromItem, error) {
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return FromItem{}, err
	}
	fi := FromItem{Name: name.Text}
	if p.accept(TokSymbol, "[") {
		w, err := p.parseWindowSpec()
		if err != nil {
			return FromItem{}, err
		}
		fi.Window = w
	}
	if p.accept(TokKeyword, "AS") {
		a, err := p.expect(TokIdent, "")
		if err != nil {
			return FromItem{}, err
		}
		fi.Alias = a.Text
	} else if p.at(TokIdent, "") {
		fi.Alias = p.next().Text
	}
	return fi, nil
}

func (p *parser) parseWindowSpec() (*WindowSpec, error) {
	w := &WindowSpec{}
	switch {
	case p.accept(TokKeyword, "SIZE"):
		w.Tuples = true
		n, err := p.parsePosInt()
		if err != nil {
			return nil, err
		}
		w.Size = n
		w.Slide = n // tumbling by default
		if p.accept(TokKeyword, "SLIDE") {
			m, err := p.parsePosInt()
			if err != nil {
				return nil, err
			}
			w.Slide = m
		}
	case p.accept(TokKeyword, "RANGE"):
		d, err := p.parseDuration()
		if err != nil {
			return nil, err
		}
		w.Range = d
		w.SlideDur = d
		if p.accept(TokKeyword, "SLIDE") {
			sd, err := p.parseDuration()
			if err != nil {
				return nil, err
			}
			w.SlideDur = sd
		}
		if p.accept(TokKeyword, "ON") {
			c, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			w.TimeCol = c.Text
		}
	default:
		return nil, p.errf("expected SIZE or RANGE in window spec")
	}
	if _, err := p.expect(TokSymbol, "]"); err != nil {
		return nil, err
	}
	if w.Tuples && (w.Slide > w.Size || w.Size%w.Slide != 0) {
		return nil, p.errf("window SLIDE must divide SIZE (got SIZE %d SLIDE %d)", w.Size, w.Slide)
	}
	if !w.Tuples && (w.SlideDur > w.Range || w.Range%w.SlideDur != 0) {
		return nil, p.errf("window SLIDE must divide RANGE (got RANGE %v SLIDE %v)", w.Range, w.SlideDur)
	}
	return w, nil
}

func (p *parser) parsePosInt() (int64, error) {
	t, err := p.expect(TokInt, "")
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil || v <= 0 {
		return 0, p.errf("expected positive integer, got %q", t.Text)
	}
	return v, nil
}

func (p *parser) parseDuration() (time.Duration, error) {
	n, err := p.parsePosInt()
	if err != nil {
		return 0, err
	}
	t := p.cur()
	if t.Kind != TokKeyword {
		return 0, p.errf("expected time unit, got %q", t.Text)
	}
	var unit time.Duration
	switch t.Text {
	case "MICROSECOND", "MICROSECONDS":
		unit = time.Microsecond
	case "MILLISECOND", "MILLISECONDS":
		unit = time.Millisecond
	case "SECOND", "SECONDS":
		unit = time.Second
	case "MINUTE", "MINUTES":
		unit = time.Minute
	case "HOUR", "HOURS":
		unit = time.Hour
	default:
		return 0, p.errf("expected time unit, got %q", t.Text)
	}
	p.next()
	return time.Duration(n) * unit, nil
}

// Expression grammar, loosest binding first:
//
//	expr    = orExpr
//	orExpr  = andExpr { OR andExpr }
//	andExpr = notExpr { AND notExpr }
//	notExpr = [NOT] cmpExpr
//	cmpExpr = addExpr [ cmpOp addExpr ]
//	addExpr = mulExpr { (+|-) mulExpr }
//	mulExpr = unary { (*|/|%) unary }
//	unary   = [-] primary
//	primary = literal | call | CAST | ident[.ident] | ( expr )
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(TokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.accept(TokSymbol, op) {
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &BinExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(TokSymbol, "+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: "+", L: l, R: r}
		case p.accept(TokSymbol, "-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(TokSymbol, "*"):
			op = "*"
		case p.accept(TokSymbol, "/"):
			op = "/"
		case p.accept(TokSymbol, "%"):
			op = "%"
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(TokSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Constant-fold negative literals.
		if lit, ok := e.(*Lit); ok {
			switch lit.Kind {
			case 'i':
				return &Lit{Kind: 'i', I: -lit.I}, nil
			case 'f':
				return &Lit{Kind: 'f', F: -lit.F}, nil
			}
		}
		return &BinExpr{Op: "-", L: &Lit{Kind: 'i', I: 0}, R: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.Text)
		}
		return &Lit{Kind: 'i', I: v}, nil
	case TokFloat:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf("bad float %q", t.Text)
		}
		return &Lit{Kind: 'f', F: v}, nil
	case TokString:
		p.next()
		return &Lit{Kind: 's', S: t.Text}, nil
	case TokKeyword:
		switch t.Text {
		case "TRUE":
			p.next()
			return &Lit{Kind: 'b', B: true}, nil
		case "FALSE":
			p.next()
			return &Lit{Kind: 'b', B: false}, nil
		case "CAST":
			p.next()
			if _, err := p.expect(TokSymbol, "("); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokKeyword, "AS"); err != nil {
				return nil, err
			}
			tt := p.cur()
			if tt.Kind != TokIdent && tt.Kind != TokKeyword {
				return nil, p.errf("expected type name in CAST")
			}
			p.next()
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return &CastExpr{E: e, Type: upper(tt.Text)}, nil
		}
		return nil, p.errf("unexpected keyword %q in expression", t.Text)
	case TokIdent:
		p.next()
		// Function call?
		if p.accept(TokSymbol, "(") {
			call := &CallExpr{Name: t.Text}
			if p.accept(TokSymbol, "*") {
				call.Star = true
				if _, err := p.expect(TokSymbol, ")"); err != nil {
					return nil, err
				}
				return call, nil
			}
			if !p.accept(TokSymbol, ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.accept(TokSymbol, ",") {
						continue
					}
					break
				}
				if _, err := p.expect(TokSymbol, ")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		// Qualified name?
		if p.accept(TokSymbol, ".") {
			c, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			return &Ident{Qual: t.Text, Name: c.Text}, nil
		}
		return &Ident{Name: t.Text}, nil
	case TokSymbol:
		if t.Text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected %q in expression", t.Text)
}

func upper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}
