package fabric

// Fuzzing of the fabric payload codecs. FuzzReadFrame (internal/emitter)
// covers the outer length-prefixed framing; this target drives the typed
// payload decoders that sit behind it — including the fragment and spec
// traffic a join's two fabric-fed sides generate — and pins a canonical
// round trip: any payload that parses re-marshals to bytes that parse to
// the same marshaling.

import (
	"bytes"
	"testing"

	"datacell/internal/bat"
	"datacell/internal/plan"
	"datacell/internal/window"
)

// The payload kinds the fuzzer dispatches on, mirroring the session frame
// types that carry typed payloads.
const (
	fzHello byte = iota
	fzStream
	fzSpec
	fzAppend
	fzWatermark
	fzFrag
	fzBatch
)

func fuzzChunk() *bat.Chunk {
	sch := bat.NewSchema([]string{"ts", "k", "v"}, []bat.Kind{bat.Time, bat.Int, bat.Float})
	return &bat.Chunk{Schema: sch, Cols: []bat.Vector{
		bat.Times{1000, 2000, 3000},
		bat.Ints{0, 1, 2},
		bat.Floats{0.5, 1.5, 2.5},
	}}
}

func FuzzWirePayloads(f *testing.F) {
	ch := fuzzChunk()
	f.Add(fzHello, marshalHello(helloMsg{Version: protoVersion, Index: 1, Snap: 42, ID: "w-1", DataAddr: "127.0.0.1:9"}))
	f.Add(fzStream, marshalStream(streamMsg{Name: "s", Schema: ch.Schema, Shards: 4, Lo: 0, Hi: 2}))
	// Join sides register one spec each; the sliding window is the joined
	// window both sides cut at.
	f.Add(fzSpec, marshalSpec(specMsg{ID: 7, Stream: "s", Win: &plan.Window{Size: 24, Slide: 12}}))
	f.Add(fzSpec, marshalSpec(specMsg{ID: 8, Stream: "r", Win: &plan.Window{Size: 24, Slide: 12}}))
	f.Add(fzAppend, marshalAppend(appendMsg{Stream: "s", Shard: 2, Arrival: 5, Seqs: bat.Ints{10, 11, 12}, Chunk: ch}))
	f.Add(fzAppend, marshalAppend(appendMsg{Stream: "r", Shard: 0, Arrival: 5, Seqs: bat.Ints{3, 9, 40}, Chunk: ch}))
	f.Add(fzWatermark, marshalWatermark(watermarkMsg{Stream: "s", Settled: 99, Specs: []specMax{{ID: 7, MaxTs: 5000}}}))
	f.Add(fzFrag, marshalFragMsg(fragMsg{Spec: 7, Shard: 1, Wm: 36, Frags: []*window.Frag{
		{Gen: 3, Shard: 1, Data: ch, MaxArrival: 5},
		{Gen: 4, Shard: 1, Data: ch, MaxArrival: 6},
	}}))
	// A coalesced batch as the lanes emit it: spec + append + frag back to
	// back.
	var batch []byte
	batch = appendSubFrame(batch, frameSpec, marshalSpec(specMsg{ID: 9, Stream: "s", Win: &plan.Window{Size: 8, Slide: 8}}))
	batch = appendSubFrame(batch, frameAppend, marshalAppend(appendMsg{Stream: "s", Shard: 1, Arrival: 1, Seqs: bat.Ints{0, 1, 2}, Chunk: ch}))
	batch = appendSubFrame(batch, frameFrag, marshalFragMsg(fragMsg{Spec: 9, Shard: 1, Wm: 8}))
	f.Add(fzBatch, batch)

	f.Fuzz(func(t *testing.T, kind byte, data []byte) {
		// remarshal parses data as the given kind and, on success, returns
		// the canonical bytes; a decode error returns nil.
		remarshal := func(src []byte) []byte {
			switch kind {
			case fzHello:
				m, err := unmarshalHello(src)
				if err != nil {
					return nil
				}
				return marshalHello(m)
			case fzStream:
				m, err := unmarshalStream(src)
				if err != nil {
					return nil
				}
				return marshalStream(m)
			case fzSpec:
				m, err := unmarshalSpec(src)
				if err != nil {
					return nil
				}
				return marshalSpec(m)
			case fzAppend:
				m, err := unmarshalAppend(src)
				if err != nil {
					return nil
				}
				return marshalAppend(m)
			case fzWatermark:
				m, err := unmarshalWatermark(src)
				if err != nil {
					return nil
				}
				return marshalWatermark(m)
			case fzFrag:
				m, err := unmarshalFragMsg(src)
				if err != nil {
					return nil
				}
				return marshalFragMsg(m)
			case fzBatch:
				var out []byte
				err := forEachSubFrame(src, func(ty byte, payload []byte) error {
					out = appendSubFrame(out, ty, payload)
					return nil
				})
				if err != nil {
					return nil
				}
				return out
			default:
				return nil
			}
		}
		b1 := remarshal(data)
		if b1 == nil {
			return
		}
		b2 := remarshal(b1)
		if b2 == nil {
			t.Fatalf("kind %d: canonical bytes failed to re-parse (%d bytes)", kind, len(b1))
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("kind %d: round trip diverged:\n%x\n%x", kind, b1, b2)
		}
	})
}
