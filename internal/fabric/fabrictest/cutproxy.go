package fabrictest

import (
	"io"
	"net"
	"sync"
	"time"
)

// CutProxy forwards TCP bytes to a target, cutting connection i after
// cuts[i] bytes have flowed in the worker→coordinator direction (mid-frame
// for any realistic limit); connections beyond len(cuts) pass through
// untouched. It is the byte-granular sibling of FaultProxy — no frame
// parsing, so a cut can land anywhere, including inside the length prefix.
type CutProxy struct {
	ln     net.Listener
	target string
	cuts   []int

	mu      sync.Mutex
	connIdx int
	wg      sync.WaitGroup
	conns   map[net.Conn]bool
	closed  bool
}

// NewCutProxy listens on loopback and forwards to target, applying cuts.
func NewCutProxy(target string, cuts []int) (*CutProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &CutProxy{ln: ln, target: target, cuts: cuts, conns: make(map[net.Conn]bool)}
	p.wg.Add(1)
	go p.accept()
	return p, nil
}

// Addr is the address workers should dial instead of the coordinator.
func (p *CutProxy) Addr() string { return p.ln.Addr().String() }

// CutsUsed reports how many scheduled cuts have been consumed by
// accepted connections.
func (p *CutProxy) CutsUsed() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.connIdx > len(p.cuts) {
		return len(p.cuts)
	}
	return p.connIdx
}

// Close stops the proxy and severs every live connection.
func (p *CutProxy) Close() {
	p.mu.Lock()
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	_ = p.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	p.wg.Wait()
}

func (p *CutProxy) accept() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = conn.Close()
			return
		}
		idx := p.connIdx
		p.connIdx++
		p.conns[conn] = true
		p.mu.Unlock()
		limit := -1
		if idx < len(p.cuts) {
			limit = p.cuts[idx]
		}
		p.wg.Add(1)
		go p.pipe(conn, limit)
	}
}

func (p *CutProxy) pipe(client net.Conn, limit int) {
	defer p.wg.Done()
	upstream, err := net.Dial("tcp", p.target)
	if err != nil {
		_ = client.Close()
		return
	}
	p.mu.Lock()
	p.conns[upstream] = true
	p.mu.Unlock()
	kill := func() {
		_ = client.Close()
		_ = upstream.Close()
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // coordinator → worker: untouched
		defer wg.Done()
		_, _ = io.Copy(client, upstream)
		kill()
	}()
	go func() { // worker → coordinator: cut after limit bytes
		defer wg.Done()
		if limit < 0 {
			_, _ = io.Copy(upstream, client)
		} else {
			_, _ = io.CopyN(upstream, client, int64(limit))
			// Leave the peer with a partial frame.
			time.Sleep(5 * time.Millisecond)
		}
		kill()
	}()
	wg.Wait()
	p.mu.Lock()
	delete(p.conns, client)
	delete(p.conns, upstream)
	p.mu.Unlock()
}
