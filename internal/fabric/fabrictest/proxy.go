// Package fabrictest provides reusable fault injection for fabric tests:
// TCP proxies that sit between a worker and its coordinator and cut,
// delay or duplicate traffic on a reproducible schedule. The fabric's
// recovery contract — any fault schedule yields output byte-identical to
// the fault-free run — is proven by driving workloads through these
// proxies (fabric_test.go, proc_test.go).
//
// The package is protocol-agnostic on purpose: it parses the emitter
// frame envelope but knows nothing about the fabric's frame vocabulary.
// Whether a frame is safe to duplicate (control frames are not) is the
// caller's call, supplied as a predicate — see fabric.DupSafe.
package fabrictest

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"datacell/internal/emitter"
)

// FaultKind is one class of injected fault.
type FaultKind int

const (
	// FaultCut severs the connection mid-frame: the frame's header and
	// half its payload are delivered, then both directions die. The peer
	// is left holding a torn frame, exactly like a real link loss.
	FaultCut FaultKind = iota
	// FaultDelay stalls the stream before forwarding the frame (head-of-
	// line, as TCP would).
	FaultDelay
	// FaultDup forwards the frame twice, if the proxy's DupOK predicate
	// allows it for this frame (session frames dedup by sequence; control
	// frames must not be duplicated).
	FaultDup
)

func (k FaultKind) String() string {
	switch k {
	case FaultCut:
		return "cut"
	case FaultDelay:
		return "delay"
	case FaultDup:
		return "dup"
	}
	return "?"
}

// Fault is one scheduled fault: when frame ordinal Frame (1-based,
// counted in the worker→coordinator direction, ACROSS reconnects — the
// counter survives a cut) passes through the proxy, apply Kind. A
// duplicate fault landing on a frame the DupOK predicate rejects (a
// control frame) is deferred to the next dup-safe frame rather than
// silently dropped, so every scheduled fault eventually fires as long as
// enough frames flow.
type Fault struct {
	Frame int
	Kind  FaultKind
	Delay time.Duration // FaultDelay only
}

// Schedule is a reproducible fault plan; the proxy applies it in frame
// order regardless of the order given here.
type Schedule []Fault

// RandomSchedule derives a fault plan from a seeded source: n faults at
// distinct frame ordinals in [1, maxFrame], with at least one cut so the
// schedule actually exercises a reconnect. Same source state, same
// schedule — failures reproduce from the seed.
func RandomSchedule(r *rand.Rand, n, maxFrame int) Schedule {
	if maxFrame < n {
		maxFrame = n
	}
	ordinals := r.Perm(maxFrame)[:n]
	s := make(Schedule, n)
	anyCut := false
	for i := range s {
		k := FaultKind(r.Intn(3))
		if k == FaultCut {
			anyCut = true
		}
		s[i] = Fault{
			Frame: 1 + ordinals[i],
			Kind:  k,
			Delay: time.Duration(1+r.Intn(20)) * time.Millisecond,
		}
	}
	if !anyCut && n > 0 {
		s[r.Intn(n)].Kind = FaultCut
	}
	return s
}

// FaultProxy is a frame-aware TCP proxy applying a Schedule to the
// worker→coordinator direction (a cut kills both directions; the
// coordinator→worker stream is otherwise forwarded untouched).
type FaultProxy struct {
	ln       net.Listener
	target   string
	schedule Schedule // sorted by Frame
	// DupOK gates FaultDup per frame. nil means never duplicate.
	DupOK func(emitter.Frame) bool

	mu        sync.Mutex
	frameNo   int // worker→coordinator frames seen, across connections
	nextFault int // index into schedule of the next pending fault
	dupOwed   bool
	triggered int
	wg        sync.WaitGroup
	conns     map[net.Conn]bool
	closed    bool
}

// NewFaultProxy listens on loopback and forwards to target under the
// schedule. Set DupOK before the first connection arrives.
func NewFaultProxy(target string, schedule Schedule) (*FaultProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	sorted := append(Schedule(nil), schedule...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Frame < sorted[j].Frame })
	p := &FaultProxy{ln: ln, target: target, schedule: sorted, conns: make(map[net.Conn]bool)}
	p.wg.Add(1)
	go p.accept()
	return p, nil
}

// Addr is the address workers should dial instead of the coordinator.
func (p *FaultProxy) Addr() string { return p.ln.Addr().String() }

// Triggered reports how many scheduled faults actually fired — tests
// assert it is nonzero, or the run proved nothing.
func (p *FaultProxy) Triggered() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.triggered
}

// Close stops the proxy and severs every live connection.
func (p *FaultProxy) Close() {
	p.mu.Lock()
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	_ = p.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	p.wg.Wait()
}

func (p *FaultProxy) accept() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = conn.Close()
			return
		}
		p.conns[conn] = true
		p.mu.Unlock()
		p.wg.Add(1)
		go p.pipe(conn)
	}
}

func (p *FaultProxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = true
	p.mu.Unlock()
}

func (p *FaultProxy) untrack(cs ...net.Conn) {
	p.mu.Lock()
	for _, c := range cs {
		delete(p.conns, c)
	}
	p.mu.Unlock()
}

// faultFor advances the global frame counter for one forwarded frame and
// reports the fault to apply to it, if any. A pending duplicate that the
// predicate rejected earlier (dupOwed) fires on the first dup-safe frame.
func (p *FaultProxy) faultFor(f emitter.Frame) *Fault {
	dupSafe := p.DupOK != nil && p.DupOK(f)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.frameNo++
	if p.dupOwed {
		if !dupSafe {
			return nil
		}
		p.dupOwed = false
		p.triggered++
		return &Fault{Kind: FaultDup}
	}
	if p.nextFault >= len(p.schedule) || p.frameNo < p.schedule[p.nextFault].Frame {
		return nil
	}
	fl := &p.schedule[p.nextFault]
	p.nextFault++
	if fl.Kind == FaultDup && !dupSafe {
		p.dupOwed = true
		return nil
	}
	p.triggered++
	return fl
}

func (p *FaultProxy) pipe(client net.Conn) {
	defer p.wg.Done()
	upstream, err := net.Dial("tcp", p.target)
	if err != nil {
		_ = client.Close()
		return
	}
	p.track(upstream)
	kill := func() {
		_ = client.Close()
		_ = upstream.Close()
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // coordinator → worker: untouched
		defer wg.Done()
		_, _ = io.Copy(client, upstream)
		kill()
	}()
	go func() { // worker → coordinator: frame-parsed, faults applied
		defer wg.Done()
		defer kill()
		for {
			f, err := emitter.ReadFrame(client)
			if err != nil {
				return
			}
			var buf bytes.Buffer
			if err := emitter.WriteFrame(&buf, f); err != nil {
				return
			}
			raw := buf.Bytes()
			if fl := p.faultFor(f); fl != nil {
				switch fl.Kind {
				case FaultCut:
					// Deliver a torn frame: header plus half the payload.
					_, _ = upstream.Write(raw[:len(raw)-len(f.Payload)/2-1])
					time.Sleep(5 * time.Millisecond)
					return
				case FaultDelay:
					time.Sleep(fl.Delay)
				case FaultDup:
					if _, err := upstream.Write(raw); err != nil {
						return
					}
				}
			}
			if _, err := upstream.Write(raw); err != nil {
				return
			}
		}
	}()
	wg.Wait()
	p.untrack(client, upstream)
}
