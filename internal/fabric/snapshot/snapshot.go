// Package snapshot defines the fabric worker's durable checkpoint: a
// versioned, self-describing encoding of everything a worker holds
// between epoch seals — per-shard basket contents, per-(shard, spec)
// slicer state with open epochs, the session cursors, and the unacked
// outbound frames. A worker that restores a snapshot and replays the
// coordinator's retained frames past the snapshot's receive cursor
// reconstructs its exact pre-crash state (worker output is a
// deterministic function of the applied frame prefix), which is what
// makes recovery lossless rather than reset-and-reseed (docs/RECOVERY.md).
//
// The shard-level encoding (AppendShardState/ReadShardState) doubles as
// the payload of the fabric's elastic shard handoff: the exporting worker
// marshals exactly what it would have checkpointed for the shard, and the
// installing worker restores it the same way the restart path does.
package snapshot

import (
	"encoding/binary"
	"fmt"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/emitter"
	"datacell/internal/plan"
	"datacell/internal/window"
)

// magic and version head every encoded snapshot. Decoders reject other
// versions outright — a worker refusing a snapshot it cannot read falls
// back to a full replay, which is slow but lossless.
var magic = [4]byte{'D', 'C', 'S', 'N'}

const version = 1

// Snapshot is one worker's complete checkpoint.
type Snapshot struct {
	// Index is the worker slot the snapshot belongs to.
	Index int
	// TxSeq is the worker's transmit sequence at capture; RxSeq the
	// highest coordinator frame applied to the captured state. RxSeq is
	// the snapshot cursor a restarting worker presents in its Hello.
	TxSeq, RxSeq uint64
	// Outbox holds the worker's sent-but-unacknowledged session frames:
	// replay regenerates frames after TxSeq, but these were generated
	// before the cursor and would otherwise be lost with the process.
	Outbox []emitter.Frame
	// Streams is the worker's per-stream state, sorted by name.
	Streams []StreamState
}

// StreamState is one exported stream's worker-side half.
type StreamState struct {
	Name    string
	Schema  bat.Schema
	Shards  int   // total across all workers
	Settled int64 // sealing sequence watermark
	Specs   []SpecState
	Locals  []ShardState // sorted by Global
}

// SpecState is one slicing spec registered on the stream.
type SpecState struct {
	ID    int64
	Win   *plan.Window
	MaxTs int64
}

// ShardState is one locally owned shard: its basket image plus each
// spec's cursor and slicer over it.
type ShardState struct {
	Global int
	Basket basket.State
	Specs  []ShardSpecState // sorted by Spec
}

// ShardSpecState is one (shard, spec) pair's consumption state.
type ShardSpecState struct {
	Spec   int64
	Cursor int64 // absolute basket read cursor
	SentWm int64 // last shipped flush watermark
	Slicer window.SlicerState
}

// Encode appends the versioned encoding of s to dst.
func Encode(dst []byte, s *Snapshot) []byte {
	dst = append(dst, magic[:]...)
	dst = append(dst, version)
	dst = binary.AppendUvarint(dst, uint64(s.Index))
	dst = binary.AppendUvarint(dst, s.TxSeq)
	dst = binary.AppendUvarint(dst, s.RxSeq)
	dst = binary.AppendUvarint(dst, uint64(len(s.Outbox)))
	for _, f := range s.Outbox {
		dst = append(dst, f.Type)
		dst = binary.AppendUvarint(dst, f.Seq)
		dst = binary.AppendUvarint(dst, uint64(len(f.Payload)))
		dst = append(dst, f.Payload...)
	}
	dst = binary.AppendUvarint(dst, uint64(len(s.Streams)))
	for i := range s.Streams {
		dst = appendStream(dst, &s.Streams[i])
	}
	return dst
}

func appendStream(dst []byte, st *StreamState) []byte {
	dst = bat.AppendString(dst, st.Name)
	dst = bat.MarshalSchema(dst, st.Schema)
	dst = binary.AppendUvarint(dst, uint64(st.Shards))
	dst = binary.AppendVarint(dst, st.Settled)
	dst = binary.AppendUvarint(dst, uint64(len(st.Specs)))
	for _, sp := range st.Specs {
		dst = binary.AppendVarint(dst, sp.ID)
		dst = plan.AppendWindow(dst, sp.Win)
		dst = binary.AppendVarint(dst, sp.MaxTs)
	}
	dst = binary.AppendUvarint(dst, uint64(len(st.Locals)))
	for i := range st.Locals {
		dst = AppendShardState(dst, &st.Locals[i])
	}
	return dst
}

// AppendShardState appends one shard's encoding — also the elastic
// handoff payload shipped worker → coordinator → worker.
func AppendShardState(dst []byte, sh *ShardState) []byte {
	dst = binary.AppendUvarint(dst, uint64(sh.Global))
	dst = binary.AppendVarint(dst, sh.Basket.Base)
	dst = binary.AppendVarint(dst, sh.Basket.NextSeq)
	dst = binary.AppendVarint(dst, sh.Basket.TotalIn)
	dst = bat.MarshalChunk(dst, sh.Basket.Rows)
	dst = bat.AppendInt64s(dst, sh.Basket.Arrivals)
	dst = bat.AppendInt64s(dst, sh.Basket.Seqs)
	dst = binary.AppendUvarint(dst, uint64(len(sh.Specs)))
	for _, sp := range sh.Specs {
		dst = binary.AppendVarint(dst, sp.Spec)
		dst = binary.AppendVarint(dst, sp.Cursor)
		dst = binary.AppendVarint(dst, sp.SentWm)
		dst = binary.AppendVarint(dst, sp.Slicer.NextGen)
		dst = binary.AppendVarint(dst, sp.Slicer.MaxGen)
		dst = binary.AppendUvarint(dst, uint64(len(sp.Slicer.Open)))
		for _, e := range sp.Slicer.Open {
			dst = binary.AppendVarint(dst, e.Gen)
			dst = binary.AppendVarint(dst, e.MaxArrival)
			dst = bat.MarshalChunk(dst, e.Data)
		}
	}
	return dst
}

// Decode parses a versioned snapshot. Malformed input returns an error,
// never panics (FuzzSnapshotRoundTrip pins this).
func Decode(src []byte) (*Snapshot, error) {
	if len(src) < len(magic)+1 {
		return nil, fmt.Errorf("snapshot: short header")
	}
	if string(src[:4]) != string(magic[:]) {
		return nil, fmt.Errorf("snapshot: bad magic %q", src[:4])
	}
	if src[4] != version {
		return nil, fmt.Errorf("snapshot: unsupported version %d", src[4])
	}
	src = src[5:]
	s := &Snapshot{}
	vals, src, err := readUvarints(src, 4)
	if err != nil {
		return nil, fmt.Errorf("snapshot: header: %w", err)
	}
	s.Index, s.TxSeq, s.RxSeq = int(vals[0]), vals[1], vals[2]
	nOut := vals[3]
	if nOut > uint64(len(src)) { // every frame costs ≥3 bytes
		return nil, fmt.Errorf("snapshot: claims %d outbox frames in %d bytes", nOut, len(src))
	}
	s.Outbox = make([]emitter.Frame, nOut)
	for i := range s.Outbox {
		if len(src) == 0 {
			return nil, fmt.Errorf("snapshot: outbox frame %d: short buffer", i)
		}
		f := emitter.Frame{Type: src[0]}
		src = src[1:]
		if f.Seq, src, err = bat.ReadUvarint(src); err != nil {
			return nil, fmt.Errorf("snapshot: outbox seq %d: %w", i, err)
		}
		n, rest, err := bat.ReadUvarint(src)
		if err != nil || n > uint64(len(rest)) {
			return nil, fmt.Errorf("snapshot: outbox payload %d", i)
		}
		if n > 0 {
			f.Payload = append([]byte(nil), rest[:n]...)
		}
		s.Outbox[i], src = f, rest[n:]
	}
	nStreams, src, err := bat.ReadUvarint(src)
	if err != nil || nStreams > uint64(len(src))+1 {
		return nil, fmt.Errorf("snapshot: stream count")
	}
	s.Streams = make([]StreamState, nStreams)
	for i := range s.Streams {
		if src, err = readStream(src, &s.Streams[i]); err != nil {
			return nil, fmt.Errorf("snapshot: stream %d: %w", i, err)
		}
	}
	return s, nil
}

func readStream(src []byte, st *StreamState) ([]byte, error) {
	var err error
	if st.Name, src, err = bat.ReadString(src); err != nil {
		return nil, fmt.Errorf("name: %w", err)
	}
	if st.Schema, src, err = bat.UnmarshalSchema(src); err != nil {
		return nil, fmt.Errorf("schema: %w", err)
	}
	shards, src, err := bat.ReadUvarint(src)
	if err != nil {
		return nil, fmt.Errorf("shards: %w", err)
	}
	st.Shards = int(shards)
	if st.Settled, src, err = bat.ReadVarint(src); err != nil {
		return nil, fmt.Errorf("settled: %w", err)
	}
	nSpecs, src, err := bat.ReadUvarint(src)
	if err != nil || nSpecs > uint64(len(src))+1 {
		return nil, fmt.Errorf("spec count")
	}
	st.Specs = make([]SpecState, nSpecs)
	for i := range st.Specs {
		sp := &st.Specs[i]
		if sp.ID, src, err = bat.ReadVarint(src); err != nil {
			return nil, fmt.Errorf("spec %d id: %w", i, err)
		}
		if sp.Win, src, err = plan.ReadWindow(src); err != nil {
			return nil, fmt.Errorf("spec %d window: %w", i, err)
		}
		if sp.MaxTs, src, err = bat.ReadVarint(src); err != nil {
			return nil, fmt.Errorf("spec %d max-ts: %w", i, err)
		}
	}
	nLocals, src, err := bat.ReadUvarint(src)
	if err != nil || nLocals > uint64(len(src))+1 {
		return nil, fmt.Errorf("shard count")
	}
	st.Locals = make([]ShardState, nLocals)
	for i := range st.Locals {
		if src, err = ReadShardState(src, &st.Locals[i]); err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return src, nil
}

// ReadShardState decodes one shard's encoding into sh, returning the
// remainder. The decoded state owns freshly allocated vectors.
func ReadShardState(src []byte, sh *ShardState) ([]byte, error) {
	global, src, err := bat.ReadUvarint(src)
	if err != nil {
		return nil, fmt.Errorf("global: %w", err)
	}
	sh.Global = int(global)
	if sh.Basket.Base, src, err = bat.ReadVarint(src); err != nil {
		return nil, fmt.Errorf("base: %w", err)
	}
	if sh.Basket.NextSeq, src, err = bat.ReadVarint(src); err != nil {
		return nil, fmt.Errorf("next-seq: %w", err)
	}
	if sh.Basket.TotalIn, src, err = bat.ReadVarint(src); err != nil {
		return nil, fmt.Errorf("total-in: %w", err)
	}
	if sh.Basket.Rows, src, err = bat.UnmarshalChunk(src); err != nil {
		return nil, fmt.Errorf("rows: %w", err)
	}
	rows := sh.Basket.Rows.Rows()
	var stamps []int64
	if stamps, src, err = bat.ReadInt64s(src, rows); err != nil {
		return nil, fmt.Errorf("arrivals: %w", err)
	}
	sh.Basket.Arrivals = stamps
	if stamps, src, err = bat.ReadInt64s(src, rows); err != nil {
		return nil, fmt.Errorf("seqs: %w", err)
	}
	sh.Basket.Seqs = stamps
	nSpecs, src, err := bat.ReadUvarint(src)
	if err != nil || nSpecs > uint64(len(src))+1 {
		return nil, fmt.Errorf("spec count")
	}
	sh.Specs = make([]ShardSpecState, nSpecs)
	for i := range sh.Specs {
		sp := &sh.Specs[i]
		if sp.Spec, src, err = bat.ReadVarint(src); err != nil {
			return nil, fmt.Errorf("spec %d id: %w", i, err)
		}
		if sp.Cursor, src, err = bat.ReadVarint(src); err != nil {
			return nil, fmt.Errorf("spec %d cursor: %w", i, err)
		}
		if sp.SentWm, src, err = bat.ReadVarint(src); err != nil {
			return nil, fmt.Errorf("spec %d sent-wm: %w", i, err)
		}
		if sp.Slicer.NextGen, src, err = bat.ReadVarint(src); err != nil {
			return nil, fmt.Errorf("spec %d next-gen: %w", i, err)
		}
		if sp.Slicer.MaxGen, src, err = bat.ReadVarint(src); err != nil {
			return nil, fmt.Errorf("spec %d max-gen: %w", i, err)
		}
		nOpen, rest, err := bat.ReadUvarint(src)
		if err != nil || nOpen > uint64(len(rest))+1 {
			return nil, fmt.Errorf("spec %d open count", i)
		}
		src = rest
		sp.Slicer.Open = make([]window.OpenEpoch, nOpen)
		for j := range sp.Slicer.Open {
			e := &sp.Slicer.Open[j]
			if e.Gen, src, err = bat.ReadVarint(src); err != nil {
				return nil, fmt.Errorf("spec %d epoch %d gen: %w", i, j, err)
			}
			if e.MaxArrival, src, err = bat.ReadVarint(src); err != nil {
				return nil, fmt.Errorf("spec %d epoch %d arrival: %w", i, j, err)
			}
			if e.Data, src, err = bat.UnmarshalChunk(src); err != nil {
				return nil, fmt.Errorf("spec %d epoch %d data: %w", i, j, err)
			}
		}
	}
	return src, nil
}

func readUvarints(src []byte, n int) ([]uint64, []byte, error) {
	out := make([]uint64, n)
	var err error
	for i := range out {
		if out[i], src, err = bat.ReadUvarint(src); err != nil {
			return nil, nil, err
		}
	}
	return out, src, nil
}
