package snapshot

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/emitter"
	"datacell/internal/plan"
	"datacell/internal/window"
)

// sampleSnapshot builds a representative checkpoint: two streams, tuple
// and time specs, shards with rows, open epochs, and unacked outbox
// frames — every branch of the codec.
func sampleSnapshot() *Snapshot {
	sch := bat.NewSchema([]string{"ts", "k", "v"}, []bat.Kind{bat.Time, bat.Int, bat.Float})
	chunk := func(n, off int) *bat.Chunk {
		ts := make(bat.Times, n)
		ks := make(bat.Ints, n)
		vs := make(bat.Floats, n)
		for i := range ts {
			ts[i] = int64(off+i) * 1000
			ks[i] = int64(i % 3)
			vs[i] = float64(i) / 2
		}
		return &bat.Chunk{Schema: sch, Cols: []bat.Vector{ts, ks, vs}}
	}
	tupleWin := &plan.Window{Tuples: true, Size: 20, Slide: 10}
	timeWin := &plan.Window{Range: 2 * time.Second, SlideDur: time.Second, TimeIdx: 0}
	return &Snapshot{
		Index: 1,
		TxSeq: 41,
		RxSeq: 117,
		Outbox: []emitter.Frame{
			{Type: 13, Seq: 40, Payload: []byte("frag-bytes")},
			{Type: 13, Seq: 41, Payload: nil},
		},
		Streams: []StreamState{
			{
				Name:    "s",
				Schema:  sch,
				Shards:  4,
				Settled: 220,
				Specs: []SpecState{
					{ID: 1, Win: tupleWin, MaxTs: -1 << 62},
					{ID: 2, Win: timeWin, MaxTs: 5_000_000},
				},
				Locals: []ShardState{
					{
						Global: 2,
						Basket: basket.State{
							Base: 30, NextSeq: 7, TotalIn: 45,
							Rows:     chunk(15, 30),
							Arrivals: bat.Ints{200, 200, 201, 202, 202, 203, 203, 204, 204, 205, 206, 207, 208, 209, 210},
							Seqs:     bat.Ints{30, 31, 32, 33, 34, 35, 36, 37, 38, 39, 40, 41, 42, 43, 44},
						},
						Specs: []ShardSpecState{
							{
								Spec: 1, Cursor: 38, SentWm: 190,
								Slicer: window.SlicerState{
									NextGen: 4, MaxGen: 3,
									Open: []window.OpenEpoch{
										{Gen: 3, MaxArrival: 203, Data: chunk(6, 30)},
										{Gen: 4, MaxArrival: 209, Data: chunk(2, 36)},
									},
								},
							},
							{
								Spec: 2, Cursor: 45, SentWm: 4_000_000,
								Slicer: window.SlicerState{NextGen: 0, MaxGen: 5},
							},
						},
					},
					{
						Global: 3,
						Basket: basket.State{Rows: chunk(0, 0), Arrivals: bat.Ints{}, Seqs: bat.Ints{}},
					},
				},
			},
			{Name: "t", Schema: sch, Shards: 2, Settled: -1},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := sampleSnapshot()
	enc := Encode(nil, want)
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	// Semantic spot checks plus byte-identity of the re-encoding (the
	// encoding is canonical; decode may normalize nil vs empty slices, so
	// the re-encoding — not DeepEqual — is the round-trip oracle).
	if got.Index != want.Index || got.TxSeq != want.TxSeq || got.RxSeq != want.RxSeq {
		t.Fatalf("cursors diverge: %+v vs %+v", got, want)
	}
	if len(got.Outbox) != 2 || got.Outbox[0].Seq != 40 || string(got.Outbox[0].Payload) != "frag-bytes" {
		t.Fatalf("outbox diverges: %+v", got.Outbox)
	}
	if len(got.Streams) != 2 || got.Streams[0].Name != "s" || got.Streams[0].Settled != 220 {
		t.Fatalf("streams diverge: %+v", got.Streams)
	}
	sh := got.Streams[0].Locals[0]
	if sh.Global != 2 || sh.Basket.Base != 30 || sh.Basket.Rows.Rows() != 15 ||
		len(sh.Specs) != 2 || len(sh.Specs[0].Slicer.Open) != 2 ||
		sh.Specs[0].Slicer.Open[1].Data.Rows() != 2 {
		t.Fatalf("shard state diverges: %+v", sh)
	}
	if w := got.Streams[0].Specs[1].Win; w.Tuples || w.Range != 2*time.Second || w.SlideDur != time.Second {
		t.Fatalf("time window diverges: %+v", w)
	}
	if !bytes.Equal(Encode(nil, got), enc) {
		t.Fatal("re-encoding is not byte-identical")
	}
}

func TestShardStateRoundTrip(t *testing.T) {
	want := &sampleSnapshot().Streams[0].Locals[0]
	enc := AppendShardState(nil, want)
	var got ShardState
	rest, err := ReadShardState(enc, &got)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}
	if !bytes.Equal(AppendShardState(nil, &got), enc) {
		t.Fatal("re-encoding is not byte-identical")
	}
}

// TestDecodeMalformed pins that truncations and corruptions of a valid
// snapshot error out rather than panic or succeed silently.
func TestDecodeMalformed(t *testing.T) {
	enc := Encode(nil, sampleSnapshot())
	if _, err := Decode(nil); err == nil {
		t.Fatal("decoded empty input")
	}
	for cut := 0; cut < len(enc); cut += 7 {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("decoded truncation at %d", cut)
		}
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 'X'
	if _, err := Decode(bad); err == nil {
		t.Fatal("decoded bad magic")
	}
	bad = append([]byte(nil), enc...)
	bad[4] = version + 1
	if _, err := Decode(bad); err == nil {
		t.Fatal("decoded unsupported version")
	}
}

func TestStoreSaveLoadRemove(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snaps") // Save must MkdirAll
	if s, err := Load(dir, 3); err != nil || s != nil {
		t.Fatalf("missing snapshot: got (%v, %v), want (nil, nil)", s, err)
	}
	want := sampleSnapshot()
	if err := Save(dir, 3, Encode(nil, want)); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(Encode(nil, got), Encode(nil, want)) {
		t.Fatal("loaded snapshot differs from saved")
	}
	// Overwrite goes through a temp file + rename; no temp litter remains.
	if err := Save(dir, 3, Encode(nil, want)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "worker-3.snap" {
		t.Fatalf("directory not clean after overwrite: %v", entries)
	}
	// A corrupt file surfaces as an error, not a panic or a nil snapshot.
	if err := os.WriteFile(FileName(dir, 3), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, 3); err == nil {
		t.Fatal("loaded corrupt snapshot")
	}
	Remove(dir, 3)
	if s, err := Load(dir, 3); err != nil || s != nil {
		t.Fatalf("after Remove: got (%v, %v), want (nil, nil)", s, err)
	}
}

// FuzzSnapshotRoundTrip pins the decoder's two safety properties:
// arbitrary input never panics, and anything that decodes re-encodes to a
// canonical fixed point (encode∘decode is identity on encoder output).
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(Encode(nil, sampleSnapshot()))
	f.Add(Encode(nil, &Snapshot{}))
	f.Add([]byte("DCSN\x01"))
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		enc := Encode(nil, s)
		s2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoding failed: %v", err)
		}
		if !bytes.Equal(Encode(nil, s2), enc) {
			t.Fatal("encoding is not a fixed point")
		}
	})
}
