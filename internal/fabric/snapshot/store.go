package snapshot

import (
	"fmt"
	"os"
	"path/filepath"
)

// FileName is the snapshot file for one worker slot inside a snapshot
// directory.
func FileName(dir string, index int) string {
	return filepath.Join(dir, fmt.Sprintf("worker-%d.snap", index))
}

// Save atomically and durably writes an encoded snapshot for the given
// worker slot: the bytes land in a temp file in the same directory,
// fsynced before a rename replaces the previous snapshot, and the
// directory is fsynced after — so a crash mid-write leaves the old
// checkpoint intact, a reader never observes a torn file, and neither a
// process kill nor an OS crash/power loss can regress the snapshot once
// Save returns. That ordering matters because the worker acknowledges
// the snapshot cursor to the coordinator only after Save returns, and
// the coordinator prunes its replay log on the strength of the ack —
// pruning ahead of durability would reopen the loss window the snapshot
// exists to close.
func Save(dir string, index int, encoded []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	final := FileName(dir, index)
	tmp, err := os.CreateTemp(dir, fmt.Sprintf("worker-%d-*.tmp", index))
	if err != nil {
		return err
	}
	if _, err := tmp.Write(encoded); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	// The rename itself must survive a crash too: fsync the directory.
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	_ = d.Close()
	return err
}

// Load reads and decodes the worker's snapshot. A missing file is not an
// error — it returns (nil, nil), the fresh-start case.
func Load(dir string, index int) (*Snapshot, error) {
	data, err := os.ReadFile(FileName(dir, index))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %s: %w", FileName(dir, index), err)
	}
	return s, nil
}

// Remove deletes the worker's snapshot file (the coordinator told the
// worker its cursors are from another life — see the Welcome reset flag).
func Remove(dir string, index int) {
	_ = os.Remove(FileName(dir, index))
}
