package fabric

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"datacell"
	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/emitter"
	"datacell/internal/factory"
	"datacell/internal/plan"
)

// Options configures a Coordinator.
type Options struct {
	// Listen is the TCP address workers dial (default "127.0.0.1:0").
	Listen string
	// Workers is the fixed worker count; each exported stream's shard set
	// is partitioned into contiguous ranges across them by worker index.
	Workers int
}

// Coordinator is the fabric's engine-side half: it owns the exported
// streams' routing (partition + sequence-stamp appends, forward each
// shard's rows to its owning worker, broadcast sealing watermarks),
// receives the workers' sealed epoch fragments, and feeds them into the
// engine's query groups. It implements datacell.Fabric and attaches
// itself to the engine at construction.
type Coordinator struct {
	eng   *datacell.Engine
	ln    net.Listener
	wg    sync.WaitGroup
	peers []*peer

	mu      sync.Mutex
	streams map[string]*coordStream
	specs   map[int64]*coordSpec
	specSeq int64
	pings   map[int64]map[int]bool // nonce → worker indices still owing a pong
	pingSeq int64
	pingC   *sync.Cond
	closed  bool
}

// peer is the coordinator's view of one worker slot. The session (and its
// outbox) persists across the worker's connections.
type peer struct {
	idx  int
	sess *session

	mu sync.Mutex
	id string // last Hello's self-reported id
}

// coordStream is one exported stream's routing state. Its mutex serializes
// appends, spec changes and watermark broadcasts into the worker sessions,
// so every worker observes them in one consistent order.
type coordStream struct {
	name   string
	schema bat.Schema
	shards int
	ranges [][2]int // per worker, half-open

	mu    sync.Mutex
	sent  basket.SeqTracker
	specs map[int64]*coordSpec
}

// coordSpec is one query group's slicing spec.
type coordSpec struct {
	id  int64
	key string
	cs  *coordStream
	win *plan.Window

	mu      sync.Mutex
	g       *factory.Group
	maxTs   int64   // event-time high mark (time windows); minInt64 until rows
	applied []int64 // per-shard applied flush watermark (introspection)
}

const minInt64 = -1 << 63

// NewCoordinator starts a fabric coordinator over an engine and attaches
// itself as the engine's fabric.
func NewCoordinator(eng *datacell.Engine, opts Options) (*Coordinator, error) {
	if opts.Workers <= 0 {
		return nil, fmt.Errorf("fabric: coordinator needs at least one worker slot")
	}
	addr := opts.Listen
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		eng:     eng,
		ln:      ln,
		streams: make(map[string]*coordStream),
		specs:   make(map[int64]*coordSpec),
		pings:   make(map[int64]map[int]bool),
	}
	c.pingC = sync.NewCond(&c.mu)
	for i := 0; i < opts.Workers; i++ {
		c.peers = append(c.peers, &peer{idx: i, sess: newSession()})
	}
	eng.AttachFabric(c)
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr reports the address workers should dial.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Workers reports the worker slot count.
func (c *Coordinator) Workers() int { return len(c.peers) }

// ExportStream hands a stream's shard set to the fabric: shard ranges are
// assigned to the workers, the stream is tagged (the tag becomes part of
// every group key over it), and subsequent appends route to the workers
// instead of local baskets. Export before any query registers on the
// stream and before data flows.
func (c *Coordinator) ExportStream(name string) error {
	st, ok := c.eng.Stream(name)
	if !ok {
		return fmt.Errorf("fabric: unknown stream %q", name)
	}
	if st.Basket.Consumers() > 0 {
		return fmt.Errorf("fabric: stream %q already has local consumers; export before registering queries", name)
	}
	if st.Basket.Stats().TotalIn > 0 {
		return fmt.Errorf("fabric: stream %q already holds local rows; export before appending", name)
	}
	shards := st.Basket.NumShards()
	w := len(c.peers)
	cs := &coordStream{
		name:   name,
		schema: st.Schema(),
		shards: shards,
		specs:  make(map[int64]*coordSpec),
	}
	tags := make([]string, w)
	for i := 0; i < w; i++ {
		lo, hi := i*shards/w, (i+1)*shards/w
		cs.ranges = append(cs.ranges, [2]int{lo, hi})
		tags[i] = fmt.Sprintf("w%d:%d-%d", i, lo, hi)
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("fabric: coordinator closed")
	}
	if _, dup := c.streams[name]; dup {
		c.mu.Unlock()
		return fmt.Errorf("fabric: stream %q already exported", name)
	}
	c.streams[name] = cs
	c.mu.Unlock()

	st.MarkRemote("fabric[" + strings.Join(tags, ",") + "]")
	cs.mu.Lock()
	for i, p := range c.peers {
		p.sess.send(frameStream, marshalStream(streamMsg{
			Name: name, Schema: cs.schema, Shards: shards,
			Lo: cs.ranges[i][0], Hi: cs.ranges[i][1],
		}))
	}
	cs.mu.Unlock()
	st.Basket.SetRemote(func(parts []basket.RemotePart, base int64, rows int, arrival int64) {
		c.route(cs, parts, base, rows, arrival)
	})
	return nil
}

// route forwards one sequenced append to the owning workers and broadcasts
// the advanced sealing watermarks. It runs under the stream's routing
// mutex so concurrent appends reach every worker in one consistent order,
// and the announced settled watermark — the contiguous prefix of routed
// sequences — never runs ahead of rows already queued to the sessions.
func (c *Coordinator) route(cs *coordStream, parts []basket.RemotePart, base int64, rows int, arrival int64) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for _, p := range parts {
		w := cs.workerOf(p.Shard)
		c.peers[w].sess.send(frameAppend, marshalAppend(appendMsg{
			Stream: cs.name, Shard: p.Shard, Arrival: arrival,
			Seqs: p.Seqs, Chunk: p.Chunk,
		}))
	}
	cs.sent.Add(base, base+int64(rows))
	wm := watermarkMsg{Stream: cs.name, Settled: cs.sent.Watermark()}
	// One timestamp scan per distinct ordering column, not per spec —
	// many time-window groups almost always share one TimeIdx, and this
	// runs on the ingestion path under the routing mutex.
	var tsMax map[int]int64
	for _, sp := range cs.specs {
		if sp.win.Tuples {
			continue
		}
		mx, ok := tsMax[sp.win.TimeIdx]
		if !ok {
			mx = minInt64
			for _, p := range parts {
				for _, ts := range bat.AsInts(p.Chunk.Cols[sp.win.TimeIdx]) {
					if ts > mx {
						mx = ts
					}
				}
			}
			if tsMax == nil {
				tsMax = make(map[int]int64, 1)
			}
			tsMax[sp.win.TimeIdx] = mx
		}
		sp.mu.Lock()
		if mx > sp.maxTs {
			sp.maxTs = mx
		}
		mx = sp.maxTs
		sp.mu.Unlock()
		if mx != minInt64 {
			wm.Specs = append(wm.Specs, specMax{ID: sp.id, MaxTs: mx})
		}
	}
	sort.Slice(wm.Specs, func(i, j int) bool { return wm.Specs[i].ID < wm.Specs[j].ID })
	payload := marshalWatermark(wm)
	for i, p := range c.peers {
		if cs.ranges[i][0] == cs.ranges[i][1] {
			continue // no shards assigned: nothing to seal
		}
		p.sess.send(frameWatermark, payload)
	}
}

func (cs *coordStream) workerOf(shard int) int {
	for i, r := range cs.ranges {
		if shard >= r[0] && shard < r[1] {
			return i
		}
	}
	return 0
}

// AddSpec implements datacell.Fabric: a query group forming over an
// exported stream registers the slide granularity its workers must cut at.
// The scan schema must match the exported stream's — workers slice the raw
// stream layout, so a divergent scan schema would silently decode garbage.
func (c *Coordinator) AddSpec(stream, key string, win *plan.Window, schema bat.Schema) (*datacell.FabricSpec, error) {
	c.mu.Lock()
	cs, ok := c.streams[stream]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("fabric: stream %q not exported", stream)
	}
	if schema.String() != cs.schema.String() {
		c.mu.Unlock()
		return nil, fmt.Errorf("fabric: spec schema (%s) does not match exported stream %q (%s)",
			schema, stream, cs.schema)
	}
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("fabric: coordinator closed")
	}
	c.specSeq++
	sp := &coordSpec{
		id: c.specSeq, key: key, cs: cs, win: win,
		maxTs:   minInt64,
		applied: make([]int64, cs.shards),
	}
	for i := range sp.applied {
		sp.applied[i] = minInt64
	}
	c.specs[sp.id] = sp
	c.mu.Unlock()

	return &datacell.FabricSpec{
		Shards:  cs.shards,
		Attach:  func(g *factory.Group) { c.attachSpec(sp, g) },
		Advance: func(wm int64) { c.advanceSpec(sp, wm) },
		Drop:    func() { c.dropSpec(sp) },
	}, nil
}

// attachSpec arms a spec: the group is wired to receive fragments and the
// spec is broadcast, ordered against the stream's appends so every worker
// starts slicing at the same append boundary.
func (c *Coordinator) attachSpec(sp *coordSpec, g *factory.Group) {
	sp.mu.Lock()
	sp.g = g
	sp.mu.Unlock()
	cs := sp.cs
	cs.mu.Lock()
	cs.specs[sp.id] = sp
	payload := specPayload(sp)
	for i, p := range c.peers {
		if cs.ranges[i][0] == cs.ranges[i][1] {
			continue
		}
		p.sess.send(frameSpec, payload)
	}
	cs.mu.Unlock()
}

// advanceSpec forwards a forced time watermark (Engine.AdvanceTime, the
// heartbeat) to the spec's workers.
func (c *Coordinator) advanceSpec(sp *coordSpec, wm int64) {
	if sp.win.Tuples {
		return
	}
	cs := sp.cs
	cs.mu.Lock()
	sp.mu.Lock()
	if sp.maxTs == minInt64 {
		// No rows yet: nothing to force shut (mirrors frontEnd.advance).
		sp.mu.Unlock()
		cs.mu.Unlock()
		return
	}
	if wm > sp.maxTs {
		sp.maxTs = wm
	}
	wm = sp.maxTs
	sp.mu.Unlock()
	payload := marshalInt64s(sp.id, wm)
	for i, p := range c.peers {
		if cs.ranges[i][0] == cs.ranges[i][1] {
			continue
		}
		p.sess.send(frameAdvance, payload)
	}
	cs.mu.Unlock()
}

// dropSpec retires a spec on teardown of its query group.
func (c *Coordinator) dropSpec(sp *coordSpec) {
	cs := sp.cs
	cs.mu.Lock()
	delete(cs.specs, sp.id)
	payload := marshalInt64s(sp.id)
	for i, p := range c.peers {
		if cs.ranges[i][0] == cs.ranges[i][1] {
			continue
		}
		p.sess.send(frameSpecDrop, payload)
	}
	cs.mu.Unlock()
	c.mu.Lock()
	delete(c.specs, sp.id)
	c.mu.Unlock()
}

// Drain is the fabric-wide synchronization barrier: it pings every worker,
// waits until each has replied — sessions are FIFO, so by then every
// fragment for previously routed appends has been received and applied —
// and then drains the engine's scheduler for the member tails. Blocks
// until every worker (re)connects and catches up.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.pingSeq++
	nonce := c.pingSeq
	owing := make(map[int]bool, len(c.peers))
	for _, p := range c.peers {
		owing[p.idx] = true
	}
	c.pings[nonce] = owing
	c.mu.Unlock()
	payload := marshalInt64s(nonce)
	for _, p := range c.peers {
		p.sess.send(framePing, payload)
	}
	c.mu.Lock()
	for len(c.pings[nonce]) > 0 && !c.closed {
		c.pingC.Wait()
	}
	delete(c.pings, nonce)
	c.mu.Unlock()
	c.eng.Drain()
}

// Close shuts the fabric down: Bye is broadcast (workers exit their dial
// loops), queued frames get a bounded flush, and the listener and all
// sessions close.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.pingC.Broadcast()
	for _, p := range c.peers {
		p.sess.send(frameBye, nil)
	}
	for _, p := range c.peers {
		p.sess.flushWait(2 * time.Second)
		p.sess.close()
	}
	_ = c.ln.Close()
	c.wg.Wait()
}

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go c.handleConn(conn)
	}
}

// handleConn runs one worker connection: Hello handshake, session
// reattach + replay, then the frame loop applying fragments and barrier
// replies.
func (c *Coordinator) handleConn(conn net.Conn) {
	defer c.wg.Done()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := emitter.ReadFrame(conn)
	if err != nil || f.Type != frameHello {
		_ = conn.Close()
		return
	}
	hello, err := unmarshalHello(f.Payload)
	if err != nil || hello.Version != protoVersion ||
		hello.Index < 0 || hello.Index >= len(c.peers) {
		_ = conn.Close()
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	p := c.peers[hello.Index]
	p.mu.Lock()
	p.id = hello.ID
	p.mu.Unlock()
	if f.Seq == 0 && p.sess.peerProgress() {
		// A Hello cursor of zero from a worker that previously made
		// progress (acked or sent frames) means the worker process
		// restarted and lost its state — sessions resume connections, not
		// processes. (A first connect with traffic already buffered is NOT
		// this case: the peer made no progress, and the ordinary outbox
		// replay hands it the complete history.) Start a fresh session and
		// re-send the standing assignment so the worker rejoins; rows that
		// were buffered in the dead process's open epochs are gone, and
		// their windows seal with the surviving data once the new slicers'
		// watermarks pass them — node loss degrades to partial windows,
		// never to a wedged (or hot-looping) fabric.
		c.resetAndReseed(p)
		// Re-arm any drain barriers this worker still owes a pong — their
		// pings died with the old outbox.
		c.mu.Lock()
		var rearm []int64
		for nonce, owing := range c.pings {
			if owing[p.idx] {
				rearm = append(rearm, nonce)
			}
		}
		c.mu.Unlock()
		sort.Slice(rearm, func(i, j int) bool { return rearm[i] < rearm[j] })
		for _, nonce := range rearm {
			p.sess.send(framePing, marshalInt64s(nonce))
		}
	}
	// Welcome carries the coordinator's receive cursor so the worker can
	// prune and replay; it is queued ahead of the replayed session frames.
	welcome := emitter.Frame{Type: frameWelcome, Seq: p.sess.cursor()}
	p.sess.attach(conn, f.Seq, &welcome)

	for {
		f, err := emitter.ReadFrame(conn)
		if err != nil {
			p.sess.detach(conn)
			return
		}
		if f.Type == frameAck {
			p.sess.onAck(f.Seq)
			continue
		}
		fresh, gap := p.sess.accept(f.Seq)
		if gap {
			p.sess.detach(conn)
			return
		}
		if !fresh {
			continue
		}
		switch f.Type {
		case frameFrag:
			if m, err := unmarshalFragMsg(f.Payload); err == nil {
				c.applyFrag(m)
			}
		case framePong:
			if vals, err := unmarshalInt64s(f.Payload, 1); err == nil {
				c.mu.Lock()
				if owing, ok := c.pings[vals[0]]; ok {
					delete(owing, p.idx)
				}
				c.mu.Unlock()
				c.pingC.Broadcast()
			}
		}
		p.sess.sendCtl(emitter.Frame{Type: frameAck, Seq: p.sess.cursor()})
	}
}

// resetAndReseed rewinds a restarted worker's session and re-enqueues the
// standing state — stream shard-range assignments, active slicing specs,
// and the current sealing watermarks. The reset and every stream's
// snapshot happen under ALL the streams' routing mutexes at once (taken in
// name order; route only ever holds one, so the order cannot deadlock):
// a concurrent append either completes before the reset (its frames are
// wiped — part of the documented open-epoch loss) or starts after the
// snapshot, so no post-restart append can ever precede its stream's
// assignment in the fresh outbox.
func (c *Coordinator) resetAndReseed(p *peer) {
	c.mu.Lock()
	streams := make([]*coordStream, 0, len(c.streams))
	for _, cs := range c.streams {
		streams = append(streams, cs)
	}
	c.mu.Unlock()
	sort.Slice(streams, func(i, j int) bool { return streams[i].name < streams[j].name })
	for _, cs := range streams {
		cs.mu.Lock()
	}
	p.sess.reset()
	for _, cs := range streams {
		p.sess.send(frameStream, marshalStream(streamMsg{
			Name: cs.name, Schema: cs.schema, Shards: cs.shards,
			Lo: cs.ranges[p.idx][0], Hi: cs.ranges[p.idx][1],
		}))
		if cs.ranges[p.idx][0] == cs.ranges[p.idx][1] {
			continue
		}
		wm := watermarkMsg{Stream: cs.name, Settled: cs.sent.Watermark()}
		ids := make([]int64, 0, len(cs.specs))
		for id := range cs.specs {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			sp := cs.specs[id]
			p.sess.send(frameSpec, specPayload(sp))
			if !sp.win.Tuples {
				sp.mu.Lock()
				if sp.maxTs != minInt64 {
					wm.Specs = append(wm.Specs, specMax{ID: sp.id, MaxTs: sp.maxTs})
				}
				sp.mu.Unlock()
			}
		}
		// The watermark lets the fresh slicers seal (partial) epochs that
		// were pending when the old process died, unwedging the merge for
		// every surviving shard.
		p.sess.send(frameWatermark, marshalWatermark(wm))
	}
	for i := len(streams) - 1; i >= 0; i-- {
		streams[i].mu.Unlock()
	}
}

// specPayload marshals one spec's broadcast frame (shared by attachSpec
// and the restart re-seed so the two can never drift).
func specPayload(sp *coordSpec) []byte {
	return marshalSpec(specMsg{
		ID: sp.id, Stream: sp.cs.name, Tuples: sp.win.Tuples, Slide: sp.win.Slide,
		SlideUs: sp.win.SlideDur.Microseconds(), TimeIdx: int64(sp.win.TimeIdx),
	})
}

// applyFrag feeds one worker delivery into its query group's merger.
func (c *Coordinator) applyFrag(m fragMsg) {
	c.mu.Lock()
	sp := c.specs[m.Spec]
	c.mu.Unlock()
	if sp == nil || m.Shard < 0 || m.Shard >= sp.cs.shards {
		return // dropped spec or confused peer: ignore
	}
	sp.mu.Lock()
	g := sp.g
	if m.Wm > sp.applied[m.Shard] {
		sp.applied[m.Shard] = m.Wm
	}
	sp.mu.Unlock()
	if g == nil {
		return
	}
	g.OfferRemote(m.Shard, m.Frags, m.Wm)
}

// Describe implements datacell.Fabric: the \fabric introspection pane.
func (c *Coordinator) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fabric coordinator addr=%s workers=%d\n", c.Addr(), len(c.peers))
	for _, p := range c.peers {
		p.mu.Lock()
		id := p.id
		p.mu.Unlock()
		if id == "" {
			id = "-"
		}
		p.sess.mu.Lock()
		fmt.Fprintf(&b, "  worker %d id=%-12s connected=%-5v frames_out=%-8d frames_in=%-8d pending=%-6d reconnects=%d\n",
			p.idx, id, p.sess.conn != nil, p.sess.framesOut, p.sess.framesIn,
			len(p.sess.outbox), p.sess.reconnects)
		p.sess.mu.Unlock()
	}
	c.mu.Lock()
	names := make([]string, 0, len(c.streams))
	for n := range c.streams {
		names = append(names, n)
	}
	sort.Strings(names)
	specs := make([]*coordSpec, 0, len(c.specs))
	for _, sp := range c.specs {
		specs = append(specs, sp)
	}
	c.mu.Unlock()
	sort.Slice(specs, func(i, j int) bool { return specs[i].id < specs[j].id })
	for _, n := range names {
		c.mu.Lock()
		cs := c.streams[n]
		c.mu.Unlock()
		ranges := make([]string, len(cs.ranges))
		for i, r := range cs.ranges {
			ranges[i] = fmt.Sprintf("w%d:%d-%d", i, r[0], r[1])
		}
		cs.mu.Lock()
		settled := cs.sent.Watermark()
		cs.mu.Unlock()
		fmt.Fprintf(&b, "  stream %s shards=%d ranges=[%s] routed_settled=%d\n",
			n, cs.shards, strings.Join(ranges, " "), settled)
	}
	for _, sp := range specs {
		sp.mu.Lock()
		applied := make([]string, len(sp.applied))
		for i, wm := range sp.applied {
			if wm == minInt64 {
				applied[i] = "-"
			} else {
				applied[i] = fmt.Sprint(wm)
			}
		}
		sp.mu.Unlock()
		fmt.Fprintf(&b, "  spec %d stream=%s key=%s applied_wm=[%s]\n",
			sp.id, sp.cs.name, sp.key, strings.Join(applied, " "))
	}
	return strings.TrimRight(b.String(), "\n")
}
