package fabric

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"datacell"
	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/emitter"
	"datacell/internal/factory"
	"datacell/internal/plan"
)

// Options configures a Coordinator.
type Options struct {
	// Listen is the TCP address workers dial (default "127.0.0.1:0").
	Listen string
	// Workers is the fixed worker count; each exported stream's shard set
	// is initially partitioned into contiguous ranges across them by
	// worker index (Reassign moves individual shards afterwards).
	Workers int
}

// Coordinator is the fabric's engine-side half: it owns the exported
// streams' routing (partition + sequence-stamp appends, forward each
// shard's rows to its owning worker, broadcast sealing watermarks),
// receives the workers' sealed epoch fragments, and feeds them into the
// engine's query groups. It implements datacell.Fabric and attaches
// itself to the engine at construction.
//
// Worker loss is invisible: every worker session retains its outbound
// frames as a replay log bounded below by the worker's durable snapshot
// cursor, so a restarted worker — resuming from its snapshot, or from
// nothing — replays the delta and regenerates its state exactly
// (docs/RECOVERY.md). There is no reset path; recovery is always
// restore-and-replay.
type Coordinator struct {
	eng   *datacell.Engine
	ln    net.Listener
	wg    sync.WaitGroup
	peers []*peer

	mu      sync.Mutex
	streams map[string]*coordStream
	specs   map[int64]*coordSpec
	specSeq int64
	pings   map[int64]map[int]bool // nonce → worker indices still owing a pong
	pingSeq int64
	pingC   *sync.Cond
	closed  bool
	doneC   chan struct{} // closed by Close; unblocks waiters (Reassign)
}

// peer is the coordinator's view of one worker slot. The session (and its
// replay log) persists across the worker's connections and processes.
type peer struct {
	idx  int
	sess *session

	mu sync.Mutex
	id string // last Hello's self-reported id
}

// coordStream is one exported stream's routing state. Its mutex serializes
// appends, spec changes, watermark broadcasts and shard moves into the
// worker sessions, so every worker observes them in one consistent order.
type coordStream struct {
	name   string
	schema bat.Schema
	shards int

	mu     sync.Mutex
	owner  []int // per-shard owning worker index
	moving map[int]*shardMove
	sent   basket.SeqTracker
	specs  map[int64]*coordSpec
}

// shardMove is one in-flight Reassign: appends routed to the shard are
// queued here between the export request and the state's arrival, then
// flushed to the new owner right after the install frame.
type shardMove struct {
	to     int
	queued [][]byte // marshaled frameAppend payloads, in routing order
	done   chan struct{}
}

// coordSpec is one query group's slicing spec.
type coordSpec struct {
	id  int64
	key string
	cs  *coordStream
	win *plan.Window

	mu      sync.Mutex
	g       *factory.Group
	maxTs   int64   // event-time high mark (time windows); minInt64 until rows
	applied []int64 // per-shard applied flush watermark (introspection)
}

const minInt64 = -1 << 63

// NewCoordinator starts a fabric coordinator over an engine and attaches
// itself as the engine's fabric.
func NewCoordinator(eng *datacell.Engine, opts Options) (*Coordinator, error) {
	if opts.Workers <= 0 {
		return nil, fmt.Errorf("fabric: coordinator needs at least one worker slot")
	}
	addr := opts.Listen
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		eng:     eng,
		ln:      ln,
		streams: make(map[string]*coordStream),
		specs:   make(map[int64]*coordSpec),
		pings:   make(map[int64]map[int]bool),
		doneC:   make(chan struct{}),
	}
	c.pingC = sync.NewCond(&c.mu)
	for i := 0; i < opts.Workers; i++ {
		c.peers = append(c.peers, &peer{idx: i, sess: newSession(true)})
	}
	eng.AttachFabric(c)
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr reports the address workers should dial.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Workers reports the worker slot count.
func (c *Coordinator) Workers() int { return len(c.peers) }

// ExportStream hands a stream's shard set to the fabric: shards are
// assigned to the workers, the stream is tagged (the tag becomes part of
// every group key over it), and subsequent appends route to the workers
// instead of local baskets. Export before any query registers on the
// stream and before data flows.
func (c *Coordinator) ExportStream(name string) error {
	st, ok := c.eng.Stream(name)
	if !ok {
		return fmt.Errorf("fabric: unknown stream %q", name)
	}
	if st.Basket.Consumers() > 0 {
		return fmt.Errorf("fabric: stream %q already has local consumers; export before registering queries", name)
	}
	if st.Basket.Stats().TotalIn > 0 {
		return fmt.Errorf("fabric: stream %q already holds local rows; export before appending", name)
	}
	shards := st.Basket.NumShards()
	w := len(c.peers)
	cs := &coordStream{
		name:   name,
		schema: st.Schema(),
		shards: shards,
		owner:  make([]int, shards),
		moving: make(map[int]*shardMove),
		specs:  make(map[int64]*coordSpec),
	}
	ranges := make([][2]int, w)
	tags := make([]string, w)
	for i := 0; i < w; i++ {
		lo, hi := i*shards/w, (i+1)*shards/w
		ranges[i] = [2]int{lo, hi}
		for sh := lo; sh < hi; sh++ {
			cs.owner[sh] = i
		}
		tags[i] = fmt.Sprintf("w%d:%d-%d", i, lo, hi)
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("fabric: coordinator closed")
	}
	if _, dup := c.streams[name]; dup {
		c.mu.Unlock()
		return fmt.Errorf("fabric: stream %q already exported", name)
	}
	c.streams[name] = cs
	c.mu.Unlock()

	st.MarkRemote("fabric[" + strings.Join(tags, ",") + "]")
	cs.mu.Lock()
	for i, p := range c.peers {
		p.sess.send(frameStream, marshalStream(streamMsg{
			Name: name, Schema: cs.schema, Shards: shards,
			Lo: ranges[i][0], Hi: ranges[i][1],
		}))
	}
	cs.mu.Unlock()
	st.Basket.SetRemote(func(parts []basket.RemotePart, base int64, rows int, arrival int64) {
		c.route(cs, parts, base, rows, arrival)
	})
	return nil
}

// route forwards one sequenced append to the owning workers and broadcasts
// the advanced sealing watermarks. It runs under the stream's routing
// mutex so concurrent appends reach every worker in one consistent order,
// and the announced settled watermark — the contiguous prefix of routed
// sequences — never runs ahead of rows already queued to the sessions.
func (c *Coordinator) route(cs *coordStream, parts []basket.RemotePart, base int64, rows int, arrival int64) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for _, p := range parts {
		payload := marshalAppend(appendMsg{
			Stream: cs.name, Shard: p.Shard, Arrival: arrival,
			Seqs: p.Seqs, Chunk: p.Chunk,
		})
		if mv := cs.moving[p.Shard]; mv != nil {
			// Shard in transit: hold the append until the new owner has
			// installed the shipped state, preserving per-shard order.
			mv.queued = append(mv.queued, payload)
			continue
		}
		c.peers[cs.owner[p.Shard]].sess.send(frameAppend, payload)
	}
	cs.sent.Add(base, base+int64(rows))
	wm := watermarkMsg{Stream: cs.name, Settled: cs.sent.Watermark()}
	// One timestamp scan per distinct ordering column, not per spec —
	// many time-window groups almost always share one TimeIdx, and this
	// runs on the ingestion path under the routing mutex.
	var tsMax map[int]int64
	for _, sp := range cs.specs {
		if sp.win.Tuples {
			continue
		}
		mx, ok := tsMax[sp.win.TimeIdx]
		if !ok {
			mx = minInt64
			for _, p := range parts {
				for _, ts := range bat.AsInts(p.Chunk.Cols[sp.win.TimeIdx]) {
					if ts > mx {
						mx = ts
					}
				}
			}
			if tsMax == nil {
				tsMax = make(map[int]int64, 1)
			}
			tsMax[sp.win.TimeIdx] = mx
		}
		sp.mu.Lock()
		if mx > sp.maxTs {
			sp.maxTs = mx
		}
		mx = sp.maxTs
		sp.mu.Unlock()
		if mx != minInt64 {
			wm.Specs = append(wm.Specs, specMax{ID: sp.id, MaxTs: mx})
		}
	}
	sort.Slice(wm.Specs, func(i, j int) bool { return wm.Specs[i].ID < wm.Specs[j].ID })
	payload := marshalWatermark(wm)
	for _, p := range c.peers {
		p.sess.send(frameWatermark, payload)
	}
}

// currentWatermarkLocked rebuilds the stream's sealing clocks from the
// current high marks (no new rows) — sent to a shard's new owner after an
// install so pending epochs seal without waiting for the next append.
// Caller holds cs.mu.
func (c *Coordinator) currentWatermarkLocked(cs *coordStream) []byte {
	wm := watermarkMsg{Stream: cs.name, Settled: cs.sent.Watermark()}
	for _, sp := range cs.specs {
		if sp.win.Tuples {
			continue
		}
		sp.mu.Lock()
		mx := sp.maxTs
		sp.mu.Unlock()
		if mx != minInt64 {
			wm.Specs = append(wm.Specs, specMax{ID: sp.id, MaxTs: mx})
		}
	}
	sort.Slice(wm.Specs, func(i, j int) bool { return wm.Specs[i].ID < wm.Specs[j].ID })
	return marshalWatermark(wm)
}

// Reassign moves one shard of an exported stream to another worker: the
// owner drains and exports the shard's state, appends routed meanwhile
// queue at the coordinator, and the new owner installs state, queued
// appends and the current watermark in order. Blocks until the handoff
// completes (the state frame arrives and the install is queued to the new
// owner) — callers wanting the install *applied* follow with Drain.
//
// Like Drain, Reassign waits out worker loss rather than failing: a dead
// owner holds its export frame in the retained session and answers it
// after recovery replay, so the move is delayed, never lost — a timeout
// here could only misreport a handoff that later completes (ownership
// would still flip when the state arrived, with routed appends queued
// against it in the meantime). The only abort is coordinator Close.
func (c *Coordinator) Reassign(stream string, shard, worker int) error {
	if worker < 0 || worker >= len(c.peers) {
		return fmt.Errorf("fabric: no worker slot %d", worker)
	}
	c.mu.Lock()
	cs := c.streams[stream]
	c.mu.Unlock()
	if cs == nil {
		return fmt.Errorf("fabric: stream %q not exported", stream)
	}
	if shard < 0 || shard >= cs.shards {
		return fmt.Errorf("fabric: stream %q has no shard %d", stream, shard)
	}
	cs.mu.Lock()
	if cs.owner[shard] == worker {
		cs.mu.Unlock()
		return nil
	}
	if cs.moving[shard] != nil {
		cs.mu.Unlock()
		return fmt.Errorf("fabric: stream %q shard %d already moving", stream, shard)
	}
	mv := &shardMove{to: worker, done: make(chan struct{})}
	cs.moving[shard] = mv
	c.peers[cs.owner[shard]].sess.send(frameShardExport, marshalShardRef(stream, shard))
	cs.mu.Unlock()

	select {
	case <-mv.done:
		return nil
	case <-c.doneC:
		// Closed mid-move: nothing can arrive on the dead sessions, so the
		// move is genuinely over, not merely slow.
		select {
		case <-mv.done:
			return nil
		default:
		}
		return fmt.Errorf("fabric: coordinator closed during stream %q shard %d handoff", stream, shard)
	}
}

// finishMove completes a Reassign when the exported shard state arrives:
// flip ownership, then install + queued appends + current watermark to
// the new owner, in session order.
func (c *Coordinator) finishMove(m shardBlobMsg) {
	c.mu.Lock()
	cs := c.streams[m.Stream]
	c.mu.Unlock()
	if cs == nil || m.Shard < 0 || m.Shard >= cs.shards {
		return
	}
	cs.mu.Lock()
	mv := cs.moving[m.Shard]
	if mv == nil {
		cs.mu.Unlock()
		return
	}
	delete(cs.moving, m.Shard)
	cs.owner[m.Shard] = mv.to
	sess := c.peers[mv.to].sess
	// The state bytes are forwarded verbatim — the coordinator relays,
	// it does not re-marshal.
	sess.send(frameShardInstall, marshalShardBlob(m.Stream, m.Shard, m.State))
	for _, payload := range mv.queued {
		sess.send(frameAppend, payload)
	}
	sess.send(frameWatermark, c.currentWatermarkLocked(cs))
	cs.mu.Unlock()
	close(mv.done)
}

// AddSpec implements datacell.Fabric: a query group forming over an
// exported stream registers the slide granularity its workers must cut at.
// The scan schema must match the exported stream's — workers slice the raw
// stream layout, so a divergent scan schema would silently decode garbage.
func (c *Coordinator) AddSpec(stream, key string, win *plan.Window, schema bat.Schema) (*datacell.FabricSpec, error) {
	c.mu.Lock()
	cs, ok := c.streams[stream]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("fabric: stream %q not exported", stream)
	}
	if schema.String() != cs.schema.String() {
		c.mu.Unlock()
		return nil, fmt.Errorf("fabric: spec schema (%s) does not match exported stream %q (%s)",
			schema, stream, cs.schema)
	}
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("fabric: coordinator closed")
	}
	c.specSeq++
	sp := &coordSpec{
		id: c.specSeq, key: key, cs: cs, win: win,
		maxTs:   minInt64,
		applied: make([]int64, cs.shards),
	}
	for i := range sp.applied {
		sp.applied[i] = minInt64
	}
	c.specs[sp.id] = sp
	c.mu.Unlock()

	return &datacell.FabricSpec{
		Shards:  cs.shards,
		Attach:  func(g *factory.Group) { c.attachSpec(sp, g) },
		Advance: func(wm int64) { c.advanceSpec(sp, wm) },
		Drop:    func() { c.dropSpec(sp) },
	}, nil
}

// attachSpec arms a spec: the group is wired to receive fragments and the
// spec is broadcast, ordered against the stream's appends so every worker
// starts slicing at the same append boundary. Every worker gets every
// spec — shards move between workers (Reassign), so there is no such
// thing as a worker a stream's specs cannot concern.
func (c *Coordinator) attachSpec(sp *coordSpec, g *factory.Group) {
	sp.mu.Lock()
	sp.g = g
	sp.mu.Unlock()
	cs := sp.cs
	cs.mu.Lock()
	cs.specs[sp.id] = sp
	payload := specPayload(sp)
	for _, p := range c.peers {
		p.sess.send(frameSpec, payload)
	}
	cs.mu.Unlock()
}

// advanceSpec forwards a forced time watermark (Engine.AdvanceTime, the
// heartbeat) to the spec's workers.
func (c *Coordinator) advanceSpec(sp *coordSpec, wm int64) {
	if sp.win.Tuples {
		return
	}
	cs := sp.cs
	cs.mu.Lock()
	sp.mu.Lock()
	if sp.maxTs == minInt64 {
		// No rows yet: nothing to force shut (mirrors frontEnd.advance).
		sp.mu.Unlock()
		cs.mu.Unlock()
		return
	}
	if wm > sp.maxTs {
		sp.maxTs = wm
	}
	wm = sp.maxTs
	sp.mu.Unlock()
	payload := marshalInt64s(sp.id, wm)
	for _, p := range c.peers {
		p.sess.send(frameAdvance, payload)
	}
	cs.mu.Unlock()
}

// dropSpec retires a spec on teardown of its query group.
func (c *Coordinator) dropSpec(sp *coordSpec) {
	cs := sp.cs
	cs.mu.Lock()
	delete(cs.specs, sp.id)
	payload := marshalInt64s(sp.id)
	for _, p := range c.peers {
		p.sess.send(frameSpecDrop, payload)
	}
	cs.mu.Unlock()
	c.mu.Lock()
	delete(c.specs, sp.id)
	c.mu.Unlock()
}

// Drain is the fabric-wide synchronization barrier: it pings every worker,
// waits until each has replied — sessions are FIFO, so by then every
// fragment for previously routed appends has been received and applied —
// and then drains the engine's scheduler for the member tails. Blocks
// until every worker (re)connects and catches up. Pings live in the
// retained outbox like any session frame, so a worker that dies holding
// one answers it after recovery replay.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.pingSeq++
	nonce := c.pingSeq
	owing := make(map[int]bool, len(c.peers))
	for _, p := range c.peers {
		owing[p.idx] = true
	}
	c.pings[nonce] = owing
	c.mu.Unlock()
	payload := marshalInt64s(nonce)
	for _, p := range c.peers {
		p.sess.send(framePing, payload)
	}
	c.mu.Lock()
	for len(c.pings[nonce]) > 0 && !c.closed {
		c.pingC.Wait()
	}
	delete(c.pings, nonce)
	c.mu.Unlock()
	c.eng.Drain()
}

// Close shuts the fabric down: Bye is broadcast (workers exit their dial
// loops), queued frames get a bounded flush, and the listener and all
// sessions close.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.doneC)
	c.pingC.Broadcast()
	for _, p := range c.peers {
		p.sess.send(frameBye, nil)
	}
	for _, p := range c.peers {
		p.sess.flushWait(2 * time.Second)
		p.sess.close()
	}
	_ = c.ln.Close()
	c.wg.Wait()
}

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go c.handleConn(conn)
	}
}

// handleConn runs one worker connection: Hello handshake, session
// reattach + replay, then the frame loop applying fragments, shard-state
// deliveries and barrier replies.
func (c *Coordinator) handleConn(conn net.Conn) {
	defer c.wg.Done()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := emitter.ReadFrame(conn)
	if err != nil || f.Type != frameHello {
		_ = conn.Close()
		return
	}
	hello, err := unmarshalHello(f.Payload)
	if err != nil || hello.Version != protoVersion ||
		hello.Index < 0 || hello.Index >= len(c.peers) {
		_ = conn.Close()
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	p := c.peers[hello.Index]
	p.mu.Lock()
	p.id = hello.ID
	p.mu.Unlock()
	if f.Seq > p.sess.sentSeq() {
		// The worker claims frames this coordinator never sent: its
		// cursors (snapshot included) are from another coordinator life.
		// Tell it to wipe and rejoin fresh — attaching would desynchronize
		// both streams.
		_ = emitter.WriteFrame(conn, emitter.Frame{
			Type: frameWelcome, Seq: p.sess.cursor(), Payload: []byte{welcomeReset}})
		_ = conn.Close()
		return
	}
	if hello.Snap > 0 {
		// The Hello's durable cursor doubles as a snap-ack (the ack frame
		// for the last checkpoint may have died with the old connection).
		p.sess.advanceSnap(hello.Snap)
	}
	// Welcome carries the coordinator's receive cursor so the worker can
	// prune and replay; it is queued ahead of the replayed session frames.
	welcome := emitter.Frame{Type: frameWelcome, Seq: p.sess.cursor()}
	p.sess.attach(conn, f.Seq, &welcome)

	// lastAck is the cursor of the last ack written on THIS connection —
	// connection-scoped like the acks themselves (a reconnect resyncs via
	// the handshake, so starting over at 0 is correct).
	var lastAck uint64
	for {
		f, err := emitter.ReadFrame(conn)
		if err != nil {
			p.sess.detach(conn)
			return
		}
		switch f.Type {
		case frameAck:
			p.sess.onAck(f.Seq)
			continue
		case frameSnapAck:
			p.sess.advanceSnap(f.Seq)
			continue
		}
		fresh, gap := p.sess.accept(f.Seq)
		if gap {
			p.sess.detach(conn)
			return
		}
		if !fresh {
			// A recovered worker replaying its history regenerates frames
			// we already processed; ack them or its outbox never drains.
			// One ack at the cursor covers every duplicate at or below it,
			// so ack only when the cursor moved past what this connection
			// already acked — a long replay costs one control frame, not
			// one per regenerated frame.
			if cur := p.sess.cursor(); cur > lastAck {
				lastAck = cur
				p.sess.sendCtl(emitter.Frame{Type: frameAck, Seq: cur})
			}
			continue
		}
		switch f.Type {
		case frameFrag:
			if m, err := unmarshalFragMsg(f.Payload); err == nil {
				c.applyFrag(m)
			}
		case frameShardState:
			if m, err := unmarshalShardBlob(f.Payload); err == nil {
				c.finishMove(m)
			}
		case framePong:
			if vals, err := unmarshalInt64s(f.Payload, 1); err == nil {
				c.mu.Lock()
				if owing, ok := c.pings[vals[0]]; ok {
					delete(owing, p.idx)
				}
				c.mu.Unlock()
				c.pingC.Broadcast()
			}
		}
		lastAck = p.sess.cursor()
		p.sess.sendCtl(emitter.Frame{Type: frameAck, Seq: lastAck})
	}
}

// specPayload marshals one spec's broadcast frame.
func specPayload(sp *coordSpec) []byte {
	return marshalSpec(specMsg{ID: sp.id, Stream: sp.cs.name, Win: sp.win})
}

// applyFrag feeds one worker delivery into its query group's merger.
func (c *Coordinator) applyFrag(m fragMsg) {
	c.mu.Lock()
	sp := c.specs[m.Spec]
	c.mu.Unlock()
	if sp == nil || m.Shard < 0 || m.Shard >= sp.cs.shards {
		return // dropped spec or confused peer: ignore
	}
	sp.mu.Lock()
	g := sp.g
	if m.Wm > sp.applied[m.Shard] {
		sp.applied[m.Shard] = m.Wm
	}
	sp.mu.Unlock()
	if g == nil {
		return
	}
	g.OfferRemote(m.Shard, m.Frags, m.Wm)
}

// ownerRuns renders a per-shard owner assignment as maximal contiguous
// runs ("w0:0-2 w1:2-4"; after reassignments a worker may appear more
// than once).
func ownerRuns(owner []int) string {
	var runs []string
	for lo := 0; lo < len(owner); {
		hi := lo + 1
		for hi < len(owner) && owner[hi] == owner[lo] {
			hi++
		}
		runs = append(runs, fmt.Sprintf("w%d:%d-%d", owner[lo], lo, hi))
		lo = hi
	}
	return strings.Join(runs, " ")
}

// Describe implements datacell.Fabric: the \fabric introspection pane.
// The retained/snap_cursor pair is the replay-log retention gauge: how
// many frames the coordinator holds for the worker, and the durable
// cursor below which it has garbage-collected.
func (c *Coordinator) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fabric coordinator addr=%s workers=%d\n", c.Addr(), len(c.peers))
	for _, p := range c.peers {
		p.mu.Lock()
		id := p.id
		p.mu.Unlock()
		if id == "" {
			id = "-"
		}
		p.sess.mu.Lock()
		fmt.Fprintf(&b, "  worker %d id=%-12s connected=%-5v frames_out=%-8d frames_in=%-8d retained=%-6d snap_cursor=%-8d reconnects=%d\n",
			p.idx, id, p.sess.conn != nil, p.sess.framesOut, p.sess.framesIn,
			len(p.sess.outbox), p.sess.snapAcked, p.sess.reconnects)
		p.sess.mu.Unlock()
	}
	c.mu.Lock()
	names := make([]string, 0, len(c.streams))
	for n := range c.streams {
		names = append(names, n)
	}
	sort.Strings(names)
	specs := make([]*coordSpec, 0, len(c.specs))
	for _, sp := range c.specs {
		specs = append(specs, sp)
	}
	c.mu.Unlock()
	sort.Slice(specs, func(i, j int) bool { return specs[i].id < specs[j].id })
	for _, n := range names {
		c.mu.Lock()
		cs := c.streams[n]
		c.mu.Unlock()
		cs.mu.Lock()
		ranges := ownerRuns(cs.owner)
		settled := cs.sent.Watermark()
		moving := len(cs.moving)
		cs.mu.Unlock()
		fmt.Fprintf(&b, "  stream %s shards=%d ranges=[%s] routed_settled=%d", n, cs.shards, ranges, settled)
		if moving > 0 {
			fmt.Fprintf(&b, " moving=%d", moving)
		}
		b.WriteByte('\n')
	}
	for _, sp := range specs {
		sp.mu.Lock()
		applied := make([]string, len(sp.applied))
		for i, wm := range sp.applied {
			if wm == minInt64 {
				applied[i] = "-"
			} else {
				applied[i] = fmt.Sprint(wm)
			}
		}
		sp.mu.Unlock()
		fmt.Fprintf(&b, "  spec %d stream=%s key=%s applied_wm=[%s]\n",
			sp.id, sp.cs.name, sp.key, strings.Join(applied, " "))
	}
	return strings.TrimRight(b.String(), "\n")
}
