package fabric

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"datacell"
	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/emitter"
	"datacell/internal/plan"
)

// Options configures a Coordinator.
type Options struct {
	// Listen is the TCP address workers dial (default "127.0.0.1:0").
	Listen string
	// Workers is the fixed worker count; each exported stream's shard set
	// is initially partitioned into contiguous ranges across them by
	// worker index (Reassign moves individual shards afterwards).
	Workers int
	// FlushBytes caps the append bytes a worker lane stages before it
	// flushes a batch frame (default 64 KiB).
	FlushBytes int
	// FlushDelay bounds how long a dirty lane waits for more traffic
	// before flushing (default 2ms) — the worst-case added latency between
	// an append and the watermark that lets workers seal it.
	FlushDelay time.Duration
	// NoDirect disables the receptor data plane: batch frames stay on the
	// control session instead of a direct connection to each worker's
	// receptor listener.
	NoDirect bool
	// DataDialer overrides how the coordinator dials worker receptor
	// listeners (fault-injection harnesses interpose proxies here); nil
	// means plain TCP.
	DataDialer func(addr string, timeout time.Duration) (net.Conn, error)
}

// Coordinator is the fabric's engine-side half: it owns the exported
// streams' routing (partition + sequence-stamp appends, forward each
// shard's rows to its owning worker, broadcast sealing watermarks),
// receives the workers' sealed epoch fragments, and feeds them into the
// engine's query groups. It implements datacell.Fabric and attaches
// itself to the engine at construction.
//
// Worker loss is invisible: every worker session retains its outbound
// frames as a replay log bounded below by the worker's durable snapshot
// cursor, so a restarted worker — resuming from its snapshot, or from
// nothing — replays the delta and regenerates its state exactly
// (docs/RECOVERY.md). There is no reset path; recovery is always
// restore-and-replay.
type Coordinator struct {
	eng   *datacell.Engine
	ln    net.Listener
	wg    sync.WaitGroup
	peers []*peer
	lanes []*lane
	opts  Options

	// wireBytes / wirePlainBytes accumulate the encoded append payload
	// bytes actually staged versus what the plain (v1) chunk layout would
	// have cost — the wire-encoding savings gauge. Guarded by wireMu.
	wireMu         sync.Mutex
	wireBytes      uint64
	wirePlainBytes uint64

	mu      sync.Mutex
	streams map[string]*coordStream
	specs   map[int64]*coordSpec
	specSeq int64
	pings   map[int64]map[int]bool // nonce → worker indices still owing a pong
	pingSeq int64
	pingC   *sync.Cond
	closed  bool
	doneC   chan struct{} // closed by Close; unblocks waiters (Reassign)
}

// peer is the coordinator's view of one worker slot. The session (and its
// replay log) persists across the worker's connections and processes.
type peer struct {
	idx  int
	sess *session

	// dataKick wakes the receptor dial loop the moment a Hello advertises
	// a receptor address — dialing must not wait out a poll interval.
	dataKick chan struct{}

	mu       sync.Mutex
	id       string // last Hello's self-reported id
	dataAddr string // last Hello's receptor listener ("" = plane disabled)
}

// Lane flush causes (counters on /metrics).
const (
	flushCauseSize = iota
	flushCauseDelay
	flushCauseBarrier
)

// lane is one worker's staging buffer on the ingest path: routed append
// payloads coalesce here as sub-frames and ship as a single batch frame
// when the buffer crosses FlushBytes, when the FlushDelay timer fires, or
// when a control event needs a barrier. The watermark for every stream
// the lane is dirty on rides at the tail of each batch — one watermark
// per flush window instead of one broadcast per append.
type lane struct {
	c *Coordinator
	p *peer

	mu    sync.Mutex
	buf   []byte // concatenated append sub-frames
	n     int
	dirty map[*coordStream]struct{}
	timer *time.Timer
	armed bool

	// Counters (guarded by mu).
	batches, subFrames, bytesOut        uint64
	flushSize, flushDelay, flushBarrier uint64
}

// enqueue stages one append sub-frame and reports whether the lane
// crossed its size threshold — the caller flushes after releasing the
// routing mutex, because flush acquires locks ordered above it.
func (l *lane) enqueue(cs *coordStream, payload []byte) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = appendSubFrame(l.buf, frameAppend, payload)
	l.n++
	l.dirty[cs] = struct{}{}
	l.armLocked()
	return len(l.buf) >= l.c.opts.FlushBytes
}

// markDirty notes that the stream's sealing clocks advanced: the next
// flush (armed here if need be) carries a watermark sub-frame even if no
// appends staged for this lane — every worker's shards must observe the
// advance or the group's min-watermark merge stalls.
func (l *lane) markDirty(cs *coordStream) {
	l.mu.Lock()
	l.dirty[cs] = struct{}{}
	l.armLocked()
	l.mu.Unlock()
}

func (l *lane) armLocked() {
	if l.armed {
		return
	}
	l.armed = true
	if l.timer == nil {
		l.timer = time.AfterFunc(l.c.opts.FlushDelay, func() { l.flush(flushCauseDelay) })
	} else {
		l.timer.Reset(l.c.opts.FlushDelay)
	}
}

// flush ships the staged sub-frames plus one watermark sub-frame per
// dirty stream as a single batch frame. The watermarks are computed while
// the lane is locked: every routed range the tracker has recorded was
// enqueued (to this or another lane) before recording, so a watermark
// built here can never cover a row this lane would only flush later —
// rows always precede, within this batch or an earlier one, the watermark
// that seals them.
func (l *lane) flush(cause int) {
	l.mu.Lock()
	l.armed = false
	if l.n == 0 && len(l.dirty) == 0 {
		l.mu.Unlock()
		return
	}
	subs := l.n
	for cs := range l.dirty {
		l.buf = appendSubFrame(l.buf, frameWatermark, l.c.watermarkPayload(cs))
		delete(l.dirty, cs)
		subs++
	}
	buf := l.buf
	l.buf, l.n = nil, 0
	l.batches++
	l.subFrames += uint64(subs)
	l.bytesOut += uint64(len(buf))
	switch cause {
	case flushCauseSize:
		l.flushSize++
	case flushCauseDelay:
		l.flushDelay++
	default:
		l.flushBarrier++
	}
	l.p.sess.send(frameBatch, buf)
	l.mu.Unlock()
}

// flushLanes barriers every lane: control events (spec changes, drains,
// moves, shutdown) must order after all staged appends on every session.
func (c *Coordinator) flushLanes() {
	for _, l := range c.lanes {
		l.flush(flushCauseBarrier)
	}
}

// coordStream is one exported stream's routing state. Its mutex serializes
// appends, spec changes and shard moves, so every worker observes them at
// one consistent append boundary. The sealing clocks live under their own
// locks (wmMu, specMu) because lane flushes — which run off the routing
// path, on timers — read them while holding only their lane's lock.
// Lock order: cs.mu → lane.mu → cs.wmMu → cs.specMu → sp.mu.
type coordStream struct {
	name   string
	schema bat.Schema
	shards int

	mu     sync.Mutex
	owner  []int // per-shard owning worker index
	moving map[int]*shardMove

	// wmMu guards the routed-sequence trackers: one per shard (what each
	// shard has been sent, the per-shard local sequencing view) and the
	// global tracker reconciling them into the settled watermark the lanes
	// broadcast at flush.
	wmMu      sync.Mutex
	sent      basket.SeqTracker
	shardSent []basket.SeqTracker

	specMu sync.RWMutex
	specs  map[int64]*coordSpec
}

// shardMove is one in-flight Reassign: appends routed to the shard are
// queued here between the export request and the state's arrival, then
// flushed to the new owner right after the install frame.
type shardMove struct {
	to     int
	queued [][]byte // marshaled frameAppend payloads, in routing order
	done   chan struct{}
}

// coordSpec is one query group's slicing spec.
type coordSpec struct {
	id  int64
	key string
	cs  *coordStream
	win *plan.Window

	mu      sync.Mutex
	g       datacell.RemoteGroup
	maxTs   int64   // event-time high mark (time windows); minInt64 until rows
	applied []int64 // per-shard applied flush watermark (introspection)
}

const minInt64 = -1 << 63

// NewCoordinator starts a fabric coordinator over an engine and attaches
// itself as the engine's fabric.
func NewCoordinator(eng *datacell.Engine, opts Options) (*Coordinator, error) {
	if opts.Workers <= 0 {
		return nil, fmt.Errorf("fabric: coordinator needs at least one worker slot")
	}
	if opts.FlushBytes <= 0 {
		opts.FlushBytes = 64 << 10
	}
	if opts.FlushDelay <= 0 {
		opts.FlushDelay = 2 * time.Millisecond
	}
	addr := opts.Listen
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		eng:     eng,
		ln:      ln,
		opts:    opts,
		streams: make(map[string]*coordStream),
		specs:   make(map[int64]*coordSpec),
		pings:   make(map[int64]map[int]bool),
		doneC:   make(chan struct{}),
	}
	c.pingC = sync.NewCond(&c.mu)
	for i := 0; i < opts.Workers; i++ {
		p := &peer{idx: i, sess: newSession(true), dataKick: make(chan struct{}, 1)}
		c.peers = append(c.peers, p)
		c.lanes = append(c.lanes, &lane{c: c, p: p, dirty: make(map[*coordStream]struct{})})
	}
	eng.AttachFabric(c)
	c.wg.Add(1)
	go c.acceptLoop()
	if !opts.NoDirect {
		for _, p := range c.peers {
			c.wg.Add(1)
			go c.dataDialLoop(p)
		}
	}
	return c, nil
}

// Addr reports the address workers should dial.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Workers reports the worker slot count.
func (c *Coordinator) Workers() int { return len(c.peers) }

// ExportStream hands a stream's shard set to the fabric: shards are
// assigned to the workers, the stream is tagged (the tag becomes part of
// every group key over it), and subsequent appends route to the workers
// instead of local baskets. Export before any query registers on the
// stream and before data flows.
func (c *Coordinator) ExportStream(name string) error {
	st, ok := c.eng.Stream(name)
	if !ok {
		return fmt.Errorf("fabric: unknown stream %q", name)
	}
	if st.Basket.Consumers() > 0 {
		return fmt.Errorf("fabric: stream %q already has local consumers; export before registering queries", name)
	}
	if st.Basket.Stats().TotalIn > 0 {
		return fmt.Errorf("fabric: stream %q already holds local rows; export before appending", name)
	}
	shards := st.Basket.NumShards()
	w := len(c.peers)
	cs := &coordStream{
		name:      name,
		schema:    st.Schema(),
		shards:    shards,
		owner:     make([]int, shards),
		moving:    make(map[int]*shardMove),
		shardSent: make([]basket.SeqTracker, shards),
		specs:     make(map[int64]*coordSpec),
	}
	ranges := make([][2]int, w)
	tags := make([]string, w)
	for i := 0; i < w; i++ {
		lo, hi := i*shards/w, (i+1)*shards/w
		ranges[i] = [2]int{lo, hi}
		for sh := lo; sh < hi; sh++ {
			cs.owner[sh] = i
		}
		tags[i] = fmt.Sprintf("w%d:%d-%d", i, lo, hi)
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("fabric: coordinator closed")
	}
	if _, dup := c.streams[name]; dup {
		c.mu.Unlock()
		return fmt.Errorf("fabric: stream %q already exported", name)
	}
	c.streams[name] = cs
	c.mu.Unlock()

	st.MarkRemote("fabric[" + strings.Join(tags, ",") + "]")
	cs.mu.Lock()
	for i, p := range c.peers {
		p.sess.send(frameStream, marshalStream(streamMsg{
			Name: name, Schema: cs.schema, Shards: shards,
			Lo: ranges[i][0], Hi: ranges[i][1],
		}))
	}
	cs.mu.Unlock()
	st.Basket.SetRemote(func(parts []basket.RemotePart, base int64, rows int, arrival int64) {
		c.route(cs, parts, base, rows, arrival)
	})
	return nil
}

// route stages one sequenced append onto the owning workers' lanes and
// records the routed ranges into the per-shard trackers. It runs under the
// stream's routing mutex so concurrent appends reach every lane in one
// consistent order; the watermark itself is NOT broadcast here — lanes
// carry the reconciled watermark at flush, amortizing what used to be a
// per-append broadcast to every worker. Ranges are recorded only after
// their payloads are staged, which is what lets a concurrent flush build a
// safe watermark (see lane.flush).
func (c *Coordinator) route(cs *coordStream, parts []basket.RemotePart, base int64, rows int, arrival int64) {
	var sizeFlush []*lane
	var wireB, plainB uint64
	cs.mu.Lock()
	for _, p := range parts {
		payload := marshalAppend(appendMsg{
			Stream: cs.name, Shard: p.Shard, Arrival: arrival,
			Seqs: p.Seqs, Chunk: p.Chunk,
		})
		wireB += uint64(len(payload))
		plainB += uint64(bat.ChunkPlainSize(p.Chunk) + 8*len(p.Seqs))
		if mv := cs.moving[p.Shard]; mv != nil {
			// Shard in transit: hold the append until the new owner has
			// installed the shipped state, preserving per-shard order.
			mv.queued = append(mv.queued, payload)
			continue
		}
		l := c.lanes[cs.owner[p.Shard]]
		if l.enqueue(cs, payload) {
			sizeFlush = append(sizeFlush, l)
		}
	}
	// Per-shard local sequencing: each shard's tracker records the runs it
	// was sent; the global tracker reconciles them into the settled
	// watermark (the contiguous prefix of routed sequences).
	cs.wmMu.Lock()
	for _, p := range parts {
		for _, r := range seqRuns(p.Seqs) {
			cs.shardSent[p.Shard].Add(r[0], r[1])
			cs.sent.Add(r[0], r[1])
		}
	}
	cs.wmMu.Unlock()
	// One timestamp scan per distinct ordering column, not per spec —
	// many time-window groups almost always share one TimeIdx, and this
	// runs on the ingestion path under the routing mutex.
	var tsMax map[int]int64
	for _, sp := range cs.specs {
		if sp.win.Tuples {
			continue
		}
		mx, ok := tsMax[sp.win.TimeIdx]
		if !ok {
			mx = minInt64
			for _, p := range parts {
				for _, ts := range bat.AsInts(p.Chunk.Cols[sp.win.TimeIdx]) {
					if ts > mx {
						mx = ts
					}
				}
			}
			if tsMax == nil {
				tsMax = make(map[int]int64, 1)
			}
			tsMax[sp.win.TimeIdx] = mx
		}
		sp.mu.Lock()
		if mx > sp.maxTs {
			sp.maxTs = mx
		}
		sp.mu.Unlock()
	}
	// Every lane gets the advanced clocks at its next flush: workers whose
	// shards saw no rows still must observe the watermark, or the group's
	// min-watermark merge would wait on them forever.
	for _, l := range c.lanes {
		l.markDirty(cs)
	}
	cs.mu.Unlock()

	c.wireMu.Lock()
	c.wireBytes += wireB
	c.wirePlainBytes += plainB
	c.wireMu.Unlock()
	for _, l := range sizeFlush {
		l.flush(flushCauseSize)
	}
}

// seqRuns decomposes an ascending stamp list into maximal contiguous
// [lo, hi) runs: a round-robin part is one run, a hash-routed part's
// ascending subset a few.
func seqRuns(seqs bat.Ints) [][2]int64 {
	var runs [][2]int64
	for i := 0; i < len(seqs); {
		j := i + 1
		for j < len(seqs) && seqs[j] == seqs[i]+int64(j-i) {
			j++
		}
		runs = append(runs, [2]int64{seqs[i], seqs[i] + int64(j-i)})
		i = j
	}
	return runs
}

// watermarkPayload builds the stream's current sealing clocks: the
// reconciled settled watermark plus each time-windowed spec's event-time
// high mark. Safe without the routing mutex — lane flushes call it from
// timers (lock order: lane.mu → wmMu → specMu → sp.mu).
func (c *Coordinator) watermarkPayload(cs *coordStream) []byte {
	cs.wmMu.Lock()
	wm := watermarkMsg{Stream: cs.name, Settled: cs.sent.Watermark()}
	cs.wmMu.Unlock()
	cs.specMu.RLock()
	for _, sp := range cs.specs {
		if sp.win.Tuples {
			continue
		}
		sp.mu.Lock()
		mx := sp.maxTs
		sp.mu.Unlock()
		if mx != minInt64 {
			wm.Specs = append(wm.Specs, specMax{ID: sp.id, MaxTs: mx})
		}
	}
	cs.specMu.RUnlock()
	sort.Slice(wm.Specs, func(i, j int) bool { return wm.Specs[i].ID < wm.Specs[j].ID })
	return marshalWatermark(wm)
}

// Reassign moves one shard of an exported stream to another worker: the
// owner drains and exports the shard's state, appends routed meanwhile
// queue at the coordinator, and the new owner installs state, queued
// appends and the current watermark in order. Blocks until the handoff
// completes (the state frame arrives and the install is queued to the new
// owner) — callers wanting the install *applied* follow with Drain.
//
// Like Drain, Reassign waits out worker loss rather than failing: a dead
// owner holds its export frame in the retained session and answers it
// after recovery replay, so the move is delayed, never lost — a timeout
// here could only misreport a handoff that later completes (ownership
// would still flip when the state arrived, with routed appends queued
// against it in the meantime). The only abort is coordinator Close.
func (c *Coordinator) Reassign(stream string, shard, worker int) error {
	if worker < 0 || worker >= len(c.peers) {
		return fmt.Errorf("fabric: no worker slot %d", worker)
	}
	c.mu.Lock()
	cs := c.streams[stream]
	c.mu.Unlock()
	if cs == nil {
		return fmt.Errorf("fabric: stream %q not exported", stream)
	}
	if shard < 0 || shard >= cs.shards {
		return fmt.Errorf("fabric: stream %q has no shard %d", stream, shard)
	}
	cs.mu.Lock()
	if cs.owner[shard] == worker {
		cs.mu.Unlock()
		return nil
	}
	if cs.moving[shard] != nil {
		cs.mu.Unlock()
		return fmt.Errorf("fabric: stream %q shard %d already moving", stream, shard)
	}
	// Barrier: the owner must receive every append staged for the shard
	// before the export request, or the drain would miss rows.
	c.flushLanes()
	mv := &shardMove{to: worker, done: make(chan struct{})}
	cs.moving[shard] = mv
	c.peers[cs.owner[shard]].sess.send(frameShardExport, marshalShardRef(stream, shard))
	cs.mu.Unlock()

	select {
	case <-mv.done:
		return nil
	case <-c.doneC:
		// Closed mid-move: nothing can arrive on the dead sessions, so the
		// move is genuinely over, not merely slow.
		select {
		case <-mv.done:
			return nil
		default:
		}
		return fmt.Errorf("fabric: coordinator closed during stream %q shard %d handoff", stream, shard)
	}
}

// finishMove completes a Reassign when the exported shard state arrives:
// flip ownership, then install + queued appends + current watermark to
// the new owner, in session order.
func (c *Coordinator) finishMove(m shardBlobMsg) {
	c.mu.Lock()
	cs := c.streams[m.Stream]
	c.mu.Unlock()
	if cs == nil || m.Shard < 0 || m.Shard >= cs.shards {
		return
	}
	cs.mu.Lock()
	mv := cs.moving[m.Shard]
	if mv == nil {
		cs.mu.Unlock()
		return
	}
	delete(cs.moving, m.Shard)
	cs.owner[m.Shard] = mv.to
	// Barrier: the trailing watermark below may cover rows staged on the
	// new owner's lane for its other shards — they must precede it.
	c.flushLanes()
	sess := c.peers[mv.to].sess
	// The state bytes are forwarded verbatim — the coordinator relays,
	// it does not re-marshal.
	sess.send(frameShardInstall, marshalShardBlob(m.Stream, m.Shard, m.State))
	for _, payload := range mv.queued {
		sess.send(frameAppend, payload)
	}
	sess.send(frameWatermark, c.watermarkPayload(cs))
	cs.mu.Unlock()
	close(mv.done)
}

// AddSpec implements datacell.Fabric: a query group forming over an
// exported stream registers the slide granularity its workers must cut at.
// The scan schema must match the exported stream's — workers slice the raw
// stream layout, so a divergent scan schema would silently decode garbage.
func (c *Coordinator) AddSpec(stream, key string, win *plan.Window, schema bat.Schema) (*datacell.FabricSpec, error) {
	c.mu.Lock()
	cs, ok := c.streams[stream]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("fabric: stream %q not exported", stream)
	}
	if schema.String() != cs.schema.String() {
		c.mu.Unlock()
		return nil, fmt.Errorf("fabric: spec schema (%s) does not match exported stream %q (%s)",
			schema, stream, cs.schema)
	}
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("fabric: coordinator closed")
	}
	c.specSeq++
	sp := &coordSpec{
		id: c.specSeq, key: key, cs: cs, win: win,
		maxTs:   minInt64,
		applied: make([]int64, cs.shards),
	}
	for i := range sp.applied {
		sp.applied[i] = minInt64
	}
	c.specs[sp.id] = sp
	c.mu.Unlock()

	return &datacell.FabricSpec{
		Shards:  cs.shards,
		Attach:  func(g datacell.RemoteGroup) { c.attachSpec(sp, g) },
		Advance: func(wm int64) { c.advanceSpec(sp, wm) },
		Drop:    func() { c.dropSpec(sp) },
	}, nil
}

// attachSpec arms a spec: the group is wired to receive fragments and the
// spec is broadcast, ordered against the stream's appends so every worker
// starts slicing at the same append boundary. Every worker gets every
// spec — shards move between workers (Reassign), so there is no such
// thing as a worker a stream's specs cannot concern.
func (c *Coordinator) attachSpec(sp *coordSpec, g datacell.RemoteGroup) {
	sp.mu.Lock()
	sp.g = g
	sp.mu.Unlock()
	cs := sp.cs
	cs.mu.Lock()
	// Barrier: every worker must start slicing at the same append
	// boundary — staged rows must precede the spec on every session, or
	// workers would register their consumers around different prefixes.
	c.flushLanes()
	cs.specMu.Lock()
	cs.specs[sp.id] = sp
	cs.specMu.Unlock()
	payload := specPayload(sp)
	for _, p := range c.peers {
		p.sess.send(frameSpec, payload)
	}
	cs.mu.Unlock()
}

// advanceSpec forwards a forced time watermark (Engine.AdvanceTime, the
// heartbeat) to the spec's workers.
func (c *Coordinator) advanceSpec(sp *coordSpec, wm int64) {
	if sp.win.Tuples {
		return
	}
	cs := sp.cs
	cs.mu.Lock()
	// Barrier: the advance must order after every staged row on every
	// session, as it did when appends were sent inline.
	c.flushLanes()
	sp.mu.Lock()
	if sp.maxTs == minInt64 {
		// No rows yet: nothing to force shut (mirrors frontEnd.advance).
		sp.mu.Unlock()
		cs.mu.Unlock()
		return
	}
	if wm > sp.maxTs {
		sp.maxTs = wm
	}
	wm = sp.maxTs
	sp.mu.Unlock()
	payload := marshalInt64s(sp.id, wm)
	for _, p := range c.peers {
		p.sess.send(frameAdvance, payload)
	}
	cs.mu.Unlock()
}

// dropSpec retires a spec on teardown of its query group.
func (c *Coordinator) dropSpec(sp *coordSpec) {
	cs := sp.cs
	cs.mu.Lock()
	c.flushLanes()
	cs.specMu.Lock()
	delete(cs.specs, sp.id)
	cs.specMu.Unlock()
	payload := marshalInt64s(sp.id)
	for _, p := range c.peers {
		p.sess.send(frameSpecDrop, payload)
	}
	cs.mu.Unlock()
	c.mu.Lock()
	delete(c.specs, sp.id)
	c.mu.Unlock()
}

// Drain is the fabric-wide synchronization barrier: it pings every worker,
// waits until each has replied — sessions are FIFO, so by then every
// fragment for previously routed appends has been received and applied —
// and then drains the engine's scheduler for the member tails. Blocks
// until every worker (re)connects and catches up. Pings live in the
// retained outbox like any session frame, so a worker that dies holding
// one answers it after recovery replay.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.pingSeq++
	nonce := c.pingSeq
	owing := make(map[int]bool, len(c.peers))
	for _, p := range c.peers {
		owing[p.idx] = true
	}
	c.pings[nonce] = owing
	c.mu.Unlock()
	// Barrier: every staged append (and its sealing watermark) must
	// precede the ping on each session, so a pong certifies the worker has
	// applied — and fired on — everything routed before the drain.
	c.flushLanes()
	payload := marshalInt64s(nonce)
	for _, p := range c.peers {
		p.sess.send(framePing, payload)
	}
	c.mu.Lock()
	for len(c.pings[nonce]) > 0 && !c.closed {
		c.pingC.Wait()
	}
	delete(c.pings, nonce)
	c.mu.Unlock()
	c.eng.Drain()
}

// Close shuts the fabric down: Bye is broadcast (workers exit their dial
// loops), queued frames get a bounded flush, and the listener and all
// sessions close.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.doneC)
	c.pingC.Broadcast()
	c.flushLanes()
	for _, l := range c.lanes {
		l.mu.Lock()
		if l.timer != nil {
			l.timer.Stop()
		}
		l.mu.Unlock()
	}
	for _, p := range c.peers {
		p.sess.send(frameBye, nil)
	}
	for _, p := range c.peers {
		p.sess.flushWait(2 * time.Second)
		p.sess.close()
	}
	_ = c.ln.Close()
	c.wg.Wait()
}

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go c.handleConn(conn)
	}
}

// handleConn runs one worker connection: Hello handshake, session
// reattach + replay, then the frame loop applying fragments, shard-state
// deliveries and barrier replies.
func (c *Coordinator) handleConn(conn net.Conn) {
	defer c.wg.Done()
	br := bufio.NewReaderSize(conn, 64<<10)
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := emitter.ReadFrame(br)
	if err != nil || f.Type != frameHello {
		_ = conn.Close()
		return
	}
	hello, err := unmarshalHello(f.Payload)
	if err != nil || hello.Version != protoVersion ||
		hello.Index < 0 || hello.Index >= len(c.peers) {
		_ = conn.Close()
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	p := c.peers[hello.Index]
	p.mu.Lock()
	p.id = hello.ID
	p.dataAddr = hello.DataAddr
	p.mu.Unlock()
	if hello.DataAddr != "" {
		select {
		case p.dataKick <- struct{}{}:
		default:
		}
	}
	if f.Seq > p.sess.sentSeq() {
		// The worker claims frames this coordinator never sent: its
		// cursors (snapshot included) are from another coordinator life.
		// Tell it to wipe and rejoin fresh — attaching would desynchronize
		// both streams.
		_ = emitter.WriteFrame(conn, emitter.Frame{
			Type: frameWelcome, Seq: p.sess.cursor(), Payload: []byte{welcomeReset}})
		_ = conn.Close()
		return
	}
	if hello.Snap > 0 {
		// The Hello's durable cursor doubles as a snap-ack (the ack frame
		// for the last checkpoint may have died with the old connection).
		p.sess.advanceSnap(hello.Snap)
	}
	// Welcome carries the coordinator's receive cursor so the worker can
	// prune and replay; it is queued ahead of the replayed session frames.
	welcome := emitter.Frame{Type: frameWelcome, Seq: p.sess.cursor()}
	p.sess.attach(conn, f.Seq, &welcome)

	// lastAck is the cursor of the last ack written on THIS connection —
	// connection-scoped like the acks themselves (a reconnect resyncs via
	// the handshake, so starting over at 0 is correct). Acks are
	// pipelined: one per drained read buffer (or every ackEvery frames
	// within a burst), never one per frame — during a replay one ack at
	// the cursor covers every duplicate at or below it.
	var lastAck uint64
	for {
		f, err := emitter.ReadFrame(br)
		if err != nil {
			p.sess.detach(conn)
			return
		}
		switch f.Type {
		case frameAck:
			p.sess.onAck(f.Seq)
			continue
		case frameSnapAck:
			p.sess.advanceSnap(f.Seq)
			continue
		}
		if fresh, gap := p.sess.accept(f.Seq); gap {
			p.sess.detach(conn)
			return
		} else if fresh {
			c.applyPeerFrame(p, f.Type, f.Payload)
		}
		if cur := p.sess.cursor(); cur > lastAck && (br.Buffered() == 0 || cur-lastAck >= ackEvery) {
			lastAck = cur
			p.sess.sendCtl(emitter.Frame{Type: frameAck, Seq: cur})
		}
	}
}

// applyPeerFrame dispatches one worker frame's payload; batch frames
// unpack into their sub-frames, applied in order.
func (c *Coordinator) applyPeerFrame(p *peer, ftype byte, payload []byte) {
	switch ftype {
	case frameBatch:
		_ = forEachSubFrame(payload, func(st byte, sub []byte) error {
			c.applyPeerFrame(p, st, sub)
			return nil
		})
	case frameFrag:
		if m, err := unmarshalFragMsg(payload); err == nil {
			c.applyFrag(m)
		}
	case frameShardState:
		if m, err := unmarshalShardBlob(payload); err == nil {
			c.finishMove(m)
		}
	case framePong:
		if vals, err := unmarshalInt64s(payload, 1); err == nil {
			c.mu.Lock()
			if owing, ok := c.pings[vals[0]]; ok {
				delete(owing, p.idx)
			}
			c.mu.Unlock()
			c.pingC.Broadcast()
		}
	}
}

// dataDialLoop keeps one receptor-plane connection to a worker alive:
// once the worker's Hello advertises a receptor address, the coordinator
// dials it, hands the conn to the session as its data plane, and blocks
// reading (the worker never writes there — the read is the liveness
// monitor). On loss the session falls batch traffic back to the control
// conn and this loop redials.
func (c *Coordinator) dataDialLoop(p *peer) {
	defer c.wg.Done()
	backoff := 25 * time.Millisecond
	for {
		select {
		case <-c.doneC:
			return
		default:
		}
		p.mu.Lock()
		addr := p.dataAddr
		p.mu.Unlock()
		if addr == "" || p.sess.hasData() {
			select {
			case <-c.doneC:
				return
			case <-p.dataKick:
			case <-time.After(25 * time.Millisecond):
			}
			continue
		}
		conn, err := c.dialData(addr, p.idx)
		if err != nil {
			select {
			case <-c.doneC:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > 500*time.Millisecond {
				backoff = 500 * time.Millisecond
			}
			continue
		}
		backoff = 25 * time.Millisecond
		p.sess.attachData(conn)
		for {
			if _, err := emitter.ReadFrame(conn); err != nil {
				break
			}
		}
		p.sess.detachData(conn)
	}
}

// dialData performs the receptor-plane handshake: frameDataHello carrying
// the coordinator's identity and the target worker index, answered by a
// bare Welcome.
func (c *Coordinator) dialData(addr string, idx int) (net.Conn, error) {
	dial := c.opts.DataDialer
	if dial == nil {
		dial = func(a string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", a, timeout)
		}
	}
	conn, err := dial(addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	hello := emitter.Frame{Type: frameDataHello,
		Payload: marshalHello(helloMsg{Version: protoVersion, Index: idx, ID: "coordinator"})}
	if err := emitter.WriteFrame(conn, hello); err != nil {
		_ = conn.Close()
		return nil, err
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := emitter.ReadFrame(conn)
	if err != nil || f.Type != frameWelcome {
		_ = conn.Close()
		return nil, fmt.Errorf("fabric: receptor handshake with %s failed", addr)
	}
	_ = conn.SetReadDeadline(time.Time{})
	return conn, nil
}

// specPayload marshals one spec's broadcast frame.
func specPayload(sp *coordSpec) []byte {
	return marshalSpec(specMsg{ID: sp.id, Stream: sp.cs.name, Win: sp.win})
}

// applyFrag feeds one worker delivery into its query group's merger.
func (c *Coordinator) applyFrag(m fragMsg) {
	c.mu.Lock()
	sp := c.specs[m.Spec]
	c.mu.Unlock()
	if sp == nil || m.Shard < 0 || m.Shard >= sp.cs.shards {
		return // dropped spec or confused peer: ignore
	}
	sp.mu.Lock()
	g := sp.g
	if m.Wm > sp.applied[m.Shard] {
		sp.applied[m.Shard] = m.Wm
	}
	sp.mu.Unlock()
	if g == nil {
		return
	}
	g.OfferRemote(m.Shard, m.Frags, m.Wm)
}

// ownerRuns renders a per-shard owner assignment as maximal contiguous
// runs ("w0:0-2 w1:2-4"; after reassignments a worker may appear more
// than once).
func ownerRuns(owner []int) string {
	var runs []string
	for lo := 0; lo < len(owner); {
		hi := lo + 1
		for hi < len(owner) && owner[hi] == owner[lo] {
			hi++
		}
		runs = append(runs, fmt.Sprintf("w%d:%d-%d", owner[lo], lo, hi))
		lo = hi
	}
	return strings.Join(runs, " ")
}

// Describe implements datacell.Fabric: the \fabric introspection pane.
// The retained/snap_cursor pair is the replay-log retention gauge: how
// many frames the coordinator holds for the worker, and the durable
// cursor below which it has garbage-collected.
func (c *Coordinator) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fabric coordinator addr=%s workers=%d\n", c.Addr(), len(c.peers))
	for _, p := range c.peers {
		p.mu.Lock()
		id := p.id
		p.mu.Unlock()
		if id == "" {
			id = "-"
		}
		p.sess.mu.Lock()
		fmt.Fprintf(&b, "  worker %d id=%-12s connected=%-5v frames_out=%-8d frames_in=%-8d retained=%-6d snap_cursor=%-8d reconnects=%d\n",
			p.idx, id, p.sess.conn != nil, p.sess.framesOut, p.sess.framesIn,
			len(p.sess.outbox), p.sess.snapAcked, p.sess.reconnects)
		p.sess.mu.Unlock()
	}
	c.mu.Lock()
	names := make([]string, 0, len(c.streams))
	for n := range c.streams {
		names = append(names, n)
	}
	sort.Strings(names)
	specs := make([]*coordSpec, 0, len(c.specs))
	for _, sp := range c.specs {
		specs = append(specs, sp)
	}
	c.mu.Unlock()
	sort.Slice(specs, func(i, j int) bool { return specs[i].id < specs[j].id })
	for _, n := range names {
		c.mu.Lock()
		cs := c.streams[n]
		c.mu.Unlock()
		cs.mu.Lock()
		ranges := ownerRuns(cs.owner)
		moving := len(cs.moving)
		cs.mu.Unlock()
		cs.wmMu.Lock()
		settled := cs.sent.Watermark()
		cs.wmMu.Unlock()
		fmt.Fprintf(&b, "  stream %s shards=%d ranges=[%s] routed_settled=%d", n, cs.shards, ranges, settled)
		if moving > 0 {
			fmt.Fprintf(&b, " moving=%d", moving)
		}
		b.WriteByte('\n')
	}
	for _, sp := range specs {
		sp.mu.Lock()
		applied := make([]string, len(sp.applied))
		for i, wm := range sp.applied {
			if wm == minInt64 {
				applied[i] = "-"
			} else {
				applied[i] = fmt.Sprint(wm)
			}
		}
		sp.mu.Unlock()
		fmt.Fprintf(&b, "  spec %d stream=%s key=%s applied_wm=[%s]\n",
			sp.id, sp.cs.name, sp.key, strings.Join(applied, " "))
	}
	return strings.TrimRight(b.String(), "\n")
}
