package fabric

import (
	"strconv"
	"time"

	"datacell/internal/metrics"
)

// CoordinatorMetricDescs declares the coordinator-side fabric families:
// per-worker session health (frames, replay-log retention, durable
// snapshot cursors, reconnects) and per-stream routing state. The
// retained/snap_cursor pair is the replay-log retention gauge rendered
// by \fabric — see docs/RECOVERY.md for why retained frames only fall
// when a worker's durable cursor advances.
var CoordinatorMetricDescs = []metrics.Desc{
	{Name: "datacell_fabric_workers", Type: metrics.Gauge,
		Help: "Configured worker slots."},
	{Name: "datacell_fabric_worker_connected", Type: metrics.Gauge,
		Help: "1 when the worker slot has a live connection.", Labels: []string{"worker"}},
	{Name: "datacell_fabric_worker_frames_out_total", Type: metrics.Counter,
		Help: "Frames sent to the worker since coordinator start.", Labels: []string{"worker"}},
	{Name: "datacell_fabric_worker_frames_in_total", Type: metrics.Counter,
		Help: "Frames received from the worker since coordinator start.", Labels: []string{"worker"}},
	{Name: "datacell_fabric_worker_retained_frames", Type: metrics.Gauge,
		Help: "Replay-log frames held for the worker (pruned at its durable snapshot cursor).", Labels: []string{"worker"}},
	{Name: "datacell_fabric_worker_snap_cursor", Type: metrics.Gauge,
		Help: "Highest cursor the worker has durably snapshotted (the retention floor).", Labels: []string{"worker"}},
	{Name: "datacell_fabric_worker_reconnects_total", Type: metrics.Counter,
		Help: "Times the worker slot re-attached a connection.", Labels: []string{"worker"}},
	{Name: "datacell_fabric_stream_shards", Type: metrics.Gauge,
		Help: "Total shard count of the exported stream.", Labels: []string{"stream"}},
	{Name: "datacell_fabric_stream_routed_settled", Type: metrics.Gauge,
		Help: "Contiguously settled append sequence routed to workers.", Labels: []string{"stream"}},
	{Name: "datacell_fabric_stream_moving_shards", Type: metrics.Gauge,
		Help: "Shards with an in-flight Reassign.", Labels: []string{"stream"}},
	{Name: "datacell_fabric_batch_flushes_total", Type: metrics.Counter,
		Help: "Lane batch flushes by cause (size, delay, barrier).", Labels: []string{"worker", "cause"}},
	{Name: "datacell_fabric_batch_frames_total", Type: metrics.Counter,
		Help: "Coalesced batch frames shipped on the worker's lane.", Labels: []string{"worker"}},
	{Name: "datacell_fabric_batch_subframes_total", Type: metrics.Counter,
		Help: "Sub-frames (appends and watermarks) carried inside the worker's batch frames.", Labels: []string{"worker"}},
	{Name: "datacell_fabric_batch_bytes_total", Type: metrics.Counter,
		Help: "Batch payload bytes shipped on the worker's lane.", Labels: []string{"worker"}},
	{Name: "datacell_fabric_worker_data_plane_up", Type: metrics.Gauge,
		Help: "1 when the direct receptor connection to the worker is attached.", Labels: []string{"worker"}},
	{Name: "datacell_fabric_wire_bytes_total", Type: metrics.Counter,
		Help: "Encoded append payload bytes routed to workers."},
	{Name: "datacell_fabric_wire_plain_bytes_total", Type: metrics.Counter,
		Help: "Plain-layout equivalent of the routed append payloads (the delta/dict savings baseline)."},
}

// MetricsCollector adapts the coordinator's live session and routing
// counters into a metrics source.
func (c *Coordinator) MetricsCollector() metrics.Collector {
	return metrics.CollectorFunc{Descs: CoordinatorMetricDescs, Fn: c.collectMetrics}
}

func (c *Coordinator) collectMetrics(emit func(metrics.Metric)) {
	emit(metrics.Metric{Name: "datacell_fabric_workers", Value: float64(len(c.peers))})
	for _, p := range c.peers {
		w := strconv.Itoa(p.idx)
		g := func(name string, v float64) {
			emit(metrics.Metric{Name: name, LabelValues: []string{w}, Value: v})
		}
		p.sess.mu.Lock()
		connected := 0.0
		if p.sess.conn != nil {
			connected = 1
		}
		dataUp := 0.0
		if p.sess.dataConn != nil {
			dataUp = 1
		}
		framesOut, framesIn := p.sess.framesOut, p.sess.framesIn
		retained, snapCur, reconnects := len(p.sess.outbox), p.sess.snapAcked, p.sess.reconnects
		p.sess.mu.Unlock()
		g("datacell_fabric_worker_connected", connected)
		g("datacell_fabric_worker_frames_out_total", float64(framesOut))
		g("datacell_fabric_worker_frames_in_total", float64(framesIn))
		g("datacell_fabric_worker_retained_frames", float64(retained))
		g("datacell_fabric_worker_snap_cursor", float64(snapCur))
		g("datacell_fabric_worker_reconnects_total", float64(reconnects))
		g("datacell_fabric_worker_data_plane_up", dataUp)

		l := c.lanes[p.idx]
		l.mu.Lock()
		batches, subs, bytesOut := l.batches, l.subFrames, l.bytesOut
		bySize, byDelay, byBarrier := l.flushSize, l.flushDelay, l.flushBarrier
		l.mu.Unlock()
		g("datacell_fabric_batch_frames_total", float64(batches))
		g("datacell_fabric_batch_subframes_total", float64(subs))
		g("datacell_fabric_batch_bytes_total", float64(bytesOut))
		for _, fc := range []struct {
			cause string
			n     uint64
		}{{"size", bySize}, {"delay", byDelay}, {"barrier", byBarrier}} {
			emit(metrics.Metric{Name: "datacell_fabric_batch_flushes_total",
				LabelValues: []string{w, fc.cause}, Value: float64(fc.n)})
		}
	}
	c.wireMu.Lock()
	wireB, plainB := c.wireBytes, c.wirePlainBytes
	c.wireMu.Unlock()
	emit(metrics.Metric{Name: "datacell_fabric_wire_bytes_total", Value: float64(wireB)})
	emit(metrics.Metric{Name: "datacell_fabric_wire_plain_bytes_total", Value: float64(plainB)})

	c.mu.Lock()
	streams := make([]*coordStream, 0, len(c.streams))
	for _, cs := range c.streams {
		streams = append(streams, cs)
	}
	c.mu.Unlock()
	for _, cs := range streams {
		cs.mu.Lock()
		shards, settled, moving := cs.shards, cs.sent.Watermark(), len(cs.moving)
		cs.mu.Unlock()
		g := func(name string, v float64) {
			emit(metrics.Metric{Name: name, LabelValues: []string{cs.name}, Value: v})
		}
		g("datacell_fabric_stream_shards", float64(shards))
		g("datacell_fabric_stream_routed_settled", float64(settled))
		g("datacell_fabric_stream_moving_shards", float64(moving))
	}
}

// WorkerMetricDescs declares the worker-side fabric families: applied
// frame cursor, durable snapshot cursor and its age, and the
// undeliverable-frame counter (version skew / corruption visibility).
var WorkerMetricDescs = []metrics.Desc{
	{Name: "datacell_fabric_worker_applied_frame", Type: metrics.Gauge,
		Help: "Highest coordinator frame applied to worker state."},
	{Name: "datacell_fabric_worker_snapshot_cursor", Type: metrics.Gauge,
		Help: "Cursor of the last durable checkpoint (next Hello's Snap field)."},
	{Name: "datacell_fabric_worker_snapshot_age_seconds", Type: metrics.Gauge,
		Help: "Seconds since the last durable checkpoint landed (-1 before the first)."},
	{Name: "datacell_fabric_worker_frame_errors_total", Type: metrics.Counter,
		Help: "Session frames that decoded badly or failed to apply (acked but dropped)."},
	{Name: "datacell_fabric_worker_streams", Type: metrics.Gauge,
		Help: "Exported streams with local state on this worker."},
	{Name: "datacell_fabric_worker_specs", Type: metrics.Gauge,
		Help: "Installed slicing specs on this worker."},
	{Name: "datacell_fabric_worker_link_up", Type: metrics.Gauge,
		Help: "1 when the coordinator link is connected."},
	{Name: "datacell_fabric_worker_receptor_conns", Type: metrics.Gauge,
		Help: "Live producer connections on the receptor listener."},
	{Name: "datacell_fabric_worker_receptor_frames_total", Type: metrics.Counter,
		Help: "Frames ingested on the receptor plane (the rest arrived on the control link)."},
	{Name: "datacell_fabric_worker_pending_frames", Type: metrics.Gauge,
		Help: "Out-of-order frames parked in the reorder buffer awaiting their sequence gap."},
	{Name: "datacell_fabric_worker_batches_out_total", Type: metrics.Counter,
		Help: "Coalesced output batch frames sent to the coordinator."},
	{Name: "datacell_fabric_worker_subframes_out_total", Type: metrics.Counter,
		Help: "Sub-frames (fragments and pongs) carried inside output batches."},
}

// MetricsCollector adapts the worker's cursors and counters into a
// metrics source — the backing of dcworker's -metrics-listen endpoint.
func (w *Worker) MetricsCollector() metrics.Collector {
	return metrics.CollectorFunc{Descs: WorkerMetricDescs, Fn: w.collectMetrics}
}

func (w *Worker) collectMetrics(emit func(metrics.Metric)) {
	w.mu.Lock()
	applied, lastSnap, snapAt := w.applied, w.lastSnap, w.lastSnapAt
	frameErrs := w.frameErrs
	streams, specs := len(w.streams), len(w.specs)
	batchesOut, subOut := w.batchesOut, w.subOut
	w.mu.Unlock()
	g := func(name string, v float64) { emit(metrics.Metric{Name: name, Value: v}) }
	g("datacell_fabric_worker_applied_frame", float64(applied))
	g("datacell_fabric_worker_snapshot_cursor", float64(lastSnap))
	age := -1.0
	if snapAt > 0 {
		age = float64(time.Now().UnixMicro()-snapAt) / 1e6
	}
	g("datacell_fabric_worker_snapshot_age_seconds", age)
	g("datacell_fabric_worker_frame_errors_total", float64(frameErrs))
	g("datacell_fabric_worker_streams", float64(streams))
	g("datacell_fabric_worker_specs", float64(specs))
	up := 0.0
	if w.sess.connected() {
		up = 1
	}
	g("datacell_fabric_worker_link_up", up)
	w.dataMu.Lock()
	dataConns, dataFrames := len(w.dataConns), w.dataFrames
	w.dataMu.Unlock()
	g("datacell_fabric_worker_receptor_conns", float64(dataConns))
	g("datacell_fabric_worker_receptor_frames_total", float64(dataFrames))
	w.rxMu.Lock()
	pending := len(w.pending)
	w.rxMu.Unlock()
	g("datacell_fabric_worker_pending_frames", float64(pending))
	g("datacell_fabric_worker_batches_out_total", float64(batchesOut))
	g("datacell_fabric_worker_subframes_out_total", float64(subOut))
}
