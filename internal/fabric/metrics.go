package fabric

import (
	"strconv"
	"time"

	"datacell/internal/metrics"
)

// CoordinatorMetricDescs declares the coordinator-side fabric families:
// per-worker session health (frames, replay-log retention, durable
// snapshot cursors, reconnects) and per-stream routing state. The
// retained/snap_cursor pair is the replay-log retention gauge rendered
// by \fabric — see docs/RECOVERY.md for why retained frames only fall
// when a worker's durable cursor advances.
var CoordinatorMetricDescs = []metrics.Desc{
	{Name: "datacell_fabric_workers", Type: metrics.Gauge,
		Help: "Configured worker slots."},
	{Name: "datacell_fabric_worker_connected", Type: metrics.Gauge,
		Help: "1 when the worker slot has a live connection.", Labels: []string{"worker"}},
	{Name: "datacell_fabric_worker_frames_out_total", Type: metrics.Counter,
		Help: "Frames sent to the worker since coordinator start.", Labels: []string{"worker"}},
	{Name: "datacell_fabric_worker_frames_in_total", Type: metrics.Counter,
		Help: "Frames received from the worker since coordinator start.", Labels: []string{"worker"}},
	{Name: "datacell_fabric_worker_retained_frames", Type: metrics.Gauge,
		Help: "Replay-log frames held for the worker (pruned at its durable snapshot cursor).", Labels: []string{"worker"}},
	{Name: "datacell_fabric_worker_snap_cursor", Type: metrics.Gauge,
		Help: "Highest cursor the worker has durably snapshotted (the retention floor).", Labels: []string{"worker"}},
	{Name: "datacell_fabric_worker_reconnects_total", Type: metrics.Counter,
		Help: "Times the worker slot re-attached a connection.", Labels: []string{"worker"}},
	{Name: "datacell_fabric_stream_shards", Type: metrics.Gauge,
		Help: "Total shard count of the exported stream.", Labels: []string{"stream"}},
	{Name: "datacell_fabric_stream_routed_settled", Type: metrics.Gauge,
		Help: "Contiguously settled append sequence routed to workers.", Labels: []string{"stream"}},
	{Name: "datacell_fabric_stream_moving_shards", Type: metrics.Gauge,
		Help: "Shards with an in-flight Reassign.", Labels: []string{"stream"}},
}

// MetricsCollector adapts the coordinator's live session and routing
// counters into a metrics source.
func (c *Coordinator) MetricsCollector() metrics.Collector {
	return metrics.CollectorFunc{Descs: CoordinatorMetricDescs, Fn: c.collectMetrics}
}

func (c *Coordinator) collectMetrics(emit func(metrics.Metric)) {
	emit(metrics.Metric{Name: "datacell_fabric_workers", Value: float64(len(c.peers))})
	for _, p := range c.peers {
		w := strconv.Itoa(p.idx)
		g := func(name string, v float64) {
			emit(metrics.Metric{Name: name, LabelValues: []string{w}, Value: v})
		}
		p.sess.mu.Lock()
		connected := 0.0
		if p.sess.conn != nil {
			connected = 1
		}
		framesOut, framesIn := p.sess.framesOut, p.sess.framesIn
		retained, snapCur, reconnects := len(p.sess.outbox), p.sess.snapAcked, p.sess.reconnects
		p.sess.mu.Unlock()
		g("datacell_fabric_worker_connected", connected)
		g("datacell_fabric_worker_frames_out_total", float64(framesOut))
		g("datacell_fabric_worker_frames_in_total", float64(framesIn))
		g("datacell_fabric_worker_retained_frames", float64(retained))
		g("datacell_fabric_worker_snap_cursor", float64(snapCur))
		g("datacell_fabric_worker_reconnects_total", float64(reconnects))
	}

	c.mu.Lock()
	streams := make([]*coordStream, 0, len(c.streams))
	for _, cs := range c.streams {
		streams = append(streams, cs)
	}
	c.mu.Unlock()
	for _, cs := range streams {
		cs.mu.Lock()
		shards, settled, moving := cs.shards, cs.sent.Watermark(), len(cs.moving)
		cs.mu.Unlock()
		g := func(name string, v float64) {
			emit(metrics.Metric{Name: name, LabelValues: []string{cs.name}, Value: v})
		}
		g("datacell_fabric_stream_shards", float64(shards))
		g("datacell_fabric_stream_routed_settled", float64(settled))
		g("datacell_fabric_stream_moving_shards", float64(moving))
	}
}

// WorkerMetricDescs declares the worker-side fabric families: applied
// frame cursor, durable snapshot cursor and its age, and the
// undeliverable-frame counter (version skew / corruption visibility).
var WorkerMetricDescs = []metrics.Desc{
	{Name: "datacell_fabric_worker_applied_frame", Type: metrics.Gauge,
		Help: "Highest coordinator frame applied to worker state."},
	{Name: "datacell_fabric_worker_snapshot_cursor", Type: metrics.Gauge,
		Help: "Cursor of the last durable checkpoint (next Hello's Snap field)."},
	{Name: "datacell_fabric_worker_snapshot_age_seconds", Type: metrics.Gauge,
		Help: "Seconds since the last durable checkpoint landed (-1 before the first)."},
	{Name: "datacell_fabric_worker_frame_errors_total", Type: metrics.Counter,
		Help: "Session frames that decoded badly or failed to apply (acked but dropped)."},
	{Name: "datacell_fabric_worker_streams", Type: metrics.Gauge,
		Help: "Exported streams with local state on this worker."},
	{Name: "datacell_fabric_worker_specs", Type: metrics.Gauge,
		Help: "Installed slicing specs on this worker."},
	{Name: "datacell_fabric_worker_link_up", Type: metrics.Gauge,
		Help: "1 when the coordinator link is connected."},
}

// MetricsCollector adapts the worker's cursors and counters into a
// metrics source — the backing of dcworker's -metrics-listen endpoint.
func (w *Worker) MetricsCollector() metrics.Collector {
	return metrics.CollectorFunc{Descs: WorkerMetricDescs, Fn: w.collectMetrics}
}

func (w *Worker) collectMetrics(emit func(metrics.Metric)) {
	w.mu.Lock()
	applied, lastSnap, snapAt := w.applied, w.lastSnap, w.lastSnapAt
	frameErrs := w.frameErrs
	streams, specs := len(w.streams), len(w.specs)
	w.mu.Unlock()
	g := func(name string, v float64) { emit(metrics.Metric{Name: name, Value: v}) }
	g("datacell_fabric_worker_applied_frame", float64(applied))
	g("datacell_fabric_worker_snapshot_cursor", float64(lastSnap))
	age := -1.0
	if snapAt > 0 {
		age = float64(time.Now().UnixMicro()-snapAt) / 1e6
	}
	g("datacell_fabric_worker_snapshot_age_seconds", age)
	g("datacell_fabric_worker_frame_errors_total", float64(frameErrs))
	g("datacell_fabric_worker_streams", float64(streams))
	g("datacell_fabric_worker_specs", float64(specs))
	up := 0.0
	if w.sess.connected() {
		up = 1
	}
	g("datacell_fabric_worker_link_up", up)
}
