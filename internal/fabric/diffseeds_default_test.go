//go:build !soak

package fabric_test

// differentialSeeds is the CI budget for TestFabricDifferential; the soak
// build (-tags soak) widens it to the full sweep.
const differentialSeeds = 32
