package fabric_test

import (
	"testing"

	"datacell/internal/experiments"
)

// BenchmarkFabricFanout measures the 16-query grouped workload over a
// 4-shard stream, in-process vs through the shard fabric (coordinator + 2
// worker runtimes over loopback TCP). The dcbench counterpart derives the
// report-only fabric2_vs_local trajectory ratio; here the sub-benchmarks
// make the same comparison visible to `go test -bench`.
func BenchmarkFabricFanout(b *testing.B) {
	const n, batch, nkeys = 1 << 15, 2048, 256
	for _, cfg := range []struct {
		name    string
		workers int
	}{
		{"local", 0},
		{"fabric2", 2},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.FabricFanout(16, cfg.workers, n, batch, nkeys)
				b.ReportMetric(r.TuplesPerSec, "tuples/s")
			}
			b.SetBytes(int64(n))
		})
	}
}
