package fabric

import (
	"net"
	"sync"
	"time"

	"datacell/internal/emitter"
)

// session is one direction-pair of the fabric's resumable transport. Both
// ends of a coordinator↔worker link own one: it stamps outgoing session
// frames with a monotone transmit sequence, retains them until the peer
// acknowledges, dedups incoming frames by receive cursor, and — after a
// reconnect — replays everything past the peer's acknowledged cursor.
// That replay is what turns a connection dropped mid-frame into an exact
// resume: the truncated frame is retransmitted whole, already-processed
// duplicates are skipped by sequence, and no window is lost or applied
// twice.
//
// All sends enqueue; a single writer goroutine (per session, living across
// reconnects) performs the blocking network writes, so no engine or
// routing lock is ever held across IO and a stalled peer can never
// deadlock the frame readers (slow peers instead grow the outbox, which
// is bounded only by the disconnection window).
type session struct {
	mu     sync.Mutex
	cond   *sync.Cond
	txSeq  uint64          // last stamped transmit sequence
	rxSeq  uint64          // highest in-order receive sequence processed
	outbox []emitter.Frame // stamped frames retained until acked
	next   int             // outbox index of the next frame to write
	ctl    []emitter.Frame // unstamped control frames (hello/welcome/ack)
	conn   net.Conn
	gen    uint64 // bumped on every attach/detach; guards stale writes
	closed bool
	// peerAcked is the highest transmit sequence the peer has ever
	// acknowledged.
	peerAcked uint64
	// retain keeps acknowledged frames in the outbox until the peer has
	// made them durable (snapAcked) — the coordinator-side replay log. An
	// acked frame lives only in the peer's memory; if the peer process
	// dies it must be replayed, so only a durable snapshot cursor (or,
	// for a worker that never snapshots, nothing) releases it.
	retain    bool
	snapAcked uint64 // highest cursor the peer has durably snapshotted

	// Counters for \fabric introspection.
	framesOut, framesIn uint64
	reconnects          uint64
}

// newSession starts a session. retain=true keeps acked frames as a
// replay log bounded by the peer's snapshot cursor (the coordinator's
// side of every worker link); retain=false prunes on ack (the worker's
// side — the coordinator is not restartable, so nothing is replayed to
// it from before its own cursors).
func newSession(retain bool) *session {
	s := &session{retain: retain}
	s.cond = sync.NewCond(&s.mu)
	go s.writeLoop()
	return s
}

// send stamps and enqueues one session frame.
func (s *session) send(t byte, payload []byte) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.txSeq++
	s.outbox = append(s.outbox, emitter.Frame{Type: t, Seq: s.txSeq, Payload: payload})
	s.mu.Unlock()
	s.cond.Broadcast()
}

// sendCtl enqueues an unstamped control frame (written before pending
// session frames).
func (s *session) sendCtl(f emitter.Frame) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.ctl = append(s.ctl, f)
	s.mu.Unlock()
	s.cond.Broadcast()
}

// attach installs a (re)connected conn: frames the peer acknowledged are
// pruned (down to the retention floor), the write cursor is positioned at
// the first frame past the peer's cursor, and an optional control frame
// (the handshake reply) is queued ahead of the replay. Any previous conn
// is closed.
func (s *session) attach(conn net.Conn, peerRx uint64, ctl *emitter.Frame) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = conn.Close()
		return
	}
	old := s.conn
	s.pruneLocked(peerRx)
	// Replay starts at the first retained frame the peer does not have.
	// Outbox sequences are contiguous, so the index is arithmetic — a
	// retained replay log must not be rescanned (or resent) on every
	// reconnect.
	s.next = 0
	if len(s.outbox) > 0 && peerRx >= s.outbox[0].Seq {
		s.next = int(peerRx - s.outbox[0].Seq + 1)
		if s.next > len(s.outbox) {
			s.next = len(s.outbox)
		}
	}
	// Control frames are connection-scoped (acks, handshake replies): any
	// retained from the previous conn are stale — an old ack written ahead
	// of the new handshake reply would make the peer drop the fresh conn.
	s.ctl = nil
	if ctl != nil {
		s.ctl = append(s.ctl, *ctl)
	}
	s.conn = conn
	s.gen++
	s.reconnects++
	s.mu.Unlock()
	s.cond.Broadcast()
	if old != nil {
		_ = old.Close()
	}
}

// detach drops conn if it is still the session's active conn (a reader
// noticing an error races the next attach).
func (s *session) detach(conn net.Conn) {
	s.mu.Lock()
	if s.conn == conn {
		s.conn = nil
		s.gen++
		s.ctl = nil // connection-scoped frames die with the conn
	}
	s.mu.Unlock()
	_ = conn.Close()
}

// advanceSnap records the peer's durable snapshot cursor, releasing the
// replay-log prefix at or below it — the coordinator's replay-log garbage
// collection (driven by Hello.Snap and snapshot-ack frames).
func (s *session) advanceSnap(cursor uint64) {
	s.mu.Lock()
	if cursor > s.snapAcked {
		s.snapAcked = cursor
		s.pruneLocked(s.peerAcked)
	}
	s.mu.Unlock()
}

// restore rewinds the session to checkpointed cursors before the first
// dial: the restart path loading a worker snapshot. The outbox holds the
// checkpoint's sent-but-unacknowledged frames; replay regenerates
// everything after txSeq.
func (s *session) restore(txSeq, rxSeq uint64, outbox []emitter.Frame) {
	s.mu.Lock()
	s.txSeq, s.rxSeq, s.peerAcked = txSeq, rxSeq, 0
	s.outbox = outbox
	s.next = 0
	s.ctl = nil
	s.gen++
	s.mu.Unlock()
}

// exportState captures the transmit cursor and the unacknowledged
// outbox — the session half of a worker checkpoint. The caller must hold
// whatever lock serializes sends (the worker's state mutex), so the
// cursor and the captured state agree.
func (s *session) exportState() (txSeq uint64, outbox []emitter.Frame) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.txSeq, append([]emitter.Frame(nil), s.outbox...)
}

// onAck prunes frames the peer has processed.
func (s *session) onAck(peerRx uint64) {
	s.mu.Lock()
	s.pruneLocked(peerRx)
	s.mu.Unlock()
}

func (s *session) pruneLocked(peerRx uint64) {
	if peerRx > s.peerAcked {
		s.peerAcked = peerRx
	}
	limit := s.peerAcked
	if s.retain && s.snapAcked < limit {
		limit = s.snapAcked
	}
	if len(s.outbox) == 0 || s.outbox[0].Seq > limit {
		return
	}
	// Sequences are contiguous: the drop count is arithmetic, not a scan
	// (the retained prefix can be long between snapshot cursors).
	drop := int(limit - s.outbox[0].Seq + 1)
	if drop > len(s.outbox) {
		drop = len(s.outbox)
	}
	s.outbox = append([]emitter.Frame(nil), s.outbox[drop:]...)
	s.next -= drop
	if s.next < 0 {
		s.next = 0
	}
}

// accept advances the receive cursor for an incoming session frame.
// fresh=false means an already-processed duplicate (replayed after a
// reconnect) to be skipped; gap=true means the stream is inconsistent and
// the caller must drop the connection (the resume handshake repairs it).
func (s *session) accept(seq uint64) (fresh, gap bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.framesIn++
	switch {
	case seq <= s.rxSeq:
		return false, false
	case seq == s.rxSeq+1:
		s.rxSeq = seq
		return true, false
	default:
		return false, true
	}
}

// sentSeq reports the last stamped transmit sequence — what the peer's
// receive cursor could at most legitimately be. A Hello claiming more
// identifies cursors from another session life.
func (s *session) sentSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.txSeq
}

// cursor reports the receive cursor (for handshakes and acks).
func (s *session) cursor() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rxSeq
}

// pendingOut reports the number of unacknowledged session frames.
func (s *session) pendingOut() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.outbox)
}

// connected reports whether a live conn is attached.
func (s *session) connected() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conn != nil
}

// flushWait blocks until every queued frame has been written (not
// necessarily acked) or the timeout passes — used for orderly shutdown so
// the Bye frame reaches the peer. A session with no attached conn returns
// immediately: there is nothing to flush to, and waiting for a reconnect
// would stall shutdown.
func (s *session) flushWait(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		done := s.closed || s.conn == nil || (len(s.ctl) == 0 && s.next >= len(s.outbox))
		s.mu.Unlock()
		if done {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// close stops the writer goroutine and closes any attached conn.
func (s *session) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conn := s.conn
	s.conn = nil
	s.gen++
	s.mu.Unlock()
	s.cond.Broadcast()
	if conn != nil {
		_ = conn.Close()
	}
}

// writeLoop is the session's single writer: it drains control frames
// first, then unsent outbox frames, never holding the session mutex across
// a blocking write. A write that completes after a reattach (generation
// changed) is ignored — the reattach already rewound the cursor and the
// frame will be replayed, with the receiver deduplicating by sequence.
func (s *session) writeLoop() {
	for {
		s.mu.Lock()
		for !s.closed && (s.conn == nil || (len(s.ctl) == 0 && s.next >= len(s.outbox))) {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		var frame emitter.Frame
		isCtl := len(s.ctl) > 0
		if isCtl {
			frame = s.ctl[0]
		} else {
			frame = s.outbox[s.next]
		}
		conn, gen := s.conn, s.gen
		s.mu.Unlock()

		err := emitter.WriteFrame(conn, frame)

		s.mu.Lock()
		if s.gen == gen {
			switch {
			case err != nil:
				s.conn = nil
				s.gen++
			case isCtl:
				s.ctl = s.ctl[1:]
				s.framesOut++
			default:
				s.next++
				s.framesOut++
			}
		}
		s.mu.Unlock()
		if err != nil {
			_ = conn.Close()
		}
	}
}
