package fabric

import (
	"net"
	"sync"
	"time"

	"datacell/internal/emitter"
)

// session is one direction-pair of the fabric's resumable transport. Both
// ends of a coordinator↔worker link own one: it stamps outgoing session
// frames with a monotone transmit sequence, retains them until the peer
// acknowledges, dedups incoming frames by receive cursor, and — after a
// reconnect — replays everything past the peer's acknowledged cursor.
// That replay is what turns a connection dropped mid-frame into an exact
// resume: the truncated frame is retransmitted whole, already-processed
// duplicates are skipped by sequence, and no window is lost or applied
// twice.
//
// All sends enqueue; writer goroutines (per session, living across
// reconnects) perform the blocking network writes, so no engine or
// routing lock is ever held across IO and a stalled peer can never
// deadlock the frame readers (slow peers instead grow the outbox, which
// is bounded only by the disconnection window).
//
// A session can carry a second, ingest-dedicated connection — the data
// plane, dialed straight at the worker's receptor listener. Frames keep
// ONE transmit sequence: batch frames (frameBatch) prefer the data conn,
// everything else stays on the control conn, and the receiver merges the
// two byte streams back into sequence order before applying. Because the
// sequence space is shared, every recovery invariant (retention, replay,
// dedup, snapshot cursors) is oblivious to which wire a frame rode.
type session struct {
	mu     sync.Mutex
	cond   *sync.Cond
	txSeq  uint64          // last stamped transmit sequence
	rxSeq  uint64          // highest in-order receive sequence processed
	outbox []emitter.Frame // stamped frames retained until acked
	next   int             // outbox index of the control writer's next frame
	ctl    []emitter.Frame // unstamped control frames (hello/welcome/ack)
	conn   net.Conn
	gen    uint64 // bumped on every attach/detach; guards stale writes
	// dataConn is the optional ingest plane; dnext is the data writer's
	// outbox cursor, dgen its stale-write guard. With a data conn
	// attached the control writer skips batch frames (the data writer
	// owns them); on data-conn loss the control cursor rewinds to cover
	// whatever the data writer had not sent.
	dataConn net.Conn
	dnext    int
	dgen     uint64
	closed   bool
	// peerAcked is the highest transmit sequence the peer has ever
	// acknowledged.
	peerAcked uint64
	// retain keeps acknowledged frames in the outbox until the peer has
	// made them durable (snapAcked) — the coordinator-side replay log. An
	// acked frame lives only in the peer's memory; if the peer process
	// dies it must be replayed, so only a durable snapshot cursor (or,
	// for a worker that never snapshots, nothing) releases it.
	retain    bool
	snapAcked uint64 // highest cursor the peer has durably snapshotted

	// Counters for \fabric introspection.
	framesOut, framesIn uint64
	reconnects          uint64
}

// newSession starts a session. retain=true keeps acked frames as a
// replay log bounded by the peer's snapshot cursor (the coordinator's
// side of every worker link); retain=false prunes on ack (the worker's
// side — the coordinator is not restartable, so nothing is replayed to
// it from before its own cursors).
func newSession(retain bool) *session {
	s := &session{retain: retain}
	s.cond = sync.NewCond(&s.mu)
	go s.writeLoop()
	go s.dataWriteLoop()
	return s
}

// isDataFrame classifies frames for the two-plane writer split: ingest
// batches ride the data conn when one is attached.
func isDataFrame(t byte) bool { return t == frameBatch }

// send stamps and enqueues one session frame.
func (s *session) send(t byte, payload []byte) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.txSeq++
	s.outbox = append(s.outbox, emitter.Frame{Type: t, Seq: s.txSeq, Payload: payload})
	s.mu.Unlock()
	s.cond.Broadcast()
}

// sendCtl enqueues an unstamped control frame (written before pending
// session frames).
func (s *session) sendCtl(f emitter.Frame) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.ctl = append(s.ctl, f)
	s.mu.Unlock()
	s.cond.Broadcast()
}

// attach installs a (re)connected conn: frames the peer acknowledged are
// pruned (down to the retention floor), the write cursor is positioned at
// the first frame past the peer's cursor, and an optional control frame
// (the handshake reply) is queued ahead of the replay. Any previous conn
// is closed.
func (s *session) attach(conn net.Conn, peerRx uint64, ctl *emitter.Frame) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = conn.Close()
		return
	}
	old := s.conn
	// The handshake cursor is authoritative for this peer life: a peer
	// that restarted from scratch (or an older snapshot) has forgotten
	// frames its previous life acknowledged, and a data-loss rewind
	// computed against the dead life's acks would strand them.
	s.peerAcked = peerRx
	s.pruneLocked(peerRx)
	// Replay starts at the first retained frame the peer does not have.
	// Outbox sequences are contiguous, so the index is arithmetic — a
	// retained replay log must not be rescanned (or resent) on every
	// reconnect.
	s.next = 0
	if len(s.outbox) > 0 && peerRx >= s.outbox[0].Seq {
		s.next = int(peerRx - s.outbox[0].Seq + 1)
		if s.next > len(s.outbox) {
			s.next = len(s.outbox)
		}
	}
	// Control frames are connection-scoped (acks, handshake replies): any
	// retained from the previous conn are stale — an old ack written ahead
	// of the new handshake reply would make the peer drop the fresh conn.
	s.ctl = nil
	if ctl != nil {
		s.ctl = append(s.ctl, *ctl)
	}
	s.conn = conn
	s.gen++
	// A control reattach starts a new connection epoch: any data conn
	// still installed was dialed at the previous life's receptor and may
	// be dead or pointing at a stale process. Drop it — were it left
	// attached, the control writer would keep skipping batch frames that
	// no live data writer delivers. The dial loop redials the receptor
	// the fresh Hello advertised.
	oldData := s.dataConn
	s.dataConn = nil
	s.dgen++
	s.dnext = s.next
	s.reconnects++
	s.mu.Unlock()
	s.cond.Broadcast()
	if old != nil {
		_ = old.Close()
	}
	if oldData != nil {
		_ = oldData.Close()
	}
}

// detach drops conn if it is still the session's active conn (a reader
// noticing an error races the next attach).
func (s *session) detach(conn net.Conn) {
	s.mu.Lock()
	if s.conn == conn {
		s.conn = nil
		s.gen++
		s.ctl = nil // connection-scoped frames die with the conn
	}
	s.mu.Unlock()
	_ = conn.Close()
}

// attachData installs a (re)dialed ingest-plane conn. The data writer
// takes over batch frames from the control writer's current position —
// everything before it was already written on the control conn.
func (s *session) attachData(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = conn.Close()
		return
	}
	old := s.dataConn
	s.dataConn = conn
	s.dgen++
	s.dnext = s.next
	s.mu.Unlock()
	s.cond.Broadcast()
	if old != nil {
		_ = old.Close()
	}
}

// detachData drops the ingest-plane conn and rewinds the control writer
// to replay everything past the peer's acknowledged cursor.
func (s *session) detachData(conn net.Conn) {
	s.mu.Lock()
	if s.dataConn == conn {
		s.dataConn = nil
		s.dgen++
		s.rewindForDataLossLocked()
	}
	s.mu.Unlock()
	s.cond.Broadcast()
	_ = conn.Close()
}

// rewindForDataLossLocked repositions the control writer to replay every
// frame past the peer's acknowledged cursor. A dying data conn may take
// fully-written but undelivered batches with it, and — unlike a control
// conn, whose loss forces a resume handshake that repositions the replay
// cursor — data-conn loss has no handshake: the last acked cursor is the
// only position known to have been delivered. Anything the peer did
// receive is dropped by its sequence dedup on replay.
func (s *session) rewindForDataLossLocked() {
	pos := 0
	if len(s.outbox) > 0 && s.peerAcked >= s.outbox[0].Seq {
		pos = int(s.peerAcked - s.outbox[0].Seq + 1)
		if pos > len(s.outbox) {
			pos = len(s.outbox)
		}
	}
	if pos < s.next {
		s.next = pos
	}
}

// advanceSnap records the peer's durable snapshot cursor, releasing the
// replay-log prefix at or below it — the coordinator's replay-log garbage
// collection (driven by Hello.Snap and snapshot-ack frames).
func (s *session) advanceSnap(cursor uint64) {
	s.mu.Lock()
	if cursor > s.snapAcked {
		s.snapAcked = cursor
		s.pruneLocked(s.peerAcked)
	}
	s.mu.Unlock()
}

// restore rewinds the session to checkpointed cursors before the first
// dial: the restart path loading a worker snapshot. The outbox holds the
// checkpoint's sent-but-unacknowledged frames; replay regenerates
// everything after txSeq.
func (s *session) restore(txSeq, rxSeq uint64, outbox []emitter.Frame) {
	s.mu.Lock()
	s.txSeq, s.rxSeq, s.peerAcked = txSeq, rxSeq, 0
	s.outbox = outbox
	s.next = 0
	s.dnext = 0
	s.ctl = nil
	s.gen++
	s.dgen++
	s.mu.Unlock()
}

// exportState captures the transmit cursor and the unacknowledged
// outbox — the session half of a worker checkpoint. The caller must hold
// whatever lock serializes sends (the worker's state mutex), so the
// cursor and the captured state agree.
func (s *session) exportState() (txSeq uint64, outbox []emitter.Frame) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.txSeq, append([]emitter.Frame(nil), s.outbox...)
}

// onAck prunes frames the peer has processed.
func (s *session) onAck(peerRx uint64) {
	s.mu.Lock()
	s.pruneLocked(peerRx)
	s.mu.Unlock()
}

func (s *session) pruneLocked(peerRx uint64) {
	if peerRx > s.peerAcked {
		s.peerAcked = peerRx
	}
	limit := s.peerAcked
	if s.retain && s.snapAcked < limit {
		limit = s.snapAcked
	}
	if len(s.outbox) == 0 || s.outbox[0].Seq > limit {
		return
	}
	// Sequences are contiguous: the drop count is arithmetic, not a scan
	// (the retained prefix can be long between snapshot cursors).
	drop := int(limit - s.outbox[0].Seq + 1)
	if drop > len(s.outbox) {
		drop = len(s.outbox)
	}
	s.outbox = append([]emitter.Frame(nil), s.outbox[drop:]...)
	s.next -= drop
	if s.next < 0 {
		s.next = 0
	}
	s.dnext -= drop
	if s.dnext < 0 {
		s.dnext = 0
	}
}

// accept advances the receive cursor for an incoming session frame.
// fresh=false means an already-processed duplicate (replayed after a
// reconnect) to be skipped; gap=true means the stream is inconsistent and
// the caller must drop the connection (the resume handshake repairs it).
func (s *session) accept(seq uint64) (fresh, gap bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.framesIn++
	switch {
	case seq <= s.rxSeq:
		return false, false
	case seq == s.rxSeq+1:
		s.rxSeq = seq
		return true, false
	default:
		return false, true
	}
}

// sentSeq reports the last stamped transmit sequence — what the peer's
// receive cursor could at most legitimately be. A Hello claiming more
// identifies cursors from another session life.
func (s *session) sentSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.txSeq
}

// cursor reports the receive cursor (for handshakes and acks).
func (s *session) cursor() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rxSeq
}

// pendingOut reports the number of unacknowledged session frames.
func (s *session) pendingOut() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.outbox)
}

// connected reports whether a live conn is attached.
func (s *session) connected() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conn != nil
}

// hasData reports whether a data-plane conn is attached.
func (s *session) hasData() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dataConn != nil
}

// flushWait blocks until every queued frame has been written (not
// necessarily acked) or the timeout passes — used for orderly shutdown so
// the Bye frame reaches the peer. A session with no attached conn returns
// immediately: there is nothing to flush to, and waiting for a reconnect
// would stall shutdown.
func (s *session) flushWait(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		done := s.closed || s.conn == nil ||
			(len(s.ctl) == 0 && s.next >= len(s.outbox) &&
				(s.dataConn == nil || s.dnext >= len(s.outbox)))
		s.mu.Unlock()
		if done {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// close stops the writer goroutine and closes any attached conn.
func (s *session) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conn, dconn := s.conn, s.dataConn
	s.conn, s.dataConn = nil, nil
	s.gen++
	s.dgen++
	s.mu.Unlock()
	s.cond.Broadcast()
	if conn != nil {
		_ = conn.Close()
	}
	if dconn != nil {
		_ = dconn.Close()
	}
}

// writeLoop is the session's control-plane writer: it drains control
// frames first, then unsent outbox frames, never holding the session
// mutex across a blocking write. With a data conn attached it skips
// batch frames — the data writer owns them; positions it skips are at or
// past the data writer's cursor, so nothing is orphaned (and on data-conn
// loss this cursor rewinds to the peer's acked position, replaying every
// frame whose delivery the dead conn leaves uncertain). A write
// that completes after a reattach (generation changed) is ignored — the
// reattach already rewound the cursor and the frame will be replayed,
// with the receiver deduplicating by sequence.
func (s *session) writeLoop() {
	for {
		s.mu.Lock()
		for !s.closed {
			if s.conn != nil {
				if len(s.ctl) > 0 {
					break
				}
				if s.dataConn != nil {
					for s.next < len(s.outbox) && isDataFrame(s.outbox[s.next].Type) {
						s.next++
					}
				}
				if s.next < len(s.outbox) {
					break
				}
			}
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		var frame emitter.Frame
		isCtl := len(s.ctl) > 0
		if isCtl {
			frame = s.ctl[0]
		} else {
			frame = s.outbox[s.next]
		}
		conn, gen := s.conn, s.gen
		s.mu.Unlock()

		err := emitter.WriteFrame(conn, frame)

		s.mu.Lock()
		if s.gen == gen {
			switch {
			case err != nil:
				s.conn = nil
				s.gen++
			case isCtl:
				s.ctl = s.ctl[1:]
				s.framesOut++
			default:
				s.next++
				s.framesOut++
			}
		}
		s.mu.Unlock()
		if err != nil {
			_ = conn.Close()
		}
	}
}

// dataWriteLoop is the ingest-plane writer: batch frames only, active
// only while a data conn is attached. Non-batch frames are skipped
// permanently (the control writer owns them).
func (s *session) dataWriteLoop() {
	for {
		s.mu.Lock()
		for !s.closed {
			if s.dataConn != nil {
				for s.dnext < len(s.outbox) && !isDataFrame(s.outbox[s.dnext].Type) {
					s.dnext++
				}
				if s.dnext < len(s.outbox) {
					break
				}
			}
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		frame := s.outbox[s.dnext]
		conn, gen := s.dataConn, s.dgen
		s.mu.Unlock()

		err := emitter.WriteFrame(conn, frame)

		s.mu.Lock()
		if s.dgen == gen {
			if err != nil {
				s.dataConn = nil
				s.dgen++
				s.rewindForDataLossLocked()
			} else {
				s.dnext++
				s.framesOut++
			}
		}
		s.mu.Unlock()
		if err != nil {
			_ = conn.Close()
		}
	}
}
