package fabric

import (
	"net"
	"sync"
	"time"

	"datacell/internal/emitter"
)

// session is one direction-pair of the fabric's resumable transport. Both
// ends of a coordinator↔worker link own one: it stamps outgoing session
// frames with a monotone transmit sequence, retains them until the peer
// acknowledges, dedups incoming frames by receive cursor, and — after a
// reconnect — replays everything past the peer's acknowledged cursor.
// That replay is what turns a connection dropped mid-frame into an exact
// resume: the truncated frame is retransmitted whole, already-processed
// duplicates are skipped by sequence, and no window is lost or applied
// twice.
//
// All sends enqueue; a single writer goroutine (per session, living across
// reconnects) performs the blocking network writes, so no engine or
// routing lock is ever held across IO and a stalled peer can never
// deadlock the frame readers (slow peers instead grow the outbox, which
// is bounded only by the disconnection window).
type session struct {
	mu     sync.Mutex
	cond   *sync.Cond
	txSeq  uint64          // last stamped transmit sequence
	rxSeq  uint64          // highest in-order receive sequence processed
	outbox []emitter.Frame // stamped frames retained until acked
	next   int             // outbox index of the next frame to write
	ctl    []emitter.Frame // unstamped control frames (hello/welcome/ack)
	conn   net.Conn
	gen    uint64 // bumped on every attach/detach; guards stale writes
	closed bool
	// peerAcked is the highest transmit sequence the peer has ever
	// acknowledged — the peer-progress marker that distinguishes a peer
	// which lost its state from one that merely never connected yet.
	peerAcked uint64

	// Counters for \fabric introspection.
	framesOut, framesIn uint64
	reconnects          uint64
}

func newSession() *session {
	s := &session{}
	s.cond = sync.NewCond(&s.mu)
	go s.writeLoop()
	return s
}

// send stamps and enqueues one session frame.
func (s *session) send(t byte, payload []byte) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.txSeq++
	s.outbox = append(s.outbox, emitter.Frame{Type: t, Seq: s.txSeq, Payload: payload})
	s.mu.Unlock()
	s.cond.Broadcast()
}

// sendCtl enqueues an unstamped control frame (written before pending
// session frames).
func (s *session) sendCtl(f emitter.Frame) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.ctl = append(s.ctl, f)
	s.mu.Unlock()
	s.cond.Broadcast()
}

// attach installs a (re)connected conn: frames the peer acknowledged are
// pruned, the write cursor rewinds to the first unacknowledged frame, and
// an optional control frame (the handshake reply) is queued ahead of the
// replay. Any previous conn is closed.
func (s *session) attach(conn net.Conn, peerRx uint64, ctl *emitter.Frame) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = conn.Close()
		return
	}
	old := s.conn
	s.pruneLocked(peerRx)
	s.next = 0
	// Control frames are connection-scoped (acks, handshake replies): any
	// retained from the previous conn are stale — an old ack written ahead
	// of the new handshake reply would make the peer drop the fresh conn.
	s.ctl = nil
	if ctl != nil {
		s.ctl = append(s.ctl, *ctl)
	}
	s.conn = conn
	s.gen++
	s.reconnects++
	s.mu.Unlock()
	s.cond.Broadcast()
	if old != nil {
		_ = old.Close()
	}
}

// detach drops conn if it is still the session's active conn (a reader
// noticing an error races the next attach).
func (s *session) detach(conn net.Conn) {
	s.mu.Lock()
	if s.conn == conn {
		s.conn = nil
		s.gen++
		s.ctl = nil // connection-scoped frames die with the conn
	}
	s.mu.Unlock()
	_ = conn.Close()
}

// peerProgress reports whether the peer ever made observable progress —
// acknowledged an outgoing frame or delivered a stamped frame of its own.
// A peer handshaking with cursor 0 *despite* prior progress lost its state
// (process restart) and needs a session reset; a peer with cursor 0 and no
// progress is simply connecting for the first time, and the normal replay
// of the buffered outbox gives it the complete history. (The transmit
// counter alone cannot discriminate: frames buffered for a worker that has
// not dialed yet are history the replay must deliver, not evidence the
// peer lost anything.)
func (s *session) peerProgress() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peerAcked > 0 || s.rxSeq > 0
}

// reset rewinds the session to a fresh state for a peer that restarted
// and lost its cursors: counters to zero, queues dropped. The owner
// re-sends whatever standing state (assignments, specs) the peer needs;
// anything only buffered in the old queues is gone — the fabric's
// documented at-most-once degradation for a lost worker process.
func (s *session) reset() {
	s.mu.Lock()
	s.txSeq, s.rxSeq, s.peerAcked = 0, 0, 0
	s.outbox, s.ctl = nil, nil
	s.next = 0
	s.gen++
	s.mu.Unlock()
}

// onAck prunes frames the peer has processed.
func (s *session) onAck(peerRx uint64) {
	s.mu.Lock()
	s.pruneLocked(peerRx)
	s.mu.Unlock()
}

func (s *session) pruneLocked(peerRx uint64) {
	if peerRx > s.peerAcked {
		s.peerAcked = peerRx
	}
	drop := 0
	for drop < len(s.outbox) && s.outbox[drop].Seq <= peerRx {
		drop++
	}
	if drop > 0 {
		s.outbox = append([]emitter.Frame(nil), s.outbox[drop:]...)
		s.next -= drop
		if s.next < 0 {
			s.next = 0
		}
	}
}

// accept advances the receive cursor for an incoming session frame.
// fresh=false means an already-processed duplicate (replayed after a
// reconnect) to be skipped; gap=true means the stream is inconsistent and
// the caller must drop the connection (the resume handshake repairs it).
func (s *session) accept(seq uint64) (fresh, gap bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.framesIn++
	switch {
	case seq <= s.rxSeq:
		return false, false
	case seq == s.rxSeq+1:
		s.rxSeq = seq
		return true, false
	default:
		return false, true
	}
}

// cursor reports the receive cursor (for handshakes and acks).
func (s *session) cursor() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rxSeq
}

// pendingOut reports the number of unacknowledged session frames.
func (s *session) pendingOut() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.outbox)
}

// connected reports whether a live conn is attached.
func (s *session) connected() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conn != nil
}

// flushWait blocks until every queued frame has been written (not
// necessarily acked) or the timeout passes — used for orderly shutdown so
// the Bye frame reaches the peer. A session with no attached conn returns
// immediately: there is nothing to flush to, and waiting for a reconnect
// would stall shutdown.
func (s *session) flushWait(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		done := s.closed || s.conn == nil || (len(s.ctl) == 0 && s.next >= len(s.outbox))
		s.mu.Unlock()
		if done {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// close stops the writer goroutine and closes any attached conn.
func (s *session) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conn := s.conn
	s.conn = nil
	s.gen++
	s.mu.Unlock()
	s.cond.Broadcast()
	if conn != nil {
		_ = conn.Close()
	}
}

// writeLoop is the session's single writer: it drains control frames
// first, then unsent outbox frames, never holding the session mutex across
// a blocking write. A write that completes after a reattach (generation
// changed) is ignored — the reattach already rewound the cursor and the
// frame will be replayed, with the receiver deduplicating by sequence.
func (s *session) writeLoop() {
	for {
		s.mu.Lock()
		for !s.closed && (s.conn == nil || (len(s.ctl) == 0 && s.next >= len(s.outbox))) {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		var frame emitter.Frame
		isCtl := len(s.ctl) > 0
		if isCtl {
			frame = s.ctl[0]
		} else {
			frame = s.outbox[s.next]
		}
		conn, gen := s.conn, s.gen
		s.mu.Unlock()

		err := emitter.WriteFrame(conn, frame)

		s.mu.Lock()
		if s.gen == gen {
			switch {
			case err != nil:
				s.conn = nil
				s.gen++
			case isCtl:
				s.ctl = s.ctl[1:]
				s.framesOut++
			default:
				s.next++
				s.framesOut++
			}
		}
		s.mu.Unlock()
		if err != nil {
			_ = conn.Close()
		}
	}
}
