package fabric_test

// Differential equivalence harness: randomized workloads cross-checked
// between the single-process engine and the coordinator + workers fabric.
// Each seed draws a query mix (single-stream scans, co-partitioned joins,
// re-evaluation members, isolated queries), window geometry (tumbling and
// sliding), routing (hash and round-robin) and shard counts, then runs the
// identical workload and feed on both paths and requires byte-identical
// results. CI runs differentialSeeds seeds; build with -tags soak for the
// full sweep (see diffseeds_*.go).

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"datacell"
	"datacell/internal/bat"
)

// diffQuery is one drawn member of a differential workload.
type diffQuery struct {
	sql  string
	opts *datacell.RegisterOptions
}

// diffChunks draws n rows in random batch splits: ts monotone, keys and
// values from rng. Batch boundaries are part of the drawn workload — both
// runs feed the same splits, and slicing is batch-agnostic anyway.
func diffChunks(rng *rand.Rand, n, nkeys int) []*bat.Chunk {
	sch := bat.NewSchema([]string{"ts", "k", "v"}, []bat.Kind{bat.Time, bat.Int, bat.Float})
	var out []*bat.Chunk
	for pos := 0; pos < n; {
		take := 1 + rng.Intn(29)
		if pos+take > n {
			take = n - pos
		}
		ts := make(bat.Times, take)
		ks := make(bat.Ints, take)
		vs := make(bat.Floats, take)
		for i := 0; i < take; i++ {
			ts[i] = int64(pos+i) * 1000
			ks[i] = int64(rng.Intn(nkeys))
			vs[i] = float64(rng.Intn(100))
		}
		out = append(out, &bat.Chunk{Schema: sch, Cols: []bat.Vector{ts, ks, vs}})
		pos += take
	}
	return out
}

// diffSingle draws a single-stream member over the given stream.
func diffSingle(rng *rand.Rand, stream string, size, slide int) string {
	switch rng.Intn(4) {
	case 0:
		return fmt.Sprintf("SELECT k, sum(v) AS s, count(*) AS n FROM %s [SIZE %d SLIDE %d] GROUP BY k", stream, size, slide)
	case 1:
		return fmt.Sprintf("SELECT k, v FROM %s [SIZE %d SLIDE %d] WHERE v >= %d.0", stream, size, slide, rng.Intn(5)*20)
	case 2:
		return fmt.Sprintf("SELECT k, min(v) AS lo, max(v) AS hi FROM %s [SIZE %d SLIDE %d] GROUP BY k", stream, size, slide)
	default:
		return fmt.Sprintf("SELECT count(*) AS n FROM %s [SIZE %d SLIDE %d] GROUP BY k HAVING count(*) > %d", stream, size, slide, rng.Intn(3))
	}
}

// diffJoin draws an s⋈r member; both sides share the seed's lockstep
// geometry so the join is decomposable.
func diffJoin(rng *rand.Rand, size, slide int) string {
	if rng.Intn(2) == 0 {
		return fmt.Sprintf(
			"SELECT s.k, count(*) AS n FROM s [SIZE %d SLIDE %d], r [SIZE %d SLIDE %d] WHERE s.k = r.k GROUP BY s.k HAVING count(*) > %d",
			size, slide, size, slide, rng.Intn(2))
	}
	return fmt.Sprintf(
		"SELECT s.v, r.v FROM s [SIZE %d SLIDE %d], r [SIZE %d SLIDE %d] WHERE s.k = r.k",
		size, slide, size, slide)
}

// diffWorkload draws the member list. The first two slots force a join and
// an isolated member so every seed exercises the full routing surface; the
// rest is a free draw.
func diffWorkload(rng *rand.Rand, size, slide int) []diffQuery {
	mode := func() datacell.Mode {
		if rng.Intn(2) == 0 {
			return datacell.ModeIncremental
		}
		return datacell.ModeReeval
	}
	stream := func() string {
		if rng.Intn(2) == 0 {
			return "s"
		}
		return "r"
	}
	nq := 6 + rng.Intn(7)
	out := make([]diffQuery, 0, nq)
	out = append(out,
		diffQuery{diffJoin(rng, size, slide), &datacell.RegisterOptions{Mode: mode()}},
		diffQuery{diffSingle(rng, stream(), size, slide), &datacell.RegisterOptions{Mode: mode(), Isolated: true}},
	)
	for len(out) < nq {
		var sql string
		iso := rng.Intn(5) == 0
		if rng.Intn(3) == 0 {
			sql = diffJoin(rng, size, slide)
		} else {
			sql = diffSingle(rng, stream(), size, slide)
		}
		out = append(out, diffQuery{sql, &datacell.RegisterOptions{Mode: mode(), Isolated: iso}})
	}
	return out
}

func runDiffLocal(t *testing.T, ddl string, qs []diffQuery, sChunks, rChunks []*bat.Chunk) [][]string {
	t.Helper()
	eng := datacell.New(&datacell.Options{Workers: 1})
	defer eng.Close()
	if _, err := eng.ExecScript(ddl); err != nil {
		t.Fatal(err)
	}
	regs := make([]*datacell.Query, len(qs))
	for i, dq := range qs {
		q, err := eng.Register(fmt.Sprintf("q%02d", i), dq.sql, dq.opts)
		if err != nil {
			t.Fatalf("member %d %q: %v", i, dq.sql, err)
		}
		regs[i] = q
	}
	feedMixed(t, eng, eng.Drain, sChunks, rChunks)
	out := make([][]string, len(qs))
	for i, q := range regs {
		out[i] = collectRendered(q)
	}
	return out
}

func runDiffFabric(t *testing.T, ddl string, nWorkers int, qs []diffQuery, sChunks, rChunks []*bat.Chunk) [][]string {
	t.Helper()
	fc := startFabric(t, ddl, nWorkers, nil)
	defer fc.close()
	if err := fc.coord.ExportStream("r"); err != nil {
		t.Fatal(err)
	}
	regs := make([]*datacell.Query, len(qs))
	for i, dq := range qs {
		q, err := fc.eng.Register(fmt.Sprintf("q%02d", i), dq.sql, dq.opts)
		if err != nil {
			t.Fatalf("member %d %q: %v", i, dq.sql, err)
		}
		if !q.Grouped() {
			t.Fatalf("member %d %q did not route through a group", i, dq.sql)
		}
		if dq.opts.Isolated != strings.Contains(q.GroupKey(), "!iso#") {
			t.Fatalf("member %d: isolated=%v but key=%q", i, dq.opts.Isolated, q.GroupKey())
		}
		regs[i] = q
	}
	feedMixed(t, fc.eng, fc.coord.Drain, sChunks, rChunks)
	out := make([][]string, len(qs))
	for i, q := range regs {
		out[i] = collectRendered(q)
	}
	return out
}

// TestFabricDifferentialNoFuse is the cross-executor spot-check: the
// local leg runs with the fused tail executor ablated (NoFuse) while the
// fabric leg keeps the fused default. Byte-identical results pin the
// fusion contract across the wire — fused-over-fabric equals
// unfused-local equals (by TestFabricDifferential) fused-local.
func TestFabricDifferentialNoFuse(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			slide := 4 * (1 + rng.Intn(3))
			size := slide * (1 + rng.Intn(3))
			ddl := "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 2 KEY k;\n" +
				"CREATE STREAM r (ts TIMESTAMP, k INT, v FLOAT) SHARD 3"
			nkeys := 2 + rng.Intn(5)
			sChunks := diffChunks(rng, 150, nkeys)
			rChunks := diffChunks(rng, 150, nkeys)
			qs := diffWorkload(rng, size, slide)
			ablated := make([]diffQuery, len(qs))
			for i, dq := range qs {
				opts := *dq.opts
				opts.NoFuse = true
				ablated[i] = diffQuery{dq.sql, &opts}
			}

			local := runDiffLocal(t, ddl, ablated, sChunks, rChunks)
			fab := runDiffFabric(t, ddl, 2, qs, sChunks, rChunks)
			assertSameResults(t, fmt.Sprintf("nofuse seed=%d size=%d slide=%d", seed, size, slide), fab, local)
		})
	}
}

// TestFabricDifferential is the property-based arm of the equivalence
// suite: the fabric must be indistinguishable from the single-process
// engine on any accepted workload, not just the hand-picked matrix.
func TestFabricDifferential(t *testing.T) {
	for seed := int64(1); seed <= differentialSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			slide := 4 * (1 + rng.Intn(3))
			size := slide * (1 + rng.Intn(3)) // mult 1 = tumbling
			key := func() string {
				if rng.Intn(2) == 0 {
					return " KEY k"
				}
				return ""
			}
			ddl := fmt.Sprintf(
				"CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD %d%s;\n"+
					"CREATE STREAM r (ts TIMESTAMP, k INT, v FLOAT) SHARD %d%s",
				1+rng.Intn(4), key(), 1+rng.Intn(4), key())
			nkeys := 2 + rng.Intn(5)
			sChunks := diffChunks(rng, 120+rng.Intn(120), nkeys)
			rChunks := diffChunks(rng, 120+rng.Intn(120), nkeys)
			qs := diffWorkload(rng, size, slide)
			for i, dq := range qs {
				t.Logf("member %d: iso=%v mode=%v %s", i, dq.opts.Isolated, dq.opts.Mode, dq.sql)
			}

			local := runDiffLocal(t, ddl, qs, sChunks, rChunks)
			fab := runDiffFabric(t, ddl, 2, qs, sChunks, rChunks)
			assertSameResults(t, fmt.Sprintf("seed=%d size=%d slide=%d", seed, size, slide), fab, local)
		})
	}
}
