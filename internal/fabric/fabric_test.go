package fabric_test

// Fabric acceptance tests. The load-bearing invariant is
// TestFabricEquivalence: a 16-query grouped workload executed by a
// coordinator plus two worker processes over loopback produces
// byte-identical results to the same workload on a single-process engine —
// including a run where a worker's connection is repeatedly cut mid-frame
// and resumed from the last acked epoch.

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"datacell"
	"datacell/internal/bat"
	"datacell/internal/fabric"
	"datacell/internal/fabric/fabrictest"
	"datacell/internal/fabric/snapshot"
)

// testChunks mirrors the engine tests' shardTestChunks: n rows in batches,
// ts monotone, k cycling over nkeys (k INT routes deterministically across
// engines — hash routing of integer keys is seed-free).
func testChunks(n, batch, nkeys int) []*bat.Chunk {
	sch := bat.NewSchema([]string{"ts", "k", "v"}, []bat.Kind{bat.Time, bat.Int, bat.Float})
	var out []*bat.Chunk
	for pos := 0; pos < n; {
		take := batch
		if pos+take > n {
			take = n - pos
		}
		ts := make(bat.Times, take)
		ks := make(bat.Ints, take)
		vs := make(bat.Floats, take)
		for i := 0; i < take; i++ {
			g := pos + i
			ts[i] = int64(g) * 1000
			ks[i] = int64(g*7) % int64(nkeys)
			vs[i] = float64(g % 100)
		}
		out = append(out, &bat.Chunk{Schema: sch, Cols: []bat.Vector{ts, ks, vs}})
		pos += take
	}
	return out
}

// memberSQL is the i-th member of the 16-query workload: varied filters,
// aggregates and window extents over one shared slide granularity.
func memberSQL(i, size, slide int) string {
	sz := size
	if i%3 == 1 && size > slide {
		sz = ((size / 2) / slide) * slide
		if sz < slide {
			sz = slide
		}
	}
	switch i % 4 {
	case 0:
		return fmt.Sprintf("SELECT k, sum(v) AS s, count(*) AS n FROM s [SIZE %d SLIDE %d] GROUP BY k", sz, slide)
	case 1:
		return fmt.Sprintf("SELECT k, v FROM s [SIZE %d SLIDE %d] WHERE v >= %d.0", sz, slide, (i%5)*20)
	case 2:
		return fmt.Sprintf("SELECT k, min(v) AS lo, max(v) AS hi FROM s [SIZE %d SLIDE %d] GROUP BY k", sz, slide)
	default:
		return fmt.Sprintf("SELECT count(*) AS n FROM s [SIZE %d SLIDE %d] GROUP BY k HAVING count(*) > %d", sz, slide, i%3)
	}
}

func memberMode(i int) datacell.Mode {
	if i%2 == 0 {
		return datacell.ModeIncremental
	}
	return datacell.ModeReeval
}

func collectRendered(q *datacell.Query) []string {
	var out []string
	for {
		select {
		case r := <-q.Out():
			out = append(out, r.Chunk.String())
		default:
			return out
		}
	}
}

// runLocal executes the workload on a plain single-process engine.
func runLocal(t *testing.T, ddl string, members int, size, slide int, chunks []*bat.Chunk) [][]string {
	t.Helper()
	eng := datacell.New(&datacell.Options{Workers: 1})
	defer eng.Close()
	if _, err := eng.Exec(ddl); err != nil {
		t.Fatal(err)
	}
	qs := make([]*datacell.Query, members)
	for i := range qs {
		q, err := eng.Register(fmt.Sprintf("q%02d", i), memberSQL(i, size, slide),
			&datacell.RegisterOptions{Mode: memberMode(i)})
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = q
	}
	for _, c := range chunks {
		if err := eng.AppendChunk("s", c); err != nil {
			t.Fatal(err)
		}
	}
	eng.Drain()
	out := make([][]string, members)
	for i, q := range qs {
		out[i] = collectRendered(q)
	}
	return out
}

// fabricCluster is a coordinator plus in-process workers over loopback.
type fabricCluster struct {
	eng     *datacell.Engine
	coord   *fabric.Coordinator
	workers []*fabric.Worker
	proxies []interface{ Close() }
}

func (fc *fabricCluster) close() {
	fc.coord.Close()
	for _, w := range fc.workers {
		w.Close()
	}
	for _, p := range fc.proxies {
		p.Close()
	}
	fc.eng.Close()
}

// startFabric boots a coordinator + nWorkers over loopback and exports
// stream "s". cutsFor, when non-nil, routes worker i's connections through
// a byte-cutting proxy (cutsFor(i) lists per-connection byte limits).
func startFabric(t *testing.T, ddl string, nWorkers int, cutsFor func(i int) []int) *fabricCluster {
	t.Helper()
	eng := datacell.New(&datacell.Options{Workers: 1})
	coord, err := fabric.NewCoordinator(eng, fabric.Options{Workers: nWorkers})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ExecScript(ddl); err != nil {
		t.Fatal(err)
	}
	if err := coord.ExportStream("s"); err != nil {
		t.Fatal(err)
	}
	fc := &fabricCluster{eng: eng, coord: coord}
	for i := 0; i < nWorkers; i++ {
		addr := coord.Addr()
		if cutsFor != nil {
			if cuts := cutsFor(i); cuts != nil {
				p, err := fabrictest.NewCutProxy(coord.Addr(), cuts)
				if err != nil {
					t.Fatal(err)
				}
				fc.proxies = append(fc.proxies, p)
				addr = p.Addr()
			}
		}
		fc.workers = append(fc.workers, fabric.NewWorker(fabric.WorkerOptions{
			Coordinator: addr,
			Index:       i,
		}))
	}
	return fc
}

// runFabric executes the workload on a coordinator + nWorkers cluster.
func runFabric(t *testing.T, ddl string, nWorkers, members, size, slide int, chunks []*bat.Chunk, cutsFor func(i int) []int) [][]string {
	t.Helper()
	fc := startFabric(t, ddl, nWorkers, cutsFor)
	defer fc.close()
	qs := make([]*datacell.Query, members)
	for i := range qs {
		q, err := fc.eng.Register(fmt.Sprintf("q%02d", i), memberSQL(i, size, slide),
			&datacell.RegisterOptions{Mode: memberMode(i)})
		if err != nil {
			t.Fatal(err)
		}
		if !q.Grouped() || !strings.Contains(q.GroupKey(), "fabric[") {
			t.Fatalf("member %d: grouped=%v key=%q, want fabric-tagged group", i, q.Grouped(), q.GroupKey())
		}
		qs[i] = q
	}
	for _, c := range chunks {
		if err := fc.eng.AppendChunk("s", c); err != nil {
			t.Fatal(err)
		}
	}
	fc.coord.Drain()
	out := make([][]string, members)
	for i, q := range qs {
		out[i] = collectRendered(q)
	}
	return out
}

func assertSameResults(t *testing.T, label string, got, want [][]string) {
	t.Helper()
	for i := range want {
		if len(got[i]) == 0 {
			t.Fatalf("%s: member %d emitted nothing (local emitted %d)", label, i, len(want[i]))
		}
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: member %d evals=%d, local=%d", label, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s: member %d eval %d diverges:\nfabric:\n%s\nlocal:\n%s",
					label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// mixedMember is the i-th member of the any-query workload: ten
// single-stream members (the classic matrix), four join members over the
// exported pair — two sharing a fingerprint and a HAVING tail, one bare,
// one re-evaluation — plus an isolated scan and an isolated join.
func mixedMember(i, size, slide int) (string, *datacell.RegisterOptions) {
	grouped := fmt.Sprintf(
		"SELECT s.k, count(*) AS n FROM s [SIZE %d SLIDE %d], r [SIZE %d SLIDE %d] WHERE s.k = r.k GROUP BY s.k HAVING count(*) > 0",
		size, slide, size, slide)
	bare := fmt.Sprintf(
		"SELECT s.v, r.v FROM s [SIZE %d SLIDE %d], r [SIZE %d SLIDE %d] WHERE s.k = r.k",
		size, slide, size, slide)
	switch i {
	case 10, 11:
		return grouped, &datacell.RegisterOptions{Mode: datacell.ModeIncremental}
	case 12:
		return bare, &datacell.RegisterOptions{Mode: datacell.ModeIncremental}
	case 13:
		return bare, &datacell.RegisterOptions{Mode: datacell.ModeReeval}
	case 14:
		return memberSQL(2, size, slide), &datacell.RegisterOptions{Mode: datacell.ModeIncremental, Isolated: true}
	case 15:
		return bare, &datacell.RegisterOptions{Mode: datacell.ModeIncremental, Isolated: true}
	default:
		return memberSQL(i, size, slide), &datacell.RegisterOptions{Mode: memberMode(i)}
	}
}

// feedMixed interleaves the two streams' chunks with a drain barrier after
// every append: the left/right window sealing order — and with it the join
// members' pairing and emission sequence — is then a function of the data
// alone, making the single-process and fabric runs comparable byte-for-byte.
func feedMixed(t *testing.T, eng *datacell.Engine, drain func(), sChunks, rChunks []*bat.Chunk) {
	t.Helper()
	n := len(sChunks)
	if len(rChunks) > n {
		n = len(rChunks)
	}
	for i := 0; i < n; i++ {
		if i < len(sChunks) {
			if err := eng.AppendChunk("s", sChunks[i]); err != nil {
				t.Fatal(err)
			}
			drain()
		}
		if i < len(rChunks) {
			if err := eng.AppendChunk("r", rChunks[i]); err != nil {
				t.Fatal(err)
			}
			drain()
		}
	}
	drain()
}

// runMixedLocal executes the mixed workload on a single-process engine.
// The ddl script must create streams s and r.
func runMixedLocal(t *testing.T, ddl string, members, size, slide int, sChunks, rChunks []*bat.Chunk) [][]string {
	t.Helper()
	eng := datacell.New(&datacell.Options{Workers: 1})
	defer eng.Close()
	if _, err := eng.ExecScript(ddl); err != nil {
		t.Fatal(err)
	}
	qs := make([]*datacell.Query, members)
	for i := range qs {
		sql, opts := mixedMember(i, size, slide)
		q, err := eng.Register(fmt.Sprintf("q%02d", i), sql, opts)
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
		qs[i] = q
	}
	feedMixed(t, eng, eng.Drain, sChunks, rChunks)
	out := make([][]string, members)
	for i, q := range qs {
		out[i] = collectRendered(q)
	}
	return out
}

// runMixedFabric executes the mixed workload on a coordinator + nWorkers
// cluster with both s and r exported to the fabric.
func runMixedFabric(t *testing.T, ddl string, nWorkers, members, size, slide int, sChunks, rChunks []*bat.Chunk, cutsFor func(i int) []int) [][]string {
	t.Helper()
	fc := startFabric(t, ddl, nWorkers, cutsFor)
	defer fc.close()
	if err := fc.coord.ExportStream("r"); err != nil {
		t.Fatal(err)
	}
	qs := make([]*datacell.Query, members)
	for i := range qs {
		sql, opts := mixedMember(i, size, slide)
		q, err := fc.eng.Register(fmt.Sprintf("q%02d", i), sql, opts)
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
		if !q.Grouped() {
			t.Fatalf("member %d did not route through a group", i)
		}
		if opts.Isolated != strings.Contains(q.GroupKey(), "!iso#") {
			t.Fatalf("member %d: isolated=%v but key=%q", i, opts.Isolated, q.GroupKey())
		}
		qs[i] = q
	}
	feedMixed(t, fc.eng, fc.coord.Drain, sChunks, rChunks)
	out := make([][]string, members)
	for i, q := range qs {
		out[i] = collectRendered(q)
	}
	return out
}

// TestFabricEquivalence is the acceptance invariant: a 16-query grouped
// workload — single-stream members, a shared join group, a re-evaluation
// join, and isolated scan and join members — on coordinator + 2 workers
// over loopback produces byte-identical results to a single-process run.
// The matrix covers tumbling and sliding windows, hash and round-robin
// routing, and a run whose worker connections are repeatedly cut mid-frame
// and resumed.
func TestFabricEquivalence(t *testing.T) {
	sChunks := testChunks(400, 17, 5)
	rChunks := testChunks(400, 13, 5)
	const members = 16
	ddls := []string{
		"CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k;\n" +
			"CREATE STREAM r (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k",
		"CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4;\n" +
			"CREATE STREAM r (ts TIMESTAMP, k INT, v FLOAT) SHARD 2",
	}
	windows := []struct{ size, slide int }{
		{64, 16}, // sliding
		{32, 32}, // tumbling
	}
	for _, ddl := range ddls {
		for _, w := range windows {
			label := fmt.Sprintf("ddl=%q size=%d slide=%d", ddl, w.size, w.slide)
			local := runMixedLocal(t, ddl, members, w.size, w.slide, sChunks, rChunks)
			fab := runMixedFabric(t, ddl, 2, members, w.size, w.slide, sChunks, rChunks, nil)
			assertSameResults(t, label, fab, local)
		}
	}

	// Reconnect run: worker 1's link is cut mid-frame on its first three
	// connections; the session resume must deliver the exact same windows.
	w := windows[0]
	local := runMixedLocal(t, ddls[0], members, w.size, w.slide, sChunks, rChunks)
	cut := runMixedFabric(t, ddls[0], 2, members, w.size, w.slide, sChunks, rChunks, func(i int) []int {
		if i == 1 {
			return []int{2000, 900, 5000}
		}
		return nil
	})
	assertSameResults(t, "reconnect", cut, local)
}

// TestFabricTimeWindows drives a time-windowed grouped workload through
// the fabric, forcing idle buckets shut with AdvanceTime, and pins
// equivalence with a single-process run.
func TestFabricTimeWindows(t *testing.T) {
	const sec = int64(1_000_000)
	sql := "SELECT k, count(*) AS n FROM s [RANGE 2 SECONDS SLIDE 1 SECOND ON ts] GROUP BY k"
	rows := [][]any{}
	for i, ts := range []int64{100, 200, 300, sec + 100, sec + 200, 2*sec + 50, 3*sec + 100} {
		rows = append(rows, []any{ts, int64(i % 3), 1.0})
	}
	feed := func(eng *datacell.Engine, drain func()) {
		for _, r := range rows {
			if err := eng.Append("s", r); err != nil {
				t.Fatal(err)
			}
		}
		drain()
		eng.AdvanceTime(6 * sec)
		drain()
	}

	engL := datacell.New(&datacell.Options{Workers: 1})
	if _, err := engL.Exec("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k"); err != nil {
		t.Fatal(err)
	}
	qL, err := engL.Register("q", sql, nil)
	if err != nil {
		t.Fatal(err)
	}
	feed(engL, engL.Drain)
	want := collectRendered(qL)
	engL.Close()
	if len(want) == 0 {
		t.Fatal("local time-window run produced nothing")
	}

	fc := startFabric(t, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k", 2, nil)
	defer fc.close()
	qF, err := fc.eng.Register("q", sql, nil)
	if err != nil {
		t.Fatal(err)
	}
	feed(fc.eng, fc.coord.Drain)
	got := collectRendered(qF)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("time windows diverge:\nfabric %v\nlocal  %v", got, want)
	}
}

// TestFabricRegistrationRules pins the fabric's consumption contract:
// exported streams serve any group-routable query — shared or isolated,
// scan or join — and refuse only shapes no group can host (non-windowed
// scans); export is refused once local consumers exist.
func TestFabricRegistrationRules(t *testing.T) {
	fc := startFabric(t, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k", 2, nil)
	defer fc.close()
	eng := fc.eng

	iso, err := eng.Register("iso", "SELECT count(*) AS n FROM s [SIZE 8 SLIDE 8]",
		&datacell.RegisterOptions{Isolated: true})
	if err != nil {
		t.Fatalf("isolated query over an exported stream: %v", err)
	}
	if !iso.Grouped() || !strings.Contains(iso.GroupKey(), "!iso#") {
		t.Fatalf("isolated query must route through a private group, key=%q", iso.GroupKey())
	}
	if _, err := eng.Exec("CREATE STREAM r (ts TIMESTAMP, k INT, v FLOAT)"); err != nil {
		t.Fatal(err)
	}
	if err := fc.coord.ExportStream("r"); err != nil {
		t.Fatal(err)
	}
	j, err := eng.Register("j",
		"SELECT s.v, r.v FROM s [SIZE 8 SLIDE 8], r [SIZE 8 SLIDE 8] WHERE s.k = r.k", nil)
	if err != nil {
		t.Fatalf("stream join over exported streams: %v", err)
	}
	if !j.Grouped() {
		t.Fatal("join over exported streams did not route through a join group")
	}
	q, err := eng.Register("ok", "SELECT count(*) AS n FROM s [SIZE 8 SLIDE 8]", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Grouped() {
		t.Fatal("shared query over an exported stream did not group")
	}
	// Non-windowed scans need local basket cursors, which an exported
	// stream cannot feed — the one shape the fabric still refuses.
	if _, err := eng.Register("raw", "SELECT v FROM s", nil); err == nil {
		t.Fatal("non-windowed scan over an exported stream registered")
	}
	if err := fc.coord.ExportStream("r"); err == nil {
		t.Fatal("double export accepted")
	}
	// \fabric introspection carries the layout, including the join's
	// per-side slicing specs.
	desc := eng.FabricStatus()
	for _, want := range []string{"workers=2", "stream s", "ranges=[w0:0-2 w1:2-4]", "spec", "#L", "#R"} {
		if !strings.Contains(desc, want) {
			t.Fatalf("FabricStatus missing %q:\n%s", want, desc)
		}
	}
}

// TestFabricGroupTeardown: dropping the last member retires the spec on
// the workers and a re-registered group starts a fresh spec.
func TestFabricGroupTeardown(t *testing.T) {
	fc := startFabric(t, "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 2 KEY k", 2, nil)
	defer fc.close()
	eng := fc.eng
	for cycle := 0; cycle < 3; cycle++ {
		q, err := eng.Register("q", "SELECT count(*) AS n FROM s [SIZE 4 SLIDE 4]", nil)
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		for i := 0; i < 8; i++ {
			if err := eng.Append("s", []any{int64(cycle*100 + i), int64(i), 1.0}); err != nil {
				t.Fatal(err)
			}
		}
		fc.coord.Drain()
		got := collectRendered(q)
		if len(got) != 2 {
			t.Fatalf("cycle %d: evals=%d, want 2", cycle, len(got))
		}
		q.Stop()
		if g := eng.Groups(); len(g) != 0 {
			t.Fatalf("cycle %d: groups leaked: %+v", cycle, g)
		}
	}
}

// TestFabricLateWorkers is the regression test for the restart-detection
// heuristic: queries registered and data appended BEFORE any worker ever
// dials must be buffered and replayed in full when the workers finally
// connect — a first connect with history in the outbox is not a restart,
// and results stay byte-identical to the local run. (The broken heuristic
// reset the session on the late first Hello, silently dropping the
// buffered appends and wedging the drain barrier.)
func TestFabricLateWorkers(t *testing.T) {
	const members = 4
	const size, slide = 20, 10
	chunks := testChunks(300, 20, 4)
	ddl := "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k"
	local := runLocal(t, ddl, members, size, slide, chunks)

	eng := datacell.New(&datacell.Options{Workers: 1})
	coord, err := fabric.NewCoordinator(eng, fabric.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	fc := &fabricCluster{eng: eng, coord: coord}
	defer fc.close()
	if _, err := eng.Exec(ddl); err != nil {
		t.Fatal(err)
	}
	if err := coord.ExportStream("s"); err != nil {
		t.Fatal(err)
	}
	qs := make([]*datacell.Query, members)
	for i := range qs {
		q, err := eng.Register(fmt.Sprintf("q%02d", i), memberSQL(i, size, slide),
			&datacell.RegisterOptions{Mode: memberMode(i)})
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = q
	}
	// Everything flows before a single worker exists.
	for _, c := range chunks {
		if err := eng.AppendChunk("s", c); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		fc.workers = append(fc.workers, fabric.NewWorker(fabric.WorkerOptions{
			Coordinator: coord.Addr(), Index: i,
		}))
	}
	fc.coord.Drain()
	got := make([][]string, members)
	for i, q := range qs {
		got[i] = collectRendered(q)
	}
	assertSameResults(t, "late-workers", got, local)
}

// TestFabricWorkerRestart pins the node-loss recovery contract: a worker
// that dies and comes back empty (fresh session cursors, no snapshot)
// replays the coordinator's retained frame history and regenerates its
// state exactly — EVERY window, including those spanning the outage,
// stays byte-identical to the local run. (Before the replay log this test
// pinned a weaker, lossy contract: windows open across the kill sealed
// partial. That degradation no longer exists.)
func TestFabricWorkerRestart(t *testing.T) {
	const members = 4
	const size, slide = 20, 10
	chunks := testChunks(600, 20, 4)
	ddl := "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k"
	local := runLocal(t, ddl, members, size, slide, chunks)

	fc := startFabric(t, ddl, 2, nil)
	defer fc.close()
	qs := make([]*datacell.Query, members)
	for i := range qs {
		q, err := fc.eng.Register(fmt.Sprintf("q%02d", i), memberSQL(i, size, slide),
			&datacell.RegisterOptions{Mode: memberMode(i)})
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = q
	}
	third := len(chunks) / 3
	for _, c := range chunks[:third] {
		if err := fc.eng.AppendChunk("s", c); err != nil {
			t.Fatal(err)
		}
	}
	fc.coord.Drain()
	// Kill worker 1's process (state gone), feed a round while it is dead
	// (no Drain: the barrier would block on the missing worker), restart
	// it empty, then feed the rest.
	fc.workers[1].Close()
	for _, c := range chunks[third : 2*third] {
		if err := fc.eng.AppendChunk("s", c); err != nil {
			t.Fatal(err)
		}
	}
	fc.workers[1] = fabric.NewWorker(fabric.WorkerOptions{Coordinator: fc.coord.Addr(), Index: 1})
	for _, c := range chunks[2*third:] {
		if err := fc.eng.AppendChunk("s", c); err != nil {
			t.Fatal(err)
		}
	}
	fc.coord.Drain()

	got := make([][]string, members)
	for i, q := range qs {
		got[i] = collectRendered(q)
	}
	assertSameResults(t, "worker-restart", got, local)
}

// TestFabricSnapshotRestart is the snapshot half of the recovery
// contract: a worker checkpointing to disk dies mid-stream and restarts
// from its snapshot, replaying only the delta past its durable cursor —
// results stay byte-identical, and the coordinator's replay-log retention
// gauge shows the log GC'd down to the snapshot cursor.
func TestFabricSnapshotRestart(t *testing.T) {
	const members = 8
	const size, slide = 20, 10
	chunks := testChunks(600, 20, 4)
	ddl := "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k"
	local := runLocal(t, ddl, members, size, slide, chunks)

	snapDir := t.TempDir()
	eng := datacell.New(&datacell.Options{Workers: 1})
	coord, err := fabric.NewCoordinator(eng, fabric.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	fc := &fabricCluster{eng: eng, coord: coord}
	defer fc.close()
	if _, err := eng.Exec(ddl); err != nil {
		t.Fatal(err)
	}
	if err := coord.ExportStream("s"); err != nil {
		t.Fatal(err)
	}
	workerOpts := func(i int) fabric.WorkerOptions {
		return fabric.WorkerOptions{
			Coordinator:   coord.Addr(),
			Index:         i,
			SnapshotDir:   snapDir,
			SnapshotEvery: time.Hour, // checkpoints forced explicitly below
		}
	}
	for i := 0; i < 2; i++ {
		fc.workers = append(fc.workers, fabric.NewWorker(workerOpts(i)))
	}
	qs := make([]*datacell.Query, members)
	for i := range qs {
		q, err := eng.Register(fmt.Sprintf("q%02d", i), memberSQL(i, size, slide),
			&datacell.RegisterOptions{Mode: memberMode(i)})
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = q
	}
	third := len(chunks) / 3
	for _, c := range chunks[:third] {
		if err := eng.AppendChunk("s", c); err != nil {
			t.Fatal(err)
		}
	}
	coord.Drain()
	// Checkpoint worker 1 mid-stream (open epochs in flight), then kill it
	// WITHOUT the close-time checkpoint a graceful shutdown would take:
	// everything past the snapshot must come from replay, not from a
	// fresher snapshot.
	if err := fc.workers[1].Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fc.workers[1].Kill()
	for _, c := range chunks[third : 2*third] {
		if err := eng.AppendChunk("s", c); err != nil {
			t.Fatal(err)
		}
	}
	fc.workers[1] = fabric.NewWorker(workerOpts(1))
	for _, c := range chunks[2*third:] {
		if err := eng.AppendChunk("s", c); err != nil {
			t.Fatal(err)
		}
	}
	// Second cycle: checkpoint + kill + restart again, to prove the
	// snapshot→replay→snapshot loop is closed, then finish.
	coord.Drain()
	if err := fc.workers[1].Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fc.workers[1].Kill()
	fc.workers[1] = fabric.NewWorker(workerOpts(1))
	coord.Drain()

	got := make([][]string, members)
	for i, q := range qs {
		got[i] = collectRendered(q)
	}
	assertSameResults(t, "snapshot-restart", got, local)

	// Retention gauge: the restarted worker's Hello carried its snapshot
	// cursor, so the coordinator's replay log for it must be GC'd (a
	// nonzero snap_cursor) — a worker that never snapshots pins cursor 0.
	desc := eng.FabricStatus()
	if !strings.Contains(desc, "snap_cursor=") {
		t.Fatalf("FabricStatus missing retention gauge:\n%s", desc)
	}
	for _, line := range strings.Split(desc, "\n") {
		if strings.Contains(line, "worker 1 ") && strings.Contains(line, "snap_cursor=0 ") {
			t.Fatalf("worker 1 snapshot cursor never advanced at the coordinator:\n%s", desc)
		}
	}
}

// TestCheckpointMonotonic pins the checkpoint serialization contract:
// concurrent Checkpoint calls (the snapLoop tick racing Close's final
// checkpoint) must never let an older in-flight capture rename over a
// newer snapshot — the on-disk cursor only moves forward — and a
// checkpoint with nothing newly applied skips the write instead of
// rewriting the file. A backwards cursor would present a Hello below the
// coordinator's pruned retention floor and desync the worker forever.
func TestCheckpointMonotonic(t *testing.T) {
	chunks := testChunks(600, 20, 4)
	ddl := "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k"
	snapDir := t.TempDir()
	eng := datacell.New(&datacell.Options{Workers: 1})
	coord, err := fabric.NewCoordinator(eng, fabric.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	fc := &fabricCluster{eng: eng, coord: coord}
	defer fc.close()
	if _, err := eng.Exec(ddl); err != nil {
		t.Fatal(err)
	}
	if err := coord.ExportStream("s"); err != nil {
		t.Fatal(err)
	}
	w := fabric.NewWorker(fabric.WorkerOptions{
		Coordinator: coord.Addr(), Index: 0,
		SnapshotDir: snapDir, SnapshotEvery: time.Hour,
	})
	fc.workers = append(fc.workers, w)

	// Checkpoint storm while appends flow, with a sampler asserting the
	// durable cursor never regresses (Load races Save through the atomic
	// rename, so every observation is a consistent file).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := w.Checkpoint(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap, err := snapshot.Load(snapDir, 0)
			if err != nil {
				t.Errorf("torn or corrupt snapshot observed: %v", err)
				return
			}
			if snap == nil {
				continue
			}
			if snap.RxSeq < last {
				t.Errorf("on-disk snapshot cursor moved backwards: %d -> %d", last, snap.RxSeq)
				return
			}
			last = snap.RxSeq
		}
	}()
	for _, c := range chunks {
		if err := eng.AppendChunk("s", c); err != nil {
			t.Fatal(err)
		}
	}
	coord.Drain()
	close(stop)
	wg.Wait()

	// Quiesced: land the final cursor, then verify an idle Checkpoint
	// (nothing applied since) leaves the file untouched.
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap, err := snapshot.Load(snapDir, 0)
	if err != nil || snap == nil {
		t.Fatalf("no snapshot after checkpoint: %v", err)
	}
	if snap.RxSeq == 0 {
		t.Fatal("snapshot cursor never advanced")
	}
	before, err := os.Stat(snapshot.FileName(snapDir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(snapshot.FileName(snapDir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(before.ModTime()) {
		t.Fatal("idle Checkpoint rewrote the snapshot file")
	}
}

// TestFabricReassign pins elastic shard handoff: moving live shards
// between workers mid-stream — state shipped via snapshot encoding,
// appends queued through the move, watermarks rebroadcast — changes
// nothing about the output.
func TestFabricReassign(t *testing.T) {
	const members = 8
	const size, slide = 20, 10
	chunks := testChunks(600, 20, 4)
	ddl := "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k"
	local := runLocal(t, ddl, members, size, slide, chunks)

	fc := startFabric(t, ddl, 2, nil)
	defer fc.close()
	qs := make([]*datacell.Query, members)
	for i := range qs {
		q, err := fc.eng.Register(fmt.Sprintf("q%02d", i), memberSQL(i, size, slide),
			&datacell.RegisterOptions{Mode: memberMode(i)})
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = q
	}
	third := len(chunks) / 3
	for _, c := range chunks[:third] {
		if err := fc.eng.AppendChunk("s", c); err != nil {
			t.Fatal(err)
		}
	}
	// Move shard 1 (owned by worker 0) to worker 1 with open epochs in
	// flight, feed, then move it back plus shard 3 the other way.
	if err := fc.coord.Reassign("s", 1, 1); err != nil {
		t.Fatal(err)
	}
	for _, c := range chunks[third : 2*third] {
		if err := fc.eng.AppendChunk("s", c); err != nil {
			t.Fatal(err)
		}
	}
	if err := fc.coord.Reassign("s", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := fc.coord.Reassign("s", 3, 0); err != nil {
		t.Fatal(err)
	}
	for _, c := range chunks[2*third:] {
		if err := fc.eng.AppendChunk("s", c); err != nil {
			t.Fatal(err)
		}
	}
	fc.coord.Drain()

	got := make([][]string, members)
	for i, q := range qs {
		got[i] = collectRendered(q)
	}
	assertSameResults(t, "reassign", got, local)

	// The layout pane reflects the moves: shard 3 now belongs to w0.
	desc := fc.eng.FabricStatus()
	if !strings.Contains(desc, "w0:3-4") {
		t.Fatalf("FabricStatus does not show reassigned shard 3 on w0:\n%s", desc)
	}
	// Reassign validates its arguments.
	if err := fc.coord.Reassign("s", 99, 0); err == nil {
		t.Fatal("Reassign accepted a bogus shard")
	}
	if err := fc.coord.Reassign("s", 0, 99); err == nil {
		t.Fatal("Reassign accepted a bogus worker")
	}
	if err := fc.coord.Reassign("nope", 0, 0); err == nil {
		t.Fatal("Reassign accepted an unexported stream")
	}
}

// TestFabricFaultSchedules is the table-driven recovery property test:
// for a spread of seeded fault schedules — connections cut mid-frame,
// frames delayed, session frames duplicated, at scheduled frame ordinals —
// the fabric's output is byte-identical to the fault-free local run.
// The workload is the mixed matrix (single-stream, shared join, reeval
// join, isolated members), so the faults land on join-fragment and
// join-spec frames mid-epoch as well as plain scan traffic. Worker 1
// suffers faults on BOTH planes: its control dial to the coordinator and
// the coordinator's direct receptor dial back to it each run through
// their own fault proxy, so cuts land mid-batched-frame on the data plane
// and the pipelined-ack replay path is exercised too. Failures reproduce
// from the seed.
func TestFabricFaultSchedules(t *testing.T) {
	const members = 16
	const size, slide = 20, 10
	sChunks := testChunks(300, 23, 4)
	rChunks := testChunks(300, 19, 4)
	ddl := "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k;\n" +
		"CREATE STREAM r (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k"
	local := runMixedLocal(t, ddl, members, size, slide, sChunks, rChunks)

	for _, seed := range []int64{1, 7, 42, 1234} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			ctlSchedule := fabrictest.RandomSchedule(rng, 3, 24)
			dataSchedule := fabrictest.RandomSchedule(rng, 3, 16)
			// The receptor proxy can only be built once worker 1 exists and
			// has bound its listener, but the coordinator needs its dialer
			// at construction — so data dials block on dataReady until the
			// proxy is wired, and even the first dial runs through it.
			var dataMu sync.Mutex
			var w1data string
			var dataProxy *fabrictest.FaultProxy
			dataReady := make(chan struct{})
			eng := datacell.New(&datacell.Options{Workers: 1})
			coord, err := fabric.NewCoordinator(eng, fabric.Options{
				Workers: 2,
				// Small batches: many flush boundaries for faults to land on.
				FlushBytes: 4 << 10,
				DataDialer: func(addr string, timeout time.Duration) (net.Conn, error) {
					select {
					case <-dataReady:
					case <-time.After(timeout):
						return nil, fmt.Errorf("receptor proxy not wired yet")
					}
					dataMu.Lock()
					if addr == w1data {
						addr = dataProxy.Addr()
					}
					dataMu.Unlock()
					return net.DialTimeout("tcp", addr, timeout)
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			fc := &fabricCluster{eng: eng, coord: coord}
			defer fc.close()
			if _, err := eng.ExecScript(ddl); err != nil {
				t.Fatal(err)
			}
			if err := coord.ExportStream("s"); err != nil {
				t.Fatal(err)
			}
			if err := coord.ExportStream("r"); err != nil {
				t.Fatal(err)
			}
			proxy, err := fabrictest.NewFaultProxy(coord.Addr(), ctlSchedule)
			if err != nil {
				t.Fatal(err)
			}
			proxy.DupOK = fabric.DupSafe
			fc.proxies = append(fc.proxies, proxy)
			// Worker 1 suffers the schedule; worker 0 connects clean.
			fc.workers = append(fc.workers,
				fabric.NewWorker(fabric.WorkerOptions{Coordinator: coord.Addr(), Index: 0}),
				fabric.NewWorker(fabric.WorkerOptions{Coordinator: proxy.Addr(), Index: 1}))
			if fc.workers[1].DataAddr() == "" {
				t.Fatal("worker 1 bound no receptor listener")
			}
			dp, err := fabrictest.NewFaultProxy(fc.workers[1].DataAddr(), dataSchedule)
			if err != nil {
				t.Fatal(err)
			}
			dp.DupOK = fabric.DupSafe
			fc.proxies = append(fc.proxies, dp)
			dataMu.Lock()
			w1data, dataProxy = fc.workers[1].DataAddr(), dp
			dataMu.Unlock()
			close(dataReady)
			qs := make([]*datacell.Query, members)
			for i := range qs {
				sql, opts := mixedMember(i, size, slide)
				q, err := eng.Register(fmt.Sprintf("q%02d", i), sql, opts)
				if err != nil {
					t.Fatal(err)
				}
				qs[i] = q
			}
			// feedMixed drains after every append, so faults land across
			// the whole run and the join members' sealing order matches
			// the local baseline.
			feedMixed(t, eng, coord.Drain, sChunks, rChunks)
			got := make([][]string, members)
			for i, q := range qs {
				got[i] = collectRendered(q)
			}
			assertSameResults(t, fmt.Sprintf("faults seed=%d ctl=%v data=%v", seed, ctlSchedule, dataSchedule), got, local)
			if proxy.Triggered() == 0 {
				t.Fatalf("control schedule %v never fired; the run proved nothing", ctlSchedule)
			}
			if dataProxy.Triggered() == 0 {
				t.Fatalf("receptor schedule %v never fired; the run proved nothing", dataSchedule)
			}
		})
	}
}

// TestFabricReconnectResume drives traffic in rounds with the worker link
// cut mid-frame between rounds and pins: results identical to local, at
// least one cut actually happened, and the coordinator observed the
// reconnects.
func TestFabricReconnectResume(t *testing.T) {
	const members = 4
	const size, slide = 20, 10
	chunks := testChunks(600, 23, 4)
	ddl := "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k"
	local := runLocal(t, ddl, members, size, slide, chunks)

	fc := startFabric(t, ddl, 2, nil)
	defer fc.close()
	// Route worker 1 through a cutting proxy created after startFabric so
	// we keep a handle; replace the auto-started worker.
	fc.workers[1].Close()
	proxy, err := fabrictest.NewCutProxy(fc.coord.Addr(), []int{1500, 700, 3000, 1100})
	if err != nil {
		t.Fatal(err)
	}
	fc.proxies = append(fc.proxies, proxy)
	fc.workers[1] = fabric.NewWorker(fabric.WorkerOptions{Coordinator: proxy.Addr(), Index: 1})

	qs := make([]*datacell.Query, members)
	for i := range qs {
		q, err := fc.eng.Register(fmt.Sprintf("q%02d", i), memberSQL(i, size, slide),
			&datacell.RegisterOptions{Mode: memberMode(i)})
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = q
	}
	// Feed in rounds with a drain barrier between them: every barrier
	// forces the cut link to reconnect and catch up before more data flows.
	per := (len(chunks) + 3) / 4
	for start := 0; start < len(chunks); start += per {
		end := start + per
		if end > len(chunks) {
			end = len(chunks)
		}
		for _, c := range chunks[start:end] {
			if err := fc.eng.AppendChunk("s", c); err != nil {
				t.Fatal(err)
			}
		}
		fc.coord.Drain()
	}
	got := make([][]string, members)
	for i, q := range qs {
		got[i] = collectRendered(q)
	}
	assertSameResults(t, "reconnect-rounds", got, local)
	if proxy.CutsUsed() == 0 {
		t.Fatal("proxy never cut the connection; the test exercised nothing")
	}
	if !strings.Contains(fc.eng.FabricStatus(), "reconnects=") {
		t.Fatalf("FabricStatus missing reconnect counter:\n%s", fc.eng.FabricStatus())
	}
}
