package fabric

import (
	"fmt"
	"math"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/emitter"
	"datacell/internal/plan"
	"datacell/internal/window"
)

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// Coordinator is the coordinator's fabric address.
	Coordinator string
	// Index is the worker's slot in the coordinator's partition layout
	// (0 ≤ Index < coordinator Workers).
	Index int
	// ID is a self-reported label for introspection (default "w<Index>").
	ID string
}

// Worker is the fabric's process-side half: it runs the sharded front end
// — per-shard baskets, per-(shard, spec) ShardSlicers, watermark-driven
// flushes — for its assigned shard range of every exported stream, and
// ships sealed epoch fragments to the coordinator. A worker keeps dialing
// (and resuming) its coordinator until Close is called or the coordinator
// says Bye; slicer state lives in the process, so reconnects lose nothing.
type Worker struct {
	opts WorkerOptions
	sess *session
	wg   sync.WaitGroup

	mu      sync.Mutex
	streams map[string]*workerStream
	specs   map[int64]*workerSpec
	// frameErrs counts session frames that decoded badly or failed to
	// apply. Such frames are still acknowledged — redelivering them cannot
	// help (the resume protocol retransmits bytes, not fixes), and
	// dropping the connection would redial into the same frame forever —
	// but every one is logged and counted so version skew or corruption
	// is visible instead of silently eating rows.
	frameErrs int64
	closed    bool
	done      chan struct{} // closed on Bye or Close
	doneMu    sync.Once
}

// workerStream is one exported stream's local half: the assigned shard
// range with one basket per shard.
type workerStream struct {
	name    string
	schema  bat.Schema
	shards  int // total across all workers
	lo, hi  int // this worker's range
	locals  []*workerShard
	settled int64 // sealing sequence watermark from the coordinator
	// specList is the stream's specs in id order, maintained on spec
	// add/drop so the per-watermark firing pass (once per routed append)
	// neither allocates nor sorts.
	specList []*workerSpec
}

// workerShard is one shard's basket plus the per-spec consumer cursors
// into it — the worker-side analogue of the group front end's groupShard.
type workerShard struct {
	global int
	bk     *basket.Basket
	cids   map[int64]int // specID → consumer id
}

// workerSpec is one query group's slicing state over a stream: a
// ShardSlicer per local shard, the event-time high mark, and the last
// shipped watermark per shard (to suppress no-op frames).
type workerSpec struct {
	id     int64
	st     *workerStream
	win    *plan.Window
	maxTs  int64
	sls    []*window.ShardSlicer
	sentWm []int64
}

// NewWorker starts a worker: it dials the coordinator in the background
// and serves its shard ranges until Close (or the coordinator's Bye).
func NewWorker(opts WorkerOptions) *Worker {
	if opts.ID == "" {
		opts.ID = fmt.Sprintf("w%d", opts.Index)
	}
	w := &Worker{
		opts:    opts,
		sess:    newSession(),
		streams: make(map[string]*workerStream),
		specs:   make(map[int64]*workerSpec),
		done:    make(chan struct{}),
	}
	w.wg.Add(1)
	go w.dialLoop()
	return w
}

// Done is closed when the worker retires (coordinator Bye or Close).
func (w *Worker) Done() <-chan struct{} { return w.done }

// Close stops the worker.
func (w *Worker) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()
	w.retire()
	w.sess.close()
	w.wg.Wait()
}

// noteErr records one undeliverable frame (callers hold w.mu).
func (w *Worker) noteErr(what string, err error) {
	w.frameErrs++
	fmt.Fprintf(os.Stderr, "fabric worker %s: dropped %s frame: %v\n", w.opts.ID, what, err)
}

func (w *Worker) retire() {
	w.doneMu.Do(func() { close(w.done) })
}

func (w *Worker) isClosed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closed
}

// dialLoop keeps one connection to the coordinator alive, with backoff,
// resuming the session on every reconnect.
func (w *Worker) dialLoop() {
	defer w.wg.Done()
	backoff := 10 * time.Millisecond
	for !w.isClosed() {
		conn, err := net.DialTimeout("tcp", w.opts.Coordinator, 2*time.Second)
		if err != nil {
			select {
			case <-w.done:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > 500*time.Millisecond {
				backoff = 500 * time.Millisecond
			}
			continue
		}
		backoff = 10 * time.Millisecond
		if w.serve(conn) {
			return // Bye or Close
		}
	}
}

// serve performs the handshake and runs the frame loop on one connection.
// It reports whether the worker should retire (rather than redial).
func (w *Worker) serve(conn net.Conn) bool {
	// Hello carries our receive cursor; the coordinator prunes its outbox
	// and replays the rest. Written directly: the session is only attached
	// once the Welcome tells us the peer's cursor.
	hello := emitter.Frame{Type: frameHello, Seq: w.sess.cursor(),
		Payload: marshalHello(helloMsg{Version: protoVersion, Index: w.opts.Index, ID: w.opts.ID})}
	if err := emitter.WriteFrame(conn, hello); err != nil {
		_ = conn.Close()
		return w.isClosed()
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	// Tolerate stray control frames ahead of the handshake reply (a stale
	// ack flushed from the coordinator's previous-connection queue must
	// not cost a redial cycle).
	var f emitter.Frame
	var err error
	for {
		f, err = emitter.ReadFrame(conn)
		if err == nil && f.Type == frameAck {
			w.sess.onAck(f.Seq)
			continue
		}
		break
	}
	if err != nil || f.Type != frameWelcome {
		_ = conn.Close()
		return w.isClosed()
	}
	_ = conn.SetReadDeadline(time.Time{})
	w.sess.attach(conn, f.Seq, nil)

	for {
		f, err := emitter.ReadFrame(conn)
		if err != nil {
			w.sess.detach(conn)
			return w.isClosed()
		}
		switch f.Type {
		case frameAck:
			w.sess.onAck(f.Seq)
			continue
		case frameWelcome:
			continue // duplicate handshake reply from a racy reattach
		}
		fresh, gap := w.sess.accept(f.Seq)
		if gap {
			w.sess.detach(conn)
			return w.isClosed()
		}
		if !fresh {
			continue
		}
		if bye := w.handle(f); bye {
			w.retire()
			w.sess.detach(conn)
			return true
		}
		w.sess.sendCtl(emitter.Frame{Type: frameAck, Seq: w.sess.cursor()})
	}
}

// handle applies one session frame. It reports whether the coordinator
// said Bye.
func (w *Worker) handle(f emitter.Frame) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	switch f.Type {
	case frameStream:
		m, err := unmarshalStream(f.Payload)
		if err != nil {
			w.noteErr("stream", err)
			return false
		}
		st := &workerStream{name: m.Name, schema: m.Schema, shards: m.Shards, lo: m.Lo, hi: m.Hi}
		for sh := m.Lo; sh < m.Hi; sh++ {
			st.locals = append(st.locals, &workerShard{
				global: sh,
				bk:     basket.New(fmt.Sprintf("%s/%d@%s", m.Name, sh, w.opts.ID), m.Schema),
				cids:   make(map[int64]int),
			})
		}
		w.streams[m.Name] = st

	case frameSpec:
		m, err := unmarshalSpec(f.Payload)
		if err != nil {
			w.noteErr("spec", err)
			return false
		}
		st := w.streams[m.Stream]
		if st == nil {
			w.noteErr("spec", fmt.Errorf("unknown stream %q", m.Stream))
			return false
		}
		sp := &workerSpec{id: m.ID, st: st, win: m.specWindow(), maxTs: math.MinInt64}
		for _, ws := range st.locals {
			ws.cids[sp.id] = ws.bk.Register()
			sl := window.NewShardSlicer(sp.win, st.schema)
			sp.sls = append(sp.sls, sl)
			sp.sentWm = append(sp.sentWm, sl.Watermark())
		}
		w.specs[sp.id] = sp
		pos := len(st.specList)
		for pos > 0 && st.specList[pos-1].id > sp.id {
			pos--
		}
		st.specList = append(st.specList, nil)
		copy(st.specList[pos+1:], st.specList[pos:])
		st.specList[pos] = sp

	case frameSpecDrop:
		vals, err := unmarshalInt64s(f.Payload, 1)
		if err != nil {
			w.noteErr("spec-drop", err)
			return false
		}
		if sp := w.specs[vals[0]]; sp != nil {
			for _, ws := range sp.st.locals {
				if cid, ok := ws.cids[sp.id]; ok {
					ws.bk.Unregister(cid)
					delete(ws.cids, sp.id)
				}
			}
			delete(w.specs, sp.id)
			for i, x := range sp.st.specList {
				if x == sp {
					sp.st.specList = append(sp.st.specList[:i], sp.st.specList[i+1:]...)
					break
				}
			}
		}

	case frameAppend:
		m, err := unmarshalAppend(f.Payload)
		if err != nil {
			w.noteErr("append", err)
			return false
		}
		st := w.streams[m.Stream]
		if st == nil || m.Shard < st.lo || m.Shard >= st.hi {
			w.noteErr("append", fmt.Errorf("stream %q shard %d not assigned here", m.Stream, m.Shard))
			return false
		}
		if err := st.locals[m.Shard-st.lo].bk.AppendSeqs(m.Chunk, m.Arrival, m.Seqs); err != nil {
			w.noteErr("append", err)
			return false
		}

	case frameWatermark:
		m, err := unmarshalWatermark(f.Payload)
		if err != nil {
			w.noteErr("watermark", err)
			return false
		}
		st := w.streams[m.Stream]
		if st == nil {
			w.noteErr("watermark", fmt.Errorf("unknown stream %q", m.Stream))
			return false
		}
		if m.Settled > st.settled {
			st.settled = m.Settled
		}
		for _, sm := range m.Specs {
			if sp := w.specs[sm.ID]; sp != nil && sm.MaxTs > sp.maxTs {
				sp.maxTs = sm.MaxTs
			}
		}
		// One firing pass: every spec of this stream drains its cursors,
		// slices, and flushes what the advanced watermarks seal.
		for _, sp := range st.specList {
			w.fireSpec(sp)
		}

	case frameAdvance:
		vals, err := unmarshalInt64s(f.Payload, 2)
		if err != nil {
			w.noteErr("advance", err)
			return false
		}
		if sp := w.specs[vals[0]]; sp != nil {
			if vals[1] > sp.maxTs {
				sp.maxTs = vals[1]
			}
			w.fireSpec(sp)
		}

	case framePing:
		if vals, err := unmarshalInt64s(f.Payload, 1); err == nil {
			// Queued after the fragments the firing above produced, so the
			// coordinator's barrier sees them applied first.
			w.sess.send(framePong, marshalInt64s(vals[0]))
		}

	case frameBye:
		return true
	}
	return false
}

// fireSpec is one firing of a spec across its local shards: drain each
// shard's cursor, slice, flush every epoch the current watermark seals,
// and ship fragments plus the advanced shard watermark. Shards with no
// new rows still ship their watermark advance — the coordinator's merger
// needs every shard's flush watermark to seal an epoch.
func (w *Worker) fireSpec(sp *workerSpec) {
	st := sp.st
	for li, ws := range st.locals {
		sl := sp.sls[li]
		cid, ok := ws.cids[sp.id]
		if !ok {
			continue
		}
		c, arrivals, seqs := ws.bk.PeekSeqs(cid, int(ws.bk.Available(cid)))
		if c != nil {
			ws.bk.Consume(cid, int64(c.Rows()))
			sl.Push(c, arrivals, seqs)
		}
		var frags []*window.Frag
		if sp.win.Tuples {
			frags = sl.Flush(st.settled / sp.win.Slide)
		} else if sp.maxTs != math.MinInt64 {
			frags = sl.Flush(sl.TimeGen(sp.maxTs))
		}
		wm := sl.Watermark()
		if len(frags) == 0 && wm <= sp.sentWm[li] {
			continue
		}
		sp.sentWm[li] = wm
		for _, fr := range frags {
			fr.Shard = ws.global
		}
		w.sess.send(frameFrag, marshalFragMsg(fragMsg{
			Spec: sp.id, Shard: ws.global, Wm: wm, Frags: frags,
		}))
	}
}

// Describe renders the worker state (cmd/dcworker's status line).
func (w *Worker) Describe() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "fabric worker %s index=%d coordinator=%s connected=%v streams=%d specs=%d frame_errs=%d",
		w.opts.ID, w.opts.Index, w.opts.Coordinator, w.sess.connected(),
		len(w.streams), len(w.specs), w.frameErrs)
	return b.String()
}
