package fabric

import (
	"bufio"
	"fmt"
	"math"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/emitter"
	"datacell/internal/fabric/snapshot"
	"datacell/internal/plan"
	"datacell/internal/window"
)

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// Coordinator is the coordinator's fabric address.
	Coordinator string
	// Index is the worker's slot in the coordinator's partition layout
	// (0 ≤ Index < coordinator Workers).
	Index int
	// ID is a self-reported label for introspection (default "w<Index>").
	ID string
	// DataListen is the receptor listener address — the port producers
	// dial to ship ingest batches straight to this worker, bypassing the
	// control session. Default "127.0.0.1:0" (enabled on an ephemeral
	// port); "none" disables the receptor plane, leaving all ingest on
	// the control session.
	DataListen string
	// SnapshotDir, when set, enables durable checkpoints: the worker
	// periodically writes its state to SnapshotDir/worker-<Index>.snap and
	// restores from it on startup, so a crashed worker resumes from its
	// last checkpoint plus the coordinator's replay of the delta. Unset,
	// the worker is recoverable only by a full replay from frame one
	// (lossless but linear in history, and the coordinator must retain
	// everything).
	SnapshotDir string
	// SnapshotEvery is the checkpoint interval (default 500ms). Only
	// meaningful with SnapshotDir.
	SnapshotEvery time.Duration
}

// Worker is the fabric's process-side half: it runs the sharded front end
// — per-shard baskets, per-(shard, spec) ShardSlicers, watermark-driven
// flushes — for its assigned shards of every exported stream, and ships
// sealed epoch fragments to the coordinator. A worker keeps dialing (and
// resuming) its coordinator until Close is called or the coordinator says
// Bye.
//
// Everything a worker computes is a deterministic function of the prefix
// of coordinator frames it has applied: handlers run under one mutex, in
// frame order, and every send happens inside a handler. That determinism
// is the recovery contract — a worker restored from a snapshot (or from
// nothing) that replays the same frames regenerates byte-identical state
// and byte-identical outgoing frames, which the coordinator deduplicates
// by sequence. See docs/RECOVERY.md.
type Worker struct {
	opts WorkerOptions
	sess *session
	wg   sync.WaitGroup

	// dataLn is the receptor listener (nil when disabled); dataAddr its
	// bound address, advertised in every Hello.
	dataLn   net.Listener
	dataAddr string

	// rxMu serializes frame application across the control and receptor
	// planes; pending buffers out-of-order frames until the sequence gap
	// fills (frames from the other plane). rxCond wakes a receptor reader
	// blocked on a full pending buffer. Lock order: rxMu → mu.
	rxMu    sync.Mutex
	rxCond  *sync.Cond
	pending map[uint64]emitter.Frame

	// dataMu guards the live receptor connections (closed on retire).
	dataMu     sync.Mutex
	dataConns  map[net.Conn]struct{}
	dataClosed bool
	dataFrames uint64 // frames ingested via the receptor plane

	// ackMu guards the coalesced-ack cursor: acks are pipelined — sent when
	// a reader drains its buffer or every ackEvery frames — never per frame.
	ackMu   sync.Mutex
	lastAck uint64

	// outBatch stages the handlers' output sub-frames; flushed as one batch
	// frame per applied input frame (see flushOutLocked). Guarded by mu.
	outBatch           []byte
	outBatchN          int
	batchesOut, subOut uint64

	// snapMu serializes whole checkpoints (capture + Save + lastSnap
	// update) against each other and against wipe. Without it the snapLoop
	// tick and Close's final checkpoint can interleave so that an older
	// in-flight capture renames over a newer snapshot whose cursor was
	// already snap-acked — and once the coordinator prunes its replay log
	// to the newer cursor, a restart from the older file presents a cursor
	// below the retention floor and can never resync. Acquired before mu.
	snapMu sync.Mutex

	mu      sync.Mutex
	streams map[string]*workerStream
	specs   map[int64]*workerSpec
	// applied is the highest coordinator frame applied to the state above.
	// It can lag sess.rxSeq by one mid-handle (accept runs first), which
	// is why snapshots capture applied, not the session cursor.
	applied uint64
	// lastSnap is the cursor of the last durable checkpoint — the Snap
	// field of the next Hello. lastSnapAt stamps when it landed (wall µs;
	// 0 before the first), the snapshot-age gauge on /metrics.
	lastSnap   uint64
	lastSnapAt int64
	// frameErrs counts session frames that decoded badly or failed to
	// apply. Such frames are still acknowledged — redelivering them cannot
	// help (the resume protocol retransmits bytes, not fixes), and
	// dropping the connection would redial into the same frame forever —
	// but every one is logged and counted so version skew or corruption
	// is visible instead of silently eating rows.
	frameErrs int64
	closed    bool
	done      chan struct{} // closed on Bye or Close
	doneMu    sync.Once
}

// workerStream is one exported stream's local half: the locally owned
// shards, keyed (and ordered) by global shard index — ownership is
// per-shard, not a contiguous range, because elastic handoff moves single
// shards between workers.
type workerStream struct {
	name    string
	schema  bat.Schema
	shards  int // total across all workers
	locals  map[int]*workerShard
	order   []int // sorted keys of locals: firing order must be deterministic
	settled int64 // sealing sequence watermark from the coordinator
	// specList is the stream's specs in id order, maintained on spec
	// add/drop so the per-watermark firing pass (once per routed append)
	// neither allocates nor sorts.
	specList []*workerSpec
}

// workerShard is one shard's basket plus the per-spec consumption state
// over it: consumer cursor, slicer, and last shipped watermark. The
// per-spec state lives on the shard (not the spec) so one shard's whole
// state can be checkpointed or shipped to another worker as a unit.
type workerShard struct {
	global int
	bk     *basket.Basket
	cids   map[int64]int // specID → consumer id
	sls    map[int64]*window.ShardSlicer
	sentWm map[int64]int64
}

// workerSpec is one query group's slicing spec over a stream.
type workerSpec struct {
	id    int64
	st    *workerStream
	win   *plan.Window
	maxTs int64
}

// NewWorker starts a worker: it restores its snapshot (if any), dials the
// coordinator in the background and serves its shards until Close (or the
// coordinator's Bye).
func NewWorker(opts WorkerOptions) *Worker {
	if opts.ID == "" {
		opts.ID = fmt.Sprintf("w%d", opts.Index)
	}
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = 500 * time.Millisecond
	}
	w := &Worker{
		opts:      opts,
		sess:      newSession(false),
		streams:   make(map[string]*workerStream),
		specs:     make(map[int64]*workerSpec),
		pending:   make(map[uint64]emitter.Frame),
		dataConns: make(map[net.Conn]struct{}),
		done:      make(chan struct{}),
	}
	w.rxCond = sync.NewCond(&w.rxMu)
	if opts.DataListen != "none" {
		addr := opts.DataListen
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		if ln, err := net.Listen("tcp", addr); err != nil {
			// A receptor listener that cannot bind is not fatal: ingest
			// falls back to the control session.
			fmt.Fprintf(os.Stderr, "fabric worker %s: receptor listen %s: %v\n", opts.ID, addr, err)
		} else {
			w.dataLn = ln
			w.dataAddr = ln.Addr().String()
			w.wg.Add(1)
			go w.dataAcceptLoop()
		}
	}
	if opts.SnapshotDir != "" {
		if snap, err := snapshot.Load(opts.SnapshotDir, opts.Index); err != nil {
			// A corrupt snapshot is not fatal: start empty and let the
			// coordinator's full replay rebuild the state.
			fmt.Fprintf(os.Stderr, "fabric worker %s: ignoring snapshot: %v\n", opts.ID, err)
		} else if snap != nil {
			w.restoreSnapshot(snap)
		}
		w.wg.Add(1)
		go w.snapLoop()
	}
	w.wg.Add(1)
	go w.dialLoop()
	return w
}

// Done is closed when the worker retires (coordinator Bye or Close).
func (w *Worker) Done() <-chan struct{} { return w.done }

// Close stops the worker, taking a final checkpoint so a clean restart
// replays almost nothing.
func (w *Worker) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()
	_ = w.Checkpoint()
	w.retire()
	w.sess.close()
	w.wg.Wait()
}

// Kill stops the worker WITHOUT the close-time checkpoint — the
// in-process equivalent of a SIGKILL, for crash-recovery tests: whatever
// the last checkpoint (if any) did not capture must come back via the
// coordinator's replay log.
func (w *Worker) Kill() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()
	w.retire()
	w.sess.close()
	w.wg.Wait()
}

// noteErr records one undeliverable frame (callers hold w.mu).
func (w *Worker) noteErr(what string, err error) {
	w.frameErrs++
	fmt.Fprintf(os.Stderr, "fabric worker %s: dropped %s frame: %v\n", w.opts.ID, what, err)
}

func (w *Worker) retire() {
	w.doneMu.Do(func() {
		close(w.done)
		if w.dataLn != nil {
			_ = w.dataLn.Close()
		}
		w.dataMu.Lock()
		w.dataClosed = true
		for conn := range w.dataConns {
			_ = conn.Close()
		}
		w.dataMu.Unlock()
		// Wake any receptor reader parked on a sequence gap.
		w.rxCond.Broadcast()
	})
}

func (w *Worker) isClosed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closed
}

// dialLoop keeps one connection to the coordinator alive, with backoff,
// resuming the session on every reconnect.
func (w *Worker) dialLoop() {
	defer w.wg.Done()
	backoff := 10 * time.Millisecond
	for !w.isClosed() {
		conn, err := net.DialTimeout("tcp", w.opts.Coordinator, 2*time.Second)
		if err != nil {
			select {
			case <-w.done:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > 500*time.Millisecond {
				backoff = 500 * time.Millisecond
			}
			continue
		}
		backoff = 10 * time.Millisecond
		if w.serve(conn) {
			return // Bye or Close
		}
	}
}

// serve performs the handshake and runs the frame loop on one connection.
// It reports whether the worker should retire (rather than redial).
func (w *Worker) serve(conn net.Conn) bool {
	// Hello carries our receive cursor (so the coordinator replays only
	// past it) and our durable snapshot cursor (its retention floor).
	// Written directly: the session is only attached once the Welcome
	// tells us the peer's cursor.
	w.mu.Lock()
	snapCur := w.lastSnap
	w.mu.Unlock()
	hello := emitter.Frame{Type: frameHello, Seq: w.sess.cursor(),
		Payload: marshalHello(helloMsg{Version: protoVersion, Index: w.opts.Index,
			Snap: snapCur, ID: w.opts.ID, DataAddr: w.dataAddr})}
	if err := emitter.WriteFrame(conn, hello); err != nil {
		_ = conn.Close()
		return w.isClosed()
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	// Tolerate stray control frames ahead of the handshake reply (a stale
	// ack flushed from the coordinator's previous-connection queue must
	// not cost a redial cycle).
	var f emitter.Frame
	var err error
	for {
		f, err = emitter.ReadFrame(br)
		if err == nil && f.Type == frameAck {
			w.sess.onAck(f.Seq)
			continue
		}
		break
	}
	if err != nil || f.Type != frameWelcome {
		_ = conn.Close()
		return w.isClosed()
	}
	if len(f.Payload) > 0 && f.Payload[0] == welcomeReset {
		// Our cursors claim frames this coordinator never sent: the state
		// (and any snapshot) is from another coordinator life. Wipe and
		// rejoin fresh.
		_ = conn.Close()
		w.wipe()
		return w.isClosed()
	}
	_ = conn.SetReadDeadline(time.Time{})
	w.sess.attach(conn, f.Seq, nil)

	// The coalesced-ack cursor is connection-scoped (see the coordinator's
	// handleConn): resetting it guarantees one ack per cursor position even
	// when a replay delivers only duplicates.
	w.ackMu.Lock()
	w.lastAck = 0
	w.ackMu.Unlock()
	for {
		f, err := emitter.ReadFrame(br)
		if err != nil {
			w.sess.detach(conn)
			return w.isClosed()
		}
		switch f.Type {
		case frameAck:
			w.sess.onAck(f.Seq)
			continue
		case frameWelcome:
			continue // duplicate handshake reply from a racy reattach
		}
		if bye := w.ingest(f, false); bye {
			w.retire()
			w.sess.detach(conn)
			return true
		}
		w.maybeAck(br.Buffered() == 0)
	}
}

// maxPending bounds the out-of-order buffer for the receptor plane: a
// receptor reader that races this far ahead of the control stream blocks
// (TCP backpressure on the producer) until the control conn fills the
// sequence gap. The control reader itself never blocks here — it is the
// gap filler.
const maxPending = 256

// ackEvery caps how many frames a burst may run before an ack goes out
// even with more input buffered; between bursts the reader acks as soon
// as its buffer drains. Pipelining acks this way keeps the peer's outbox
// bounded without paying a control-plane frame per data frame.
const ackEvery = 64

// ingest merges one stamped frame — from either plane — into the strict
// sequence order the handlers require, and reports whether it (or a
// buffered successor it unblocked) was a Bye. Duplicates fall out here;
// future frames park in pending until the gap fills.
func (w *Worker) ingest(f emitter.Frame, fromData bool) bool {
	w.rxMu.Lock()
	defer w.rxMu.Unlock()
	for {
		cur := w.sess.cursor()
		if f.Seq <= cur {
			return false // duplicate of an applied frame
		}
		if f.Seq == cur+1 {
			return w.applyRxLocked(f)
		}
		if !fromData || len(w.pending) < maxPending {
			w.pending[f.Seq] = f
			return false
		}
		select {
		case <-w.done:
			return false
		default:
		}
		w.rxCond.Wait()
	}
}

// applyRxLocked applies f, then drains every buffered successor the new
// cursor unblocks. Caller holds rxMu (which makes the accept-then-handle
// pair atomic against the other plane's reader).
func (w *Worker) applyRxLocked(f emitter.Frame) bool {
	for {
		if fresh, _ := w.sess.accept(f.Seq); fresh {
			if w.handle(f) {
				w.rxCond.Broadcast()
				return true
			}
		}
		w.rxCond.Broadcast()
		nf, ok := w.pending[w.sess.cursor()+1]
		if !ok {
			return false
		}
		delete(w.pending, nf.Seq)
		f = nf
	}
}

// maybeAck acknowledges the receive cursor if it moved, coalescing: when
// quiet (the reader's buffer is drained) ack immediately, otherwise only
// after ackEvery unacknowledged frames.
func (w *Worker) maybeAck(quiet bool) {
	w.ackMu.Lock()
	if cur := w.sess.cursor(); cur > w.lastAck && (quiet || cur-w.lastAck >= ackEvery) {
		w.lastAck = cur
		w.sess.sendCtl(emitter.Frame{Type: frameAck, Seq: cur})
	}
	w.ackMu.Unlock()
}

// dataAcceptLoop accepts producer connections on the receptor listener
// until retire closes it.
func (w *Worker) dataAcceptLoop() {
	defer w.wg.Done()
	for {
		conn, err := w.dataLn.Accept()
		if err != nil {
			return
		}
		w.wg.Add(1)
		go w.serveData(conn)
	}
}

// serveData runs one receptor connection: a frameDataHello handshake
// (version + worker index must match), then a one-way stream of session
// frames merged into the shared sequence space. The receptor plane keeps
// no resume state of its own — losing a data conn costs nothing, because
// the control session's replay covers every sequence.
func (w *Worker) serveData(conn net.Conn) {
	defer w.wg.Done()
	defer func() {
		w.dataMu.Lock()
		delete(w.dataConns, conn)
		w.dataMu.Unlock()
		_ = conn.Close()
	}()
	w.dataMu.Lock()
	if w.dataClosed {
		w.dataMu.Unlock()
		return
	}
	w.dataConns[conn] = struct{}{}
	w.dataMu.Unlock()

	br := bufio.NewReaderSize(conn, 256<<10)
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := emitter.ReadFrame(br)
	if err != nil || f.Type != frameDataHello {
		return
	}
	m, err := unmarshalHello(f.Payload)
	if err != nil || m.Version != protoVersion || m.Index != w.opts.Index {
		return
	}
	if err := emitter.WriteFrame(conn, emitter.Frame{Type: frameWelcome}); err != nil {
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	for {
		f, err := emitter.ReadFrame(br)
		if err != nil {
			return
		}
		switch f.Type {
		case frameAck, frameWelcome, frameDataHello:
			continue
		}
		w.dataMu.Lock()
		w.dataFrames++
		w.dataMu.Unlock()
		if bye := w.ingest(f, true); bye {
			w.retire()
			return
		}
		w.maybeAck(br.Buffered() == 0)
	}
}

// wipe discards all state, cursors and the snapshot file — the Welcome
// reset flag's order to rejoin as a blank worker.
func (w *Worker) wipe() {
	// Under snapMu so a concurrent Checkpoint either finishes before the
	// Remove (and its file is deleted with the rest of the old life) or
	// starts after the reset (and skips — nothing applied).
	w.snapMu.Lock()
	defer w.snapMu.Unlock()
	w.mu.Lock()
	w.streams = make(map[string]*workerStream)
	w.specs = make(map[int64]*workerSpec)
	w.applied = 0
	w.lastSnap = 0
	w.outBatch, w.outBatchN = nil, 0
	w.mu.Unlock()
	w.rxMu.Lock()
	w.pending = make(map[uint64]emitter.Frame)
	w.rxMu.Unlock()
	w.rxCond.Broadcast()
	w.sess.restore(0, 0, nil)
	if w.opts.SnapshotDir != "" {
		snapshot.Remove(w.opts.SnapshotDir, w.opts.Index)
	}
}

// handle applies one session frame — a batch frame unpacks into its
// sub-frames, applied in order — and flushes whatever output the handlers
// staged as one batch frame. It reports whether the coordinator said Bye.
func (w *Worker) handle(f emitter.Frame) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.applied = f.Seq
	bye := false
	if f.Type == frameBatch {
		if err := forEachSubFrame(f.Payload, func(t byte, payload []byte) error {
			if w.handleSub(t, payload) {
				bye = true
			}
			return nil
		}); err != nil {
			w.noteErr("batch", err)
		}
	} else {
		bye = w.handleSub(f.Type, f.Payload)
	}
	w.flushOutLocked()
	return bye
}

// stageLocked queues one output sub-frame for the end-of-handle flush.
func (w *Worker) stageLocked(t byte, payload []byte) {
	w.outBatch = appendSubFrame(w.outBatch, t, payload)
	w.outBatchN++
}

// flushOutLocked ships the staged output sub-frames as one stamped batch
// frame. Exactly one flush per applied input frame: the output stays a
// pure function of the applied prefix (no worker-side flush timer to race
// a replay), and the coordinator pays one frame's framing and ack cost
// for a whole firing pass.
func (w *Worker) flushOutLocked() {
	if len(w.outBatch) == 0 {
		return
	}
	w.sess.send(frameBatch, w.outBatch)
	w.batchesOut++
	w.subOut += uint64(w.outBatchN)
	w.outBatch, w.outBatchN = nil, 0
}

// handleSub applies one (sub-)frame's payload under w.mu. It reports
// whether the frame was a Bye.
func (w *Worker) handleSub(ftype byte, payload []byte) bool {
	f := emitter.Frame{Type: ftype, Payload: payload}
	switch f.Type {
	case frameStream:
		m, err := unmarshalStream(f.Payload)
		if err != nil {
			w.noteErr("stream", err)
			return false
		}
		st := &workerStream{
			name: m.Name, schema: m.Schema, shards: m.Shards,
			locals: make(map[int]*workerShard),
		}
		for sh := m.Lo; sh < m.Hi; sh++ {
			st.locals[sh] = &workerShard{
				global: sh,
				bk:     basket.New(fmt.Sprintf("%s/%d@%s", m.Name, sh, w.opts.ID), m.Schema),
				cids:   make(map[int64]int),
				sls:    make(map[int64]*window.ShardSlicer),
				sentWm: make(map[int64]int64),
			}
			st.order = append(st.order, sh)
		}
		w.streams[m.Name] = st

	case frameSpec:
		m, err := unmarshalSpec(f.Payload)
		if err != nil {
			w.noteErr("spec", err)
			return false
		}
		if w.specs[m.ID] != nil {
			return false // already registered (defensive; specs broadcast once)
		}
		st := w.streams[m.Stream]
		if st == nil {
			w.noteErr("spec", fmt.Errorf("unknown stream %q", m.Stream))
			return false
		}
		sp := &workerSpec{id: m.ID, st: st, win: m.Win, maxTs: math.MinInt64}
		for _, g := range st.order {
			ws := st.locals[g]
			ws.cids[sp.id] = ws.bk.Register()
			sl := window.NewShardSlicer(sp.win, st.schema)
			ws.sls[sp.id] = sl
			ws.sentWm[sp.id] = sl.Watermark()
		}
		w.specs[sp.id] = sp
		pos := len(st.specList)
		for pos > 0 && st.specList[pos-1].id > sp.id {
			pos--
		}
		st.specList = append(st.specList, nil)
		copy(st.specList[pos+1:], st.specList[pos:])
		st.specList[pos] = sp

	case frameSpecDrop:
		vals, err := unmarshalInt64s(f.Payload, 1)
		if err != nil {
			w.noteErr("spec-drop", err)
			return false
		}
		if sp := w.specs[vals[0]]; sp != nil {
			for _, g := range sp.st.order {
				ws := sp.st.locals[g]
				if cid, ok := ws.cids[sp.id]; ok {
					ws.bk.Unregister(cid)
					delete(ws.cids, sp.id)
				}
				delete(ws.sls, sp.id)
				delete(ws.sentWm, sp.id)
			}
			delete(w.specs, sp.id)
			for i, x := range sp.st.specList {
				if x == sp {
					sp.st.specList = append(sp.st.specList[:i], sp.st.specList[i+1:]...)
					break
				}
			}
		}

	case frameAppend:
		m, err := unmarshalAppend(f.Payload)
		if err != nil {
			w.noteErr("append", err)
			return false
		}
		st := w.streams[m.Stream]
		if st == nil {
			w.noteErr("append", fmt.Errorf("stream %q unknown here", m.Stream))
			return false
		}
		ws := st.locals[m.Shard]
		if ws == nil {
			w.noteErr("append", fmt.Errorf("stream %q shard %d not assigned here", m.Stream, m.Shard))
			return false
		}
		if err := ws.bk.AppendSeqs(m.Chunk, m.Arrival, m.Seqs); err != nil {
			w.noteErr("append", err)
			return false
		}

	case frameWatermark:
		m, err := unmarshalWatermark(f.Payload)
		if err != nil {
			w.noteErr("watermark", err)
			return false
		}
		st := w.streams[m.Stream]
		if st == nil {
			w.noteErr("watermark", fmt.Errorf("unknown stream %q", m.Stream))
			return false
		}
		if m.Settled > st.settled {
			st.settled = m.Settled
		}
		for _, sm := range m.Specs {
			if sp := w.specs[sm.ID]; sp != nil && sm.MaxTs > sp.maxTs {
				sp.maxTs = sm.MaxTs
			}
		}
		// One firing pass: every spec of this stream drains its cursors,
		// slices, and flushes what the advanced watermarks seal.
		for _, sp := range st.specList {
			w.fireSpec(sp)
		}

	case frameAdvance:
		vals, err := unmarshalInt64s(f.Payload, 2)
		if err != nil {
			w.noteErr("advance", err)
			return false
		}
		if sp := w.specs[vals[0]]; sp != nil {
			if vals[1] > sp.maxTs {
				sp.maxTs = vals[1]
			}
			w.fireSpec(sp)
		}

	case framePing:
		if vals, err := unmarshalInt64s(f.Payload, 1); err == nil {
			// Staged after the fragments the firing above produced, so the
			// coordinator's barrier sees them applied first.
			w.stageLocked(framePong, marshalInt64s(vals[0]))
		}

	case frameShardExport:
		m, err := unmarshalShardRef(f.Payload)
		if err != nil {
			w.noteErr("shard-export", err)
			return false
		}
		st := w.streams[m.Stream]
		if st == nil || st.locals[m.Shard] == nil {
			w.noteErr("shard-export", fmt.Errorf("stream %q shard %d not owned here", m.Stream, m.Shard))
			return false
		}
		sh := w.exportShardLocked(st, st.locals[m.Shard])
		delete(st.locals, m.Shard)
		for i, g := range st.order {
			if g == m.Shard {
				st.order = append(st.order[:i], st.order[i+1:]...)
				break
			}
		}
		w.sess.send(frameShardState,
			marshalShardBlob(m.Stream, m.Shard, snapshot.AppendShardState(nil, &sh)))

	case frameShardInstall:
		m, err := unmarshalShardBlob(f.Payload)
		if err != nil {
			w.noteErr("shard-install", err)
			return false
		}
		st := w.streams[m.Stream]
		if st == nil {
			w.noteErr("shard-install", fmt.Errorf("unknown stream %q", m.Stream))
			return false
		}
		var sh snapshot.ShardState
		if _, err := snapshot.ReadShardState(m.State, &sh); err != nil {
			w.noteErr("shard-install", err)
			return false
		}
		if st.locals[sh.Global] != nil {
			return false // duplicate install (defensive)
		}
		w.installShardLocked(st, &sh)

	case frameBye:
		return true
	}
	return false
}

// fireSpec is one firing of a spec across its local shards: drain each
// shard's cursor, slice, flush every epoch the current watermark seals,
// and ship fragments plus the advanced shard watermark. Shards with no
// new rows still ship their watermark advance — the coordinator's merger
// needs every shard's flush watermark to seal an epoch.
func (w *Worker) fireSpec(sp *workerSpec) {
	st := sp.st
	for _, g := range st.order {
		ws := st.locals[g]
		sl := ws.sls[sp.id]
		cid, ok := ws.cids[sp.id]
		if !ok || sl == nil {
			continue
		}
		c, arrivals, seqs := ws.bk.PeekSeqs(cid, int(ws.bk.Available(cid)))
		if c != nil {
			ws.bk.Consume(cid, int64(c.Rows()))
			sl.Push(c, arrivals, seqs)
		}
		var frags []*window.Frag
		if sp.win.Tuples {
			frags = sl.Flush(st.settled / sp.win.Slide)
		} else if sp.maxTs != math.MinInt64 {
			frags = sl.Flush(sl.TimeGen(sp.maxTs))
		}
		wm := sl.Watermark()
		if len(frags) == 0 && wm <= ws.sentWm[sp.id] {
			continue
		}
		ws.sentWm[sp.id] = wm
		for _, fr := range frags {
			fr.Shard = ws.global
		}
		w.stageLocked(frameFrag, marshalFragMsg(fragMsg{
			Spec: sp.id, Shard: ws.global, Wm: wm, Frags: frags,
		}))
	}
}

// exportShardLocked captures one shard's transferable state: the basket
// image plus every spec's cursor, shipped watermark and slicer. Chunks
// are views; encode before releasing anything that could rewrite them
// in place (callers encode synchronously or hold w.mu through marshal).
func (w *Worker) exportShardLocked(st *workerStream, ws *workerShard) snapshot.ShardState {
	sh := snapshot.ShardState{Global: ws.global, Basket: ws.bk.ExportState()}
	for _, sp := range st.specList {
		cid, ok := ws.cids[sp.id]
		if !ok {
			continue
		}
		cur, _ := ws.bk.Cursor(cid)
		sh.Specs = append(sh.Specs, snapshot.ShardSpecState{
			Spec:   sp.id,
			Cursor: cur,
			SentWm: ws.sentWm[sp.id],
			Slicer: ws.sls[sp.id].ExportState(),
		})
	}
	return sh
}

// installShardLocked rebuilds a shard from decoded state and inserts it
// into the stream. Specs present in the state but since dropped are
// skipped; specs added since the state was exported get fresh slicers
// starting at the basket's end (no routed rows for the shard can have
// flowed in between — the coordinator queues them during the move).
func (w *Worker) installShardLocked(st *workerStream, sh *snapshot.ShardState) {
	ws := &workerShard{
		global: sh.Global,
		bk: basket.NewFromState(
			fmt.Sprintf("%s/%d@%s", st.name, sh.Global, w.opts.ID), st.schema, sh.Basket),
		cids:   make(map[int64]int),
		sls:    make(map[int64]*window.ShardSlicer),
		sentWm: make(map[int64]int64),
	}
	seen := make(map[int64]bool, len(sh.Specs))
	for _, sp := range sh.Specs {
		spec := w.specs[sp.Spec]
		if spec == nil || spec.st != st {
			continue // spec dropped while the state was in flight
		}
		ws.cids[sp.Spec] = ws.bk.RegisterAt(sp.Cursor)
		ws.sls[sp.Spec] = window.NewShardSlicerFromState(spec.win, st.schema, sp.Slicer)
		ws.sentWm[sp.Spec] = sp.SentWm
		seen[sp.Spec] = true
	}
	for _, spec := range st.specList {
		if seen[spec.id] {
			continue
		}
		ws.cids[spec.id] = ws.bk.Register()
		sl := window.NewShardSlicer(spec.win, st.schema)
		ws.sls[spec.id] = sl
		ws.sentWm[spec.id] = sl.Watermark()
	}
	st.locals[sh.Global] = ws
	pos := len(st.order)
	for pos > 0 && st.order[pos-1] > sh.Global {
		pos--
	}
	st.order = append(st.order, 0)
	copy(st.order[pos+1:], st.order[pos:])
	st.order[pos] = sh.Global
}

// captureLocked assembles the worker's full checkpoint. Basket and slicer
// chunks in the result are views — stable against concurrent in-place
// appends — so the (possibly large) encode can run off the handler path.
func (w *Worker) captureLocked() *snapshot.Snapshot {
	snap := &snapshot.Snapshot{Index: w.opts.Index, RxSeq: w.applied}
	snap.TxSeq, snap.Outbox = w.sess.exportState()
	names := make([]string, 0, len(w.streams))
	for n := range w.streams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		st := w.streams[n]
		ss := snapshot.StreamState{
			Name: st.name, Schema: st.schema, Shards: st.shards, Settled: st.settled,
		}
		for _, sp := range st.specList {
			ss.Specs = append(ss.Specs, snapshot.SpecState{ID: sp.id, Win: sp.win, MaxTs: sp.maxTs})
		}
		for _, g := range st.order {
			ss.Locals = append(ss.Locals, w.exportShardLocked(st, st.locals[g]))
		}
		snap.Streams = append(snap.Streams, ss)
	}
	return snap
}

// restoreSnapshot rebuilds the worker from a decoded checkpoint (called
// before any goroutine starts).
func (w *Worker) restoreSnapshot(snap *snapshot.Snapshot) {
	w.mu.Lock()
	for i := range snap.Streams {
		ss := &snap.Streams[i]
		st := &workerStream{
			name: ss.Name, schema: ss.Schema, shards: ss.Shards, settled: ss.Settled,
			locals: make(map[int]*workerShard),
		}
		w.streams[st.name] = st
		for _, sp := range ss.Specs {
			spec := &workerSpec{id: sp.ID, st: st, win: sp.Win, maxTs: sp.MaxTs}
			w.specs[spec.id] = spec
			st.specList = append(st.specList, spec) // snapshot order is id order
		}
		for j := range ss.Locals {
			w.installShardLocked(st, &ss.Locals[j])
		}
	}
	w.applied = snap.RxSeq
	w.lastSnap = snap.RxSeq
	// The restored snapshot is durable as of this load.
	w.lastSnapAt = time.Now().UnixMicro()
	w.mu.Unlock()
	w.sess.restore(snap.TxSeq, snap.RxSeq, snap.Outbox)
}

// Checkpoint writes one durable snapshot now and tells the coordinator
// the new retention floor. It is the periodic snapLoop body, exported so
// tests (and an orderly Close) can force a checkpoint at a chosen point.
// No-op without a snapshot directory.
func (w *Worker) Checkpoint() error {
	if w.opts.SnapshotDir == "" {
		return nil
	}
	// One checkpoint at a time, held through the Save: concurrent invokers
	// (snapLoop tick vs Close) must not let an older capture land on disk
	// after a newer one — see snapMu.
	w.snapMu.Lock()
	defer w.snapMu.Unlock()
	w.mu.Lock()
	if w.applied <= w.lastSnap {
		// Nothing applied since the last durable checkpoint: saving would
		// rewrite an identical-cursor snapshot (and at startup, an empty
		// one). Skipping keeps the on-disk cursor strictly increasing.
		w.mu.Unlock()
		return nil
	}
	snap := w.captureLocked()
	w.mu.Unlock()
	// Encode and persist off the handler path: the views inside snap stay
	// valid while frames keep applying.
	if err := snapshot.Save(w.opts.SnapshotDir, w.opts.Index, snapshot.Encode(nil, snap)); err != nil {
		w.mu.Lock()
		w.noteErr("snapshot", err)
		w.mu.Unlock()
		return err
	}
	w.mu.Lock()
	w.lastSnap = snap.RxSeq
	w.lastSnapAt = time.Now().UnixMicro()
	w.mu.Unlock()
	// The snap-ack is a control frame: only after the rename is durable
	// may the coordinator prune, and an unstamped frame keeps the
	// transmit sequence a pure function of the applied input.
	w.sess.sendCtl(emitter.Frame{Type: frameSnapAck, Seq: snap.RxSeq})
	return nil
}

// snapLoop checkpoints periodically until the worker retires.
func (w *Worker) snapLoop() {
	defer w.wg.Done()
	t := time.NewTicker(w.opts.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-w.done:
			return
		case <-t.C:
			_ = w.Checkpoint()
		}
	}
}

// Describe renders the worker state (cmd/dcworker's status line).
func (w *Worker) Describe() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.dataMu.Lock()
	dataFrames := w.dataFrames
	dataConns := len(w.dataConns)
	w.dataMu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "fabric worker %s index=%d coordinator=%s connected=%v streams=%d specs=%d applied=%d snap_cursor=%d frame_errs=%d receptor=%s data_conns=%d data_frames=%d",
		w.opts.ID, w.opts.Index, w.opts.Coordinator, w.sess.connected(),
		len(w.streams), len(w.specs), w.applied, w.lastSnap, w.frameErrs,
		w.dataAddr, dataConns, dataFrames)
	return b.String()
}

// DataAddr reports the receptor listener's bound address ("" when the
// receptor plane is disabled).
func (w *Worker) DataAddr() string { return w.dataAddr }
