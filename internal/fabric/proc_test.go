package fabric_test

import (
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"datacell"
	"datacell/internal/fabric"
	"datacell/internal/fabric/snapshot"
)

// buildWorkerBin compiles the dcworker binary into a temp dir.
func buildWorkerBin(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "dcworker")
	build := exec.Command("go", "build", "-o", bin, "datacell/cmd/dcworker")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build dcworker: %v\n%s", err, out)
	}
	return bin
}

// workerLogDir is where worker process output lands: FABRIC_TEST_LOGDIR
// when set (CI uploads it as an artifact on failure), a test temp dir
// otherwise.
func workerLogDir(t *testing.T) string {
	t.Helper()
	if dir := os.Getenv("FABRIC_TEST_LOGDIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	return t.TempDir()
}

// TestFabricTwoProcess boots a coordinator in-process and two REAL worker
// processes (the dcworker binary) over loopback, runs the 16-query grouped
// workload, pins byte-identical results against a single-process run, and
// asserts both workers shut down cleanly (exit 0) on coordinator Close.
// This is the CI fabric-smoke entry point.
func TestFabricTwoProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs child processes; skipped with -short")
	}
	bin := buildWorkerBin(t)

	const members = 16
	const size, slide = 64, 16
	chunks := testChunks(400, 17, 5)
	ddl := "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k"
	local := runLocal(t, ddl, members, size, slide, chunks)

	eng := datacell.New(&datacell.Options{Workers: 1})
	defer eng.Close()
	coord, err := fabric.NewCoordinator(eng, fabric.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(ddl); err != nil {
		t.Fatal(err)
	}
	if err := coord.ExportStream("s"); err != nil {
		t.Fatal(err)
	}

	procs := make([]*exec.Cmd, 2)
	for i := range procs {
		procs[i] = exec.Command(bin, "-join", coord.Addr(), "-index", fmt.Sprint(i))
		procs[i].Stdout = os.Stderr
		procs[i].Stderr = os.Stderr
		if err := procs[i].Start(); err != nil {
			t.Fatal(err)
		}
	}

	qs := make([]*datacell.Query, members)
	for i := range qs {
		q, err := eng.Register(fmt.Sprintf("q%02d", i), memberSQL(i, size, slide),
			&datacell.RegisterOptions{Mode: memberMode(i)})
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = q
	}
	for _, c := range chunks {
		if err := eng.AppendChunk("s", c); err != nil {
			t.Fatal(err)
		}
	}
	coord.Drain()
	got := make([][]string, members)
	for i, q := range qs {
		got[i] = collectRendered(q)
	}
	assertSameResults(t, "two-process", got, local)

	// Orderly shutdown: Close broadcasts Bye; both workers must exit 0.
	coord.Close()
	for i, p := range procs {
		done := make(chan error, 1)
		go func() { done <- p.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("worker %d exited uncleanly: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			_ = p.Process.Kill()
			t.Fatalf("worker %d did not exit after coordinator Close", i)
		}
	}
}

// TestFabricWorkerKillRecovery is the fault-injection acceptance test for
// lossless recovery with REAL processes: dcworker children snapshotting to
// disk are SIGKILLed at seed-randomized points mid-epoch (no warning, no
// final checkpoint) and restarted with the same snapshot dir; after the
// dust settles, every query's windows are byte-identical to the
// single-process run — zero row loss, zero duplication. Worker output goes
// to per-incarnation log files (FABRIC_TEST_LOGDIR in CI) named in the
// failure message.
func TestFabricWorkerKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs child processes; skipped with -short")
	}
	bin := buildWorkerBin(t)
	logDir := workerLogDir(t)
	snapDir := t.TempDir()

	const members = 8
	const size, slide = 20, 10
	const seed = 7
	chunks := testChunks(800, 20, 4)
	ddl := "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k"
	local := runLocal(t, ddl, members, size, slide, chunks)

	eng := datacell.New(&datacell.Options{Workers: 1})
	defer eng.Close()
	coord, err := fabric.NewCoordinator(eng, fabric.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if _, err := eng.Exec(ddl); err != nil {
		t.Fatal(err)
	}
	if err := coord.ExportStream("s"); err != nil {
		t.Fatal(err)
	}

	var logs []string
	incarnation := 0
	start := func(index int) *exec.Cmd {
		incarnation++
		name := filepath.Join(logDir, fmt.Sprintf("worker-%d-run-%d.log", index, incarnation))
		logF, err := os.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		logs = append(logs, name)
		cmd := exec.Command(bin,
			"-join", coord.Addr(), "-index", fmt.Sprint(index),
			"-snapshot-dir", snapDir, "-snapshot-interval", "20ms")
		cmd.Stdout = logF
		cmd.Stderr = logF
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
			_ = logF.Close()
		})
		return cmd
	}
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf(format+"\nworker logs: %v", append(args, logs)...)
	}

	procs := []*exec.Cmd{start(0), start(1)}
	qs := make([]*datacell.Query, members)
	for i := range qs {
		q, err := eng.Register(fmt.Sprintf("q%02d", i), memberSQL(i, size, slide),
			&datacell.RegisterOptions{Mode: memberMode(i)})
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = q
	}

	// Feed everything in one pass, SIGKILLing worker 1 at seed-randomized
	// chunk positions — mid-epoch by construction (slide 10, chunk 20: every
	// chunk leaves epochs open) — and restarting it a few chunks later. No
	// drain around the kills: the fabric must absorb them in full flight.
	r := rand.New(rand.NewSource(seed))
	nKills := 3
	killAt := make(map[int]bool, nKills)
	for len(killAt) < nKills {
		killAt[5+r.Intn(len(chunks)-10)] = true
	}
	restartGap := 0
	hadSnapshot := 0
	kills := 0
	for ci, c := range chunks {
		// A kill point landing while the worker is still down (restartGap
		// counting) is skipped — there is nothing to shoot.
		if killAt[ci] && restartGap == 0 {
			// Let the 20ms snapshot ticker land somewhere nondeterministic
			// relative to the kill, then shoot the process.
			time.Sleep(time.Duration(5+r.Intn(40)) * time.Millisecond)
			if err := procs[1].Process.Kill(); err != nil {
				fail("SIGKILL worker 1: %v", err)
			}
			_, _ = procs[1].Process.Wait()
			kills++
			if _, err := os.Stat(snapshot.FileName(snapDir, 1)); err == nil {
				hadSnapshot++
			}
			restartGap = 3 + r.Intn(5)
		}
		if restartGap > 0 {
			if restartGap--; restartGap == 0 {
				procs[1] = start(1)
			}
		}
		if err := eng.AppendChunk("s", c); err != nil {
			t.Fatal(err)
		}
	}
	if restartGap > 0 {
		procs[1] = start(1)
	}
	coord.Drain()

	got := make([][]string, members)
	for i, q := range qs {
		got[i] = collectRendered(q)
	}
	for i := range local {
		if len(got[i]) != len(local[i]) {
			fail("member %d sealed %d windows, local %d (row loss or duplication across SIGKILL)",
				i, len(got[i]), len(local[i]))
		}
		for j := range local[i] {
			if got[i][j] != local[i][j] {
				fail("member %d eval %d diverges after SIGKILL recovery:\nfabric:\n%s\nlocal:\n%s",
					i, j, got[i][j], local[i][j])
			}
		}
	}
	if kills == 0 {
		fail("no kill ever fired; the test exercised nothing")
	}
	t.Logf("killed worker 1 %d times (%d with a snapshot on disk), results byte-identical", kills, hadSnapshot)
}
