package fabric_test

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"datacell"
	"datacell/internal/fabric"
)

// TestFabricTwoProcess boots a coordinator in-process and two REAL worker
// processes (the dcworker binary) over loopback, runs the 16-query grouped
// workload, pins byte-identical results against a single-process run, and
// asserts both workers shut down cleanly (exit 0) on coordinator Close.
// This is the CI fabric-smoke entry point.
func TestFabricTwoProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs child processes; skipped with -short")
	}
	bin := filepath.Join(t.TempDir(), "dcworker")
	build := exec.Command("go", "build", "-o", bin, "datacell/cmd/dcworker")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build dcworker: %v\n%s", err, out)
	}

	const members = 16
	const size, slide = 64, 16
	chunks := testChunks(400, 17, 5)
	ddl := "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k"
	local := runLocal(t, ddl, members, size, slide, chunks)

	eng := datacell.New(&datacell.Options{Workers: 1})
	defer eng.Close()
	coord, err := fabric.NewCoordinator(eng, fabric.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(ddl); err != nil {
		t.Fatal(err)
	}
	if err := coord.ExportStream("s"); err != nil {
		t.Fatal(err)
	}

	procs := make([]*exec.Cmd, 2)
	for i := range procs {
		procs[i] = exec.Command(bin, "-join", coord.Addr(), "-index", fmt.Sprint(i))
		procs[i].Stdout = os.Stderr
		procs[i].Stderr = os.Stderr
		if err := procs[i].Start(); err != nil {
			t.Fatal(err)
		}
	}

	qs := make([]*datacell.Query, members)
	for i := range qs {
		q, err := eng.Register(fmt.Sprintf("q%02d", i), memberSQL(i, size, slide),
			&datacell.RegisterOptions{Mode: memberMode(i)})
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = q
	}
	for _, c := range chunks {
		if err := eng.AppendChunk("s", c); err != nil {
			t.Fatal(err)
		}
	}
	coord.Drain()
	got := make([][]string, members)
	for i, q := range qs {
		got[i] = collectRendered(q)
	}
	assertSameResults(t, "two-process", got, local)

	// Orderly shutdown: Close broadcasts Bye; both workers must exit 0.
	coord.Close()
	for i, p := range procs {
		done := make(chan error, 1)
		go func() { done <- p.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("worker %d exited uncleanly: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			_ = p.Process.Kill()
			t.Fatalf("worker %d did not exit after coordinator Close", i)
		}
	}
}
