// Package fabric implements DataCell's distributed shard fabric: a
// coordinator/worker runtime that partitions a query group's shard set
// across OS processes.
//
// The coordinator owns a normal Engine. Streams exported to the fabric
// keep their catalog entry and sharded-basket sequencing, but appends are
// routed — rows partitioned, stamped with global sequence numbers — to
// worker processes by shard range instead of entering local baskets.
// Each worker runs the existing sharded front end for its range: rows
// land in per-shard baskets, per-(shard, spec) ShardSlicers cut them into
// globally consistent epoch fragments, and watermark frames from the
// coordinator (the settled sequence for tuple windows, the shared
// event-time high mark for time windows) seal them. Sealed fragments ship
// back as length-prefixed frames (emitter.WriteFrame; payloads via
// window.MarshalFrag) and feed the query group's ordinary ShardMerge —
// min-watermark sealing across processes — so everything above the merge
// (fan-out, operator DAG, merge classes, post-merge trie) works unchanged
// on remote windows, and results are byte-identical to a single-process
// run.
//
// Sessions survive connection loss: every session frame carries a
// per-direction sequence number, receivers acknowledge the highest
// in-order frame processed, and a reconnecting peer replays everything
// after the peer's acknowledged cursor — resuming from the last acked
// epoch with no duplicated or lost windows (see session.go).
//
// Lock order across the boundary (see ARCHITECTURE.md): a stream's
// routing mutex (coordStream.mu) → session mutex; and on the delivery
// side the group's mergeMu → member queues → scheduler, exactly as for
// local firings. No lock is ever held across a blocking network write —
// sessions enqueue and a per-session writer goroutine does the IO.
package fabric

import (
	"encoding/binary"
	"fmt"

	"datacell/internal/bat"
	"datacell/internal/emitter"
	"datacell/internal/plan"
	"datacell/internal/window"
)

// Frame types of the fabric protocol (emitter.Frame.Type). Hello, Welcome,
// Ack and SnapAck are control frames whose Seq field carries a cursor
// (receive cursor for the first three, durable snapshot cursor for
// SnapAck); every other type is a session frame stamped with the sender's
// transmit sequence. Timer-driven traffic (the snapshot ack) MUST stay a
// control frame: a stamped frame outside the deterministic frame→frame
// function would shift the transmit sequence and break replay identity.
const (
	frameHello        byte = iota + 1 // worker → coord: worker index + id + cursors
	frameWelcome                      // coord → worker: handshake reply (payload: reset flag)
	frameAck                          // either direction: receive cursor
	frameSnapAck                      // worker → coord: durable snapshot cursor
	frameStream                       // coord → worker: stream + shard-range assignment
	frameSpec                         // coord → worker: slicing spec for a new query group
	frameSpecDrop                     // coord → worker: group torn down
	frameAppend                       // coord → worker: routed rows for one shard
	frameWatermark                    // coord → worker: settled sequence + event-time high marks
	frameAdvance                      // coord → worker: forced time watermark (heartbeat)
	framePing                         // coord → worker: drain barrier probe
	framePong                         // worker → coord: barrier reply
	frameFrag                         // worker → coord: sealed epoch fragments + shard watermark
	frameBye                          // coord → worker: orderly shutdown
	frameShardExport                  // coord → worker: drain one shard and ship its state
	frameShardState                   // worker → coord: exported shard state (handoff payload)
	frameShardInstall                 // coord → worker: install shipped shard state
	frameBatch                        // either direction: coalesced session sub-frames
	frameDataHello                    // producer → worker receptor: data-plane handshake
)

const protoVersion = 3

// DupSafe reports whether a frame may be duplicated in transit without
// desynchronizing a session: stamped session frames are deduplicated by
// sequence on receive, but control frames (Hello/Welcome/Ack/SnapAck) are
// connection-scoped and carry cursors, not sequences — duplicating a
// handshake confuses the accept loop. Fault-injection harnesses
// (fabrictest.FaultProxy) consult this before applying a duplicate fault.
func DupSafe(f emitter.Frame) bool { return f.Type > frameSnapAck }

// welcomeReset in a Welcome payload tells the worker its cursors are from
// another coordinator life (its Hello claimed frames this coordinator
// never sent): wipe state and snapshot, rejoin fresh.
const welcomeReset byte = 1

// helloMsg introduces (or re-introduces) a worker. Snap is the cursor of
// the worker's last durable snapshot (0 when it never snapshotted): the
// coordinator's replay-log retention floor for this worker. DataAddr
// advertises the worker's receptor listener — the address producers dial
// to ship ingest batches straight to the worker, off the control session
// ("" when the receptor plane is disabled). A frameDataHello on that
// listener reuses this message with the dialer's identity.
type helloMsg struct {
	Version  int
	Index    int
	Snap     uint64
	ID       string
	DataAddr string
}

func marshalHello(m helloMsg) []byte {
	b := binary.AppendUvarint(nil, uint64(m.Version))
	b = binary.AppendUvarint(b, uint64(m.Index))
	b = binary.AppendUvarint(b, m.Snap)
	b = bat.AppendString(b, m.ID)
	return bat.AppendString(b, m.DataAddr)
}

func unmarshalHello(src []byte) (helloMsg, error) {
	var m helloMsg
	v, src, err := bat.ReadUvarint(src)
	if err != nil {
		return m, fmt.Errorf("fabric: hello version: %w", err)
	}
	m.Version = int(v)
	idx, src, err := bat.ReadUvarint(src)
	if err != nil {
		return m, fmt.Errorf("fabric: hello index: %w", err)
	}
	m.Index = int(idx)
	if m.Snap, src, err = bat.ReadUvarint(src); err != nil {
		return m, fmt.Errorf("fabric: hello snap: %w", err)
	}
	if m.ID, src, err = bat.ReadString(src); err != nil {
		return m, fmt.Errorf("fabric: hello id: %w", err)
	}
	if m.DataAddr, _, err = bat.ReadString(src); err != nil {
		return m, fmt.Errorf("fabric: hello data addr: %w", err)
	}
	return m, nil
}

// streamMsg assigns a stream's shard range to a worker.
type streamMsg struct {
	Name   string
	Schema bat.Schema
	Shards int // total shard count across all workers
	Lo, Hi int // this worker's half-open shard range
}

func marshalStream(m streamMsg) []byte {
	b := bat.AppendString(nil, m.Name)
	b = bat.MarshalSchema(b, m.Schema)
	b = binary.AppendUvarint(b, uint64(m.Shards))
	b = binary.AppendUvarint(b, uint64(m.Lo))
	return binary.AppendUvarint(b, uint64(m.Hi))
}

func unmarshalStream(src []byte) (streamMsg, error) {
	var m streamMsg
	var err error
	if m.Name, src, err = bat.ReadString(src); err != nil {
		return m, fmt.Errorf("fabric: stream name: %w", err)
	}
	if m.Schema, src, err = bat.UnmarshalSchema(src); err != nil {
		return m, fmt.Errorf("fabric: stream schema: %w", err)
	}
	vals, _, err := readUvarints(src, 3)
	if err != nil {
		return m, fmt.Errorf("fabric: stream range: %w", err)
	}
	m.Shards, m.Lo, m.Hi = int(vals[0]), int(vals[1]), int(vals[2])
	return m, nil
}

// specMsg registers a slicing spec: the window one query group needs the
// stream cut at (the worker uses only the slide granularity, but the full
// window rides along so the broadcast and the snapshot codec agree on
// what a spec is — see plan.AppendWindow).
type specMsg struct {
	ID     int64
	Stream string
	Win    *plan.Window
}

func marshalSpec(m specMsg) []byte {
	b := binary.AppendVarint(nil, m.ID)
	b = bat.AppendString(b, m.Stream)
	return plan.AppendWindow(b, m.Win)
}

func unmarshalSpec(src []byte) (specMsg, error) {
	var m specMsg
	var err error
	if m.ID, src, err = bat.ReadVarint(src); err != nil {
		return m, fmt.Errorf("fabric: spec id: %w", err)
	}
	if m.Stream, src, err = bat.ReadString(src); err != nil {
		return m, fmt.Errorf("fabric: spec stream: %w", err)
	}
	if m.Win, _, err = plan.ReadWindow(src); err != nil {
		return m, fmt.Errorf("fabric: spec window: %w", err)
	}
	return m, nil
}

// shardRefMsg names one (stream, shard) — the export request of the
// elastic handoff.
type shardRefMsg struct {
	Stream string
	Shard  int
}

func marshalShardRef(stream string, shard int) []byte {
	b := bat.AppendString(nil, stream)
	return binary.AppendUvarint(b, uint64(shard))
}

func unmarshalShardRef(src []byte) (shardRefMsg, error) {
	var m shardRefMsg
	var err error
	if m.Stream, src, err = bat.ReadString(src); err != nil {
		return m, fmt.Errorf("fabric: shard ref stream: %w", err)
	}
	sh, _, err := bat.ReadUvarint(src)
	if err != nil {
		return m, fmt.Errorf("fabric: shard ref shard: %w", err)
	}
	m.Shard = int(sh)
	return m, nil
}

// shardBlobMsg carries one shard's encoded state (snapshot.ShardState
// bytes) — shipped worker → coordinator on export and forwarded verbatim
// coordinator → new owner on install, so the coordinator never decodes
// (or re-marshals) the state it relays.
type shardBlobMsg struct {
	Stream string
	Shard  int
	State  []byte
}

func marshalShardBlob(stream string, shard int, state []byte) []byte {
	b := bat.AppendString(nil, stream)
	b = binary.AppendUvarint(b, uint64(shard))
	return append(b, state...)
}

func unmarshalShardBlob(src []byte) (shardBlobMsg, error) {
	var m shardBlobMsg
	var err error
	if m.Stream, src, err = bat.ReadString(src); err != nil {
		return m, fmt.Errorf("fabric: shard blob stream: %w", err)
	}
	sh, src, err := bat.ReadUvarint(src)
	if err != nil {
		return m, fmt.Errorf("fabric: shard blob shard: %w", err)
	}
	m.Shard = int(sh)
	m.State = src
	return m, nil
}

// appendMsg carries one shard's slice of a routed append. On the wire
// the sequence stamps are shard-local: a round-robin part's stamps are a
// dense run carried as a single base (seqDense), and a hash-routed
// part's ascending subset is carried as first value + deltas (seqDeltas)
// — the global stamp never crosses the wire per row.
type appendMsg struct {
	Stream  string
	Shard   int
	Arrival int64
	Seqs    bat.Ints
	Chunk   *bat.Chunk
}

const (
	seqDense  byte = 0 // uvarint count + varint base: seqs are base..base+count-1
	seqDeltas byte = 1 // uvarint count + varint first + varint deltas
)

func marshalAppend(m appendMsg) []byte {
	b := bat.AppendString(nil, m.Stream)
	b = binary.AppendUvarint(b, uint64(m.Shard))
	b = binary.AppendVarint(b, m.Arrival)
	dense := len(m.Seqs) > 0
	for i, s := range m.Seqs {
		if s != m.Seqs[0]+int64(i) {
			dense = false
			break
		}
	}
	if dense {
		b = append(b, seqDense)
		b = binary.AppendUvarint(b, uint64(len(m.Seqs)))
		b = binary.AppendVarint(b, m.Seqs[0])
	} else {
		b = append(b, seqDeltas)
		b = binary.AppendUvarint(b, uint64(len(m.Seqs)))
		prev := int64(0)
		for i, s := range m.Seqs {
			if i == 0 {
				b = binary.AppendVarint(b, s)
			} else {
				b = binary.AppendVarint(b, s-prev)
			}
			prev = s
		}
	}
	return bat.MarshalChunk(b, m.Chunk)
}

func unmarshalAppend(src []byte) (appendMsg, error) {
	var m appendMsg
	var err error
	if m.Stream, src, err = bat.ReadString(src); err != nil {
		return m, fmt.Errorf("fabric: append stream: %w", err)
	}
	sh, src, err := bat.ReadUvarint(src)
	if err != nil {
		return m, fmt.Errorf("fabric: append shard: %w", err)
	}
	m.Shard = int(sh)
	if m.Arrival, src, err = bat.ReadVarint(src); err != nil {
		return m, fmt.Errorf("fabric: append arrival: %w", err)
	}
	if len(src) == 0 {
		return m, fmt.Errorf("fabric: append seq mode: short buffer")
	}
	mode := src[0]
	src = src[1:]
	n, src, err := bat.ReadUvarint(src)
	if err != nil || n > uint64(len(src))+1 {
		return m, fmt.Errorf("fabric: append seq count")
	}
	m.Seqs = make(bat.Ints, n)
	switch mode {
	case seqDense:
		if n > 0 {
			var base int64
			if base, src, err = bat.ReadVarint(src); err != nil {
				return m, fmt.Errorf("fabric: append seq base: %w", err)
			}
			for i := range m.Seqs {
				m.Seqs[i] = base + int64(i)
			}
		}
	case seqDeltas:
		prev := int64(0)
		for i := range m.Seqs {
			var d int64
			if d, src, err = bat.ReadVarint(src); err != nil {
				return m, fmt.Errorf("fabric: append seq %d: %w", i, err)
			}
			if i == 0 {
				prev = d
			} else {
				prev += d
			}
			m.Seqs[i] = prev
		}
	default:
		return m, fmt.Errorf("fabric: append seq mode %d", mode)
	}
	if m.Chunk, _, err = bat.UnmarshalChunk(src); err != nil {
		return m, fmt.Errorf("fabric: append chunk: %w", err)
	}
	if m.Chunk.Rows() != len(m.Seqs) {
		return m, fmt.Errorf("fabric: append of %d rows with %d seqs", m.Chunk.Rows(), len(m.Seqs))
	}
	return m, nil
}

// Batch payloads are concatenated sub-frames — {byte type, uvarint len,
// payload} — applied strictly in order under the receiver's state mutex,
// so a batch is semantically identical to its sub-frames sent back to
// back, at one frame's framing and ack cost.
type subFrame struct {
	Type    byte
	Payload []byte
}

func appendSubFrame(dst []byte, t byte, payload []byte) []byte {
	dst = append(dst, t)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// forEachSubFrame applies fn to each sub-frame in a batch payload,
// stopping on malformed framing (the remaining bytes are undecodable).
func forEachSubFrame(src []byte, fn func(t byte, payload []byte) error) error {
	for len(src) > 0 {
		t := src[0]
		n, rest, err := bat.ReadUvarint(src[1:])
		if err != nil || n > uint64(len(rest)) {
			return fmt.Errorf("fabric: batch sub-frame framing")
		}
		if err := fn(t, rest[:n]); err != nil {
			return err
		}
		src = rest[n:]
	}
	return nil
}

// watermarkMsg advances a stream's sealing clocks after routed appends:
// the settled sequence watermark (tuple windows) and each time-windowed
// spec's event-time high mark.
type watermarkMsg struct {
	Stream  string
	Settled int64
	Specs   []specMax
}

type specMax struct {
	ID    int64
	MaxTs int64
}

func marshalWatermark(m watermarkMsg) []byte {
	b := bat.AppendString(nil, m.Stream)
	b = binary.AppendVarint(b, m.Settled)
	b = binary.AppendUvarint(b, uint64(len(m.Specs)))
	for _, s := range m.Specs {
		b = binary.AppendVarint(b, s.ID)
		b = binary.AppendVarint(b, s.MaxTs)
	}
	return b
}

func unmarshalWatermark(src []byte) (watermarkMsg, error) {
	var m watermarkMsg
	var err error
	if m.Stream, src, err = bat.ReadString(src); err != nil {
		return m, fmt.Errorf("fabric: watermark stream: %w", err)
	}
	if m.Settled, src, err = bat.ReadVarint(src); err != nil {
		return m, fmt.Errorf("fabric: watermark settled: %w", err)
	}
	n, src, err := bat.ReadUvarint(src)
	if err != nil || n > uint64(len(src)) {
		return m, fmt.Errorf("fabric: watermark spec count")
	}
	m.Specs = make([]specMax, n)
	for i := range m.Specs {
		if m.Specs[i].ID, src, err = bat.ReadVarint(src); err != nil {
			return m, fmt.Errorf("fabric: watermark spec id: %w", err)
		}
		if m.Specs[i].MaxTs, src, err = bat.ReadVarint(src); err != nil {
			return m, fmt.Errorf("fabric: watermark spec ts: %w", err)
		}
	}
	return m, nil
}

// marshalInt64s / unmarshalInt64s encode the small fixed-arity frames
// (advance, spec drop, ping, pong) as varint tuples.
func marshalInt64s(vals ...int64) []byte {
	var b []byte
	for _, v := range vals {
		b = binary.AppendVarint(b, v)
	}
	return b
}

func unmarshalInt64s(src []byte, n int) ([]int64, error) {
	out := make([]int64, n)
	var err error
	for i := range out {
		if out[i], src, err = bat.ReadVarint(src); err != nil {
			return nil, fmt.Errorf("fabric: short int frame: %w", err)
		}
	}
	return out, nil
}

// fragMsg ships one (spec, shard)'s freshly sealed epoch fragments and the
// shard's new flush watermark to the coordinator.
type fragMsg struct {
	Spec  int64
	Shard int
	Wm    int64
	Frags []*window.Frag
}

func marshalFragMsg(m fragMsg) []byte {
	b := binary.AppendVarint(nil, m.Spec)
	b = binary.AppendUvarint(b, uint64(m.Shard))
	b = binary.AppendVarint(b, m.Wm)
	b = binary.AppendUvarint(b, uint64(len(m.Frags)))
	for _, f := range m.Frags {
		b = window.MarshalFrag(b, f)
	}
	return b
}

func unmarshalFragMsg(src []byte) (fragMsg, error) {
	var m fragMsg
	var err error
	if m.Spec, src, err = bat.ReadVarint(src); err != nil {
		return m, fmt.Errorf("fabric: frag spec: %w", err)
	}
	sh, src, err := bat.ReadUvarint(src)
	if err != nil {
		return m, fmt.Errorf("fabric: frag shard: %w", err)
	}
	m.Shard = int(sh)
	if m.Wm, src, err = bat.ReadVarint(src); err != nil {
		return m, fmt.Errorf("fabric: frag wm: %w", err)
	}
	n, src, err := bat.ReadUvarint(src)
	if err != nil || n > uint64(len(src))+1 {
		return m, fmt.Errorf("fabric: frag count")
	}
	m.Frags = make([]*window.Frag, n)
	for i := range m.Frags {
		if m.Frags[i], src, err = window.UnmarshalFrag(src); err != nil {
			return m, fmt.Errorf("fabric: frag %d: %w", i, err)
		}
	}
	return m, nil
}

// readUvarints decodes n consecutive uvarints (the byte-level primitives
// themselves live in bat's codec, shared with the window codec).
func readUvarints(src []byte, n int) ([]uint64, []byte, error) {
	out := make([]uint64, n)
	var err error
	for i := range out {
		if out[i], src, err = bat.ReadUvarint(src); err != nil {
			return nil, nil, err
		}
	}
	return out, src, nil
}
