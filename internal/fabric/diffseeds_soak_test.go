//go:build soak

package fabric_test

// Full differential sweep, run out-of-band: go test -tags soak -run
// TestFabricDifferential ./internal/fabric/
const differentialSeeds = 512
