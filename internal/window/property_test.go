package window

import (
	"math/rand"
	"testing"
	"testing/quick"

	"datacell/internal/bat"
	"datacell/internal/plan"
)

// Property: for tuple windows, the concatenation of all closed basic
// windows plus the open buffer equals the input stream, in order, and
// every closed basic window has exactly Slide tuples.
func TestQuickTupleSlicerPartition(t *testing.T) {
	f := func(raw []int16, slideRaw uint8, batchRaw uint8) bool {
		slide := int64(slideRaw%7) + 1
		batch := int(batchRaw%5) + 1
		w := &plan.Window{Tuples: true, Size: slide * 4, Slide: slide}
		s := NewSlicer(w, sch())

		var vals []int64
		for _, x := range raw {
			vals = append(vals, int64(x))
		}
		var closed []*BW
		for pos := 0; pos < len(vals); pos += batch {
			hi := pos + batch
			if hi > len(vals) {
				hi = len(vals)
			}
			c := bat.NewChunk(sch())
			var arr bat.Ints
			for _, v := range vals[pos:hi] {
				_ = c.AppendRow(bat.TimeValue(v), bat.IntValue(v))
				arr = append(arr, v)
			}
			closed = append(closed, s.Push(c, arr)...)
		}
		var rebuilt []int64
		for _, bw := range closed {
			if bw.Data.Rows() != int(slide) {
				return false
			}
			for i := 0; i < bw.Data.Rows(); i++ {
				rebuilt = append(rebuilt, bw.Data.Row(i)[1].I)
			}
		}
		if s.Pending() != len(vals)-len(rebuilt) {
			return false
		}
		for i, v := range rebuilt {
			if vals[i] != v {
				return false
			}
		}
		// Generations are consecutive from zero.
		for i, bw := range closed {
			if bw.Gen != int64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: for time windows over monotone timestamps, every tuple lands
// in the bucket floor(ts/slide), and buckets close in order with no gaps.
func TestQuickTimeSlicerBuckets(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 100; iter++ {
		slide := int64(1+rng.Intn(5)) * 1000
		w := &plan.Window{
			Tuples: false, TimeIdx: 0,
			Range:    4 * 1000 * 1000, // nanoseconds irrelevant; Parts unused here
			SlideDur: 1,
		}
		// Build the slicer manually around the slide in µs.
		s := NewSlicer(w, sch())
		s.slideUsec = slide

		n := rng.Intn(60)
		ts := make([]int64, n)
		cur := int64(rng.Intn(int(slide)))
		for i := range ts {
			cur += int64(rng.Intn(int(slide)))
			ts[i] = cur
		}
		var closed []*BW
		for _, x := range ts {
			c := bat.NewChunk(sch())
			_ = c.AppendRow(bat.TimeValue(x), bat.IntValue(x))
			closed = append(closed, s.Push(c, bat.Ints{x})...)
		}
		closed = append(closed, s.AdvanceTime(cur+10*slide)...)

		// Rebuild bucket assignment and compare.
		want := map[int64][]int64{}
		for _, x := range ts {
			want[x/slide] = append(want[x/slide], x)
		}
		if n > 0 {
			first := ts[0] / slide
			for gi, bw := range closed {
				bucket := first + int64(gi)
				rows := bw.Data.Rows()
				if len(want[bucket]) != rows {
					t.Fatalf("iter %d: bucket %d has %d rows, want %d",
						iter, bucket, rows, len(want[bucket]))
				}
				for i := 0; i < rows; i++ {
					if bw.Data.Row(i)[1].I != want[bucket][i] {
						t.Fatalf("iter %d: bucket %d row %d mismatch", iter, bucket, i)
					}
				}
			}
		}
	}
}

// Property: a ring holding n basic windows always reports the last n
// pushed, in push order.
func TestQuickRingKeepsLastN(t *testing.T) {
	f := func(total uint8, capRaw uint8) bool {
		n := int(capRaw%6) + 1
		r := NewRing(n)
		pushed := int(total % 40)
		for i := 0; i < pushed; i++ {
			r.Push(&BW{Gen: int64(i)})
		}
		live := r.Live()
		wantLen := pushed
		if wantLen > n {
			wantLen = n
		}
		if len(live) != wantLen {
			return false
		}
		for i, bw := range live {
			if bw.Gen != int64(pushed-wantLen+i) {
				return false
			}
		}
		return r.Full() == (pushed >= n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
