package window

import (
	"encoding/binary"
	"fmt"

	"datacell/internal/bat"
)

// Canonical wire encoding of sealed basic windows and per-shard epoch
// fragments — the payload the distributed shard fabric ships from worker
// processes to the coordinator. Both encodings are self-describing (the
// column chunks carry their schemas) and decoding always allocates fresh
// vectors, so ownership transfers refcount-safely across the process
// boundary: the sender may release or reuse its buffers the moment the
// bytes are written, and the decoded window owns everything it references
// (BW.Free starts nil — the receiver decides its sharing discipline).

// chunk presence flags in the BW encoding.
const (
	bwHasData byte = 1 << iota
	bwHasOut
	bwHasPartial
)

// MarshalBW appends the wire encoding of a sealed basic window to dst:
// generation, max arrival stamp, and whichever of the Data/Out/Partial
// column chunks are present. Merged/Final views and the Free hook are
// deliberately not encoded — they are coordinator-side sharing state.
func MarshalBW(dst []byte, bw *BW) []byte {
	dst = binary.AppendVarint(dst, bw.Gen)
	dst = binary.AppendVarint(dst, bw.MaxArrival)
	var flags byte
	if bw.Data != nil {
		flags |= bwHasData
	}
	if bw.Out != nil {
		flags |= bwHasOut
	}
	if bw.Partial != nil {
		flags |= bwHasPartial
	}
	dst = append(dst, flags)
	if bw.Data != nil {
		dst = bat.MarshalChunk(dst, bw.Data)
	}
	if bw.Out != nil {
		dst = bat.MarshalChunk(dst, bw.Out)
	}
	if bw.Partial != nil {
		dst = bat.MarshalChunk(dst, bw.Partial)
	}
	return dst
}

// UnmarshalBW decodes a basic window from src, returning the remainder.
// The window owns freshly allocated chunks; Free is nil.
func UnmarshalBW(src []byte) (*BW, []byte, error) {
	bw := &BW{}
	var err error
	bw.Gen, src, err = bat.ReadVarint(src)
	if err != nil {
		return nil, nil, fmt.Errorf("window: BW gen: %w", err)
	}
	bw.MaxArrival, src, err = bat.ReadVarint(src)
	if err != nil {
		return nil, nil, fmt.Errorf("window: BW arrival: %w", err)
	}
	if len(src) == 0 {
		return nil, nil, fmt.Errorf("window: BW flags: short buffer")
	}
	flags := src[0]
	src = src[1:]
	if flags&bwHasData != 0 {
		if bw.Data, src, err = bat.UnmarshalChunk(src); err != nil {
			return nil, nil, fmt.Errorf("window: BW data: %w", err)
		}
	}
	if flags&bwHasOut != 0 {
		if bw.Out, src, err = bat.UnmarshalChunk(src); err != nil {
			return nil, nil, fmt.Errorf("window: BW out: %w", err)
		}
	}
	if flags&bwHasPartial != 0 {
		if bw.Partial, src, err = bat.UnmarshalChunk(src); err != nil {
			return nil, nil, fmt.Errorf("window: BW partial: %w", err)
		}
	}
	return bw, src, nil
}

// MarshalFrag appends the wire encoding of one shard's epoch fragment to
// dst: epoch, shard index, max arrival stamp and the raw tuple chunk.
// Per-fragment intermediates (Out/Partial) are not encoded — the fabric
// ships raw windows and lets the coordinator's sharing stack (operator
// DAG, merge classes) evaluate pipelines once per window across members.
func MarshalFrag(dst []byte, f *Frag) []byte {
	dst = binary.AppendVarint(dst, f.Gen)
	dst = binary.AppendVarint(dst, int64(f.Shard))
	dst = binary.AppendVarint(dst, f.MaxArrival)
	return bat.MarshalChunk(dst, f.Data)
}

// UnmarshalFrag decodes a fragment from src, returning the remainder. The
// fragment owns a freshly allocated chunk.
func UnmarshalFrag(src []byte) (*Frag, []byte, error) {
	f := &Frag{}
	var err error
	f.Gen, src, err = bat.ReadVarint(src)
	if err != nil {
		return nil, nil, fmt.Errorf("window: frag gen: %w", err)
	}
	shard, src, err := bat.ReadVarint(src)
	if err != nil {
		return nil, nil, fmt.Errorf("window: frag shard: %w", err)
	}
	f.Shard = int(shard)
	f.MaxArrival, src, err = bat.ReadVarint(src)
	if err != nil {
		return nil, nil, fmt.Errorf("window: frag arrival: %w", err)
	}
	if f.Data, src, err = bat.UnmarshalChunk(src); err != nil {
		return nil, nil, fmt.Errorf("window: frag data: %w", err)
	}
	return f, src, nil
}
