package window

import (
	"sort"

	"datacell/internal/bat"
	"datacell/internal/plan"
)

// Frag is one shard's contribution to a basic window: the shard-local
// slice of epoch Gen, plus whatever per-fragment intermediates the factory
// computed for it (the parallel half of the paper's incremental mode).
type Frag struct {
	// Gen is the epoch: for tuple windows the global basic-window number
	// (sequence / slide); for time windows the absolute slide bucket
	// (⌊ts/slide⌋).
	Gen int64
	// Shard is the global shard index that produced the fragment. ShardMerge
	// stamps it on Offer; merged basic windows concatenate an epoch's
	// fragments in shard order, so window contents are deterministic no
	// matter which shard (or which process, over the fabric) delivered
	// first.
	Shard int
	// Data holds the shard's raw tuples of the epoch.
	Data *bat.Chunk
	// MaxArrival is the newest arrival stamp among the rows.
	MaxArrival int64
	// Out is the per-fragment pipeline output (incremental mode); computed
	// by the firing shard in parallel with other shards.
	Out *bat.Chunk
	// Partial is the per-fragment partial aggregate (incremental mode,
	// aggregate plans).
	Partial *bat.Chunk
}

// ShardSlicer cuts one shard's arriving rows into per-epoch fragments
// using globally assigned boundaries: tuple windows bucket rows by their
// global sequence stamp, time windows by the ordering attribute. Because
// the boundaries are global, the union of all shards' epoch-g fragments is
// exactly the basic window g that the single-basket engine would cut —
// the shard-merge window-semantics invariant.
//
// Epochs may be buffered sparsely (a shard sees only the rows hashed to
// it) and out of order (concurrent producers settle ranges out of order);
// Flush seals every epoch below the caller-provided watermark, after which
// rows for sealed epochs can no longer arrive (tuple windows) or are
// clamped into the shard's newest seen epoch (late time-window tuples).
type ShardSlicer struct {
	w         *plan.Window
	schema    bat.Schema
	slideUsec int64
	nextGen   int64 // all gens < nextGen have been flushed
	maxGen    int64 // newest epoch that has received a row
	open      map[int64]*openFrag
	// pre, when set, filters each row run before it is buffered into its
	// epoch (slice-time predicate pushdown): non-qualifying rows never
	// enter a window view. Epoch assignment, watermarks and MaxArrival are
	// computed over the full pre-filter arrivals, so window boundaries and
	// latency metadata stay byte-identical to an unfiltered slicer; only
	// the buffered rows shrink. Installed by factories whose pipeline
	// starts with eligible filters; never set on fabric-fed or
	// re-evaluation slicers, which need the raw window.
	pre func(*bat.Chunk) *bat.Chunk
}

type openFrag struct {
	data   *bat.Chunk
	maxArr int64
}

// NewShardSlicer builds a shard-local slicer for a stream scan's bound
// window.
func NewShardSlicer(w *plan.Window, schema bat.Schema) *ShardSlicer {
	s := &ShardSlicer{w: w, schema: schema, open: make(map[int64]*openFrag)}
	if !w.Tuples {
		s.slideUsec = w.SlideDur.Microseconds()
		// Time epochs are absolute slide buckets, which may start below
		// zero; tuple epochs start at sequence 0.
		s.nextGen = minGen
		s.maxGen = minGen
	}
	return s
}

// TimeGen maps an event timestamp (µs) to its slide bucket — the sealing
// watermark for a time window whose newest observed timestamp is ts.
func (s *ShardSlicer) TimeGen(ts int64) int64 { return floorDiv(ts, s.slideUsec) }

// genOf maps a row to its epoch.
func (s *ShardSlicer) genOf(seq, ts int64) int64 {
	if s.w.Tuples {
		return seq / s.w.Slide
	}
	return floorDiv(ts, s.slideUsec)
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// Push buckets newly drained rows into their epochs. seqs are the rows'
// global sequence stamps (used by tuple windows); time windows read the
// ordering attribute. Out-of-order time tuples clamp into the shard's
// newest seen epoch (never below the flushed watermark), matching the
// single-basket slicer's late-tuple rule.
func (s *ShardSlicer) Push(c *bat.Chunk, arrivals bat.Ints, seqs bat.Ints) {
	rows := c.Rows()
	if rows == 0 {
		return
	}
	var ts []int64
	if !s.w.Tuples {
		ts = bat.AsInts(c.Cols[s.w.TimeIdx])
	}
	// Run-length batching: consecutive rows almost always share an epoch.
	runStart := 0
	runGen := s.rowGen(0, seqs, ts)
	for i := 1; i <= rows; i++ {
		var g int64
		if i < rows {
			g = s.rowGen(i, seqs, ts)
			if g == runGen {
				continue
			}
		}
		s.bucket(runGen, c.Slice(runStart, i), arrivals[runStart:i])
		runStart, runGen = i, g
	}
}

func (s *ShardSlicer) rowGen(i int, seqs, ts []int64) int64 {
	var g int64
	if s.w.Tuples {
		// Sequence stamps are exact: a sealed epoch can never receive a
		// row (settled-watermark guarantee), so no clamping is possible.
		return s.genOf(seqs[i], 0)
	}
	g = s.genOf(0, ts[i])
	// Late time tuples clamp into the newest epoch this shard has seen —
	// the single-basket slicer's rule (it folds out-of-order rows into
	// its current open bucket), which keeps the default 1-shard engine's
	// window assignment bit-identical to the pre-sharding engine. The
	// flushed watermark is a floor: rows below it have nowhere older to
	// go.
	if g < s.maxGen {
		g = s.maxGen
	}
	if g < s.nextGen {
		g = s.nextGen
	}
	if g > s.maxGen {
		s.maxGen = g
	}
	return g
}

// SetPrefilter installs a slice-time pushdown filter (see the pre field).
// Set before the first Push; the slicer applies it to every buffered run.
func (s *ShardSlicer) SetPrefilter(f func(*bat.Chunk) *bat.Chunk) { s.pre = f }

func (s *ShardSlicer) bucket(gen int64, c *bat.Chunk, arrivals []int64) {
	if s.pre != nil {
		c = s.pre(c)
	}
	f := s.open[gen]
	if f == nil {
		f = &openFrag{data: bat.NewChunk(s.schema)}
		s.open[gen] = f
	}
	f.data.AppendChunk(c)
	// MaxArrival spans the epoch's full pre-filter arrivals: the latency
	// a result reports must not change because its trigger row was
	// filtered out early.
	for _, a := range arrivals {
		if a > f.maxArr {
			f.maxArr = a
		}
	}
}

// Flush seals every epoch below wmGen, returning the shard's non-empty
// fragments in epoch order and advancing the slicer's watermark. Epochs
// with no local rows produce no fragment — the merge layer's per-shard
// watermark stands in for them.
func (s *ShardSlicer) Flush(wmGen int64) []*Frag {
	if wmGen <= s.nextGen {
		return nil
	}
	var gens []int64
	for g := range s.open {
		if g < wmGen {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	var out []*Frag
	for _, g := range gens {
		f := s.open[g]
		delete(s.open, g)
		out = append(out, &Frag{Gen: g, Data: f.data, MaxArrival: f.maxArr})
	}
	s.nextGen = wmGen
	return out
}

// Watermark reports the exclusive flush watermark: every epoch below it
// has been sealed by this shard.
func (s *ShardSlicer) Watermark() int64 { return s.nextGen }

// SlicerState is a transferable image of a slicer's position and open
// (unsealed) epochs — what a fabric worker persists per (shard, spec) in
// its snapshot and ships during an elastic shard handoff.
type SlicerState struct {
	NextGen int64
	MaxGen  int64
	Open    []OpenEpoch // sorted by Gen
}

// OpenEpoch is one buffered, not-yet-sealed epoch fragment.
type OpenEpoch struct {
	Gen        int64
	MaxArrival int64
	Data       *bat.Chunk
}

// ExportState captures the slicer's watermarks and open epochs. The
// epoch chunks are views (Slice) over the slicer's buffers: stable
// against a concurrent bucket() growing the originals, so the caller may
// marshal them outside whatever lock serializes Push/Flush.
func (s *ShardSlicer) ExportState() SlicerState {
	st := SlicerState{NextGen: s.nextGen, MaxGen: s.maxGen}
	for g, f := range s.open {
		st.Open = append(st.Open, OpenEpoch{
			Gen:        g,
			MaxArrival: f.maxArr,
			Data:       f.data.Slice(0, f.data.Rows()),
		})
	}
	sort.Slice(st.Open, func(i, j int) bool { return st.Open[i].Gen < st.Open[j].Gen })
	return st
}

// NewShardSlicerFromState rebuilds a slicer from an exported image,
// adopting the state's chunks (pass a decoded, freshly allocated state).
func NewShardSlicerFromState(w *plan.Window, schema bat.Schema, st SlicerState) *ShardSlicer {
	s := NewShardSlicer(w, schema)
	s.nextGen, s.maxGen = st.NextGen, st.MaxGen
	for _, e := range st.Open {
		data := e.Data
		if data == nil {
			data = bat.NewChunk(schema)
		}
		s.open[e.Gen] = &openFrag{data: data, maxArr: e.MaxArrival}
	}
	return s
}

// Pending reports how many rows are buffered in open epochs.
func (s *ShardSlicer) Pending() int {
	n := 0
	for _, f := range s.open {
		n += f.data.Rows()
	}
	return n
}

// MergeConfig describes how ShardMerge assembles per-shard fragments into
// merged basic windows.
type MergeConfig struct {
	// Shards is the number of contributing shards.
	Shards int
	// Data is the stream schema (used for empty basic windows).
	Data bat.Schema
	// KeepData concatenates the fragments' raw tuples into BW.Data
	// (re-evaluation mode needs the raw window; incremental mode only
	// needs the cached intermediates).
	KeepData bool
	// Out, when non-nil, concatenates the fragments' pipeline outputs
	// into BW.Out with this schema (incremental mode).
	Out *bat.Schema
	// Partial, when non-nil, concatenates the fragments' partial
	// aggregates into BW.Partial with this schema (incremental aggregate
	// plans). Partials merge by concatenation because MergeAggregate
	// re-aggregates by group — per-shard partials are just more rows of
	// the same partial layout.
	Partial *bat.Schema
}

// ShardMerge assembles per-shard fragments into complete basic windows at
// epoch boundaries. Each shard reports a monotone flush watermark; an
// epoch is complete once every shard's watermark has passed it, at which
// point no shard can contribute further rows to it. Completed epochs are
// emitted in order with consecutive output generations, so the downstream
// ring/join-cache machinery is oblivious to sharding. The caller
// serializes access (the factory's per-input merge lock).
type ShardMerge struct {
	cfg     MergeConfig
	wms     []int64 // per-shard exclusive flush watermark
	frags   map[int64][]*Frag
	started bool
	next    int64 // next absolute epoch to emit
	outGen  int64 // consecutive output generation counter
}

// NewShardMerge builds a merger.
func NewShardMerge(cfg MergeConfig) *ShardMerge {
	m := &ShardMerge{cfg: cfg, frags: make(map[int64][]*Frag)}
	m.wms = make([]int64, cfg.Shards)
	for i := range m.wms {
		m.wms[i] = minGen
	}
	return m
}

const minGen = int64(-1 << 62)

// Offer delivers a shard's freshly flushed fragments together with its new
// watermark and returns any basic windows that became complete, oldest
// first.
func (m *ShardMerge) Offer(shard int, frags []*Frag, wm int64) []*BW {
	if wm > m.wms[shard] {
		m.wms[shard] = wm
	}
	for _, f := range frags {
		f.Shard = shard
		// Insert in shard order (at most one fragment per shard per epoch),
		// so buildBW concatenates deterministically regardless of delivery
		// order — the invariant that keeps a fabric run byte-identical to a
		// single-process run.
		fs := m.frags[f.Gen]
		pos := len(fs)
		for pos > 0 && fs[pos-1].Shard > shard {
			pos--
		}
		fs = append(fs, nil)
		copy(fs[pos+1:], fs[pos:])
		fs[pos] = f
		m.frags[f.Gen] = fs
	}
	sealed := m.wms[0]
	for _, w := range m.wms[1:] {
		if w < sealed {
			sealed = w
		}
	}
	if !m.started {
		// The merged stream starts at the earliest epoch holding data,
		// like the single-basket slicer starting at its first row's
		// bucket.
		first := minGen
		for g := range m.frags {
			if first == minGen || g < first {
				first = g
			}
		}
		if first == minGen || first >= sealed {
			return nil
		}
		m.next, m.started = first, true
	}
	var out []*BW
	for m.next < sealed {
		out = append(out, m.buildBW(m.next))
		m.next++
	}
	return out
}

// buildBW concatenates epoch g's fragments (possibly none — a time gap)
// into one merged basic window.
func (m *ShardMerge) buildBW(g int64) *BW {
	frags := m.frags[g]
	delete(m.frags, g)
	bw := &BW{Gen: m.outGen, Data: bat.NewChunk(m.cfg.Data)}
	m.outGen++
	if m.cfg.Out != nil {
		bw.Out = bat.NewChunk(*m.cfg.Out)
	}
	if m.cfg.Partial != nil {
		bw.Partial = bat.NewChunk(*m.cfg.Partial)
	}
	for _, f := range frags {
		if m.cfg.KeepData {
			bw.Data.AppendChunk(f.Data)
		}
		if f.MaxArrival > bw.MaxArrival {
			bw.MaxArrival = f.MaxArrival
		}
		if m.cfg.Out != nil && f.Out != nil {
			bw.Out.AppendChunk(f.Out)
		}
		if m.cfg.Partial != nil && f.Partial != nil {
			bw.Partial.AppendChunk(f.Partial)
		}
	}
	return bw
}
