package window

import (
	"fmt"
	"testing"

	"datacell/internal/bat"
	"datacell/internal/plan"
)

// jcFixture builds a single-int-key equi-join over (k, v) inputs and a BW
// factory whose Out chunks carry predictable keys: basic window g holds
// keys g and g+1, so adjacent generations overlap and every pair joins at
// least one row.
func jcFixture() (*plan.Join, func(gen int64) *BW) {
	in := bat.NewSchema([]string{"k", "v"}, []bat.Kind{bat.Int, bat.Int})
	out := bat.NewSchema([]string{"lk", "lv", "rk", "rv"},
		[]bat.Kind{bat.Int, bat.Int, bat.Int, bat.Int})
	join := &plan.Join{LKeys: []int{0}, RKeys: []int{0}, Out: out}
	mk := func(gen int64) *BW {
		c := &bat.Chunk{Schema: in, Cols: []bat.Vector{
			bat.Ints{gen, gen + 1}, bat.Ints{gen * 10, gen*10 + 1},
		}}
		return &BW{Gen: gen, Out: c}
	}
	return join, mk
}

// TestJoinCacheEvictionOnSlide drives the ring protocol — add a new basic
// window per slide, evict the expired one — and checks the pair set stays
// exactly the live cross product, with evicted results' buffers released
// eagerly.
func TestJoinCacheEvictionOnSlide(t *testing.T) {
	join, mk := jcFixture()
	jc := NewJoinCache(join)
	const parts = 3
	var lefts, rights []*BW
	for g := int64(0); g < 8; g++ {
		l, r := mk(g), mk(g)
		lefts, rights = append(lefts, l), append(rights, r)
		jc.AddLeft(l, rights)
		jc.AddRight(r, lefts)
		if len(lefts) > parts {
			evL, evR := lefts[0], rights[0]
			lefts, rights = lefts[1:], rights[1:]
			c, ok := jc.Get(evL.Gen, evR.Gen)
			if !ok {
				t.Fatalf("gen %d: pair (%d,%d) missing before eviction", g, evL.Gen, evR.Gen)
			}
			jc.EvictLeft(evL.Gen)
			jc.EvictRight(evR.Gen)
			if c.Cols != nil {
				t.Fatalf("gen %d: evicted pair result still holds its buffers", g)
			}
		}
		want := len(lefts) * len(rights)
		if jc.Pairs() != want {
			t.Fatalf("gen %d: pairs = %d, want %d (live cross product)", g, jc.Pairs(), want)
		}
		for _, l := range lefts {
			for _, r := range rights {
				if _, ok := jc.Get(l.Gen, r.Gen); !ok {
					t.Fatalf("gen %d: live pair (%d,%d) evicted", g, l.Gen, r.Gen)
				}
			}
		}
	}
}

// TestJoinCacheMergedDeterminism: Merged must concatenate the live pairs
// in (leftGen, rightGen) order regardless of cache insertion order, so
// repeated merges — and merges after re-adding the same windows — render
// identically.
func TestJoinCacheMergedDeterminism(t *testing.T) {
	join, mk := jcFixture()
	lefts := []*BW{mk(0), mk(1), mk(2)}
	rights := []*BW{mk(0), mk(1), mk(2)}

	forward := NewJoinCache(join)
	for _, l := range lefts {
		forward.AddLeft(l, rights)
	}
	backward := NewJoinCache(join)
	for i := len(rights) - 1; i >= 0; i-- {
		backward.AddRight(rights[i], lefts)
	}
	a := forward.Merged(lefts, rights).String()
	b := backward.Merged(lefts, rights).String()
	if a != b {
		t.Fatalf("Merged depends on insertion order:\nforward:\n%s\nbackward:\n%s", a, b)
	}
	if c := forward.Merged(lefts, rights).String(); c != a {
		t.Fatal("repeated Merged diverged")
	}
	if a == "" || forward.Pairs() != 9 {
		t.Fatalf("unexpected merge state: pairs=%d", forward.Pairs())
	}
}

// TestJoinCacheNoRecompute: surviving pairs must never be re-joined —
// Computed counts only first-time pair evaluations, staying flat across
// redundant Adds and any number of Merged calls.
func TestJoinCacheNoRecompute(t *testing.T) {
	join, mk := jcFixture()
	jc := NewJoinCache(join)
	lefts := []*BW{mk(0), mk(1)}
	rights := []*BW{mk(0), mk(1)}
	for _, l := range lefts {
		jc.AddLeft(l, rights)
	}
	if jc.Computed() != 4 {
		t.Fatalf("computed = %d, want 4", jc.Computed())
	}
	for _, r := range rights {
		jc.AddRight(r, lefts) // every pair already cached
	}
	for i := 0; i < 3; i++ {
		_ = jc.Merged(lefts, rights)
	}
	if jc.Computed() != 4 {
		t.Fatalf("computed grew to %d on surviving pairs", jc.Computed())
	}
	// A slide: one eviction, one new window per side. Only the new row and
	// column of pairs are computed.
	jc.EvictLeft(0)
	jc.EvictRight(0)
	l2, r2 := mk(2), mk(2)
	lefts, rights = []*BW{lefts[1], l2}, []*BW{rights[1], r2}
	jc.AddLeft(l2, rights[:1])
	jc.AddRight(r2, lefts)
	if jc.Computed() != 4+3 {
		t.Fatalf("computed = %d after slide, want 7", jc.Computed())
	}
	if jc.Pairs() != 4 {
		t.Fatalf("pairs = %d after slide, want 4", jc.Pairs())
	}
}

// TestJoinCacheEvictThrough: watermark eviction sweeps every generation
// at or below the thresholds and tolerates already-evicted prefixes.
func TestJoinCacheEvictThrough(t *testing.T) {
	join, mk := jcFixture()
	jc := NewJoinCache(join)
	var lefts, rights []*BW
	for g := int64(0); g < 6; g++ {
		lefts, rights = append(lefts, mk(g)), append(rights, mk(g))
	}
	for _, l := range lefts {
		jc.AddLeft(l, rights)
	}
	jc.EvictThrough(2, 1)
	for _, l := range lefts {
		for _, r := range rights {
			_, ok := jc.Get(l.Gen, r.Gen)
			want := l.Gen > 2 && r.Gen > 1
			if ok != want {
				t.Fatalf("pair (%d,%d) cached=%v, want %v", l.Gen, r.Gen, ok, want)
			}
		}
	}
	jc.EvictThrough(2, 1) // idempotent on the already-swept prefix
	if jc.Pairs() != 3*4 {
		t.Fatalf("pairs = %d, want 12", jc.Pairs())
	}
}

// TestSharedPairCacheProtocol drives the group-level wrapper: per-member
// evictions are no-ops, watermarks evict by the widest member's extent,
// stale re-adds after a pause are not cached, and MergedEnsure recomputes
// expired pairs transiently with identical output.
func TestSharedPairCacheProtocol(t *testing.T) {
	join, mk := jcFixture()
	pc := NewSharedPairCache(join)
	pc.Retain(2) // narrow member
	pc.Retain(3) // widest member wins
	var lefts, rights []*BW
	for g := int64(0); g < 6; g++ {
		l, r := mk(g), mk(g)
		lefts, rights = append(lefts, l), append(rights, r)
		pc.AddLeft(l, rights)
		pc.AddRight(r, lefts)
		pc.EvictLeft(g - 3) // member-driven eviction must be a no-op
	}
	// Horizon 3 behind newest gen 5: generations ≤ 2 expired.
	for _, l := range lefts {
		for _, r := range rights {
			_, ok := pc.jc.Get(l.Gen, r.Gen)
			want := l.Gen > 2 && r.Gen > 2
			if ok != want {
				t.Fatalf("pair (%d,%d) cached=%v, want %v", l.Gen, r.Gen, ok, want)
			}
		}
	}
	// A lagging member merges a window the cache expired: identical output
	// to a private cache over the same windows, via transient recompute.
	lagL, lagR := lefts[1:4], rights[1:4]
	priv := NewJoinCache(join)
	for _, l := range lagL {
		priv.AddLeft(l, lagR)
	}
	got := pc.Merged(lagL, lagR).String()
	want := priv.Merged(lagL, lagR).String()
	if got != want {
		t.Fatalf("lagging merge diverges:\nshared:\n%s\nprivate:\n%s", got, want)
	}
	pairs := pc.Pairs()
	// The recomputed stale pairs must not have been cached.
	if pc.Pairs() != pairs || func() bool { _, ok := pc.jc.Get(1, 1); return ok }() {
		t.Fatal("stale pairs were cached by MergedEnsure")
	}
	// And a stale Add is skipped outright.
	pc.AddLeft(lefts[0], rights)
	if _, ok := pc.jc.Get(0, 5); ok {
		t.Fatal("stale AddLeft cached a pair behind the watermark")
	}
}

// TestJoinCacheMergedOrder pins the exact concatenation order: left-major
// over the caller's window order.
func TestJoinCacheMergedOrder(t *testing.T) {
	join, mk := jcFixture()
	jc := NewJoinCache(join)
	lefts := []*BW{mk(0), mk(1)}
	rights := []*BW{mk(0), mk(1)}
	for _, l := range lefts {
		jc.AddLeft(l, rights)
	}
	m := jc.Merged(lefts, rights)
	var keys []string
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		keys = append(keys, fmt.Sprintf("%s-%s", row[0], row[2]))
	}
	// Pair (0,0) joins keys {0,1}∩{0,1} twice... assert monotone pair
	// blocks: lk of row i never decreases, and within equal lk the rk is
	// non-decreasing block-wise.
	lastPair := ""
	seen := map[string]bool{}
	for _, k := range keys {
		if k != lastPair && seen[k] {
			t.Fatalf("pair block %s split: %v", k, keys)
		}
		seen[k] = true
		lastPair = k
	}
}
