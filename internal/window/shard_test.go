package window

import (
	"testing"
	"time"

	"datacell/internal/bat"
	"datacell/internal/plan"
)

func shardSchema() bat.Schema {
	return bat.NewSchema([]string{"ts", "v"}, []bat.Kind{bat.Time, bat.Int})
}

func shardChunk(ts ...int64) *bat.Chunk {
	c := bat.NewChunk(shardSchema())
	for _, t := range ts {
		_ = c.AppendRow(bat.TimeValue(t), bat.IntValue(t))
	}
	return c
}

func seqsOf(vals ...int64) bat.Ints { return bat.Ints(vals) }

func TestShardSlicerTupleEpochs(t *testing.T) {
	w := &plan.Window{Tuples: true, Size: 4, Slide: 2}
	s := NewShardSlicer(w, shardSchema())
	// This shard holds global rows 0, 3, 4 (rows 1, 2, 5 went elsewhere).
	s.Push(shardChunk(10, 13, 14), seqsOf(1, 1, 1), seqsOf(0, 3, 4))
	if got := s.Pending(); got != 3 {
		t.Fatalf("pending = %d", got)
	}
	// Watermark 2 (settled=4, slide=2): seals epochs 0 and 1.
	frags := s.Flush(2)
	if len(frags) != 2 || frags[0].Gen != 0 || frags[1].Gen != 1 {
		t.Fatalf("frags = %+v", frags)
	}
	if frags[0].Data.Rows() != 1 || frags[1].Data.Rows() != 1 {
		t.Fatalf("fragment sizes wrong: %d, %d", frags[0].Data.Rows(), frags[1].Data.Rows())
	}
	if s.Watermark() != 2 {
		t.Errorf("watermark = %d", s.Watermark())
	}
	// Epoch 2 (seq 4) still open; re-flushing at the same watermark is a
	// no-op.
	if got := s.Flush(2); got != nil {
		t.Errorf("re-flush produced %v", got)
	}
	if got := s.Flush(3); len(got) != 1 || got[0].Gen != 2 {
		t.Errorf("epoch 2 flush = %v", got)
	}
}

func TestShardSlicerTimeBucketsAndClamp(t *testing.T) {
	w := &plan.Window{Range: 2 * time.Second, SlideDur: time.Second, TimeIdx: 0}
	s := NewShardSlicer(w, shardSchema())
	sec := int64(1_000_000)
	s.Push(shardChunk(sec/2, sec+sec/2), seqsOf(1, 2), seqsOf(0, 1))
	frags := s.Flush(s.TimeGen(sec + sec/2))
	if len(frags) != 1 || frags[0].Gen != 0 {
		t.Fatalf("frags = %+v", frags)
	}
	// A late tuple for the flushed bucket 0 clamps into the oldest open
	// epoch (bucket 1), like the single-basket slicer.
	s.Push(shardChunk(sec/4), seqsOf(3), seqsOf(2))
	frags = s.Flush(3)
	if len(frags) != 1 || frags[0].Gen != 1 || frags[0].Data.Rows() != 2 {
		t.Fatalf("clamped frags = %+v", frags)
	}
}

func TestShardMergeCompletesAtMinWatermark(t *testing.T) {
	sch := shardSchema()
	m := NewShardMerge(MergeConfig{Shards: 2, Data: sch, KeepData: true})
	// Shard 0 delivers epoch 0 data and watermark 1; epoch 0 is not
	// complete until shard 1's watermark passes it too.
	bws := m.Offer(0, []*Frag{{Gen: 0, Data: shardChunk(1, 2), MaxArrival: 5}}, 1)
	if bws != nil {
		t.Fatalf("completed before min watermark: %v", bws)
	}
	bws = m.Offer(1, []*Frag{{Gen: 0, Data: shardChunk(3), MaxArrival: 9}}, 1)
	if len(bws) != 1 || bws[0].Gen != 0 || bws[0].Data.Rows() != 3 || bws[0].MaxArrival != 9 {
		t.Fatalf("merged bw = %+v", bws)
	}
	// Gap epochs below the joint watermark emit empty basic windows with
	// consecutive generations.
	m.Offer(0, nil, 4)
	bws = m.Offer(1, []*Frag{{Gen: 3, Data: shardChunk(7)}}, 4)
	if len(bws) != 3 {
		t.Fatalf("gap fill: %d bws, want 3", len(bws))
	}
	if bws[0].Gen != 1 || bws[0].Data.Rows() != 0 || bws[2].Gen != 3 || bws[2].Data.Rows() != 1 {
		t.Fatalf("gap bws = %+v", bws)
	}
}

func TestShardMergeStartsAtFirstEpoch(t *testing.T) {
	sch := shardSchema()
	m := NewShardMerge(MergeConfig{Shards: 2, Data: sch, KeepData: true})
	// Time windows start at an absolute bucket (here 10); the merged
	// stream renumbers output generations from 0.
	m.Offer(0, []*Frag{{Gen: 10, Data: shardChunk(1)}}, 12)
	bws := m.Offer(1, nil, 12)
	if len(bws) != 2 || bws[0].Gen != 0 || bws[1].Gen != 1 {
		t.Fatalf("bws = %+v", bws)
	}
	if bws[0].Data.Rows() != 1 || bws[1].Data.Rows() != 0 {
		t.Fatalf("bw contents wrong")
	}
}

func TestShardMergeConcatsIntermediates(t *testing.T) {
	sch := shardSchema()
	outSch := bat.NewSchema([]string{"v"}, []bat.Kind{bat.Int})
	m := NewShardMerge(MergeConfig{Shards: 2, Data: sch, Out: &outSch})
	mk := func(vals ...int64) *bat.Chunk {
		c := bat.NewChunk(outSch)
		for _, v := range vals {
			_ = c.AppendRow(bat.IntValue(v))
		}
		return c
	}
	m.Offer(0, []*Frag{{Gen: 0, Data: shardChunk(1), Out: mk(1, 2)}}, 1)
	bws := m.Offer(1, []*Frag{{Gen: 0, Data: shardChunk(2), Out: mk(3)}}, 1)
	if len(bws) != 1 {
		t.Fatalf("bws = %+v", bws)
	}
	if bws[0].Out == nil || bws[0].Out.Rows() != 3 {
		t.Fatalf("merged Out = %+v", bws[0].Out)
	}
	// KeepData off: raw data is not concatenated (incremental mode).
	if bws[0].Data.Rows() != 0 {
		t.Errorf("incremental merged bw kept raw data")
	}
}

// TestShardSlicerLateTupleParity pins single-basket parity for
// out-of-order time tuples inside one batch: a row older than the newest
// seen epoch folds into that epoch (the pre-sharding slicer's rule), so
// at 1 shard window assignment is bit-identical to the old engine.
func TestShardSlicerLateTupleParity(t *testing.T) {
	w := &plan.Window{Range: 2 * time.Second, SlideDur: time.Second, TimeIdx: 0}
	s := NewShardSlicer(w, shardSchema())
	sec := int64(1_000_000)
	// Batch arrives out of order: 7.3s then 5.1s. The old engine put both
	// rows in bucket 7; so must we.
	s.Push(shardChunk(7*sec+sec/4, 5*sec+sec/10), seqsOf(1, 2), seqsOf(0, 1))
	if got := s.Flush(s.TimeGen(7*sec + sec/4)); got != nil {
		t.Fatalf("late tuple escaped into its own epoch: %+v", got)
	}
	if got := s.Pending(); got != 2 {
		t.Fatalf("pending = %d, want both rows in the newest epoch", got)
	}
	frags := s.Flush(8)
	if len(frags) != 1 || frags[0].Gen != 7 || frags[0].Data.Rows() != 2 {
		t.Fatalf("frags = %+v, want one 2-row fragment in epoch 7", frags)
	}
}
