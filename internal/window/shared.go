package window

import (
	"sync/atomic"

	"datacell/internal/bat"
)

// SharedBuf refcounts the raw columnar data of one merged basic window
// shared across a query group's members. The chunk itself is an immutable
// view — members only read it — so sharing needs no copies; the refcount
// exists to observe the buffer's lifetime: each member releases its
// reference when it no longer needs the raw tuples (an incremental tail
// after caching its per-basic-window intermediates, a re-evaluation tail
// when the basic window leaves its ring), and the group's live-buffer
// gauge drops when the last member lets go.
type SharedBuf struct {
	data   *bat.Chunk
	refs   atomic.Int32
	onFree func()
}

// NewSharedBuf wraps a merged basic window's data chunk with refs
// references. onFree, if non-nil, runs exactly once when the count reaches
// zero.
func NewSharedBuf(data *bat.Chunk, refs int, onFree func()) *SharedBuf {
	s := &SharedBuf{data: data, onFree: onFree}
	s.refs.Store(int32(refs))
	return s
}

// Data is the shared immutable columnar view.
func (s *SharedBuf) Data() *bat.Chunk { return s.data }

// Refs reports the current reference count.
func (s *SharedBuf) Refs() int { return int(s.refs.Load()) }

// Release drops one reference; the last release drops the data pointer
// (letting the columns be reclaimed even if the SharedBuf itself is still
// referenced) and fires the onFree hook.
func (s *SharedBuf) Release() {
	if s.refs.Add(-1) == 0 {
		s.data = nil
		if s.onFree != nil {
			s.onFree()
		}
	}
}
