// Package window implements the sliding-window machinery of DataCell's
// incremental processing mode (paper §3): windows are partitioned into
// basic windows — "each basic window is of equal size to the sliding step"
// — which are processed separately, their columnar intermediates cached,
// and merged per slide. Because whole basic windows expire at once, all
// cached partials stay valid until their basic window leaves the ring; no
// per-tuple invertibility is needed.
//
// Two slicing paths exist. Slicer is the single-stream reference
// implementation: it cuts one ordered tuple stream into basic windows in
// arrival order. ShardSlicer + ShardMerge form the sharded path: each
// shard cuts its own rows into globally consistent epochs (by global
// sequence stamp for tuple windows, by absolute slide bucket for time
// windows) and a per-query merger assembles complete basic windows once
// every shard's flush watermark has passed an epoch. The union of the
// shards' epoch fragments is exactly the basic window the single-stream
// slicer would produce, so everything downstream of the merge — Ring,
// JoinCache, partial-aggregate merging — is oblivious to sharding.
package window

import (
	"fmt"

	"datacell/internal/bat"
	"datacell/internal/plan"
)

// BW is one completed basic window plus whatever intermediates the factory
// cached for it.
type BW struct {
	// Gen is the basic window's global sequence number (0, 1, 2, ...).
	Gen int64
	// Data holds the raw stream tuples of the basic window.
	Data *bat.Chunk
	// MaxArrival is the latest arrival stamp among the tuples
	// (microseconds), used for response-time accounting. Zero for empty
	// basic windows.
	MaxArrival int64
	// Out caches the per-basic-window pipeline output (incremental mode,
	// non-aggregate path and the inputs of join plans).
	Out *bat.Chunk
	// Partial caches the per-basic-window partial aggregate (incremental
	// mode, aggregate path).
	Partial *bat.Chunk
	// Merged, when non-nil, is the group-resolved full-window merged view
	// this basic window completed: the member's merge class evaluated the
	// merge once for every member, and the tail only runs its private
	// post-merge fragment over it. Set by shared-merge group members whose
	// post fragment did not register in the post-merge trie.
	Merged *bat.Chunk
	// Final, when non-nil, is the complete per-slide result for the
	// window this basic window completed: merge AND post-merge fragment
	// were resolved through the group's shared machinery, and the tail
	// only emits. Merged and Final are mutually exclusive.
	Final *bat.Chunk
	// Free, when non-nil, releases the basic window's share of a group's
	// refcounted data buffer. Query-group members set it; standalone
	// factories leave it nil.
	Free func()
}

// ReleaseData drops the basic window's raw tuples and fires the Free hook
// exactly once. Callers use it when the raw data is no longer needed: an
// incremental tail after caching its intermediates, or any tail when the
// basic window leaves its ring.
func (bw *BW) ReleaseData() {
	bw.Data = nil
	if bw.Free != nil {
		f := bw.Free
		bw.Free = nil
		f()
	}
}

// Slicer cuts a stream's arriving tuples into basic windows. Tuple windows
// close after exactly Slide tuples; time windows close when the stream's
// ordering attribute crosses a slide-aligned bucket boundary (streams are
// assumed in arrival order on that attribute, which is what DataCell's
// baskets preserve). Time gaps emit empty basic windows so the ring stays
// aligned with wall-clock slides.
type Slicer struct {
	w      *plan.Window
	schema bat.Schema

	buf    *bat.Chunk
	maxArr int64

	// Time-window state.
	started   bool
	bucket    int64 // current bucket index = floor(ts / slide)
	nextGen   int64
	slideUsec int64
}

// NewSlicer builds a slicer for a stream scan's bound window.
func NewSlicer(w *plan.Window, schema bat.Schema) *Slicer {
	s := &Slicer{w: w, schema: schema, buf: bat.NewChunk(schema)}
	if !w.Tuples {
		s.slideUsec = w.SlideDur.Microseconds()
	}
	return s
}

// Push feeds newly arrived tuples (with their arrival stamps) into the
// slicer and returns the basic windows that completed.
func (s *Slicer) Push(c *bat.Chunk, arrivals bat.Ints) []*BW {
	if s.w.Tuples {
		return s.pushTuples(c, arrivals)
	}
	return s.pushTime(c, arrivals)
}

func (s *Slicer) pushTuples(c *bat.Chunk, arrivals bat.Ints) []*BW {
	var done []*BW
	rows := c.Rows()
	pos := 0
	for pos < rows {
		need := int(s.w.Slide) - s.buf.Rows()
		take := rows - pos
		if take > need {
			take = need
		}
		s.buf.AppendChunk(c.Slice(pos, pos+take))
		for _, a := range arrivals[pos : pos+take] {
			if a > s.maxArr {
				s.maxArr = a
			}
		}
		pos += take
		if s.buf.Rows() == int(s.w.Slide) {
			done = append(done, s.closeBuf())
		}
	}
	return done
}

func (s *Slicer) pushTime(c *bat.Chunk, arrivals bat.Ints) []*BW {
	var done []*BW
	ts := bat.AsInts(c.Cols[s.w.TimeIdx])
	rows := c.Rows()
	for i := 0; i < rows; i++ {
		b := ts[i] / s.slideUsec
		if ts[i] < 0 {
			// Floor division for negative timestamps.
			if ts[i]%s.slideUsec != 0 {
				b--
			}
		}
		if !s.started {
			s.started = true
			s.bucket = b
		}
		// Close the current bucket, plus empty buckets for any gap.
		for s.bucket < b {
			done = append(done, s.closeBuf())
			s.bucket++
		}
		// Late tuples (b < s.bucket) are clamped into the open bucket;
		// DataCell consumes baskets in arrival order, so this only happens
		// on slightly out-of-order sources.
		s.buf.AppendChunk(c.Slice(i, i+1))
		if arrivals[i] > s.maxArr {
			s.maxArr = arrivals[i]
		}
	}
	return done
}

// AdvanceTime closes time buckets up to (excluding) the bucket containing
// ts. It implements the scheduler's time constraints: an idle stream's
// open windows can be forced shut by a heartbeat watermark.
func (s *Slicer) AdvanceTime(ts int64) []*BW {
	if s.w.Tuples || !s.started {
		return nil
	}
	var done []*BW
	b := ts / s.slideUsec
	for s.bucket < b {
		done = append(done, s.closeBuf())
		s.bucket++
	}
	return done
}

func (s *Slicer) closeBuf() *BW {
	bw := &BW{Gen: s.nextGen, Data: s.buf, MaxArrival: s.maxArr}
	s.nextGen++
	s.buf = bat.NewChunk(s.schema)
	s.maxArr = 0
	return bw
}

// Pending reports how many tuples are buffered in the open basic window.
func (s *Slicer) Pending() int { return s.buf.Rows() }

// Ring keeps the last n basic windows — the live window contents.
type Ring struct {
	n   int
	bws []*BW
}

// NewRing builds a ring holding n basic windows.
func NewRing(n int) *Ring {
	if n <= 0 {
		panic(fmt.Sprintf("window: ring of %d basic windows", n))
	}
	return &Ring{n: n}
}

// Push appends a basic window, evicting the oldest when the ring is full.
// It returns the evicted basic window (nil if none).
func (r *Ring) Push(bw *BW) *BW {
	r.bws = append(r.bws, bw)
	if len(r.bws) > r.n {
		old := r.bws[0]
		// Copy down rather than re-slicing so evicted windows are GC-able.
		copy(r.bws, r.bws[1:])
		r.bws = r.bws[:r.n]
		return old
	}
	return nil
}

// Full reports whether the ring holds a complete window.
func (r *Ring) Full() bool { return len(r.bws) == r.n }

// Live returns the current basic windows, oldest first.
func (r *Ring) Live() []*BW { return r.bws }

// Parts reports the ring capacity.
func (r *Ring) Parts() int { return r.n }

// MaxArrival reports the latest arrival stamp across live basic windows.
func (r *Ring) MaxArrival() int64 {
	var m int64
	for _, bw := range r.bws {
		if bw.MaxArrival > m {
			m = bw.MaxArrival
		}
	}
	return m
}

// ConcatData concatenates the raw tuples of the live basic windows — the
// full current window, used by the re-evaluation mode.
func (r *Ring) ConcatData(schema bat.Schema) *bat.Chunk {
	out := bat.NewChunk(schema)
	for _, bw := range r.bws {
		out.AppendChunk(bw.Data)
	}
	return out
}

// ConcatOuts concatenates the cached pipeline outputs of the live basic
// windows — the merged intermediate for non-aggregate incremental plans.
func (r *Ring) ConcatOuts(schema bat.Schema) *bat.Chunk {
	out := bat.NewChunk(schema)
	for _, bw := range r.bws {
		if bw.Out != nil {
			out.AppendChunk(bw.Out)
		}
	}
	return out
}

// ConcatPartials concatenates the cached partial aggregates; feeding the
// result through plan.MergeAggregate yields the full-window aggregate.
func (r *Ring) ConcatPartials(schema bat.Schema) *bat.Chunk {
	out := bat.NewChunk(schema)
	for _, bw := range r.bws {
		if bw.Partial != nil {
			out.AppendChunk(bw.Partial)
		}
	}
	return out
}
