package window

import (
	"testing"
	"time"

	"datacell/internal/bat"
	"datacell/internal/plan"
)

func sch() bat.Schema {
	return bat.NewSchema([]string{"ts", "v"}, []bat.Kind{bat.Time, bat.Int})
}

func chunkTS(pairs ...[2]int64) (*bat.Chunk, bat.Ints) {
	c := bat.NewChunk(sch())
	var arr bat.Ints
	for _, p := range pairs {
		_ = c.AppendRow(bat.TimeValue(p[0]), bat.IntValue(p[1]))
		arr = append(arr, p[0]) // arrival = event time for tests
	}
	return c, arr
}

func TestTupleSlicer(t *testing.T) {
	w := &plan.Window{Tuples: true, Size: 6, Slide: 3}
	s := NewSlicer(w, sch())
	c, arr := chunkTS([2]int64{1, 10}, [2]int64{2, 20})
	if got := s.Push(c, arr); len(got) != 0 {
		t.Fatalf("premature close: %d", len(got))
	}
	if s.Pending() != 2 {
		t.Errorf("Pending = %d", s.Pending())
	}
	c, arr = chunkTS([2]int64{3, 30}, [2]int64{4, 40}, [2]int64{5, 50}, [2]int64{6, 60}, [2]int64{7, 70})
	bws := s.Push(c, arr)
	if len(bws) != 2 {
		t.Fatalf("closed %d basic windows, want 2", len(bws))
	}
	if bws[0].Gen != 0 || bws[1].Gen != 1 {
		t.Errorf("gens = %d, %d", bws[0].Gen, bws[1].Gen)
	}
	if bws[0].Data.Rows() != 3 || bws[0].Data.Row(2)[1].I != 30 {
		t.Errorf("bw0 = %v", bws[0].Data)
	}
	if bws[0].MaxArrival != 3 || bws[1].MaxArrival != 6 {
		t.Errorf("max arrivals = %d, %d", bws[0].MaxArrival, bws[1].MaxArrival)
	}
	if s.Pending() != 1 {
		t.Errorf("Pending after = %d", s.Pending())
	}
}

func TestTupleSlicerLargeBatch(t *testing.T) {
	w := &plan.Window{Tuples: true, Size: 4, Slide: 2}
	s := NewSlicer(w, sch())
	c := bat.NewChunk(sch())
	var arr bat.Ints
	for i := int64(0); i < 10; i++ {
		_ = c.AppendRow(bat.TimeValue(i), bat.IntValue(i))
		arr = append(arr, i)
	}
	bws := s.Push(c, arr)
	if len(bws) != 5 {
		t.Fatalf("bws = %d, want 5", len(bws))
	}
	for i, bw := range bws {
		if bw.Data.Rows() != 2 || bw.Data.Row(0)[1].I != int64(i*2) {
			t.Errorf("bw %d wrong: %v", i, bw.Data)
		}
	}
}

func TestTimeSlicer(t *testing.T) {
	us := time.Second.Microseconds()
	w := &plan.Window{Tuples: false, Range: 4 * time.Second, SlideDur: 2 * time.Second, TimeIdx: 0}
	s := NewSlicer(w, sch())
	// Events at 0.5s, 1.5s → bucket 0; 2.5s closes bucket 0.
	c, arr := chunkTS([2]int64{us / 2, 1}, [2]int64{us * 3 / 2, 2})
	if got := s.Push(c, arr); len(got) != 0 {
		t.Fatalf("premature close")
	}
	c, arr = chunkTS([2]int64{us * 5 / 2, 3})
	bws := s.Push(c, arr)
	if len(bws) != 1 || bws[0].Data.Rows() != 2 {
		t.Fatalf("bucket 0 = %+v", bws)
	}
}

func TestTimeSlicerGapEmitsEmptyBuckets(t *testing.T) {
	us := time.Second.Microseconds()
	w := &plan.Window{Tuples: false, Range: 2 * time.Second, SlideDur: time.Second, TimeIdx: 0}
	s := NewSlicer(w, sch())
	c, arr := chunkTS([2]int64{us / 2, 1}) // bucket 0
	s.Push(c, arr)
	c, arr = chunkTS([2]int64{us*3 + us/2, 2}) // bucket 3: closes 0,1,2
	bws := s.Push(c, arr)
	if len(bws) != 3 {
		t.Fatalf("closed %d buckets, want 3", len(bws))
	}
	if bws[0].Data.Rows() != 1 || bws[1].Data.Rows() != 0 || bws[2].Data.Rows() != 0 {
		t.Errorf("gap handling wrong: %d %d %d",
			bws[0].Data.Rows(), bws[1].Data.Rows(), bws[2].Data.Rows())
	}
}

func TestTimeSlicerAdvanceTime(t *testing.T) {
	us := time.Second.Microseconds()
	w := &plan.Window{Tuples: false, Range: 2 * time.Second, SlideDur: time.Second, TimeIdx: 0}
	s := NewSlicer(w, sch())
	if got := s.AdvanceTime(us * 10); got != nil {
		t.Error("AdvanceTime before first tuple should be nil")
	}
	c, arr := chunkTS([2]int64{us / 2, 1})
	s.Push(c, arr)
	bws := s.AdvanceTime(us * 2) // watermark at 2s closes buckets 0 and 1
	if len(bws) != 2 || bws[0].Data.Rows() != 1 || bws[1].Data.Rows() != 0 {
		t.Fatalf("AdvanceTime = %+v", bws)
	}
	// Tuple slicers ignore AdvanceTime.
	ts := NewSlicer(&plan.Window{Tuples: true, Size: 2, Slide: 1}, sch())
	if got := ts.AdvanceTime(us); got != nil {
		t.Error("tuple slicer AdvanceTime should be nil")
	}
}

func TestTimeSlicerLateTupleClamped(t *testing.T) {
	us := time.Second.Microseconds()
	w := &plan.Window{Tuples: false, Range: 2 * time.Second, SlideDur: time.Second, TimeIdx: 0}
	s := NewSlicer(w, sch())
	c, arr := chunkTS([2]int64{us + us/2, 1}) // bucket 1
	s.Push(c, arr)
	c, arr = chunkTS([2]int64{us / 2, 2}) // late: bucket 0 already passed
	if got := s.Push(c, arr); len(got) != 0 {
		t.Fatal("late tuple should not close buckets")
	}
	c, arr = chunkTS([2]int64{us*2 + 1, 3})
	bws := s.Push(c, arr)
	if len(bws) != 1 || bws[0].Data.Rows() != 2 {
		t.Errorf("late tuple not clamped into open bucket: %+v", bws)
	}
}

func TestRing(t *testing.T) {
	r := NewRing(3)
	if r.Full() {
		t.Error("empty ring full")
	}
	var evicted *BW
	for i := int64(0); i < 5; i++ {
		c := bat.NewChunk(sch())
		_ = c.AppendRow(bat.TimeValue(i), bat.IntValue(i))
		evicted = r.Push(&BW{Gen: i, Data: c, MaxArrival: i})
	}
	if !r.Full() {
		t.Error("ring should be full")
	}
	if evicted == nil || evicted.Gen != 1 {
		t.Errorf("evicted = %+v", evicted)
	}
	live := r.Live()
	if len(live) != 3 || live[0].Gen != 2 || live[2].Gen != 4 {
		t.Errorf("live = %v", live)
	}
	if r.MaxArrival() != 4 {
		t.Errorf("MaxArrival = %d", r.MaxArrival())
	}
	cc := r.ConcatData(sch())
	if cc.Rows() != 3 || cc.Row(0)[1].I != 2 {
		t.Errorf("ConcatData = %v", cc)
	}
}

func TestRingConcatOutsAndPartials(t *testing.T) {
	r := NewRing(2)
	out1 := bat.NewChunk(sch())
	_ = out1.AppendRow(bat.TimeValue(1), bat.IntValue(10))
	r.Push(&BW{Gen: 0, Out: out1, Partial: out1})
	r.Push(&BW{Gen: 1}) // nil intermediates tolerated (empty bw)
	if got := r.ConcatOuts(sch()); got.Rows() != 1 {
		t.Errorf("ConcatOuts rows = %d", got.Rows())
	}
	if got := r.ConcatPartials(sch()); got.Rows() != 1 {
		t.Errorf("ConcatPartials rows = %d", got.Rows())
	}
}

func TestRingPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRing(0) should panic")
		}
	}()
	NewRing(0)
}

func joinNode() *plan.Join {
	s := sch()
	return &plan.Join{
		LKeys: []int{1}, RKeys: []int{1},
		Out: bat.NewSchema(
			[]string{"lts", "lv", "rts", "rv"},
			[]bat.Kind{bat.Time, bat.Int, bat.Time, bat.Int},
		),
		L: &plan.Merged{Out: s}, R: &plan.Merged{Out: s},
	}
}

func bwWithOut(gen int64, vals ...int64) *BW {
	c := bat.NewChunk(sch())
	for _, v := range vals {
		_ = c.AppendRow(bat.TimeValue(gen), bat.IntValue(v))
	}
	return &BW{Gen: gen, Out: c}
}

func TestJoinCache(t *testing.T) {
	jc := NewJoinCache(joinNode())
	l0 := bwWithOut(0, 1, 2)
	r0 := bwWithOut(0, 2, 3)
	jc.AddLeft(l0, []*BW{r0})
	if jc.Pairs() != 1 {
		t.Fatalf("pairs = %d", jc.Pairs())
	}
	merged := jc.Merged([]*BW{l0}, []*BW{r0})
	if merged.Rows() != 1 || merged.Row(0)[1].I != 2 {
		t.Fatalf("merged = %v", merged)
	}
	// New right bw joins against existing lefts.
	r1 := bwWithOut(1, 1, 1)
	jc.AddRight(r1, []*BW{l0})
	if jc.Pairs() != 2 {
		t.Fatalf("pairs = %d", jc.Pairs())
	}
	merged = jc.Merged([]*BW{l0}, []*BW{r0, r1})
	if merged.Rows() != 3 { // (1,2)x(2,3)→1 match; (1,2)x(1,1)→2 matches
		t.Fatalf("merged rows = %d", merged.Rows())
	}
	// Re-adding an existing pair is a no-op.
	jc.AddLeft(l0, []*BW{r0})
	if jc.Pairs() != 2 {
		t.Error("duplicate pair cached")
	}
	// Eviction drops a full row/column of pairs.
	jc.EvictRight(0)
	if jc.Pairs() != 1 {
		t.Errorf("pairs after evict = %d", jc.Pairs())
	}
	jc.EvictLeft(0)
	if jc.Pairs() != 0 {
		t.Errorf("pairs after evict = %d", jc.Pairs())
	}
}
