package window

import (
	"reflect"
	"testing"

	"datacell/internal/bat"
)

func codecChunk(vals ...int64) *bat.Chunk {
	sch := bat.NewSchema([]string{"k"}, []bat.Kind{bat.Int})
	return &bat.Chunk{Schema: sch, Cols: []bat.Vector{bat.Ints(append([]int64{}, vals...))}}
}

func TestBWCodecRoundTrip(t *testing.T) {
	bws := []*BW{
		{Gen: 0, Data: codecChunk(1, 2, 3)},
		{Gen: 41, MaxArrival: 123456, Data: codecChunk(), Out: codecChunk(9)},
		{Gen: -7, Data: codecChunk(5), Partial: codecChunk(6, 7)},
		{Gen: 3}, // all chunks absent
	}
	var buf []byte
	for _, bw := range bws {
		buf = MarshalBW(buf, bw)
	}
	for i, want := range bws {
		var got *BW
		var err error
		got, buf, err = UnmarshalBW(buf)
		if err != nil {
			t.Fatalf("bw %d: %v", i, err)
		}
		if got.Gen != want.Gen || got.MaxArrival != want.MaxArrival {
			t.Fatalf("bw %d: gen/arrival = %d/%d, want %d/%d",
				i, got.Gen, got.MaxArrival, want.Gen, want.MaxArrival)
		}
		if got.Free != nil {
			t.Fatalf("bw %d: decoded window carries a Free hook", i)
		}
		for name, pair := range map[string][2]*bat.Chunk{
			"data": {got.Data, want.Data}, "out": {got.Out, want.Out}, "partial": {got.Partial, want.Partial},
		} {
			g, w := pair[0], pair[1]
			if (g == nil) != (w == nil) {
				t.Fatalf("bw %d %s: presence mismatch", i, name)
			}
			if g != nil && !reflect.DeepEqual(g.Cols, w.Cols) {
				t.Fatalf("bw %d %s: %v, want %v", i, name, g.Cols, w.Cols)
			}
		}
	}
	if len(buf) != 0 {
		t.Fatalf("trailing bytes: %d", len(buf))
	}
}

func TestFragCodecRoundTrip(t *testing.T) {
	want := &Frag{Gen: 17, Shard: 3, MaxArrival: 99, Data: codecChunk(4, 5)}
	buf := MarshalFrag(nil, want)
	got, rest, err := UnmarshalFrag(buf)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v rest=%d", err, len(rest))
	}
	if got.Gen != want.Gen || got.Shard != want.Shard || got.MaxArrival != want.MaxArrival {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	if !reflect.DeepEqual(got.Data.Cols, want.Data.Cols) {
		t.Fatalf("data = %v, want %v", got.Data.Cols, want.Data.Cols)
	}
	// Truncations error.
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := UnmarshalFrag(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
}

// TestShardMergeCanonicalOrder pins the fabric-critical determinism
// invariant: an epoch's fragments concatenate in shard order no matter
// which shard's flush reached the merger first.
func TestShardMergeCanonicalOrder(t *testing.T) {
	sch := bat.NewSchema([]string{"k"}, []bat.Kind{bat.Int})
	build := func(order []int) []int64 {
		m := NewShardMerge(MergeConfig{Shards: 3, Data: sch, KeepData: true})
		var out []*BW
		for _, sh := range order {
			frag := &Frag{Gen: 0, Data: codecChunk(int64(sh*10), int64(sh*10+1))}
			out = append(out, m.Offer(sh, []*Frag{frag}, 1)...)
		}
		if len(out) != 1 {
			t.Fatalf("order %v sealed %d windows, want 1", order, len(out))
		}
		return bat.AsInts(out[0].Data.Cols[0])
	}
	want := build([]int{0, 1, 2})
	for _, order := range [][]int{{2, 1, 0}, {1, 0, 2}, {2, 0, 1}} {
		if got := build(order); !reflect.DeepEqual(got, want) {
			t.Fatalf("delivery order %v produced %v, want %v", order, got, want)
		}
	}
}
