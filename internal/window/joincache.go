package window

import (
	"datacell/internal/bat"
	"datacell/internal/plan"
)

// JoinCache caches stream⋈stream join results at basic-window-pair
// granularity. When a new basic window arrives on either side it is joined
// once against every live basic window of the other side; a slide then
// evicts a whole row/column of pairs along with the expired basic window.
// The merged join output per slide is the concatenation of the live pair
// results — no join work is ever repeated for surviving pairs, which is
// where the incremental benefit for complex (join) queries comes from
// (demo §4, Complex Queries).
type JoinCache struct {
	join  *plan.Join
	pairs map[[2]int64]*bat.Chunk // (leftGen, rightGen) → join output
}

// NewJoinCache builds a pair cache for the given join node (whose L/R
// schemas must match the cached pipeline outputs fed to Add).
func NewJoinCache(join *plan.Join) *JoinCache {
	return &JoinCache{join: join, pairs: make(map[[2]int64]*bat.Chunk)}
}

// AddLeft joins a new left basic window against all live right basic
// windows and caches the pair results.
func (jc *JoinCache) AddLeft(l *BW, rights []*BW) {
	for _, r := range rights {
		jc.ensure(l, r)
	}
}

// AddRight joins a new right basic window against all live left basic
// windows and caches the pair results.
func (jc *JoinCache) AddRight(r *BW, lefts []*BW) {
	for _, l := range lefts {
		jc.ensure(l, r)
	}
}

func (jc *JoinCache) ensure(l, r *BW) {
	key := [2]int64{l.Gen, r.Gen}
	if _, ok := jc.pairs[key]; ok {
		return
	}
	jc.pairs[key] = plan.JoinChunks(jc.join, l.Out, r.Out)
}

// EvictLeft drops all pairs involving an expired left basic window.
func (jc *JoinCache) EvictLeft(gen int64) {
	for k := range jc.pairs {
		if k[0] == gen {
			delete(jc.pairs, k)
		}
	}
}

// EvictRight drops all pairs involving an expired right basic window.
func (jc *JoinCache) EvictRight(gen int64) {
	for k := range jc.pairs {
		if k[1] == gen {
			delete(jc.pairs, k)
		}
	}
}

// Merged concatenates the cached results of the live pair set, in
// (leftGen, rightGen) order for determinism.
func (jc *JoinCache) Merged(lefts, rights []*BW) *bat.Chunk {
	out := bat.NewChunk(jc.join.Out)
	for _, l := range lefts {
		for _, r := range rights {
			if c, ok := jc.pairs[[2]int64{l.Gen, r.Gen}]; ok {
				out.AppendChunk(c)
			}
		}
	}
	return out
}

// Pairs reports the number of cached pair results (for the analysis pane).
func (jc *JoinCache) Pairs() int { return len(jc.pairs) }
