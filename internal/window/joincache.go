package window

import (
	"datacell/internal/bat"
	"datacell/internal/plan"
)

// JoinCache caches stream⋈stream join results at basic-window-pair
// granularity. When a new basic window arrives on either side it is joined
// once against every live basic window of the other side; a slide then
// evicts a whole row/column of pairs along with the expired basic window.
// The merged join output per slide is the concatenation of the live pair
// results — no join work is ever repeated for surviving pairs, which is
// where the incremental benefit for complex (join) queries comes from
// (demo §4, Complex Queries).
//
// Pairs are indexed by side generation: byLeft[lGen][rGen] holds the pair
// result, byRight[rGen] the set of left generations it participates in.
// Eviction and merging therefore touch only the pairs involving the
// affected generations — proportional to the live pair set, never a scan
// of the whole map. Evicted results drop their column vectors eagerly so
// the backing buffers are reclaimable the moment the pair expires, even if
// a stale reference to the chunk header survives.
//
// JoinCache itself is not safe for concurrent use: a private factory
// serializes access under its step lock, and SharedPairCache adds the
// mutex when one cache serves a whole join group.
type JoinCache struct {
	join     *plan.Join
	byLeft   map[int64]map[int64]*bat.Chunk
	byRight  map[int64]map[int64]bool
	npairs   int
	computed int64
}

// NewJoinCache builds a pair cache for the given join node (whose L/R
// schemas must match the cached pipeline outputs fed to Add).
func NewJoinCache(join *plan.Join) *JoinCache {
	return &JoinCache{
		join:    join,
		byLeft:  make(map[int64]map[int64]*bat.Chunk),
		byRight: make(map[int64]map[int64]bool),
	}
}

// Join reports the join node the cache evaluates.
func (jc *JoinCache) Join() *plan.Join { return jc.join }

// AddLeft joins a new left basic window against all live right basic
// windows and caches the pair results.
func (jc *JoinCache) AddLeft(l *BW, rights []*BW) {
	for _, r := range rights {
		jc.ensure(l, r)
	}
}

// AddRight joins a new right basic window against all live left basic
// windows and caches the pair results.
func (jc *JoinCache) AddRight(r *BW, lefts []*BW) {
	for _, l := range lefts {
		jc.ensure(l, r)
	}
}

func (jc *JoinCache) ensure(l, r *BW) *bat.Chunk {
	if c, ok := jc.Get(l.Gen, r.Gen); ok {
		return c
	}
	c := jc.compute(l, r)
	jc.Put(l.Gen, r.Gen, c)
	return c
}

// compute evaluates one pair without touching the cache.
func (jc *JoinCache) compute(l, r *BW) *bat.Chunk {
	jc.computed++
	return plan.JoinChunks(jc.join, l.Out, r.Out)
}

// Get looks up a cached pair result.
func (jc *JoinCache) Get(lGen, rGen int64) (*bat.Chunk, bool) {
	c, ok := jc.byLeft[lGen][rGen]
	return c, ok
}

// Put caches a pair result.
func (jc *JoinCache) Put(lGen, rGen int64, c *bat.Chunk) {
	row := jc.byLeft[lGen]
	if row == nil {
		row = make(map[int64]*bat.Chunk)
		jc.byLeft[lGen] = row
	}
	if _, dup := row[rGen]; dup {
		return
	}
	row[rGen] = c
	col := jc.byRight[rGen]
	if col == nil {
		col = make(map[int64]bool)
		jc.byRight[rGen] = col
	}
	col[lGen] = true
	jc.npairs++
}

// EvictLeft drops all pairs involving an expired left basic window,
// releasing their backing buffers.
func (jc *JoinCache) EvictLeft(gen int64) {
	row := jc.byLeft[gen]
	if row == nil {
		return
	}
	delete(jc.byLeft, gen)
	for rGen, c := range row {
		release(c)
		col := jc.byRight[rGen]
		delete(col, gen)
		if len(col) == 0 {
			delete(jc.byRight, rGen)
		}
		jc.npairs--
	}
}

// EvictRight drops all pairs involving an expired right basic window,
// releasing their backing buffers.
func (jc *JoinCache) EvictRight(gen int64) {
	col := jc.byRight[gen]
	if col == nil {
		return
	}
	delete(jc.byRight, gen)
	for lGen := range col {
		row := jc.byLeft[lGen]
		release(row[gen])
		delete(row, gen)
		if len(row) == 0 {
			delete(jc.byLeft, lGen)
		}
		jc.npairs--
	}
}

// EvictThrough evicts every pair whose left generation is ≤ lGen or whose
// right generation is ≤ rGen — the watermark form of eviction used when
// one cache serves members whose rings advance independently. Generations
// are consecutive, so walking down from the watermark until a generation
// holds no pairs visits only live-or-just-expired generations.
func (jc *JoinCache) EvictThrough(lGen, rGen int64) {
	for g := lGen; ; g-- {
		if jc.byLeft[g] == nil {
			break
		}
		jc.EvictLeft(g)
	}
	for g := rGen; ; g-- {
		if jc.byRight[g] == nil {
			break
		}
		jc.EvictRight(g)
	}
}

// release drops a pair result's column vectors so the backing buffers are
// reclaimable immediately; merged outputs copied out of the cache are
// unaffected.
func release(c *bat.Chunk) {
	if c != nil {
		c.Cols = nil
	}
}

// Merged concatenates the cached results of the live pair set, in
// (leftGen, rightGen) order for determinism. Pairs absent from the cache
// are skipped — under the private-factory protocol every live pair was
// Added before Merged runs.
func (jc *JoinCache) Merged(lefts, rights []*BW) *bat.Chunk {
	out := bat.NewChunk(jc.join.Out)
	for _, l := range lefts {
		row := jc.byLeft[l.Gen]
		if row == nil {
			continue
		}
		for _, r := range rights {
			if c, ok := row[r.Gen]; ok {
				out.AppendChunk(c)
			}
		}
	}
	return out
}

// MergedEnsure is Merged for callers that cannot rely on every live pair
// being cached (a group member resuming from pause after the shared cache
// moved on): missing pairs are recomputed from the basic windows' cached
// pipeline outputs. Recomputed pairs are returned but not cached — they
// are behind the shared eviction watermark, so caching would leak them.
func (jc *JoinCache) MergedEnsure(lefts, rights []*BW) *bat.Chunk {
	out := bat.NewChunk(jc.join.Out)
	for _, l := range lefts {
		row := jc.byLeft[l.Gen]
		for _, r := range rights {
			if c, ok := row[r.Gen]; ok {
				out.AppendChunk(c)
			} else {
				out.AppendChunk(jc.compute(l, r))
			}
		}
	}
	return out
}

// Pairs reports the number of cached pair results (for the analysis pane).
func (jc *JoinCache) Pairs() int { return jc.npairs }

// Computed reports how many pair results were ever evaluated — the
// no-recompute-for-surviving-pairs invariant is Computed staying flat
// while surviving pairs are re-merged.
func (jc *JoinCache) Computed() int64 { return jc.computed }
