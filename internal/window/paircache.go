package window

import (
	"sync"

	"datacell/internal/bat"
	"datacell/internal/plan"
)

// PairCache is the join-pair caching contract a factory's incremental tail
// drives: new basic windows are joined against the other side's live ring,
// expired generations are evicted, and a slide merges the live pair set.
// *JoinCache implements it for a private factory; *SharedPairCache lifts
// one cache into a join group where every member query over the same
// stream pair (and join fingerprint) shares the pair results.
type PairCache interface {
	AddLeft(l *BW, rights []*BW)
	AddRight(r *BW, lefts []*BW)
	EvictLeft(gen int64)
	EvictRight(gen int64)
	Merged(lefts, rights []*BW) *bat.Chunk
	Pairs() int
	Computed() int64
}

// SharedPairCache serves one join group's member tails concurrently. Two
// things change relative to a private cache. Access is serialized by a
// mutex (member tails are independent scheduler transitions). And eviction
// is driven by generation watermarks instead of any single member's ring:
// a pair (l, r) stays cached while l is within MaxParts — the largest
// member window extent — of the newest left generation, and likewise for
// r, so the member with the widest window always finds its pairs while
// per-member EvictLeft/EvictRight calls become no-ops. A member whose
// ring lags the watermarks (paused, then resumed with a backlog) simply
// recomputes the expired pairs transiently during its merge — correctness
// never depends on the cache's contents.
type SharedPairCache struct {
	mu       sync.Mutex
	jc       *JoinCache
	retained map[int]int // member window extents (multiset): extent → count
	maxParts int64       // current horizon: the widest retained extent
	newest   [2]int64
	seen     [2]bool
}

// NewSharedPairCache builds the group-level cache for a join node.
func NewSharedPairCache(join *plan.Join) *SharedPairCache {
	return &SharedPairCache{jc: NewJoinCache(join), retained: make(map[int]int)}
}

// Retain records a joining member's window extent (in basic windows) and
// raises the retention horizon to the widest retained extent. Release is
// its inverse on member Leave.
func (s *SharedPairCache) Retain(parts int) {
	s.mu.Lock()
	s.retained[parts]++
	if int64(parts) > s.maxParts {
		s.maxParts = int64(parts)
	}
	s.mu.Unlock()
}

// Release drops one member's window extent from the retention multiset
// and recomputes the horizon; when the departing member was the widest,
// pairs beyond the new horizon are evicted immediately rather than
// lingering for up to one extra window.
func (s *SharedPairCache) Release(parts int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := s.retained[parts]; n > 1 {
		s.retained[parts] = n - 1
	} else {
		delete(s.retained, parts)
	}
	var max int64
	for p := range s.retained {
		if int64(p) > max {
			max = int64(p)
		}
	}
	if max == s.maxParts || max == 0 {
		s.maxParts = max
		return
	}
	s.maxParts = max
	s.evictLocked()
}

// evictLocked sweeps both sides' expired generations under the current
// horizon. Callers hold s.mu.
func (s *SharedPairCache) evictLocked() {
	var lwm, rwm int64 = -1 << 62, -1 << 62
	if s.seen[0] {
		lwm = s.threshold(0)
	}
	if s.seen[1] {
		rwm = s.threshold(1)
	}
	s.jc.EvictThrough(lwm, rwm)
}

// threshold reports the eviction watermark of a side: generations ≤ it are
// expired. Meaningful only once the side has seen a basic window.
func (s *SharedPairCache) threshold(side int) int64 {
	return s.newest[side] - s.maxParts
}

func (s *SharedPairCache) add(side int, bw *BW, others []*BW) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seen[side] && bw.Gen <= s.threshold(side) {
		// A member replaying windows the group has moved past (resumed
		// from pause): caching would resurrect evicted generations that no
		// watermark will sweep again. Its merge recomputes transiently.
		return
	}
	if bw.Gen > s.newest[side] || !s.seen[side] {
		s.newest[side], s.seen[side] = bw.Gen, true
	}
	for _, o := range others {
		if s.seen[1-side] && o.Gen <= s.threshold(1-side) {
			continue
		}
		if side == 0 {
			s.jc.ensure(bw, o)
		} else {
			s.jc.ensure(o, bw)
		}
	}
	s.evictLocked()
}

// AddLeft joins a new left basic window against the member's live right
// ring, caching pairs that are within the retention horizon.
func (s *SharedPairCache) AddLeft(l *BW, rights []*BW) { s.add(0, l, rights) }

// AddRight joins a new right basic window against the member's live left
// ring, caching pairs that are within the retention horizon.
func (s *SharedPairCache) AddRight(r *BW, lefts []*BW) { s.add(1, r, lefts) }

// EvictLeft is a no-op: shared eviction is watermark-driven, because a
// generation leaving one member's ring may still be live in a sibling's.
func (s *SharedPairCache) EvictLeft(int64) {}

// EvictRight is a no-op; see EvictLeft.
func (s *SharedPairCache) EvictRight(int64) {}

// Merged concatenates the member's live pair set in (leftGen, rightGen)
// order, recomputing any pair the watermarks already expired.
func (s *SharedPairCache) Merged(lefts, rights []*BW) *bat.Chunk {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jc.MergedEnsure(lefts, rights)
}

// Pairs reports the number of cached pair results.
func (s *SharedPairCache) Pairs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jc.Pairs()
}

// Computed reports how many pair results were ever evaluated.
func (s *SharedPairCache) Computed() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jc.Computed()
}
