package window

import (
	"bytes"
	"testing"

	"datacell/internal/bat"
	"datacell/internal/plan"
)

func slicerChunk(t *testing.T, lo, hi int) (*bat.Chunk, bat.Ints, bat.Ints) {
	t.Helper()
	sch := bat.NewSchema([]string{"ts", "v"}, []bat.Kind{bat.Time, bat.Float})
	n := hi - lo
	ts := make(bat.Times, n)
	vs := make(bat.Floats, n)
	arr := make(bat.Ints, n)
	seqs := make(bat.Ints, n)
	for i := range ts {
		g := lo + i
		ts[i] = int64(g) * 1000
		vs[i] = float64(g)
		arr[i] = int64(100 + g)
		seqs[i] = int64(g)
	}
	return &bat.Chunk{Schema: sch, Cols: []bat.Vector{ts, vs}}, arr, seqs
}

// cloneSlicerState deep-copies an exported image the way the snapshot
// codec does (ExportState returns views; the restore side owns memory).
func cloneSlicerState(t *testing.T, st SlicerState) SlicerState {
	t.Helper()
	out := SlicerState{NextGen: st.NextGen, MaxGen: st.MaxGen}
	for _, e := range st.Open {
		data, _, err := bat.UnmarshalChunk(bat.MarshalChunk(nil, e.Data))
		if err != nil {
			t.Fatal(err)
		}
		out.Open = append(out.Open, OpenEpoch{Gen: e.Gen, MaxArrival: e.MaxArrival, Data: data})
	}
	return out
}

// TestSlicerStateRoundTrip pins the worker-restore contract for the
// slicer: a ShardSlicer rebuilt mid-epoch from an exported image, fed the
// same remaining rows, flushes byte-identical fragments to the original.
func TestSlicerStateRoundTrip(t *testing.T) {
	win := &plan.Window{Tuples: true, Size: 4, Slide: 2}
	c1, arr1, seqs1 := slicerChunk(t, 0, 5)
	s := NewShardSlicer(win, c1.Schema)
	s.Push(c1, arr1, seqs1)

	st := cloneSlicerState(t, s.ExportState())
	if len(st.Open) == 0 {
		t.Fatal("exported no open epochs; the test needs a mid-epoch image")
	}
	s2 := NewShardSlicerFromState(win, c1.Schema, st)
	if s2.Watermark() != s.Watermark() {
		t.Fatalf("restored watermark %d, original %d", s2.Watermark(), s.Watermark())
	}
	if s2.Pending() != s.Pending() {
		t.Fatalf("restored pending %d, original %d", s2.Pending(), s.Pending())
	}

	c2, arr2, seqs2 := slicerChunk(t, 5, 9)
	s.Push(c2, arr2, seqs2)
	s2.Push(c2, arr2, seqs2)
	for _, wm := range []int64{2, 4, 5} {
		fa, fb := s.Flush(wm), s2.Flush(wm)
		if len(fa) != len(fb) {
			t.Fatalf("wm %d: original flushed %d frags, restored %d", wm, len(fa), len(fb))
		}
		for i := range fa {
			a, b := MarshalFrag(nil, fa[i]), MarshalFrag(nil, fb[i])
			if !bytes.Equal(a, b) {
				t.Fatalf("wm %d frag %d diverges:\noriginal %+v\nrestored %+v", wm, i, fa[i], fb[i])
			}
		}
	}
}
