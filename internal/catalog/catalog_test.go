package catalog

import (
	"testing"

	"datacell/internal/bat"
)

func sch() bat.Schema {
	return bat.NewSchema([]string{"id", "v"}, []bat.Kind{bat.Int, bat.Float})
}

func TestCreateAndLookup(t *testing.T) {
	c := New()
	if _, err := c.CreateTable("t", sch()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateStream("s", sch()); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Table("t"); !ok {
		t.Error("table not found")
	}
	if _, ok := c.Stream("s"); !ok {
		t.Error("stream not found")
	}
	if _, ok := c.Table("s"); ok {
		t.Error("stream visible as table")
	}
}

func TestNameCollisions(t *testing.T) {
	c := New()
	_, _ = c.CreateTable("x", sch())
	if _, err := c.CreateTable("x", sch()); err == nil {
		t.Error("duplicate table should fail")
	}
	if _, err := c.CreateStream("x", sch()); err == nil {
		t.Error("stream colliding with table should fail")
	}
	_, _ = c.CreateStream("y", sch())
	if _, err := c.CreateTable("y", sch()); err == nil {
		t.Error("table colliding with stream should fail")
	}
}

func TestDrop(t *testing.T) {
	c := New()
	_, _ = c.CreateTable("t", sch())
	_, _ = c.CreateStream("s", sch())
	if err := c.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("t"); err == nil {
		t.Error("double drop should fail")
	}
	if err := c.DropStream("s"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropStream("nope"); err == nil {
		t.Error("dropping unknown stream should fail")
	}
}

func TestNames(t *testing.T) {
	c := New()
	_, _ = c.CreateTable("b", sch())
	_, _ = c.CreateTable("a", sch())
	_, _ = c.CreateStream("z", sch())
	tn := c.TableNames()
	if len(tn) != 2 || tn[0] != "a" || tn[1] != "b" {
		t.Errorf("TableNames = %v", tn)
	}
	if sn := c.StreamNames(); len(sn) != 1 || sn[0] != "z" {
		t.Errorf("StreamNames = %v", sn)
	}
}

func TestTableAppendSnapshot(t *testing.T) {
	tab := NewTable("t", sch())
	c := bat.NewChunk(sch())
	_ = c.AppendRow(bat.IntValue(1), bat.FloatValue(0.5))
	if err := tab.Append(c); err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 1 {
		t.Errorf("Rows = %d", tab.Rows())
	}
	snap := tab.Snapshot()
	// Later appends must not disturb the snapshot.
	_ = tab.Append(c)
	if snap.Rows() != 1 {
		t.Error("snapshot mutated by later append")
	}
	if tab.Rows() != 2 {
		t.Errorf("Rows after second append = %d", tab.Rows())
	}
}

func TestTableAppendValidation(t *testing.T) {
	tab := NewTable("t", sch())
	bad := bat.NewChunk(bat.NewSchema([]string{"x"}, []bat.Kind{bat.Int}))
	if err := tab.Append(bad); err == nil {
		t.Error("arity mismatch should fail")
	}
	wrong := bat.NewChunk(bat.NewSchema([]string{"id", "v"}, []bat.Kind{bat.Int, bat.Str}))
	if err := tab.Append(wrong); err == nil {
		t.Error("kind mismatch should fail")
	}
}

func TestStreamDefaultTimeCol(t *testing.T) {
	c := New()
	s, _ := c.CreateStream("ev", bat.NewSchema(
		[]string{"v", "ts", "ts2"},
		[]bat.Kind{bat.Int, bat.Time, bat.Time},
	))
	if got := s.DefaultTimeCol(); got != "ts" {
		t.Errorf("DefaultTimeCol = %q", got)
	}
	s2, _ := c.CreateStream("no_ts", sch())
	if got := s2.DefaultTimeCol(); got != "" {
		t.Errorf("DefaultTimeCol = %q, want empty", got)
	}
	if s.Basket == nil || s.Basket.Name() != "ev" {
		t.Error("stream basket not wired")
	}
}

func TestSchemaFromDefs(t *testing.T) {
	s, err := SchemaFromDefs([]string{"a", "b"}, []string{"INT", "DOUBLE"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Kinds[1] != bat.Float {
		t.Errorf("kinds = %v", s.Kinds)
	}
	if _, err := SchemaFromDefs([]string{"a"}, []string{"BLOB"}); err == nil {
		t.Error("unknown type should fail")
	}
	if _, err := SchemaFromDefs([]string{"a", "a"}, []string{"INT", "INT"}); err == nil {
		t.Error("duplicate column should fail")
	}
}

// TestGroupRegistry exercises the shared-execution group registry: create
// on first join, reuse on later joins, teardown handoff on last leave.
func TestGroupRegistry(t *testing.T) {
	c := New()
	created := 0
	make1 := func() any { created++; return created }
	if v, n := c.JoinGroup("k", make1); v.(int) != 1 || n != 1 {
		t.Fatalf("first join = (%v, %d)", v, n)
	}
	if v, n := c.JoinGroup("k", make1); v.(int) != 1 || n != 2 {
		t.Fatalf("second join = (%v, %d), want same group", v, n)
	}
	if created != 1 {
		t.Fatalf("create ran %d times", created)
	}
	if n := c.GroupMembers("k"); n != 2 {
		t.Fatalf("members = %d", n)
	}
	if v, rem := c.LeaveGroup("k"); v.(int) != 1 || rem != 1 {
		t.Fatalf("first leave = (%v, %d)", v, rem)
	}
	if v, rem := c.LeaveGroup("k"); v.(int) != 1 || rem != 0 {
		t.Fatalf("last leave = (%v, %d), want teardown handoff", v, rem)
	}
	if _, ok := c.Group("k"); ok {
		t.Fatal("group survives last leave")
	}
	if _, rem := c.LeaveGroup("k"); rem != -1 {
		t.Fatal("leaving an unknown key should report -1")
	}
	// A fresh join after teardown creates a new group.
	if v, n := c.JoinGroup("k", make1); v.(int) != 2 || n != 1 {
		t.Fatalf("rejoin = (%v, %d), want fresh group", v, n)
	}
	if keys := c.GroupKeys(); len(keys) != 1 || keys[0] != "k" {
		t.Fatalf("keys = %v", keys)
	}
}
