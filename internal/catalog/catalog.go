// Package catalog holds the schema objects of a DataCell instance:
// persistent tables (ordinary column-store relations backed by BATs) and
// streams (schemas whose live data lives in a basket). The natural
// integration of both kinds in one catalog is what lets a single factory
// "interact both with tables and baskets" (paper §3, Two Query Paradigms).
package catalog

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"datacell/internal/basket"
	"datacell/internal/bat"
)

// Table is a persistent columnar relation. Appends take the write lock;
// Snapshot returns an immutable view (Go slice semantics make previously
// captured views safe across later appends).
type Table struct {
	Name   string
	schema bat.Schema

	mu   sync.RWMutex
	cols []bat.Vector
}

// NewTable creates an empty table.
func NewTable(name string, schema bat.Schema) *Table {
	return &Table{Name: name, schema: schema, cols: bat.NewChunk(schema).Cols}
}

// Schema reports the column layout.
func (t *Table) Schema() bat.Schema { return t.schema }

// Append adds rows from a chunk with matching column kinds.
func (t *Table) Append(c *bat.Chunk) error {
	if len(c.Cols) != len(t.schema.Kinds) {
		return fmt.Errorf("table %s: append of %d columns, want %d",
			t.Name, len(c.Cols), len(t.schema.Kinds))
	}
	for i, col := range c.Cols {
		if col.Kind() != t.schema.Kinds[i] {
			return fmt.Errorf("table %s: column %d is %s, want %s",
				t.Name, i, col.Kind(), t.schema.Kinds[i])
		}
	}
	t.mu.Lock()
	for i := range t.cols {
		t.cols[i] = t.cols[i].AppendVector(c.Cols[i])
	}
	t.mu.Unlock()
	return nil
}

// Snapshot returns the table's current contents as a chunk view.
func (t *Table) Snapshot() *bat.Chunk {
	t.mu.RLock()
	defer t.mu.RUnlock()
	cols := make([]bat.Vector, len(t.cols))
	copy(cols, t.cols)
	return &bat.Chunk{Schema: t.schema, Cols: cols}
}

// Rows reports the current row count.
func (t *Table) Rows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.cols) == 0 {
		return 0
	}
	return t.cols[0].Len()
}

// Stream couples a stream schema with its input basket — a Sharded
// container, which degenerates to a single mutex-guarded basket at shard
// count 1 (the default).
type Stream struct {
	Name   string
	schema bat.Schema
	Basket *basket.Sharded

	// remoteMu guards the fabric marker: a stream exported to a
	// distributed shard fabric carries the partition layout as a tag that
	// plan.GroupKey folds into the shared-execution group key, so the
	// shard-range assignment is part of the grouping identity.
	remoteMu  sync.Mutex
	remoteTag string
}

// Schema reports the column layout.
func (s *Stream) Schema() bat.Schema { return s.schema }

// MarkRemote tags the stream as served by a distributed shard fabric. The
// tag names the partition layout (worker count and shard ranges) and
// becomes part of every group key over the stream. Mark before queries
// register; an empty tag clears the marker.
func (s *Stream) MarkRemote(tag string) {
	s.remoteMu.Lock()
	s.remoteTag = tag
	s.remoteMu.Unlock()
}

// RemoteTag reports the fabric tag ("" for a local stream).
func (s *Stream) RemoteTag() string {
	s.remoteMu.Lock()
	defer s.remoteMu.Unlock()
	return s.remoteTag
}

// DefaultTimeCol returns the name of the stream's first TIMESTAMP column,
// the default ordering attribute for time-based windows, or "" if none.
func (s *Stream) DefaultTimeCol() string {
	for i, k := range s.schema.Kinds {
		if k == bat.Time {
			return s.schema.Names[i]
		}
	}
	return ""
}

// Catalog is the name → object registry. All methods are safe for
// concurrent use.
type Catalog struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	streams map[string]*Stream

	// gmu guards the shared-execution group registry (groups.go). It is
	// separate from mu so group join/leave — which may construct a group
	// under the lock — never interleaves with schema lookups.
	gmu    sync.Mutex
	groups map[string]*groupSlot

	// gen counts schema mutations (create/drop of tables and streams).
	// Cached compilation artifacts key on it: a plan cached under one
	// generation is valid only while the generation is unchanged, since
	// name resolution could bind differently after any DDL.
	gen atomic.Int64
}

// Gen reports the current schema generation. It increments on every
// successful CreateTable/CreateStream*/DropTable/DropStream.
func (c *Catalog) Gen() int64 { return c.gen.Load() }

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:  make(map[string]*Table),
		streams: make(map[string]*Stream),
	}
}

// CreateTable registers a new persistent table.
func (c *Catalog) CreateTable(name string, schema bat.Schema) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.freeLocked(name); err != nil {
		return nil, err
	}
	t := NewTable(name, schema)
	c.tables[name] = t
	c.gen.Add(1)
	return t, nil
}

// CreateStream registers a new stream and allocates its basket (a single
// shard).
func (c *Catalog) CreateStream(name string, schema bat.Schema) (*Stream, error) {
	return c.CreateStreamSharded(name, schema, 1, -1)
}

// CreateStreamSharded registers a new stream whose basket is partitioned
// into shards: rows route by hash of the key column keyIdx, or round-robin
// when keyIdx < 0.
func (c *Catalog) CreateStreamSharded(name string, schema bat.Schema, shards, keyIdx int) (*Stream, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.freeLocked(name); err != nil {
		return nil, err
	}
	s := &Stream{Name: name, schema: schema, Basket: basket.NewSharded(name, schema, shards, keyIdx)}
	c.streams[name] = s
	c.gen.Add(1)
	return s, nil
}

func (c *Catalog) freeLocked(name string) error {
	if _, ok := c.tables[name]; ok {
		return fmt.Errorf("catalog: %q already exists as a table", name)
	}
	if _, ok := c.streams[name]; ok {
		return fmt.Errorf("catalog: %q already exists as a stream", name)
	}
	return nil
}

// Table looks up a persistent table.
func (c *Catalog) Table(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	return t, ok
}

// Stream looks up a stream.
func (c *Catalog) Stream(name string) (*Stream, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.streams[name]
	return s, ok
}

// DropTable removes a table.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; !ok {
		return fmt.Errorf("catalog: no table %q", name)
	}
	delete(c.tables, name)
	c.gen.Add(1)
	return nil
}

// DropStream removes a stream. The caller (the engine) is responsible for
// stopping the queries bound to it first.
func (c *Catalog) DropStream(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.streams[name]; !ok {
		return fmt.Errorf("catalog: no stream %q", name)
	}
	delete(c.streams, name)
	c.gen.Add(1)
	return nil
}

// TableNames lists tables in sorted order.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// StreamNames lists streams in sorted order.
func (c *Catalog) StreamNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.streams))
	for n := range c.streams {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SchemaFromDefs converts parsed column definitions (name, SQL type name)
// into a schema. It is shared by the engine's DDL paths.
func SchemaFromDefs(names []string, types []string) (bat.Schema, error) {
	kinds := make([]bat.Kind, len(types))
	seen := make(map[string]bool, len(names))
	for i, tn := range types {
		k, err := bat.ParseKind(tn)
		if err != nil {
			return bat.Schema{}, err
		}
		kinds[i] = k
		if seen[names[i]] {
			return bat.Schema{}, fmt.Errorf("catalog: duplicate column %q", names[i])
		}
		seen[names[i]] = true
	}
	return bat.NewSchema(names, kinds), nil
}
