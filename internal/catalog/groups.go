// Shared-execution group registry. Continuous queries whose windowed
// stream scans agree on a group key (stream, window kind, slide
// granularity — see plan.GroupKey) share one execution group that drains
// and slices the stream once; the catalog tracks which groups exist and
// how many member queries each has, so CREATE/DROP QUERY can join and
// leave atomically. The group runtime itself lives in the factory layer;
// the registry stores it opaquely to keep the catalog free of plan and
// execution dependencies.
package catalog

import (
	"sort"
)

type groupSlot struct {
	v       any
	members int
}

// JoinGroup adds a member to the group registered under key, creating the
// group via create (called under the registry lock, so two concurrent
// joins cannot double-create) when none exists. It returns the group value
// and the new member count.
func (c *Catalog) JoinGroup(key string, create func() any) (v any, members int) {
	c.gmu.Lock()
	defer c.gmu.Unlock()
	if c.groups == nil {
		c.groups = make(map[string]*groupSlot)
	}
	slot, ok := c.groups[key]
	if !ok {
		slot = &groupSlot{v: create()}
		c.groups[key] = slot
	}
	slot.members++
	return slot.v, slot.members
}

// LeaveGroup removes one member from the group under key. When the last
// member leaves, the slot is deleted under the registry lock — a
// concurrent JoinGroup then creates a fresh group — and the stale value is
// returned for the caller to tear down outside the lock. remaining is the
// member count after leaving (-1 if the key is unknown).
func (c *Catalog) LeaveGroup(key string) (v any, remaining int) {
	c.gmu.Lock()
	defer c.gmu.Unlock()
	slot, ok := c.groups[key]
	if !ok {
		return nil, -1
	}
	slot.members--
	if slot.members <= 0 {
		delete(c.groups, key)
		return slot.v, 0
	}
	return slot.v, slot.members
}

// Group looks up the registered group under key.
func (c *Catalog) Group(key string) (any, bool) {
	c.gmu.Lock()
	defer c.gmu.Unlock()
	slot, ok := c.groups[key]
	if !ok {
		return nil, false
	}
	return slot.v, true
}

// GroupKeys lists the registered group keys, sorted.
func (c *Catalog) GroupKeys() []string {
	c.gmu.Lock()
	defer c.gmu.Unlock()
	out := make([]string, 0, len(c.groups))
	for k := range c.groups {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// GroupMembers reports the member count of the group under key (0 if the
// key is unknown).
func (c *Catalog) GroupMembers(key string) int {
	c.gmu.Lock()
	defer c.gmu.Unlock()
	if slot, ok := c.groups[key]; ok {
		return slot.members
	}
	return 0
}
