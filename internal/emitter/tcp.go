package emitter

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"datacell/internal/bat"
)

// TCPServer is a network emitter: clients connect and receive every result
// as CSV lines preceded by a metadata comment line. A slow or dead client
// is dropped rather than allowed to stall the query network — emitters are
// the per-client delivery processes of the paper's Figure 1.
type TCPServer struct {
	ln     net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

// ListenTCP starts an emitter server on addr (e.g. "127.0.0.1:0").
func ListenTCP(addr string) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &TCPServer{ln: ln, conns: make(map[net.Conn]bool)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr reports the listener address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Clients reports the number of connected clients.
func (s *TCPServer) Clients() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
	}
}

// Emit implements Emitter: broadcast the rendered result to every client,
// dropping clients whose writes fail or stall.
func (s *TCPServer) Emit(c *bat.Chunk, m Meta) {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s seq=%d rows=%d latency=%dus\n", m.Query, m.Seq, c.Rows(), m.LatencyUsec)
	rows := c.Rows()
	for i := 0; i < rows; i++ {
		vals := c.Row(i)
		parts := make([]string, len(vals))
		for j, v := range vals {
			parts[j] = v.String()
		}
		b.WriteString(strings.Join(parts, ","))
		b.WriteByte('\n')
	}
	payload := []byte(b.String())

	s.mu.Lock()
	defer s.mu.Unlock()
	for conn := range s.conns {
		_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
		if _, err := conn.Write(payload); err != nil {
			_ = conn.Close()
			delete(s.conns, conn)
		}
	}
}

// Close implements Emitter.
func (s *TCPServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	_ = s.ln.Close()
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.conns = make(map[net.Conn]bool)
	s.mu.Unlock()
	s.wg.Wait()
}
