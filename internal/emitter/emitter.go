// Package emitter implements DataCell's emitters: the per-client processes
// that deliver continuous query results to the outside world (paper §3,
// Figure 1). Factories place each evaluation's result set into their
// output emitter, which forwards it to channels, writers or network
// clients.
package emitter

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"datacell/internal/bat"
)

// Meta describes one emitted result set.
type Meta struct {
	// Query is the continuous query name.
	Query string
	// Seq numbers the query's results from 0.
	Seq int64
	// FiredAt is the evaluation time (microseconds).
	FiredAt int64
	// LatencyUsec is FiredAt minus the arrival stamp of the newest tuple
	// that triggered the evaluation — the paper's event-handling response
	// time.
	LatencyUsec int64
	// TriggerGen is the basic window (or batch) sequence number that
	// triggered the evaluation.
	TriggerGen int64
}

// Result couples a result chunk with its metadata.
type Result struct {
	Chunk *bat.Chunk
	Meta  Meta
}

// Emitter consumes result sets. Implementations must tolerate concurrent
// Emit calls from different factories.
type Emitter interface {
	Emit(c *bat.Chunk, m Meta)
	Close()
}

// Channel delivers results over a Go channel. When the consumer falls
// behind and the buffer fills, results are dropped and counted rather than
// blocking the factory — an emitter must never stall the query network.
type Channel struct {
	ch      chan Result
	dropped atomic.Int64
	closeMu sync.Mutex
	closed  bool
}

// NewChannel creates a channel emitter with the given buffer size.
func NewChannel(buf int) *Channel {
	return &Channel{ch: make(chan Result, buf)}
}

// Out is the consumer side.
func (e *Channel) Out() <-chan Result { return e.ch }

// Dropped reports how many results were discarded due to a full buffer.
func (e *Channel) Dropped() int64 { return e.dropped.Load() }

// Pending reports how many emitted results sit unconsumed in the buffer
// — the consumer-lag gauge behind per-tenant ingest backpressure and the
// /metrics results backlog.
func (e *Channel) Pending() int { return len(e.ch) }

// Cap reports the buffer capacity.
func (e *Channel) Cap() int { return cap(e.ch) }

// Emit implements Emitter.
func (e *Channel) Emit(c *bat.Chunk, m Meta) {
	e.closeMu.Lock()
	defer e.closeMu.Unlock()
	if e.closed {
		e.dropped.Add(1)
		return
	}
	select {
	case e.ch <- Result{Chunk: c, Meta: m}:
	default:
		e.dropped.Add(1)
	}
}

// Close implements Emitter.
func (e *Channel) Close() {
	e.closeMu.Lock()
	defer e.closeMu.Unlock()
	if !e.closed {
		e.closed = true
		close(e.ch)
	}
}

// Writer renders results as CSV lines ("query,seq,col1,col2,...") to an
// io.Writer, one line per row.
type Writer struct {
	mu     sync.Mutex
	w      io.Writer
	header bool
}

// NewWriter creates a writer emitter. If header is true, each result set
// is preceded by a comment line with the query name and metadata.
func NewWriter(w io.Writer, header bool) *Writer {
	return &Writer{w: w, header: header}
}

// Emit implements Emitter.
func (e *Writer) Emit(c *bat.Chunk, m Meta) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.header {
		fmt.Fprintf(e.w, "# %s seq=%d rows=%d latency=%dus\n",
			m.Query, m.Seq, c.Rows(), m.LatencyUsec)
	}
	rows := c.Rows()
	for i := 0; i < rows; i++ {
		vals := c.Row(i)
		parts := make([]string, len(vals))
		for j, v := range vals {
			parts[j] = v.String()
		}
		fmt.Fprintln(e.w, strings.Join(parts, ","))
	}
}

// Close implements Emitter.
func (e *Writer) Close() {}

// Func adapts a callback into an Emitter.
type Func func(c *bat.Chunk, m Meta)

// Emit implements Emitter.
func (f Func) Emit(c *bat.Chunk, m Meta) { f(c, m) }

// Close implements Emitter.
func (Func) Close() {}

// Null discards results (used by benchmarks measuring pure engine cost).
type Null struct{}

// Emit implements Emitter.
func (Null) Emit(*bat.Chunk, Meta) {}

// Close implements Emitter.
func (Null) Close() {}

// Multi fans results out to several emitters.
type Multi []Emitter

// Emit implements Emitter.
func (m Multi) Emit(c *bat.Chunk, meta Meta) {
	for _, e := range m {
		e.Emit(c, meta)
	}
}

// Close implements Emitter.
func (m Multi) Close() {
	for _, e := range m {
		e.Close()
	}
}
