package emitter

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadFrame pins the frame decoder's safety properties: arbitrary
// bytes never panic (malformed input errors), and any frame that parses
// survives a write→read round trip intact.
func FuzzReadFrame(f *testing.F) {
	seed := func(fr Frame) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(Frame{Type: 1, Seq: 7, Payload: []byte("hello")}))
	f.Add(seed(Frame{Type: 13, Seq: 1 << 40}))
	// The fabric's coalesced traffic: a batch frame (type 18) whose payload
	// concatenates {type, uvarint len, payload} sub-frames — here a spec
	// (type 6, as a join side registers per side) and a fragment (type 13)
	// — and a data-plane handshake (type 19). The framing layer treats
	// payloads as opaque; these seeds keep the corpus shaped like live
	// traffic.
	f.Add(seed(Frame{Type: 18, Seq: 3, Payload: []byte{6, 4, 14, 1, 115, 0, 13, 2, 9, 9}}))
	f.Add(seed(Frame{Type: 19, Seq: 1, Payload: []byte{3, 1, 0, 3, 119, 45, 49, 0}}))
	f.Add([]byte(nil))
	// Oversized length prefix: must be rejected before allocation.
	huge := make([]byte, frameHeaderLen)
	binary.BigEndian.PutUint32(huge, MaxFramePayload+1)
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			t.Fatalf("re-write of parsed frame failed: %v", err)
		}
		fr2, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if fr2.Type != fr.Type || fr2.Seq != fr.Seq || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("round trip diverged: %+v vs %+v", fr, fr2)
		}
	})
}
