package emitter

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadFrame pins the frame decoder's safety properties: arbitrary
// bytes never panic (malformed input errors), and any frame that parses
// survives a write→read round trip intact.
func FuzzReadFrame(f *testing.F) {
	seed := func(fr Frame) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(Frame{Type: 1, Seq: 7, Payload: []byte("hello")}))
	f.Add(seed(Frame{Type: 13, Seq: 1 << 40}))
	f.Add([]byte(nil))
	// Oversized length prefix: must be rejected before allocation.
	huge := make([]byte, frameHeaderLen)
	binary.BigEndian.PutUint32(huge, MaxFramePayload+1)
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			t.Fatalf("re-write of parsed frame failed: %v", err)
		}
		fr2, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if fr2.Type != fr.Type || fr2.Seq != fr.Seq || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("round trip diverged: %+v vs %+v", fr, fr2)
		}
	})
}
