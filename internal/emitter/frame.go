package emitter

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Length-prefixed framing for the distributed shard fabric: workers ship
// sealed basic windows (and the session traffic around them — appends,
// watermarks, acks) to the coordinator as typed frames over the same TCP
// fabric the emitters use. A frame is
//
//	[4-byte big-endian payload length][1-byte type][8-byte sequence][payload]
//
// The sequence number is the fabric's resume cursor: session frames are
// stamped with a per-direction monotone counter, the receiver acknowledges
// the highest in-order sequence it has processed, and a reconnecting peer
// replays everything after the last acknowledged frame — which is how a
// connection dropped mid-window resumes from the last acked epoch with no
// duplicated or lost windows. Handshake and ack frames reuse the sequence
// field to carry the sender's receive cursor.

// MaxFramePayload bounds a frame's payload; a peer announcing more is
// corrupt (or hostile) and the connection is dropped rather than the
// allocation attempted.
const MaxFramePayload = 64 << 20

// Frame is one fabric protocol frame.
type Frame struct {
	// Type tags the payload (the fabric defines the vocabulary).
	Type byte
	// Seq is the session sequence number for stamped frames, or the
	// sender's receive cursor for handshake/ack frames.
	Seq uint64
	// Payload is the type-specific body.
	Payload []byte
}

const frameHeaderLen = 4 + 1 + 8

// WriteFrame writes one frame. It performs a single Write call so a frame
// is either fully buffered to the connection or not written at all from
// the caller's perspective (a mid-frame connection drop leaves the
// receiver with a short read, which ReadFrame reports as an error).
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxFramePayload {
		return fmt.Errorf("emitter: frame payload %d exceeds limit %d", len(f.Payload), MaxFramePayload)
	}
	buf := make([]byte, frameHeaderLen+len(f.Payload))
	binary.BigEndian.PutUint32(buf[0:], uint32(len(f.Payload)))
	buf[4] = f.Type
	binary.BigEndian.PutUint64(buf[5:], f.Seq)
	copy(buf[frameHeaderLen:], f.Payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame. Short reads (a connection dropped mid-frame)
// and oversized length prefixes return errors; the caller is expected to
// drop the connection and let the session resume protocol replay the
// partial frame after reconnecting.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[0:])
	if n > MaxFramePayload {
		return Frame{}, fmt.Errorf("emitter: frame payload %d exceeds limit %d", n, MaxFramePayload)
	}
	f := Frame{Type: hdr[4], Seq: binary.BigEndian.Uint64(hdr[5:])}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, err
		}
	}
	return f, nil
}
