package emitter

import (
	"bytes"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := []Frame{
		{Type: 1, Seq: 0, Payload: nil},
		{Type: 7, Seq: 42, Payload: []byte("hello")},
		{Type: 255, Seq: 1 << 60, Payload: make([]byte, 100_000)},
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Seq != want.Seq || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got type=%d seq=%d len=%d", i, got.Type, got.Seq, len(got.Payload))
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("empty stream: %v, want EOF", err)
	}
}

// TestFramePartial pins the mid-frame-drop behavior the fabric's resume
// protocol relies on: a truncated frame is an error (never a short or
// corrupt frame), so the receiver drops the connection and the sender
// replays from the last acked sequence.
func TestFramePartial(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: 3, Seq: 9, Payload: []byte("windowdata")}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := ReadFrame(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("partial frame of %d/%d bytes read without error", cut, len(full))
		}
	}
}

func TestFrameOversize(t *testing.T) {
	if err := WriteFrame(io.Discard, Frame{Payload: make([]byte, MaxFramePayload+1)}); err == nil {
		t.Fatal("oversized write accepted")
	}
	var hdr bytes.Buffer
	_ = WriteFrame(&hdr, Frame{Payload: []byte("x")})
	b := hdr.Bytes()
	b[0], b[1], b[2], b[3] = 0xFF, 0xFF, 0xFF, 0xFF // corrupt length prefix
	if _, err := ReadFrame(bytes.NewReader(b)); err == nil {
		t.Fatal("oversized length prefix accepted")
	}
}
