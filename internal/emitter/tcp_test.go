package emitter

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"datacell/internal/bat"
)

func tcpChunk(vals ...int64) *bat.Chunk {
	sch := bat.NewSchema([]string{"k", "n"}, []bat.Kind{bat.Int, bat.Int})
	c := bat.NewChunk(sch)
	for i, v := range vals {
		_ = c.AppendRow(bat.IntValue(int64(i)), bat.IntValue(v))
	}
	return c
}

func waitClients(t *testing.T, s *TCPServer, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for s.Clients() != want {
		if time.Now().After(deadline) {
			t.Fatalf("clients = %d, want %d", s.Clients(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTCPFramedDelivery checks the wire format: every emitted window is a
// '#' metadata line followed by one CSV line per row, so a line-oriented
// client can reframe result sets without ambiguity.
func TestTCPFramedDelivery(t *testing.T) {
	s, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	waitClients(t, s, 1)

	s.Emit(tcpChunk(10, 20), Meta{Query: "q", Seq: 0, LatencyUsec: 5})
	s.Emit(tcpChunk(30), Meta{Query: "q", Seq: 1, LatencyUsec: 7})

	r := bufio.NewReader(conn)
	readLine := func() string {
		_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		return strings.TrimRight(line, "\n")
	}
	if got := readLine(); got != "# q seq=0 rows=2 latency=5us" {
		t.Fatalf("frame 0 header = %q", got)
	}
	if got := readLine(); got != "0,10" {
		t.Fatalf("frame 0 row 0 = %q", got)
	}
	if got := readLine(); got != "1,20" {
		t.Fatalf("frame 0 row 1 = %q", got)
	}
	if got := readLine(); got != "# q seq=1 rows=1 latency=7us" {
		t.Fatalf("frame 1 header = %q", got)
	}
	if got := readLine(); got != "0,30" {
		t.Fatalf("frame 1 row = %q", got)
	}
}

// TestTCPClientDisconnectMidWindow checks that a client vanishing between
// windows is dropped from the broadcast set instead of stalling or
// wedging the emitter, and that a healthy client keeps receiving.
func TestTCPClientDisconnectMidWindow(t *testing.T) {
	s, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	healthy, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	flaky, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	waitClients(t, s, 2)

	s.Emit(tcpChunk(1), Meta{Query: "q", Seq: 0})
	_ = flaky.Close() // disconnect mid-stream

	// Keep emitting until the server notices the dead peer (the first
	// write after a close may still land in the kernel buffer).
	deadline := time.Now().Add(5 * time.Second)
	seq := int64(1)
	for s.Clients() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("dead client never dropped: clients = %d", s.Clients())
		}
		s.Emit(tcpChunk(2), Meta{Query: "q", Seq: seq})
		seq++
		time.Sleep(time.Millisecond)
	}

	// The healthy client still gets every frame, starting from seq 0.
	r := bufio.NewReader(healthy)
	_ = healthy.SetReadDeadline(time.Now().Add(2 * time.Second))
	line, err := r.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "# q seq=0") {
		t.Fatalf("healthy client frame = %q, err %v", line, err)
	}
}

// TestTCPReconnect checks that a client can drop and reconnect: the new
// connection receives everything emitted after it attached.
func TestTCPReconnect(t *testing.T) {
	s, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	first, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	waitClients(t, s, 1)
	_ = first.Close()
	deadline := time.Now().Add(5 * time.Second)
	for s.Clients() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("closed client still counted: %d", s.Clients())
		}
		s.Emit(tcpChunk(9), Meta{Query: "q", Seq: 100})
		time.Sleep(time.Millisecond)
	}

	second, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	waitClients(t, s, 1)
	s.Emit(tcpChunk(42), Meta{Query: "q", Seq: 200, LatencyUsec: 1})

	r := bufio.NewReader(second)
	_ = second.SetReadDeadline(time.Now().Add(2 * time.Second))
	header, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(header, "# q seq=200") {
		t.Fatalf("reconnected client header = %q", header)
	}
	row, err := r.ReadString('\n')
	if err != nil || strings.TrimRight(row, "\n") != "0,42" {
		t.Fatalf("reconnected client row = %q, err %v", row, err)
	}
}
