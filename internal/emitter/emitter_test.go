package emitter

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"datacell/internal/bat"
)

func testChunk() *bat.Chunk {
	c := bat.NewChunk(bat.NewSchema([]string{"k", "v"}, []bat.Kind{bat.Int, bat.Str}))
	_ = c.AppendRow(bat.IntValue(1), bat.StrValue("a"))
	_ = c.AppendRow(bat.IntValue(2), bat.StrValue("b"))
	return c
}

func TestChannelEmitter(t *testing.T) {
	e := NewChannel(2)
	e.Emit(testChunk(), Meta{Query: "q", Seq: 0})
	e.Emit(testChunk(), Meta{Query: "q", Seq: 1})
	e.Emit(testChunk(), Meta{Query: "q", Seq: 2}) // buffer full → dropped
	if e.Dropped() != 1 {
		t.Errorf("Dropped = %d", e.Dropped())
	}
	r := <-e.Out()
	if r.Meta.Seq != 0 || r.Chunk.Rows() != 2 {
		t.Errorf("result = %+v", r.Meta)
	}
	e.Close()
	e.Close() // idempotent
	e.Emit(testChunk(), Meta{})
	if e.Dropped() != 2 {
		t.Errorf("Dropped after close = %d", e.Dropped())
	}
	// Channel is closed: drain remaining then zero value.
	<-e.Out()
	if _, ok := <-e.Out(); ok {
		t.Error("channel should be closed")
	}
}

func TestWriterEmitter(t *testing.T) {
	var sb strings.Builder
	e := NewWriter(&sb, true)
	e.Emit(testChunk(), Meta{Query: "q", Seq: 3, LatencyUsec: 42})
	e.Close()
	out := sb.String()
	if !strings.Contains(out, "# q seq=3 rows=2 latency=42us") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "1,a\n2,b\n") {
		t.Errorf("rows missing:\n%s", out)
	}
	var sb2 strings.Builder
	e2 := NewWriter(&sb2, false)
	e2.Emit(testChunk(), Meta{})
	if strings.Contains(sb2.String(), "#") {
		t.Error("unexpected header")
	}
}

func TestFuncAndNullAndMulti(t *testing.T) {
	var got int
	f := Func(func(c *bat.Chunk, m Meta) { got += c.Rows() })
	m := Multi{f, Null{}}
	m.Emit(testChunk(), Meta{})
	m.Close()
	if got != 2 {
		t.Errorf("func emitter rows = %d", got)
	}
}

func TestTCPServerEmitter(t *testing.T) {
	s, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Wait for the server to register the client.
	for i := 0; i < 100 && s.Clients() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if s.Clients() != 1 {
		t.Fatalf("clients = %d", s.Clients())
	}
	s.Emit(testChunk(), Meta{Query: "net", Seq: 7})
	rd := bufio.NewReader(conn)
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	header, err := rd.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(header, "net seq=7") {
		t.Errorf("header = %q", header)
	}
	line, _ := rd.ReadString('\n')
	if strings.TrimSpace(line) != "1,a" {
		t.Errorf("row = %q", line)
	}
}

func TestTCPServerDropsDeadClients(t *testing.T) {
	s, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn, _ := net.Dial("tcp", s.Addr())
	for i := 0; i < 100 && s.Clients() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	_ = conn.Close()
	// Emitting to a closed client eventually drops it without blocking.
	for i := 0; i < 10; i++ {
		s.Emit(testChunk(), Meta{})
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Clients() > 0 && time.Now().Before(deadline) {
		s.Emit(testChunk(), Meta{})
		time.Sleep(5 * time.Millisecond)
	}
	if s.Clients() != 0 {
		t.Error("dead client not dropped")
	}
}

func TestTCPServerCloseIdempotent(t *testing.T) {
	s, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close()
}
