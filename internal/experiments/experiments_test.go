package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// The experiment functions are exercised at toy scale: correctness of the
// numbers they derive is covered by the engine tests; here we check that
// each harness runs, produces the advertised columns, and that the
// headline shapes hold where they are deterministic.

func TestE1Shape(t *testing.T) {
	tab := E1ReevalVsIncremental([]int64{512, 2048}, 8)
	if len(tab.Rows) != 2 || len(tab.Header) != 6 {
		t.Fatalf("table = %+v", tab)
	}
	out := tab.String()
	if !strings.Contains(out, "E1") || !strings.Contains(out, "speedup") {
		t.Errorf("render:\n%s", out)
	}
	// Both modes saw the same number of evaluations per row.
	for _, r := range tab.Rows {
		if evals, _ := strconv.Atoi(r[5]); evals < 2 {
			t.Errorf("too few evals: %v", r)
		}
	}
}

func TestE2Shape(t *testing.T) {
	tab := E2SlideSweep(2048, []int64{8, 2, 1})
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Slides must sweep up to the tumbling case (slide == window).
	if tab.Rows[2][0] != "2048" {
		t.Errorf("last slide = %s", tab.Rows[2][0])
	}
}

func TestE3Shape(t *testing.T) {
	tab := E3QueryComplexity(512, 128)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	names := []string{"select-project", "grouped aggregate", "stream join", "join + aggregate"}
	for i, r := range tab.Rows {
		if r[0] != names[i] {
			t.Errorf("row %d = %v", i, r)
		}
	}
}

func TestE4Shape(t *testing.T) {
	tab := E4StreamTableJoin([]int{100, 1000}, 8192)
	if len(tab.Rows) != 3 { // stream-only + 2 dim sizes
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][1] != "stream-only" {
		t.Errorf("baseline row = %v", tab.Rows[0])
	}
}

func TestE5Shape(t *testing.T) {
	tab := E5QueryNetwork([]int{1, 4}, 4096)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	e1, _ := strconv.Atoi(tab.Rows[0][3])
	e4, _ := strconv.Atoi(tab.Rows[1][3])
	if e4 != 4*e1 {
		t.Errorf("evals should scale linearly with queries: %d vs %d", e1, e4)
	}
}

func TestE6Shape(t *testing.T) {
	tab := E6LinearRoad([]int{1}, 180)
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][6] != "true" {
		t.Errorf("LR constraint failed at toy scale: %v", tab.Rows[0])
	}
}

func TestE7Shape(t *testing.T) {
	tab, analysis := E7Analysis(8192, 4)
	if len(tab.Rows) < 2 {
		t.Fatalf("intervals = %d", len(tab.Rows))
	}
	if !strings.Contains(analysis, "basket s:") || !strings.Contains(analysis, "query watch:") {
		t.Errorf("analysis pane:\n%s", analysis)
	}
}

func TestSensorChunksDeterministic(t *testing.T) {
	a := sensorChunks(1000, 128, 8)
	b := sensorChunks(1000, 128, 8)
	if len(a) != len(b) || len(a) != 8 {
		t.Fatalf("chunks = %d", len(a))
	}
	total := 0
	for i := range a {
		total += a[i].Rows()
		if a[i].Rows() != b[i].Rows() {
			t.Fatal("nondeterministic chunking")
		}
	}
	if total != 1000 {
		t.Errorf("total = %d", total)
	}
	// Keys stay within [0, nkeys).
	for _, c := range a {
		ks := c.Cols[1]
		for i := 0; i < ks.Len(); i++ {
			if k := ks.Get(i).I; k < 0 || k >= 8 {
				t.Fatalf("key out of range: %d", k)
			}
		}
	}
}
