package experiments

import "testing"

// TestMultiTenantHarness runs a scaled-down harness: every tenant lands
// exactly at its fair-share quota, every deliberate over-quota probe is
// rejected, and the latency sample is non-empty.
func TestMultiTenantHarness(t *testing.T) {
	r := MultiTenant(4, 64, 1<<13, 1024)
	t.Log("\n" + r.String())
	if r.Queries != 64 {
		t.Errorf("registered %d queries, want 64", r.Queries)
	}
	if r.Rejected != 4 {
		t.Errorf("rejected %d over-quota probes, want 4 (one per tenant)", r.Rejected)
	}
	if r.P99SealUsec <= 0 {
		t.Errorf("p99 seal latency %v, want > 0", r.P99SealUsec)
	}
	if r.QueriesPerCore <= 0 {
		t.Errorf("queries_per_core %v, want > 0", r.QueriesPerCore)
	}
}
