// Package experiments implements the reproduction harness: one function
// per experiment in DESIGN.md §5 (E1–E7), each regenerating the
// corresponding demo-scenario result as a printed table. The benchmark
// entry points in bench_test.go and the cmd/dcbench harness both drive
// these functions; EXPERIMENTS.md records the measured shapes against the
// paper's claims.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"datacell"
	"datacell/internal/basket"
	"datacell/internal/bat"
	"datacell/internal/factory"
	"datacell/internal/linearroad"
	"datacell/internal/monitor"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// sensorSchema is the synthetic workload layout shared by E1–E5 and E7.
func sensorSchema() bat.Schema {
	return bat.NewSchema(
		[]string{"ts", "k", "v"},
		[]bat.Kind{bat.Time, bat.Int, bat.Float},
	)
}

// sensorChunks generates n tuples of (ts, k, v) with nkeys distinct keys,
// in batches of batch rows. Values follow a deterministic pattern so runs
// are reproducible without RNG state in hot loops.
func sensorChunks(n, batch, nkeys int) []*bat.Chunk {
	sch := sensorSchema()
	var out []*bat.Chunk
	for pos := 0; pos < n; {
		take := batch
		if pos+take > n {
			take = n - pos
		}
		ts := make(bat.Times, take)
		ks := make(bat.Ints, take)
		vs := make(bat.Floats, take)
		for i := 0; i < take; i++ {
			g := pos + i
			ts[i] = int64(g)
			ks[i] = int64(g*2654435761) % int64(nkeys)
			if ks[i] < 0 {
				ks[i] += int64(nkeys)
			}
			vs[i] = float64(g%1000) * 0.5
		}
		out = append(out, &bat.Chunk{Schema: sch, Cols: []bat.Vector{ts, ks, vs}})
		pos += take
	}
	return out
}

// runResult is one measured query run.
type runResult struct {
	Wall     time.Duration
	Evals    int64
	TuplesIn int64
	RowsOut  int64
}

// usPerEval is the headline metric: microseconds of wall time per window
// evaluation (per slide).
func (r runResult) usPerEval() float64 {
	if r.Evals == 0 {
		return 0
	}
	return float64(r.Wall.Microseconds()) / float64(r.Evals)
}

// runQuery feeds chunks through a single registered query and measures
// wall time to fully drain the network.
func runQuery(mode datacell.Mode, sql string, chunks []*bat.Chunk, extraDDL ...string) runResult {
	eng := datacell.New(&datacell.Options{Workers: 2})
	defer eng.Close()
	for _, ddl := range extraDDL {
		if _, err := eng.Exec(ddl); err != nil {
			panic(fmt.Sprintf("experiments: %s: %v", ddl, err))
		}
	}
	if _, err := eng.Exec("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)"); err != nil {
		panic(err)
	}
	q, err := eng.RegisterQuery("q", sql, datacell.WithMode(mode), datacell.NoChannel())
	if err != nil {
		panic(fmt.Sprintf("experiments: register %q: %v", sql, err))
	}
	start := time.Now()
	for _, c := range chunks {
		if err := eng.Append("s", c); err != nil {
			panic(err)
		}
	}
	eng.Drain()
	wall := time.Since(start)
	st := q.Stats()
	return runResult{Wall: wall, Evals: st.Evals, TuplesIn: st.TuplesIn, RowsOut: st.RowsOut}
}

// E1ReevalVsIncremental sweeps the window size with a fixed size/slide
// ratio and compares the two execution modes — the demo's "Simple
// Re-evaluation vs Incremental" scenario. Expected shape: incremental wins
// and the gap grows with the window size (re-evaluation is O(W) per slide,
// incremental is O(s + merge)).
func E1ReevalVsIncremental(sizes []int64, parts int64) *Table {
	t := &Table{
		Title: "E1: re-evaluation vs incremental, per-slide cost",
		Header: []string{"window", "slide", "reeval µs/slide", "incr µs/slide",
			"speedup", "evals"},
	}
	for _, w := range sizes {
		s := w / parts
		n := int(w * 3)
		chunks := sensorChunks(n, int(s), 16)
		sql := fmt.Sprintf(
			"SELECT k, sum(v) AS s, count(*) AS n FROM s [SIZE %d SLIDE %d] GROUP BY k", w, s)
		re := runQuery(datacell.ModeReeval, sql, chunks)
		inc := runQuery(datacell.ModeIncremental, sql, chunks)
		speedup := 0.0
		if inc.usPerEval() > 0 {
			speedup = re.usPerEval() / inc.usPerEval()
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(w), fmt.Sprint(s),
			fmt.Sprintf("%.1f", re.usPerEval()),
			fmt.Sprintf("%.1f", inc.usPerEval()),
			fmt.Sprintf("%.2fx", speedup),
			fmt.Sprint(inc.Evals),
		})
	}
	return t
}

// E2SlideSweep fixes the window size and sweeps the slide — the demo's
// "Window Sizes" scenario. Expected shape: the incremental advantage is
// largest for small slides (many basic windows reused) and vanishes as the
// slide approaches the window (tumbling windows, where both modes do the
// same work).
func E2SlideSweep(size int64, parts []int64) *Table {
	t := &Table{
		Title: fmt.Sprintf("E2: slide sweep at window=%d", size),
		Header: []string{"slide", "w/s", "reeval µs/slide", "incr µs/slide",
			"speedup"},
	}
	for _, p := range parts {
		s := size / p
		n := int(size * 3)
		chunks := sensorChunks(n, int(s), 16)
		sql := fmt.Sprintf(
			"SELECT k, sum(v) AS s FROM s [SIZE %d SLIDE %d] GROUP BY k", size, s)
		re := runQuery(datacell.ModeReeval, sql, chunks)
		inc := runQuery(datacell.ModeIncremental, sql, chunks)
		speedup := 0.0
		if inc.usPerEval() > 0 {
			speedup = re.usPerEval() / inc.usPerEval()
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(s), fmt.Sprint(p),
			fmt.Sprintf("%.1f", re.usPerEval()),
			fmt.Sprintf("%.1f", inc.usPerEval()),
			fmt.Sprintf("%.2fx", speedup),
		})
	}
	return t
}

// E3QueryComplexity compares simple select-project-aggregate plans with
// complex (join) plans under both modes — the demo's "Complex Queries"
// scenario. The join runs on two lockstep streams; its incremental form
// caches per-basic-window-pair join results.
func E3QueryComplexity(size, slide int64) *Table {
	t := &Table{
		Title:  "E3: simple vs complex (join) continuous queries",
		Header: []string{"query", "reeval µs/slide", "incr µs/slide", "speedup"},
	}
	n := int(size * 3)

	type tc struct {
		name string
		sql  string
		two  bool
	}
	// Join workloads use sparse keys (≈ one match per key pair) so probe
	// and build work — the cost the pair cache saves — dominates over
	// materializing the join output, which both modes must produce.
	cases := []tc{
		{"select-project", fmt.Sprintf(
			"SELECT k, v FROM s [SIZE %d SLIDE %d] WHERE v > 450.0", size, slide), false},
		{"grouped aggregate", fmt.Sprintf(
			"SELECT k, sum(v) AS t, min(v) AS lo, max(v) AS hi FROM s [SIZE %d SLIDE %d] GROUP BY k",
			size, slide), false},
		{"stream join", fmt.Sprintf(
			"SELECT s.v, r.v FROM s [SIZE %d SLIDE %d], r [SIZE %d SLIDE %d] WHERE s.k = r.k",
			size, slide, size, slide), true},
		{"join + aggregate", fmt.Sprintf(
			"SELECT s.k, count(*) AS n FROM s [SIZE %d SLIDE %d], r [SIZE %d SLIDE %d] WHERE s.k = r.k GROUP BY s.k",
			size, slide, size, slide), true},
	}
	for _, c := range cases {
		var re, inc runResult
		if c.two {
			re = runTwoStream(datacell.ModeReeval, c.sql, n, int(slide), int(size))
			inc = runTwoStream(datacell.ModeIncremental, c.sql, n, int(slide), int(size))
		} else {
			chunks := sensorChunks(n, int(slide), 64)
			re = runQuery(datacell.ModeReeval, c.sql, chunks)
			inc = runQuery(datacell.ModeIncremental, c.sql, chunks)
		}
		speedup := 0.0
		if inc.usPerEval() > 0 {
			speedup = re.usPerEval() / inc.usPerEval()
		}
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprintf("%.1f", re.usPerEval()),
			fmt.Sprintf("%.1f", inc.usPerEval()),
			fmt.Sprintf("%.2fx", speedup),
		})
	}
	return t
}

// runTwoStream drives a two-stream query with interleaved appends.
func runTwoStream(mode datacell.Mode, sql string, n, batch, nkeys int) runResult {
	eng := datacell.New(&datacell.Options{Workers: 2})
	defer eng.Close()
	for _, ddl := range []string{
		"CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)",
		"CREATE STREAM r (ts TIMESTAMP, k INT, v FLOAT)",
	} {
		if _, err := eng.Exec(ddl); err != nil {
			panic(err)
		}
	}
	q, err := eng.RegisterQuery("q", sql, datacell.WithMode(mode), datacell.NoChannel())
	if err != nil {
		panic(fmt.Sprintf("experiments: register %q: %v", sql, err))
	}
	chunksS := sensorChunks(n, batch, nkeys)
	chunksR := sensorChunks(n, batch, nkeys)
	start := time.Now()
	for i := range chunksS {
		if err := eng.Append("s", chunksS[i]); err != nil {
			panic(err)
		}
		if err := eng.Append("r", chunksR[i]); err != nil {
			panic(err)
		}
	}
	eng.Drain()
	wall := time.Since(start)
	st := q.Stats()
	return runResult{Wall: wall, Evals: st.Evals, TuplesIn: st.TuplesIn, RowsOut: st.RowsOut}
}

// E4StreamTableJoin measures the "two query paradigms" scenario: a
// continuous stream query joining a persistent dimension table, swept over
// the table size. Expected shape: throughput degrades mildly with table
// size (hash build over the snapshot), and the stream-only baseline bounds
// it from above.
func E4StreamTableJoin(dimSizes []int, tuples int) *Table {
	t := &Table{
		Title:  "E4: continuous stream ⋈ persistent table",
		Header: []string{"dim rows", "mode", "ktuples/s", "µs/slide"},
	}
	const size, slide = 4096, 1024
	chunks := sensorChunks(tuples, slide, 4096)
	// The baseline groups into the same cardinality (32 groups) as the
	// join query so the aggregation work is comparable.
	base := fmt.Sprintf(
		"SELECT k %% 32 AS g, count(*) AS n FROM s [SIZE %d SLIDE %d] GROUP BY k %% 32", size, slide)
	r := runQuery(datacell.ModeIncremental, base, chunks)
	t.Rows = append(t.Rows, []string{"(none)", "stream-only",
		fmt.Sprintf("%.0f", float64(r.TuplesIn)/r.Wall.Seconds()/1e3),
		fmt.Sprintf("%.1f", r.usPerEval())})

	for _, dn := range dimSizes {
		ddl := []string{"CREATE TABLE dim (k INT, grp INT)"}
		sql := fmt.Sprintf(`SELECT d.grp, count(*) AS n
			FROM s [SIZE %d SLIDE %d] JOIN dim d ON s.k = d.k GROUP BY d.grp`,
			size, slide)
		res := runStreamTable(sql, chunks, ddl, dn)
		t.Rows = append(t.Rows, []string{fmt.Sprint(dn), "stream⋈table",
			fmt.Sprintf("%.0f", float64(res.TuplesIn)/res.Wall.Seconds()/1e3),
			fmt.Sprintf("%.1f", res.usPerEval())})
	}
	return t
}

func runStreamTable(sql string, chunks []*bat.Chunk, ddl []string, dimRows int) runResult {
	eng := datacell.New(&datacell.Options{Workers: 2})
	defer eng.Close()
	for _, d := range ddl {
		if _, err := eng.Exec(d); err != nil {
			panic(err)
		}
	}
	if _, err := eng.Exec("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)"); err != nil {
		panic(err)
	}
	// Bulk-load the dimension table (keys cover the stream's key space).
	sch := bat.NewSchema([]string{"k", "grp"}, []bat.Kind{bat.Int, bat.Int})
	ks := make(bat.Ints, dimRows)
	gs := make(bat.Ints, dimRows)
	for i := range ks {
		ks[i] = int64(i)
		gs[i] = int64(i % 32)
	}
	dimChunk := &bat.Chunk{Schema: sch, Cols: []bat.Vector{ks, gs}}
	if err := eng.Append("dim", dimChunk); err != nil {
		panic(err)
	}
	q, err := eng.RegisterQuery("q", sql, datacell.NoChannel())
	if err != nil {
		panic(err)
	}
	start := time.Now()
	for _, c := range chunks {
		if err := eng.Append("s", c); err != nil {
			panic(err)
		}
	}
	eng.Drain()
	wall := time.Since(start)
	st := q.Stats()
	return runResult{Wall: wall, Evals: st.Evals, TuplesIn: st.TuplesIn, RowsOut: st.RowsOut}
}

// E5QueryNetwork scales the number of standing queries sharing one stream
// — the multi-query processing the paper's introduction calls out and
// Figure 3's query network visualizes. Expected shape: total work grows
// linearly with the query count while per-query cost stays flat (shared
// baskets, independent factories).
func E5QueryNetwork(counts []int, tuples int) *Table {
	t := &Table{
		Title:  "E5: scheduler scaling with standing queries",
		Header: []string{"queries", "ktuples/s (stream)", "µs/tuple/query", "total evals"},
	}
	for _, qn := range counts {
		eng := datacell.New(&datacell.Options{Workers: 4})
		if _, err := eng.Exec("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)"); err != nil {
			panic(err)
		}
		qs := make([]*datacell.Query, qn)
		for i := 0; i < qn; i++ {
			sql := fmt.Sprintf(
				"SELECT k, count(*) AS n FROM s [SIZE 1024 SLIDE 256] GROUP BY k HAVING count(*) > %d", i%7)
			q, err := eng.RegisterQuery(fmt.Sprintf("q%03d", i), sql, datacell.NoChannel())
			if err != nil {
				panic(err)
			}
			qs[i] = q
		}
		chunks := sensorChunks(tuples, 512, 16)
		start := time.Now()
		for _, c := range chunks {
			if err := eng.Append("s", c); err != nil {
				panic(err)
			}
		}
		eng.Drain()
		wall := time.Since(start)
		var evals int64
		for _, q := range qs {
			evals += q.Stats().Evals
		}
		perTupleQuery := float64(wall.Microseconds()) / float64(tuples) / float64(qn)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(qn),
			fmt.Sprintf("%.0f", float64(tuples)/wall.Seconds()/1e3),
			fmt.Sprintf("%.3f", perTupleQuery),
			fmt.Sprint(evals),
		})
		eng.Close()
	}
	return t
}

// E6LinearRoad runs the Linear Road query set at increasing scale (the
// benchmark's L factor) and reports achieved input rate and response
// times against the ≤5 s constraint — the claim inherited from the EDBT'09
// paper.
func E6LinearRoad(xways []int, durationSec int) *Table {
	t := &Table{
		Title: "E6: Linear Road response times",
		Header: []string{"L", "reports", "wall", "krep/s", "p99 latency",
			"worst", "≤5s"},
	}
	for _, L := range xways {
		eng := datacell.New(&datacell.Options{Workers: 4})
		if _, err := eng.Exec(linearroad.CreateStreamSQL); err != nil {
			panic(err)
		}
		seg, err := eng.RegisterQuery("seg_stats", linearroad.SegmentStatsSQL())
		if err != nil {
			panic(err)
		}
		if _, err := eng.RegisterQuery("accidents", linearroad.AccidentSQL(),
			datacell.NoChannel()); err != nil {
			panic(err)
		}
		cfg := linearroad.Config{
			Xways: L, CarsPerXway: 500, DurationSec: durationSec,
			ReportEverySec: 30, AccidentProb: 0.005, Seed: int64(L),
		}
		chunks := linearroad.Generate(cfg)
		var reports int64
		start := time.Now()
		for _, c := range chunks {
			if err := eng.Append("lr_pos", c); err != nil {
				panic(err)
			}
			reports += int64(c.Rows())
		}
		eng.Drain()
		eng.AdvanceTime(int64(durationSec+300) * 1_000_000)
		eng.Drain()
		wall := time.Since(start)

		var lat []int64
	drain:
		for {
			select {
			case r := <-seg.Out():
				lat = append(lat, r.Meta.LatencyUsec)
			default:
				break drain
			}
		}
		ok, worst := linearroad.CheckResponse(lat)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(L), fmt.Sprint(reports), wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", float64(reports)/wall.Seconds()/1e3),
			fmt.Sprintf("%dµs", monitor.Percentile(lat, 99)),
			fmt.Sprintf("%dµs", worst),
			fmt.Sprint(ok),
		})
		eng.Close()
	}
	return t
}

// E7Analysis reproduces the demo's analysis pane (Figure 4): it runs a
// monitored workload, samples the network periodically, and renders the
// per-interval input rates, evaluation rates and latencies.
func E7Analysis(tuples, intervals int) (*Table, string) {
	eng := datacell.New(&datacell.Options{Workers: 2})
	defer eng.Close()
	if _, err := eng.Exec("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)"); err != nil {
		panic(err)
	}
	q, err := eng.RegisterQuery("watch",
		"SELECT k, avg(v) AS m FROM s [SIZE 2048 SLIDE 512] GROUP BY k",
		datacell.NoChannel())
	if err != nil {
		panic(err)
	}
	col := monitor.NewCollector(func() ([]basket.Stats, []factory.Stats) {
		st := eng.Stats()
		return st.Baskets, st.Queries
	})
	chunks := sensorChunks(tuples, 512, 16)
	per := len(chunks) / intervals
	if per == 0 {
		per = 1
	}
	start := time.Now()
	col.Sample(0)
	for i, c := range chunks {
		if err := eng.Append("s", c); err != nil {
			panic(err)
		}
		if (i+1)%per == 0 {
			eng.Drain()
			col.Sample(time.Since(start).Microseconds())
		}
	}
	eng.Drain()
	col.Sample(time.Since(start).Microseconds())

	t := &Table{
		Title:  "E7: analysis pane — per-interval rates for query 'watch'",
		Header: []string{"t (s)", "in tup/s", "evals/s", "avg latency µs"},
	}
	for _, r := range col.QueryRates("watch") {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3f", float64(r.ToUsec)/1e6),
			fmt.Sprintf("%.0f", r.TuplesInSec),
			fmt.Sprintf("%.1f", r.EvalsSec),
			fmt.Sprintf("%.1f", r.AvgLatency),
		})
	}
	_ = q
	return t, col.AnalysisString()
}
