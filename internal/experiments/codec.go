package experiments

import (
	"datacell/internal/bat"
)

// CodecRatios measures the wire-codec compression on linearroad-shaped
// columns — the dict/delta-friendly workload the v2 chunk encoding was
// built for (monotone timestamps, small-range positions, low-cardinality
// segment strings). It returns bytes-per-row reduction factors (plain
// layout ÷ encoded), keyed per column family:
//
//	codec_delta_ratio: an all-numeric chunk (monotone TIMESTAMP + narrow
//	                   INT) against the plain fixed-width layout
//	codec_dict_ratio:  a low-cardinality STRING column against the plain
//	                   length-prefixed layout
//
// Both are deterministic (no clock, no machine dependence), so dcbench
// gates them at the ≥2× acceptance floor on every class of runner —
// unlike the throughput ratios, which are machine-relative.
func CodecRatios(rows int) map[string]float64 {
	out := map[string]float64{}

	// Delta-friendly: linearroad's monotone event clock plus the bounded
	// position column. Varint deltas collapse both to ~1 byte per value.
	ts := make(bat.Times, rows)
	pos := make(bat.Ints, rows)
	for i := 0; i < rows; i++ {
		ts[i] = 1_700_000_000_000_000 + int64(i)*250
		pos[i] = 52800 + int64(i%97)
	}
	num := &bat.Chunk{
		Schema: bat.NewSchema([]string{"ts", "pos"}, []bat.Kind{bat.Time, bat.Int}),
		Cols:   []bat.Vector{ts, pos},
	}
	out["codec_delta_ratio"] = float64(bat.ChunkPlainSize(num)) /
		float64(len(bat.MarshalChunk(nil, num)))

	// Dict-friendly: the segment label cycles through a handful of
	// distinct strings, so the dictionary holds 4 entries and each row
	// costs one index byte.
	seg := make(bat.Strs, rows)
	segs := []string{"seg-00", "seg-01", "seg-02", "seg-03"}
	for i := 0; i < rows; i++ {
		seg[i] = segs[(i/19)%len(segs)]
	}
	str := &bat.Chunk{
		Schema: bat.NewSchema([]string{"seg"}, []bat.Kind{bat.Str}),
		Cols:   []bat.Vector{seg},
	}
	out["codec_dict_ratio"] = float64(bat.ChunkPlainSize(str)) /
		float64(len(bat.MarshalChunk(nil, str)))
	return out
}
