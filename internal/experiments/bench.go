package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"datacell"
	"datacell/internal/bat"
)

// BenchResult is one measured benchmark configuration — the JSON unit of
// the CI bench trajectory (BENCH_N.json artifacts).
type BenchResult struct {
	Name         string  `json:"name"`
	Tuples       int     `json:"tuples"`
	WallSec      float64 `json:"wall_sec"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
}

// BenchReport is the dcbench -bench output: the environment, every
// configuration's throughput, and the derived headline ratios.
type BenchReport struct {
	SchemaVersion int                `json:"schema_version"`
	NumCPU        int                `json:"num_cpu"`
	GoMaxProcs    int                `json:"gomaxprocs"`
	Quick         bool               `json:"quick"`
	Results       []BenchResult      `json:"results"`
	Derived       map[string]float64 `json:"derived"`
}

// ShardedIngestFire measures the PR-1 scaling benchmark outside the
// testing harness: parallel producers feeding a filtered grouped
// sliding-window aggregate through an n-tuple stream with the given shard
// count. It mirrors BenchmarkShardedIngestFire in bench_test.go.
func ShardedIngestFire(shards, producers, n, batch, nkeys int) BenchResult {
	ddl := "CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)"
	if shards > 1 {
		ddl += fmt.Sprintf(" SHARD %d KEY k", shards)
	}
	sql := "SELECT k, sum(v) AS s, count(*) AS c FROM s [SIZE 16384 SLIDE 4096] WHERE v > 50.0 GROUP BY k"
	perProd := sensorChunks(n/producers, batch, nkeys)

	eng := datacell.New(&datacell.Options{Workers: 4})
	defer eng.Close()
	if _, err := eng.Exec(ddl); err != nil {
		panic(err)
	}
	if _, err := eng.RegisterQuery("q", sql,
		datacell.WithMode(datacell.ModeIncremental), datacell.NoChannel()); err != nil {
		panic(err)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, c := range perProd {
				_ = eng.Append("s", c)
			}
		}()
	}
	wg.Wait()
	eng.Drain()
	wall := time.Since(start)
	return BenchResult{
		Name:         fmt.Sprintf("sharded_ingest_fire/shards_%d", shards),
		Tuples:       n,
		WallSec:      wall.Seconds(),
		TuplesPerSec: float64(n) / wall.Seconds(),
	}
}

// QueryGroupFanout measures the PR-2 scaling benchmark: Q alert-style
// standing queries (selective filter + count, per-query thresholds) over
// one stream, grouped (one shared drain/slice/merge, per-query tails) or
// isolated (every query its own cursors and slicers). It mirrors
// BenchmarkQueryGroupFanout in bench_test.go.
func QueryGroupFanout(queries int, isolated bool, n, batch, nkeys int) BenchResult {
	chunks := sensorChunks(n, batch, nkeys)
	eng := datacell.New(&datacell.Options{Workers: 4})
	defer eng.Close()
	if _, err := eng.Exec("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)"); err != nil {
		panic(err)
	}
	for j := 0; j < queries; j++ {
		sql := fmt.Sprintf(
			"SELECT count(*) AS n FROM s [SIZE 8192 SLIDE 2048] WHERE v > %d.0", 400+(j%8)*12)
		opts := []datacell.RegisterOption{datacell.WithMode(datacell.ModeIncremental), datacell.NoChannel()}
		if isolated {
			opts = append(opts, datacell.Isolated())
		}
		if _, err := eng.RegisterQuery(fmt.Sprintf("q%02d", j), sql, opts...); err != nil {
			panic(err)
		}
	}
	start := time.Now()
	for _, c := range chunks {
		_ = eng.Append("s", c)
	}
	eng.Drain()
	wall := time.Since(start)
	label := "grouped"
	if isolated {
		label = "isolated"
	}
	return BenchResult{
		Name:         fmt.Sprintf("query_group_fanout/%s/q_%d", label, queries),
		Tuples:       n,
		WallSec:      wall.Seconds(),
		TuplesPerSec: float64(n) / wall.Seconds(),
	}
}

// SharedSubtail measures the PR-3 shared-operator-DAG benchmark: Q
// standing queries over one stream sharing a heavy common prefix — a
// selective filter plus a grouped partial aggregate — and diverging only
// in their post-merge HAVING thresholds. With the memo (the default) the
// group evaluates the prefix once per sealed basic window; with noMemo
// every member evaluates it privately, which is exactly the PR-2 grouped
// baseline. It mirrors BenchmarkSharedSubtail in bench_test.go.
func SharedSubtail(queries int, noMemo bool, n, batch, nkeys int) BenchResult {
	chunks := sensorChunks(n, batch, nkeys)
	eng := datacell.New(&datacell.Options{Workers: 4})
	defer eng.Close()
	if _, err := eng.Exec("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)"); err != nil {
		panic(err)
	}
	for j := 0; j < queries; j++ {
		sql := fmt.Sprintf(
			"SELECT k, sum(v) AS s, count(*) AS c FROM s [SIZE 8192 SLIDE 2048] WHERE v > 100.0 GROUP BY k HAVING count(*) > %d", j%7)
		opts := []datacell.RegisterOption{datacell.WithMode(datacell.ModeIncremental), datacell.NoChannel()}
		if noMemo {
			opts = append(opts, datacell.NoMemo())
		}
		if _, err := eng.RegisterQuery(fmt.Sprintf("q%02d", j), sql, opts...); err != nil {
			panic(err)
		}
	}
	start := time.Now()
	for _, c := range chunks {
		_ = eng.Append("s", c)
	}
	eng.Drain()
	wall := time.Since(start)
	label := "memo"
	if noMemo {
		label = "nomemo"
	}
	return BenchResult{
		Name:         fmt.Sprintf("shared_subtail/%s/q_%d", label, queries),
		Tuples:       n,
		WallSec:      wall.Seconds(),
		TuplesPerSec: float64(n) / wall.Seconds(),
	}
}

// SharedMerge measures the PR-4 shared-merge benchmark: Q IDENTICAL
// sliding-window queries — same filter, same grouped partial aggregate,
// same HAVING — forming one merge class. With the shared merge (the
// default) the group evaluates the full-window merge and the post-merge
// HAVING fragment once per sealed window for the whole class; with
// noSharedMerge each member re-merges its own ring of shared partials,
// which is exactly the PR-3 grouped baseline. It mirrors
// BenchmarkSharedMerge16 in bench_test.go.
func SharedMerge(queries int, noSharedMerge bool, n, batch, nkeys int) BenchResult {
	chunks := sensorChunks(n, batch, nkeys)
	eng := datacell.New(&datacell.Options{Workers: 4})
	defer eng.Close()
	if _, err := eng.Exec("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)"); err != nil {
		panic(err)
	}
	sql := "SELECT k, sum(v) AS s, count(*) AS c FROM s [SIZE 16384 SLIDE 2048] WHERE v > 50.0 GROUP BY k HAVING count(*) > 2"
	for j := 0; j < queries; j++ {
		opts := []datacell.RegisterOption{datacell.WithMode(datacell.ModeIncremental), datacell.NoChannel()}
		if noSharedMerge {
			opts = append(opts, datacell.NoSharedMerge())
		}
		if _, err := eng.RegisterQuery(fmt.Sprintf("q%02d", j), sql, opts...); err != nil {
			panic(err)
		}
	}
	start := time.Now()
	for _, c := range chunks {
		_ = eng.Append("s", c)
	}
	eng.Drain()
	wall := time.Since(start)
	label := "sharedmerge"
	if noSharedMerge {
		label = "nosharedmerge"
	}
	return BenchResult{
		Name:         fmt.Sprintf("shared_merge/%s/q_%d", label, queries),
		Tuples:       n,
		WallSec:      wall.Seconds(),
		TuplesPerSec: float64(n) / wall.Seconds(),
	}
}

// JoinShared measures the PR-9 join-tail-sharing benchmark: Q IDENTICAL
// grouped sliding-window joins — same predicate, same grouped aggregate,
// same HAVING — over two streams. Shared (the default) all Q members
// join one group: one pair cache computes each (left, right) window pair
// once and the post-merge trie evaluates the grouped tail once for the
// whole merge class. Isolated every member owns a private join group, so
// the pair merge and the tail run Q times per sealed window. It mirrors
// BenchmarkJoinShared16 in bench_test.go.
func JoinShared(queries int, isolated bool, n, batch, nkeys int) BenchResult {
	sChunks := sensorChunks(n, batch, nkeys)
	rChunks := sensorChunks(n, batch, nkeys)
	eng := datacell.New(&datacell.Options{Workers: 4})
	defer eng.Close()
	for _, ddl := range []string{
		"CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)",
		"CREATE STREAM r (ts TIMESTAMP, k INT, v FLOAT)",
	} {
		if _, err := eng.Exec(ddl); err != nil {
			panic(err)
		}
	}
	sql := "SELECT s.k, count(*) AS c, sum(s.v) AS sv FROM s [SIZE 4096 SLIDE 1024], r [SIZE 4096 SLIDE 1024] WHERE s.k = r.k GROUP BY s.k HAVING count(*) > 2"
	for j := 0; j < queries; j++ {
		opts := []datacell.RegisterOption{datacell.WithMode(datacell.ModeIncremental), datacell.NoChannel()}
		if isolated {
			opts = append(opts, datacell.Isolated())
		}
		if _, err := eng.RegisterQuery(fmt.Sprintf("q%02d", j), sql, opts...); err != nil {
			panic(err)
		}
	}
	start := time.Now()
	for i := range sChunks {
		_ = eng.Append("s", sChunks[i])
		_ = eng.Append("r", rChunks[i])
	}
	eng.Drain()
	wall := time.Since(start)
	label := "shared"
	if isolated {
		label = "isolated"
	}
	return BenchResult{
		Name:         fmt.Sprintf("join_shared/%s/q_%d", label, queries),
		Tuples:       2 * n,
		WallSec:      wall.Seconds(),
		TuplesPerSec: float64(2*n) / wall.Seconds(),
	}
}

// wideChunks draws n rows of the 8-column fused-scan stream (ts, k, v,
// p1..p5). The five payload columns widen the tuples so the per-operator
// intermediate chunks the unfused executor materializes — exactly what
// fusion removes — carry real copy cost, as they do on production schemas.
func wideChunks(n, batch, nkeys int) []*bat.Chunk {
	names := []string{"ts", "k", "v"}
	kinds := []bat.Kind{bat.Time, bat.Int, bat.Float}
	for p := 1; p <= widePayloadCols; p++ {
		names = append(names, fmt.Sprintf("p%d", p))
		kinds = append(kinds, bat.Float)
	}
	sch := bat.NewSchema(names, kinds)
	var out []*bat.Chunk
	for pos := 0; pos < n; {
		take := batch
		if pos+take > n {
			take = n - pos
		}
		cols := make([]bat.Vector, len(names))
		ts := make(bat.Times, take)
		ks := make(bat.Ints, take)
		vs := make(bat.Floats, take)
		for i := 0; i < take; i++ {
			g := pos + i
			ts[i] = int64(g)
			ks[i] = int64(g*2654435761) % int64(nkeys)
			if ks[i] < 0 {
				ks[i] += int64(nkeys)
			}
			vs[i] = float64(g%1000) * 0.5
		}
		cols[0], cols[1], cols[2] = ts, ks, vs
		for p := 3; p < len(cols); p++ {
			ps := make(bat.Floats, take)
			for i := 0; i < take; i++ {
				ps[i] = float64((pos+i+p)%977) * 0.25
			}
			cols[p] = ps
		}
		out = append(out, &bat.Chunk{Schema: sch, Cols: cols})
		pos += take
	}
	return out
}

// widePayloadCols is the number of p<i> payload columns in the
// fused-scan stream (19 columns total).
const widePayloadCols = 16

// FusedScan measures the PR-10 fused-tail benchmark: eight isolated
// incremental filtered grouped sliding-window aggregates, thresholds
// varying per query, over one wide 19-column stream. Fused (the
// default) each tail runs filter → aggregate as one pass over a lazy
// selection view, the leading filter is pushed into window slicing, and
// the hash aggregate pre-sizes from observed group cardinality; with
// NoFuse each step materializes a private intermediate chunk, nothing
// is pushed below the window, and the hash table starts at the default
// size. Selective filters on a wide schema are the workload shape
// fusion is for: most of the window never deserves a wide copy. It
// mirrors BenchmarkFusedScan in bench_test.go.
// The caller passes the pre-built chunks so repeated samples (bestOf)
// and the two ablation legs share one live data set — regenerating tens
// of megabytes per sample turns the measurement into a GC benchmark.
func FusedScan(noFuse bool, chunks []*bat.Chunk) BenchResult {
	n := 0
	for _, c := range chunks {
		n += c.Rows()
	}
	runtime.GC()
	eng := datacell.New(&datacell.Options{Workers: 1})
	defer eng.Close()
	ddl := "CREATE STREAM w (ts TIMESTAMP, k INT, v FLOAT"
	for p := 1; p <= widePayloadCols; p++ {
		ddl += fmt.Sprintf(", p%d FLOAT", p)
	}
	ddl += ")"
	if _, err := eng.Exec(ddl); err != nil {
		panic(err)
	}
	// Eight isolated members with per-query thresholds: each owns its
	// slicers and fused chain, so the tail work the executor fuses scales
	// with Q while the one-time ingest copy into the stream's basket —
	// identical in both legs — amortizes across the members.
	for j := 0; j < 8; j++ {
		sql := fmt.Sprintf(
			"SELECT k, sum(v) AS s, count(*) AS n FROM w [SIZE 8192 SLIDE 2048] WHERE v > %d.0 GROUP BY k", 300+j*25)
		opts := []datacell.RegisterOption{
			datacell.WithMode(datacell.ModeIncremental), datacell.Isolated(), datacell.NoChannel()}
		if noFuse {
			opts = append(opts, datacell.NoFuse())
		}
		if _, err := eng.RegisterQuery(fmt.Sprintf("q%d", j), sql, opts...); err != nil {
			panic(err)
		}
	}
	start := time.Now()
	for _, c := range chunks {
		_ = eng.Append("w", c)
	}
	eng.Drain()
	wall := time.Since(start)
	label := "fused"
	if noFuse {
		label = "chunked"
	}
	return BenchResult{
		Name:         "fused_scan/" + label,
		Tuples:       n,
		WallSec:      wall.Seconds(),
		TuplesPerSec: float64(n) / wall.Seconds(),
	}
}

// PlanCacheBench measures the PR-10 registration-storm benchmark: regs
// shared-group registrations on one stream, timed over the registration
// loop only (no data flows). Warm registers the identical SQL text every
// time — past the first compile each registration is a plan-cache hit
// that skips parse, bind, optimize and decompose and goes straight to
// wiring. Cold gives every registration a distinct threshold, so each
// compile runs in full — the pre-cache behaviour. Separate engines per
// run keep cache states independent. Tuples counts registrations, so
// TuplesPerSec is registrations per second. It mirrors
// BenchmarkPlanCache in bench_test.go.
func PlanCacheBench(warm bool, regs int) BenchResult {
	eng := datacell.New(&datacell.Options{Workers: 1})
	defer eng.Close()
	if _, err := eng.Exec("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT)"); err != nil {
		panic(err)
	}
	start := time.Now()
	for j := 0; j < regs; j++ {
		thr := 100
		if !warm {
			thr = 100 + j
		}
		sql := fmt.Sprintf(
			"SELECT k, sum(v) AS s, count(*) AS c FROM s [SIZE 8192 SLIDE 2048] WHERE v > %d.0 GROUP BY k HAVING count(*) > 2", thr)
		if _, err := eng.RegisterQuery(fmt.Sprintf("q%04d", j), sql,
			datacell.WithMode(datacell.ModeIncremental), datacell.NoChannel()); err != nil {
			panic(err)
		}
	}
	wall := time.Since(start)
	label := "cold"
	if warm {
		label = "warm"
	}
	return BenchResult{
		Name:         fmt.Sprintf("plan_cache/%s/q_%d", label, regs),
		Tuples:       regs,
		WallSec:      wall.Seconds(),
		TuplesPerSec: float64(regs) / wall.Seconds(),
	}
}

// CIBench runs the CI benchmark suite — sharded ingest at 1 and 4 shards,
// query-group fan-out at Q ∈ {1,4,16} grouped and isolated, and the
// shared-sub-tail memo ablation at Q=16 — and derives the headline ratios
// the bench trajectory tracks:
//
//	shard4_vs_shard1:        4-shard ingest throughput / 1-shard (≥0.9
//	                         asserted on multi-core CI runners)
//	grouped16_vs_isolated16: shared-group throughput at Q=16 / isolated
//	                         baseline (floor 1.5; target ≥3 multi-core)
//	memo16_vs_nomemo16:      shared-sub-tail throughput at Q=16 with the
//	                         operator DAG / without (floor 1.5)
//	sharedmerge16_vs_nosharedmerge16: 16 identical members with the
//	                         group-owned merge ring + post-merge trie /
//	                         without (per-member merges; floor 1.5)
//	joinshared16_vs_isolated16: 16 identical grouped two-stream joins in
//	                         one join group (shared pair cache + join
//	                         merge class + post-merge trie) / 16 isolated
//	                         twins each owning a private join group.
//	                         Floored ≥1.5× on multi-core runners,
//	                         report-only on 1-core containers.
//	fabric2_vs_local:        16 grouped queries over a 4-shard stream run
//	                         through the shard fabric (coordinator + 2
//	                         loopback workers, direct worker receptors and
//	                         batched delta/dict wire frames) / entirely
//	                         in-process. Also exported as
//	                         fabric_direct_vs_local, the gate name: floored
//	                         ≥1× on multi-core runners, report-only on
//	                         1-core containers.
//	fabric_direct_vs_relay:  the same fabric workload with direct receptors
//	                         on / forced through the coordinator's control
//	                         links (NoDirect) — the tentpole's win chart.
//	                         Report-only.
//	fused_vs_chunked:        eight isolated filtered grouped aggregates
//	                         over one wide 19-column stream on the fused
//	                         tail executor (lazy selection views, slice-time
//	                         predicate pushdown, cardinality-hinted hash
//	                         aggregation) / the same queries with NoFuse
//	                         (operator-at-a-time, a materialized chunk per
//	                         step). The median of per-round back-to-back
//	                         ratios. Floored ≥1.3× on every machine class —
//	                         fusion is a single-core win.
//	plancache_ratio:         512 shared-group registrations of identical
//	                         SQL text (warm: plan-cache hits skip parse/
//	                         bind/optimize/decompose) / 512 with distinct
//	                         thresholds (cold: every compile in full).
//	                         Floored ≥2× on every machine class.
//	codec_delta_ratio / codec_dict_ratio: deterministic bytes-per-row
//	                         reduction of the v2 chunk codec on linearroad-
//	                         shaped columns (monotone ints; low-cardinality
//	                         strings). Floored at 2× everywhere.
//	snapshot_overhead:       the same fabric workload with workers taking
//	                         periodic consistent snapshots / without.
//	                         Tracked report-only; expected near 1.0× (the
//	                         checkpoint copies state off the sealing path).
//	multitenant_queries_per_core / multitenant_p99_seal_usec /
//	multitenant_register_per_sec: the
//	                         multi-tenant standing-query harness (10⁴
//	                         templated queries across 16 tenants; 1024
//	                         across 8 in quick mode) — registered queries
//	                         per scheduler core, the p99 window-seal
//	                         latency, and the registration-storm rate
//	                         (plan-cache warm path: few distinct texts
//	                         across 10⁴ registrations). Report-only
//	                         capacity metrics; they feed no floor or gate.
//
// match, when non-empty, is a regular expression selecting the benchmark
// configurations to run by name; derived ratios whose inputs were skipped
// are omitted.
func CIBench(quick bool, match string) *BenchReport {
	var matchRe *regexp.Regexp
	if match != "" {
		matchRe = regexp.MustCompile(match)
	}
	want := func(name string) bool {
		return matchRe == nil || matchRe.MatchString(name)
	}
	n, batch, nkeys := 1<<17, 2048, 512
	fanN := 1 << 16
	subN := 1 << 16
	if quick {
		// The sub-tail pair stays at full size: it is cheap (tens of ms)
		// and feeds a floor assertion, so the extra windows buy stability.
		n, fanN = 1<<16, 1<<15
	}
	rep := &BenchReport{
		SchemaVersion: 1,
		NumCPU:        runtime.NumCPU(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Quick:         quick,
		Derived:       map[string]float64{},
	}
	byName := map[string]BenchResult{}
	add := func(r BenchResult) {
		rep.Results = append(rep.Results, r)
		byName[r.Name] = r
	}
	// Configurations that feed CI gates (-assert-floors, the ±tol band)
	// take the best of n samples: a single run on a shared runner is too
	// noisy to fail a build on.
	bestOf := func(n int, run func() BenchResult) BenchResult {
		best := run()
		for i := 1; i < n; i++ {
			if r := run(); r.TuplesPerSec > best.TuplesPerSec {
				best = r
			}
		}
		return best
	}
	for _, shards := range []int{1, 4} {
		shards := shards
		if !want(fmt.Sprintf("sharded_ingest_fire/shards_%d", shards)) {
			continue
		}
		add(bestOf(3, func() BenchResult { return ShardedIngestFire(shards, 4, n, batch, nkeys) }))
	}
	for _, q := range []int{1, 4, 16} {
		for _, isolated := range []bool{false, true} {
			label := "grouped"
			if isolated {
				label = "isolated"
			}
			if want(fmt.Sprintf("query_group_fanout/%s/q_%d", label, q)) {
				add(QueryGroupFanout(q, isolated, fanN, batch, 256))
			}
		}
	}
	for _, noMemo := range []bool{false, true} {
		label := "memo"
		if noMemo {
			label = "nomemo"
		}
		name := fmt.Sprintf("shared_subtail/%s/q_16", label)
		if !want(name) {
			continue
		}
		// Few groups: the shared prefix (filter + per-window aggregation)
		// dominates and the per-member merge stays cheap — the workload
		// shape the memo is for.
		noMemo := noMemo
		add(bestOf(2, func() BenchResult { return SharedSubtail(16, noMemo, subN, batch, 16) }))
	}
	for _, noSharedMerge := range []bool{false, true} {
		label := "sharedmerge"
		if noSharedMerge {
			label = "nosharedmerge"
		}
		name := fmt.Sprintf("shared_merge/%s/q_16", label)
		if !want(name) {
			continue
		}
		// Many grouping keys make the merge stage heavy — the workload
		// shape the group-owned merge ring is for.
		noSharedMerge := noSharedMerge
		add(bestOf(2, func() BenchResult { return SharedMerge(16, noSharedMerge, subN, batch, 2048) }))
	}
	for _, isolated := range []bool{false, true} {
		label := "shared"
		if isolated {
			label = "isolated"
		}
		name := fmt.Sprintf("join_shared/%s/q_16", label)
		if !want(name) {
			continue
		}
		// Moderate key cardinality keeps each sealed (left, right) window
		// pair productive, so the per-member pair merges and grouped tails
		// the isolated baseline repeats 16× dominate its runtime — the
		// workload shape the shared pair cache and join merge class are
		// for. The pair stays at full size in quick mode: it feeds a floor
		// and a run is tens of windows either way.
		isolated := isolated
		add(bestOf(2, func() BenchResult { return JoinShared(16, isolated, 1<<14, batch, 256) }))
	}
	if want("fused_scan/fused") || want("fused_scan/chunked") {
		// The pair stays at full size in quick mode: it feeds a floor, and
		// a run this small is noise-dominated. Samples interleave the two
		// legs (fused, chunked, fused, ...) instead of exhausting one
		// before the other: heap growth, GC pacing and CPU-frequency drift
		// within the process then land on both sides of the ratio alike.
		wideCh := wideChunks(1<<18, 8192, 64)
		var bestF, bestC BenchResult
		var ratios []float64
		for round := 0; round < 5; round++ {
			f := FusedScan(false, wideCh)
			c := FusedScan(true, wideCh)
			if f.TuplesPerSec > bestF.TuplesPerSec {
				bestF = f
			}
			if c.TuplesPerSec > bestC.TuplesPerSec {
				bestC = c
			}
			if c.TuplesPerSec > 0 {
				ratios = append(ratios, f.TuplesPerSec/c.TuplesPerSec)
			}
		}
		if want("fused_scan/fused") {
			add(bestF)
		}
		if want("fused_scan/chunked") {
			add(bestC)
		}
		if len(ratios) == 5 {
			// fused_vs_chunked is the median of the per-round ratios, not
			// the ratio of the two bests: each round's legs run back-to-back
			// under the same machine state, so load spikes and GC pacing
			// cancel within a sample instead of landing on one side of the
			// division. A floor gates this ratio, so it gets the robust
			// estimator.
			sort.Float64s(ratios)
			rep.Derived["fused_vs_chunked"] = ratios[len(ratios)/2]
		}
	}
	for _, warm := range []bool{true, false} {
		label := "cold"
		if warm {
			label = "warm"
		}
		name := fmt.Sprintf("plan_cache/%s/q_%d", label, 512)
		if !want(name) {
			continue
		}
		warm := warm
		add(bestOf(3, func() BenchResult { return PlanCacheBench(warm, 512) }))
	}
	for _, cfg := range []struct {
		workers  int
		snap     bool
		noDirect bool
	}{{0, false, false}, {2, false, false}, {2, true, false}, {2, false, true}} {
		label := "local"
		if cfg.workers > 0 {
			label = fmt.Sprintf("fabric%d", cfg.workers)
			if cfg.snap {
				label += "snap"
			}
			if cfg.noDirect {
				label += "nodirect"
			}
		}
		name := fmt.Sprintf("fabric_fanout/%s/q_16", label)
		if !want(name) {
			continue
		}
		// fabric2 runs the direct-receptor + batched-wire path (the
		// default since PR 8) and feeds fabric_direct_vs_local — floored
		// ≥1× on multi-core runners, report-only on 1-core containers
		// where the loopback fabric shares the local engine's only CPU.
		// fabric2nodirect pins the old coordinator-relayed topology so
		// fabric_direct_vs_relay charts what the tentpole bought;
		// snapshot_overhead stays the periodic-checkpoint cost. Those two
		// are report-only trajectory points.
		cfg := cfg
		run := func() BenchResult { return FabricFanout(16, cfg.workers, fanN, batch, 256) }
		switch {
		case cfg.snap:
			run = func() BenchResult { return FabricFanoutSnap(16, cfg.workers, fanN, batch, 256) }
		case cfg.noDirect:
			run = func() BenchResult { return FabricFanoutNoDirect(16, cfg.workers, fanN, batch, 256) }
		}
		add(bestOf(2, run))
	}
	mtTenants, mtQueries := 16, 10000
	if quick {
		mtTenants, mtQueries = 8, 1024
	}
	if mtName := fmt.Sprintf("multitenant/t_%d/q_%d", mtTenants, mtQueries); want(mtName) {
		mt := MultiTenant(mtTenants, mtQueries, 1<<14, 2048)
		add(mt.Result)
		rep.Derived["multitenant_queries_per_core"] = mt.QueriesPerCore
		rep.Derived["multitenant_p99_seal_usec"] = mt.P99SealUsec
		rep.Derived["multitenant_register_per_sec"] = mt.RegisterPerSec
	}
	ratio := func(key, num, den string) {
		d, okD := byName[den]
		n, okN := byName[num]
		if !okD || !okN || d.TuplesPerSec == 0 {
			return
		}
		rep.Derived[key] = n.TuplesPerSec / d.TuplesPerSec
	}
	ratio("shard4_vs_shard1",
		"sharded_ingest_fire/shards_4", "sharded_ingest_fire/shards_1")
	ratio("grouped16_vs_isolated16",
		"query_group_fanout/grouped/q_16", "query_group_fanout/isolated/q_16")
	ratio("grouped4_vs_isolated4",
		"query_group_fanout/grouped/q_4", "query_group_fanout/isolated/q_4")
	ratio("memo16_vs_nomemo16",
		"shared_subtail/memo/q_16", "shared_subtail/nomemo/q_16")
	ratio("sharedmerge16_vs_nosharedmerge16",
		"shared_merge/sharedmerge/q_16", "shared_merge/nosharedmerge/q_16")
	ratio("joinshared16_vs_isolated16",
		"join_shared/shared/q_16", "join_shared/isolated/q_16")
	ratio("plancache_ratio",
		"plan_cache/warm/q_512", "plan_cache/cold/q_512")
	ratio("fabric2_vs_local",
		"fabric_fanout/fabric2/q_16", "fabric_fanout/local/q_16")
	// fabric_direct_vs_local is the same measurement under its gate name:
	// the trajectory keeps charting fabric2_vs_local across PRs while the
	// floor assertion (≥1× on multi-core) keys on the direct-path name.
	ratio("fabric_direct_vs_local",
		"fabric_fanout/fabric2/q_16", "fabric_fanout/local/q_16")
	ratio("fabric_direct_vs_relay",
		"fabric_fanout/fabric2/q_16", "fabric_fanout/fabric2nodirect/q_16")
	ratio("snapshot_overhead",
		"fabric_fanout/fabric2snap/q_16", "fabric_fanout/fabric2/q_16")
	if want("codec_ratios") {
		// Deterministic bytes-per-row reductions of the v2 wire codec on
		// linearroad-shaped columns; floored at 2× on every machine class.
		for k, v := range CodecRatios(4096) {
			rep.Derived[k] = v
		}
	}
	return rep
}

// String renders the report as an aligned table with the derived ratios.
func (r *BenchReport) String() string {
	t := &Table{
		Title:  fmt.Sprintf("CI bench (cpus=%d quick=%v)", r.NumCPU, r.Quick),
		Header: []string{"benchmark", "tuples", "wall", "ktuples/s"},
	}
	for _, res := range r.Results {
		t.Rows = append(t.Rows, []string{
			res.Name, fmt.Sprint(res.Tuples),
			fmt.Sprintf("%.3fs", res.WallSec),
			fmt.Sprintf("%.0f", res.TuplesPerSec/1e3),
		})
	}
	var b strings.Builder
	b.WriteString(t.String())
	keys := make([]string, 0, len(r.Derived))
	for k := range r.Derived {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "derived %-26s = %.2fx\n", k, r.Derived[k])
	}
	return b.String()
}

// WriteJSON writes the report to path.
func (r *BenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBenchReport loads a BENCH_*.json report.
func ReadBenchReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &BenchReport{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// trackedDerived are the headline ratios the regression gate protects:
// machine-relative, so comparable across runner generations (absolute
// tuples/s are not).
var trackedDerived = []string{"shard4_vs_shard1", "grouped16_vs_isolated16",
	"memo16_vs_nomemo16", "sharedmerge16_vs_nosharedmerge16",
	"joinshared16_vs_isolated16", "fused_vs_chunked", "plancache_ratio",
	"codec_delta_ratio", "codec_dict_ratio"}

// GateBenchReports is the regression gate over the bench trajectory: the
// tracked derived ratios of the current report must stay within the
// tolerance band of the previous report's (a ratio dropping more than tol
// fails; rises and new metrics never do). It gates on derived ratios
// rather than raw throughput because BENCH_*.json points come from
// different machines — a committed dev-container seed vs a CI runner —
// where absolute tuples/s differ wildly. The ratios themselves still
// shift with core count (parallel baselines speed up), so when the two
// reports disagree on NumCPU the gate degrades to report-only: the
// ±tol band is only meaningful within one machine class. ok reports
// whether the gate passed; the string explains per metric.
func GateBenchReports(prev, cur *BenchReport, tol float64) (string, bool) {
	var b strings.Builder
	ok := true
	enforced := prev.NumCPU == cur.NumCPU
	fmt.Fprintf(&b, "bench gate (tolerance ±%.0f%%):\n", tol*100)
	if !enforced {
		fmt.Fprintf(&b, "  report-only: machine class changed (prev %d CPUs, cur %d) — ratios are not comparable within ±%.0f%%\n",
			prev.NumCPU, cur.NumCPU, tol*100)
	}
	for _, key := range trackedDerived {
		p, havePrev := prev.Derived[key]
		c, haveCur := cur.Derived[key]
		switch {
		case !havePrev && !haveCur:
			continue
		case !havePrev:
			fmt.Fprintf(&b, "  %-26s new        = %.2fx\n", key, c)
		case !haveCur:
			fmt.Fprintf(&b, "  %-26s MISSING    (prev %.2fx)\n", key, p)
			ok = ok && !enforced
		case p <= 0:
			fmt.Fprintf(&b, "  %-26s prev empty (cur %.2fx)\n", key, c)
		case c < p*(1-tol):
			fmt.Fprintf(&b, "  %-26s REGRESSED  %.2fx -> %.2fx (floor %.2fx)\n",
				key, p, c, p*(1-tol))
			ok = ok && !enforced
		default:
			fmt.Fprintf(&b, "  %-26s ok         %.2fx -> %.2fx\n", key, p, c)
		}
	}
	return strings.TrimRight(b.String(), "\n"), ok
}

// CompareBenchReports renders a previous-vs-current comparison table —
// the report-only trajectory step of the CI bench job. Ratios above 1
// mean the current run is faster.
func CompareBenchReports(prev, cur *BenchReport) string {
	t := &Table{
		Title:  "bench trajectory: current vs previous",
		Header: []string{"benchmark", "prev ktuples/s", "cur ktuples/s", "ratio"},
	}
	prevBy := map[string]BenchResult{}
	for _, r := range prev.Results {
		prevBy[r.Name] = r
	}
	for _, r := range cur.Results {
		p, ok := prevBy[r.Name]
		if !ok {
			t.Rows = append(t.Rows, []string{r.Name, "(new)",
				fmt.Sprintf("%.0f", r.TuplesPerSec/1e3), "-"})
			continue
		}
		ratio := 0.0
		if p.TuplesPerSec > 0 {
			ratio = r.TuplesPerSec / p.TuplesPerSec
		}
		t.Rows = append(t.Rows, []string{r.Name,
			fmt.Sprintf("%.0f", p.TuplesPerSec/1e3),
			fmt.Sprintf("%.0f", r.TuplesPerSec/1e3),
			fmt.Sprintf("%.2fx", ratio)})
	}
	return t.String()
}
