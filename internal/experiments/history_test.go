package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeHistoryPoint(t *testing.T, dir, name string, rep *BenchReport) {
	t.Helper()
	if err := rep.WriteJSON(filepath.Join(dir, name)); err != nil {
		t.Fatal(err)
	}
}

func TestBenchHistoryMarkdown(t *testing.T) {
	dir := t.TempDir()
	writeHistoryPoint(t, dir, "0001_aaaa.json", &BenchReport{
		SchemaVersion: 1, NumCPU: 8,
		Derived: map[string]float64{
			"shard4_vs_shard1": 1.2, "grouped16_vs_isolated16": 3.4,
			"memo16_vs_nomemo16": 3.7, "sharedmerge16_vs_nosharedmerge16": 6.1,
			"fabric2_vs_local": 0.4, "snapshot_overhead": 0.97,
		},
	})
	// A breach point: grouped16 under its 1.5 floor.
	writeHistoryPoint(t, dir, "0002_bbbb.json", &BenchReport{
		SchemaVersion: 1, NumCPU: 8,
		Derived: map[string]float64{
			"shard4_vs_shard1": 1.1, "grouped16_vs_isolated16": 1.1,
		},
	})
	// Single-core point: the multi-core-only shard floor must not flag.
	writeHistoryPoint(t, dir, "0003_cccc.json", &BenchReport{
		SchemaVersion: 1, NumCPU: 1, Quick: true,
		Derived: map[string]float64{"shard4_vs_shard1": 0.8},
	})
	if err := os.WriteFile(filepath.Join(dir, "0000_garbage.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	points, skipped, err := ReadBenchHistory(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d, want 3", len(points))
	}
	if len(skipped) != 1 || skipped[0] != "0000_garbage.json" {
		t.Fatalf("skipped = %v", skipped)
	}
	// Chronological by file name.
	if points[0].Label != "0001_aaaa" || points[2].Label != "0003_cccc" {
		t.Fatalf("order: %s .. %s", points[0].Label, points[2].Label)
	}

	md := HistoryMarkdown(points, skipped)
	for _, want := range []string{
		"| 0001_aaaa | 8 |",
		"0.40x",                     // report-only fabric ratio rendered plainly
		"0.97x",                     // report-only snapshot overhead rendered plainly
		"⚠️ **1.10x** (floor 1.5x)", // grouped16 breach flagged
		"0.80x (floor n/a: 1 cpu)",  // multi-core-only floor annotated, not flagged
		"1 floor breach(es)",        // exactly the grouped16 one
		"skipped unparseable: 0000_garbage.json",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	if strings.Contains(md, "⚠️ **0.80x**") {
		t.Error("single-core point flagged against a multi-core-only floor")
	}
}

func TestBenchHistoryEmpty(t *testing.T) {
	md := HistoryMarkdown(nil, nil)
	if !strings.Contains(md, "no bench points") {
		t.Fatalf("empty history: %q", md)
	}
}
