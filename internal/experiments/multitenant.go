package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"time"

	"datacell"
	"datacell/internal/bat"
	"datacell/internal/monitor"
)

// mtArchetype is one standing-query template family of the multi-tenant
// harness. The three archetypes mirror the operational workloads the
// paper's scenarios model: vehicle telemetry (Linear Road), network flow
// monitoring, and web access logs. Every instantiated query differs only
// in its threshold, so queries of one archetype share an execution group
// and the harness scales to 10⁴–10⁵ registrations.
type mtArchetype struct {
	name   string
	ddl    string
	stream string
	// tmpl is the query template; the %d threshold varies per instance
	// (bounded variants so merge classes still form within an archetype).
	tmpl     string
	variants int
}

var mtArchetypes = []mtArchetype{
	{
		name:     "linearroad",
		ddl:      "CREATE STREAM lr (ts TIMESTAMP, seg INT, speed FLOAT)",
		stream:   "lr",
		tmpl:     "SELECT seg, count(*) AS cars, sum(speed) AS sp FROM lr [SIZE 4096 SLIDE 1024] WHERE speed < %d.0 GROUP BY seg",
		variants: 8,
	},
	{
		name:     "network_monitor",
		ddl:      "CREATE STREAM net (ts TIMESTAMP, src INT, bytes FLOAT)",
		stream:   "net",
		tmpl:     "SELECT src, sum(bytes) AS vol, count(*) AS pkts FROM net [SIZE 4096 SLIDE 1024] WHERE bytes > %d.0 GROUP BY src",
		variants: 8,
	},
	{
		name:     "weblog",
		ddl:      "CREATE STREAM web (ts TIMESTAMP, url INT, latency FLOAT)",
		stream:   "web",
		tmpl:     "SELECT url, count(*) AS hits FROM web [SIZE 4096 SLIDE 1024] WHERE latency > %d.0 GROUP BY url",
		variants: 8,
	},
}

// mtChunks renders sensor-shaped data into an archetype's 3-column
// schema: (ts, key, value).
func mtChunks(a mtArchetype, sch bat.Schema, n, batch, nkeys int) []*bat.Chunk {
	var out []*bat.Chunk
	for pos := 0; pos < n; {
		take := batch
		if pos+take > n {
			take = n - pos
		}
		ts := make(bat.Times, take)
		ks := make(bat.Ints, take)
		vs := make(bat.Floats, take)
		for i := 0; i < take; i++ {
			g := pos + i
			ts[i] = int64(g)
			ks[i] = int64(g*2654435761) % int64(nkeys)
			if ks[i] < 0 {
				ks[i] += int64(nkeys)
			}
			vs[i] = float64(g%1000) * 0.5
		}
		out = append(out, &bat.Chunk{Schema: sch, Cols: []bat.Vector{ts, ks, vs}})
		pos += take
	}
	return out
}

// MultiTenantReport is the harness outcome: raw throughput plus the two
// capacity metrics the bench trajectory records report-only.
type MultiTenantReport struct {
	Result    BenchResult
	Tenants   int
	Queries   int   // successfully registered standing queries
	Rejected  int64 // over-quota registrations refused by admission control
	Throttled int64 // appends that blocked on a tenant's ingest controls
	// QueriesPerCore is registered standing queries per scheduler core —
	// the headline capacity number of the harness.
	QueriesPerCore float64
	// P99SealUsec is the 99th-percentile window-seal-to-result latency
	// across all queries' newest evaluations (µs).
	P99SealUsec float64
	// RegisterPerSec is the registration-storm throughput (successful
	// registrations per second of wall time). The plan cache dominates it:
	// archetypes have few distinct SQL texts, so warm registrations skip
	// bind/optimize/decompose entirely.
	RegisterPerSec float64
}

// String renders the harness report block.
func (r *MultiTenantReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "multi-tenant harness: tenants=%d queries=%d rejected=%d throttled=%d\n",
		r.Tenants, r.Queries, r.Rejected, r.Throttled)
	fmt.Fprintf(&b, "  tuples=%d wall=%.3fs ktuples/s=%.0f\n",
		r.Result.Tuples, r.Result.WallSec, r.Result.TuplesPerSec/1e3)
	fmt.Fprintf(&b, "  queries_per_core=%.1f p99_seal_latency=%.0fµs register_per_sec=%.0f\n",
		r.QueriesPerCore, r.P99SealUsec, r.RegisterPerSec)
	return b.String()
}

// MultiTenant runs the multi-tenant standing-query harness: `queries`
// templated registrations from the three archetypes spread round-robin
// across `tenants` tenants, each tenant capped at its fair share of the
// query budget (plus one deliberately over-quota registration per tenant
// to exercise admission control), then `n` tuples per archetype stream
// fed through the tenant append path. Queries within an archetype differ
// only in a bounded threshold, so they land in shared execution groups —
// the sharing machinery is what makes 10⁴–10⁵ standing queries per
// process feasible (ROADMAP item 5).
func MultiTenant(tenants, queries, n, batch int) *MultiTenantReport {
	if tenants <= 0 {
		tenants = 1
	}
	eng := datacell.New(&datacell.Options{Workers: 4})
	defer eng.Close()

	for _, a := range mtArchetypes {
		if _, err := eng.Exec(a.ddl); err != nil {
			panic(err)
		}
	}

	// Fair-share quota: tenant i may hold ceil(queries/tenants) queries.
	share := (queries + tenants - 1) / tenants
	tenantName := func(i int) string { return fmt.Sprintf("t%03d", i%tenants) }
	for i := 0; i < tenants; i++ {
		eng.SetTenantQuota(tenantName(i), datacell.TenantQuota{MaxQueries: share})
	}

	// Registration storm: each archetype has only `variants` distinct SQL
	// texts, so past the first few registrations every compile is a plan
	// cache hit — the warm path that makes 10⁴ registrations cheap.
	registered := 0
	var rejected int64
	regStart := time.Now()
	for i := 0; i < queries; i++ {
		a := mtArchetypes[i%len(mtArchetypes)]
		sql := fmt.Sprintf(a.tmpl, 100+(i/len(mtArchetypes))%a.variants*50)
		_, err := eng.RegisterQuery(fmt.Sprintf("q%05d", i), sql,
			datacell.WithMode(datacell.ModeIncremental),
			datacell.NoChannel(), // 10⁴ buffered channels would dwarf the engine
			datacell.WithTenant(tenantName(i)))
		if err != nil {
			panic(err)
		}
		registered++
	}
	regWall := time.Since(regStart)
	// One over-quota registration per tenant: every tenant is at its
	// share, so each must be refused with a QuotaError — the admission
	// control half of the acceptance criteria, exercised at scale.
	for i := 0; i < tenants && queries >= tenants; i++ {
		a := mtArchetypes[i%len(mtArchetypes)]
		_, err := eng.RegisterQuery(fmt.Sprintf("over%03d", i), fmt.Sprintf(a.tmpl, 100),
			datacell.NoChannel(), datacell.WithTenant(tenantName(i)))
		var qe *datacell.QuotaError
		if !errors.As(err, &qe) {
			panic(fmt.Sprintf("over-quota registration for %s not rejected: %v", tenantName(i), err))
		}
		rejected++
	}

	// Feed every archetype stream through the tenant append path,
	// round-robin over tenants so throttle accounting spreads.
	type feed struct {
		stream string
		chunks []*bat.Chunk
	}
	var feeds []feed
	for _, a := range mtArchetypes {
		sch, err := eng.Schema(a.stream)
		if err != nil {
			panic(err)
		}
		feeds = append(feeds, feed{a.stream, mtChunks(a, sch, n, batch, 64)})
	}
	start := time.Now()
	for fi, f := range feeds {
		for ci, c := range f.chunks {
			if err := eng.Append(f.stream, c, datacell.AsTenant(tenantName(fi*31+ci))); err != nil {
				panic(err)
			}
		}
	}
	eng.Drain()
	wall := time.Since(start)

	var lats []int64
	for _, name := range eng.QueryNames() {
		if q, ok := eng.Query(name); ok {
			lats = append(lats, q.RecentLatencies()...)
		}
	}
	var throttled int64
	for _, ts := range eng.TenantStats() {
		throttled += ts.ThrottledAppends
	}
	total := n * len(mtArchetypes)
	return &MultiTenantReport{
		Result: BenchResult{
			Name:         fmt.Sprintf("multitenant/t_%d/q_%d", tenants, queries),
			Tuples:       total,
			WallSec:      wall.Seconds(),
			TuplesPerSec: float64(total) / wall.Seconds(),
		},
		Tenants:        tenants,
		Queries:        registered,
		Rejected:       rejected,
		Throttled:      throttled,
		QueriesPerCore: float64(registered) / float64(runtime.GOMAXPROCS(0)),
		P99SealUsec:    float64(monitor.Percentile(lats, 99)),
		RegisterPerSec: float64(registered) / regWall.Seconds(),
	}
}
