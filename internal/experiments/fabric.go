package experiments

import (
	"fmt"
	"os"
	"time"

	"datacell"
	"datacell/internal/fabric"
)

// FabricFanout measures the PR-5 scale-out benchmark: Q grouped standing
// queries (selective filter + count) over a 4-shard stream, executed
// either entirely in-process ("local") or through the distributed shard
// fabric with a coordinator plus `workers` worker runtimes over loopback
// TCP ("fabricN") — same workload, same grouped sharing stack, with the
// shard front ends (drain, slice, seal) running behind the wire. The
// tracked fabric2_vs_local ratio is report-only for now: on one machine
// the fabric pays serialization and loopback cost for work the local
// engine shares over memory, so the ratio charts the overhead the
// scale-out path must amortize with real second-machine capacity. It
// mirrors BenchmarkFabricFanout in internal/fabric.
func FabricFanout(queries, workers, n, batch, nkeys int) BenchResult {
	return fabricFanout(queries, workers, n, batch, nkeys, false, false)
}

// FabricFanoutNoDirect is FabricFanout with the direct worker receptors
// disabled (fabric.Options.NoDirect): every append rides the coordinator's
// control links, the PR-5 topology. The fabric_direct_vs_relay ratio
// (fabric2 / fabric2nodirect, report-only) charts what taking the
// coordinator off the data path buys on this machine class.
func FabricFanoutNoDirect(queries, workers, n, batch, nkeys int) BenchResult {
	return fabricFanout(queries, workers, n, batch, nkeys, false, true)
}

// FabricFanoutSnap is FabricFanout with worker snapshotting enabled: each
// worker checkpoints its shard state to a spill directory on a short
// interval throughout the run, so the tracked snapshot_overhead ratio
// (fabric2snap / fabric2, report-only) charts what the copy-on-write
// checkpoint path costs on the hot ingest path.
func FabricFanoutSnap(queries, workers, n, batch, nkeys int) BenchResult {
	return fabricFanout(queries, workers, n, batch, nkeys, true, false)
}

func fabricFanout(queries, workers, n, batch, nkeys int, snapshot, noDirect bool) BenchResult {
	chunks := sensorChunks(n, batch, nkeys)
	eng := datacell.New(&datacell.Options{Workers: 4})
	defer eng.Close()

	var coord *fabric.Coordinator
	var workerRts []*fabric.Worker
	var snapDir string
	// Coordinator first, workers after: Close order matters for the Bye
	// broadcast to reach live workers. The snapshot spill dir goes last —
	// worker Close takes a final checkpoint into it.
	defer func() {
		if coord != nil {
			coord.Close()
		}
		for _, w := range workerRts {
			w.Close()
		}
		if snapDir != "" {
			os.RemoveAll(snapDir)
		}
	}()
	if workers > 0 {
		var err error
		coord, err = fabric.NewCoordinator(eng, fabric.Options{Workers: workers, NoDirect: noDirect})
		if err != nil {
			panic(err)
		}
	}
	if _, err := eng.Exec("CREATE STREAM s (ts TIMESTAMP, k INT, v FLOAT) SHARD 4 KEY k"); err != nil {
		panic(err)
	}
	if workers > 0 {
		if err := coord.ExportStream("s"); err != nil {
			panic(err)
		}
		if snapshot {
			var err error
			if snapDir, err = os.MkdirTemp("", "dcbench-snap"); err != nil {
				panic(err)
			}
		}
		for i := 0; i < workers; i++ {
			opts := fabric.WorkerOptions{Coordinator: coord.Addr(), Index: i}
			if snapshot {
				// Short interval so checkpoints actually fire inside the
				// timed region (the -quick run ingests in ~10ms), but not so
				// short that checkpointing saturates a single-core runner.
				opts.SnapshotDir = snapDir
				opts.SnapshotEvery = 10 * time.Millisecond
			}
			workerRts = append(workerRts, fabric.NewWorker(opts))
		}
	}
	for j := 0; j < queries; j++ {
		sql := fmt.Sprintf(
			"SELECT count(*) AS n FROM s [SIZE 8192 SLIDE 2048] WHERE v > %d.0", 400+(j%8)*12)
		if _, err := eng.RegisterQuery(fmt.Sprintf("q%02d", j), sql,
			datacell.WithMode(datacell.ModeIncremental), datacell.NoChannel()); err != nil {
			panic(err)
		}
	}
	start := time.Now()
	for _, c := range chunks {
		_ = eng.Append("s", c)
	}
	if workers > 0 {
		coord.Drain()
	} else {
		eng.Drain()
	}
	wall := time.Since(start)
	label := "local"
	if workers > 0 {
		label = fmt.Sprintf("fabric%d", workers)
		if snapshot {
			label += "snap"
		}
		if noDirect {
			label += "nodirect"
		}
	}
	return BenchResult{
		Name:         fmt.Sprintf("fabric_fanout/%s/q_%d", label, queries),
		Tuples:       n,
		WallSec:      wall.Seconds(),
		TuplesPerSec: float64(n) / wall.Seconds(),
	}
}
