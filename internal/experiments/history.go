package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The bench-history satellite: the scheduled CI job downloads every
// per-SHA bench artifact (plus the committed BENCH_N.json seeds), drops
// them in one directory, and dcbench -history renders the trajectory —
// each tracked derived ratio per point, floor breaches highlighted — as a
// markdown table for the job summary.

// historyFloor describes one tracked ratio's gate floor for highlighting.
type historyFloor struct {
	key           string
	floor         float64
	multiCoreOnly bool // floor applies only on multi-core machines
}

// historyFloors mirrors dcbench -assert-floors (see docs/BENCHMARKS.md).
// fabric2_vs_local (the pre-gate trajectory of the direct-path ratio),
// fabric_direct_vs_relay and snapshot_overhead are tracked report-only
// and so carry no floor.
var historyFloors = []historyFloor{
	{"shard4_vs_shard1", 0.9, true},
	{"grouped16_vs_isolated16", 1.5, false},
	{"memo16_vs_nomemo16", 1.5, false},
	{"sharedmerge16_vs_nosharedmerge16", 1.5, false},
	{"fabric2_vs_local", 0, false},
	{"fabric_direct_vs_local", 1.0, true},
	{"fabric_direct_vs_relay", 0, false},
	{"snapshot_overhead", 0, false},
	{"codec_delta_ratio", 2.0, false},
	{"codec_dict_ratio", 2.0, false},
}

// HistoryPoint is one trajectory entry: a BENCH report plus its label
// (file name, conventionally <sortkey>_<sha>.json).
type HistoryPoint struct {
	Label  string
	Report *BenchReport
}

// ReadBenchHistory loads every *.json in dir as a BenchReport, sorted by
// file name — the caller names files so that lexicographic order is
// chronological (the CI job prefixes the artifact creation time).
// Unparseable files are skipped with a note rather than failing the whole
// trajectory: one corrupt artifact must not hide the rest.
func ReadBenchHistory(dir string) ([]HistoryPoint, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var points []HistoryPoint
	var skipped []string
	for _, n := range names {
		rep, err := ReadBenchReport(filepath.Join(dir, n))
		if err != nil || rep.SchemaVersion == 0 {
			skipped = append(skipped, n)
			continue
		}
		points = append(points, HistoryPoint{Label: strings.TrimSuffix(n, ".json"), Report: rep})
	}
	return points, skipped, nil
}

// HistoryMarkdown renders the bench trajectory as a markdown document:
// one row per point, one column per tracked derived ratio, floor breaches
// highlighted with the breach marker. Ratios are machine-relative, so the
// row also carries the machine class (CPU count) — breaches of multi-core-
// only floors on single-core points are annotated, not flagged.
func HistoryMarkdown(points []HistoryPoint, skipped []string) string {
	var b strings.Builder
	b.WriteString("## Bench trajectory\n\n")
	if len(points) == 0 {
		b.WriteString("no bench points found\n")
		return b.String()
	}
	b.WriteString("| point | cpus | quick |")
	for _, f := range historyFloors {
		fmt.Fprintf(&b, " %s |", f.key)
	}
	b.WriteString("\n|---|---|---|")
	for range historyFloors {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	breaches := 0
	for _, p := range points {
		quick := ""
		if p.Report.Quick {
			quick = "yes"
		}
		fmt.Fprintf(&b, "| %s | %d | %s |", p.Label, p.Report.NumCPU, quick)
		for _, f := range historyFloors {
			v, ok := p.Report.Derived[f.key]
			switch {
			case !ok:
				b.WriteString(" – |")
			case f.floor > 0 && v < f.floor && !(f.multiCoreOnly && p.Report.NumCPU < 4):
				breaches++
				fmt.Fprintf(&b, " ⚠️ **%.2fx** (floor %.1fx) |", v, f.floor)
			case f.floor > 0 && v < f.floor:
				fmt.Fprintf(&b, " %.2fx (floor n/a: %d cpu) |", v, p.Report.NumCPU)
			default:
				fmt.Fprintf(&b, " %.2fx |", v)
			}
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "\n%d point(s)", len(points))
	if breaches > 0 {
		fmt.Fprintf(&b, ", **%d floor breach(es)** ⚠️", breaches)
	} else {
		b.WriteString(", no floor breaches")
	}
	b.WriteString(". Ratios are machine-relative (see docs/BENCHMARKS.md); ")
	b.WriteString("fabric2_vs_local, fabric_direct_vs_relay and snapshot_overhead are tracked report-only.\n")
	if len(skipped) > 0 {
		fmt.Fprintf(&b, "\nskipped unparseable: %s\n", strings.Join(skipped, ", "))
	}
	return b.String()
}
