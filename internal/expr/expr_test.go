package expr

import (
	"math/rand"
	"testing"

	"datacell/internal/algebra"
	"datacell/internal/bat"
)

// testChunk builds a chunk: a INT, b FLOAT, s STRING, t TIMESTAMP.
func testChunk() *bat.Chunk {
	sch := bat.NewSchema(
		[]string{"a", "b", "s", "t"},
		[]bat.Kind{bat.Int, bat.Float, bat.Str, bat.Time},
	)
	return &bat.Chunk{Schema: sch, Cols: []bat.Vector{
		bat.Ints{1, -2, 3, 4},
		bat.Floats{0.5, 1.5, -2.5, 3.5},
		bat.Strs{"Ab", "cD", "e", "ff"},
		bat.Times{100, 200, 300, 400},
	}}
}

func colA() *Col { return &Col{Idx: 0, K: bat.Int, Name: "a"} }
func colB() *Col { return &Col{Idx: 1, K: bat.Float, Name: "b"} }
func colS() *Col { return &Col{Idx: 2, K: bat.Str, Name: "s"} }

func TestColAndConstEval(t *testing.T) {
	c := testChunk()
	v := colA().Eval(c, nil)
	if v.Len() != 4 || v.Get(1).I != -2 {
		t.Errorf("col eval = %v", bat.VectorString(v))
	}
	v = colA().Eval(c, algebra.Sel{2, 3})
	if v.Len() != 2 || v.Get(0).I != 3 {
		t.Errorf("col eval with sel = %v", bat.VectorString(v))
	}
	k := (&Const{V: bat.IntValue(9)}).Eval(c, algebra.Sel{0, 1, 2})
	if k.Len() != 3 || k.Get(2).I != 9 {
		t.Errorf("const eval = %v", bat.VectorString(k))
	}
}

func TestArithIntFloat(t *testing.T) {
	c := testChunk()
	sum := &Arith{Op: Add, L: colA(), R: &Const{V: bat.IntValue(10)}}
	if sum.Kind() != bat.Int {
		t.Error("int+int should be int")
	}
	v := sum.Eval(c, nil).(bat.Ints)
	if v[0] != 11 || v[1] != 8 {
		t.Errorf("int add = %v", v)
	}
	mix := &Arith{Op: Mul, L: colA(), R: colB()}
	if mix.Kind() != bat.Float {
		t.Error("int*float should be float")
	}
	f := mix.Eval(c, nil).(bat.Floats)
	if f[0] != 0.5 || f[2] != -7.5 {
		t.Errorf("mixed mul = %v", f)
	}
}

func TestArithAllOps(t *testing.T) {
	c := testChunk()
	two := &Const{V: bat.IntValue(2)}
	for op, want := range map[ArithOp]int64{
		Add: 3, Sub: -1, Mul: 2, Div: 0, Mod: 1,
	} {
		e := &Arith{Op: op, L: colA(), R: two}
		if got := e.Eval(c, nil).(bat.Ints)[0]; got != want {
			t.Errorf("1 %s 2 = %d, want %d", op, got, want)
		}
	}
	// Division by zero yields zero rather than a panic.
	zero := &Const{V: bat.IntValue(0)}
	if got := (&Arith{Op: Div, L: colA(), R: zero}).Eval(c, nil).(bat.Ints)[0]; got != 0 {
		t.Errorf("div by zero = %d", got)
	}
	fhalf := &Const{V: bat.FloatValue(0.5)}
	if got := (&Arith{Op: Div, L: colB(), R: fhalf}).Eval(c, nil).(bat.Floats)[0]; got != 1.0 {
		t.Errorf("float div = %v", got)
	}
	if got := (&Arith{Op: Mod, L: colB(), R: fhalf}).Eval(c, nil).(bat.Floats)[1]; got != 0 {
		t.Errorf("float mod = %v", got)
	}
}

func TestCast(t *testing.T) {
	c := testChunk()
	f := &Cast{To: bat.Float, E: colA()}
	if got := f.Eval(c, nil).(bat.Floats)[3]; got != 4.0 {
		t.Errorf("int->float = %v", got)
	}
	i := &Cast{To: bat.Int, E: colB()}
	if got := i.Eval(c, nil).(bat.Ints)[3]; got != 3 {
		t.Errorf("float->int = %v", got)
	}
	same := &Cast{To: bat.Int, E: colA()}
	if got := same.Eval(c, nil).(bat.Ints)[0]; got != 1 {
		t.Errorf("noop cast = %v", got)
	}
	tcol := &Col{Idx: 3, K: bat.Time, Name: "t"}
	ti := &Cast{To: bat.Int, E: tcol}
	if got := ti.Eval(c, nil).(bat.Ints)[0]; got != 100 {
		t.Errorf("time->int = %v", got)
	}
	it := &Cast{To: bat.Time, E: colA()}
	if got := it.Eval(c, nil); got.Kind() != bat.Time {
		t.Errorf("int->time kind = %v", got.Kind())
	}
}

func TestCmp(t *testing.T) {
	c := testChunk()
	e := &Cmp{Op: algebra.GT, L: colA(), R: &Const{V: bat.IntValue(2)}}
	v := e.Eval(c, nil).(bat.Bools)
	want := []bool{false, false, true, true}
	for i := range want {
		if v[i] != want[i] {
			t.Errorf("cmp[%d] = %v", i, v[i])
		}
	}
	// Cross-kind numeric comparison.
	x := &Cmp{Op: algebra.LT, L: colA(), R: colB()}
	xv := x.Eval(c, nil).(bat.Bools)
	if xv[0] != false || xv[1] != true {
		t.Errorf("cross-kind cmp = %v", xv)
	}
}

func TestLogic(t *testing.T) {
	c := testChunk()
	gt0 := &Cmp{Op: algebra.GT, L: colA(), R: &Const{V: bat.IntValue(0)}}
	lt4 := &Cmp{Op: algebra.LT, L: colA(), R: &Const{V: bat.IntValue(4)}}
	and := &Logic{Op: And, L: gt0, R: lt4}
	v := and.Eval(c, nil).(bat.Bools)
	if !v[0] || v[1] || !v[2] || v[3] {
		t.Errorf("and = %v", v)
	}
	or := &Logic{Op: Or, L: gt0, R: lt4}
	ov := or.Eval(c, nil).(bat.Bools)
	for i := range ov {
		if !ov[i] {
			t.Errorf("or[%d] should be true", i)
		}
	}
	not := &Logic{Op: Not, L: gt0}
	nv := not.Eval(c, nil).(bat.Bools)
	if nv[0] || !nv[1] {
		t.Errorf("not = %v", nv)
	}
}

func TestFuncs(t *testing.T) {
	c := testChunk()
	abs, err := ResolveFunc("abs", []Expr{colA()})
	if err != nil {
		t.Fatal(err)
	}
	if got := abs.Eval(c, nil).(bat.Ints)[1]; got != 2 {
		t.Errorf("abs = %v", got)
	}
	fabs, _ := ResolveFunc("abs", []Expr{colB()})
	if got := fabs.Eval(c, nil).(bat.Floats)[2]; got != 2.5 {
		t.Errorf("fabs = %v", got)
	}
	floor, _ := ResolveFunc("floor", []Expr{colB()})
	if got := floor.Eval(c, nil).(bat.Floats)[1]; got != 1.0 {
		t.Errorf("floor = %v", got)
	}
	sqrt, _ := ResolveFunc("sqrt", []Expr{&Const{V: bat.FloatValue(9)}})
	if got := sqrt.Eval(c, nil).(bat.Floats)[0]; got != 3.0 {
		t.Errorf("sqrt = %v", got)
	}
	lower, _ := ResolveFunc("lower", []Expr{colS()})
	if got := lower.Eval(c, nil).(bat.Strs)[0]; got != "ab" {
		t.Errorf("lower = %v", got)
	}
	upper, _ := ResolveFunc("upper", []Expr{colS()})
	if got := upper.Eval(c, nil).(bat.Strs)[1]; got != "CD" {
		t.Errorf("upper = %v", got)
	}
	length, _ := ResolveFunc("length", []Expr{colS()})
	if got := length.Eval(c, nil).(bat.Ints)[3]; got != 2 {
		t.Errorf("length = %v", got)
	}
}

func TestResolveFuncErrors(t *testing.T) {
	if _, err := ResolveFunc("nope", nil); err == nil {
		t.Error("unknown function should fail")
	}
	if _, err := ResolveFunc("abs", []Expr{colA(), colA()}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := ResolveFunc("abs", []Expr{colS()}); err == nil {
		t.Error("abs of string should fail")
	}
	if _, err := ResolveFunc("lower", []Expr{colA()}); err == nil {
		t.Error("lower of int should fail")
	}
	if _, err := ResolveFunc("length", []Expr{colA()}); err == nil {
		t.Error("length of int should fail")
	}
	if _, err := ResolveFunc("sqrt", []Expr{colS()}); err == nil {
		t.Error("sqrt of string should fail")
	}
}

func TestEvalPredFastPaths(t *testing.T) {
	c := testChunk()
	// col > const routes to algebra.Select.
	p := &Cmp{Op: algebra.GT, L: colA(), R: &Const{V: bat.IntValue(1)}}
	got := EvalPred(p, c, nil)
	if len(got) != 2 || got[0] != 2 {
		t.Errorf("pred = %v", got)
	}
	// const > col flips.
	p2 := &Cmp{Op: algebra.GT, L: &Const{V: bat.IntValue(1)}, R: colA()}
	got = EvalPred(p2, c, nil)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("flipped pred = %v", got)
	}
	// AND pipelines.
	and := &Logic{Op: And,
		L: &Cmp{Op: algebra.GT, L: colA(), R: &Const{V: bat.IntValue(0)}},
		R: &Cmp{Op: algebra.LT, L: colA(), R: &Const{V: bat.IntValue(4)}}}
	got = EvalPred(and, c, nil)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("and pred = %v", got)
	}
	// OR unions.
	or := &Logic{Op: Or,
		L: &Cmp{Op: algebra.EQ, L: colA(), R: &Const{V: bat.IntValue(1)}},
		R: &Cmp{Op: algebra.EQ, L: colA(), R: &Const{V: bat.IntValue(4)}}}
	got = EvalPred(or, c, nil)
	if len(got) != 2 || got[1] != 3 {
		t.Errorf("or pred = %v", got)
	}
	// NOT complements within sel.
	not := &Logic{Op: Not, L: &Cmp{Op: algebra.GT, L: colA(), R: &Const{V: bat.IntValue(0)}}}
	got = EvalPred(not, c, algebra.Sel{0, 1})
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("not pred = %v", got)
	}
	// Constant true/false.
	if got := EvalPred(&Const{V: bat.BoolValue(false)}, c, nil); len(got) != 0 {
		t.Errorf("const false = %v", got)
	}
	if got := EvalPred(&Const{V: bat.BoolValue(true)}, c, algebra.Sel{1}); len(got) != 1 {
		t.Errorf("const true = %v", got)
	}
	// Fallback path: arith inside comparison.
	fb := &Cmp{Op: algebra.EQ,
		L: &Arith{Op: Mod, L: colA(), R: &Const{V: bat.IntValue(2)}},
		R: &Const{V: bat.IntValue(0)}}
	got = EvalPred(fb, c, nil)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("fallback pred = %v", got)
	}
	// Fallback with sel keeps original positions.
	got = EvalPred(fb, c, algebra.Sel{1, 2})
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("fallback with sel = %v", got)
	}
}

// Property: EvalPred fast paths agree with the naive boolean-vector route
// for random conjunctive range predicates.
func TestQuickEvalPredMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 200; iter++ {
		n := rng.Intn(60)
		xs := make(bat.Ints, n)
		for i := range xs {
			xs[i] = int64(rng.Intn(20))
		}
		c := &bat.Chunk{
			Schema: bat.NewSchema([]string{"a"}, []bat.Kind{bat.Int}),
			Cols:   []bat.Vector{xs},
		}
		a := &Col{Idx: 0, K: bat.Int}
		lo, hi := int64(rng.Intn(20)), int64(rng.Intn(20))
		p := &Logic{Op: And,
			L: &Cmp{Op: algebra.GE, L: a, R: &Const{V: bat.IntValue(lo)}},
			R: &Cmp{Op: algebra.LE, L: a, R: &Const{V: bat.IntValue(hi)}}}
		fast := EvalPred(p, c, nil)
		var naive algebra.Sel
		bools := p.Eval(c, nil).(bat.Bools)
		for i, b := range bools {
			if b {
				naive = append(naive, int32(i))
			}
		}
		if len(fast) != len(naive) {
			t.Fatalf("iter %d: fast %v naive %v", iter, fast, naive)
		}
		for i := range fast {
			if fast[i] != naive[i] {
				t.Fatalf("iter %d: fast %v naive %v", iter, fast, naive)
			}
		}
	}
}

func TestSplitJoinConjuncts(t *testing.T) {
	a := &Cmp{Op: algebra.EQ, L: colA(), R: &Const{V: bat.IntValue(1)}}
	b := &Cmp{Op: algebra.EQ, L: colA(), R: &Const{V: bat.IntValue(2)}}
	cc := &Cmp{Op: algebra.EQ, L: colA(), R: &Const{V: bat.IntValue(3)}}
	e := &Logic{Op: And, L: &Logic{Op: And, L: a, R: b}, R: cc}
	parts := SplitConjuncts(e)
	if len(parts) != 3 {
		t.Fatalf("conjuncts = %d", len(parts))
	}
	re := JoinConjuncts(parts)
	if re.String() != e.String() {
		t.Errorf("rebuilt = %s, want %s", re, e)
	}
	if JoinConjuncts(nil) != nil {
		t.Error("empty conjunction should be nil")
	}
}

func TestColsAndRemap(t *testing.T) {
	f, _ := ResolveFunc("abs", []Expr{colA()})
	e := &Logic{Op: And,
		L: &Cmp{Op: algebra.GT, L: f, R: &Const{V: bat.IntValue(0)}},
		R: &Cmp{Op: algebra.LT, L: &Cast{To: bat.Float, E: colB()}, R: &Const{V: bat.FloatValue(9)}},
	}
	got := map[int]bool{}
	Cols(e, got)
	if !got[0] || !got[1] || len(got) != 2 {
		t.Errorf("Cols = %v", got)
	}
	r := Remap(e, map[int]int{0: 5, 1: 6})
	got = map[int]bool{}
	Cols(r, got)
	if !got[5] || !got[6] || len(got) != 2 {
		t.Errorf("remapped Cols = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Remap of unmapped column should panic")
		}
	}()
	Remap(colA(), map[int]int{3: 0})
}

func TestExprStrings(t *testing.T) {
	e := &Logic{Op: And,
		L: &Cmp{Op: algebra.GT, L: colA(), R: &Const{V: bat.IntValue(0)}},
		R: &Logic{Op: Not, L: &Cmp{Op: algebra.EQ, L: colS(), R: &Const{V: bat.StrValue("x")}}},
	}
	if e.String() != "((a > 0) and (not (s = 'x')))" {
		t.Errorf("String = %q", e.String())
	}
	ar := &Arith{Op: Add, L: colA(), R: &Const{V: bat.IntValue(1)}}
	if ar.String() != "(a + 1)" {
		t.Errorf("arith String = %q", ar.String())
	}
	cs := &Cast{To: bat.Float, E: colA()}
	if cs.String() != "cast(a as FLOAT)" {
		t.Errorf("cast String = %q", cs.String())
	}
	fn, _ := ResolveFunc("abs", []Expr{colA()})
	if fn.String() != "abs(a)" {
		t.Errorf("func String = %q", fn.String())
	}
	anon := &Col{Idx: 2, K: bat.Int}
	if anon.String() != "$2" {
		t.Errorf("anon col String = %q", anon.String())
	}
}
