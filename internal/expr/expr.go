// Package expr implements typed, vectorized expression evaluation over
// chunks. Expressions are compiled by the planner's binder from SQL ASTs:
// column references are resolved to positional indexes, so evaluation never
// looks up names. Evaluation is bulk: every node produces a whole vector,
// and predicates produce candidate lists via the algebra kernels, so that
// WHERE clauses run as MonetDB-style selections rather than per-row
// interpretation.
package expr

import (
	"fmt"
	"math"
	"strings"

	"datacell/internal/algebra"
	"datacell/internal/bat"
)

// Expr is a bound, typed expression.
type Expr interface {
	// Kind is the result type.
	Kind() bat.Kind
	// Eval produces the expression's value for every row covered by sel
	// (nil = all rows), as a dense vector aligned with sel.
	Eval(c *bat.Chunk, sel algebra.Sel) bat.Vector
	// String renders the expression in SQL-ish form for plan printing.
	String() string
}

// Col is a positional column reference.
type Col struct {
	Idx  int
	K    bat.Kind
	Name string // original name, for plan printing
}

// Kind implements Expr.
func (e *Col) Kind() bat.Kind { return e.K }

// Eval implements Expr.
func (e *Col) Eval(c *bat.Chunk, sel algebra.Sel) bat.Vector {
	return algebra.Fetch(c.Cols[e.Idx], sel)
}

// String implements Expr.
func (e *Col) String() string {
	if e.Name != "" {
		return e.Name
	}
	return fmt.Sprintf("$%d", e.Idx)
}

// Const is a literal.
type Const struct{ V bat.Value }

// Kind implements Expr.
func (e *Const) Kind() bat.Kind { return e.V.Kind }

// Eval implements Expr.
func (e *Const) Eval(c *bat.Chunk, sel algebra.Sel) bat.Vector {
	n := algebra.SelLen(sel, c.Rows())
	out := bat.NewVector(e.V.Kind, n)
	for i := 0; i < n; i++ {
		out = out.Append(e.V)
	}
	return out
}

// String implements Expr.
func (e *Const) String() string {
	if e.V.Kind == bat.Str {
		return "'" + e.V.S + "'"
	}
	return e.V.String()
}

// ArithOp is a binary arithmetic operator.
type ArithOp uint8

// The arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
	Mod
)

// String renders the operator symbol.
func (op ArithOp) String() string { return [...]string{"+", "-", "*", "/", "%"}[op] }

// Arith is a binary arithmetic node. Result typing follows SQL: if either
// side is FLOAT the result is FLOAT (and division always widens to FLOAT
// when either side is FLOAT); INT op INT stays INT with integer division;
// TIME arithmetic degrades to its microsecond integer payload.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// ArithKind computes the result kind for an arithmetic node.
func ArithKind(l, r bat.Kind) bat.Kind {
	if l == bat.Float || r == bat.Float {
		return bat.Float
	}
	return bat.Int
}

// Kind implements Expr.
func (e *Arith) Kind() bat.Kind { return ArithKind(e.L.Kind(), e.R.Kind()) }

// Eval implements Expr.
func (e *Arith) Eval(c *bat.Chunk, sel algebra.Sel) bat.Vector {
	l := e.L.Eval(c, sel)
	r := e.R.Eval(c, sel)
	if e.Kind() == bat.Float {
		return arithKernel(toFloats(l), toFloats(r), e.Op)
	}
	return arithKernelInt(bat.AsInts(l), bat.AsInts(r), e.Op)
}

// String implements Expr.
func (e *Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

func arithKernel(l, r []float64, op ArithOp) bat.Floats {
	out := make(bat.Floats, len(l))
	switch op {
	case Add:
		for i := range l {
			out[i] = l[i] + r[i]
		}
	case Sub:
		for i := range l {
			out[i] = l[i] - r[i]
		}
	case Mul:
		for i := range l {
			out[i] = l[i] * r[i]
		}
	case Div:
		for i := range l {
			out[i] = l[i] / r[i]
		}
	case Mod:
		for i := range l {
			out[i] = math.Mod(l[i], r[i])
		}
	}
	return out
}

func arithKernelInt(l, r []int64, op ArithOp) bat.Ints {
	out := make(bat.Ints, len(l))
	switch op {
	case Add:
		for i := range l {
			out[i] = l[i] + r[i]
		}
	case Sub:
		for i := range l {
			out[i] = l[i] - r[i]
		}
	case Mul:
		for i := range l {
			out[i] = l[i] * r[i]
		}
	case Div:
		for i := range l {
			if r[i] != 0 {
				out[i] = l[i] / r[i]
			}
		}
	case Mod:
		for i := range l {
			if r[i] != 0 {
				out[i] = l[i] % r[i]
			}
		}
	}
	return out
}

func toFloats(v bat.Vector) bat.Floats {
	switch xs := v.(type) {
	case bat.Floats:
		return xs
	case bat.Ints:
		out := make(bat.Floats, len(xs))
		for i, x := range xs {
			out[i] = float64(x)
		}
		return out
	case bat.Times:
		out := make(bat.Floats, len(xs))
		for i, x := range xs {
			out[i] = float64(x)
		}
		return out
	}
	panic(fmt.Sprintf("expr: cannot widen %s to FLOAT", v.Kind()))
}

// Cast converts a numeric expression to another numeric kind.
type Cast struct {
	To bat.Kind
	E  Expr
}

// Kind implements Expr.
func (e *Cast) Kind() bat.Kind { return e.To }

// Eval implements Expr.
func (e *Cast) Eval(c *bat.Chunk, sel algebra.Sel) bat.Vector {
	v := e.E.Eval(c, sel)
	if v.Kind() == e.To {
		return v
	}
	switch e.To {
	case bat.Float:
		return toFloats(v)
	case bat.Int:
		switch xs := v.(type) {
		case bat.Floats:
			out := make(bat.Ints, len(xs))
			for i, x := range xs {
				out[i] = int64(x)
			}
			return out
		case bat.Times:
			return bat.Ints(bat.AsInts(v))
		}
	case bat.Time:
		return bat.Times(bat.AsInts(v))
	}
	panic(fmt.Sprintf("expr: cast %s to %s", v.Kind(), e.To))
}

// String implements Expr.
func (e *Cast) String() string { return fmt.Sprintf("cast(%s as %s)", e.E, e.To) }

// Cmp is a comparison producing booleans.
type Cmp struct {
	Op   algebra.CmpOp
	L, R Expr
}

// Kind implements Expr.
func (e *Cmp) Kind() bat.Kind { return bat.Bool }

// Eval implements Expr.
func (e *Cmp) Eval(c *bat.Chunk, sel algebra.Sel) bat.Vector {
	l := e.L.Eval(c, sel)
	r := e.R.Eval(c, sel)
	n := l.Len()
	out := make(bat.Bools, n)
	lk, rk := l.Kind(), r.Kind()
	if lk.Numeric() && rk.Numeric() && lk != rk {
		lf, rf := toFloats(l), toFloats(r)
		for i := 0; i < n; i++ {
			out[i] = cmpHolds(e.Op, cmpOrd(lf[i], rf[i]))
		}
		return out
	}
	for i := 0; i < n; i++ {
		out[i] = cmpHolds(e.Op, l.Get(i).Compare(r.Get(i)))
	}
	return out
}

// String implements Expr.
func (e *Cmp) String() string { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }

func cmpHolds(op algebra.CmpOp, c int) bool {
	switch op {
	case algebra.EQ:
		return c == 0
	case algebra.NE:
		return c != 0
	case algebra.LT:
		return c < 0
	case algebra.LE:
		return c <= 0
	case algebra.GT:
		return c > 0
	case algebra.GE:
		return c >= 0
	}
	return false
}

func cmpOrd(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// LogicOp is a boolean connective.
type LogicOp uint8

// The boolean connectives.
const (
	And LogicOp = iota
	Or
	Not
)

// Logic is a boolean combination node. R is nil for Not.
type Logic struct {
	Op   LogicOp
	L, R Expr
}

// Kind implements Expr.
func (e *Logic) Kind() bat.Kind { return bat.Bool }

// Eval implements Expr.
func (e *Logic) Eval(c *bat.Chunk, sel algebra.Sel) bat.Vector {
	l := e.L.Eval(c, sel).(bat.Bools)
	if e.Op == Not {
		out := make(bat.Bools, len(l))
		for i, x := range l {
			out[i] = !x
		}
		return out
	}
	r := e.R.Eval(c, sel).(bat.Bools)
	out := make(bat.Bools, len(l))
	if e.Op == And {
		for i := range l {
			out[i] = l[i] && r[i]
		}
	} else {
		for i := range l {
			out[i] = l[i] || r[i]
		}
	}
	return out
}

// String implements Expr.
func (e *Logic) String() string {
	switch e.Op {
	case Not:
		return fmt.Sprintf("(not %s)", e.L)
	case And:
		return fmt.Sprintf("(%s and %s)", e.L, e.R)
	default:
		return fmt.Sprintf("(%s or %s)", e.L, e.R)
	}
}

// Func is a scalar function call. The supported functions cover the demo
// workloads: abs, floor, ceil, sqrt, round, lower, upper, length.
type Func struct {
	Name string
	Args []Expr
	K    bat.Kind
}

// ResolveFunc type-checks a scalar function call and returns the bound
// node.
func ResolveFunc(name string, args []Expr) (*Func, error) {
	argn := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("expr: %s expects %d argument(s), got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "abs":
		if err := argn(1); err != nil {
			return nil, err
		}
		if !args[0].Kind().Numeric() {
			return nil, fmt.Errorf("expr: abs of %s", args[0].Kind())
		}
		return &Func{Name: name, Args: args, K: args[0].Kind()}, nil
	case "floor", "ceil", "round", "sqrt":
		if err := argn(1); err != nil {
			return nil, err
		}
		if !args[0].Kind().Numeric() {
			return nil, fmt.Errorf("expr: %s of %s", name, args[0].Kind())
		}
		return &Func{Name: name, Args: args, K: bat.Float}, nil
	case "lower", "upper":
		if err := argn(1); err != nil {
			return nil, err
		}
		if args[0].Kind() != bat.Str {
			return nil, fmt.Errorf("expr: %s of %s", name, args[0].Kind())
		}
		return &Func{Name: name, Args: args, K: bat.Str}, nil
	case "length":
		if err := argn(1); err != nil {
			return nil, err
		}
		if args[0].Kind() != bat.Str {
			return nil, fmt.Errorf("expr: length of %s", args[0].Kind())
		}
		return &Func{Name: name, Args: args, K: bat.Int}, nil
	default:
		return nil, fmt.Errorf("expr: unknown function %q", name)
	}
}

// Kind implements Expr.
func (e *Func) Kind() bat.Kind { return e.K }

// Eval implements Expr.
func (e *Func) Eval(c *bat.Chunk, sel algebra.Sel) bat.Vector {
	a := e.Args[0].Eval(c, sel)
	switch e.Name {
	case "abs":
		switch xs := a.(type) {
		case bat.Ints:
			out := make(bat.Ints, len(xs))
			for i, x := range xs {
				if x < 0 {
					x = -x
				}
				out[i] = x
			}
			return out
		case bat.Floats:
			out := make(bat.Floats, len(xs))
			for i, x := range xs {
				out[i] = math.Abs(x)
			}
			return out
		}
	case "floor", "ceil", "round", "sqrt":
		xs := toFloats(a)
		out := make(bat.Floats, len(xs))
		var f func(float64) float64
		switch e.Name {
		case "floor":
			f = math.Floor
		case "ceil":
			f = math.Ceil
		case "round":
			f = math.Round
		case "sqrt":
			f = math.Sqrt
		}
		for i, x := range xs {
			out[i] = f(x)
		}
		return out
	case "lower", "upper":
		xs := a.(bat.Strs)
		out := make(bat.Strs, len(xs))
		for i, x := range xs {
			if e.Name == "lower" {
				out[i] = strings.ToLower(x)
			} else {
				out[i] = strings.ToUpper(x)
			}
		}
		return out
	case "length":
		xs := a.(bat.Strs)
		out := make(bat.Ints, len(xs))
		for i, x := range xs {
			out[i] = int64(len(x))
		}
		return out
	}
	panic("expr: unreachable function " + e.Name)
}

// String implements Expr.
func (e *Func) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}
