package expr

import (
	"datacell/internal/algebra"
	"datacell/internal/bat"
)

// EvalPred evaluates a boolean expression as a selection, returning the
// candidate list of qualifying rows within sel. It recognizes the shapes
// the MonetDB kernel handles natively and routes them to the bulk select
// kernels:
//
//   - col <op> const and const <op> col  → algebra.Select
//   - AND → candidate-list intersection (the right side sees only the
//     left's survivors, the classic selection pipeline)
//   - OR  → candidate-list union
//   - NOT → complement
//
// Anything else falls back to evaluating the boolean vector and collecting
// true positions.
func EvalPred(e Expr, c *bat.Chunk, sel algebra.Sel) algebra.Sel {
	switch n := e.(type) {
	case *Cmp:
		if col, ok := n.L.(*Col); ok {
			if k, ok := n.R.(*Const); ok {
				return algebra.Select(c.Cols[col.Idx], sel, n.Op, k.V)
			}
		}
		if k, ok := n.L.(*Const); ok {
			if col, ok := n.R.(*Col); ok {
				return algebra.Select(c.Cols[col.Idx], sel, flipOp(n.Op), k.V)
			}
		}
	case *Logic:
		switch n.Op {
		case And:
			// Pipeline: the right predicate only inspects the left's
			// survivors.
			lsel := EvalPred(n.L, c, sel)
			return EvalPred(n.R, c, lsel)
		case Or:
			return algebra.SelUnion(EvalPred(n.L, c, sel), EvalPred(n.R, c, sel), c.Rows())
		case Not:
			inner := EvalPred(n.L, c, sel)
			within := algebra.SelComplement(inner, c.Rows())
			return algebra.SelIntersect(materialize(sel, c.Rows()), within)
		}
	case *Const:
		if n.V.Kind == bat.Bool {
			if n.V.B {
				return sel
			}
			return algebra.Sel{}
		}
	}
	// Fallback: evaluate the boolean vector aligned with sel and collect.
	bv := e.Eval(c, sel).(bat.Bools)
	out := make(algebra.Sel, 0, len(bv)/4+1)
	if sel == nil {
		for i, b := range bv {
			if b {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for k, b := range bv {
		if b {
			out = append(out, sel[k])
		}
	}
	return out
}

func materialize(sel algebra.Sel, n int) algebra.Sel {
	if sel == nil {
		return algebra.AllSel(n)
	}
	return sel
}

// flipOp mirrors a comparison when swapping its operands
// (const < col ⇔ col > const).
func flipOp(op algebra.CmpOp) algebra.CmpOp {
	switch op {
	case algebra.LT:
		return algebra.GT
	case algebra.LE:
		return algebra.GE
	case algebra.GT:
		return algebra.LT
	case algebra.GE:
		return algebra.LE
	}
	return op // EQ, NE are symmetric
}

// SplitConjuncts flattens nested ANDs into a list of conjuncts, used by
// the optimizer for predicate pushdown.
func SplitConjuncts(e Expr) []Expr {
	if l, ok := e.(*Logic); ok && l.Op == And {
		return append(SplitConjuncts(l.L), SplitConjuncts(l.R)...)
	}
	return []Expr{e}
}

// JoinConjuncts rebuilds a conjunction from a list (nil for empty).
func JoinConjuncts(es []Expr) Expr {
	if len(es) == 0 {
		return nil
	}
	out := es[0]
	for _, e := range es[1:] {
		out = &Logic{Op: And, L: out, R: e}
	}
	return out
}

// Cols reports the set of column indexes referenced by an expression, used
// by the optimizer for projection pruning and pushdown legality.
func Cols(e Expr, into map[int]bool) {
	switch n := e.(type) {
	case *Col:
		into[n.Idx] = true
	case *Const:
	case *Arith:
		Cols(n.L, into)
		Cols(n.R, into)
	case *Cmp:
		Cols(n.L, into)
		Cols(n.R, into)
	case *Logic:
		Cols(n.L, into)
		if n.R != nil {
			Cols(n.R, into)
		}
	case *Cast:
		Cols(n.E, into)
	case *Func:
		for _, a := range n.Args {
			Cols(a, into)
		}
	}
}

// Remap rewrites every column reference through the given index mapping,
// returning a new expression tree. It is used when an expression moves
// across an operator that reorders or prunes columns. Missing mappings
// panic: the optimizer only remaps expressions it proved remappable.
func Remap(e Expr, m map[int]int) Expr {
	switch n := e.(type) {
	case *Col:
		idx, ok := m[n.Idx]
		if !ok {
			panic("expr: Remap of unmapped column")
		}
		return &Col{Idx: idx, K: n.K, Name: n.Name}
	case *Const:
		return n
	case *Arith:
		return &Arith{Op: n.Op, L: Remap(n.L, m), R: Remap(n.R, m)}
	case *Cmp:
		return &Cmp{Op: n.Op, L: Remap(n.L, m), R: Remap(n.R, m)}
	case *Logic:
		out := &Logic{Op: n.Op, L: Remap(n.L, m)}
		if n.R != nil {
			out.R = Remap(n.R, m)
		}
		return out
	case *Cast:
		return &Cast{To: n.To, E: Remap(n.E, m)}
	case *Func:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = Remap(a, m)
		}
		return &Func{Name: n.Name, Args: args, K: n.K}
	}
	panic("expr: Remap of unknown node")
}
