package scheduler

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testTransition builds a transition that counts fires and whose readiness
// follows an atomic token counter (one token consumed per fire).
func testTransition(name string) (*Transition, *atomic.Int64, *atomic.Int64) {
	var tokens, fires atomic.Int64
	t := &Transition{
		Name:  name,
		Ready: func() bool { return tokens.Load() > 0 },
		Fire: func() {
			if tokens.Load() > 0 {
				tokens.Add(-1)
			}
			fires.Add(1)
		},
	}
	return t, &tokens, &fires
}

func TestFireOnNotify(t *testing.T) {
	s := New(2)
	defer s.Stop()
	tr, tokens, fires := testTransition("q")
	s.Add(tr)
	tokens.Add(1)
	s.Notify("q")
	s.Drain()
	if fires.Load() != 1 {
		t.Errorf("fires = %d", fires.Load())
	}
	if s.Firings("q") != 1 {
		t.Errorf("Firings = %d", s.Firings("q"))
	}
}

func TestRefireWhileReady(t *testing.T) {
	s := New(1)
	defer s.Stop()
	tr, tokens, fires := testTransition("q")
	s.Add(tr)
	tokens.Add(5)
	s.Notify("q")
	s.Drain()
	// The worker refires as long as Ready reports tokens.
	if fires.Load() != 5 {
		t.Errorf("fires = %d, want 5", fires.Load())
	}
}

func TestNotifyUnknownOrClosed(t *testing.T) {
	s := New(1)
	s.Notify("ghost") // no panic
	s.Stop()
	s.Notify("late") // after close, no panic
}

func TestPauseResume(t *testing.T) {
	s := New(2)
	defer s.Stop()
	tr, tokens, fires := testTransition("q")
	s.Add(tr)
	s.Pause("q")
	if !s.Paused("q") {
		t.Fatal("not paused")
	}
	tokens.Add(1)
	s.Notify("q")
	time.Sleep(20 * time.Millisecond)
	if fires.Load() != 0 {
		t.Fatalf("paused transition fired %d times", fires.Load())
	}
	s.Resume("q")
	s.Drain()
	if fires.Load() != 1 {
		t.Errorf("fires after resume = %d", fires.Load())
	}
	if s.Paused("q") {
		t.Error("still paused after resume")
	}
	// Resume of unpaused and unknown names are no-ops.
	s.Resume("q")
	s.Resume("ghost")
	if s.Paused("ghost") {
		t.Error("ghost paused")
	}
}

func TestRemove(t *testing.T) {
	s := New(1)
	defer s.Stop()
	tr, tokens, fires := testTransition("q")
	s.Add(tr)
	s.Remove("q")
	tokens.Add(1)
	s.Notify("q")
	time.Sleep(20 * time.Millisecond)
	if fires.Load() != 0 {
		t.Errorf("removed transition fired %d times", fires.Load())
	}
}

func TestRemoveWhileQueued(t *testing.T) {
	s := New(1)
	defer s.Stop()
	block := make(chan struct{})
	slow := &Transition{
		Name:  "slow",
		Ready: func() bool { return false },
		Fire:  func() { <-block },
	}
	tr, tokens, fires := testTransition("q")
	s.Add(slow)
	s.Add(tr)
	s.Notify("slow") // occupies the single worker
	time.Sleep(10 * time.Millisecond)
	tokens.Add(1)
	s.Notify("q") // queued behind slow
	s.Remove("q")
	close(block)
	s.Drain()
	if fires.Load() != 0 {
		t.Errorf("removed-but-queued transition fired %d times", fires.Load())
	}
}

func TestNoConcurrentFiresOfSameTransition(t *testing.T) {
	s := New(4)
	defer s.Stop()
	var inFlight, maxFlight, tokens atomic.Int64
	tr := &Transition{
		Name:  "q",
		Ready: func() bool { return tokens.Load() > 0 },
		Fire: func() {
			cur := inFlight.Add(1)
			for {
				m := maxFlight.Load()
				if cur <= m || maxFlight.CompareAndSwap(m, cur) {
					break
				}
			}
			if tokens.Load() > 0 {
				tokens.Add(-1)
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
		},
	}
	s.Add(tr)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				tokens.Add(1)
				s.Notify("q")
			}
		}()
	}
	wg.Wait()
	s.Drain()
	if maxFlight.Load() > 1 {
		t.Errorf("transition fired concurrently: max in flight %d", maxFlight.Load())
	}
	if tokens.Load() != 0 {
		t.Errorf("tokens left: %d", tokens.Load())
	}
}

func TestManyTransitionsParallel(t *testing.T) {
	s := New(4)
	defer s.Stop()
	const n = 16
	var fires [n]atomic.Int64
	for i := 0; i < n; i++ {
		i := i
		s.Add(&Transition{
			Name:  string(rune('a' + i)),
			Ready: func() bool { return false },
			Fire:  func() { fires[i].Add(1) },
		})
	}
	for round := 0; round < 10; round++ {
		for i := 0; i < n; i++ {
			s.Notify(string(rune('a' + i)))
		}
	}
	s.Drain()
	var total int64
	for i := range fires {
		if fires[i].Load() == 0 {
			t.Errorf("transition %d never fired", i)
		}
		total += fires[i].Load()
	}
	if total == 0 {
		t.Fatal("nothing fired")
	}
}

func TestDrainIdempotentAndReusable(t *testing.T) {
	s := New(2)
	defer s.Stop()
	tr, tokens, fires := testTransition("q")
	s.Add(tr)
	s.Drain() // nothing running: returns immediately
	tokens.Add(1)
	s.Notify("q")
	s.Drain()
	tokens.Add(1)
	s.Notify("q")
	s.Drain()
	if fires.Load() != 2 {
		t.Errorf("fires = %d", fires.Load())
	}
}

func TestStopIdempotent(t *testing.T) {
	s := New(2)
	s.Stop()
	s.Stop()
}

func TestTicker(t *testing.T) {
	var ticks atomic.Int64
	tk := NewTicker(5*time.Millisecond, func(time.Time) { ticks.Add(1) })
	time.Sleep(40 * time.Millisecond)
	tk.Stop()
	got := ticks.Load()
	if got == 0 {
		t.Error("ticker never fired")
	}
	time.Sleep(15 * time.Millisecond)
	if ticks.Load() != got {
		t.Error("ticker fired after Stop")
	}
}

// --- Regression tests: drain/idle semantics under sharding -------------

// TestStopWaitsForInFlight pins the shutdown contract: Stop must not
// return while a shard firing is inside Fire, and queued work is drained
// before the workers exit.
func TestStopWaitsForInFlight(t *testing.T) {
	s := New(2)
	entered := make(chan struct{})
	release := make(chan struct{})
	var done atomic.Bool
	s.Add(&Transition{
		Name: "slow",
		Fire: func() {
			close(entered)
			<-release
			done.Store(true)
		},
	})
	s.Notify("slow")
	<-entered
	stopped := make(chan struct{})
	go func() {
		s.Stop()
		close(stopped)
	}()
	select {
	case <-stopped:
		t.Fatal("Stop returned while a firing was in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	<-stopped
	if !done.Load() {
		t.Error("in-flight firing did not complete before Stop returned")
	}
}

// TestIdleBroadcastWakesAllWaiters pins the quiescence contract: when the
// last shard firing completes, every concurrent Drain call wakes up.
func TestIdleBroadcastWakesAllWaiters(t *testing.T) {
	s := New(4)
	defer s.Stop()
	release := make(chan struct{})
	for i := 0; i < 4; i++ {
		name := string(rune('a' + i))
		s.Add(&Transition{Name: name, Group: "q", Affinity: i,
			Fire: func() { <-release }})
	}
	s.NotifyGroup("q")
	const waiters = 8
	var wg sync.WaitGroup
	drained := make(chan struct{}, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Drain()
			drained <- struct{}{}
		}()
	}
	select {
	case <-drained:
		t.Fatal("Drain returned while shard firings were in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	wg.Wait()
	if len(drained) != waiters {
		t.Errorf("only %d/%d drain waiters woke", len(drained), waiters)
	}
	s.Drain() // idle scheduler: returns immediately
}

// TestGroupOperations covers the sharded-transition group surface: a
// query's shard transitions pause, resume, fire-count and remove as one.
func TestGroupOperations(t *testing.T) {
	s := New(4)
	defer s.Stop()
	var fires [3]atomic.Int64
	for i := 0; i < 3; i++ {
		i := i
		s.Add(&Transition{
			Name: fmt.Sprintf("q/%d", i), Group: "q", Affinity: i,
			Fire: func() { fires[i].Add(1) },
		})
	}
	s.Pause("q")
	if !s.Paused("q") {
		t.Fatal("group not paused")
	}
	s.NotifyGroup("q")
	time.Sleep(20 * time.Millisecond)
	for i := range fires {
		if fires[i].Load() != 0 {
			t.Fatalf("paused shard %d fired", i)
		}
	}
	s.Resume("q")
	s.Drain()
	var total int64
	for i := range fires {
		if fires[i].Load() != 1 {
			t.Errorf("shard %d fires = %d, want 1", i, fires[i].Load())
		}
		total += fires[i].Load()
	}
	if got := s.Firings("q"); got != total {
		t.Errorf("group Firings = %d, want %d", got, total)
	}
	s.Remove("q")
	s.NotifyGroup("q")
	s.Drain()
	for i := range fires {
		if fires[i].Load() != 1 {
			t.Errorf("removed shard %d fired again", i)
		}
	}
}

// TestWorkStealing pins that transitions pinned to one worker's affinity
// still execute when that worker is busy: idle peers steal them.
func TestWorkStealing(t *testing.T) {
	s := New(4)
	defer s.Stop()
	block := make(chan struct{})
	s.Add(&Transition{Name: "hog", Affinity: 0, Fire: func() { <-block }})
	var fired atomic.Int64
	for i := 0; i < 8; i++ {
		s.Add(&Transition{
			Name: fmt.Sprintf("t%d", i), Affinity: 0, // all pinned to worker 0
			Fire: func() { fired.Add(1) },
		})
	}
	s.Notify("hog")
	for i := 0; i < 8; i++ {
		s.Notify(fmt.Sprintf("t%d", i))
	}
	// Worker 0 is blocked inside hog; the others must steal its queue.
	deadline := time.After(2 * time.Second)
	for fired.Load() < 8 {
		select {
		case <-deadline:
			t.Fatalf("only %d/8 pinned transitions fired while worker 0 was busy", fired.Load())
		case <-time.After(time.Millisecond):
		}
	}
	close(block)
	s.Drain()
}

// TestRemoveWait pins that RemoveWait blocks until an in-flight firing of
// the removed group completes — the guarantee query-group teardown relies
// on before invalidating member state.
func TestRemoveWait(t *testing.T) {
	s := New(2)
	defer s.Stop()
	entered := make(chan struct{})
	block := make(chan struct{})
	s.Add(&Transition{Name: "slow", Fire: func() {
		close(entered)
		<-block
	}})
	s.Notify("slow")
	<-entered
	done := make(chan struct{})
	go func() {
		s.RemoveWait("slow")
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("RemoveWait returned while the firing was still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(block)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("RemoveWait never returned after the firing completed")
	}
	// Removing an absent name is a no-op and must not block.
	s.RemoveWait("slow")
}

// TestPauseWhileQueued pins that pausing a transition that is already
// sitting in a ready queue holds the notification until Resume instead of
// letting a worker fire it paused.
func TestPauseWhileQueued(t *testing.T) {
	s := New(1)
	defer s.Stop()
	block := make(chan struct{})
	started := make(chan struct{})
	s.Add(&Transition{Name: "hog", Fire: func() {
		close(started)
		<-block
	}})
	var fired atomic.Int64
	s.Add(&Transition{Name: "t", Group: "g", Fire: func() { fired.Add(1) }})
	s.Notify("hog")
	<-started
	// The single worker is busy: "t" stays queued.
	s.Notify("t")
	s.Pause("g")
	close(block)
	s.Drain()
	if fired.Load() != 0 {
		t.Fatalf("paused transition fired %d times", fired.Load())
	}
	s.Resume("g")
	s.Drain()
	if fired.Load() != 1 {
		t.Fatalf("resumed transition fired %d times, want 1", fired.Load())
	}
}
