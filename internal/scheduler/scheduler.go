// Package scheduler implements the DataCell scheduler: a Petri-net model
// (paper §3) in which baskets are the places and factories the
// transitions. "The firing condition is aligned to arrival of events; once
// there are tuples that may be relevant to a waiting query, we trigger its
// evaluation." Basket appends raise notifications; a worker pool fires
// enabled, unpaused transitions, each at most once in flight at a time.
// The scheduler also carries the demo's pause/resume control for
// individual queries and the time constraints that force idle time windows
// shut.
package scheduler

import (
	"sync"
	"time"
)

// Transition is one Petri-net transition: a factory step.
type Transition struct {
	// Name identifies the transition (the query name).
	Name string
	// Ready reports whether the input places hold tokens (the factory has
	// pending tuples).
	Ready func() bool
	// Fire performs one step; it is never invoked concurrently with
	// itself.
	Fire func()

	// state guarded by the scheduler's mutex:
	queued   bool // waiting in the ready queue
	running  bool // a worker is inside Fire
	renotify bool // notified while running → requeue after Fire
	paused   bool
	pending  bool // notified while paused → requeue on resume
	firings  int64
}

// Scheduler drives a set of transitions with a fixed worker pool.
type Scheduler struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*Transition
	all    map[string]*Transition
	closed bool
	wg     sync.WaitGroup
	active int        // queued + running transitions
	idleC  *sync.Cond // broadcast when active drops to zero
}

// New starts a scheduler with the given number of worker goroutines
// (minimum 1).
func New(workers int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	s := &Scheduler{all: make(map[string]*Transition)}
	s.cond = sync.NewCond(&s.mu)
	s.idleC = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// Add registers a transition. Names must be unique.
func (s *Scheduler) Add(t *Transition) {
	s.mu.Lock()
	s.all[t.Name] = t
	s.mu.Unlock()
}

// Remove deletes a transition; an in-flight firing completes first.
func (s *Scheduler) Remove(name string) {
	s.mu.Lock()
	if t, ok := s.all[name]; ok {
		delete(s.all, name)
		if t.queued {
			// Leave it in the queue; workers skip transitions that have
			// been removed.
			t.queued = false
			s.decActiveLocked()
		}
	}
	s.mu.Unlock()
}

// Notify signals that a transition's input places gained tokens. It is
// the callback wired to basket appends.
func (s *Scheduler) Notify(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.all[name]
	if !ok || s.closed {
		return
	}
	if t.paused {
		t.pending = true
		return
	}
	if t.running {
		t.renotify = true
		return
	}
	s.enqueueLocked(t)
}

func (s *Scheduler) enqueueLocked(t *Transition) {
	if t.queued {
		return
	}
	t.queued = true
	s.active++
	s.queue = append(s.queue, t)
	s.cond.Signal()
}

// Pause stops a transition from firing; notifications received while
// paused are remembered (demo §4, Pause and Resume).
func (s *Scheduler) Pause(name string) {
	s.mu.Lock()
	if t, ok := s.all[name]; ok {
		t.paused = true
	}
	s.mu.Unlock()
}

// Resume re-enables a paused transition, firing it if events arrived in
// the meantime.
func (s *Scheduler) Resume(name string) {
	s.mu.Lock()
	if t, ok := s.all[name]; ok && t.paused {
		t.paused = false
		if t.pending {
			t.pending = false
			if t.running {
				t.renotify = true
			} else {
				s.enqueueLocked(t)
			}
		}
	}
	s.mu.Unlock()
}

// Paused reports whether the named transition is paused.
func (s *Scheduler) Paused(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.all[name]; ok {
		return t.paused
	}
	return false
}

// Firings reports how many times the named transition has fired.
func (s *Scheduler) Firings(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.all[name]; ok {
		return t.firings
	}
	return 0
}

// Drain blocks until no transition is queued or running. Combined with
// quiescent receptors it means the query network has fully processed all
// input — the synchronization point used by tests and benchmarks.
func (s *Scheduler) Drain() {
	s.mu.Lock()
	for s.active > 0 {
		s.idleC.Wait()
	}
	s.mu.Unlock()
}

func (s *Scheduler) decActiveLocked() {
	s.active--
	if s.active == 0 {
		s.idleC.Broadcast()
	}
}

// Stop shuts the workers down after in-flight firings complete.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed && len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		t := s.queue[0]
		s.queue = s.queue[1:]
		if !t.queued {
			// Removed while queued.
			s.mu.Unlock()
			continue
		}
		t.queued = false
		t.running = true
		t.firings++
		s.mu.Unlock()

		t.Fire()

		s.mu.Lock()
		t.running = false
		again := t.renotify || (t.Ready != nil && t.Ready())
		t.renotify = false
		if again && !t.paused {
			if _, live := s.all[t.Name]; live && !s.closed {
				s.enqueueLocked(t)
			}
		}
		s.decActiveLocked()
		s.mu.Unlock()
	}
}

// Ticker runs a heartbeat callback at a fixed interval until Stop — the
// scheduler's handle on time constraints ("the scheduler manages the time
// constraints attached to event handling"). The engine uses it to advance
// time-window watermarks while streams are idle.
type Ticker struct {
	stop chan struct{}
	done chan struct{}
}

// NewTicker starts a heartbeat.
func NewTicker(interval time.Duration, f func(now time.Time)) *Ticker {
	t := &Ticker{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(t.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case now := <-tick.C:
				f(now)
			case <-t.stop:
				return
			}
		}
	}()
	return t
}

// Stop halts the heartbeat and waits for the callback goroutine to exit.
func (t *Ticker) Stop() {
	close(t.stop)
	<-t.done
}
