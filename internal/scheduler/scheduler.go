// Package scheduler implements the DataCell scheduler: a Petri-net model
// (paper §3) in which baskets are the places and factories the
// transitions. "The firing condition is aligned to arrival of events; once
// there are tuples that may be relevant to a waiting query, we trigger its
// evaluation." Basket appends raise notifications; a worker pool fires
// enabled, unpaused transitions, each at most once in flight at a time.
//
// With sharded baskets a single continuous query contributes one
// transition per (input, shard); the transitions share a Group (the query
// name) so pause/resume/remove act on the whole query, while firing is
// independent per shard. Each transition carries an Affinity hint — its
// shard index — used to place it on a preferred worker's local queue;
// idle workers steal from their peers, so skewed shards never leave cores
// idle. The scheduler also carries the demo's pause/resume control for
// individual queries and the time constraints that force idle time windows
// shut.
//
// Shared execution groups change the transition topology, not the model:
// a group's stream front end(s) own the per-shard drain/slice transitions
// (scheduler group "group:<key>#<nonce>"), and every member query owns
// one tail transition ("<query>/tail", scheduler group = the query name),
// so pause/resume/drop stay member-granular. The group's memoized
// operator DAG adds no transitions of its own: DAG nodes are evaluated by
// whichever member tail reaches them first and memo-latched for the rest,
// which keeps a paused member from ever blocking a sibling.
package scheduler

import (
	"sync"
	"time"
)

// Transition is one Petri-net transition: a factory step, or — under
// sharding — one shard's slice of a factory step.
type Transition struct {
	// Name identifies the transition (unique; the query name, or
	// "query/input.shard" under sharding).
	Name string
	// Group names the query the transition belongs to; empty means the
	// transition is its own group. Pause, Resume, Remove and Firings
	// operate on groups.
	Group string
	// Affinity is the preferred worker (shard index); it is reduced
	// modulo the pool size. Work stealing keeps it a hint, not a pin.
	Affinity int
	// Ready reports whether the input places hold tokens (the factory has
	// pending tuples).
	Ready func() bool
	// Fire performs one step; it is never invoked concurrently with
	// itself.
	Fire func()

	// state guarded by the scheduler's mutex:
	queued   bool // waiting in a ready queue
	running  bool // a worker is inside Fire
	renotify bool // notified while running → requeue after Fire
	paused   bool
	pending  bool // notified while paused → requeue on resume
	firings  int64
}

func (t *Transition) group() string {
	if t.Group == "" {
		return t.Name
	}
	return t.Group
}

// Scheduler drives a set of transitions with a fixed worker pool. Each
// worker owns a local ready queue; enqueues go to the transition's
// affinity worker and idle workers steal from their peers.
type Scheduler struct {
	mu     sync.Mutex
	cond   *sync.Cond
	locals [][]*Transition // per-worker ready queues
	all    map[string]*Transition
	groups map[string][]*Transition
	closed bool
	wg     sync.WaitGroup
	active int        // queued + running transitions
	fired  int64      // cumulative firings, surviving transition removal
	idleC  *sync.Cond // broadcast when active drops to zero
	doneC  *sync.Cond // broadcast when a removed transition leaves Fire
}

// Stats is a point-in-time snapshot of the scheduler's load — the queue
// depths behind the /metrics scheduler gauges.
type Stats struct {
	Workers     int
	Transitions int   // registered transitions
	Groups      int   // registered transition groups
	Queued      int   // transitions sitting in ready queues
	Running     int   // transitions currently inside Fire
	Fired       int64 // cumulative firings since start (survives removal)
	// QueueDepths is the per-worker ready-queue length, index-aligned
	// with the worker pool. Work stealing drains imbalances, so a
	// persistently deep queue means a shard whose firings outrun one
	// core.
	QueueDepths []int
}

// Stats snapshots the scheduler's counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Workers:     len(s.locals),
		Transitions: len(s.all),
		Groups:      len(s.groups),
		Fired:       s.fired,
		QueueDepths: make([]int, len(s.locals)),
	}
	for i, q := range s.locals {
		// Count live entries only: a transition removed while queued stays
		// in the slice (workers skip it) but is no longer pending work.
		d := 0
		for _, t := range q {
			if t.queued {
				d++
			}
		}
		st.QueueDepths[i] = d
		st.Queued += d
	}
	for _, t := range s.all {
		if t.running {
			st.Running++
		}
	}
	return st
}

// New starts a scheduler with the given number of worker goroutines
// (minimum 1).
func New(workers int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	s := &Scheduler{
		all:    make(map[string]*Transition),
		groups: make(map[string][]*Transition),
		locals: make([][]*Transition, workers),
	}
	s.cond = sync.NewCond(&s.mu)
	s.idleC = sync.NewCond(&s.mu)
	s.doneC = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker(i)
	}
	return s
}

// Add registers a transition. Names must be unique.
func (s *Scheduler) Add(t *Transition) {
	s.mu.Lock()
	s.all[t.Name] = t
	g := t.group()
	s.groups[g] = append(s.groups[g], t)
	s.mu.Unlock()
}

// Remove deletes a group's transitions (or a single transition when the
// name matches no group). A firing already in flight finishes on its own
// time; use RemoveWait when the caller is about to invalidate state the
// firing may touch.
func (s *Scheduler) Remove(name string) {
	s.mu.Lock()
	s.removeLocked(name)
	s.mu.Unlock()
}

// RemoveWait removes like Remove and then blocks until no removed
// transition is still inside Fire. On return the caller may safely tear
// down whatever the transitions' callbacks reference — a factory, a query
// group membership — with no firing left to race. It must not be called
// from inside a Fire of the same group (the firing would wait on itself).
func (s *Scheduler) RemoveWait(name string) {
	s.mu.Lock()
	ts := s.removeLocked(name)
	for {
		busy := false
		for _, t := range ts {
			if t.running {
				busy = true
				break
			}
		}
		if !busy {
			break
		}
		s.doneC.Wait()
	}
	s.mu.Unlock()
}

func (s *Scheduler) removeLocked(name string) []*Transition {
	ts := s.groups[name]
	if ts == nil {
		if t, ok := s.all[name]; ok {
			ts = []*Transition{t}
			// Removing a single member of a larger group: drop it from
			// the group list too, so group pause/resume/firings no
			// longer touch it.
			g := t.group()
			members := s.groups[g]
			for i, m := range members {
				if m == t {
					s.groups[g] = append(members[:i], members[i+1:]...)
					break
				}
			}
			if len(s.groups[g]) == 0 {
				delete(s.groups, g)
			}
		}
	}
	for _, t := range ts {
		delete(s.all, t.Name)
		if t.queued {
			// Leave it in its queue; workers skip transitions that have
			// been removed.
			t.queued = false
			s.decActiveLocked()
		}
	}
	delete(s.groups, name)
	return ts
}

// Notify signals that a transition's input places gained tokens. It is
// the callback wired to basket appends.
func (s *Scheduler) Notify(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.all[name]; ok {
		s.notifyLocked(t)
	}
}

// NotifyGroup notifies every transition in a group. A sharded basket
// append raises it so that shards that received no rows still observe the
// advanced epoch watermark and flush their sealed basic windows.
func (s *Scheduler) NotifyGroup(group string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.groups[group] {
		if s.all[t.Name] == t {
			s.notifyLocked(t)
		}
	}
}

func (s *Scheduler) notifyLocked(t *Transition) {
	if s.closed {
		return
	}
	if t.paused {
		t.pending = true
		return
	}
	if t.running {
		t.renotify = true
		return
	}
	s.enqueueLocked(t)
}

func (s *Scheduler) enqueueLocked(t *Transition) {
	if t.queued {
		return
	}
	t.queued = true
	s.active++
	w := t.Affinity
	if w < 0 {
		w = 0
	}
	w %= len(s.locals)
	s.locals[w] = append(s.locals[w], t)
	s.cond.Signal()
}

// forEachInGroup applies f to the named group's transitions, falling back
// to the single transition of that name.
func (s *Scheduler) forEachInGroup(name string, f func(*Transition)) {
	if ts := s.groups[name]; ts != nil {
		for _, t := range ts {
			f(t)
		}
		return
	}
	if t, ok := s.all[name]; ok {
		f(t)
	}
}

// Pause stops a group's transitions from firing; notifications received
// while paused are remembered (demo §4, Pause and Resume).
func (s *Scheduler) Pause(name string) {
	s.mu.Lock()
	s.forEachInGroup(name, func(t *Transition) { t.paused = true })
	s.mu.Unlock()
}

// Resume re-enables a paused group, firing any member that was notified in
// the meantime.
func (s *Scheduler) Resume(name string) {
	s.mu.Lock()
	s.forEachInGroup(name, func(t *Transition) {
		if !t.paused {
			return
		}
		t.paused = false
		if t.pending {
			t.pending = false
			if t.running {
				t.renotify = true
			} else {
				s.enqueueLocked(t)
			}
		}
	})
	s.mu.Unlock()
}

// Paused reports whether the named group is paused (true when every
// member transition is paused).
func (s *Scheduler) Paused(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	any := false
	all := true
	s.forEachInGroup(name, func(t *Transition) {
		any = true
		all = all && t.paused
	})
	return any && all
}

// Firings reports how many times the named group's transitions have fired
// in total.
func (s *Scheduler) Firings(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	s.forEachInGroup(name, func(t *Transition) { n += t.firings })
	return n
}

// Drain blocks until no transition is queued or running. Combined with
// quiescent receptors it means the query network has fully processed all
// input — the synchronization point used by tests and benchmarks.
func (s *Scheduler) Drain() {
	s.mu.Lock()
	for s.active > 0 {
		s.idleC.Wait()
	}
	s.mu.Unlock()
}

func (s *Scheduler) decActiveLocked() {
	s.active--
	if s.active == 0 {
		s.idleC.Broadcast()
	}
}

// Stop shuts the workers down after in-flight firings complete.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// popLocked takes the next transition for worker w: its own queue first,
// then a steal sweep over its peers' queues.
func (s *Scheduler) popLocked(w int) *Transition {
	n := len(s.locals)
	for off := 0; off < n; off++ {
		v := (w + off) % n
		if len(s.locals[v]) > 0 {
			t := s.locals[v][0]
			s.locals[v] = s.locals[v][1:]
			return t
		}
	}
	return nil
}

func (s *Scheduler) worker(id int) {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var t *Transition
		for {
			t = s.popLocked(id)
			if t != nil || s.closed {
				break
			}
			s.cond.Wait()
		}
		if t == nil {
			s.mu.Unlock()
			return
		}
		if !t.queued {
			// Removed while queued.
			s.mu.Unlock()
			continue
		}
		if t.paused {
			// Paused after being enqueued: hold the notification until
			// Resume instead of firing a paused transition.
			t.queued = false
			t.pending = true
			s.decActiveLocked()
			s.mu.Unlock()
			continue
		}
		t.queued = false
		t.running = true
		t.firings++
		s.fired++
		s.mu.Unlock()

		t.Fire()

		s.mu.Lock()
		t.running = false
		// Liveness is by identity, not name: a same-named transition may
		// have been re-added while this one was firing (drop + re-register
		// race), and the stale one must neither suppress the RemoveWait
		// wake-up nor re-enqueue itself.
		live := s.all[t.Name] == t
		if !live {
			s.doneC.Broadcast() // a RemoveWait may be waiting on this firing
		}
		again := t.renotify || (live && t.Ready != nil && t.Ready())
		t.renotify = false
		if again && !t.paused && live && !s.closed {
			s.enqueueLocked(t)
		}
		s.decActiveLocked()
		s.mu.Unlock()
	}
}

// Ticker runs a heartbeat callback at a fixed interval until Stop — the
// scheduler's handle on time constraints ("the scheduler manages the time
// constraints attached to event handling"). The engine uses it to advance
// time-window watermarks while streams are idle.
type Ticker struct {
	stop chan struct{}
	done chan struct{}
}

// NewTicker starts a heartbeat.
func NewTicker(interval time.Duration, f func(now time.Time)) *Ticker {
	t := &Ticker{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(t.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case now := <-tick.C:
				f(now)
			case <-t.stop:
				return
			}
		}
	}()
	return t
}

// Stop halts the heartbeat and waits for the callback goroutine to exit.
func (t *Ticker) Stop() {
	close(t.stop)
	<-t.done
}
