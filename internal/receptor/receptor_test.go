package receptor

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"datacell/internal/basket"
	"datacell/internal/bat"
)

func sch() bat.Schema {
	return bat.NewSchema([]string{"ts", "k", "v"}, []bat.Kind{bat.Time, bat.Int, bat.Float})
}

func TestParseLine(t *testing.T) {
	vals, err := ParseLine(sch(), "123, 7, 2.5")
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].I != 123 || vals[1].I != 7 || vals[2].F != 2.5 {
		t.Errorf("vals = %v", vals)
	}
	if _, err := ParseLine(sch(), "1,2"); err == nil {
		t.Error("short line should fail")
	}
	if _, err := ParseLine(sch(), "1,x,3.0"); err == nil {
		t.Error("bad int should fail")
	}
}

func TestReplayCSV(t *testing.T) {
	bk := basket.New("s", sch())
	id := bk.Register()
	src := `# comment
1,1,0.5
2,2,1.5

3,3,2.5
`
	n, err := ReplayCSV(strings.NewReader(src), bk, 2, func() int64 { return 9 })
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("replayed %d tuples", n)
	}
	c, arr := bk.Peek(id, 10)
	if c.Rows() != 3 || arr[0] != 9 {
		t.Errorf("basket = %v arr=%v", c, arr)
	}
}

func TestReplayCSVErrors(t *testing.T) {
	bk := basket.New("s", sch())
	_, err := ReplayCSV(strings.NewReader("1,1,0.5\nbad,line\n"), bk, 10, nil)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v", err)
	}
}

func TestTCPReceptor(t *testing.T) {
	bk := basket.New("s", sch())
	id := bk.Register()
	r, err := ListenTCP("127.0.0.1:0", bk, func() int64 { return 5 })
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	conn, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(conn, "1,1,0.5")
	fmt.Fprintln(conn, "oops,not,good")
	fmt.Fprintln(conn, "# comment")
	fmt.Fprintln(conn, "2,2,1.5")
	_ = conn.Close()

	deadline := time.Now().Add(2 * time.Second)
	for r.Received() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if r.Received() != 2 {
		t.Fatalf("received = %d", r.Received())
	}
	if r.BadLines() != 1 {
		t.Errorf("bad lines = %d", r.BadLines())
	}
	c, _ := bk.Peek(id, 10)
	if c.Rows() != 2 || c.Row(1)[2].F != 1.5 {
		t.Errorf("basket contents = %v", c)
	}
}

func TestTCPReceptorMultipleConns(t *testing.T) {
	bk := basket.New("s", sch())
	_ = bk.Register()
	r, err := ListenTCP("127.0.0.1:0", bk, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	const conns = 4
	const per = 25
	for i := 0; i < conns; i++ {
		conn, err := net.Dial("tcp", r.Addr())
		if err != nil {
			t.Fatal(err)
		}
		go func(c net.Conn, base int) {
			for j := 0; j < per; j++ {
				fmt.Fprintf(c, "%d,%d,1.0\n", base+j, base+j)
			}
			_ = c.Close()
		}(conn, i*1000)
	}
	deadline := time.Now().Add(3 * time.Second)
	for r.Received() < conns*per && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if r.Received() != conns*per {
		t.Errorf("received = %d, want %d", r.Received(), conns*per)
	}
}

func TestRatedReplay(t *testing.T) {
	bk := basket.New("s", sch())
	_ = bk.Register()
	var src []*bat.Chunk
	for i := 0; i < 5; i++ {
		c := bat.NewChunk(sch())
		for j := 0; j < 20; j++ {
			_ = c.AppendRow(bat.TimeValue(int64(i*20+j)), bat.IntValue(int64(j)), bat.FloatValue(1))
		}
		src = append(src, c)
	}
	// 100 tuples at 1000/s should take ~100ms.
	sent, took := RatedReplay(bk, src, 1000, nil, nil)
	if sent != 100 {
		t.Errorf("sent = %d", sent)
	}
	if took < 60*time.Millisecond {
		t.Errorf("rate not limited: took %v", took)
	}
	if got := bk.Stats().TotalIn; got != 100 {
		t.Errorf("basket in = %d", got)
	}
}

func TestRatedReplayStop(t *testing.T) {
	bk := basket.New("s", sch())
	_ = bk.Register()
	var src []*bat.Chunk
	for i := 0; i < 100; i++ {
		c := bat.NewChunk(sch())
		_ = c.AppendRow(bat.TimeValue(int64(i)), bat.IntValue(1), bat.FloatValue(1))
		src = append(src, c)
	}
	stop := make(chan struct{})
	close(stop)
	sent, _ := RatedReplay(bk, src, 10, stop, nil)
	if sent != 0 {
		t.Errorf("sent = %d after immediate stop", sent)
	}
}

func TestRatedReplayUnlimited(t *testing.T) {
	bk := basket.New("s", sch())
	_ = bk.Register()
	c := bat.NewChunk(sch())
	_ = c.AppendRow(bat.TimeValue(1), bat.IntValue(1), bat.FloatValue(1))
	sent, _ := RatedReplay(bk, []*bat.Chunk{c, c, c}, 0, nil, nil)
	if sent != 3 {
		t.Errorf("sent = %d", sent)
	}
}
