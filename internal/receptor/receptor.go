// Package receptor implements DataCell's receptors: "a set of separate
// processes per stream ... to listen for new data" (paper §3, Figure 1).
// A receptor is the bridge from the outside world (sensor drivers, sockets,
// log files) into a stream's basket. This package provides a TCP listener
// speaking newline-separated CSV, a CSV replayer for files, and a
// rate-controlled replayer used by the benchmarks to emulate sensors at a
// configurable event rate (the demo's "rates which are configurable by the
// interface").
//
// Receptors write through basket.Appender, so they are agnostic of the
// partitioning behind a stream: appending to a sharded stream routes each
// row to its shard (hash of the declared key, round-robin otherwise)
// without the receptor holding any global lock — the partitioned append
// path of the sharded engine. Run one receptor per producer to exploit
// it; concurrent receptors only contend when their rows land on the same
// shard.
package receptor

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"datacell/internal/basket"
	"datacell/internal/bat"
)

// ParseLine converts one CSV line into a row of values following the
// schema.
func ParseLine(sch bat.Schema, line string) ([]bat.Value, error) {
	fields := strings.Split(line, ",")
	if len(fields) != sch.Width() {
		return nil, fmt.Errorf("receptor: line has %d fields, schema has %d columns",
			len(fields), sch.Width())
	}
	vals := make([]bat.Value, len(fields))
	for i, f := range fields {
		v, err := bat.ParseValue(sch.Kinds[i], strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return vals, nil
}

// ReplayCSV reads newline-separated CSV from r and appends it to the
// basket in batches of batchSize tuples, stamping each batch with now().
// Lines starting with '#' are skipped. It returns the number of tuples
// appended; a malformed line aborts with an error identifying the line
// number.
func ReplayCSV(r io.Reader, bk basket.Appender, batchSize int, now func() int64) (int64, error) {
	if batchSize <= 0 {
		batchSize = 256
	}
	sch := bk.Schema()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	chunk := bat.NewChunk(sch)
	var total int64
	lineNo := 0
	flush := func() error {
		if chunk.Rows() == 0 {
			return nil
		}
		if err := bk.Append(chunk, now()); err != nil {
			return err
		}
		total += int64(chunk.Rows())
		chunk = bat.NewChunk(sch)
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		vals, err := ParseLine(sch, line)
		if err != nil {
			return total, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if err := chunk.AppendRow(vals...); err != nil {
			return total, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if chunk.Rows() >= batchSize {
			if err := flush(); err != nil {
				return total, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return total, err
	}
	return total, flush()
}

// TCP is a network receptor: it accepts connections and appends each CSV
// line to the basket. Malformed lines are counted and skipped so one bad
// sensor cannot stall a stream.
type TCP struct {
	bk      basket.Appender
	ln      net.Listener
	now     func() int64
	wg      sync.WaitGroup
	mu      sync.Mutex
	conns   map[net.Conn]bool
	closed  bool
	total   atomic.Int64
	badLine atomic.Int64
}

// ListenTCP starts a receptor on addr (e.g. "127.0.0.1:0").
func ListenTCP(addr string, bk basket.Appender, now func() int64) (*TCP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if now == nil {
		now = func() int64 { return time.Now().UnixMicro() }
	}
	r := &TCP{bk: bk, ln: ln, now: now, conns: make(map[net.Conn]bool)}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// Addr reports the listener address.
func (r *TCP) Addr() string { return r.ln.Addr().String() }

// Received reports the number of tuples appended so far.
func (r *TCP) Received() int64 { return r.total.Load() }

// BadLines reports the number of malformed lines skipped.
func (r *TCP) BadLines() int64 { return r.badLine.Load() }

// Close stops accepting, closes live connections and waits for handlers.
func (r *TCP) Close() {
	r.mu.Lock()
	r.closed = true
	_ = r.ln.Close()
	for c := range r.conns {
		_ = c.Close()
	}
	r.mu.Unlock()
	r.wg.Wait()
}

func (r *TCP) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			_ = conn.Close()
			return
		}
		r.conns[conn] = true
		r.mu.Unlock()
		r.wg.Add(1)
		go r.handle(conn)
	}
}

func (r *TCP) handle(conn net.Conn) {
	defer r.wg.Done()
	defer func() {
		r.mu.Lock()
		delete(r.conns, conn)
		r.mu.Unlock()
		_ = conn.Close()
	}()
	sch := r.bk.Schema()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		vals, err := ParseLine(sch, line)
		if err != nil {
			r.badLine.Add(1)
			continue
		}
		chunk := bat.NewChunk(sch)
		if err := chunk.AppendRow(vals...); err != nil {
			r.badLine.Add(1)
			continue
		}
		if err := r.bk.Append(chunk, r.now()); err != nil {
			return
		}
		r.total.Add(1)
	}
}

// RatedReplay pushes pre-built chunks into a basket at a target rate of
// tuples per second, in batches. It blocks until done or until stop is
// closed, and returns the tuples pushed and the elapsed wall time —
// emulating the demo's configurable-rate stream driver.
func RatedReplay(bk basket.Appender, src []*bat.Chunk, tuplesPerSec int, stop <-chan struct{}, now func() int64) (int64, time.Duration) {
	if now == nil {
		now = func() int64 { return time.Now().UnixMicro() }
	}
	start := time.Now()
	var sent int64
	for _, c := range src {
		select {
		case <-stop:
			return sent, time.Since(start)
		default:
		}
		if err := bk.Append(c, now()); err != nil {
			return sent, time.Since(start)
		}
		sent += int64(c.Rows())
		if tuplesPerSec > 0 {
			target := time.Duration(float64(sent) / float64(tuplesPerSec) * float64(time.Second))
			if ahead := target - time.Since(start); ahead > 0 {
				select {
				case <-time.After(ahead):
				case <-stop:
					return sent, time.Since(start)
				}
			}
		}
	}
	return sent, time.Since(start)
}
