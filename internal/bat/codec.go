package bat

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Canonical wire encoding of schemas and chunks, used by the distributed
// shard fabric to ship sealed basic windows between processes. The format
// is columnar and self-describing. Two versions are in circulation:
//
//	v1 chunk := schema, uvarint nrows, then per column the packed values
//	v2 chunk := 0xFF 0x02, schema, uvarint nrows, then per column:
//	            byte encoding, encoded payload
//
//	schema := uvarint ncols, then per column: string name, byte kind
//
// v1 packs Ints and Times as fixed 8-byte little-endian payloads, Floats
// as their IEEE-754 bit patterns, Bools one byte each, and Strs
// uvarint-length-prefixed UTF-8. v2 keeps those as encoding 0 ("plain")
// and adds per-column lightweight compression: delta-varint for monotone
// or clustered Int/Time columns, dictionary coding for low-cardinality
// Str columns, and bit-packing for Bools. The encoder picks the smaller
// representation per column, deterministically, so equal chunks always
// encode to equal bytes.
//
// The 0xFF marker cannot begin a v1 buffer — v1 starts with the schema
// width uvarint, and a width with the continuation bit set (≥128 columns
// with 0xFF's payload bits) is rejected by UnmarshalSchema long before
// any realistic schema hits it — so UnmarshalChunk auto-detects the
// version and old snapshots and replay logs still decode.
//
// Decoding always allocates fresh vectors — a decoded chunk shares no
// storage with the wire buffer, so ownership transfers cleanly across
// the process boundary.

// Chunk wire-format markers and per-column encodings (v2).
const (
	chunkMagic   = 0xFF // cannot start a v1 schema a decoder would accept
	chunkVersion = 0x02

	// EncPlain is the v1 payload layout carried over per column.
	EncPlain = 0
	// EncDelta is varint(first) + varint deltas, for Int/Time columns.
	EncDelta = 1
	// EncDict is a first-occurrence dictionary + uvarint indices, for Str.
	EncDict = 2
	// EncBits packs Bool columns eight rows per byte, LSB first.
	EncBits = 3
)

// MarshalSchema appends the wire encoding of s to dst.
func MarshalSchema(dst []byte, s Schema) []byte {
	dst = binary.AppendUvarint(dst, uint64(s.Width()))
	for i, n := range s.Names {
		dst = AppendString(dst, n)
		dst = append(dst, byte(s.Kinds[i]))
	}
	return dst
}

// UnmarshalSchema decodes a schema from src, returning the remainder.
func UnmarshalSchema(src []byte) (Schema, []byte, error) {
	n, src, err := ReadUvarint(src)
	if err != nil {
		return Schema{}, nil, fmt.Errorf("bat: schema width: %w", err)
	}
	if n > uint64(len(src)) { // every column needs ≥2 bytes
		return Schema{}, nil, fmt.Errorf("bat: schema claims %d columns in %d bytes", n, len(src))
	}
	names := make([]string, n)
	kinds := make([]Kind, n)
	for i := range names {
		var s string
		s, src, err = ReadString(src)
		if err != nil {
			return Schema{}, nil, fmt.Errorf("bat: schema name %d: %w", i, err)
		}
		if len(src) == 0 {
			return Schema{}, nil, fmt.Errorf("bat: schema kind %d: short buffer", i)
		}
		names[i], kinds[i] = s, Kind(src[0])
		if kinds[i] > Time {
			return Schema{}, nil, fmt.Errorf("bat: schema kind %d: unknown kind %d", i, src[0])
		}
		src = src[1:]
	}
	return NewSchema(names, kinds), src, nil
}

// MarshalChunk appends the v2 wire encoding of c to dst, choosing the
// smallest per-column encoding. The choice depends only on the column
// values, so equal chunks marshal to identical bytes.
func MarshalChunk(dst []byte, c *Chunk) []byte {
	dst = append(dst, chunkMagic, chunkVersion)
	dst = MarshalSchema(dst, c.Schema)
	rows := c.Rows()
	dst = binary.AppendUvarint(dst, uint64(rows))
	for _, col := range c.Cols {
		switch v := col.(type) {
		case Ints:
			dst = appendInt64Col(dst, v)
		case Times:
			dst = appendInt64Col(dst, v)
		case Floats:
			dst = append(dst, EncPlain)
			for _, f := range v {
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
			}
		case Bools:
			dst = append(dst, EncBits)
			dst = appendPackedBools(dst, v)
		case Strs:
			dst = appendStrCol(dst, v)
		default:
			panic(fmt.Sprintf("bat: MarshalChunk of unknown vector %T", col))
		}
	}
	return dst
}

// appendInt64Col writes an Int/Time column as delta-varint when that is
// strictly smaller than the 8-byte plain layout, else plain.
func appendInt64Col(dst []byte, vals []int64) []byte {
	deltaSize, prev := 0, int64(0)
	for i, v := range vals {
		d := v
		if i > 0 {
			d = v - prev // wraps on overflow; decode wraps back
		}
		deltaSize += varintLen(d)
		prev = v
		if deltaSize >= 8*len(vals) {
			break
		}
	}
	if len(vals) > 0 && deltaSize < 8*len(vals) {
		dst = append(dst, EncDelta)
		prev = 0
		for i, v := range vals {
			d := v
			if i > 0 {
				d = v - prev
			}
			dst = binary.AppendVarint(dst, d)
			prev = v
		}
		return dst
	}
	dst = append(dst, EncPlain)
	return AppendInt64s(dst, vals)
}

// appendStrCol writes a Str column dictionary-coded when the dictionary
// plus index stream is strictly smaller than the plain layout.
func appendStrCol(dst []byte, vals []string) []byte {
	dict := make(map[string]int, 16)
	var order []string
	plainSize, dictSize := 0, 0
	for _, s := range vals {
		plainSize += uvarintLen(uint64(len(s))) + len(s)
		idx, ok := dict[s]
		if !ok {
			idx = len(order)
			dict[s] = idx
			order = append(order, s)
			dictSize += uvarintLen(uint64(len(s))) + len(s)
		}
		dictSize += uvarintLen(uint64(idx))
	}
	dictSize += uvarintLen(uint64(len(order)))
	if len(vals) > 0 && dictSize < plainSize {
		dst = append(dst, EncDict)
		dst = binary.AppendUvarint(dst, uint64(len(order)))
		for _, s := range order {
			dst = AppendString(dst, s)
		}
		for _, s := range vals {
			dst = binary.AppendUvarint(dst, uint64(dict[s]))
		}
		return dst
	}
	dst = append(dst, EncPlain)
	for _, s := range vals {
		dst = AppendString(dst, s)
	}
	return dst
}

func appendPackedBools(dst []byte, vals []bool) []byte {
	var acc byte
	for i, b := range vals {
		if b {
			acc |= 1 << (i & 7)
		}
		if i&7 == 7 {
			dst = append(dst, acc)
			acc = 0
		}
	}
	if len(vals)&7 != 0 {
		dst = append(dst, acc)
	}
	return dst
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func varintLen(v int64) int {
	return uvarintLen(uint64(v)<<1 ^ uint64(v>>63))
}

// ChunkPlainSize reports the byte size column payloads would occupy in
// the plain (v1) layout — the baseline the fabric's encoding-savings
// metrics compare batched frames against.
func ChunkPlainSize(c *Chunk) int {
	rows, size := c.Rows(), 0
	for _, col := range c.Cols {
		switch v := col.(type) {
		case Strs:
			for _, s := range v {
				size += uvarintLen(uint64(len(s))) + len(s)
			}
		case Bools:
			size += rows
		default:
			size += 8 * rows
		}
	}
	return size
}

// UnmarshalChunk decodes a chunk from src, returning the remainder. Both
// wire versions decode; the chunk owns freshly allocated vectors.
func UnmarshalChunk(src []byte) (*Chunk, []byte, error) {
	if len(src) >= 2 && src[0] == chunkMagic && src[1] == chunkVersion {
		return unmarshalChunkV2(src[2:])
	}
	return unmarshalChunkV1(src)
}

func unmarshalChunkV1(src []byte) (*Chunk, []byte, error) {
	sch, src, err := UnmarshalSchema(src)
	if err != nil {
		return nil, nil, err
	}
	n, src, err := ReadUvarint(src)
	if err != nil {
		return nil, nil, fmt.Errorf("bat: chunk rows: %w", err)
	}
	// Every row costs at least one payload byte per column; reject row
	// counts the buffer cannot possibly hold before allocating.
	if sch.Width() > 0 && n > uint64(len(src)) {
		return nil, nil, fmt.Errorf("bat: chunk claims %d rows in %d bytes", n, len(src))
	}
	rows := int(n)
	c := &Chunk{Schema: sch, Cols: make([]Vector, sch.Width())}
	for i, k := range sch.Kinds {
		switch k {
		case Int, Time:
			vals, rest, err := ReadInt64s(src, rows)
			if err != nil {
				return nil, nil, fmt.Errorf("bat: chunk column %d: %w", i, err)
			}
			if k == Int {
				c.Cols[i] = Ints(vals)
			} else {
				c.Cols[i] = Times(vals)
			}
			src = rest
		case Float:
			vals, rest, err := ReadInt64s(src, rows)
			if err != nil {
				return nil, nil, fmt.Errorf("bat: chunk column %d: %w", i, err)
			}
			fs := make(Floats, rows)
			for j, bits := range vals {
				fs[j] = math.Float64frombits(uint64(bits))
			}
			c.Cols[i], src = fs, rest
		case Bool:
			if len(src) < rows {
				return nil, nil, fmt.Errorf("bat: chunk column %d: short buffer", i)
			}
			bs := make(Bools, rows)
			for j := 0; j < rows; j++ {
				bs[j] = src[j] != 0
			}
			c.Cols[i], src = bs, src[rows:]
		case Str:
			ss := make(Strs, rows)
			for j := 0; j < rows; j++ {
				var s string
				s, src, err = ReadString(src)
				if err != nil {
					return nil, nil, fmt.Errorf("bat: chunk column %d row %d: %w", i, j, err)
				}
				ss[j] = s
			}
			c.Cols[i] = ss
		}
	}
	return c, src, nil
}

func unmarshalChunkV2(src []byte) (*Chunk, []byte, error) {
	sch, src, err := UnmarshalSchema(src)
	if err != nil {
		return nil, nil, err
	}
	n, src, err := ReadUvarint(src)
	if err != nil {
		return nil, nil, fmt.Errorf("bat: chunk rows: %w", err)
	}
	// Every column costs at least its encoding byte; every plain or
	// delta row at least one byte. Bound the claimed row count by what
	// a delta column could possibly pack into the remaining buffer.
	if sch.Width() > 0 && n > 8*uint64(len(src)) {
		return nil, nil, fmt.Errorf("bat: chunk claims %d rows in %d bytes", n, len(src))
	}
	rows := int(n)
	c := &Chunk{Schema: sch, Cols: make([]Vector, sch.Width())}
	for i, k := range sch.Kinds {
		if len(src) == 0 {
			return nil, nil, fmt.Errorf("bat: chunk column %d: missing encoding", i)
		}
		enc := src[0]
		src = src[1:]
		var col Vector
		col, src, err = decodeColumn(src, k, enc, rows)
		if err != nil {
			return nil, nil, fmt.Errorf("bat: chunk column %d: %w", i, err)
		}
		c.Cols[i] = col
	}
	return c, src, nil
}

func decodeColumn(src []byte, k Kind, enc byte, rows int) (Vector, []byte, error) {
	switch k {
	case Int, Time:
		var vals []int64
		var err error
		switch enc {
		case EncPlain:
			vals, src, err = ReadInt64s(src, rows)
		case EncDelta:
			vals, src, err = readDeltaInt64s(src, rows)
		default:
			return nil, nil, fmt.Errorf("encoding %d invalid for %s", enc, k)
		}
		if err != nil {
			return nil, nil, err
		}
		if k == Int {
			return Ints(vals), src, nil
		}
		return Times(vals), src, nil
	case Float:
		if enc != EncPlain {
			return nil, nil, fmt.Errorf("encoding %d invalid for %s", enc, k)
		}
		vals, src, err := ReadInt64s(src, rows)
		if err != nil {
			return nil, nil, err
		}
		fs := make(Floats, rows)
		for j, bits := range vals {
			fs[j] = math.Float64frombits(uint64(bits))
		}
		return fs, src, nil
	case Bool:
		switch enc {
		case EncPlain:
			if len(src) < rows {
				return nil, nil, fmt.Errorf("short buffer")
			}
			bs := make(Bools, rows)
			for j := 0; j < rows; j++ {
				bs[j] = src[j] != 0
			}
			return bs, src[rows:], nil
		case EncBits:
			packed := (rows + 7) / 8
			if len(src) < packed {
				return nil, nil, fmt.Errorf("short buffer")
			}
			bs := make(Bools, rows)
			for j := 0; j < rows; j++ {
				bs[j] = src[j/8]&(1<<(j&7)) != 0
			}
			return bs, src[packed:], nil
		default:
			return nil, nil, fmt.Errorf("encoding %d invalid for %s", enc, k)
		}
	case Str:
		if rows > len(src) { // every row needs ≥1 byte in either encoding
			return nil, nil, fmt.Errorf("short buffer: %d string rows in %d bytes", rows, len(src))
		}
		switch enc {
		case EncPlain:
			ss := make(Strs, rows)
			var err error
			for j := 0; j < rows; j++ {
				ss[j], src, err = ReadString(src)
				if err != nil {
					return nil, nil, fmt.Errorf("row %d: %w", j, err)
				}
			}
			return ss, src, nil
		case EncDict:
			nd, src, err := ReadUvarint(src)
			if err != nil {
				return nil, nil, fmt.Errorf("dict size: %w", err)
			}
			if nd > uint64(len(src)) { // every entry needs ≥1 byte
				return nil, nil, fmt.Errorf("dict claims %d entries in %d bytes", nd, len(src))
			}
			dict := make([]string, nd)
			for j := range dict {
				dict[j], src, err = ReadString(src)
				if err != nil {
					return nil, nil, fmt.Errorf("dict entry %d: %w", j, err)
				}
			}
			ss := make(Strs, rows)
			for j := 0; j < rows; j++ {
				var idx uint64
				idx, src, err = ReadUvarint(src)
				if err != nil {
					return nil, nil, fmt.Errorf("dict index %d: %w", j, err)
				}
				if idx >= nd {
					return nil, nil, fmt.Errorf("dict index %d out of range %d", idx, nd)
				}
				ss[j] = dict[idx]
			}
			return ss, src, nil
		default:
			return nil, nil, fmt.Errorf("encoding %d invalid for %s", enc, k)
		}
	}
	return nil, nil, fmt.Errorf("unknown kind %d", k)
}

func readDeltaInt64s(src []byte, rows int) ([]int64, []byte, error) {
	if rows > len(src) { // every varint needs ≥1 byte
		return nil, nil, fmt.Errorf("short buffer: %d delta rows in %d bytes", rows, len(src))
	}
	out := make([]int64, rows)
	var prev int64
	var err error
	for i := 0; i < rows; i++ {
		var d int64
		d, src, err = ReadVarint(src)
		if err != nil {
			return nil, nil, err
		}
		if i == 0 {
			prev = d
		} else {
			prev += d
		}
		out[i] = prev
	}
	return out, src, nil
}

// AppendString appends a uvarint-length-prefixed string — the string
// primitive of the wire format, shared by the window and fabric codecs.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// ReadString decodes a length-prefixed string, returning the remainder.
func ReadString(src []byte) (string, []byte, error) {
	n, src, err := ReadUvarint(src)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(src)) {
		return "", nil, fmt.Errorf("short buffer: string of %d bytes, have %d", n, len(src))
	}
	return string(src[:n]), src[n:], nil
}

// ReadUvarint decodes one uvarint, returning the remainder.
func ReadUvarint(src []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, nil, fmt.Errorf("bad uvarint")
	}
	return v, src[n:], nil
}

// ReadVarint decodes one signed varint, returning the remainder.
func ReadVarint(src []byte) (int64, []byte, error) {
	v, n := binary.Varint(src)
	if n <= 0 {
		return 0, nil, fmt.Errorf("bad varint")
	}
	return v, src[n:], nil
}

// AppendInt64s appends n fixed 8-byte little-endian values — the packed
// int64 primitive of the wire format, shared with the fabric's snapshot
// codec (arrival and sequence stamp arrays).
func AppendInt64s(dst []byte, vals []int64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	return dst
}

// ReadInt64s decodes n packed int64s, returning the remainder.
func ReadInt64s(src []byte, n int) ([]int64, []byte, error) {
	if n < 0 || len(src) < 8*n {
		return nil, nil, fmt.Errorf("short buffer: want %d bytes, have %d", 8*n, len(src))
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(src[8*i:]))
	}
	return out, src[8*n:], nil
}
