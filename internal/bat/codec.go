package bat

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Canonical wire encoding of schemas and chunks, used by the distributed
// shard fabric to ship sealed basic windows between processes. The format
// is columnar and self-describing:
//
//	schema := uvarint ncols, then per column: string name, byte kind
//	chunk  := schema, uvarint nrows, then per column the packed values
//
// Ints and Times are fixed 8-byte little-endian payloads, Floats their
// IEEE-754 bit patterns, Bools one byte each, and Strs uvarint-length-
// prefixed UTF-8. Decoding always allocates fresh vectors — a decoded
// chunk shares no storage with the wire buffer, so ownership transfers
// cleanly across the process boundary.

// MarshalSchema appends the wire encoding of s to dst.
func MarshalSchema(dst []byte, s Schema) []byte {
	dst = binary.AppendUvarint(dst, uint64(s.Width()))
	for i, n := range s.Names {
		dst = AppendString(dst, n)
		dst = append(dst, byte(s.Kinds[i]))
	}
	return dst
}

// UnmarshalSchema decodes a schema from src, returning the remainder.
func UnmarshalSchema(src []byte) (Schema, []byte, error) {
	n, src, err := ReadUvarint(src)
	if err != nil {
		return Schema{}, nil, fmt.Errorf("bat: schema width: %w", err)
	}
	if n > uint64(len(src)) { // every column needs ≥2 bytes
		return Schema{}, nil, fmt.Errorf("bat: schema claims %d columns in %d bytes", n, len(src))
	}
	names := make([]string, n)
	kinds := make([]Kind, n)
	for i := range names {
		var s string
		s, src, err = ReadString(src)
		if err != nil {
			return Schema{}, nil, fmt.Errorf("bat: schema name %d: %w", i, err)
		}
		if len(src) == 0 {
			return Schema{}, nil, fmt.Errorf("bat: schema kind %d: short buffer", i)
		}
		names[i], kinds[i] = s, Kind(src[0])
		if kinds[i] > Time {
			return Schema{}, nil, fmt.Errorf("bat: schema kind %d: unknown kind %d", i, src[0])
		}
		src = src[1:]
	}
	return NewSchema(names, kinds), src, nil
}

// MarshalChunk appends the wire encoding of c (schema + columns) to dst.
func MarshalChunk(dst []byte, c *Chunk) []byte {
	dst = MarshalSchema(dst, c.Schema)
	rows := c.Rows()
	dst = binary.AppendUvarint(dst, uint64(rows))
	for _, col := range c.Cols {
		switch v := col.(type) {
		case Ints:
			dst = AppendInt64s(dst, v)
		case Times:
			dst = AppendInt64s(dst, v)
		case Floats:
			for _, f := range v {
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
			}
		case Bools:
			for _, b := range v {
				if b {
					dst = append(dst, 1)
				} else {
					dst = append(dst, 0)
				}
			}
		case Strs:
			for _, s := range v {
				dst = AppendString(dst, s)
			}
		default:
			panic(fmt.Sprintf("bat: MarshalChunk of unknown vector %T", col))
		}
	}
	return dst
}

// UnmarshalChunk decodes a chunk from src, returning the remainder. The
// chunk owns freshly allocated vectors.
func UnmarshalChunk(src []byte) (*Chunk, []byte, error) {
	sch, src, err := UnmarshalSchema(src)
	if err != nil {
		return nil, nil, err
	}
	n, src, err := ReadUvarint(src)
	if err != nil {
		return nil, nil, fmt.Errorf("bat: chunk rows: %w", err)
	}
	// Every row costs at least one payload byte per column; reject row
	// counts the buffer cannot possibly hold before allocating.
	if sch.Width() > 0 && n > uint64(len(src)) {
		return nil, nil, fmt.Errorf("bat: chunk claims %d rows in %d bytes", n, len(src))
	}
	rows := int(n)
	c := &Chunk{Schema: sch, Cols: make([]Vector, sch.Width())}
	for i, k := range sch.Kinds {
		switch k {
		case Int, Time:
			vals, rest, err := ReadInt64s(src, rows)
			if err != nil {
				return nil, nil, fmt.Errorf("bat: chunk column %d: %w", i, err)
			}
			if k == Int {
				c.Cols[i] = Ints(vals)
			} else {
				c.Cols[i] = Times(vals)
			}
			src = rest
		case Float:
			vals, rest, err := ReadInt64s(src, rows)
			if err != nil {
				return nil, nil, fmt.Errorf("bat: chunk column %d: %w", i, err)
			}
			fs := make(Floats, rows)
			for j, bits := range vals {
				fs[j] = math.Float64frombits(uint64(bits))
			}
			c.Cols[i], src = fs, rest
		case Bool:
			if len(src) < rows {
				return nil, nil, fmt.Errorf("bat: chunk column %d: short buffer", i)
			}
			bs := make(Bools, rows)
			for j := 0; j < rows; j++ {
				bs[j] = src[j] != 0
			}
			c.Cols[i], src = bs, src[rows:]
		case Str:
			ss := make(Strs, rows)
			for j := 0; j < rows; j++ {
				var s string
				s, src, err = ReadString(src)
				if err != nil {
					return nil, nil, fmt.Errorf("bat: chunk column %d row %d: %w", i, j, err)
				}
				ss[j] = s
			}
			c.Cols[i] = ss
		}
	}
	return c, src, nil
}

// AppendString appends a uvarint-length-prefixed string — the string
// primitive of the wire format, shared by the window and fabric codecs.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// ReadString decodes a length-prefixed string, returning the remainder.
func ReadString(src []byte) (string, []byte, error) {
	n, src, err := ReadUvarint(src)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(src)) {
		return "", nil, fmt.Errorf("short buffer: string of %d bytes, have %d", n, len(src))
	}
	return string(src[:n]), src[n:], nil
}

// ReadUvarint decodes one uvarint, returning the remainder.
func ReadUvarint(src []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, nil, fmt.Errorf("bad uvarint")
	}
	return v, src[n:], nil
}

// ReadVarint decodes one signed varint, returning the remainder.
func ReadVarint(src []byte) (int64, []byte, error) {
	v, n := binary.Varint(src)
	if n <= 0 {
		return 0, nil, fmt.Errorf("bad varint")
	}
	return v, src[n:], nil
}

// AppendInt64s appends n fixed 8-byte little-endian values — the packed
// int64 primitive of the wire format, shared with the fabric's snapshot
// codec (arrival and sequence stamp arrays).
func AppendInt64s(dst []byte, vals []int64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	return dst
}

// ReadInt64s decodes n packed int64s, returning the remainder.
func ReadInt64s(src []byte, n int) ([]int64, []byte, error) {
	if n < 0 || len(src) < 8*n {
		return nil, nil, fmt.Errorf("short buffer: want %d bytes, have %d", 8*n, len(src))
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(src[8*i:]))
	}
	return out, src[8*n:], nil
}
