// Package bat implements the columnar storage layer of DataCell-Go.
//
// It mirrors the storage model of MonetDB, the column-store that the
// DataCell paper builds on: every relational column is stored as a Binary
// Association Table (BAT) whose head is a dense sequence of row ids (a
// "void" column, represented implicitly by a sequence base) and whose tail
// is a typed, densely packed vector of values. All query operators in
// internal/algebra work on these vectors in bulk, producing either new
// vectors or candidate lists (selection vectors), which is what enables the
// incremental window processing described in the paper: intermediates are
// plain columnar values that can be cached and merged cheaply.
package bat

import "fmt"

// Kind identifies the value type stored in a Vector. DataCell-Go supports
// the scalar types exercised by the paper's workloads: 64-bit integers,
// 64-bit floats, strings, booleans and microsecond-precision timestamps.
type Kind uint8

// The supported column types.
const (
	Int   Kind = iota // int64
	Float             // float64
	Str               // string
	Bool              // bool
	Time              // int64 microseconds since the Unix epoch
)

// String returns the SQL-facing name of the kind.
func (k Kind) String() string {
	switch k {
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case Str:
		return "STRING"
	case Bool:
		return "BOOL"
	case Time:
		return "TIMESTAMP"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Numeric reports whether the kind supports arithmetic.
func (k Kind) Numeric() bool { return k == Int || k == Float || k == Time }

// ParseKind maps a SQL type name to a Kind. It accepts the common aliases
// used by the demo scenarios (INTEGER, BIGINT, DOUBLE, REAL, VARCHAR, ...).
func ParseKind(name string) (Kind, error) {
	switch name {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT":
		return Int, nil
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL", "NUMERIC":
		return Float, nil
	case "STRING", "VARCHAR", "CHAR", "TEXT", "CLOB":
		return Str, nil
	case "BOOL", "BOOLEAN":
		return Bool, nil
	case "TIMESTAMP", "TIME", "DATE":
		return Time, nil
	default:
		return 0, fmt.Errorf("bat: unknown type %q", name)
	}
}
