package bat

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"testing"
)

// marshalChunkV1 reproduces the legacy (pre-encoding) wire layout so the
// tests can prove new binaries still decode old snapshots and replay logs.
func marshalChunkV1(dst []byte, c *Chunk) []byte {
	dst = MarshalSchema(dst, c.Schema)
	dst = binary.AppendUvarint(dst, uint64(c.Rows()))
	for _, col := range c.Cols {
		switch v := col.(type) {
		case Ints:
			dst = AppendInt64s(dst, v)
		case Times:
			dst = AppendInt64s(dst, v)
		case Floats:
			for _, f := range v {
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
			}
		case Bools:
			for _, b := range v {
				if b {
					dst = append(dst, 1)
				} else {
					dst = append(dst, 0)
				}
			}
		case Strs:
			for _, s := range v {
				dst = AppendString(dst, s)
			}
		}
	}
	return dst
}

func TestChunkCodecLegacyDecode(t *testing.T) {
	c := testChunk()
	buf := marshalChunkV1(nil, c)
	got, rest, err := UnmarshalChunk(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("trailing bytes: %d", len(rest))
	}
	if !reflect.DeepEqual(got.Cols, c.Cols) {
		t.Fatalf("legacy cols = %v, want %v", got.Cols, c.Cols)
	}
}

// linearroadChunk models the delta/dict-friendly shape of the linear road
// feed: a monotone timestamp, a slowly varying position, a low-cardinality
// segment label and an express-lane flag.
func linearroadChunk(rows int) *Chunk {
	sch := NewSchema(
		[]string{"ts", "pos", "seg", "xway"},
		[]Kind{Time, Int, Str, Bool})
	ts := make(Times, rows)
	pos := make(Ints, rows)
	seg := make(Strs, rows)
	xw := make(Bools, rows)
	segs := []string{"seg-00", "seg-01", "seg-02", "seg-03"}
	for i := 0; i < rows; i++ {
		ts[i] = 1_700_000_000_000_000 + int64(i)*250
		pos[i] = 52800 + int64(i%97)
		seg[i] = segs[(i/19)%len(segs)]
		xw[i] = i%5 == 0
	}
	return &Chunk{Schema: sch, Cols: []Vector{ts, pos, seg, xw}}
}

// TestChunkCodecCompression pins the acceptance bar: delta+dict encoding
// shrinks the linearroad-shaped columns by ≥2× against the plain layout.
func TestChunkCodecCompression(t *testing.T) {
	c := linearroadChunk(4096)
	buf := MarshalChunk(nil, c)
	plain := ChunkPlainSize(c)
	if len(buf)*2 > plain {
		t.Fatalf("v2 encoding %d bytes, plain %d: want ≥2× reduction", len(buf), plain)
	}
	got, rest, err := UnmarshalChunk(buf)
	if err != nil || len(rest) != 0 {
		t.Fatalf("round trip: %v rest=%d", err, len(rest))
	}
	if !reflect.DeepEqual(got.Cols, c.Cols) {
		t.Fatal("encoded columns did not round-trip")
	}
}

// TestChunkCodecEncodingChoice pins which encoding each column shape
// selects, and that the choice is deterministic: equal chunks marshal to
// identical bytes.
func TestChunkCodecEncodingChoice(t *testing.T) {
	cases := []struct {
		name string
		col  Vector
		enc  byte
	}{
		{"monotone-int", Ints{100, 101, 102, 103, 104, 105, 106, 107}, EncDelta},
		{"random-int", Ints{1 << 60, -1 << 59, 1 << 58, -1 << 57, 1 << 56, -1 << 55, 1 << 54, -1 << 53}, EncPlain},
		{"low-card-str", Strs{"aa", "bb", "aa", "bb", "aa", "bb", "aa", "bb"}, EncDict},
		{"unique-str", Strs{"a", "b", "c", "d", "e", "f", "g", "h"}, EncPlain},
		{"bool", Bools{true, false, true, false, true, false, true, false}, EncBits},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := &Chunk{
				Schema: NewSchema([]string{"c"}, []Kind{tc.col.Kind()}),
				Cols:   []Vector{tc.col},
			}
			buf := MarshalChunk(nil, c)
			// marker(2) + schema(uvarint 1, "c", kind) + rows uvarint + enc byte
			encAt := 2 + 1 + 2 + 1 + 1
			if buf[encAt] != tc.enc {
				t.Fatalf("encoding byte = %d, want %d", buf[encAt], tc.enc)
			}
			if again := MarshalChunk(nil, c); !bytes.Equal(buf, again) {
				t.Fatal("marshal is not deterministic")
			}
			got, _, err := UnmarshalChunk(buf)
			if err != nil || !reflect.DeepEqual(got.Cols, c.Cols) {
				t.Fatalf("round trip: %v got %v", err, got)
			}
		})
	}
}

func TestChunkCodecDeltaOverflow(t *testing.T) {
	// Deltas that wrap int64 must still round-trip (two's-complement wrap
	// on encode and decode cancel out).
	c := &Chunk{
		Schema: NewSchema([]string{"v"}, []Kind{Int}),
		Cols:   []Vector{Ints{math.MinInt64, math.MaxInt64, 0, math.MinInt64 + 1}},
	}
	got, _, err := UnmarshalChunk(MarshalChunk(nil, c))
	if err != nil || !reflect.DeepEqual(got.Cols, c.Cols) {
		t.Fatalf("overflow round trip: %v got %v", err, got)
	}
}

// FuzzChunkRoundTrip drives both decoder versions with arbitrary bytes
// (decode never panics) and, when the input does decode, checks the
// encode∘decode fixed point: re-marshalling the decoded chunk and
// decoding again yields the same values and identical bytes.
func FuzzChunkRoundTrip(f *testing.F) {
	f.Add(MarshalChunk(nil, testChunk()))
	f.Add(marshalChunkV1(nil, testChunk()))
	f.Add(MarshalChunk(nil, linearroadChunk(64)))
	f.Add(MarshalChunk(nil, NewChunk(NewSchema([]string{"a"}, []Kind{Bool}))))
	f.Add([]byte{chunkMagic, chunkVersion, 1, 1, 'x', byte(Str), 3, EncDict, 1, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, _, err := UnmarshalChunk(data)
		if err != nil {
			return
		}
		buf := MarshalChunk(nil, c)
		c2, rest, err := UnmarshalChunk(buf)
		if err != nil {
			t.Fatalf("re-decode of re-encoded chunk failed: %v", err)
		}
		if len(rest) != 0 {
			t.Fatalf("re-decode left %d trailing bytes", len(rest))
		}
		if !reflect.DeepEqual(c2.Schema, c.Schema) {
			t.Fatal("schema did not round-trip")
		}
		// Byte equality is the fixed point (and is NaN-safe, where a
		// value comparison is not: NaN ≠ NaN but its bits round-trip).
		if again := MarshalChunk(nil, c2); !bytes.Equal(buf, again) {
			t.Fatal("encode∘decode is not a fixed point")
		}
	})
}

// BenchmarkMarshalChunk tracks bytes-per-row for the three column shapes
// the wire encoder distinguishes; dcbench scrapes the plain/delta and
// plain/dict ratios from these numbers.
func BenchmarkMarshalChunk(b *testing.B) {
	const rows = 4096
	shapes := []struct {
		name  string
		chunk *Chunk
	}{
		{"plain", func() *Chunk {
			vals := make(Floats, rows)
			for i := range vals {
				vals[i] = float64(i) * 1.5
			}
			return &Chunk{Schema: NewSchema([]string{"v"}, []Kind{Float}), Cols: []Vector{vals}}
		}()},
		{"delta", func() *Chunk {
			vals := make(Times, rows)
			for i := range vals {
				vals[i] = 1_700_000_000_000_000 + int64(i)*250
			}
			return &Chunk{Schema: NewSchema([]string{"ts"}, []Kind{Time}), Cols: []Vector{vals}}
		}()},
		{"dict", func() *Chunk {
			vals := make(Strs, rows)
			segs := []string{"seg-00", "seg-01", "seg-02", "seg-03"}
			for i := range vals {
				vals[i] = segs[(i/19)%len(segs)]
			}
			return &Chunk{Schema: NewSchema([]string{"seg"}, []Kind{Str}), Cols: []Vector{vals}}
		}()},
	}
	for _, sh := range shapes {
		b.Run(sh.name, func(b *testing.B) {
			var buf []byte
			for i := 0; i < b.N; i++ {
				buf = MarshalChunk(buf[:0], sh.chunk)
			}
			b.ReportMetric(float64(len(buf))/rows, "bytes/row")
			b.SetBytes(int64(ChunkPlainSize(sh.chunk)))
		})
	}
}
