package bat

import "fmt"

// BAT is a Binary Association Table in the MonetDB sense: a mapping from a
// dense range of row ids (the void head, represented only by its sequence
// base Seq) to typed values (the Tail vector). Persistent tables and stream
// baskets are collections of BATs, one per attribute, all sharing the same
// head sequence.
type BAT struct {
	// Seq is the row id of the first tail element (the void head's
	// sequence base). Baskets advance Seq as consumed tuples are dropped.
	Seq int64
	// Tail holds the attribute values.
	Tail Vector
}

// NewBAT returns an empty BAT of the given kind starting at row id 0.
func NewBAT(k Kind) *BAT { return &BAT{Tail: NewVector(k, 0)} }

// Len reports the number of tuples in the BAT.
func (b *BAT) Len() int { return b.Tail.Len() }

// Hi reports the row id one past the last tuple.
func (b *BAT) Hi() int64 { return b.Seq + int64(b.Tail.Len()) }

// String summarizes the BAT for the monitor.
func (b *BAT) String() string {
	return fmt.Sprintf("BAT@%d %s", b.Seq, VectorString(b.Tail))
}
