package bat

import (
	"fmt"
	"strconv"
	"time"
)

// Value is a single typed scalar. It is the boxed representation used at
// the edges of the engine (SQL literals, receptor input, emitted rows);
// the inner query loops never box values — they operate on whole vectors.
type Value struct {
	Kind Kind
	I    int64 // Int and Time payload
	F    float64
	S    string
	B    bool
}

// Convenience constructors.

// IntValue returns an Int-kind value.
func IntValue(i int64) Value { return Value{Kind: Int, I: i} }

// FloatValue returns a Float-kind value.
func FloatValue(f float64) Value { return Value{Kind: Float, F: f} }

// StrValue returns a Str-kind value.
func StrValue(s string) Value { return Value{Kind: Str, S: s} }

// BoolValue returns a Bool-kind value.
func BoolValue(b bool) Value { return Value{Kind: Bool, B: b} }

// TimeValue returns a Time-kind value holding microseconds since the epoch.
func TimeValue(usec int64) Value { return Value{Kind: Time, I: usec} }

// GoValue boxes a native Go value into a Value. Supported inputs are the
// Go types that receptors accept: int, int32, int64, float64, string, bool
// and time.Time.
func GoValue(v any) (Value, error) {
	switch x := v.(type) {
	case int:
		return IntValue(int64(x)), nil
	case int32:
		return IntValue(int64(x)), nil
	case int64:
		return IntValue(x), nil
	case float64:
		return FloatValue(x), nil
	case float32:
		return FloatValue(float64(x)), nil
	case string:
		return StrValue(x), nil
	case bool:
		return BoolValue(x), nil
	case time.Time:
		return TimeValue(x.UnixMicro()), nil
	case Value:
		return x, nil
	default:
		return Value{}, fmt.Errorf("bat: unsupported Go value %T", v)
	}
}

// Go unboxes the value into its natural Go representation.
func (v Value) Go() any {
	switch v.Kind {
	case Int:
		return v.I
	case Float:
		return v.F
	case Str:
		return v.S
	case Bool:
		return v.B
	case Time:
		return time.UnixMicro(v.I).UTC()
	default:
		return nil
	}
}

// AsFloat widens the value to float64; only valid for numeric kinds.
func (v Value) AsFloat() float64 {
	if v.Kind == Float {
		return v.F
	}
	return float64(v.I)
}

// AsInt returns the integral payload; only valid for Int and Time, or Float
// (truncating).
func (v Value) AsInt() int64 {
	if v.Kind == Float {
		return int64(v.F)
	}
	return v.I
}

// String renders the value the way emitters print it.
func (v Value) String() string {
	switch v.Kind {
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Float:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case Str:
		return v.S
	case Bool:
		if v.B {
			return "true"
		}
		return "false"
	case Time:
		return time.UnixMicro(v.I).UTC().Format(time.RFC3339Nano)
	default:
		return "?"
	}
}

// Compare orders two values of the same kind: -1, 0 or +1. Comparing values
// of different numeric kinds (Int vs Float) widens to float64; any other
// kind mismatch panics, because the binder guarantees operand types match.
func (v Value) Compare(o Value) int {
	if v.Kind != o.Kind {
		if v.Kind.Numeric() && o.Kind.Numeric() {
			return cmpFloat(v.AsFloat(), o.AsFloat())
		}
		panic(fmt.Sprintf("bat: comparing %s with %s", v.Kind, o.Kind))
	}
	switch v.Kind {
	case Int, Time:
		return cmpInt(v.I, o.I)
	case Float:
		return cmpFloat(v.F, o.F)
	case Str:
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		}
		return 0
	case Bool:
		switch {
		case !v.B && o.B:
			return -1
		case v.B && !o.B:
			return 1
		}
		return 0
	}
	return 0
}

// Equal reports whether two values have the same kind and payload (with
// Int/Float widening, matching Compare).
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind && !(v.Kind.Numeric() && o.Kind.Numeric()) {
		return false
	}
	return v.Compare(o) == 0
}

// ParseValue parses the textual form of a value of the given kind, the
// format spoken by CSV receptors. Timestamps accept RFC3339 or raw
// microseconds.
func ParseValue(k Kind, s string) (Value, error) {
	switch k {
	case Int:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("bat: parsing %q as INT: %w", s, err)
		}
		return IntValue(i), nil
	case Float:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("bat: parsing %q as FLOAT: %w", s, err)
		}
		return FloatValue(f), nil
	case Str:
		return StrValue(s), nil
	case Bool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Value{}, fmt.Errorf("bat: parsing %q as BOOL: %w", s, err)
		}
		return BoolValue(b), nil
	case Time:
		if t, err := time.Parse(time.RFC3339Nano, s); err == nil {
			return TimeValue(t.UnixMicro()), nil
		}
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("bat: parsing %q as TIMESTAMP: %w", s, err)
		}
		return TimeValue(i), nil
	default:
		return Value{}, fmt.Errorf("bat: cannot parse kind %s", k)
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}
