package bat

import (
	"reflect"
	"testing"
)

func testChunk() *Chunk {
	sch := NewSchema(
		[]string{"ts", "k", "v", "name", "ok"},
		[]Kind{Time, Int, Float, Str, Bool})
	return &Chunk{Schema: sch, Cols: []Vector{
		Times{1, 2, 3, -4},
		Ints{10, -20, 30, 40},
		Floats{0.5, -1.25, 3e300, 0},
		Strs{"", "a", "αβγ", "long string with, commas\nand newlines"},
		Bools{true, false, true, true},
	}}
}

func TestChunkCodecRoundTrip(t *testing.T) {
	c := testChunk()
	buf := MarshalChunk(nil, c)
	got, rest, err := UnmarshalChunk(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("trailing bytes: %d", len(rest))
	}
	if !reflect.DeepEqual(got.Schema, c.Schema) {
		t.Fatalf("schema = %v, want %v", got.Schema, c.Schema)
	}
	if !reflect.DeepEqual(got.Cols, c.Cols) {
		t.Fatalf("cols = %v, want %v", got.Cols, c.Cols)
	}
}

func TestChunkCodecEmpty(t *testing.T) {
	c := NewChunk(NewSchema([]string{"a"}, []Kind{Int}))
	got, rest, err := UnmarshalChunk(MarshalChunk(nil, c))
	if err != nil || len(rest) != 0 || got.Rows() != 0 {
		t.Fatalf("empty round trip: %v rows=%d rest=%d", err, got.Rows(), len(rest))
	}
}

// TestChunkCodecOwnership pins the refcount-safe ownership transfer: a
// decoded chunk shares no storage with the wire buffer or the original.
func TestChunkCodecOwnership(t *testing.T) {
	c := &Chunk{
		Schema: NewSchema([]string{"k"}, []Kind{Int}),
		Cols:   []Vector{Ints{1, 2, 3}},
	}
	buf := MarshalChunk(nil, c)
	got, _, err := UnmarshalChunk(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 0xFF // clobber the wire buffer
	}
	c.Cols[0].(Ints)[0] = 99 // mutate the original
	if want := (Ints{1, 2, 3}); !reflect.DeepEqual(got.Cols[0], want) {
		t.Fatalf("decoded chunk shares storage: %v, want %v", got.Cols[0], want)
	}
}

func TestChunkCodecCorrupt(t *testing.T) {
	c := testChunk()
	buf := MarshalChunk(nil, c)
	// Every truncation must error, never panic or return garbage silently.
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := UnmarshalChunk(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(buf))
		}
	}
	if _, _, err := UnmarshalSchema([]byte{1, 1, 'x', 250}); err == nil {
		t.Fatal("unknown kind decoded without error")
	}
}
