package bat

import (
	"fmt"
	"strings"
)

// Schema describes the columns of a table, stream, basket or intermediate
// result: parallel slices of names and kinds.
type Schema struct {
	Names []string
	Kinds []Kind
}

// NewSchema builds a schema from alternating name/kind pairs.
func NewSchema(names []string, kinds []Kind) Schema {
	if len(names) != len(kinds) {
		panic("bat: schema name/kind length mismatch")
	}
	return Schema{Names: names, Kinds: kinds}
}

// Width reports the number of columns.
func (s Schema) Width() int { return len(s.Names) }

// Index returns the position of the named column, or -1.
func (s Schema) Index(name string) int {
	for i, n := range s.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// Clone deep-copies the schema so callers can extend it safely.
func (s Schema) Clone() Schema {
	return Schema{
		Names: append([]string(nil), s.Names...),
		Kinds: append([]Kind(nil), s.Kinds...),
	}
}

// String renders "name TYPE, ...".
func (s Schema) String() string {
	parts := make([]string, len(s.Names))
	for i := range s.Names {
		parts[i] = s.Names[i] + " " + s.Kinds[i].String()
	}
	return strings.Join(parts, ", ")
}

// Chunk is a horizontal slice of a relation in columnar form: one vector
// per column, all of equal length. Chunks flow between operators, between
// factories and baskets, and out to emitters. They are the unit in which
// DataCell keeps intermediate results around for reuse.
type Chunk struct {
	Schema Schema
	Cols   []Vector
}

// NewChunk returns an empty chunk with the given schema.
func NewChunk(s Schema) *Chunk {
	cols := make([]Vector, s.Width())
	for i, k := range s.Kinds {
		cols[i] = NewVector(k, 0)
	}
	return &Chunk{Schema: s, Cols: cols}
}

// Rows reports the number of tuples in the chunk.
func (c *Chunk) Rows() int {
	if len(c.Cols) == 0 {
		return 0
	}
	return c.Cols[0].Len()
}

// AppendRow adds one boxed tuple. Values must match the schema kinds.
func (c *Chunk) AppendRow(vals ...Value) error {
	if len(vals) != len(c.Cols) {
		return fmt.Errorf("bat: row has %d values, schema has %d columns", len(vals), len(c.Cols))
	}
	for i, v := range vals {
		k := c.Schema.Kinds[i]
		if v.Kind != k && !(v.Kind.Numeric() && k.Numeric()) {
			return fmt.Errorf("bat: column %s expects %s, got %s",
				c.Schema.Names[i], k, v.Kind)
		}
		c.Cols[i] = c.Cols[i].Append(coerce(v, k))
	}
	return nil
}

// AppendChunk bulk-appends another chunk with an identical schema layout.
func (c *Chunk) AppendChunk(o *Chunk) {
	for i := range c.Cols {
		c.Cols[i] = c.Cols[i].AppendVector(o.Cols[i])
	}
}

// Row boxes tuple i.
func (c *Chunk) Row(i int) []Value {
	out := make([]Value, len(c.Cols))
	for j, col := range c.Cols {
		out[j] = col.Get(i)
	}
	return out
}

// Slice returns a view of rows [lo, hi) sharing storage with c.
func (c *Chunk) Slice(lo, hi int) *Chunk {
	cols := make([]Vector, len(c.Cols))
	for i, col := range c.Cols {
		cols[i] = col.Slice(lo, hi)
	}
	return &Chunk{Schema: c.Schema, Cols: cols}
}

// CopyRange returns a deep copy of rows [lo, hi).
func (c *Chunk) CopyRange(lo, hi int) *Chunk {
	cols := make([]Vector, len(c.Cols))
	for i, col := range c.Cols {
		cols[i] = col.CopyRange(lo, hi)
	}
	return &Chunk{Schema: c.Schema, Cols: cols}
}

// String renders the chunk as an aligned table, used by emitters and the
// demo CLI.
func (c *Chunk) String() string {
	var b strings.Builder
	widths := make([]int, len(c.Cols))
	rows := c.Rows()
	cells := make([][]string, rows)
	for j, n := range c.Schema.Names {
		widths[j] = len(n)
	}
	for i := 0; i < rows; i++ {
		cells[i] = make([]string, len(c.Cols))
		for j, col := range c.Cols {
			s := col.Get(i).String()
			cells[i][j] = s
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	for j, n := range c.Schema.Names {
		if j > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[j], n)
	}
	b.WriteByte('\n')
	for i := 0; i < rows; i++ {
		for j := range c.Cols {
			if j > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[j], cells[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// coerce widens numeric values to the column kind so that, e.g., an INT
// literal can be appended to a FLOAT column.
func coerce(v Value, k Kind) Value {
	if v.Kind == k {
		return v
	}
	switch k {
	case Float:
		return FloatValue(v.AsFloat())
	case Int:
		return IntValue(v.AsInt())
	case Time:
		return TimeValue(v.AsInt())
	}
	return v
}
