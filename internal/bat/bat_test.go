package bat

import (
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Int: "INT", Float: "FLOAT", Str: "STRING", Bool: "BOOL", Time: "TIMESTAMP",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestParseKind(t *testing.T) {
	for name, want := range map[string]Kind{
		"INT": Int, "INTEGER": Int, "BIGINT": Int,
		"FLOAT": Float, "DOUBLE": Float,
		"VARCHAR": Str, "TEXT": Str,
		"BOOLEAN": Bool, "TIMESTAMP": Time,
	} {
		got, err := ParseKind(name)
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("ParseKind(%q) = %s, want %s", name, got, want)
		}
	}
	if _, err := ParseKind("BLOB"); err == nil {
		t.Error("ParseKind(BLOB) should fail")
	}
}

func TestKindNumeric(t *testing.T) {
	for k, want := range map[Kind]bool{Int: true, Float: true, Time: true, Str: false, Bool: false} {
		if got := k.Numeric(); got != want {
			t.Errorf("%s.Numeric() = %v, want %v", k, got, want)
		}
	}
}

func TestGoValueRoundTrip(t *testing.T) {
	now := time.Now().Truncate(time.Microsecond).UTC()
	cases := []any{int(7), int64(-3), 2.5, "hello", true, now}
	for _, in := range cases {
		v, err := GoValue(in)
		if err != nil {
			t.Fatalf("GoValue(%v): %v", in, err)
		}
		out := v.Go()
		switch x := in.(type) {
		case int:
			if out.(int64) != int64(x) {
				t.Errorf("round trip %v -> %v", in, out)
			}
		case time.Time:
			if !out.(time.Time).Equal(x) {
				t.Errorf("round trip %v -> %v", in, out)
			}
		default:
			if out != in {
				t.Errorf("round trip %v -> %v", in, out)
			}
		}
	}
	if _, err := GoValue(struct{}{}); err == nil {
		t.Error("GoValue(struct{}{}) should fail")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{IntValue(1), IntValue(2), -1},
		{IntValue(2), IntValue(2), 0},
		{IntValue(3), IntValue(2), 1},
		{FloatValue(1.5), FloatValue(2.5), -1},
		{IntValue(2), FloatValue(1.5), 1}, // cross-kind numeric widening
		{StrValue("a"), StrValue("b"), -1},
		{BoolValue(false), BoolValue(true), -1},
		{BoolValue(true), BoolValue(true), 0},
		{TimeValue(10), TimeValue(20), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueEqualCrossKind(t *testing.T) {
	if !IntValue(2).Equal(FloatValue(2.0)) {
		t.Error("INT 2 should equal FLOAT 2.0")
	}
	if IntValue(2).Equal(StrValue("2")) {
		t.Error("INT 2 should not equal STRING \"2\"")
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue(Int, "42")
	if err != nil || v.I != 42 {
		t.Fatalf("ParseValue(Int, 42) = %v, %v", v, err)
	}
	v, err = ParseValue(Float, "2.5")
	if err != nil || v.F != 2.5 {
		t.Fatalf("ParseValue(Float, 2.5) = %v, %v", v, err)
	}
	v, err = ParseValue(Bool, "true")
	if err != nil || !v.B {
		t.Fatalf("ParseValue(Bool, true) = %v, %v", v, err)
	}
	v, err = ParseValue(Time, "123456")
	if err != nil || v.I != 123456 {
		t.Fatalf("ParseValue(Time, usec) = %v, %v", v, err)
	}
	if _, err := ParseValue(Time, "2024-01-02T03:04:05Z"); err != nil {
		t.Fatalf("ParseValue(Time, RFC3339): %v", err)
	}
	if _, err := ParseValue(Int, "abc"); err == nil {
		t.Error("ParseValue(Int, abc) should fail")
	}
	if _, err := ParseValue(Float, "x"); err == nil {
		t.Error("ParseValue(Float, x) should fail")
	}
	if _, err := ParseValue(Bool, "x"); err == nil {
		t.Error("ParseValue(Bool, x) should fail")
	}
}

func TestValueStringRendering(t *testing.T) {
	if got := IntValue(-5).String(); got != "-5" {
		t.Errorf("IntValue.String() = %q", got)
	}
	if got := FloatValue(0.5).String(); got != "0.5" {
		t.Errorf("FloatValue.String() = %q", got)
	}
	if got := BoolValue(true).String(); got != "true" {
		t.Errorf("BoolValue.String() = %q", got)
	}
}

func TestVectorBasics(t *testing.T) {
	for _, k := range []Kind{Int, Float, Str, Bool, Time} {
		v := NewVector(k, 4)
		if v.Kind() != k {
			t.Errorf("NewVector(%s).Kind() = %s", k, v.Kind())
		}
		if v.Len() != 0 {
			t.Errorf("NewVector(%s) not empty", k)
		}
	}
}

func TestVectorAppendGetSlice(t *testing.T) {
	var v Vector = Ints(nil)
	for i := int64(0); i < 10; i++ {
		v = v.Append(IntValue(i))
	}
	if v.Len() != 10 {
		t.Fatalf("Len = %d", v.Len())
	}
	if v.Get(7).I != 7 {
		t.Errorf("Get(7) = %v", v.Get(7))
	}
	s := v.Slice(2, 5)
	if s.Len() != 3 || s.Get(0).I != 2 {
		t.Errorf("Slice(2,5) = %v", VectorString(s))
	}
	c := v.CopyRange(2, 5)
	// Mutating the copy must not affect the original.
	c.(Ints)[0] = 99
	if v.Get(2).I != 2 {
		t.Error("CopyRange shares storage with original")
	}
}

func TestVectorAppendVector(t *testing.T) {
	a := Ints{1, 2}
	b := Ints{3, 4}
	out := a.AppendVector(b)
	if out.Len() != 4 || out.Get(3).I != 4 {
		t.Errorf("AppendVector = %v", VectorString(out))
	}
	s := Strs{"x"}.AppendVector(Strs{"y"})
	if s.Len() != 2 || s.Get(1).S != "y" {
		t.Errorf("Strs AppendVector = %v", VectorString(s))
	}
}

func TestAsInts(t *testing.T) {
	if got := AsInts(Ints{1, 2}); len(got) != 2 {
		t.Error("AsInts on Ints")
	}
	if got := AsInts(Times{3}); got[0] != 3 {
		t.Error("AsInts on Times")
	}
	defer func() {
		if recover() == nil {
			t.Error("AsInts on Floats should panic")
		}
	}()
	AsInts(Floats{1})
}

func TestBAT(t *testing.T) {
	b := NewBAT(Int)
	b.Tail = b.Tail.Append(IntValue(5)).Append(IntValue(6))
	if b.Len() != 2 || b.Hi() != 2 {
		t.Errorf("Len/Hi = %d/%d", b.Len(), b.Hi())
	}
	b.Seq = 10
	if b.Hi() != 12 {
		t.Errorf("Hi with seqbase = %d", b.Hi())
	}
	if b.String() == "" {
		t.Error("empty String()")
	}
}

func TestChunkAppendRow(t *testing.T) {
	sch := NewSchema([]string{"a", "b"}, []Kind{Int, Str})
	c := NewChunk(sch)
	if err := c.AppendRow(IntValue(1), StrValue("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendRow(IntValue(1)); err == nil {
		t.Error("arity mismatch should fail")
	}
	if err := c.AppendRow(StrValue("y"), StrValue("x")); err == nil {
		t.Error("type mismatch should fail")
	}
	if c.Rows() != 1 {
		t.Errorf("Rows = %d", c.Rows())
	}
	row := c.Row(0)
	if row[0].I != 1 || row[1].S != "x" {
		t.Errorf("Row(0) = %v", row)
	}
}

func TestChunkNumericCoercion(t *testing.T) {
	sch := NewSchema([]string{"f"}, []Kind{Float})
	c := NewChunk(sch)
	if err := c.AppendRow(IntValue(3)); err != nil {
		t.Fatal(err)
	}
	if got := c.Cols[0].Get(0); got.Kind != Float || got.F != 3.0 {
		t.Errorf("coerced value = %v", got)
	}
}

func TestChunkSliceAndCopy(t *testing.T) {
	sch := NewSchema([]string{"a"}, []Kind{Int})
	c := NewChunk(sch)
	for i := 0; i < 6; i++ {
		if err := c.AppendRow(IntValue(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Slice(2, 4)
	if s.Rows() != 2 || s.Row(0)[0].I != 2 {
		t.Errorf("Slice rows = %d", s.Rows())
	}
	cp := c.CopyRange(0, 3)
	cp.Cols[0].(Ints)[0] = 42
	if c.Row(0)[0].I != 0 {
		t.Error("CopyRange shares storage")
	}
}

func TestChunkAppendChunk(t *testing.T) {
	sch := NewSchema([]string{"a"}, []Kind{Int})
	a, b := NewChunk(sch), NewChunk(sch)
	_ = a.AppendRow(IntValue(1))
	_ = b.AppendRow(IntValue(2))
	a.AppendChunk(b)
	if a.Rows() != 2 || a.Row(1)[0].I != 2 {
		t.Errorf("AppendChunk = %v", a)
	}
}

func TestChunkString(t *testing.T) {
	sch := NewSchema([]string{"id", "name"}, []Kind{Int, Str})
	c := NewChunk(sch)
	_ = c.AppendRow(IntValue(1), StrValue("alpha"))
	out := c.String()
	if out == "" {
		t.Fatal("empty chunk render")
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := NewSchema([]string{"a", "b"}, []Kind{Int, Str})
	if s.Width() != 2 || s.Index("b") != 1 || s.Index("z") != -1 {
		t.Errorf("schema helpers broken: %v", s)
	}
	c := s.Clone()
	c.Names[0] = "zz"
	if s.Names[0] != "a" {
		t.Error("Clone shares storage")
	}
	if s.String() != "a INT, b STRING" {
		t.Errorf("String() = %q", s.String())
	}
}

// Property: Value.Compare is antisymmetric and consistent with Equal for
// random int pairs.
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := IntValue(a), IntValue(b)
		return va.Compare(vb) == -vb.Compare(va) &&
			(va.Compare(vb) == 0) == va.Equal(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: appending n values yields Len n and Get returns them in order.
func TestQuickVectorAppendOrder(t *testing.T) {
	f := func(xs []int64) bool {
		var v Vector = Ints(nil)
		for _, x := range xs {
			v = v.Append(IntValue(x))
		}
		if v.Len() != len(xs) {
			return false
		}
		for i, x := range xs {
			if v.Get(i).I != x {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
